#!/usr/bin/env bash
# scripts/bench_snapshot.sh — freeze machine-readable performance baselines:
# the s-line-graph materialization pipeline into BENCH_slinegraph.json, the
# traversal engines into BENCH_traversal.json, and the I/O load paths into
# BENCH_io.json.
#
# BENCH_slinegraph.json merges two sections:
#   construction — bench_fig9_slinegraph in NWHY_BENCH_JSON mode: one record
#                  per dataset x algorithm x s x thread-count with the
#                  median-of-reps wall time and the number of line-graph
#                  pairs emitted (the hashmap_csr rows exercise the direct
#                  per-thread-buffers -> CSR pipeline)
#   micro        — bench_micro's materialization kernels
#                  (BM_MergeThreadVectors, BM_EdgeListFromBuffers,
#                  BM_CsrFromBuffers, BM_CsrLegacyRoundtrip), whose /N
#                  argument is the thread count, showing merge + build
#                  scaling
#
# BENCH_traversal.json merges three sections:
#   bfs   — bench_fig8_bfs in NWHY_BENCH_JSON mode: dataset x algorithm
#           (HyperBFS / AdjoinBFS / HygraBFS) x threads, median ms and
#           hyperedges reached
#   cc    — bench_fig7_cc in NWHY_BENCH_JSON mode: dataset x algorithm
#           (HyperCC / AdjoinCC-Aff / AdjoinCC-LP / HygraCC) x threads,
#           median ms and component count
#   micro — bench_micro's frontier kernels (BM_FrontierDenseToSparseSerial,
#           BM_FrontierDenseToSparse, BM_FrontierSparseToDense,
#           BM_FrontierScoutCount); /N is the thread count, so the sweep
#           shows where the parallel conversions cross the serial scan
#
# BENCH_io.json has one section:
#   io — bench_io in NWHY_BENCH_JSON mode: one record per load operation x
#        thread-count (parse-mm swept over NWHY_BENCH_THREADS; read-bin /
#        read-nwcsr / mmap-nwcsr serial) with the median wall time, the
#        incidence count parsed/loaded, and the on-disk byte size — the
#        mmap-vs-parse ratio is the headline this file freezes
#
# BENCH_dynamic.json has one section:
#   dynamic — bench_dynamic in NWHY_BENCH_JSON mode: one record per operation
#             x batch size x thread-count (update/slinegraph/toplex paths,
#             each as -incremental vs -rebuild, plus the compact fold) — the
#             incremental-vs-rebuild ratio at small batches is the headline
#             this file freezes
#
# Usage: scripts/bench_snapshot.sh [--allow-debug] [build-dir] [slinegraph.json] [traversal.json] [io.json] [dynamic.json]
#   defaults: build BENCH_slinegraph.json BENCH_traversal.json BENCH_io.json BENCH_dynamic.json
#
# A non-Release build dir is refused unless --allow-debug is given: numbers
# from -O0/-g builds have silently polluted checked-in baselines before.
# The build type and CPU count are stamped into every JSON's context block
# so a reviewer can tell at a glance what produced the numbers.
#
# Knobs (defaults chosen so a snapshot completes in minutes on a laptop):
#   NWHY_BENCH_THREADS   thread counts for the sweeps (1,2,4)
#   NWHY_BENCH_SVALUES   s values for the construction sweep (2,8)
#   NWHY_BENCH_REPS      repetitions, median reported (3)
#   NWHY_BENCH_DATASETS  dataset subset (Friendster-sim,Rand1-sim); set to
#                        "" to sweep the full Table-I suite
set -euo pipefail
cd "$(dirname "$0")/.."
ALLOW_DEBUG=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  ALLOW_DEBUG=1
  shift
fi
BUILD=${1:-build}
OUT=${2:-BENCH_slinegraph.json}
OUT_TRAVERSAL=${3:-BENCH_traversal.json}
OUT_IO=${4:-BENCH_io.json}
OUT_DYNAMIC=${5:-BENCH_dynamic.json}

# Refuse to freeze baselines from anything but a Release build unless the
# caller explicitly opted in.  The build type comes from the CMake cache, so
# it reflects what the binaries in $BUILD were actually compiled as.
BUILD_TYPE=unknown
if [[ -f "$BUILD/CMakeCache.txt" ]]; then
  BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
  BUILD_TYPE=${BUILD_TYPE:-unknown}
fi
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" != 1 ]]; then
  echo "bench_snapshot.sh: refusing to snapshot from a '$BUILD_TYPE' build" >&2
  echo "  ($BUILD/CMakeCache.txt says CMAKE_BUILD_TYPE=$BUILD_TYPE; baselines" >&2
  echo "  must come from Release binaries — pass --allow-debug to override)" >&2
  exit 1
fi
echo "bench_snapshot.sh: build type $BUILD_TYPE, $(nproc) CPUs"
export NWHY_BENCH_BUILD_TYPE="$BUILD_TYPE"

export NWHY_BENCH_THREADS="${NWHY_BENCH_THREADS:-1,2,4}"
export NWHY_BENCH_SVALUES="${NWHY_BENCH_SVALUES:-2,8}"
export NWHY_BENCH_REPS="${NWHY_BENCH_REPS:-3}"
export NWHY_BENCH_DATASETS="${NWHY_BENCH_DATASETS-Friendster-sim,Rand1-sim}"

cmake --build "$BUILD" --target bench_fig9_slinegraph bench_fig8_bfs bench_fig7_cc bench_micro \
  bench_io bench_dynamic -j "$(nproc)"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

NWHY_BENCH_JSON="$TMP/construction.json" "$BUILD/bench/bench_fig9_slinegraph"
NWHY_BENCH_JSON="$TMP/bfs.json" "$BUILD/bench/bench_fig8_bfs"
NWHY_BENCH_JSON="$TMP/cc.json" "$BUILD/bench/bench_fig7_cc"
NWHY_BENCH_JSON="$TMP/io.json" "$BUILD/bench/bench_io"
NWHY_BENCH_JSON="$TMP/dynamic.json" "$BUILD/bench/bench_dynamic"

"$BUILD/bench/bench_micro" \
  --benchmark_filter='BM_MergeThreadVectors|BM_EdgeListFromBuffers|BM_CsrFromBuffers|BM_CsrLegacyRoundtrip|BM_Frontier' \
  --benchmark_out="$TMP/micro.json" --benchmark_out_format=json \
  --benchmark_repetitions="$NWHY_BENCH_REPS" --benchmark_report_aggregates_only=true

python3 - "$TMP" "$OUT" "$OUT_TRAVERSAL" "$OUT_IO" "$OUT_DYNAMIC" <<'PY'
import json, os, sys

tmp, out_sline, out_traversal, out_io, out_dynamic = (
    sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5])

construction = json.load(open(os.path.join(tmp, "construction.json")))
bfs = json.load(open(os.path.join(tmp, "bfs.json")))
cc = json.load(open(os.path.join(tmp, "cc.json")))
io_records = json.load(open(os.path.join(tmp, "io.json")))
dynamic_records = json.load(open(os.path.join(tmp, "dynamic.json")))

gb = json.load(open(os.path.join(tmp, "micro.json")))
micro = []
for b in gb.get("benchmarks", []):
    # With repetitions we keep only the median aggregate.
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b["name"].split("/")           # e.g. BM_CsrFromBuffers/4_median
    kernel = name[0]
    # Unparameterized aggregates carry the suffix on the kernel itself
    # (e.g. BM_FrontierDenseToSparseSerial_median).
    agg = b.get("aggregate_name")
    if agg and kernel.endswith("_" + agg):
        kernel = kernel[: -len(agg) - 1]
    threads = int(name[1].split("_")[0]) if len(name) > 1 else 1
    ms = b["real_time"]
    if b.get("time_unit") == "ns":
        ms /= 1e6
    elif b.get("time_unit") == "us":
        ms /= 1e3
    micro.append({"kernel": kernel, "threads": threads, "median_ms": round(ms, 4)})

context = {k: gb.get("context", {}).get(k) for k in ("date", "num_cpus", "library_build_type")}
# Stamp what produced the numbers: the CMake build type of the bench
# binaries (checked by the shell wrapper) and a CPU-count fallback for
# records that don't pass through google-benchmark.
context["cmake_build_type"] = os.environ.get("NWHY_BENCH_BUILD_TYPE", "unknown")
if not context.get("num_cpus"):
    context["num_cpus"] = os.cpu_count()
materialize_kernels = ("BM_MergeThreadVectors", "BM_EdgeListFromBuffers",
                       "BM_CsrFromBuffers", "BM_CsrLegacyRoundtrip")

doc = {
    "schema": "nwhy-bench-slinegraph-v1",
    "context": context,
    "construction": construction,
    "micro": [m for m in micro if m["kernel"] in materialize_kernels],
}
json.dump(doc, open(out_sline, "w"), indent=1)
open(out_sline, "a").write("\n")
print(f"bench_snapshot.sh: wrote {out_sline} "
      f"({len(construction)} construction records, {len(doc['micro'])} micro records)")

doc = {
    "schema": "nwhy-bench-traversal-v1",
    "context": context,
    "bfs": bfs,
    "cc": cc,
    "micro": [m for m in micro if m["kernel"].startswith("BM_Frontier")],
}
json.dump(doc, open(out_traversal, "w"), indent=1)
open(out_traversal, "a").write("\n")
print(f"bench_snapshot.sh: wrote {out_traversal} "
      f"({len(bfs)} bfs records, {len(cc)} cc records, {len(doc['micro'])} micro records)")

doc = {
    "schema": "nwhy-bench-io-v1",
    "context": context,
    "io": io_records,
}
json.dump(doc, open(out_io, "w"), indent=1)
open(out_io, "a").write("\n")
parse1 = next((r["median_ms"] for r in io_records
               if r["operation"] == "parse-mm" and r["threads"] == 1), None)
mmap = next((r["median_ms"] for r in io_records
             if r["operation"] == "mmap-nwcsr"), None)
ratio = f", mmap {parse1 / mmap:.1f}x vs 1-thread parse" if parse1 and mmap else ""
print(f"bench_snapshot.sh: wrote {out_io} ({len(io_records)} io records{ratio})")

doc = {
    "schema": "nwhy-bench-dynamic-v1",
    "context": context,
    "dynamic": dynamic_records,
}
json.dump(doc, open(out_dynamic, "w"), indent=1)
open(out_dynamic, "a").write("\n")
inc1 = next((r["median_ms"] for r in dynamic_records
             if r["operation"] == "update-incremental" and r["batch"] == 1), None)
reb1 = next((r["median_ms"] for r in dynamic_records
             if r["operation"] == "update-rebuild" and r["batch"] == 1
             and r["threads"] == 1), None)
ratio = f", batch-1 overlay {reb1 / inc1:.0f}x vs 1-thread rebuild" if inc1 and reb1 else ""
print(f"bench_snapshot.sh: wrote {out_dynamic} ({len(dynamic_records)} dynamic records{ratio})")
PY
