#!/usr/bin/env bash
# scripts/bench_snapshot.sh — freeze machine-readable performance baselines:
# the s-line-graph materialization pipeline into BENCH_slinegraph.json, the
# traversal engines into BENCH_traversal.json, and the I/O load paths into
# BENCH_io.json.
#
# BENCH_slinegraph.json merges two sections:
#   construction — bench_fig9_slinegraph in NWHY_BENCH_JSON mode: one record
#                  per dataset x algorithm x s x thread-count with the
#                  median-of-reps wall time and the number of line-graph
#                  pairs emitted (the hashmap_csr rows exercise the direct
#                  per-thread-buffers -> CSR pipeline)
#   micro        — bench_micro's materialization kernels
#                  (BM_MergeThreadVectors, BM_EdgeListFromBuffers,
#                  BM_CsrFromBuffers, BM_CsrLegacyRoundtrip), whose /N
#                  argument is the thread count, showing merge + build
#                  scaling
#
# BENCH_traversal.json merges three sections:
#   bfs   — bench_fig8_bfs in NWHY_BENCH_JSON mode: dataset x algorithm
#           (HyperBFS / HyperBFS-relabel / AdjoinBFS / HygraBFS) x threads,
#           median ms and hyperedges reached — HyperBFS vs HyperBFS-relabel
#           is the relabel-on/off locality comparison this file freezes
#   cc    — bench_fig7_cc in NWHY_BENCH_JSON mode: dataset x algorithm
#           (HyperCC / AdjoinCC-Aff / AdjoinCC-LP / HygraCC) x threads,
#           median ms and component count
#   micro — bench_micro's frontier kernels (BM_FrontierDenseToSparseSerial,
#           BM_FrontierDenseToSparse, BM_FrontierSparseToDense,
#           BM_FrontierScoutCount); /N is the thread count, so the sweep
#           shows where the parallel conversions cross the serial scan
#
# BENCH_io.json has one section:
#   io — bench_io in NWHY_BENCH_JSON mode: one record per load operation x
#        thread-count (parse-mm swept over NWHY_BENCH_THREADS; read-bin /
#        read-nwcsr / mmap-nwcsr plus the sharded read-nwcsr-sharded /
#        mmap-nwcsr-sharded / bfs-sharded variants serial) with the median
#        wall time, incidence count, on-disk bytes, and peak_rss_kb — plus
#        the bfs-sharded-ooc gate record, whose bytes field is the resident
#        dataset size an in-core run would need and whose peak_rss_kb is the
#        measured child RSS (the >RAM bound this file freezes, alongside the
#        mmap-vs-parse ratio)
#
# BENCH_dynamic.json has one section:
#   dynamic — bench_dynamic in NWHY_BENCH_JSON mode: one record per operation
#             x batch size x thread-count (update/slinegraph/toplex paths,
#             each as -incremental vs -rebuild, plus the compact fold) — the
#             incremental-vs-rebuild ratio at small batches is the headline
#             this file freezes
#
# BENCH_serve.json has one section:
#   serve — bench_serve in NWHY_BENCH_JSON mode: one record per operation x
#           client-count from a closed-loop multi-client load generator
#           against an in-process nwhy_serve server (Unix socket), with
#           client-observed p50/p99 latency, aggregate QPS, worker count,
#           and peak_rss_kb — the protocol-overhead (ping/stats) and
#           query-serving (neighbors/bfs/mixed) throughputs this file
#           freezes
#
# BENCH_analytics.json merges two sections:
#   betweenness — bench_betweenness in NWHY_BENCH_JSON mode: one record per
#                 operation (betweenness-exact / betweenness-sampled) x
#                 thread-count on a generated s=2 line graph, with the
#                 sample count and peak_rss_kb — the exact-vs-sampled cost
#                 gap this file freezes
#   motif       — bench_motif in NWHY_BENCH_JSON mode: one motif-census
#                 record per thread-count with the wedge count, showing the
#                 per-wedge parallel_for scaling
#
# Usage: scripts/bench_snapshot.sh [--allow-debug] [build-dir] [slinegraph.json] [traversal.json] [io.json] [dynamic.json] [serve.json] [analytics.json]
#   defaults: build BENCH_slinegraph.json BENCH_traversal.json BENCH_io.json BENCH_dynamic.json BENCH_serve.json BENCH_analytics.json
#
# A non-Release build dir is refused unless --allow-debug is given: numbers
# from -O0/-g builds have silently polluted checked-in baselines before.
# The context block stamped into every JSON derives num_cpus and
# library_build_type from one build probe (nproc + the CMake cache), never
# from google-benchmark's self-report: gbench describes libbenchmark.so, not
# our binaries, and a debug system libbenchmark once stamped
# "library_build_type": "debug" into Release baselines.  The self-report is
# kept as gbench_library_build_type for transparency, and the merge step
# refuses outright if the stamped library/cmake build types disagree
# debug-vs-Release.  Every harness record also carries peak_rss_kb
# (getrusage ru_maxrss); micro records, which don't pass through our
# harnesses, carry null there.
#
# Knobs (defaults chosen so a snapshot completes in minutes on a laptop):
#   NWHY_BENCH_THREADS   thread counts for the sweeps (1,2,4)
#   NWHY_BENCH_SVALUES   s values for the construction sweep (2,8)
#   NWHY_BENCH_REPS      repetitions, median reported (3)
#   NWHY_BENCH_DATASETS  dataset subset (Friendster-sim,Rand1-sim); set to
#                        "" to sweep the full Table-I suite
set -euo pipefail
cd "$(dirname "$0")/.."
ALLOW_DEBUG=0
if [[ "${1:-}" == "--allow-debug" ]]; then
  ALLOW_DEBUG=1
  shift
fi
BUILD=${1:-build}
OUT=${2:-BENCH_slinegraph.json}
OUT_TRAVERSAL=${3:-BENCH_traversal.json}
OUT_IO=${4:-BENCH_io.json}
OUT_DYNAMIC=${5:-BENCH_dynamic.json}
OUT_SERVE=${6:-BENCH_serve.json}
OUT_ANALYTICS=${7:-BENCH_analytics.json}

# Refuse to freeze baselines from anything but a Release build unless the
# caller explicitly opted in.  The build type comes from the CMake cache, so
# it reflects what the binaries in $BUILD were actually compiled as.
BUILD_TYPE=unknown
if [[ -f "$BUILD/CMakeCache.txt" ]]; then
  BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
  BUILD_TYPE=${BUILD_TYPE:-unknown}
fi
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" != 1 ]]; then
  echo "bench_snapshot.sh: refusing to snapshot from a '$BUILD_TYPE' build" >&2
  echo "  ($BUILD/CMakeCache.txt says CMAKE_BUILD_TYPE=$BUILD_TYPE; baselines" >&2
  echo "  must come from Release binaries — pass --allow-debug to override)" >&2
  exit 1
fi
NUM_CPUS=$(nproc)
echo "bench_snapshot.sh: build type $BUILD_TYPE, $NUM_CPUS CPUs"
# The one build probe the context block derives from: both values travel to
# the python merge step through the environment so there is no second source
# of truth to drift from.
export NWHY_BENCH_BUILD_TYPE="$BUILD_TYPE"
export NWHY_BENCH_NUM_CPUS="$NUM_CPUS"

export NWHY_BENCH_THREADS="${NWHY_BENCH_THREADS:-1,2,4}"
export NWHY_BENCH_SVALUES="${NWHY_BENCH_SVALUES:-2,8}"
export NWHY_BENCH_REPS="${NWHY_BENCH_REPS:-3}"
export NWHY_BENCH_DATASETS="${NWHY_BENCH_DATASETS-Friendster-sim,Rand1-sim}"

cmake --build "$BUILD" --target bench_fig9_slinegraph bench_fig8_bfs bench_fig7_cc bench_micro \
  bench_io bench_dynamic bench_serve bench_betweenness bench_motif -j "$(nproc)"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

NWHY_BENCH_JSON="$TMP/construction.json" "$BUILD/bench/bench_fig9_slinegraph"
NWHY_BENCH_JSON="$TMP/bfs.json" "$BUILD/bench/bench_fig8_bfs"
NWHY_BENCH_JSON="$TMP/cc.json" "$BUILD/bench/bench_fig7_cc"
NWHY_BENCH_JSON="$TMP/io.json" "$BUILD/bench/bench_io"
NWHY_BENCH_JSON="$TMP/dynamic.json" "$BUILD/bench/bench_dynamic"
NWHY_BENCH_JSON="$TMP/serve.json" "$BUILD/bench/bench_serve"
NWHY_BENCH_JSON="$TMP/betweenness.json" "$BUILD/bench/bench_betweenness"
NWHY_BENCH_JSON="$TMP/motif.json" "$BUILD/bench/bench_motif"

"$BUILD/bench/bench_micro" \
  --benchmark_filter='BM_MergeThreadVectors|BM_EdgeListFromBuffers|BM_CsrFromBuffers|BM_CsrLegacyRoundtrip|BM_Frontier' \
  --benchmark_out="$TMP/micro.json" --benchmark_out_format=json \
  --benchmark_repetitions="$NWHY_BENCH_REPS" --benchmark_report_aggregates_only=true

python3 - "$TMP" "$OUT" "$OUT_TRAVERSAL" "$OUT_IO" "$OUT_DYNAMIC" "$OUT_SERVE" "$OUT_ANALYTICS" <<'PY'
import json, os, sys

(tmp, out_sline, out_traversal, out_io, out_dynamic, out_serve,
 out_analytics) = (sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4],
                   sys.argv[5], sys.argv[6], sys.argv[7])

construction = json.load(open(os.path.join(tmp, "construction.json")))
bfs = json.load(open(os.path.join(tmp, "bfs.json")))
cc = json.load(open(os.path.join(tmp, "cc.json")))
io_records = json.load(open(os.path.join(tmp, "io.json")))
dynamic_records = json.load(open(os.path.join(tmp, "dynamic.json")))
serve_records = json.load(open(os.path.join(tmp, "serve.json")))
betweenness_records = json.load(open(os.path.join(tmp, "betweenness.json")))
motif_records = json.load(open(os.path.join(tmp, "motif.json")))

gb = json.load(open(os.path.join(tmp, "micro.json")))
micro = []
for b in gb.get("benchmarks", []):
    # With repetitions we keep only the median aggregate.
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b["name"].split("/")           # e.g. BM_CsrFromBuffers/4_median
    kernel = name[0]
    # Unparameterized aggregates carry the suffix on the kernel itself
    # (e.g. BM_FrontierDenseToSparseSerial_median).
    agg = b.get("aggregate_name")
    if agg and kernel.endswith("_" + agg):
        kernel = kernel[: -len(agg) - 1]
    threads = int(name[1].split("_")[0]) if len(name) > 1 else 1
    ms = b["real_time"]
    if b.get("time_unit") == "ns":
        ms /= 1e6
    elif b.get("time_unit") == "us":
        ms /= 1e3
    # Micro records never pass through our harnesses' getrusage hook.
    micro.append({"kernel": kernel, "threads": threads, "median_ms": round(ms, 4),
                  "peak_rss_kb": None})

# The context block derives num_cpus and library_build_type from the same
# build probe (the shell wrapper's nproc + CMakeCache read), NOT from
# google-benchmark's context: gbench self-reports libbenchmark.so's own
# build flavor, which on systems with a debug libbenchmark stamped
# "library_build_type": "debug" into Release baselines.  The self-report is
# preserved as gbench_library_build_type so the discrepancy stays visible.
cmake_build_type = os.environ.get("NWHY_BENCH_BUILD_TYPE", "unknown")
context = {
    "date": gb.get("context", {}).get("date"),
    "num_cpus": int(os.environ.get("NWHY_BENCH_NUM_CPUS", os.cpu_count() or 1)),
    "library_build_type": cmake_build_type.lower(),
    "cmake_build_type": cmake_build_type,
    "gbench_library_build_type": gb.get("context", {}).get("library_build_type"),
}
if context["gbench_library_build_type"] not in (None, context["library_build_type"]):
    print("bench_snapshot.sh: note: google-benchmark self-reports a "
          f"'{context['gbench_library_build_type']}' libbenchmark; the stamped "
          f"library_build_type '{context['library_build_type']}' describes our "
          "binaries (CMakeCache probe), not the system library", file=sys.stderr)

# Internal consistency is non-negotiable: both fields come from one probe,
# so the exact mismatch the old merge used to commit — a non-release
# library_build_type next to cmake_build_type "Release" — now means the
# probe plumbing broke (or someone hand-edited the environment).  Refuse
# rather than freeze a baseline whose context contradicts itself.
if context["cmake_build_type"] == "Release" and context["library_build_type"] != "release":
    sys.exit("bench_snapshot.sh: refusing to write baselines — "
             f"library_build_type '{context['library_build_type']}' contradicts "
             f"cmake_build_type '{context['cmake_build_type']}'")
materialize_kernels = ("BM_MergeThreadVectors", "BM_EdgeListFromBuffers",
                       "BM_CsrFromBuffers", "BM_CsrLegacyRoundtrip")

doc = {
    "schema": "nwhy-bench-slinegraph-v1",
    "context": context,
    "construction": construction,
    "micro": [m for m in micro if m["kernel"] in materialize_kernels],
}
json.dump(doc, open(out_sline, "w"), indent=1)
open(out_sline, "a").write("\n")
print(f"bench_snapshot.sh: wrote {out_sline} "
      f"({len(construction)} construction records, {len(doc['micro'])} micro records)")

doc = {
    "schema": "nwhy-bench-traversal-v1",
    "context": context,
    "bfs": bfs,
    "cc": cc,
    "micro": [m for m in micro if m["kernel"].startswith("BM_Frontier")],
}
json.dump(doc, open(out_traversal, "w"), indent=1)
open(out_traversal, "a").write("\n")
print(f"bench_snapshot.sh: wrote {out_traversal} "
      f"({len(bfs)} bfs records, {len(cc)} cc records, {len(doc['micro'])} micro records)")

doc = {
    "schema": "nwhy-bench-io-v1",
    "context": context,
    "io": io_records,
}
json.dump(doc, open(out_io, "w"), indent=1)
open(out_io, "a").write("\n")
parse1 = next((r["median_ms"] for r in io_records
               if r["operation"] == "parse-mm" and r["threads"] == 1), None)
mmap = next((r["median_ms"] for r in io_records
             if r["operation"] == "mmap-nwcsr"), None)
ratio = f", mmap {parse1 / mmap:.1f}x vs 1-thread parse" if parse1 and mmap else ""
ooc = next((r for r in io_records if r["operation"] == "bfs-sharded-ooc"), None)
if ooc and ooc.get("peak_rss_kb") and ooc.get("bytes"):
    resident_kb = ooc["bytes"] // 1024
    ratio += (f", ooc BFS peak RSS {ooc['peak_rss_kb']} kB vs {resident_kb} kB "
              f"resident ({resident_kb / ooc['peak_rss_kb']:.2f}x headroom)")
print(f"bench_snapshot.sh: wrote {out_io} ({len(io_records)} io records{ratio})")

doc = {
    "schema": "nwhy-bench-dynamic-v1",
    "context": context,
    "dynamic": dynamic_records,
}
json.dump(doc, open(out_dynamic, "w"), indent=1)
open(out_dynamic, "a").write("\n")
inc1 = next((r["median_ms"] for r in dynamic_records
             if r["operation"] == "update-incremental" and r["batch"] == 1), None)
reb1 = next((r["median_ms"] for r in dynamic_records
             if r["operation"] == "update-rebuild" and r["batch"] == 1
             and r["threads"] == 1), None)
ratio = f", batch-1 overlay {reb1 / inc1:.0f}x vs 1-thread rebuild" if inc1 and reb1 else ""
print(f"bench_snapshot.sh: wrote {out_dynamic} ({len(dynamic_records)} dynamic records{ratio})")

doc = {
    "schema": "nwhy-bench-serve-v1",
    "context": context,
    "serve": serve_records,
}
json.dump(doc, open(out_serve, "w"), indent=1)
open(out_serve, "a").write("\n")
stats_qps = max((r["qps"] for r in serve_records if r["operation"] == "stats"), default=None)
mixed_p99 = max((r["p99_ms"] for r in serve_records if r["operation"] == "mixed"), default=None)
note = ""
if stats_qps:
    note = f", peak stats {stats_qps:.0f} qps"
if mixed_p99:
    note += f", worst mixed p99 {mixed_p99:.1f} ms"
print(f"bench_snapshot.sh: wrote {out_serve} ({len(serve_records)} serve records{note})")

doc = {
    "schema": "nwhy-bench-analytics-v1",
    "context": context,
    "betweenness": betweenness_records,
    "motif": motif_records,
}
json.dump(doc, open(out_analytics, "w"), indent=1)
open(out_analytics, "a").write("\n")
exact1 = next((r["median_ms"] for r in betweenness_records
               if r["operation"] == "betweenness-exact" and r["threads"] == 1), None)
sampled1 = next((r["median_ms"] for r in betweenness_records
                 if r["operation"] == "betweenness-sampled" and r["threads"] == 1), None)
note = f", 1-thread exact/sampled {exact1 / sampled1:.1f}x" if exact1 and sampled1 else ""
print(f"bench_snapshot.sh: wrote {out_analytics} ({len(betweenness_records)} betweenness "
      f"records, {len(motif_records)} motif records{note})")
PY
