#!/usr/bin/env bash
# scripts/bench_snapshot.sh — freeze a machine-readable performance baseline
# for the s-line-graph materialization pipeline into BENCH_slinegraph.json.
#
# Two sections are merged into one JSON document:
#   construction — bench_fig9_slinegraph in NWHY_BENCH_JSON mode: one record
#                  per dataset x algorithm x s x thread-count with the
#                  median-of-reps wall time and the number of line-graph
#                  pairs emitted (the hashmap_csr rows exercise the direct
#                  per-thread-buffers -> CSR pipeline)
#   micro        — bench_micro's materialization kernels
#                  (BM_MergeThreadVectors, BM_EdgeListFromBuffers,
#                  BM_CsrFromBuffers, BM_CsrLegacyRoundtrip), whose /N
#                  argument is the thread count, showing merge + build
#                  scaling
#
# Usage: scripts/bench_snapshot.sh [build-dir] [output.json]
#   defaults: build BENCH_slinegraph.json
#
# Knobs (defaults chosen so a snapshot completes in minutes on a laptop):
#   NWHY_BENCH_THREADS   thread counts for the construction sweep (1,2,4)
#   NWHY_BENCH_SVALUES   s values (2,8)
#   NWHY_BENCH_REPS      repetitions, median reported (3)
#   NWHY_BENCH_DATASETS  dataset subset (Friendster-sim,Rand1-sim); set to
#                        "" to sweep the full Table-I suite
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build}
OUT=${2:-BENCH_slinegraph.json}

export NWHY_BENCH_THREADS="${NWHY_BENCH_THREADS:-1,2,4}"
export NWHY_BENCH_SVALUES="${NWHY_BENCH_SVALUES:-2,8}"
export NWHY_BENCH_REPS="${NWHY_BENCH_REPS:-3}"
export NWHY_BENCH_DATASETS="${NWHY_BENCH_DATASETS-Friendster-sim,Rand1-sim}"

cmake --build "$BUILD" --target bench_fig9_slinegraph bench_micro -j "$(nproc)"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

NWHY_BENCH_JSON="$TMP/construction.json" "$BUILD/bench/bench_fig9_slinegraph"

"$BUILD/bench/bench_micro" \
  --benchmark_filter='BM_MergeThreadVectors|BM_EdgeListFromBuffers|BM_CsrFromBuffers|BM_CsrLegacyRoundtrip' \
  --benchmark_out="$TMP/micro.json" --benchmark_out_format=json \
  --benchmark_repetitions="$NWHY_BENCH_REPS" --benchmark_report_aggregates_only=true

python3 - "$TMP/construction.json" "$TMP/micro.json" "$OUT" <<'PY'
import json, sys

construction = json.load(open(sys.argv[1]))

gb = json.load(open(sys.argv[2]))
micro = []
for b in gb.get("benchmarks", []):
    # With repetitions we keep only the median aggregate.
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
        continue
    name = b["name"].split("/")           # e.g. BM_CsrFromBuffers/4_median
    kernel = name[0]
    threads = int(name[1].split("_")[0]) if len(name) > 1 else 1
    ms = b["real_time"]
    if b.get("time_unit") == "ns":
        ms /= 1e6
    elif b.get("time_unit") == "us":
        ms /= 1e3
    micro.append({"kernel": kernel, "threads": threads, "median_ms": round(ms, 4)})

doc = {
    "schema": "nwhy-bench-slinegraph-v1",
    "context": {k: gb.get("context", {}).get(k) for k in ("date", "num_cpus", "library_build_type")},
    "construction": construction,
    "micro": micro,
}
json.dump(doc, open(sys.argv[3], "w"), indent=1)
open(sys.argv[3], "a").write("\n")
print(f"bench_snapshot.sh: wrote {sys.argv[3]} "
      f"({len(construction)} construction records, {len(micro)} micro records)")
PY
