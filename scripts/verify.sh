#!/usr/bin/env bash
# scripts/verify.sh — the tier-1 verification cycle, plus a guard against
# quiet test-suite degradation.
#
# `gtest_discover_tests` replaces a test binary that failed to compile with
# a single `<name>_NOT_BUILT` ctest placeholder; a skim of the final
# "N% tests passed" line can miss that hundreds of assertions vanished.
# This script fails when (a) the build fails, (b) any ctest entry fails, or
# (c) any *_NOT_BUILT placeholder appears in the ctest listing at all.
#
# Usage: scripts/verify.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build}

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"

# -N lists registered tests without running them: catch NOT_BUILT
# placeholders even before the run (they would also fail, but this names
# the degradation precisely instead of drowning it in a failure list).
if ctest --test-dir "$BUILD" -N | grep -F "_NOT_BUILT"; then
  echo "verify.sh: NOT_BUILT placeholder(s) registered — a test binary failed to compile" >&2
  echo "verify.sh: stale GTest_DIR in $BUILD/CMakeCache.txt is the usual cause (see README)" >&2
  exit 1
fi

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT
if ! ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" | tee "$LOG"; then
  echo "verify.sh: ctest reported failures" >&2
  exit 1
fi
if grep -F "_NOT_BUILT" "$LOG" >/dev/null; then
  echo "verify.sh: NOT_BUILT placeholder(s) in ctest output" >&2
  exit 1
fi
echo "verify.sh: OK"
