#!/usr/bin/env bash
# Build and run sanitizer sweeps.
#
#   scripts/sanitize.sh            # asan (default): full suite under ASan+UBSan
#   scripts/sanitize.sh asan [dir] # same, explicit
#   scripts/sanitize.sh tsan [dir] # ThreadSanitizer: build with
#                                  # -DNWHY_SANITIZE=thread, then run the
#                                  # differential driver and the frontier /
#                                  # nwpar suites directly (bounded seed
#                                  # budget — TSan is ~10x slower)
#   scripts/sanitize.sh ubsan [dir]# UBSan alone (-fno-sanitize-recover):
#                                  # the decoder / crafted-input gate — runs
#                                  # the I/O, snapshot, compressed-codec,
#                                  # relabel, shard and serve suites where a
#                                  # malformed file or wire frame must
#                                  # produce a structured error, never UB
#
# ASan/UBSan catches lifetime and indexing bugs; TSan catches data races in
# the frontier engine, bitmap conversions and scatter pipelines that review
# alone keeps missing.  `scripts/sanitize.sh tsan` is the pre-merge gate for
# any PR touching src/nwpar/ or src/hygra/; `ubsan` is the gate for PRs
# touching src/nwhy/io/ (shift/overflow/alignment bugs in varint decoders
# are exactly what UBSan traps).
set -euo pipefail

MODE=${1:-asan}

case "$MODE" in
  asan)
    BUILD=${2:-build-asan}
    cmake -B "$BUILD" -G Ninja -DNWHY_SANITIZE=address
    cmake --build "$BUILD"
    ctest --test-dir "$BUILD" --output-on-failure
    ;;
  tsan)
    BUILD=${2:-build-tsan}
    cmake -B "$BUILD" -G Ninja -DNWHY_SANITIZE=thread
    cmake --build "$BUILD"
    # Run the concurrency-heavy binaries directly: the differential driver
    # (every parallel family at 1/2/4/hw threads against the serial
    # oracles), the frontier engine suite, the nwpar runtime suite, the
    # parallel-ingest / snapshot suites (thread-sweeped parser merges), and
    # the relabel / sharded-traversal suites (parallel BFS-CC over mmap'd
    # shard windows).
    # halt_on_error makes the first race fail the gate; the reduced
    # NWHY_TEST_ITERS bounds wall time (override to go deeper).
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    export NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-6}"
    "$BUILD"/tests/test_nwpar
    "$BUILD"/tests/test_frontier
    "$BUILD"/tests/test_materialize
    "$BUILD"/tests/test_io
    "$BUILD"/tests/test_io_snapshot
    "$BUILD"/tests/test_compress
    "$BUILD"/tests/test_relabel
    "$BUILD"/tests/test_shard
    "$BUILD"/tests/test_differential
    "$BUILD"/tests/test_dynamic
    # The query server: worker pool + per-connection reader threads +
    # generation swaps, all racing by design — the whole suite runs under
    # TSan (client threads included).
    "$BUILD"/tests/test_serve
    # The analytics engines: batched Brandes (CAS level claims + sigma/delta
    # pulls) and the per-wedge census with per-thread counters.
    "$BUILD"/tests/test_betweenness
    "$BUILD"/tests/test_motif
    ;;
  ubsan)
    BUILD=${2:-build-ubsan}
    cmake -B "$BUILD" -G Ninja -DNWHY_SANITIZE=undefined
    cmake --build "$BUILD"
    # The decode-path gate: every reader suite that feeds crafted bytes
    # into the parsers and varint decoders.  -fno-sanitize-recover means
    # any shift/overflow/misalignment aborts the run, so "rejected with
    # io_error" is proven to happen before anything undefined executes.
    "$BUILD"/tests/test_io
    "$BUILD"/tests/test_io_snapshot
    "$BUILD"/tests/test_compress
    "$BUILD"/tests/test_relabel
    "$BUILD"/tests/test_shard
    # Wire-protocol decoders: the crafted-frame suite must reject every
    # malformed frame with a structured status, never UB.
    "$BUILD"/tests/test_serve
    # Floating-point accumulation paths: sigma/delta division and the
    # sampling scale factor must stay defined on degenerate graphs.
    "$BUILD"/tests/test_betweenness
    "$BUILD"/tests/test_motif
    ;;
  *)
    echo "usage: scripts/sanitize.sh [asan|tsan|ubsan] [build-dir]" >&2
    exit 2
    ;;
esac
