#!/usr/bin/env bash
# Build and run the test suite under AddressSanitizer + UBSan.
# The parallel kernels rely on std::atomic_ref over plain vectors; ASan/UBSan
# runs catch lifetime and indexing bugs the regular build cannot.
set -euo pipefail
BUILD=${1:-build-asan}

cmake -B "$BUILD" -G Ninja -DNWHY_SANITIZE=ON
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
