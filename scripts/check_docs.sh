#!/usr/bin/env bash
# scripts/check_docs.sh — the doc-truth linter: docs/ and README.md may only
# name things that exist in the tree.  Three checks:
#
#   1. env knobs, both directions.  Every `NWHY_*` token in the docs must be
#      read somewhere (a quoted "NWHY_*" string in src/tools/bench/tests/
#      examples/scripts — the getenv surface), be a CMake cache variable
#      (any CMakeLists.txt), or be a `#define`d macro.  And every quoted
#      "NWHY_*" string in src/tools/bench (the user-facing knob surface;
#      tests/ contains synthetic fixture knobs, scripts/ internal plumbing)
#      must appear in the docs.
#   2. nwobs counter/timer names, docs -> source.  Backticked dotted tokens
#      whose first segment is a known metric family (derived from the
#      NWOBS_* call sites themselves) must exactly match a registered
#      counter, gauge, or timer name — so `motif.wedges` fails when the
#      counter is `motif.wedges_scanned`.  Dotted tokens outside the family
#      set (file names, struct fields) are ignored; file extensions are
#      filtered explicitly.
#   3. nwhy_tool subcommands, docs -> dispatch.  Every `nwhy_tool <word>`
#      mention must have a matching `cmd == "<word>"` branch in
#      tools/nwhy_tool.cpp.
#
# Usage:
#   scripts/check_docs.sh                 lint docs/*.md + README.md (both
#                                         knob directions)
#   scripts/check_docs.sh <file>...       lint only the given files
#                                         (docs->source directions only)
#   scripts/check_docs.sh --self-test     negative test: a synthetic doc
#                                         citing a nonexistent knob must be
#                                         rejected, and the rejection must
#                                         name the knob
#
# Exit status: 0 clean, 1 any drift.  Runs from any cwd; needs only grep.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--self-test" ]]; then
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT
  printf 'Set `NWHY_NO_SUCH_KNOB` to tune nothing at all.\n' >"$TMP/bogus.md"
  if "$0" "$TMP/bogus.md" >"$TMP/out" 2>&1; then
    echo "check_docs.sh: self-test FAILED — a doc citing NWHY_NO_SUCH_KNOB passed" >&2
    cat "$TMP/out" >&2
    exit 1
  fi
  if ! grep -q "NWHY_NO_SUCH_KNOB" "$TMP/out"; then
    echo "check_docs.sh: self-test FAILED — rejection did not name the bogus knob" >&2
    cat "$TMP/out" >&2
    exit 1
  fi
  echo "check_docs.sh: self-test OK (doc with a nonexistent knob rejected)"
  exit 0
fi

FULL=1
if [[ $# -gt 0 ]]; then
  DOCS=("$@")
  FULL=0
else
  DOCS=(docs/*.md README.md)
fi

FAIL=0
err() {
  echo "check_docs.sh: $*" >&2
  FAIL=1
}

# --- inventory: what the tree actually provides ----------------------------

# Strings actually read from the environment (or written to it by scripts).
# The linter excludes itself: its self-test machinery quotes a deliberately
# nonexistent knob, which must not leak into the inventory.
GETENV_KNOBS=$(grep -rhoE --exclude=check_docs.sh '"NWHY_[A-Z0-9_]+"' \
  src tools bench tests examples scripts 2>/dev/null | tr -d '"' | sort -u)
# CMake cache variables / compile definitions (NWHY_SANITIZE, NWHY_OBS, ...).
CMAKE_KNOBS=$(grep -rhoE 'NWHY_[A-Z0-9_]+' CMakeLists.txt ./*/CMakeLists.txt \
  2>/dev/null | sort -u)
# Preprocessor macros docs may legitimately mention (NWHY_NULL_ID, ...).
MACRO_KNOBS=$(grep -rhoE '#[[:space:]]*define[[:space:]]+NWHY_[A-Z0-9_]+' \
  src tools tests examples 2>/dev/null | grep -oE 'NWHY_[A-Z0-9_]+' | sort -u)
KNOWN_KNOBS=$(printf '%s\n%s\n%s\n' "$GETENV_KNOBS" "$CMAKE_KNOBS" "$MACRO_KNOBS" \
  | sort -u)

# Registered nwobs metric names (counters, gauges, scope timers) and the
# family prefixes they establish.
SRC_METRICS=$(grep -rhoE 'NWOBS_(COUNT|GAUGE_MAX|GAUGE_SET|SCOPE_TIMER)\("[^"]+"' \
  src tools | sed -E 's/.*\("([^"]+)".*/\1/' | sort -u)
METRIC_FAMILIES=$(printf '%s\n' "$SRC_METRICS" | sed -E 's/\..*$//' | sort -u)

# nwhy_tool dispatch branches.
TOOL_CMDS=$(grep -hoE 'cmd == "[a-z_]+"' tools/nwhy_tool.cpp \
  | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)

has_line() {  # has_line <needle> <haystack-lines>
  # Here-string, not a pipe: `grep -q` exits on the first match, and under
  # pipefail a printf that catches the resulting SIGPIPE would turn a
  # successful lookup into an intermittent failure.
  grep -qxF -- "$1" <<<"$2"
}

# --- check 1a: every documented NWHY_* token exists ------------------------

# Trailing [A-Z0-9] keeps glob-style mentions like `NWHY_BENCH_*` from
# extracting a truncated "NWHY_BENCH_" token.
DOC_KNOBS=$(grep -hoE 'NWHY_[A-Z0-9_]*[A-Z0-9]' "${DOCS[@]}" 2>/dev/null | sort -u || true)
for knob in $DOC_KNOBS; do
  if ! has_line "$knob" "$KNOWN_KNOBS"; then
    err "documented knob $knob is not read, defined, or cached anywhere in the tree"
  fi
done

# --- check 1b: every user-facing env knob is documented --------------------

if [[ "$FULL" == 1 ]]; then
  SURFACE_KNOBS=$(grep -rhoE '"NWHY_[A-Z0-9_]+"' src tools bench 2>/dev/null \
    | tr -d '"' | sort -u)
  for knob in $SURFACE_KNOBS; do
    if ! has_line "$knob" "$DOC_KNOBS"; then
      err "env knob $knob is read by src/tools/bench but documented nowhere"
    fi
  done
fi

# --- check 2: documented counter/timer names exist -------------------------

DOC_DOTTED=$(grep -hoE '`[A-Za-z0-9_]+(\.[A-Za-z0-9_]+)+`' "${DOCS[@]}" 2>/dev/null \
  | tr -d '`' | sort -u || true)
for tok in $DOC_DOTTED; do
  case "$tok" in
    *.md|*.hpp|*.cpp|*.h|*.json|*.sh|*.py|*.txt|*.cmake|*.mtx|*.tsv|*.bin|\
    *.nwcsr|*.nwcsrz|*.el|*.sock|*.so|*.out|*.log|*.ipynb) continue ;;
  esac
  family=${tok%%.*}
  has_line "$family" "$METRIC_FAMILIES" || continue
  if ! has_line "$tok" "$SRC_METRICS"; then
    err "documented metric $tok matches no NWOBS_* registration (family '$family' exists)"
  fi
done

# --- check 3: documented nwhy_tool subcommands exist -----------------------

DOC_CMDS=$(grep -hoE 'nwhy_tool +[a-z_]+' "${DOCS[@]}" 2>/dev/null \
  | sed -E 's/nwhy_tool +//' | sort -u || true)
for cmd in $DOC_CMDS; do
  if ! has_line "$cmd" "$TOOL_CMDS"; then
    err "documented subcommand 'nwhy_tool $cmd' has no cmd == \"$cmd\" dispatch branch"
  fi
done

if [[ "$FAIL" != 0 ]]; then
  echo "check_docs.sh: FAILED — docs and source disagree (see above)" >&2
  exit 1
fi
echo "check_docs.sh: OK (${#DOCS[@]} files; $(printf '%s\n' "$DOC_KNOBS" | grep -c . || true) knobs, $(printf '%s\n' "$SRC_METRICS" | grep -c . || true) metrics, $(printf '%s\n' "$TOOL_CMDS" | grep -c . || true) subcommands checked)"
