#!/usr/bin/env bash
# One-shot reproduction: build, test, and regenerate every table/figure of
# the paper plus the ablations, leaving test_output.txt and
# bench_output.txt in the repository root (the artifacts EXPERIMENTS.md is
# written against).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "===== $b ====="
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done.  Compare against EXPERIMENTS.md:"
echo "  Table I   -> bench_table1 section"
echo "  Figure 7  -> bench_fig7_cc section"
echo "  Figure 8  -> bench_fig8_bfs section"
echo "  Figure 9  -> bench_fig9_slinegraph section"
echo "  Ablations -> bench_ablation_* / bench_toplex / bench_micro sections"
