#!/usr/bin/env bash
# Full verification sweep: configure, build, run tests, run every
# table/figure harness.
#
# Usage: scripts/check.sh [--differential] [--io] [--dynamic] [--shard] [--serve] [build-dir]
#
#   --differential   additionally run the differential harness with a
#                    bounded seed budget (NWHY_TEST_ITERS, default 12 —
#                    ~30s) *after* the regular suite; the ctest run above
#                    already covers the default budget, so this stage is for
#                    quickly re-fuzzing with a fresh budget or an operator
#                    override (NWHY_TEST_ITERS=500 scripts/check.sh --differential).
#   --io             additionally re-fuzz the I/O subsystem: the parallel
#                    parser + snapshot round-trip suites and the compressed
#                    codec suite with a boosted seed budget, then an
#                    end-to-end compress -> mmap -> traverse round-trip
#                    through the CLI, then the bench_io load-path comparison
#                    (which asserts nothing but prints the mmap-vs-parse and
#                    compression ratios the acceptance bar watches).
#   --dynamic        additionally re-fuzz the dynamic engine: the
#                    mutation-stream differential suite (delta overlay /
#                    incremental s-line graph / incremental toplexes vs
#                    rebuild-from-scratch) with a boosted seed budget, then
#                    the bench_dynamic incremental-vs-rebuild comparison.
#   --shard          additionally exercise the out-of-core path end-to-end
#                    through the CLI: the relabel + shard unit suites, then
#                    convert --relabel --shards -> inspect (shard directory
#                    validation) -> bfs --sharded, and require the sharded
#                    traversal's reached/depth summary to match the
#                    in-memory engine on the unsharded snapshot exactly.
#   --serve          additionally exercise the query server end-to-end
#                    through the daemon: the serve unit/stress suite, then
#                    start nwhy_serve on a generated dataset, diff its ask
#                    stats / ask bfs answers against nwhy_tool's offline
#                    output byte-for-byte, run the multi-client load
#                    generator against it, and shut it down cleanly over
#                    the wire.
set -euo pipefail

DIFFERENTIAL=0
IO=0
DYNAMIC=0
SHARD=0
SERVE=0
while :; do
  case "${1:-}" in
    --differential) DIFFERENTIAL=1; shift ;;
    --io)           IO=1; shift ;;
    --dynamic)      DYNAMIC=1; shift ;;
    --shard)        SHARD=1; shift ;;
    --serve)        SERVE=1; shift ;;
    *)              break ;;
  esac
done
BUILD=${1:-build}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

# Doc-truth gate (also registered as the `docs_truth` ctest, but run here
# explicitly so a docs-only change can't silently skip it): every knob,
# counter name, and tool subcommand the docs mention must exist in source,
# and every user-facing knob must be documented.
echo "===== doc-truth linter ====="
scripts/check_docs.sh
scripts/check_docs.sh --self-test

if [ "$DIFFERENTIAL" = 1 ]; then
  echo "===== differential harness (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-12}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-12}" "$BUILD"/tests/test_differential
fi

if [ "$IO" = 1 ]; then
  echo "===== I/O stage (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-48}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_io
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_io_snapshot
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_compress
  # End-to-end through the CLI: generate a Table-I analog, write it as a
  # compressed snapshot, validate it with inspect (header + checksums +
  # CSR cross-consistency), then traverse it straight off the mmap.
  IOTMP=$(mktemp -d)
  trap 'rm -rf "$IOTMP"' EXIT
  "$BUILD"/tools/nwhy_tool generate Rand1-sim 1 "$IOTMP/io.mtx"
  "$BUILD"/tools/nwhy_tool convert "$IOTMP/io.mtx" "$IOTMP/io.nwcsr" --compress
  "$BUILD"/tools/nwhy_tool inspect "$IOTMP/io.nwcsr"
  "$BUILD"/tools/nwhy_tool bfs "$IOTMP/io.nwcsr" 0
  rm -rf "$IOTMP"
  trap - EXIT
  "$BUILD"/bench/bench_io
fi

if [ "$DYNAMIC" = 1 ]; then
  echo "===== dynamic-engine stage (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-48}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_dynamic
  "$BUILD"/bench/bench_dynamic
fi

if [ "$SHARD" = 1 ]; then
  echo "===== shard stage (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-48}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_relabel
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-48}" "$BUILD"/tests/test_shard
  # End-to-end through the CLI: degree-relabel + shard a Table-I analog,
  # validate the shard directory with inspect, then run the out-of-core
  # traversal and the in-memory engine from the same source.  The
  # "reached ..." summary lines must be byte-identical — sharding and
  # relabeling are storage choices, not semantic ones.
  SHTMP=$(mktemp -d)
  trap 'rm -rf "$SHTMP"' EXIT
  "$BUILD"/tools/nwhy_tool generate Rand1-sim 1 "$SHTMP/shard.mtx"
  "$BUILD"/tools/nwhy_tool convert "$SHTMP/shard.mtx" "$SHTMP/plain.nwcsr"
  "$BUILD"/tools/nwhy_tool convert "$SHTMP/shard.mtx" "$SHTMP/sharded.nwcsr" \
    --relabel --shards=8
  "$BUILD"/tools/nwhy_tool inspect "$SHTMP/sharded.nwcsr"
  "$BUILD"/tools/nwhy_tool bfs "$SHTMP/plain.nwcsr" 0 | grep '^reached ' >"$SHTMP/plain.out"
  "$BUILD"/tools/nwhy_tool bfs "$SHTMP/sharded.nwcsr" 0 --sharded \
    | grep '^reached ' >"$SHTMP/sharded.out"
  diff -u "$SHTMP/plain.out" "$SHTMP/sharded.out"
  echo "shard stage: sharded traversal matches in-memory engine"
  rm -rf "$SHTMP"
  trap - EXIT
fi

if [ "$SERVE" = 1 ]; then
  echo "===== serve stage (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-24}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-24}" "$BUILD"/tests/test_serve
  # End-to-end through the daemon: start it on a generated Table-I analog,
  # wait for the ready file (never race the listener), require the online
  # stats / BFS answers to be byte-identical to the offline tool's, drive
  # it with the multi-client load generator, and stop it over the wire.
  SVTMP=$(mktemp -d)
  trap 'rm -rf "$SVTMP"' EXIT
  "$BUILD"/tools/nwhy_tool generate Rand1-sim 1 "$SVTMP/serve.mtx"
  "$BUILD"/tools/nwhy_serve serve "$SVTMP/serve.mtx" --listen "unix:$SVTMP/serve.sock" \
    --allow-shutdown --ready-file "$SVTMP/ready" >"$SVTMP/daemon.log" 2>&1 &
  DAEMON=$!
  for _ in $(seq 1 100); do
    [ -s "$SVTMP/ready" ] && break
    sleep 0.1
  done
  if [ ! -s "$SVTMP/ready" ]; then
    echo "serve stage: daemon never became ready" >&2
    cat "$SVTMP/daemon.log" >&2
    exit 1
  fi
  ADDR=$(cat "$SVTMP/ready")
  "$BUILD"/tools/nwhy_serve ask "$ADDR" stats >"$SVTMP/online_stats.out"
  "$BUILD"/tools/nwhy_tool stats "$SVTMP/serve.mtx" | head -3 >"$SVTMP/offline_stats.out"
  diff -u "$SVTMP/offline_stats.out" "$SVTMP/online_stats.out"
  "$BUILD"/tools/nwhy_serve ask "$ADDR" bfs 0 >"$SVTMP/online_bfs.out"
  "$BUILD"/tools/nwhy_tool bfs "$SVTMP/serve.mtx" 0 | grep '^reached ' >"$SVTMP/offline_bfs.out"
  diff -u "$SVTMP/offline_bfs.out" "$SVTMP/online_bfs.out"
  "$BUILD"/tools/nwhy_serve load "$ADDR" --clients 4 --requests 50
  "$BUILD"/tools/nwhy_serve ask "$ADDR" shutdown
  wait "$DAEMON"
  echo "serve stage: online answers match offline tool; daemon exited cleanly"
  rm -rf "$SVTMP"
  trap - EXIT
fi

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
