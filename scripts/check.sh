#!/usr/bin/env bash
# Full verification sweep: configure, build, run tests, run every
# table/figure harness.  Usage: scripts/check.sh [build-dir]
set -euo pipefail
BUILD=${1:-build}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
