#!/usr/bin/env bash
# Full verification sweep: configure, build, run tests, run every
# table/figure harness.
#
# Usage: scripts/check.sh [--differential] [build-dir]
#
#   --differential   additionally run the differential harness with a
#                    bounded seed budget (NWHY_TEST_ITERS, default 12 —
#                    ~30s) *after* the regular suite; the ctest run above
#                    already covers the default budget, so this stage is for
#                    quickly re-fuzzing with a fresh budget or an operator
#                    override (NWHY_TEST_ITERS=500 scripts/check.sh --differential).
set -euo pipefail

DIFFERENTIAL=0
if [ "${1:-}" = "--differential" ]; then
  DIFFERENTIAL=1
  shift
fi
BUILD=${1:-build}

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

if [ "$DIFFERENTIAL" = 1 ]; then
  echo "===== differential harness (NWHY_TEST_ITERS=${NWHY_TEST_ITERS:-12}) ====="
  NWHY_TEST_ITERS="${NWHY_TEST_ITERS:-12}" "$BUILD"/tests/test_differential
fi

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b ====="
  "$b"
done
