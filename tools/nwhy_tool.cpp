// tools/nwhy_tool.cpp
//
// Command-line front end to the framework — the quickest way to run NWHy
// on your own data without writing C++.  Input formats: MatrixMarket
// incidence matrices (.mtx), KONECT bipartite TSV (.tsv), NWHy legacy
// binary snapshots (.bin, NWHYBIN1), or zero-copy CSR snapshots (.nwcsr,
// NWHYCSR2 — see docs/IO_FORMATS.md).
//
//   nwhy_tool stats      <file>                 Table-I style characteristics
//   nwhy_tool components <file>                 exact CC (both engines, timed)
//   nwhy_tool bfs        <file> <edge-id>       exact BFS depths summary
//                                               (--sharded runs the
//                                               out-of-core engine over a
//                                               sharded .nwcsr snapshot)
//   nwhy_tool slinegraph <file> <s> [out.mtx]   build L_s(H); optional export
//   nwhy_tool slcompare  <file> <s>             time all construction algorithms
//   nwhy_tool smetrics   <file> <s>             connectivity/centrality summary
//   nwhy_tool betweenness <file> <s> [samples]  batched Brandes s-betweenness
//                                               (exact, or sampled when a
//                                               sample count is given)
//   nwhy_tool motifs     <file>                 wedge/triad/butterfly census
//   nwhy_tool toplexes   <file>                 maximal hyperedges
//   nwhy_tool collapse   <file>                 duplicate-hyperedge collapse
//   nwhy_tool convert    <in> <out> [--adjoin]  format conversion (.bin, .mtx,
//                                               .nwcsr; --adjoin embeds the
//                                               adjoin CSR in .nwcsr output;
//                                               --relabel[=degree] reorders
//                                               hyperedge storage by degree
//                                               and embeds the inverse map;
//                                               --shards[=N] slices the CSRs
//                                               into hyperedge-range shards
//                                               for out-of-core traversal)
//   nwhy_tool inspect    <file>                 validate + report: snapshot
//                                               header/section layout and CSR
//                                               cross-consistency for .nwcsr,
//                                               edge-list canonicality checks
//                                               for every other format
//   nwhy_tool generate   <name> <scale> <out>   emit a Table-I analog dataset
//   nwhy_tool profile    <file> [s]             run all three instrumented
//                                               algorithm families (BFS,
//                                               s-line construction, toplexes)
//
// Malformed input never aborts: every reader throws nw::hypergraph::io_error
// with file/line/byte context, which main() turns into an `error:` line on
// stderr and a nonzero exit.
//
// Any command accepts `--profile out.json` anywhere on the line: after the
// command finishes, the observability registry (counters, phase timers,
// env, thread count — see DESIGN.md for the schema) is written to out.json.
// Setting NWHY_OBS=0 in the environment suppresses the dump.
//
// Thread count: NWHY_NUM_THREADS (default: hardware concurrency).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "nwhy.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

namespace {

bool has_suffix(const std::string& path, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

biedgelist<> load(const std::string& path) {
  auto ends_with = [&](const char* suffix) { return has_suffix(path, suffix); };
  if (ends_with(".nwcsr")) return load_csr_snapshot(path).to_biedgelist();
  if (ends_with(".bin")) return read_binary(path);
  if (ends_with(".tsv") || ends_with(".konect")) return read_konect_bipartite(path);
  return graph_reader(path);  // MatrixMarket by default
}

/// Build the hypergraph facade; .nwcsr snapshots are adopted zero-copy
/// (CANONICAL CSRs become the live bi-adjacency, no rebuild).
NWHypergraph load_hypergraph(const std::string& path) {
  if (has_suffix(path, ".nwcsr")) return NWHypergraph(load_csr_snapshot(path));
  return NWHypergraph(load(path));
}

int cmd_stats(const std::string& path) {
  NWHypergraph hg = load_hypergraph(path);
  auto es = nw::compute_degree_stats(std::span<const std::size_t>(hg.edge_sizes()));
  auto ns = nw::compute_degree_stats(std::span<const std::size_t>(hg.node_degrees()));
  std::printf("hyperedges   : %zu\n", hg.num_hyperedges());
  std::printf("hypernodes   : %zu\n", hg.num_hypernodes());
  std::printf("incidences   : %zu\n", hg.num_incidences());
  std::printf("edge size    : mean %.2f  max %zu  min %zu  stddev %.2f\n", es.mean, es.max,
              es.min, es.stddev);
  std::printf("node degree  : mean %.2f  max %zu  min %zu  stddev %.2f\n", ns.mean, ns.max,
              ns.min, ns.stddev);
  auto cc = hg.connected_components_adjoin();
  std::vector<vertex_id_t> all(cc.labels_edge);
  all.insert(all.end(), cc.labels_node.begin(), cc.labels_node.end());
  std::printf("components   : %zu (largest spans %zu entities)\n",
              nw::graph::count_components(all), nw::graph::largest_component_size(all));
  return 0;
}

int cmd_components(const std::string& path) {
  NWHypergraph hg = load_hypergraph(path);
  nw::timer    t1;
  auto         exact = hg.connected_components();
  double       ms1   = t1.elapsed_ms();
  nw::timer    t2;
  auto         adjoin = hg.connected_components_adjoin();
  double       ms2    = t2.elapsed_ms();
  auto count = [](const std::vector<vertex_id_t>& e, const std::vector<vertex_id_t>& n) {
    std::vector<vertex_id_t> all(e);
    all.insert(all.end(), n.begin(), n.end());
    return nw::graph::count_components(all);
  };
  std::printf("HyperCC  (bipartite LP):    %zu components, %.2f ms\n",
              count(exact.labels_edge, exact.labels_node), ms1);
  std::printf("AdjoinCC (adjoin Afforest): %zu components, %.2f ms\n",
              count(adjoin.labels_edge, adjoin.labels_node), ms2);
  return 0;
}

void print_bfs_summary(const hyper_bfs_result& r, vertex_id_t source, double ms,
                       std::size_t ne, std::size_t nn) {
  std::size_t reached_e = 0, reached_n = 0;
  vertex_id_t max_depth = 0;
  for (auto d : r.dist_edge) {
    if (d != nw::null_vertex<>) {
      ++reached_e;
      max_depth = std::max(max_depth, d);
    }
  }
  for (auto d : r.dist_node) reached_n += d != nw::null_vertex<>;
  std::printf("BFS from e%u: %.2f ms\n", source, ms);
  std::printf("reached %zu/%zu hyperedges, %zu/%zu hypernodes, max depth %u\n", reached_e, ne,
              reached_n, nn, max_depth);
}

/// Out-of-core BFS: shard-at-a-time traversal over a sharded .nwcsr
/// snapshot, answers translated back through the embedded relabel inverse
/// map (when present) so the summary matches the in-memory engine exactly.
int cmd_bfs_sharded(const std::string& path, vertex_id_t source) {
  sharded_snapshot snap(path);
  const auto ne = static_cast<std::size_t>(snap.num_hyperedges());
  const auto nn = static_cast<std::size_t>(snap.num_hypernodes());
  if (source >= ne) {
    std::fprintf(stderr, "error: source %u out of range (%zu hyperedges)\n", source, ne);
    return 1;
  }
  auto        inv = snap.relabel_inv();
  vertex_id_t src = source;
  std::vector<vertex_id_t> perm;
  if (!inv.empty()) {
    perm.resize(inv.size());
    for (std::size_t i = 0; i < inv.size(); ++i) perm[inv[i]] = static_cast<vertex_id_t>(i);
    src = perm[source];
  }
  nw::timer t;
  auto      r  = hyper_bfs_sharded(snap, src);
  double    ms = t.elapsed_ms();
  if (!perm.empty()) {
    // Storage-row results -> external ids: gather distances through the
    // permutation and re-express edge parents (node parents are node ids
    // and need the inverse map applied to their stored values).
    std::vector<vertex_id_t> de(r.dist_edge.size());
    for (std::size_t e = 0; e < de.size(); ++e) de[e] = r.dist_edge[perm[e]];
    r.dist_edge = std::move(de);
    for (auto& p : r.parents_node) {
      if (p != nw::null_vertex<>) p = inv[p];
    }
  }
  std::printf("out-of-core (%zu shards%s)\n", snap.num_shards(),
              inv.empty() ? "" : ", degree-relabeled");
  print_bfs_summary(r, source, ms, ne, nn);
  return 0;
}

int cmd_bfs(const std::string& path, vertex_id_t source, bool sharded) {
  if (sharded) {
    if (!has_suffix(path, ".nwcsr")) {
      std::fprintf(stderr, "error: --sharded requires a .nwcsr snapshot\n");
      return 1;
    }
    return cmd_bfs_sharded(path, source);
  }
  NWHypergraph hg = load_hypergraph(path);
  if (source >= hg.num_hyperedges()) {
    std::fprintf(stderr, "error: source %u out of range (%zu hyperedges)\n", source,
                 hg.num_hyperedges());
    return 1;
  }
  nw::timer t;
  auto      r  = hg.bfs(source);
  double    ms = t.elapsed_ms();
  print_bfs_summary(r, source, ms, hg.num_hyperedges(), hg.num_hypernodes());
  return 0;
}

int cmd_slinegraph(const std::string& path, std::size_t s, const char* out) {
  NWHypergraph hg = load_hypergraph(path);
  nw::timer    t;
  auto         lg = hg.make_s_linegraph(s);
  std::printf("L_%zu(H): %zu vertices, %zu edges (%.2f ms)\n", s, lg.num_vertices(),
              lg.num_edges(), t.elapsed_ms());
  if (out != nullptr) {
    // Export as a MatrixMarket general graph (square adjacency pattern).
    std::ofstream f(out);
    if (!f.is_open()) {
      std::fprintf(stderr, "error: cannot open %s\n", out);
      return 1;
    }
    const auto& g = lg.graph();
    f << "%%MatrixMarket matrix coordinate pattern general\n";
    f << "% " << s << "-line graph written by nwhy_tool\n";
    f << g.size() << ' ' << g.size() << ' ' << g.num_edges() << '\n';
    for (std::size_t u = 0; u < g.size(); ++u) {
      for (auto&& e : g[u]) f << (u + 1) << ' ' << (target(e) + 1) << '\n';
    }
    std::printf("wrote %s\n", out);
  }
  return 0;
}

int cmd_smetrics(const std::string& path, std::size_t s) {
  NWHypergraph hg = load_hypergraph(path);
  auto         lg = hg.make_s_linegraph(s);
  std::printf("s = %zu: %zu line edges, %s\n", s, lg.num_edges(),
              lg.is_s_connected() ? "s-connected" : "not s-connected");
  auto labels = lg.s_connected_components();
  std::vector<vertex_id_t> active;
  for (auto l : labels) {
    if (l != nw::null_vertex<>) active.push_back(l);
  }
  if (!active.empty()) {
    std::printf("s-components: %zu over %zu active hyperedges (largest %zu)\n",
                nw::graph::count_components(active), active.size(),
                nw::graph::largest_component_size(active));
  }
  std::printf("s-diameter: %zu, s-triangles: %zu, s-clustering: %.4f\n", lg.s_diameter(),
              lg.s_triangle_count(), lg.s_clustering_coefficient());
  auto bc   = lg.s_betweenness_centrality();
  auto imax = std::max_element(bc.begin(), bc.end()) - bc.begin();
  std::printf("most s-between hyperedge: e%td (%.4f)\n", imax, bc[imax]);
  return 0;
}

/// Exact (samples == 0) or sampled s-betweenness via the batched frontier
/// Brandes engine; prints the top-scoring hyperedges.
int cmd_betweenness(const std::string& path, std::size_t s, std::size_t samples) {
  NWHypergraph hg = load_hypergraph(path);
  auto         lg = hg.make_s_linegraph(s);
  nw::timer    t;
  auto         bc = samples == 0 ? lg.s_betweenness_centrality_batched()
                                 : lg.s_betweenness_centrality_sampled(samples);
  double ms = t.elapsed_ms();
  if (samples == 0) {
    std::printf("exact s-betweenness, s = %zu: %zu sources, %.2f ms\n", s, bc.size(), ms);
  } else {
    std::printf("sampled s-betweenness, s = %zu: %zu samples, %.2f ms\n", s,
                std::min(samples, bc.size()), ms);
  }
  std::vector<vertex_id_t> order(bc.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<vertex_id_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](vertex_id_t a, vertex_id_t b) { return bc[a] > bc[b]; });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    std::printf("  e%u: %.6f\n", order[i], bc[order[i]]);
  }
  return 0;
}

/// Wedge/triad/butterfly census of the bipartite form.
int cmd_motifs(const std::string& path) {
  NWHypergraph hg = load_hypergraph(path);
  nw::timer    t;
  auto         census = hg.motifs();
  std::printf("motif census: %.2f ms\n", t.elapsed_ms());
  std::printf("  wedges      : %llu\n", static_cast<unsigned long long>(census.wedges));
  std::printf("  triads      : %llu\n", static_cast<unsigned long long>(census.triads));
  std::printf("  open wedges : %llu\n", static_cast<unsigned long long>(census.open_wedges));
  std::printf("  butterflies : %llu\n", static_cast<unsigned long long>(census.butterflies));
  return 0;
}

int cmd_slcompare(const std::string& path, std::size_t s) {
  NWHypergraph hg = load_hypergraph(path);
  const auto&  he = hg.hyperedges();
  const auto&  hn = hg.hypernodes();
  const auto&  deg = hg.edge_sizes();
  std::vector<vertex_id_t> queue(hg.num_hyperedges());
  for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = static_cast<vertex_id_t>(i);

  auto report = [&](const char* name, auto&& run) {
    nw::timer t;
    auto      result = run();
    std::printf("  %-28s %10.2f ms   %zu edges\n", name, t.elapsed_ms(), result.size());
  };
  std::printf("s-line graph construction comparison, s = %zu:\n", s);
  report("hashmap [IPDPS'22]", [&] { return to_two_graph_hashmap(he, hn, deg, s); });
  report("intersection [HiPC'21]",
         [&] { return to_two_graph_intersection(he, hn, deg, s, he.size()); });
  report("Algorithm 1 (queue hashmap)",
         [&] { return to_two_graph_queue_hashmap(queue, he, hn, deg, s, he.size()); });
  report("Algorithm 2 (queue 2-phase)",
         [&] { return to_two_graph_queue_intersection(queue, he, hn, deg, s, he.size()); });
  report("weighted (keeps overlaps)", [&] { return to_two_graph_weighted(he, hn, deg, s); });
  return 0;
}

int cmd_generate(const std::string& name, std::size_t scale, const std::string& out) {
  for (const auto& spec : gen::dataset_suite()) {
    if (spec.name != name) continue;
    auto el = spec.build(scale);
    el.sort_and_unique();
    if (out.size() >= 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
      write_binary(out, el);
    } else {
      write_matrix_market(out, el);
    }
    std::printf("generated %s (scale %zu): %zu hyperedges, %zu hypernodes, %zu incidences -> %s\n",
                name.c_str(), scale, el.num_vertices(0), el.num_vertices(1), el.size(),
                out.c_str());
    return 0;
  }
  std::fprintf(stderr, "error: unknown dataset '%s'; available:", name.c_str());
  for (const auto& spec : gen::dataset_suite()) std::fprintf(stderr, " %s", spec.name.c_str());
  std::fprintf(stderr, "\n");
  return 1;
}

int cmd_toplexes(const std::string& path) {
  NWHypergraph hg = load_hypergraph(path);
  nw::timer    t;
  auto         tops = hg.toplexes();
  std::printf("%zu toplexes among %zu hyperedges (%.2f ms)\n", tops.size(),
              hg.num_hyperedges(), t.elapsed_ms());
  std::size_t shown = 0;
  for (auto e : tops) {
    if (shown++ == 20) {
      std::printf("  ... (%zu more)\n", tops.size() - 20);
      break;
    }
    std::printf("  e%u (size %zu)\n", e, hg.edge_sizes()[e]);
  }
  return 0;
}

/// Exercise every instrumented algorithm family once, so a single
/// invocation produces a profile covering BFS (levels, direction switches,
/// edges relaxed), s-line-graph construction (candidate vs. emitted pairs,
/// hashmap probes, queue occupancy for Algorithms 1-2), and toplex mining
/// (dominance checks performed vs. skipped).
int cmd_profile(const std::string& path, std::size_t s) {
  NWHypergraph hg = load_hypergraph(path);
  const auto&  he  = hg.hyperedges();
  const auto&  hn  = hg.hypernodes();
  const auto&  deg = hg.edge_sizes();

  // Family 1: BFS — direction-optimizing HyperBFS and AdjoinBFS.
  vertex_id_t src = 0;
  for (std::size_t e = 1; e < deg.size(); ++e) {
    if (deg[e] > deg[src]) src = static_cast<vertex_id_t>(e);
  }
  auto hbfs = hg.bfs(src);
  auto abfs = hg.bfs_adjoin(src);
  std::size_t reached = 0;
  for (auto d : hbfs.dist_edge) reached += d != nw::null_vertex<>;
  std::printf("hyper_bfs/adjoin_bfs from e%u: reached %zu/%zu hyperedges\n", src, reached,
              hg.num_hyperedges());
  (void)abfs;

  // Family 2: s-line-graph construction — both queue algorithms (1 and 2)
  // plus the hashmap baseline they generalize.
  std::vector<vertex_id_t> queue(hg.num_hyperedges());
  for (std::size_t i = 0; i < queue.size(); ++i) queue[i] = static_cast<vertex_id_t>(i);
  auto lg1 = to_two_graph_queue_hashmap(queue, he, hn, deg, s, he.size());
  auto lg2 = to_two_graph_queue_intersection(queue, he, hn, deg, s, he.size());
  auto lg3 = to_two_graph_hashmap(he, hn, deg, s);
  std::printf("slinegraph s=%zu: %zu edges (Alg1) / %zu (Alg2) / %zu (hashmap)\n", s,
              lg1.size(), lg2.size(), lg3.size());

  // Family 3: toplexes.
  auto tops = hg.toplexes();
  std::printf("toplex: %zu toplexes among %zu hyperedges\n", tops.size(),
              hg.num_hyperedges());

  std::printf("profiled families: hyper_bfs, graph_bfs (adjoin), slinegraph, toplex\n");
  return 0;
}

int cmd_collapse(const std::string& path) {
  auto el = load(path);
  el.sort_and_unique();
  auto r = collapse_duplicate_edges(el);
  std::printf("collapsed %zu hyperedges into %zu distinct ones\n", el.num_vertices(0),
              r.el.num_vertices(0));
  std::size_t dups = 0;
  for (auto m : r.multiplicity) dups += m > 1;
  std::printf("%zu hyperedges had duplicates\n", dups);
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out, bool with_adjoin,
                bool compress, bool relabel, long shards) {
  if (has_suffix(out, ".nwcsr")) {
    NWHypergraph hg = load_hypergraph(in);
    if (relabel) hg.relabel_by_degree();  // save embeds the inverse map
    if (shards >= 0) {
      csr_shard_options so;
      so.shards   = static_cast<std::uint32_t>(shards);
      so.compress = compress;
      hg.save_csr_snapshot(out, so, with_adjoin);
    } else if (compress) {
      hg.save_csr_snapshot(out, csr_compress_options{}, with_adjoin);
    } else {
      hg.save_csr_snapshot(out, with_adjoin);
    }
    std::printf("wrote %s (%zu incidences, canonical CSR snapshot%s%s%s%s)\n", out.c_str(),
                hg.num_incidences(), with_adjoin ? ", with adjoin" : "",
                compress ? ", compressed" : "", relabel ? ", degree-relabeled" : "",
                shards >= 0 ? ", sharded" : "");
    return 0;
  }
  if (relabel || shards >= 0) {
    std::fprintf(stderr, "error: --relabel/--shards require .nwcsr output\n");
    return 1;
  }
  auto el = load(in);
  el.sort_and_unique();
  if (has_suffix(out, ".bin")) {
    write_binary(out, el);
  } else {
    write_matrix_market(out, el);
  }
  std::printf("wrote %s (%zu incidences)\n", out.c_str(), el.size());
  return 0;
}

/// Print the section table with human-readable kind names and a per-section
/// `bytes (ratio)` column.  The ratio compares a compressed targets group
/// against the raw u32 encoding it replaces: the kind-7 row accounts for the
/// whole E2N group (SVB payload + dictionary refs + dictionary indices).
void print_section_table(const csr_detail::parsed_header& h) {
  const std::uint64_t raw_targets = h.m * sizeof(vertex_id_t);
  auto group_len = [&](std::initializer_list<std::uint32_t> kinds) {
    std::uint64_t total = 0;
    for (auto k : kinds) {
      if (const auto* s = h.find(k)) total += s->length;
    }
    return total;
  };
  std::printf("  sections     : %zu\n", h.sections.size());
  std::printf("    %-4s %-18s %12s %9s\n", "kind", "name", "bytes", "ratio");
  for (const auto& s : h.sections) {
    std::uint64_t replaces = 0;  // raw bytes this section (group) stands in for
    if (s.kind == csr_sec_e2n_targets_svb) {
      replaces = raw_targets;
    } else if (s.kind == csr_sec_n2e_targets_svb) {
      replaces = raw_targets;
    }
    char ratio[32] = "-";
    if (replaces != 0) {
      const std::uint64_t stored =
          s.kind == csr_sec_e2n_targets_svb
              ? group_len({csr_sec_e2n_targets_svb, csr_sec_e2n_dict_refs,
                           csr_sec_e2n_dict_indices})
              : s.length;
      if (stored != 0) {
        std::snprintf(ratio, sizeof(ratio), "%.2fx", double(replaces) / double(stored));
      }
    } else if (s.kind == csr_sec_e2n_dict_refs || s.kind == csr_sec_e2n_dict_indices) {
      std::snprintf(ratio, sizeof(ratio), "(dict)");
    }
    std::printf("    %-4u %-18s %12llu %9s\n", s.kind, csr_section_kind_name(s.kind),
                static_cast<unsigned long long>(s.length), ratio);
  }
  const std::uint64_t e2n_stored = group_len(
      {csr_sec_e2n_targets_svb, csr_sec_e2n_dict_refs, csr_sec_e2n_dict_indices});
  const std::uint64_t n2e_stored = group_len({csr_sec_n2e_targets_svb});
  if (e2n_stored != 0 && raw_targets != 0) {
    std::printf("  e2n targets  : %llu raw -> %llu compressed (%.2fx)\n",
                static_cast<unsigned long long>(raw_targets),
                static_cast<unsigned long long>(e2n_stored),
                double(raw_targets) / double(e2n_stored));
  }
  if (n2e_stored != 0 && raw_targets != 0) {
    std::printf("  n2e targets  : %llu raw -> %llu compressed (%.2fx)\n",
                static_cast<unsigned long long>(raw_targets),
                static_cast<unsigned long long>(n2e_stored),
                double(raw_targets) / double(n2e_stored));
  }
}

/// Re-read just the header + section table of a snapshot for inspection
/// (the loaded csr_snapshot does not retain the table).
csr_detail::parsed_header read_snapshot_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw io_error("cannot open snapshot", path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  const std::uint64_t prefix_len = std::min<std::uint64_t>(
      file_size, csr_detail::header_bytes +
                     csr_detail::max_section_count * csr_detail::table_entry_bytes);
  std::vector<unsigned char> head(static_cast<std::size_t>(prefix_len));
  in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
  if (!in.good()) throw io_error("cannot read snapshot header", path);
  return csr_detail::parse_header(head.data(), file_size, path);
}

/// Print the shard directory (kind 11), one row per shard: hyperedge range,
/// incidence count, stored bytes, and — for SVB-encoded slices — the ratio
/// against the raw u32 target encoding the slice replaces.
void print_shard_directory(const std::string& path, const csr_detail::parsed_header& h) {
  const auto* sdir = h.find(csr_sec_shard_dir);
  const auto* spay = h.find(csr_sec_shard_payload);
  if (sdir == nullptr || spay == nullptr) return;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw io_error("cannot open snapshot", path);
  std::vector<nw::offset_t> words(static_cast<std::size_t>(sdir->length / sizeof(nw::offset_t)));
  in.seekg(static_cast<std::streamoff>(sdir->offset));
  in.read(reinterpret_cast<char*>(words.data()), static_cast<std::streamsize>(sdir->length));
  if (!in.good()) throw io_error("cannot read shard directory", path);
  auto dir = csr_detail::parse_shard_directory(std::span<const nw::offset_t>(words), h.n0, h.n1,
                                               h.m, spay->length, path);
  std::printf("  shards       : %zu (payload %llu bytes)\n", dir.size(),
              static_cast<unsigned long long>(spay->length));
  std::printf("    %-5s %-21s %12s %12s %9s\n", "shard", "hyperedges", "incidences", "bytes",
              "ratio");
  for (std::size_t k = 0; k < dir.size(); ++k) {
    const auto&         s      = dir[k];
    const std::uint64_t stored = s.e2n_len + s.sub_len + s.n2e_len;
    char                range[32];
    std::snprintf(range, sizeof(range), "[%llu, %llu)",
                  static_cast<unsigned long long>(s.e_begin),
                  static_cast<unsigned long long>(s.e_end));
    char ratio[32] = "-";
    if ((s.flags & csr_detail::shard_flag_svb) != 0 && stored != 0) {
      // Raw footprint the slices stand in for: both target streams as u32
      // plus the (always raw) per-shard node sub-index.
      const std::uint64_t raw = 2 * s.count * sizeof(vertex_id_t) + s.sub_len;
      std::snprintf(ratio, sizeof(ratio), "%.2fx", double(raw) / double(stored));
    }
    std::printf("    %-5zu %-21s %12llu %12llu %9s\n", k, range,
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(stored), ratio);
  }
}

int cmd_inspect(const std::string& path) {
  if (has_suffix(path, ".nwcsr")) {
    // Full integrity audit: checksum every section, then cross-check the
    // two CSRs against each other.
    auto snap = load_csr_snapshot(path, /*verify_checksums=*/true);
    std::printf("NWHYCSR2 snapshot: %s\n", path.c_str());
    std::printf("  version      : %u\n", snap.version);
    std::printf("  flags        : 0x%x (%s%s)\n", snap.flags,
                snap.canonical() ? "canonical" : "non-canonical",
                snap.adjoin ? ", has-adjoin" : "");
    std::printf("  hyperedges   : %llu\n", static_cast<unsigned long long>(snap.n0));
    std::printf("  hypernodes   : %llu\n", static_cast<unsigned long long>(snap.n1));
    std::printf("  incidences   : %llu\n", static_cast<unsigned long long>(snap.m));
    std::printf("  load path    : %s\n", snap.zero_copy() ? "mmap (zero-copy)" : "streamed");
    if (!snap.relabel_inv.empty()) {
      std::printf("  relabel      : degree-ordered (inverse map embedded, %zu ids)\n",
                  snap.relabel_inv.size());
    }
    auto h = read_snapshot_header(path);
    print_section_table(h);
    print_shard_directory(path, h);
    if (snap.adjoin) {
      std::printf("  adjoin CSR   : %zu ids, %zu directed edges\n", snap.adjoin->num_ids(),
                  snap.adjoin->graph.num_edges());
    }
    auto cons = validate_csr_pair(snap.edges, snap.nodes);
    std::printf("  checksums    : ok (all sections verified)\n");
    std::printf("  consistency  : %s\n", cons.to_string().c_str());
    if (!cons.consistent()) {
      std::fprintf(stderr, "error: snapshot CSRs are not mutual transposes\n");
      return 1;
    }
    return 0;
  }
  auto el = load(path);
  auto r  = validate(el);
  std::printf("%s: %zu hyperedges, %zu hypernodes, %zu incidences\n", path.c_str(),
              el.num_vertices(0), el.num_vertices(1), el.size());
  std::printf("  validation   : %s\n", r.to_string().c_str());
  std::printf("  canonical    : %s\n", r.canonical() ? "yes" : "no (sort_and_unique required)");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: nwhy_tool <command> <file> [args] [--profile out.json]\n"
               "  stats      <file>\n"
               "  components <file>\n"
               "  bfs        <file> <edge-id> [--sharded]\n"
               "  slinegraph <file> <s> [out.mtx]\n"
               "  slcompare  <file> <s>\n"
               "  smetrics   <file> <s>\n"
               "  betweenness <file> <s> [samples]\n"
               "  motifs     <file>\n"
               "  toplexes   <file>\n"
               "  collapse   <file>\n"
               "  convert    <in> <out.bin|out.mtx|out.nwcsr> [--adjoin] [--compress]\n"
               "             [--relabel[=degree]] [--shards[=N]]\n"
               "  inspect    <file>\n"
               "  generate   <dataset-name> <scale> <out.bin|out.mtx>\n"
               "  profile    <file> [s]\n"
               "  --profile out.json   write observability counters/timers as JSON\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Extract `--profile <path>` and the mode flags (allowed anywhere) before
  // positional parsing.
  std::string              profile_out;
  bool                     with_adjoin = false;
  bool                     compress    = false;
  bool                     relabel     = false;
  bool                     sharded     = false;
  long                     shards      = -1;  // -1: off; 0: byte-budget auto; N: pinned count
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--adjoin") == 0) {
      with_adjoin = true;
    } else if (std::strcmp(argv[i], "--compress") == 0) {
      compress = true;
    } else if (std::strcmp(argv[i], "--relabel") == 0 ||
               std::strcmp(argv[i], "--relabel=degree") == 0) {
      relabel = true;
    } else if (std::strncmp(argv[i], "--relabel=", 10) == 0) {
      std::fprintf(stderr, "error: unknown relabel order '%s' (only 'degree')\n", argv[i] + 10);
      return 2;
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = 0;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      char* end = nullptr;
      shards    = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || shards < 1) {
        std::fprintf(stderr, "error: --shards=N needs a positive integer\n");
        return 2;
      }
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) {
    usage();
    return 2;
  }
  const std::string& cmd  = args[0];
  const std::string& path = args[1];
  auto arg = [&](std::size_t i) -> const char* {
    return args.size() > i ? args[i].c_str() : nullptr;
  };

  int rc = 2;
  try {
  if (cmd == "stats") {
    rc = cmd_stats(path);
  } else if (cmd == "components") {
    rc = cmd_components(path);
  } else if (cmd == "bfs" && args.size() >= 3) {
    rc = cmd_bfs(path, static_cast<vertex_id_t>(std::atol(arg(2))), sharded);
  } else if (cmd == "slinegraph" && args.size() >= 3) {
    rc = cmd_slinegraph(path, static_cast<std::size_t>(std::atol(arg(2))), arg(3));
  } else if (cmd == "smetrics" && args.size() >= 3) {
    rc = cmd_smetrics(path, static_cast<std::size_t>(std::atol(arg(2))));
  } else if (cmd == "slcompare" && args.size() >= 3) {
    rc = cmd_slcompare(path, static_cast<std::size_t>(std::atol(arg(2))));
  } else if (cmd == "betweenness" && args.size() >= 3) {
    rc = cmd_betweenness(path, static_cast<std::size_t>(std::atol(arg(2))),
                         args.size() >= 4 ? static_cast<std::size_t>(std::atol(arg(3))) : 0);
  } else if (cmd == "motifs") {
    rc = cmd_motifs(path);
  } else if (cmd == "toplexes") {
    rc = cmd_toplexes(path);
  } else if (cmd == "collapse") {
    rc = cmd_collapse(path);
  } else if (cmd == "convert" && args.size() >= 3) {
    rc = cmd_convert(path, arg(2), with_adjoin, compress, relabel, shards);
  } else if (cmd == "inspect") {
    rc = cmd_inspect(path);
  } else if (cmd == "generate" && args.size() >= 4) {
    rc = cmd_generate(path, static_cast<std::size_t>(std::atol(arg(2))), arg(3));
  } else if (cmd == "profile") {
    rc = cmd_profile(path, args.size() >= 3 ? static_cast<std::size_t>(std::atol(arg(2))) : 1);
  } else {
    usage();
    return 2;
  }
  } catch (const nw::hypergraph::io_error& e) {
    // Recoverable ingest defects: readable one-liner with file/line/byte
    // context, nonzero exit, no abort.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (rc == 0 && !profile_out.empty() && nw::obs::runtime_enabled()) {
    if (nw::obs::write_profile(profile_out)) {
      std::printf("wrote profile %s\n", profile_out.c_str());
    } else {
      rc = 1;
    }
  }
  return rc;
}
