// tools/nwhy_serve.cpp
//
// The NWHy query daemon and its client-side companions.  Three modes:
//
//   nwhy_serve serve <file> --listen <addr> [options]
//       Load a hypergraph (same formats as nwhy_tool), publish it as
//       generation 0, and serve the NWSERVE1 protocol (docs/PROTOCOL.md)
//       until stopped.  <addr> is `unix:/path/to.sock` or `tcp:<port>`
//       (port 0 binds an ephemeral port; the actual address is printed,
//       and written to --ready-file when given, so scripts can wait for
//       the listener without racing it).
//         --threads N       worker pool size   (default NWHY_SERVE_THREADS)
//         --queue N         admission queue    (default NWHY_SERVE_QUEUE)
//         --deadline-ms N   default deadline   (default NWHY_SERVE_DEADLINE_MS)
//         --debug-ops       accept sleep_debug (test/diagnostic traffic)
//         --allow-shutdown  accept the remote shutdown opcode
//
//   nwhy_serve load <addr> [--clients N] [--requests N] [--seed S]
//              [--deadline-ms N]
//       Multi-client randomized load generator: each client thread opens
//       its own connection and fires a seed-derived mix of stats /
//       neighbors / s-distance / BFS / components / centrality requests,
//       then the merged latency distribution (QPS, p50/p99) and per-status
//       tallies are printed.  Every request carries a deadline (default
//       1000 ms) — whole-graph queries on large inputs are legitimately
//       slow, and a bounded load run is the point; deadline-exceeded
//       replies are expected, not failures.  Exits nonzero if any reply
//       carries a status outside the expected set (ok / busy /
//       deadline_exceeded) or any connection breaks — the CI smoke gate in
//       check.sh --serve.
//
//   nwhy_serve ask <addr> <stats|bfs <edge-id>|ping|shutdown>
//       One-shot queries printing *exactly* the corresponding nwhy_tool
//       lines (stats header, `reached ...` BFS summary) so a script can
//       diff online answers against offline ones byte-for-byte.
//
// Exit codes: 0 success, 1 runtime/protocol failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "nwhy.hpp"

using namespace nw::hypergraph;
namespace sv = nw::hypergraph::serve;
using nw::vertex_id_t;

namespace {

bool has_suffix(const std::string& path, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

/// Same format dispatch as nwhy_tool: .nwcsr snapshots adopt zero-copy.
NWHypergraph load_hypergraph(const std::string& path) {
  if (has_suffix(path, ".nwcsr")) return NWHypergraph(load_csr_snapshot(path));
  if (has_suffix(path, ".bin")) return NWHypergraph(read_binary(path));
  if (has_suffix(path, ".tsv") || has_suffix(path, ".konect")) {
    return NWHypergraph(read_konect_bipartite(path));
  }
  return NWHypergraph(graph_reader(path));
}

void usage() {
  std::fprintf(
      stderr,
      "usage: nwhy_serve serve <file> --listen <unix:PATH|tcp:PORT> [--threads N]\n"
      "                  [--queue N] [--deadline-ms N] [--debug-ops]\n"
      "                  [--allow-shutdown] [--ready-file PATH]\n"
      "       nwhy_serve load <addr> [--clients N] [--requests N] [--seed S]\n"
      "       nwhy_serve ask <addr> <stats|bfs EDGE|ping|shutdown>\n");
}

// --- serve mode --------------------------------------------------------------

int cmd_serve(const std::vector<std::string>& args) {
  std::string   file;
  std::string   listen;
  std::string   ready_file;
  unsigned      threads        = 0;
  std::size_t   queue          = 0;
  std::uint32_t deadline_ms    = 0;
  bool          debug_ops      = false;
  bool          allow_shutdown = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--listen") {
      listen = next();
    } else if (a == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--queue") {
      queue = static_cast<std::size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--deadline-ms") {
      deadline_ms = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--ready-file") {
      ready_file = next();
    } else if (a == "--debug-ops") {
      debug_ops = true;
    } else if (a == "--allow-shutdown") {
      allow_shutdown = true;
    } else if (file.empty()) {
      file = a;
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", a.c_str());
      return 2;
    }
  }
  if (file.empty() || listen.empty()) {
    usage();
    return 2;
  }

  sv::server::options opt;
  if (listen.rfind("unix:", 0) == 0) {
    opt.unix_path = listen.substr(5);
  } else if (listen.rfind("tcp:", 0) == 0) {
    opt.use_tcp  = true;
    opt.tcp_port = static_cast<std::uint16_t>(std::strtoul(listen.c_str() + 4, nullptr, 10));
  } else {
    std::fprintf(stderr, "error: --listen must be unix:PATH or tcp:PORT\n");
    return 2;
  }
  opt.threads             = threads;
  opt.queue_capacity      = queue;
  opt.default_deadline_ms = deadline_ms;
  opt.enable_debug_ops    = debug_ops;
  opt.allow_shutdown      = allow_shutdown;

  NWHypergraph hg = load_hypergraph(file);
  // Serving requires plain external-id storage: fold away a relabeled
  // snapshot's storage permutation once at load instead of translating ids
  // on every request.
  if (hg.is_relabeled()) hg.derelabel();
  std::printf("loaded %s: %zu hyperedges, %zu hypernodes, %zu incidences\n", file.c_str(),
              hg.num_hyperedges(), hg.num_hypernodes(), hg.num_incidences());

  sv::server srv(opt);
  srv.publish(0, sv::make_serve_graph(hg));
  const std::string addr = srv.address();
  std::printf("listening on %s (%u workers)\n", addr.c_str(), srv.num_workers());
  std::fflush(stdout);
  if (!ready_file.empty()) {
    std::ofstream rf(ready_file);
    rf << addr << '\n';
  }
  srv.wait();
  srv.stop();
  auto m = srv.metrics();
  std::printf("served %llu requests (busy %llu, deadline %llu, coalesced %llu)\n",
              static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.rejected_busy),
              static_cast<unsigned long long>(m.deadline_exceeded),
              static_cast<unsigned long long>(m.coalesced));
  return 0;
}

// --- load mode ---------------------------------------------------------------

struct load_result {
  std::vector<double> latencies_ms;
  std::uint64_t       ok = 0, busy = 0, deadline = 0, unexpected = 0;
  bool                failed = false;
};

void load_worker(const std::string& addr, std::uint64_t seed, std::size_t requests,
                 std::uint32_t deadline_ms, load_result& out) {
  try {
    sv::client c;
    c.connect(addr);
    auto st = c.stats(0);
    if (!st || !st->ok()) {
      out.failed = true;
      return;
    }
    const auto      info = sv::decode_stats_reply(st->payload);
    const auto      ne   = info.num_hyperedges;
    nw::xoshiro256ss rng(seed);
    out.latencies_ms.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const std::uint64_t e = ne != 0 ? rng.bounded(ne) : 0;
      const std::uint32_t s = 1 + static_cast<std::uint32_t>(rng.bounded(3));
      const auto          t0 = std::chrono::steady_clock::now();
      std::optional<sv::client_reply> r;
      switch (rng.bounded(6)) {
        case 0: r = c.stats(0, deadline_ms); break;
        case 1: r = c.neighbors(0, s, e, deadline_ms); break;
        case 2:
          r = c.s_distance(0, s, e, ne != 0 ? rng.bounded(ne) : 0, deadline_ms);
          break;
        case 3: r = c.bfs(0, e, deadline_ms); break;
        case 4: r = c.s_components(0, s, deadline_ms); break;
        default:
          r = c.centrality(0, s, static_cast<sv::centrality_kind>(rng.bounded(3)), e,
                           deadline_ms);
          break;
      }
      out.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count());
      if (!r) {
        out.failed = true;
        return;
      }
      switch (r->st) {
        case sv::status::ok: ++out.ok; break;
        case sv::status::busy: ++out.busy; break;
        case sv::status::deadline_exceeded: ++out.deadline; break;
        default: ++out.unexpected; break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: load client: %s\n", e.what());
    out.failed = true;
  }
}

int cmd_load(const std::vector<std::string>& args) {
  std::string   addr;
  std::size_t   clients     = 4;
  std::size_t   requests    = 200;
  std::uint64_t seed        = 0x5eed5e7fULL;
  std::uint32_t deadline_ms = 1000;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--clients") {
      clients = static_cast<std::size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--requests") {
      requests = static_cast<std::size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (a == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--deadline-ms") {
      deadline_ms = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (addr.empty()) {
      addr = a;
    } else {
      std::fprintf(stderr, "error: unexpected argument %s\n", a.c_str());
      return 2;
    }
  }
  if (addr.empty() || clients == 0) {
    usage();
    return 2;
  }

  std::vector<load_result> results(clients);
  std::vector<std::thread> threads;
  const auto               t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < clients; ++i) {
    threads.emplace_back(load_worker, addr, seed + i, requests, deadline_ms,
                         std::ref(results[i]));
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> lat;
  std::uint64_t       ok = 0, busy = 0, deadline = 0, unexpected = 0;
  bool                failed = false;
  for (const auto& r : results) {
    lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    ok += r.ok;
    busy += r.busy;
    deadline += r.deadline;
    unexpected += r.unexpected;
    failed = failed || r.failed;
  }
  std::sort(lat.begin(), lat.end());
  const double p50 = lat.empty() ? 0 : lat[lat.size() / 2];
  const double p99 =
      lat.empty() ? 0 : lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
  const double qps = elapsed_s > 0 ? static_cast<double>(lat.size()) / elapsed_s : 0;

  std::printf("%zu clients x %zu requests in %.2f s\n", clients, requests, elapsed_s);
  std::printf("qps %.0f  p50 %.3f ms  p99 %.3f ms\n", qps, p50, p99);
  std::printf("status: ok %llu, busy %llu, deadline %llu, unexpected %llu\n",
              static_cast<unsigned long long>(ok), static_cast<unsigned long long>(busy),
              static_cast<unsigned long long>(deadline),
              static_cast<unsigned long long>(unexpected));
  if (failed || unexpected != 0) {
    std::fprintf(stderr, "error: load run saw failures\n");
    return 1;
  }
  return 0;
}

// --- ask mode ----------------------------------------------------------------

int cmd_ask(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    usage();
    return 2;
  }
  const std::string& addr = args[0];
  const std::string& what = args[1];
  sv::client         c;
  c.connect(addr);

  if (what == "ping") {
    auto r = c.ping();
    if (!r || !r->ok()) {
      std::fprintf(stderr, "error: ping failed\n");
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (what == "shutdown") {
    auto r = c.shutdown();
    if (!r || !r->ok()) {
      std::fprintf(stderr, "error: shutdown refused: %s\n",
                   r ? sv::status_name(r->st) : "disconnected");
      return 1;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  if (what == "stats") {
    auto r = c.stats(0);
    if (!r || !r->ok()) {
      std::fprintf(stderr, "error: stats failed: %s\n",
                   r ? sv::status_name(r->st) : "disconnected");
      return 1;
    }
    auto s = sv::decode_stats_reply(r->payload);
    // Byte-identical to nwhy_tool stats' first three lines, for diffing.
    std::printf("hyperedges   : %zu\n", static_cast<std::size_t>(s.num_hyperedges));
    std::printf("hypernodes   : %zu\n", static_cast<std::size_t>(s.num_hypernodes));
    std::printf("incidences   : %zu\n", static_cast<std::size_t>(s.num_incidences));
    return 0;
  }
  if (what == "bfs" && args.size() >= 3) {
    const auto source = static_cast<std::uint64_t>(std::strtoull(args[2].c_str(), nullptr, 10));
    auto       st     = c.stats(0);
    auto       r      = c.bfs(0, source);
    if (!st || !st->ok() || !r || !r->ok()) {
      std::fprintf(stderr, "error: bfs failed: %s\n",
                   r ? sv::status_name(r->st) : "disconnected");
      return 1;
    }
    auto info = sv::decode_stats_reply(st->payload);
    auto b    = sv::decode_bfs_reply(r->payload);
    // Byte-identical to nwhy_tool's print_bfs_summary second line.
    std::printf("reached %zu/%zu hyperedges, %zu/%zu hypernodes, max depth %u\n",
                static_cast<std::size_t>(b.reached_edges),
                static_cast<std::size_t>(info.num_hyperedges),
                static_cast<std::size_t>(b.reached_nodes),
                static_cast<std::size_t>(info.num_hypernodes),
                static_cast<unsigned>(b.max_depth));
    return 0;
  }
  usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 2;
  }
  const std::string mode = args[0];
  args.erase(args.begin());
  try {
    if (mode == "serve") return cmd_serve(args);
    if (mode == "load") return cmd_load(args);
    if (mode == "ask") return cmd_ask(args);
  } catch (const nw::hypergraph::io_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
