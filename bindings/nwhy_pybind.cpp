// bindings/nwhy_pybind.cpp
//
// The `nwhy` Python module from the paper's Listing 5, as a pybind11
// extension over the C++ core.  This file compiles only when pybind11 is
// installed (see bindings/CMakeLists.txt); in environments without it, the
// same surface is reachable through the C ABI in src/capi/ (which
// examples/pyapi_emulation.cpp drives).
//
// Python usage (Listing 5):
//
//   import numpy as np, nwhy
//   hg   = nwhy.NWHypergraph(row, col, weight)
//   s2lg = hg.s_linegraph(s=2, edges=True)
//   s2lg.is_s_connected()
//   s2lg.s_connected_components()
//   ...
#include <pybind11/numpy.h>
#include <pybind11/pybind11.h>
#include <pybind11/stl.h>

#include <optional>
#include <span>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/s_linegraph.hpp"
#include "nwobs/profile.hpp"

namespace py = pybind11;
using nw::vertex_id_t;
using nw::hypergraph::NWHypergraph;
using nw::hypergraph::s_linegraph;

namespace {

/// Wrap an s_linegraph with the Listing-5 spelling of every metric.
class PySlinegraph {
public:
  explicit PySlinegraph(s_linegraph lg) : lg_(std::move(lg)) {}

  bool is_s_connected() const { return lg_.is_s_connected(); }

  std::vector<vertex_id_t> s_neighbors(vertex_id_t v) const { return lg_.s_neighbors(v); }
  std::size_t              s_degree(vertex_id_t v) const { return lg_.s_degree(v); }

  py::array_t<vertex_id_t> s_connected_components() const {
    auto labels = lg_.s_connected_components();
    return py::array_t<vertex_id_t>(static_cast<py::ssize_t>(labels.size()), labels.data());
  }

  std::optional<std::size_t> s_distance(vertex_id_t src, vertex_id_t dest) const {
    return lg_.s_distance(src, dest);
  }

  std::vector<vertex_id_t> s_path(vertex_id_t src, vertex_id_t dest) const {
    return lg_.s_path(src, dest);
  }

  std::vector<double> s_betweenness_centrality(bool normalized) const {
    return lg_.s_betweenness_centrality(normalized);
  }
  std::vector<double> s_closeness_centrality() const { return lg_.s_closeness_centrality(); }
  std::vector<double> s_harmonic_closeness_centrality() const {
    return lg_.s_harmonic_closeness_centrality();
  }
  std::vector<vertex_id_t> s_eccentricity() const { return lg_.s_eccentricity(); }

  // Extensions beyond Listing 5.
  std::vector<double>      s_pagerank(double damping) const { return lg_.s_pagerank(damping); }
  std::vector<std::size_t> s_core_numbers() const { return lg_.s_core_numbers(); }
  std::size_t              s_diameter() const { return lg_.s_diameter(); }
  std::size_t              num_edges() const { return lg_.num_edges(); }
  std::size_t              num_vertices() const { return lg_.num_vertices(); }

private:
  s_linegraph lg_;
};

class PyHypergraph {
public:
  /// NWHypergraph(row, col, weight): row = hyperedge ids, col = hypernode
  /// ids; weights accepted for interface fidelity and ignored by the
  /// structural metrics, as in the paper.
  PyHypergraph(py::array_t<vertex_id_t, py::array::c_style | py::array::forcecast> row,
               py::array_t<vertex_id_t, py::array::c_style | py::array::forcecast> col,
               py::object /*weight*/)
      : hg_(std::span<const vertex_id_t>(row.data(), static_cast<std::size_t>(row.size())),
            std::span<const vertex_id_t>(col.data(), static_cast<std::size_t>(col.size()))) {}

  PySlinegraph s_linegraph(std::size_t s, bool edges) const {
    return PySlinegraph(hg_.make_s_linegraph(s, edges));
  }

  std::size_t num_hyperedges() const { return hg_.num_hyperedges(); }
  std::size_t num_hypernodes() const { return hg_.num_hypernodes(); }
  std::vector<std::size_t> edge_sizes() const { return hg_.edge_sizes(); }
  std::vector<std::size_t> node_degrees() const { return hg_.node_degrees(); }
  std::vector<vertex_id_t> toplexes() const { return hg_.toplexes(); }

private:
  NWHypergraph hg_;
};

}  // namespace

PYBIND11_MODULE(nwhy, m) {
  m.doc() = "NWHy: parallel hypergraph analytics (paper Listing 5 API)";

  // Observability: the accumulated counter/timer registry as a JSON string
  // (schema: {counters, timers, env, threads} — see DESIGN.md).  Kept as a
  // string rather than a dict so the schema is identical to the C++ tools'
  // --profile output; callers `json.loads()` it.
  m.def("profile_snapshot", [] { return nw::obs::profile_json(); },
        "JSON snapshot of the nwobs counter/timer registry");
  m.def("profile_reset", [] { nw::obs::reset_profile(); },
        "Zero all nwobs counters and drop timer aggregates");

  py::class_<PyHypergraph>(m, "NWHypergraph")
      .def(py::init<py::array_t<vertex_id_t, py::array::c_style | py::array::forcecast>,
                    py::array_t<vertex_id_t, py::array::c_style | py::array::forcecast>,
                    py::object>(),
           py::arg("row"), py::arg("col"), py::arg("weight") = py::none())
      .def("s_linegraph", &PyHypergraph::s_linegraph, py::arg("s") = 1, py::arg("edges") = true)
      .def_property_readonly("num_hyperedges", &PyHypergraph::num_hyperedges)
      .def_property_readonly("num_hypernodes", &PyHypergraph::num_hypernodes)
      .def("edge_sizes", &PyHypergraph::edge_sizes)
      .def("node_degrees", &PyHypergraph::node_degrees)
      .def("toplexes", &PyHypergraph::toplexes);

  py::class_<PySlinegraph>(m, "Slinegraph")
      .def("is_s_connected", &PySlinegraph::is_s_connected)
      .def("s_neighbors", &PySlinegraph::s_neighbors, py::arg("v"))
      .def("s_degree", &PySlinegraph::s_degree, py::arg("v"))
      .def("s_connected_components", &PySlinegraph::s_connected_components)
      .def("s_distance", &PySlinegraph::s_distance, py::arg("src"), py::arg("dest"))
      .def("s_path", &PySlinegraph::s_path, py::arg("src"), py::arg("dest"))
      .def("s_betweenness_centrality", &PySlinegraph::s_betweenness_centrality,
           py::arg("normalized") = true)
      .def("s_closeness_centrality", &PySlinegraph::s_closeness_centrality)
      .def("s_harmonic_closeness_centrality", &PySlinegraph::s_harmonic_closeness_centrality)
      .def("s_eccentricity", &PySlinegraph::s_eccentricity)
      .def("s_pagerank", &PySlinegraph::s_pagerank, py::arg("damping") = 0.85)
      .def("s_core_numbers", &PySlinegraph::s_core_numbers)
      .def("s_diameter", &PySlinegraph::s_diameter)
      .def_property_readonly("num_edges", &PySlinegraph::num_edges)
      .def_property_readonly("num_vertices", &PySlinegraph::num_vertices);
}
