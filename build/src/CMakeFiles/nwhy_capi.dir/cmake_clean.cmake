file(REMOVE_RECURSE
  "CMakeFiles/nwhy_capi.dir/capi/nwhy_capi.cpp.o"
  "CMakeFiles/nwhy_capi.dir/capi/nwhy_capi.cpp.o.d"
  "libnwhy_capi.a"
  "libnwhy_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwhy_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
