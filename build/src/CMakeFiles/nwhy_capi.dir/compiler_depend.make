# Empty compiler generated dependencies file for nwhy_capi.
# This may be replaced when dependencies are built.
