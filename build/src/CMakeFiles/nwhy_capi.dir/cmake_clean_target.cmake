file(REMOVE_RECURSE
  "libnwhy_capi.a"
)
