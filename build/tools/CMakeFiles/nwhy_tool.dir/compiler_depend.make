# Empty compiler generated dependencies file for nwhy_tool.
# This may be replaced when dependencies are built.
