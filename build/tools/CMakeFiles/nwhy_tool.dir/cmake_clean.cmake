file(REMOVE_RECURSE
  "CMakeFiles/nwhy_tool.dir/nwhy_tool.cpp.o"
  "CMakeFiles/nwhy_tool.dir/nwhy_tool.cpp.o.d"
  "nwhy_tool"
  "nwhy_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwhy_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
