# Empty dependencies file for nwhy_tool.
# This may be replaced when dependencies are built.
