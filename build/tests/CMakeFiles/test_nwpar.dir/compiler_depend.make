# Empty compiler generated dependencies file for test_nwpar.
# This may be replaced when dependencies are built.
