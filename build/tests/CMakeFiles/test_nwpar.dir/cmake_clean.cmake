file(REMOVE_RECURSE
  "CMakeFiles/test_nwpar.dir/test_nwpar.cpp.o"
  "CMakeFiles/test_nwpar.dir/test_nwpar.cpp.o.d"
  "test_nwpar"
  "test_nwpar.pdb"
  "test_nwpar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nwpar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
