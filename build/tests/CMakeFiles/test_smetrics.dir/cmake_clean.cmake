file(REMOVE_RECURSE
  "CMakeFiles/test_smetrics.dir/test_smetrics.cpp.o"
  "CMakeFiles/test_smetrics.dir/test_smetrics.cpp.o.d"
  "test_smetrics"
  "test_smetrics.pdb"
  "test_smetrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smetrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
