# Empty compiler generated dependencies file for test_smetrics.
# This may be replaced when dependencies are built.
