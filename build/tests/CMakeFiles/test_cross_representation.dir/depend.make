# Empty dependencies file for test_cross_representation.
# This may be replaced when dependencies are built.
