file(REMOVE_RECURSE
  "CMakeFiles/test_cross_representation.dir/test_cross_representation.cpp.o"
  "CMakeFiles/test_cross_representation.dir/test_cross_representation.cpp.o.d"
  "test_cross_representation"
  "test_cross_representation.pdb"
  "test_cross_representation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
