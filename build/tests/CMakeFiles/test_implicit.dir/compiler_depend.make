# Empty compiler generated dependencies file for test_implicit.
# This may be replaced when dependencies are built.
