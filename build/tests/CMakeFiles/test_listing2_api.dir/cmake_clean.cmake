file(REMOVE_RECURSE
  "CMakeFiles/test_listing2_api.dir/test_listing2_api.cpp.o"
  "CMakeFiles/test_listing2_api.dir/test_listing2_api.cpp.o.d"
  "test_listing2_api"
  "test_listing2_api.pdb"
  "test_listing2_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_listing2_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
