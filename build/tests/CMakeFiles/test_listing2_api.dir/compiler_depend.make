# Empty compiler generated dependencies file for test_listing2_api.
# This may be replaced when dependencies are built.
