# Empty dependencies file for test_nwgraph_io.
# This may be replaced when dependencies are built.
