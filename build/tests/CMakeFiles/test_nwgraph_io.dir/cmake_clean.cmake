file(REMOVE_RECURSE
  "CMakeFiles/test_nwgraph_io.dir/test_nwgraph_io.cpp.o"
  "CMakeFiles/test_nwgraph_io.dir/test_nwgraph_io.cpp.o.d"
  "test_nwgraph_io"
  "test_nwgraph_io.pdb"
  "test_nwgraph_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nwgraph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
