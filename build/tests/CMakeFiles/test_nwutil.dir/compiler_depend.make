# Empty compiler generated dependencies file for test_nwutil.
# This may be replaced when dependencies are built.
