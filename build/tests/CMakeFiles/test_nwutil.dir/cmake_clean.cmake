file(REMOVE_RECURSE
  "CMakeFiles/test_nwutil.dir/test_nwutil.cpp.o"
  "CMakeFiles/test_nwutil.dir/test_nwutil.cpp.o.d"
  "test_nwutil"
  "test_nwutil.pdb"
  "test_nwutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nwutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
