# Empty compiler generated dependencies file for test_nwhypergraph.
# This may be replaced when dependencies are built.
