file(REMOVE_RECURSE
  "CMakeFiles/test_nwhypergraph.dir/test_nwhypergraph.cpp.o"
  "CMakeFiles/test_nwhypergraph.dir/test_nwhypergraph.cpp.o.d"
  "test_nwhypergraph"
  "test_nwhypergraph.pdb"
  "test_nwhypergraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nwhypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
