# Empty dependencies file for test_toplex.
# This may be replaced when dependencies are built.
