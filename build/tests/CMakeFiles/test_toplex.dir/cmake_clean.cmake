file(REMOVE_RECURSE
  "CMakeFiles/test_toplex.dir/test_toplex.cpp.o"
  "CMakeFiles/test_toplex.dir/test_toplex.cpp.o.d"
  "test_toplex"
  "test_toplex.pdb"
  "test_toplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
