file(REMOVE_RECURSE
  "CMakeFiles/test_hyper_metrics.dir/test_hyper_metrics.cpp.o"
  "CMakeFiles/test_hyper_metrics.dir/test_hyper_metrics.cpp.o.d"
  "test_hyper_metrics"
  "test_hyper_metrics.pdb"
  "test_hyper_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
