# Empty compiler generated dependencies file for test_hypergraph_containers.
# This may be replaced when dependencies are built.
