file(REMOVE_RECURSE
  "CMakeFiles/test_hypergraph_containers.dir/test_hypergraph_containers.cpp.o"
  "CMakeFiles/test_hypergraph_containers.dir/test_hypergraph_containers.cpp.o.d"
  "test_hypergraph_containers"
  "test_hypergraph_containers.pdb"
  "test_hypergraph_containers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypergraph_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
