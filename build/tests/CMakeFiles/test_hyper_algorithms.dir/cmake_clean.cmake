file(REMOVE_RECURSE
  "CMakeFiles/test_hyper_algorithms.dir/test_hyper_algorithms.cpp.o"
  "CMakeFiles/test_hyper_algorithms.dir/test_hyper_algorithms.cpp.o.d"
  "test_hyper_algorithms"
  "test_hyper_algorithms.pdb"
  "test_hyper_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
