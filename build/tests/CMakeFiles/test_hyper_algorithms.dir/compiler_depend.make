# Empty compiler generated dependencies file for test_hyper_algorithms.
# This may be replaced when dependencies are built.
