file(REMOVE_RECURSE
  "CMakeFiles/test_slinegraph_construction.dir/test_slinegraph_construction.cpp.o"
  "CMakeFiles/test_slinegraph_construction.dir/test_slinegraph_construction.cpp.o.d"
  "test_slinegraph_construction"
  "test_slinegraph_construction.pdb"
  "test_slinegraph_construction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slinegraph_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
