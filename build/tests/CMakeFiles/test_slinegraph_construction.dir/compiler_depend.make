# Empty compiler generated dependencies file for test_slinegraph_construction.
# This may be replaced when dependencies are built.
