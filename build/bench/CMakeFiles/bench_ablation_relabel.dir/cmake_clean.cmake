file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_relabel.dir/bench_ablation_relabel.cpp.o"
  "CMakeFiles/bench_ablation_relabel.dir/bench_ablation_relabel.cpp.o.d"
  "bench_ablation_relabel"
  "bench_ablation_relabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
