file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_slinegraph.dir/bench_fig9_slinegraph.cpp.o"
  "CMakeFiles/bench_fig9_slinegraph.dir/bench_fig9_slinegraph.cpp.o.d"
  "bench_fig9_slinegraph"
  "bench_fig9_slinegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_slinegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
