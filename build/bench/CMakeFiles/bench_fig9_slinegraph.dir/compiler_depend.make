# Empty compiler generated dependencies file for bench_fig9_slinegraph.
# This may be replaced when dependencies are built.
