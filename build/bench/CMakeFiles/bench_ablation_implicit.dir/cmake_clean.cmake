file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_implicit.dir/bench_ablation_implicit.cpp.o"
  "CMakeFiles/bench_ablation_implicit.dir/bench_ablation_implicit.cpp.o.d"
  "bench_ablation_implicit"
  "bench_ablation_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
