# Empty dependencies file for bench_ablation_implicit.
# This may be replaced when dependencies are built.
