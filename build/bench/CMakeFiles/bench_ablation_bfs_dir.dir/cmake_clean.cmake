file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bfs_dir.dir/bench_ablation_bfs_dir.cpp.o"
  "CMakeFiles/bench_ablation_bfs_dir.dir/bench_ablation_bfs_dir.cpp.o.d"
  "bench_ablation_bfs_dir"
  "bench_ablation_bfs_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bfs_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
