# Empty dependencies file for bench_ablation_bfs_dir.
# This may be replaced when dependencies are built.
