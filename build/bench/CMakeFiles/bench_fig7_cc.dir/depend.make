# Empty dependencies file for bench_fig7_cc.
# This may be replaced when dependencies are built.
