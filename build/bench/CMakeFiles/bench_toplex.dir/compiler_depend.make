# Empty compiler generated dependencies file for bench_toplex.
# This may be replaced when dependencies are built.
