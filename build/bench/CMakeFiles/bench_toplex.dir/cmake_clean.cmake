file(REMOVE_RECURSE
  "CMakeFiles/bench_toplex.dir/bench_toplex.cpp.o"
  "CMakeFiles/bench_toplex.dir/bench_toplex.cpp.o.d"
  "bench_toplex"
  "bench_toplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
