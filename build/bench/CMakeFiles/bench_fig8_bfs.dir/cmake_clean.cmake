file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bfs.dir/bench_fig8_bfs.cpp.o"
  "CMakeFiles/bench_fig8_bfs.dir/bench_fig8_bfs.cpp.o.d"
  "bench_fig8_bfs"
  "bench_fig8_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
