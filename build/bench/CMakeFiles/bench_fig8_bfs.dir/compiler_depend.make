# Empty compiler generated dependencies file for bench_fig8_bfs.
# This may be replaced when dependencies are built.
