# Empty compiler generated dependencies file for matrix_route.
# This may be replaced when dependencies are built.
