file(REMOVE_RECURSE
  "CMakeFiles/matrix_route.dir/matrix_route.cpp.o"
  "CMakeFiles/matrix_route.dir/matrix_route.cpp.o.d"
  "matrix_route"
  "matrix_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
