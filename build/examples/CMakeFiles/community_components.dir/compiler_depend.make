# Empty compiler generated dependencies file for community_components.
# This may be replaced when dependencies are built.
