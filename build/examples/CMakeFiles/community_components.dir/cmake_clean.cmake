file(REMOVE_RECURSE
  "CMakeFiles/community_components.dir/community_components.cpp.o"
  "CMakeFiles/community_components.dir/community_components.cpp.o.d"
  "community_components"
  "community_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
