file(REMOVE_RECURSE
  "CMakeFiles/pyapi_emulation.dir/pyapi_emulation.cpp.o"
  "CMakeFiles/pyapi_emulation.dir/pyapi_emulation.cpp.o.d"
  "pyapi_emulation"
  "pyapi_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyapi_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
