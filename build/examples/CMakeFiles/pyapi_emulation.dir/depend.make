# Empty dependencies file for pyapi_emulation.
# This may be replaced when dependencies are built.
