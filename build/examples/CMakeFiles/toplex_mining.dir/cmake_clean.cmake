file(REMOVE_RECURSE
  "CMakeFiles/toplex_mining.dir/toplex_mining.cpp.o"
  "CMakeFiles/toplex_mining.dir/toplex_mining.cpp.o.d"
  "toplex_mining"
  "toplex_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toplex_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
