# Empty compiler generated dependencies file for toplex_mining.
# This may be replaced when dependencies are built.
