// hygra/algorithms.hpp
//
// The two comparator algorithms from the paper's evaluation:
//
//   HygraBFS — hypergraph BFS, alternating edgeMap over the two incidence
//              directions; the edgeMap is Ligra's direction-optimizing one,
//              so large frontiers run dense (pull) steps over bitmap-backed
//              subsets instead of scanning via sparse lists
//   HygraCC  — label-propagation connected components on the same primitive
//
// Implemented in the Ligra frontier idiom on the same bi-adjacency
// structures as NWHy's own algorithms, so Fig. 7 / Fig. 8 comparisons
// exercise algorithmic differences, not container differences.
#pragma once

#include <vector>

#include "hygra/edge_map.hpp"
#include "hygra/vertex_subset.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"

namespace nw::hygra {

struct bfs_result {
  std::vector<vertex_id_t> parents_edge;
  std::vector<vertex_id_t> parents_node;
};

/// Top-down hypergraph BFS from hyperedge `source`.
template <class... Attributes>
bfs_result hygra_bfs(const nw::hypergraph::biadjacency<0, Attributes...>& hyperedges,
                     const nw::hypergraph::biadjacency<1, Attributes...>& hypernodes,
                     vertex_id_t source) {
  bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;
  r.parents_edge[source] = source;

  vertex_subset edge_frontier(source);
  while (!edge_frontier.empty()) {
    vertex_subset node_frontier = edge_map(
        hyperedges, hypernodes, edge_frontier,
        [&](vertex_id_t u, vertex_id_t v) {
          return compare_and_swap(r.parents_node[v], null_vertex<>, u);
        },
        [&](vertex_id_t v) { return atomic_load(r.parents_node[v]) == null_vertex<>; });
    if (node_frontier.empty()) break;
    edge_frontier = edge_map(
        hypernodes, hyperedges, node_frontier,
        [&](vertex_id_t u, vertex_id_t v) {
          return compare_and_swap(r.parents_edge[v], null_vertex<>, u);
        },
        [&](vertex_id_t v) { return atomic_load(r.parents_edge[v]) == null_vertex<>; });
  }
  return r;
}

struct cc_result {
  std::vector<vertex_id_t> labels_edge;
  std::vector<vertex_id_t> labels_node;
};

/// Label-propagation connected components, frontier-driven: only entities
/// whose label changed propagate in the next round (Hygra's formulation).
template <class... Attributes>
cc_result hygra_cc(const nw::hypergraph::biadjacency<0, Attributes...>& hyperedges,
                   const nw::hypergraph::biadjacency<1, Attributes...>& hypernodes) {
  const std::size_t ne = hyperedges.size();
  const std::size_t nv = hypernodes.size();
  cc_result         r;
  r.labels_edge.resize(ne);
  r.labels_node.resize(nv);
  for (std::size_t e = 0; e < ne; ++e) r.labels_edge[e] = static_cast<vertex_id_t>(e);
  for (std::size_t v = 0; v < nv; ++v) r.labels_node[v] = static_cast<vertex_id_t>(ne + v);

  // Start from all hyperedges.
  std::vector<vertex_id_t> all(ne);
  for (std::size_t e = 0; e < ne; ++e) all[e] = static_cast<vertex_id_t>(e);
  vertex_subset edge_frontier(std::move(all));

  while (!edge_frontier.empty()) {
    vertex_subset node_frontier = edge_map(
        hyperedges, hypernodes, edge_frontier,
        [&](vertex_id_t u, vertex_id_t v) {
          return write_min(r.labels_node[v], atomic_load(r.labels_edge[u]));
        },
        [](vertex_id_t) { return true; });
    if (node_frontier.empty()) break;
    edge_frontier = edge_map(
        hypernodes, hyperedges, node_frontier,
        [&](vertex_id_t u, vertex_id_t v) {
          return write_min(r.labels_edge[v], atomic_load(r.labels_node[u]));
        },
        [](vertex_id_t) { return true; });
  }
  return r;
}

}  // namespace nw::hygra
