// hygra/vertex_subset.hpp
//
// A faithful-in-spirit reimplementation of the Ligra/Hygra programming
// model used as the paper's comparator (Shun, PPoPP'20).  Hygra represents
// hypergraph frontiers as *vertex subsets* over one of the two index
// spaces and advances them with edgeMap-style primitives.
//
// Like Ligra's vertexSubset, the subset is *hybrid*: it may hold a sparse
// id list, a dense bitmap, or both.  Dense edgeMap steps hand back a
// bitmap-backed subset directly (no per-element conversion), and the
// representations are materialized from one another lazily through the
// parallel conversions in nwpar/frontier.hpp (per-word popcount + scan +
// scatter one way, parallel bit scatter the other) — never by a serial
// full-universe scan.
#pragma once

#include <vector>

#include "nwpar/frontier.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"

namespace nw::hygra {

/// Hybrid sparse/dense subset of one index space (hyperedges or
/// hypernodes).  Value-semantic, like Ligra's vertexSubset.
class vertex_subset {
public:
  vertex_subset() = default;
  explicit vertex_subset(vertex_id_t single) : ids_{single}, size_(1) {}
  explicit vertex_subset(std::vector<vertex_id_t> ids)
      : ids_(std::move(ids)), size_(ids_.size()) {}
  /// Dense subset: `count` must equal the number of set bits.
  vertex_subset(nw::bitmap bits, std::size_t count)
      : bits_(std::move(bits)), size_(count), sparse_valid_(false), dense_valid_(true) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool        empty() const { return size_ == 0; }
  [[nodiscard]] bool        is_dense() const { return dense_valid_ && !sparse_valid_; }

  /// Sparse view (parallel dense->sparse conversion on first use).
  [[nodiscard]] const std::vector<vertex_id_t>& ids() const {
    materialize_sparse();
    return ids_;
  }

  [[nodiscard]] auto begin() const { return ids().begin(); }
  [[nodiscard]] auto end() const { return ids().end(); }

  /// Dense view over a universe of `n` entities (parallel sparse->dense
  /// conversion on first use).
  [[nodiscard]] const nw::bitmap& bits(std::size_t n) const {
    materialize_dense(n);
    return bits_;
  }

private:
  void materialize_sparse() const {
    if (sparse_valid_) return;
    size_         = par::bitmap_to_sparse(bits_, ids_);
    sparse_valid_ = true;
  }

  void materialize_dense(std::size_t n) const {
    if (dense_valid_ && bits_.size() >= n) return;
    // The bitmap is rebuilt from the sparse ids — make sure they exist first
    // (a dense-only subset widened to a larger universe would otherwise be
    // silently rebuilt from a stale/empty id list).
    materialize_sparse();
    bits_.resize(n);
    par::bitmap_fill_from(bits_, ids_);
    dense_valid_ = true;
  }

  // Lazily materialized representations (logically const).
  mutable std::vector<vertex_id_t> ids_;
  mutable nw::bitmap               bits_;
  mutable std::size_t              size_         = 0;
  mutable bool                     sparse_valid_ = true;
  mutable bool                     dense_valid_  = false;
};

}  // namespace nw::hygra
