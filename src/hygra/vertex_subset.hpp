// hygra/vertex_subset.hpp
//
// A faithful-in-spirit reimplementation of the Ligra/Hygra programming
// model used as the paper's comparator (Shun, PPoPP'20).  Hygra represents
// hypergraph frontiers as *vertex subsets* over one of the two index
// spaces and advances them with edgeMap-style primitives.  We provide the
// sparse vertex_subset plus the two mapping primitives the HygraBFS /
// HygraCC algorithms need.
#pragma once

#include <vector>

#include "nwutil/defs.hpp"

namespace nw::hygra {

/// Sparse subset of one index space (hyperedges or hypernodes).
class vertex_subset {
public:
  vertex_subset() = default;
  explicit vertex_subset(vertex_id_t single) : ids_{single} {}
  explicit vertex_subset(std::vector<vertex_id_t> ids) : ids_(std::move(ids)) {}

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool        empty() const { return ids_.empty(); }
  [[nodiscard]] const std::vector<vertex_id_t>& ids() const { return ids_; }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }

private:
  std::vector<vertex_id_t> ids_;
};

}  // namespace nw::hygra
