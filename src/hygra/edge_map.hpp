// hygra/edge_map.hpp
//
// Ligra-style edgeMap over one direction of the bipartite incidence, in
// both of Ligra's modes:
//
//   sparse (push) — for every u in the frontier, apply `update(u, v)` to
//                   each incidence (u, v), keeping v when update returned
//                   true and `cond(v)` held
//   dense (pull)  — for every target v with cond(v), scan v's own
//                   incidence list for frontier members; the scan stops as
//                   soon as cond(v) turns false (Ligra's early exit); the
//                   output subset comes back bitmap-backed
//
// plus the direction-optimizing dispatcher that picks between them with
// Ligra's |F| + sum-of-degrees > m/20 rule (the degree sum is computed by
// a parallel reduction, never a serial frontier walk).
#pragma once

#include "hygra/vertex_subset.hpp"
#include "nwgraph/concepts.hpp"
#include "nwobs/counters.hpp"
#include "nwpar/frontier.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hygra {

/// Push-style (sparse) edgeMap: the original Hygra primitive.
template <class Graph, class Update, class Cond>
vertex_subset edge_map_sparse(const Graph& g, const vertex_subset& frontier, Update update,
                              Cond cond) {
  const auto&                               ids = frontier.ids();
  par::per_thread<std::vector<vertex_id_t>> out;
  par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u = ids[i];
    for (auto&& e : g[u]) {
      vertex_id_t v = nw::graph::target(e);
      if (cond(v) && update(u, v)) {
        out.local(tid).push_back(v);
      }
    }
  });
  return vertex_subset(par::merge_thread_vectors(out));
}

/// Backward-compatible name for the push-style primitive.
template <class Graph, class Update, class Cond>
vertex_subset edge_map(const Graph& g, const vertex_subset& frontier, Update update, Cond cond) {
  return edge_map_sparse(g, frontier, update, cond);
}

/// Pull-style (dense) edgeMap: `g_target` is the incidence *out of* the
/// target side (each target entity's own list); `frontier_universe` is the
/// size of the index space the frontier lives in.  Every target v with
/// cond(v) scans its list for frontier members, applying update(u, v) for
/// each hit until cond(v) turns false.  Returns a bitmap-backed subset —
/// a following dense step consumes it without any conversion.
template <class GraphT, class Update, class Cond>
vertex_subset edge_map_dense(const GraphT& g_target, const vertex_subset& frontier,
                             std::size_t frontier_universe, Update update, Cond cond) {
  const nw::bitmap&            fb = frontier.bits(frontier_universe);
  nw::bitmap                   out_bits(g_target.size());
  par::per_thread<std::size_t> added;
  par::parallel_for(0, g_target.size(), [&](unsigned tid, std::size_t v) {
    if (!cond(static_cast<vertex_id_t>(v))) return;
    bool hit = false;
    for (auto&& e : g_target[v]) {
      vertex_id_t u = nw::graph::target(e);
      if (fb.get(u) && update(u, static_cast<vertex_id_t>(v))) hit = true;
      if (!cond(static_cast<vertex_id_t>(v))) break;  // Ligra's early exit
    }
    if (hit) {
      // One writer per *bit*, but neighbouring bits share a 64-bit word and
      // chunk boundaries are not word-aligned — the |= must be atomic.
      out_bits.set_atomic(static_cast<std::size_t>(v));
      ++added.local(tid);
    }
  });
  std::size_t total = 0;
  added.for_each([&](std::size_t& a) { total += a; });
  return vertex_subset(std::move(out_bits), total);
}

/// Direction-optimizing edgeMap: `g_frontier` maps the frontier's side onto
/// the target side (push direction), `g_target` maps the target side back
/// (pull direction).  Ligra's rule: go dense when
/// |F| + sum of out-degrees(F) > m / 20.  A bitmap-backed frontier whose
/// size alone clears the threshold stays dense with no conversion at all;
/// otherwise the degree sum is a parallel reduction over the sparse ids.
template <class Graph, class GraphT, class Update, class Cond>
vertex_subset edge_map(const Graph& g_frontier, const GraphT& g_target,
                       const vertex_subset& frontier, Update update, Cond cond) {
  const std::size_t threshold = std::max<std::size_t>(1, g_frontier.num_edges() / 20);
  bool              go_dense  = frontier.size() > threshold;
  if (!go_dense) {
    const auto& ids    = frontier.ids();
    std::size_t degsum = par::parallel_reduce(
        0, ids.size(), std::size_t{0},
        [&](std::size_t acc, std::size_t i) { return acc + g_frontier.degree(ids[i]); },
        [](std::size_t a, std::size_t b) { return a + b; });
    go_dense = frontier.size() + degsum > threshold;
  }
  if (go_dense) {
    NWOBS_COUNT("hygra.steps_dense", 0, 1);
    return edge_map_dense(g_target, frontier, g_frontier.size(), update, cond);
  }
  NWOBS_COUNT("hygra.steps_sparse", 0, 1);
  return edge_map_sparse(g_frontier, frontier, update, cond);
}

/// vertexMap: apply `fn` to every member of a subset.  The sparse view is
/// materialized once, before the parallel loop (the lazy conversion is not
/// itself thread-safe to trigger concurrently).
template <class Fn>
void vertex_map(const vertex_subset& subset, Fn fn) {
  const auto& ids = subset.ids();
  par::parallel_for(0, ids.size(), [&](std::size_t i) { fn(ids[i]); });
}

}  // namespace nw::hygra
