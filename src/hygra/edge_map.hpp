// hygra/edge_map.hpp
//
// Ligra-style edgeMap over one direction of the bipartite incidence: apply
// `update(u, v)` to every incidence (u in frontier, v a neighbor), keeping v
// in the output subset when `update` returns true and `cond(v)` held.  This
// is the push-style (sparse) edgeMap only — Hygra's BFS comparator in the
// paper is the *top-down* algorithm, which is exactly this primitive.
#pragma once

#include "hygra/vertex_subset.hpp"
#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hygra {

template <class Graph, class Update, class Cond>
vertex_subset edge_map(const Graph& g, const vertex_subset& frontier, Update update, Cond cond) {
  par::per_thread<std::vector<vertex_id_t>> out;
  par::parallel_for(0, frontier.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u = frontier.ids()[i];
    for (auto&& e : g[u]) {
      vertex_id_t v = nw::graph::target(e);
      if (cond(v) && update(u, v)) {
        out.local(tid).push_back(v);
      }
    }
  });
  return vertex_subset(par::merge_thread_vectors(out));
}

/// vertexMap: apply `fn` to every member of a subset.
template <class Fn>
void vertex_map(const vertex_subset& subset, Fn fn) {
  par::parallel_for(0, subset.size(), [&](std::size_t i) { fn(subset.ids()[i]); });
}

}  // namespace nw::hygra
