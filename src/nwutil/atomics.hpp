// nwutil/atomics.hpp
//
// Lock-free helper operations on plain arrays, in the style used by GAPBS
// and Ligra-family frameworks: algorithms keep results in cache-friendly
// std::vector<T> and touch elements through these helpers only at the
// (rare) contended writes.
//
// All helpers use std::atomic_ref (C++20), so the underlying storage stays
// a plain vector and sequential readers pay nothing.
#pragma once

#include <atomic>

namespace nw {

/// Atomically set `*loc = min(*loc, value)`.  Returns true if the stored
/// value was updated (i.e. `value` was strictly smaller).
template <class T>
bool write_min(T& loc, T value) {
  std::atomic_ref<T> ref(loc);
  T                  observed = ref.load(std::memory_order_relaxed);
  while (value < observed) {
    if (ref.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically set `*loc = max(*loc, value)`.  Returns true on update.
template <class T>
bool write_max(T& loc, T value) {
  std::atomic_ref<T> ref(loc);
  T                  observed = ref.load(std::memory_order_relaxed);
  while (value > observed) {
    if (ref.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Single-shot CAS from `expected` to `desired`; the BFS parent-claim idiom.
template <class T>
bool compare_and_swap(T& loc, T expected, T desired) {
  std::atomic_ref<T> ref(loc);
  return ref.compare_exchange_strong(expected, desired, std::memory_order_relaxed);
}

/// Relaxed atomic fetch-add on a plain integer slot.
template <class T>
T fetch_add(T& loc, T delta) {
  std::atomic_ref<T> ref(loc);
  return ref.fetch_add(delta, std::memory_order_relaxed);
}

/// Relaxed atomic load of a plain slot (for cross-thread visibility in
/// label-propagation style loops).
template <class T>
T atomic_load(const T& loc) {
  std::atomic_ref<const T> ref(loc);
  return ref.load(std::memory_order_relaxed);
}

/// Relaxed atomic store.
template <class T>
void atomic_store(T& loc, T value) {
  std::atomic_ref<T> ref(loc);
  ref.store(value, std::memory_order_relaxed);
}

}  // namespace nw
