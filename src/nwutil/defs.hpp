// nwutil/defs.hpp
//
// Fundamental type aliases and checking macros shared across the NWHy
// framework.  Every subsystem includes this header first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace nw {

/// Default vertex identifier type.  32 bits covers every dataset in the
/// evaluation (largest index space is ~200M combined ids) at half the memory
/// traffic of 64-bit ids; containers are templated so callers may widen it.
using vertex_id_t = std::uint32_t;

/// Type used for CSR offsets and edge counts, which can exceed 2^32.
using offset_t = std::uint64_t;

/// Sentinel for "no vertex" / unvisited.
template <class T = vertex_id_t>
inline constexpr T null_vertex = static_cast<T>(-1);

}  // namespace nw

// NW_ASSERT: active in all build types (unlike <cassert>) because the cost
// of the checks we guard is negligible next to the graph kernels, and
// silent corruption in a parallel run is far more expensive to debug.
#define NW_ASSERT(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::fprintf(stderr, "NW_ASSERT failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, msg);                                           \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// NW_DEBUG_ASSERT: stripped in release builds; for per-element hot-loop checks.
#ifndef NDEBUG
#define NW_DEBUG_ASSERT(cond, msg) NW_ASSERT(cond, msg)
#else
#define NW_DEBUG_ASSERT(cond, msg) ((void)0)
#endif
