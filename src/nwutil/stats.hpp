// nwutil/stats.hpp
//
// Descriptive statistics over degree sequences, used by the Table-I harness
// and the generator self-checks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <numeric>
#include <span>
#include <string>
#include <vector>

namespace nw {

struct degree_stats {
  std::size_t count = 0;   ///< number of entities
  double      mean  = 0;   ///< average degree
  std::size_t max   = 0;   ///< maximum degree
  std::size_t min   = 0;   ///< minimum degree
  double      stddev = 0;  ///< population standard deviation
};

template <class T>
degree_stats compute_degree_stats(std::span<const T> degrees) {
  degree_stats s;
  s.count = degrees.size();
  if (degrees.empty()) return s;
  double      sum = 0;
  std::size_t mx = 0, mn = static_cast<std::size_t>(degrees[0]);
  for (auto d : degrees) {
    sum += static_cast<double>(d);
    mx = std::max(mx, static_cast<std::size_t>(d));
    mn = std::min(mn, static_cast<std::size_t>(d));
  }
  s.mean = sum / static_cast<double>(degrees.size());
  s.max  = mx;
  s.min  = mn;
  double var = 0;
  for (auto d : degrees) {
    double diff = static_cast<double>(d) - s.mean;
    var += diff * diff;
  }
  s.stddev = std::sqrt(var / static_cast<double>(degrees.size()));
  return s;
}

/// Human-friendly compact formatting used in the Table-I reproduction:
/// 15'300'000 -> "15.3M", 3'100 -> "3.1k".
inline std::string format_compact(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace nw
