// nwutil/timer.hpp
//
// Minimal wall-clock timer used by the benchmark harnesses and examples.
#pragma once

#include <chrono>

namespace nw {

/// Wall-clock stopwatch.  `elapsed_ms()` may be called repeatedly; `lap_ms()`
/// returns time since the previous lap (or construction) and resets the lap.
class timer {
  using clock = std::chrono::steady_clock;

public:
  timer() : start_(clock::now()), lap_(start_) {}

  void reset() {
    start_ = clock::now();
    lap_   = start_;
  }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1000.0; }

  double lap_ms() {
    auto now = clock::now();
    double d = std::chrono::duration<double, std::milli>(now - lap_).count();
    lap_     = now;
    return d;
  }

private:
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace nw
