// nwutil/env.hpp
//
// Strict environment-knob parsing.  The historical call sites used
// std::atoi / std::atol, which silently accept trailing junk ("8x" -> 8),
// silently ignore garbage ("abc" -> 0 -> fallback, no diagnostic), and are
// undefined behaviour on out-of-range input ("9999999999").  Every numeric
// NWHY_* knob now goes through env_u64_strict:
//
//   * unset            -> fallback, silently (the normal case)
//   * empty / garbage / trailing junk / sign prefix / overflow / below
//     `min` / above `max` -> fallback, with a one-time warning on stderr
//     naming the variable and the offending value (per-name, so a process
//     reading one bad knob from several sites warns once)
//
// std::from_chars is the parsing primitive: locale-independent, rejects
// leading whitespace and '+'/'-' for unsigned targets, and reports overflow
// explicitly instead of saturating or wrapping.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace nw::util {

namespace detail {

/// One warning per knob name per process, however many call sites read it.
inline void warn_invalid_env_once(const char* name, const char* value, std::uint64_t min,
                                  std::uint64_t max, std::uint64_t fallback) {
  static std::mutex            mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex>  lock(mutex);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr,
               "nwhy: ignoring invalid %s='%s' (expected an integer in [%llu, %llu]); "
               "using default %llu\n",
               name, value, static_cast<unsigned long long>(min),
               static_cast<unsigned long long>(max), static_cast<unsigned long long>(fallback));
}

}  // namespace detail

/// Parse the full string `text` as an unsigned base-10 integer.  Returns
/// false on empty input, any non-digit character (including trailing junk
/// and '+'/'-' prefixes), or overflow past std::uint64_t.
inline bool parse_u64_strict(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0') return false;
  const char* end    = text + std::strlen(text);
  auto [ptr, ec]     = std::from_chars(text, end, out, 10);
  return ec == std::errc{} && ptr == end;
}

/// Strictly-parsed unsigned environment knob.  Unset returns `fallback`
/// quietly; a set-but-invalid value (garbage, trailing junk, negative,
/// overflow, outside [min, max]) returns `fallback` with a one-time stderr
/// warning.
inline std::uint64_t env_u64_strict(const char* name, std::uint64_t fallback,
                                    std::uint64_t min = 0,
                                    std::uint64_t max = static_cast<std::uint64_t>(-1)) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!parse_u64_strict(raw, value) || value < min || value > max) {
    detail::warn_invalid_env_once(name, raw, min, max, fallback);
    return fallback;
  }
  return value;
}

}  // namespace nw::util
