// nwutil/bitmap.hpp
//
// Fixed-size bitmap with thread-safe set operations.  Used as the frontier
// representation in bottom-up BFS sweeps and as visited sets in the s-line
// graph ensemble algorithm.
//
// The bitmap itself stays serial and dependency-free; the *parallel*
// word-granular operations (clear / count / sparse<->dense conversion) live
// in nwpar/frontier.hpp and reach the storage through the word accessors
// below.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "nwutil/defs.hpp"

namespace nw {

class bitmap {
public:
  /// Bits per storage word; parallel conversions partition on this.
  static constexpr std::size_t word_bits = 64;

  bitmap() = default;
  explicit bitmap(std::size_t n) : size_(n), words_((n + word_bits - 1) / word_bits, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Keep-capacity resize: the map is re-sized to `n` bits, all zero.  The
  /// word storage is reused (vector::assign never shrinks capacity), so a
  /// frontier that alternates between levels of the same universe never
  /// re-faults pages.
  void resize(std::size_t n) {
    size_ = n;
    words_.assign((n + word_bits - 1) / word_bits, 0);
  }

  [[nodiscard]] bool get(std::size_t i) const {
    NW_DEBUG_ASSERT(i < size_, "bitmap::get out of range");
    return (words_[i / word_bits] >> (i % word_bits)) & 1u;
  }

  /// Non-atomic set; safe only when each bit is written by one thread or
  /// the bitmap is being filled sequentially.
  void set(std::size_t i) {
    NW_DEBUG_ASSERT(i < size_, "bitmap::set out of range");
    words_[i / word_bits] |= (std::uint64_t{1} << (i % word_bits));
  }

  /// Atomic set; returns true if this call flipped the bit from 0 to 1.
  bool set_atomic(std::size_t i) {
    NW_DEBUG_ASSERT(i < size_, "bitmap::set_atomic out of range");
    std::atomic_ref<std::uint64_t> ref(words_[i / word_bits]);
    std::uint64_t                  mask = std::uint64_t{1} << (i % word_bits);
    std::uint64_t                  prev = ref.fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Atomic read (for concurrent sweeps over a bitmap being written).
  [[nodiscard]] bool get_atomic(std::size_t i) const {
    std::atomic_ref<const std::uint64_t> ref(words_[i / word_bits]);
    return (ref.load(std::memory_order_relaxed) >> (i % word_bits)) & 1u;
  }

  /// Population count over the whole map (serial; see par::bitmap_count for
  /// the pool-parallel version).
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (auto word : words_) total += static_cast<std::size_t>(std::popcount(word));
    return total;
  }

  // --- word-granular access (the substrate of the parallel conversions) ----

  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  [[nodiscard]] std::uint64_t word(std::size_t w) const {
    NW_DEBUG_ASSERT(w < words_.size(), "bitmap::word out of range");
    return words_[w];
  }

  void set_word(std::size_t w, std::uint64_t value) {
    NW_DEBUG_ASSERT(w < words_.size(), "bitmap::set_word out of range");
    words_[w] = value;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

  void swap(bitmap& other) noexcept {
    std::swap(size_, other.size_);
    words_.swap(other.words_);
  }

private:
  std::size_t                size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nw
