// nwutil/bitmap.hpp
//
// Fixed-size bitmap with thread-safe set operations.  Used as the frontier
// representation in bottom-up BFS sweeps and as visited sets in the s-line
// graph ensemble algorithm.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nwutil/defs.hpp"

namespace nw {

class bitmap {
  static constexpr std::size_t kBits = 64;

public:
  bitmap() = default;
  explicit bitmap(std::size_t n) : size_(n), words_((n + kBits - 1) / kBits, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  void resize(std::size_t n) {
    size_ = n;
    words_.assign((n + kBits - 1) / kBits, 0);
  }

  [[nodiscard]] bool get(std::size_t i) const {
    NW_DEBUG_ASSERT(i < size_, "bitmap::get out of range");
    return (words_[i / kBits] >> (i % kBits)) & 1u;
  }

  /// Non-atomic set; safe only when each bit is written by one thread or
  /// the bitmap is being filled sequentially.
  void set(std::size_t i) {
    NW_DEBUG_ASSERT(i < size_, "bitmap::set out of range");
    words_[i / kBits] |= (std::uint64_t{1} << (i % kBits));
  }

  /// Atomic set; returns true if this call flipped the bit from 0 to 1.
  bool set_atomic(std::size_t i) {
    NW_DEBUG_ASSERT(i < size_, "bitmap::set_atomic out of range");
    std::atomic_ref<std::uint64_t> ref(words_[i / kBits]);
    std::uint64_t                  mask = std::uint64_t{1} << (i % kBits);
    std::uint64_t                  prev = ref.fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Atomic read (for concurrent sweeps over a bitmap being written).
  [[nodiscard]] bool get_atomic(std::size_t i) const {
    std::atomic_ref<const std::uint64_t> ref(words_[i / kBits]);
    return (ref.load(std::memory_order_relaxed) >> (i % kBits)) & 1u;
  }

  /// Population count over the whole map.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (auto word : words_) total += static_cast<std::size_t>(__builtin_popcountll(word));
    return total;
  }

  void swap(bitmap& other) noexcept {
    std::swap(size_, other.size_);
    words_.swap(other.words_);
  }

private:
  std::size_t                size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nw
