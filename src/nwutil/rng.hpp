// nwutil/rng.hpp
//
// Deterministic, fast pseudo-random number generation for the synthetic
// dataset generators and property tests.  We avoid std::mt19937 in hot
// generator loops: xoshiro256** is ~4x faster and trivially seedable
// per-thread, which keeps parallel generation reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace nw {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
/// Passes BigCrush when used as a generator on its own.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z               = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z               = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class xoshiro256ss {
public:
  using result_type = std::uint64_t;

  explicit xoshiro256ss(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t      = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Fast path: multiply-shift is unbiased enough for bounds << 2^64; the
    // dataset generators draw ids from spaces < 2^32, where the bias of the
    // plain multiply-shift is < 2^-32 and unobservable in any statistic we
    // report.
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace nw
