// nwutil/flat_hashmap.hpp
//
// Open-addressing hash map specialized for the s-overlap counting kernel
// (Algorithm 1 and the IPDPS'22 hashmap algorithm).  The kernel's access
// pattern is: clear, then a burst of increments keyed by hyperedge id, then
// one sweep over the occupied slots.  A linear-probing table with a
// tombstone-free clear via versioning beats std::unordered_map by a wide
// margin here because there is no per-node allocation and clearing is O(1)
// amortized (bump the epoch instead of touching every slot).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nwutil/defs.hpp"

namespace nw {

/// Map from integer key to integer count with epoch-based O(1) clear.
/// Not thread-safe: each thread owns a private instance (the algorithms
/// allocate one per worker).
template <class Key = vertex_id_t, class Count = std::uint32_t>
class counting_hashmap {
  struct slot {
    Key           key;
    Count         count;
    std::uint32_t epoch;
  };

public:
  explicit counting_hashmap(std::size_t expected = 64) { rehash_for(expected); }

  /// Forget all entries in O(1).
  void clear() {
    if (++epoch_ == 0) {  // epoch wrapped: lazily reset all slots once per 2^32 clears
      for (auto& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
    occupied_ = 0;
  }

  /// Increment the count for `key` by `delta`, inserting if absent.
  void increment(Key key, Count delta = 1) {
    if (occupied_ * 8 >= slots_.size() * 7) grow();
    std::size_t i = probe_start(key);
    for (;;) {
      slot& s = slots_[i];
      if (s.epoch != epoch_) {  // empty for this epoch
        s.key   = key;
        s.count = delta;
        s.epoch = epoch_;
        ++occupied_;
        return;
      }
      if (s.key == key) {
        s.count += delta;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Count stored for `key`, 0 if absent.
  [[nodiscard]] Count get(Key key) const {
    std::size_t i = probe_start(key);
    for (;;) {
      const slot& s = slots_[i];
      if (s.epoch != epoch_) return 0;
      if (s.key == key) return s.count;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] std::size_t size() const { return occupied_; }

  /// Visit every (key, count) pair; `fn(Key, Count)`.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.epoch == epoch_) fn(s.key, s.count);
    }
  }

private:
  [[nodiscard]] std::size_t probe_start(Key key) const {
    // Fibonacci hashing spreads consecutive ids, which hyperedge ids are.
    return (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull >> shift_) & mask_;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, slot{Key{}, Count{}, 0});
    mask_  = cap - 1;
    shift_ = 64 - static_cast<unsigned>(__builtin_ctzll(cap));
    epoch_ = 1;
    occupied_ = 0;
  }

  void grow() {
    std::vector<slot> old;
    old.swap(slots_);
    std::uint32_t old_epoch = epoch_;
    rehash_for(old.size());  // doubles: rehash_for multiplies by 2
    for (const auto& s : old) {
      if (s.epoch == old_epoch) increment(s.key, s.count);
    }
  }

  std::vector<slot> slots_;
  std::size_t       mask_     = 0;
  unsigned          shift_    = 0;
  std::uint32_t     epoch_    = 0;
  std::size_t       occupied_ = 0;
};

}  // namespace nw
