// nwpar/frontier.hpp
//
// par::frontier — the unified sparse-list / dense-bitmap frontier engine
// behind every BFS-style traversal in the framework (graph BFS on the
// adjoin form, HyperBFS on the bipartite form, the Hygra comparator's
// vertex subsets, and the implicit s-BFS/s-CC loops).
//
// A frontier is a subset of a fixed universe [0, n) held in one of two
// representations:
//
//   sparse — a vector of member ids (top-down expansion iterates it)
//   dense  — a bitmap (bottom-up expansion probes it)
//
// with *parallel* conversions between them:
//
//   sparse -> dense   parallel word-clear + parallel atomic bit scatter
//   dense  -> sparse  per-word popcount -> parallel exclusive scan ->
//                     per-word bit scatter (ids come out sorted)
//
// and a *fused scout count*: traversal steps emit the next frontier through
// per-thread buffers and accumulate its out-degree sum per thread at the
// same time (GAPBS/Beamer style), so the direction-optimizing alpha test
// never needs a separate O(|frontier|) degree pass.
//
// Everything is keep-capacity: the id vector, the bitmap words, the
// per-thread emission buffers, and the per-word scratch all retain their
// allocations across levels (and across BFS runs when the frontier object
// is reused), so a traversal allocates only while growing to its high-water
// mark.
#pragma once

#include <bit>
#include <cstdlib>
#include <vector>

#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

namespace nw::par {

namespace detail {

/// Positive-integer environment knob with a fallback.  Strict parse: junk,
/// trailing characters, zero, negatives and overflow warn once and keep the
/// fallback (std::atol used to truncate "20x" to 20 and overflow into UB).
inline std::size_t env_knob(const char* name, std::size_t fallback) {
  return static_cast<std::size_t>(nw::util::env_u64_strict(name, fallback, 1));
}

}  // namespace detail

/// Direction-optimizing BFS switch parameters (Beamer et al.): go bottom-up
/// when scout_count * alpha > edges_remaining, back to top-down when the
/// frontier shrinks below |V| / beta.  Overridable per process via the
/// NWHY_BFS_ALPHA / NWHY_BFS_BETA environment variables (read once).
inline std::size_t bfs_alpha() {
  static const std::size_t a = detail::env_knob("NWHY_BFS_ALPHA", 15);
  return a;
}

inline std::size_t bfs_beta() {
  static const std::size_t b = detail::env_knob("NWHY_BFS_BETA", 18);
  return b;
}

// --- parallel bitmap primitives --------------------------------------------
//
// Word-granular, pool-parallel versions of bitmap::clear / count plus the
// two conversions.  These are free functions (not bitmap members) so
// nwutil stays dependency-free below nwpar.

/// Parallel zero of every word.
inline void bitmap_clear(nw::bitmap& bm, thread_pool& pool = thread_pool::default_pool()) {
  parallel_for(
      0, bm.num_words(), [&](std::size_t w) { bm.set_word(w, 0); }, static_blocked{}, pool);
}

/// Parallel population count (word popcounts folded by parallel_reduce).
inline std::size_t bitmap_count(const nw::bitmap& bm,
                                thread_pool&      pool = thread_pool::default_pool()) {
  return parallel_reduce(
      0, bm.num_words(), std::size_t{0},
      [&](std::size_t acc, std::size_t w) {
        return acc + static_cast<std::size_t>(std::popcount(bm.word(w)));
      },
      [](std::size_t a, std::size_t b) { return a + b; }, pool);
}

/// sparse -> dense: parallel clear + parallel atomic scatter of `ids`.
/// The bitmap must already be sized to the universe.
inline void bitmap_fill_from(nw::bitmap& bm, const std::vector<vertex_id_t>& ids,
                             thread_pool& pool = thread_pool::default_pool()) {
  bitmap_clear(bm, pool);
  parallel_for(
      0, ids.size(), [&](std::size_t i) { bm.set_atomic(ids[i]); }, blocked{}, pool);
}

/// dense -> sparse: per-word popcount, parallel exclusive scan of the word
/// counts, then a parallel per-word scatter of set-bit indices.  `out` is
/// resized to the member count (ids come out in increasing order);
/// `word_scratch` is caller-owned keep-capacity scratch.  Returns the count.
inline std::size_t bitmap_to_sparse(const nw::bitmap& bm, std::vector<vertex_id_t>& out,
                                    std::vector<std::size_t>& word_scratch,
                                    thread_pool&              pool = thread_pool::default_pool()) {
  const std::size_t nwords = bm.num_words();
  word_scratch.resize(nwords);
  parallel_for(
      0, nwords,
      [&](std::size_t w) {
        word_scratch[w] = static_cast<std::size_t>(std::popcount(bm.word(w)));
      },
      static_blocked{}, pool);
  const std::size_t total = parallel_exclusive_scan(word_scratch, pool);
  out.resize(total);
  parallel_for(
      0, nwords,
      [&](std::size_t w) {
        std::uint64_t bits = bm.word(w);
        std::size_t   pos  = word_scratch[w];
        while (bits != 0) {
          unsigned b = static_cast<unsigned>(std::countr_zero(bits));
          out[pos++] = static_cast<vertex_id_t>(w * nw::bitmap::word_bits + b);
          bits &= bits - 1;
        }
      },
      static_blocked{}, pool);
  return total;
}

/// Convenience overload with internal scratch (tests, one-shot callers).
inline std::size_t bitmap_to_sparse(const nw::bitmap& bm, std::vector<vertex_id_t>& out,
                                    thread_pool& pool = thread_pool::default_pool()) {
  std::vector<std::size_t> scratch;
  return bitmap_to_sparse(bm, out, scratch, pool);
}

// --- the hybrid frontier ----------------------------------------------------

class frontier {
public:
  explicit frontier(std::size_t universe = 0, thread_pool& pool = thread_pool::default_pool())
      : pool_(&pool), emit_(pool), scout_(pool), added_(pool) {
    init(universe);
  }

  /// Keep-capacity reset to an empty sparse frontier over [0, universe).
  void init(std::size_t universe) {
    universe_   = universe;
    size_       = 0;
    ids_.clear();
    ids_valid_  = true;
    bits_valid_ = false;
  }

  // --- queries ---------------------------------------------------------------

  [[nodiscard]] std::size_t universe_size() const { return universe_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool        empty() const { return size_ == 0; }
  [[nodiscard]] bool        has_sparse() const { return ids_valid_; }
  [[nodiscard]] bool        has_dense() const { return bits_valid_; }

  /// Frontier density in parts-per-thousand (observability gauge fodder).
  [[nodiscard]] std::size_t density_permille() const {
    return universe_ == 0 ? 0 : size_ * 1000 / universe_;
  }

  // --- building --------------------------------------------------------------

  /// Reset to the single-member frontier {v} (keep-capacity).
  void assign_single(vertex_id_t v) {
    ids_.clear();
    ids_.push_back(v);
    size_       = 1;
    ids_valid_  = true;
    bits_valid_ = false;
  }

  /// Take ownership of a sparse id list.
  void assign(std::vector<vertex_id_t> ids) {
    ids_        = std::move(ids);
    size_       = ids_.size();
    ids_valid_  = true;
    bits_valid_ = false;
  }

  // --- representations (parallel conversion on demand) -----------------------

  /// Sparse view; converts dense -> sparse in parallel when needed.
  const std::vector<vertex_id_t>& ids() {
    if (!ids_valid_) sparsify();
    return ids_;
  }

  /// Dense view; converts sparse -> dense in parallel when needed.
  const nw::bitmap& bits() {
    if (!bits_valid_) densify();
    return bits_;
  }

  /// Force the dense representation (parallel clear + atomic scatter).
  void densify() {
    if (bits_valid_) return;
    NWOBS_SCOPE_TIMER("frontier.densify");
    ensure_bits();
    parallel_for(
        0, ids_.size(), [&](std::size_t i) { bits_.set_atomic(ids_[i]); }, blocked{}, *pool_);
    bits_valid_ = true;
  }

  /// Force the sparse representation (popcount + scan + scatter).
  void sparsify() {
    if (ids_valid_) return;
    NWOBS_SCOPE_TIMER("frontier.sparsify");
    size_      = bitmap_to_sparse(bits_, ids_, word_scratch_, *pool_);
    ids_valid_ = true;
  }

  // --- per-thread sparse emission (top-down steps) ---------------------------

  /// Emit `v` into this frontier from worker `tid`.
  void emit(unsigned tid, vertex_id_t v) { emit_.local(tid).push_back(v); }

  /// Emit `v` and fuse its out-degree into the scout accumulator — the
  /// GAPBS trick that replaces the separate per-level degree pass.
  void emit(unsigned tid, vertex_id_t v, std::size_t degree) {
    emit_.local(tid).push_back(v);
    scout_.local(tid) += degree;
  }

  /// Gather all per-thread emissions into the sparse representation
  /// (parallel block-copy merge; emission buffers keep capacity).
  /// Returns the new frontier size.
  std::size_t commit_sparse() {
    size_       = merge_thread_vectors_into(ids_, emit_, merge_capacity::keep, *pool_);
    ids_valid_  = true;
    bits_valid_ = false;
    return size_;
  }

  // --- per-thread dense emission (bottom-up steps) ---------------------------

  /// Prepare for dense emission: bitmap sized to the universe and zeroed in
  /// parallel, per-thread added counters reset.
  void begin_dense() {
    ensure_bits();
    added_.for_each([](std::size_t& a) { a = 0; });
  }

  /// Set bit `v` (atomic) and count it toward this frontier's size.  Only a
  /// 0->1 flip counts, so emitting the same vertex twice in one dense step
  /// cannot inflate the committed size.
  void emit_dense(unsigned tid, vertex_id_t v) {
    if (bits_.set_atomic(v)) ++added_.local(tid);
  }

  /// Dense emission with the fused scout count (degree also only counted on
  /// a 0->1 flip, matching the size accounting).
  void emit_dense(unsigned tid, vertex_id_t v, std::size_t degree) {
    if (bits_.set_atomic(v)) {
      ++added_.local(tid);
      scout_.local(tid) += degree;
    }
  }

  /// Finish dense emission: folds the per-thread added counters into the
  /// frontier size.  Returns the new frontier size.
  std::size_t commit_dense() {
    std::size_t total = 0;
    added_.for_each([&](std::size_t& a) {
      total += a;
      a = 0;
    });
    size_       = total;
    bits_valid_ = true;
    ids_valid_  = false;
    return size_;
  }

  /// Drain the fused scout accumulator: the out-degree sum of everything
  /// emitted (sparse or dense) since the previous take_scout().
  std::size_t take_scout() {
    std::size_t total = 0;
    scout_.for_each([&](std::size_t& s) {
      total += s;
      s = 0;
    });
    return total;
  }

  /// Swap membership state with `o` (the level-loop `frontier.swap(next)`
  /// idiom).  Per-thread emission buffers stay put — they are empty between
  /// steps and their capacities are per-object warm state.
  void swap(frontier& o) noexcept {
    std::swap(universe_, o.universe_);
    std::swap(size_, o.size_);
    std::swap(ids_valid_, o.ids_valid_);
    std::swap(bits_valid_, o.bits_valid_);
    ids_.swap(o.ids_);
    bits_.swap(o.bits_);
    word_scratch_.swap(o.word_scratch_);
  }

private:
  /// Bitmap sized to the universe and zeroed, reusing capacity.
  void ensure_bits() {
    if (bits_.size() != universe_) {
      bits_.resize(universe_);  // keep-capacity zeroing resize
    } else {
      bitmap_clear(bits_, *pool_);
    }
  }

  thread_pool* pool_;
  std::size_t  universe_ = 0;
  std::size_t  size_     = 0;
  bool         ids_valid_  = true;
  bool         bits_valid_ = false;

  std::vector<vertex_id_t> ids_;
  nw::bitmap               bits_;
  std::vector<std::size_t> word_scratch_;  // per-word counts for sparsify

  per_thread<std::vector<vertex_id_t>> emit_;   // sparse emission buffers
  per_thread<std::size_t>              scout_;  // fused degree-sum slots
  per_thread<std::size_t>              added_;  // dense emission counters
};

}  // namespace nw::par
