// nwpar/parallel_scan.hpp
//
// Two-pass parallel exclusive prefix sum (Blelloch-style over contiguous
// blocks): each thread sums a block, block offsets are scanned serially
// (T values), then each thread writes its block's running prefix.  Used by
// the parallel CSR builder; small inputs fall back to std::exclusive_scan.
#pragma once

#include <numeric>
#include <vector>

#include "nwpar/thread_pool.hpp"

namespace nw::par {

/// In-place exclusive prefix sum over `values`; returns the total sum.
template <class T>
T parallel_exclusive_scan(std::vector<T>& values,
                          thread_pool& pool = thread_pool::default_pool()) {
  const std::size_t n = values.size();
  const unsigned    t = pool.concurrency();
  if (t == 1 || n < 1u << 14) {
    T total{};
    for (auto& v : values) {
      T next = total + v;
      v      = total;
      total  = next;
    }
    return total;
  }
  const std::size_t block = (n + t - 1) / t;
  std::vector<T>    block_sums(t, T{});
  pool.run([&](unsigned tid) {
    std::size_t lo = tid * block, hi = std::min(lo + block, n);
    T           sum{};
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    block_sums[tid] = sum;
  });
  std::vector<T> block_offsets(t, T{});
  T              total{};
  for (unsigned b = 0; b < t; ++b) {
    block_offsets[b] = total;
    total += block_sums[b];
  }
  pool.run([&](unsigned tid) {
    std::size_t lo = tid * block, hi = std::min(lo + block, n);
    T           running = block_offsets[tid];
    for (std::size_t i = lo; i < hi; ++i) {
      T next    = running + values[i];
      values[i] = running;
      running   = next;
    }
  });
  return total;
}

}  // namespace nw::par
