// nwpar/work_stealing.hpp
//
// Work-stealing execution of parallel loops — the scheduling discipline the
// paper gets from oneTBB ("oneTBB is based on a work-stealing scheduler and
// is better suited for load balancing").  Each worker owns a Chase–Lev
// deque of index ranges; it repeatedly splits its current range, pushing
// the far half for thieves, until the range is at or below the grain, then
// executes it.  Idle workers steal from random victims.
//
// The deque is the classic lock-free Chase–Lev structure (owner pushes and
// pops at the bottom, thieves CAS the top), following the C11 formulation
// of Lê, Pop, Cohen & Nardelli (PPoPP'13).  Elements are POD index ranges,
// so no memory reclamation is needed; capacity is fixed and generous (the
// owner's outstanding ranges are bounded by the split depth, ~log2(n)).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nwpar/parallel_for.hpp"
#include "nwpar/thread_pool.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::par {

/// Half-open index range, the unit of stealable work.
struct index_range {
  std::size_t begin = 0;
  std::size_t end   = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

namespace detail {

/// Chase–Lev deque over index_range with a fixed power-of-two capacity.
class chase_lev_deque {
  static constexpr std::size_t kCapacity = 1024;  // >> max split depth (~64) + slack
  static constexpr std::size_t kMask     = kCapacity - 1;

public:
  /// Owner-only: push a range at the bottom.
  void push(index_range r) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    NW_ASSERT(b - t < static_cast<std::int64_t>(kCapacity), "work-stealing deque overflow");
    buffer_[static_cast<std::size_t>(b) & kMask] = r;
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop from the bottom.  Returns false when empty.
  bool pop(index_range& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buffer_[static_cast<std::size_t>(b) & kMask];
    if (t != b) return true;  // more than one element: uncontended
    // Last element: race with thieves via CAS on top.
    bool won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                            std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }

  /// Thief: steal from the top.  Returns false when empty or lost a race.
  bool steal(index_range& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    out = buffer_[static_cast<std::size_t>(t) & kMask];
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  index_range buffer_[kCapacity];
};

}  // namespace detail

/// Partitioning tag selecting work-stealing execution (see partitioners.hpp
/// for the fork-join strategies).  grain == 0 targets ~32 leaf ranges per
/// worker, mimicking tbb::auto_partitioner's adaptive splitting.
struct stealing {
  std::size_t grain = 0;
};

/// Work-stealing parallel_for: body is body(i) or body(tid, i).
template <class Body>
void parallel_for_stealing(std::size_t begin, std::size_t end, Body body, stealing part = {},
                           thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const unsigned    t = pool.concurrency();
  if (t == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  std::size_t grain = part.grain;
  if (grain == 0) {
    grain = n / (static_cast<std::size_t>(t) * 32);
    if (grain == 0) grain = 1;
  }

  std::vector<detail::chase_lev_deque> deques(t);
  std::atomic<std::size_t>             remaining{n};
  deques[0].push({begin, end});

  pool.run([&](unsigned tid) {
    xoshiro256ss rng(0x57EA1 + tid);
    index_range  r{0, 0};
    bool         have = false;
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (!have) {
        have = deques[tid].pop(r);
      }
      if (!have) {
        // Steal from a random victim; a couple of misses mean we spin on
        // the termination counter (ranges drain fast at this granularity).
        unsigned victim = static_cast<unsigned>(rng.bounded(t));
        if (victim != tid) have = deques[victim].steal(r);
        if (!have) continue;
      }
      // Split until at grain, leaving halves for thieves.
      while (r.size() > grain) {
        std::size_t mid = r.begin + r.size() / 2;
        deques[tid].push({mid, r.end});
        r.end = mid;
      }
      for (std::size_t i = r.begin; i < r.end; ++i) detail::invoke_body(body, tid, i);
      remaining.fetch_sub(r.size(), std::memory_order_acq_rel);
      have = false;
    }
  });
}

/// Overload so the generic call sites can pass the stealing tag like any
/// other partitioner.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, stealing part,
                  thread_pool& pool = thread_pool::default_pool()) {
  parallel_for_stealing(begin, end, std::move(body), part, pool);
}

}  // namespace nw::par
