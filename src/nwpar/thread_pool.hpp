// nwpar/thread_pool.hpp
//
// Persistent worker pool underpinning every parallel algorithm in the
// framework.  This is our substitute for the oneTBB task scheduler the paper
// uses: NWHy's algorithms only need fork-join `parallel_for` over index
// ranges with a choice of partitioning strategy (blocked / cyclic /
// cyclic-neighbor), so a flat pool with dynamic chunk claiming provides the
// same load-balancing behaviour the paper attributes to work stealing —
// idle threads pick up the chunks stragglers have not claimed yet.
//
// The pool is created once and reused; a fork-join dispatch costs two
// condition-variable round trips, negligible next to the graph kernels.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

namespace nw::par {

class thread_pool {
public:
  /// A pool with `nthreads` execution contexts: the calling thread plus
  /// `nthreads - 1` persistent workers.
  explicit thread_pool(unsigned nthreads)
      : nthreads_(nthreads == 0 ? 1 : nthreads) {
    workers_.reserve(nthreads_ - 1);
    for (unsigned w = 1; w < nthreads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  thread_pool(const thread_pool&)            = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] unsigned concurrency() const { return nthreads_; }

  /// Execute `job(worker_id)` once on each of the pool's `concurrency()`
  /// contexts; worker_id 0 is the calling thread.  Blocks until all
  /// contexts return.  Not reentrant (algorithms never nest dispatches).
  void run(const std::function<void(unsigned)>& job) {
    if (nthreads_ == 1) {
      job(0);
      return;
    }
    {
      std::lock_guard lock(mutex_);
      job_      = &job;
      n_active_ = nthreads_ - 1;
      ++generation_;
    }
    cv_start_.notify_all();
    job(0);
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] { return n_active_ == 0; });
    job_ = nullptr;
  }

  /// Process-wide default pool.  Sized from NWHY_NUM_THREADS or the
  /// hardware concurrency at first use; resizable by the benchmark harness.
  static thread_pool& default_pool();

  /// Resize the default pool (tears down and recreates workers).  Intended
  /// for the strong-scaling benchmark sweep; not thread-safe against
  /// concurrent dispatches.
  static void set_default_concurrency(unsigned nthreads);

private:
  void worker_loop(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* job = nullptr;
      {
        std::unique_lock lock(mutex_);
        cv_start_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      if (job) (*job)(id);
      {
        std::lock_guard lock(mutex_);
        if (--n_active_ == 0) cv_done_.notify_one();
      }
    }
  }

  unsigned                             nthreads_;
  std::vector<std::thread>             workers_;
  std::mutex                           mutex_;
  std::condition_variable              cv_start_;
  std::condition_variable              cv_done_;
  const std::function<void(unsigned)>* job_        = nullptr;
  std::uint64_t                        generation_ = 0;
  unsigned                             n_active_   = 0;
  bool                                 stop_       = false;
};

namespace detail {
inline std::unique_ptr<thread_pool>& default_pool_slot() {
  static std::unique_ptr<thread_pool> pool;
  return pool;
}
inline unsigned initial_concurrency() {
  // 0 is the "unset/invalid" sentinel: a valid NWHY_NUM_THREADS must be a
  // strictly positive integer (strict parse — "abc", "8x", "-4" and
  // overflowing values all warn once and fall back to hardware concurrency;
  // the previous std::atoi accepted junk silently and overflowed into UB).
  constexpr std::uint64_t max_threads = 65536;
  std::uint64_t n = nw::util::env_u64_strict("NWHY_NUM_THREADS", 0, 1, max_threads);
  if (n > 0) return static_cast<unsigned>(n);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace detail

inline thread_pool& thread_pool::default_pool() {
  auto& slot = detail::default_pool_slot();
  if (!slot) slot = std::make_unique<thread_pool>(detail::initial_concurrency());
  return *slot;
}

inline void thread_pool::set_default_concurrency(unsigned nthreads) {
  detail::default_pool_slot() = std::make_unique<thread_pool>(nthreads);
}

/// Convenience: current default concurrency.
inline unsigned num_threads() { return thread_pool::default_pool().concurrency(); }

}  // namespace nw::par
