// nwpar/partitioners.hpp
//
// Workload-partitioning strategies for parallel_for, mirroring Section III-D
// of the paper: oneTBB's built-in blocked range plus NWHy's custom *cyclic
// range* and (in range_adaptors.hpp) *cyclic neighbor range*.
//
// Each strategy is a small tag type carrying its tuning knob; parallel_for
// dispatches on the tag at compile time, so the inner loops are free of
// strategy branches.
#pragma once

#include <cstddef>

namespace nw::par {

/// Dynamic blocked partitioning: the index range is cut into contiguous
/// chunks of `grain` elements which idle threads claim from a shared atomic
/// cursor.  grain == 0 picks a chunk size targeting ~8 chunks per thread,
/// emulating tbb::auto_partitioner.
struct blocked {
  std::size_t grain = 0;
};

/// Static blocked partitioning: exactly one contiguous block per thread.
/// This is the strategy the paper calls out as "problematic for
/// skewed-degree distributed hypergraphs ... if the hyperedges are sorted
/// according to their degrees"; we keep it for the partitioning ablation.
struct static_blocked {};

/// Cyclic partitioning (paper Sec. III-D): with stride `num_bins`, bin b
/// owns indices {b, b + num_bins, b + 2*num_bins, ...}.  Bins are claimed
/// dynamically, so num_bins > nthreads still load-balances.  num_bins == 0
/// defaults the stride to the pool concurrency, matching the paper's
/// description ("stride size equal to the number of total threads").
struct cyclic {
  std::size_t num_bins = 0;
};

/// Resolve a blocked grain for a range of n elements on t threads.
inline std::size_t resolve_grain(std::size_t requested, std::size_t n, unsigned t) {
  if (requested != 0) return requested;
  std::size_t target_chunks = static_cast<std::size_t>(t) * 8;
  std::size_t grain         = (n + target_chunks - 1) / (target_chunks == 0 ? 1 : target_chunks);
  return grain == 0 ? 1 : grain;
}

/// Resolve a cyclic bin count.
inline std::size_t resolve_bins(std::size_t requested, unsigned t) {
  return requested != 0 ? requested : static_cast<std::size_t>(t);
}

}  // namespace nw::par
