// nwpar/line_split.hpp
//
// Line-boundary byte-range splitter — the front half of every parallel text
// ingest path.  A text file is divided into ~equal byte ranges, and each
// tentative boundary is advanced to just past the next '\n' so no line is
// ever split across two workers.  The returned ranges are contiguous,
// non-overlapping, in file order, and cover [begin, end) exactly, so a
// per-range parse followed by an in-order merge reproduces the serial parse
// bit-for-bit.
//
// The splitter is format-agnostic (it only knows about '\n'); CRLF inputs
// work unchanged because "\r\n" still ends in '\n'.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace nw::par {

/// One half-open byte range [begin, end) of a text buffer.
struct byte_range {
  std::size_t begin = 0;
  std::size_t end   = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool        empty() const { return begin >= end; }

  friend bool operator==(const byte_range&, const byte_range&) = default;
};

/// Split text[begin, end) into at most `parts` ranges whose internal
/// boundaries fall immediately after a '\n'.  Guarantees:
///
///   * ranges are returned in order, contiguous, and cover [begin, end);
///   * every range except possibly the last ends just past a '\n';
///   * a line longer than (end - begin) / parts lands entirely in one range
///     (following ranges may be empty and are dropped);
///   * parts == 0 is treated as 1.
///
/// The final range ends at `end` even when the text lacks a trailing
/// newline, so the last (unterminated) line is still parsed.
inline std::vector<byte_range> split_line_ranges(std::string_view text, std::size_t begin,
                                                 std::size_t end, std::size_t parts) {
  if (end > text.size()) end = text.size();
  if (begin > end) begin = end;
  std::vector<byte_range> out;
  if (begin == end) return out;
  if (parts <= 1 || end - begin < 2 * parts) {
    out.push_back({begin, end});
    return out;
  }
  const std::size_t target = (end - begin) / parts;
  std::size_t       cursor = begin;
  for (std::size_t p = 0; p < parts && cursor < end; ++p) {
    std::size_t stop = (p + 1 == parts) ? end : begin + (p + 1) * target;
    if (stop <= cursor) stop = cursor;  // a long line swallowed this part's budget
    if (stop < end) {
      // Advance to just past the next '\n' so the boundary is line-aligned.
      const char* nl = static_cast<const char*>(
          std::memchr(text.data() + stop, '\n', end - stop));
      stop = nl != nullptr ? static_cast<std::size_t>(nl - text.data()) + 1 : end;
    }
    if (stop > cursor) out.push_back({cursor, stop});
    cursor = stop;
  }
  if (cursor < end) out.push_back({cursor, end});  // defensive; unreachable in practice
  return out;
}

}  // namespace nw::par
