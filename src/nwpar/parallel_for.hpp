// nwpar/parallel_for.hpp
//
// Fork-join parallel loops over index ranges with pluggable partitioning
// (see partitioners.hpp).  The body may have either of two signatures:
//
//   body(std::size_t i)                 — per element
//   body(unsigned tid, std::size_t i)   — per element with worker id, for
//                                         algorithms keeping per-thread state
//
// parallel_reduce additionally folds a per-thread accumulator.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "nwpar/partitioners.hpp"
#include "nwpar/thread_pool.hpp"

namespace nw::par {

namespace detail {

template <class Body>
void invoke_body(Body& body, unsigned tid, std::size_t i) {
  if constexpr (std::is_invocable_v<Body&, unsigned, std::size_t>) {
    body(tid, i);
  } else {
    static_assert(std::is_invocable_v<Body&, std::size_t>,
                  "parallel_for body must be callable as body(i) or body(tid, i)");
    body(i);
  }
}

}  // namespace detail

/// Blocked (dynamic contiguous chunks).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, blocked part = {},
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.concurrency() == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t        grain = resolve_grain(part.grain, n, pool.concurrency());
  std::atomic<std::size_t> cursor{begin};
  pool.run([&](unsigned tid) {
    for (;;) {
      std::size_t chunk_begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      std::size_t chunk_end = std::min(chunk_begin + grain, end);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) detail::invoke_body(body, tid, i);
    }
  });
}

/// Static blocked (one contiguous block per thread, no balancing).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, static_blocked,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const unsigned    t = pool.concurrency();
  if (t == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t block = (n + t - 1) / t;
  pool.run([&](unsigned tid) {
    std::size_t b = begin + static_cast<std::size_t>(tid) * block;
    std::size_t e = std::min(b + block, end);
    for (std::size_t i = b; i < e; ++i) detail::invoke_body(body, tid, i);
  });
}

/// Cyclic (paper Sec. III-D): bin b covers {begin + b, begin + b + stride, ...};
/// bins are claimed dynamically from a shared cursor.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, cyclic part,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const unsigned t = pool.concurrency();
  if (t == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t        stride = resolve_bins(part.num_bins, t);
  std::atomic<std::size_t> next_bin{0};
  pool.run([&](unsigned tid) {
    for (;;) {
      std::size_t bin = next_bin.fetch_add(1, std::memory_order_relaxed);
      if (bin >= stride) break;
      for (std::size_t i = begin + bin; i < end; i += stride) detail::invoke_body(body, tid, i);
    }
  });
}

/// parallel_reduce: fold `body(acc, i)` per thread over the range (blocked
/// partitioning), then combine per-thread accumulators with `combine`.
template <class T, class Body, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Body body, Combine combine,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return identity;
  const unsigned t = pool.concurrency();
  if (t == 1) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = body(std::move(acc), i);
    return acc;
  }
  // Deliberately not std::vector<T>: vector<bool>'s proxy references break
  // generic combine signatures, and padding avoids false sharing.
  struct alignas(64) padded_acc {
    T value;
  };
  std::vector<padded_acc>  partial(t, padded_acc{identity});
  const std::size_t        grain = resolve_grain(0, end - begin, t);
  std::atomic<std::size_t> cursor{begin};
  pool.run([&](unsigned tid) {
    T acc = identity;
    for (;;) {
      std::size_t chunk_begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      std::size_t chunk_end = std::min(chunk_begin + grain, end);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) acc = body(std::move(acc), i);
    }
    partial[tid].value = std::move(acc);
  });
  T acc = identity;
  for (auto& p : partial) acc = combine(std::move(acc), std::move(p.value));
  return acc;
}

/// Per-thread storage: one value per pool context, padded to a cache line to
/// avoid false sharing between workers appending to their local buffers.
template <class T>
class per_thread {
  struct alignas(64) padded {
    T value{};
  };

public:
  explicit per_thread(thread_pool& pool = thread_pool::default_pool())
      : slots_(pool.concurrency()) {}

  T&       local(unsigned tid) { return slots_[tid].value; }
  const T& local(unsigned tid) const { return slots_[tid].value; }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Visit every per-thread value (sequentially, after the parallel phase).
  template <class Fn>
  void for_each(Fn&& fn) {
    for (auto& s : slots_) fn(s.value);
  }

private:
  std::vector<padded> slots_;
};

/// Merge per-thread vectors into one, preserving per-thread order.  This is
/// the "L_s(H) <- L_s(H) ∪ every L_t(H)" step of Algorithms 1 and 2.
template <class T>
std::vector<T> merge_thread_vectors(per_thread<std::vector<T>>& buffers) {
  std::size_t total = 0;
  buffers.for_each([&](const std::vector<T>& v) { total += v.size(); });
  std::vector<T> merged;
  merged.reserve(total);
  buffers.for_each([&](std::vector<T>& v) {
    merged.insert(merged.end(), v.begin(), v.end());
    v.clear();
    v.shrink_to_fit();
  });
  return merged;
}

}  // namespace nw::par
