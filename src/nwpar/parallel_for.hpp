// nwpar/parallel_for.hpp
//
// Fork-join parallel loops over index ranges with pluggable partitioning
// (see partitioners.hpp).  The body may have either of two signatures:
//
//   body(std::size_t i)                 — per element
//   body(unsigned tid, std::size_t i)   — per element with worker id, for
//                                         algorithms keeping per-thread state
//
// parallel_reduce additionally folds a per-thread accumulator.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "nwpar/parallel_scan.hpp"
#include "nwpar/partitioners.hpp"
#include "nwpar/thread_pool.hpp"

namespace nw::par {

namespace detail {

template <class Body>
void invoke_body(Body& body, unsigned tid, std::size_t i) {
  if constexpr (std::is_invocable_v<Body&, unsigned, std::size_t>) {
    body(tid, i);
  } else {
    static_assert(std::is_invocable_v<Body&, std::size_t>,
                  "parallel_for body must be callable as body(i) or body(tid, i)");
    body(i);
  }
}

}  // namespace detail

/// Blocked (dynamic contiguous chunks).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, blocked part = {},
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.concurrency() == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t        grain = resolve_grain(part.grain, n, pool.concurrency());
  std::atomic<std::size_t> cursor{begin};
  pool.run([&](unsigned tid) {
    for (;;) {
      std::size_t chunk_begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      std::size_t chunk_end = std::min(chunk_begin + grain, end);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) detail::invoke_body(body, tid, i);
    }
  });
}

/// Static blocked (one contiguous block per thread, no balancing).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, static_blocked,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const unsigned    t = pool.concurrency();
  if (t == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t block = (n + t - 1) / t;
  pool.run([&](unsigned tid) {
    std::size_t b = begin + static_cast<std::size_t>(tid) * block;
    std::size_t e = std::min(b + block, end);
    for (std::size_t i = b; i < e; ++i) detail::invoke_body(body, tid, i);
  });
}

/// Cyclic (paper Sec. III-D): bin b covers {begin + b, begin + b + stride, ...};
/// bins are claimed dynamically from a shared cursor.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body body, cyclic part,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return;
  const unsigned t = pool.concurrency();
  if (t == 1) {
    for (std::size_t i = begin; i < end; ++i) detail::invoke_body(body, 0, i);
    return;
  }
  const std::size_t        stride = resolve_bins(part.num_bins, t);
  std::atomic<std::size_t> next_bin{0};
  pool.run([&](unsigned tid) {
    for (;;) {
      std::size_t bin = next_bin.fetch_add(1, std::memory_order_relaxed);
      if (bin >= stride) break;
      for (std::size_t i = begin + bin; i < end; i += stride) detail::invoke_body(body, tid, i);
    }
  });
}

/// parallel_reduce: fold `body(acc, i)` per thread over the range (blocked
/// partitioning), then combine per-thread accumulators with `combine`.
template <class T, class Body, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Body body, Combine combine,
                  thread_pool& pool = thread_pool::default_pool()) {
  if (begin >= end) return identity;
  const unsigned t = pool.concurrency();
  if (t == 1) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = body(std::move(acc), i);
    return acc;
  }
  // Deliberately not std::vector<T>: vector<bool>'s proxy references break
  // generic combine signatures, and padding avoids false sharing.
  struct alignas(64) padded_acc {
    T value;
  };
  std::vector<padded_acc>  partial(t, padded_acc{identity});
  const std::size_t        grain = resolve_grain(0, end - begin, t);
  std::atomic<std::size_t> cursor{begin};
  pool.run([&](unsigned tid) {
    T acc = identity;
    for (;;) {
      std::size_t chunk_begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      std::size_t chunk_end = std::min(chunk_begin + grain, end);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) acc = body(std::move(acc), i);
    }
    partial[tid].value = std::move(acc);
  });
  T acc = identity;
  for (auto& p : partial) acc = combine(std::move(acc), std::move(p.value));
  return acc;
}

/// Per-thread storage: one value per pool context, padded to a cache line to
/// avoid false sharing between workers appending to their local buffers.
template <class T>
class per_thread {
  struct alignas(64) padded {
    T value{};
  };

public:
  explicit per_thread(thread_pool& pool = thread_pool::default_pool())
      : slots_(pool.concurrency()) {}

  T&       local(unsigned tid) { return slots_[tid].value; }
  const T& local(unsigned tid) const { return slots_[tid].value; }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Visit every per-thread value (sequentially, after the parallel phase).
  template <class Fn>
  void for_each(Fn&& fn) {
    for (auto& s : slots_) fn(s.value);
  }

private:
  std::vector<padded> slots_;
};

/// What to do with the per-thread source buffers after a merge:
///   release — clear() + shrink_to_fit(): give the memory back (one-shot use)
///   keep    — clear() only: repeated construction calls (bench loops,
///             ensemble passes, implicit s-BFS levels) reuse the grown
///             thread-local allocations instead of re-faulting pages.
enum class merge_capacity { release, keep };

namespace detail {

/// One contiguous block copy: buffer `buf`, elements
/// [src_begin, src_begin + len) land at `dst_begin` of the merged output.
struct copy_chunk {
  unsigned    buf;
  std::size_t src_begin;
  std::size_t len;
  std::size_t dst_begin;
};

/// Turn per-buffer sizes into destination offsets (parallel exclusive scan)
/// and a block-copy plan.  Buffers are split into chunks of at most
/// `target_chunk` elements so one giant per-thread buffer still spreads
/// across the whole pool; `total` receives the merged element count.
inline std::vector<copy_chunk> plan_block_copies(const std::vector<std::size_t>& sizes,
                                                 std::size_t target_chunk, std::size_t& total,
                                                 thread_pool& pool) {
  std::vector<std::size_t> offsets(sizes);
  total = parallel_exclusive_scan(offsets, pool);
  if (target_chunk == 0) {
    target_chunk = std::max<std::size_t>(std::size_t{4096},
                                         total / (8 * std::size_t{pool.concurrency()} + 1));
  }
  std::vector<copy_chunk> chunks;
  for (unsigned b = 0; b < sizes.size(); ++b) {
    for (std::size_t off = 0; off < sizes[b]; off += target_chunk) {
      std::size_t len = std::min(target_chunk, sizes[b] - off);
      chunks.push_back({b, off, len, offsets[b] + off});
    }
  }
  return chunks;
}

/// Reset source buffers after their contents were copied out.
template <class T>
void reset_buffers(per_thread<std::vector<T>>& buffers, merge_capacity cap) {
  buffers.for_each([&](std::vector<T>& v) {
    v.clear();
    if (cap == merge_capacity::release) v.shrink_to_fit();
  });
}

}  // namespace detail

/// Merge per-thread vectors into one, preserving per-thread order.  This is
/// the "L_s(H) <- L_s(H) ∪ every L_t(H)" step of Algorithms 1 and 2.
///
/// Fully parallel: per-buffer sizes -> parallel_exclusive_scan offsets ->
/// parallel block copies (std::copy over contiguous ranges, i.e. memmove
/// for trivially copyable T).  No serial per-element loop over the merged
/// output.  `cap` controls whether the drained per-thread buffers keep
/// their capacity for the next call (merge_capacity::keep) or return it
/// (merge_capacity::release, the default and historical behaviour).
template <class T>
std::vector<T> merge_thread_vectors(per_thread<std::vector<T>>& buffers,
                                    merge_capacity cap = merge_capacity::release,
                                    thread_pool&   pool = thread_pool::default_pool()) {
  std::vector<std::size_t> sizes(buffers.size());
  for (std::size_t b = 0; b < buffers.size(); ++b) sizes[b] = buffers.local(b).size();
  std::size_t total  = 0;
  auto        chunks = detail::plan_block_copies(sizes, 0, total, pool);
  std::vector<T> merged(total);
  parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        const auto& ck  = chunks[c];
        const auto& src = buffers.local(ck.buf);
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(ck.src_begin),
                  src.begin() + static_cast<std::ptrdiff_t>(ck.src_begin + ck.len),
                  merged.begin() + static_cast<std::ptrdiff_t>(ck.dst_begin));
      },
      blocked{}, pool);
  detail::reset_buffers(buffers, cap);
  return merged;
}

/// merge_thread_vectors, but into a caller-owned destination whose capacity
/// is reused across calls (resize never shrinks capacity).  This is the
/// level-loop variant: a BFS engine that swaps two frontier vectors can run
/// an entire traversal without a single per-level allocation once the
/// buffers have grown to their high-water mark.  Returns the merged size.
template <class T>
std::size_t merge_thread_vectors_into(std::vector<T>& out, per_thread<std::vector<T>>& buffers,
                                      merge_capacity cap  = merge_capacity::keep,
                                      thread_pool&   pool = thread_pool::default_pool()) {
  std::vector<std::size_t> sizes(buffers.size());
  for (std::size_t b = 0; b < buffers.size(); ++b) sizes[b] = buffers.local(b).size();
  std::size_t total  = 0;
  auto        chunks = detail::plan_block_copies(sizes, 0, total, pool);
  out.resize(total);
  parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        const auto& ck  = chunks[c];
        const auto& src = buffers.local(ck.buf);
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(ck.src_begin),
                  src.begin() + static_cast<std::ptrdiff_t>(ck.src_begin + ck.len),
                  out.begin() + static_cast<std::ptrdiff_t>(ck.dst_begin));
      },
      blocked{}, pool);
  detail::reset_buffers(buffers, cap);
  return total;
}

}  // namespace nw::par
