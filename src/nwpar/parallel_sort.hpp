// nwpar/parallel_sort.hpp
//
// Parallel block sort + merge tree.  Good enough to keep edge-list
// canonicalization off the critical path; falls back to std::sort for small
// inputs or single-threaded pools.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "nwpar/thread_pool.hpp"

namespace nw::par {

template <class RandomIt, class Compare = std::less<>>
void parallel_sort(RandomIt first, RandomIt last, Compare comp = {},
                   thread_pool& pool = thread_pool::default_pool()) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  const unsigned    t = pool.concurrency();
  if (t == 1 || n < 1u << 14) {
    std::sort(first, last, comp);
    return;
  }
  // Sort t contiguous blocks in parallel.
  const std::size_t        block = (n + t - 1) / t;
  std::vector<std::size_t> bounds;
  for (std::size_t b = 0; b <= n; b += block) bounds.push_back(std::min(b, n));
  if (bounds.back() != n) bounds.push_back(n);
  const std::size_t nblocks = bounds.size() - 1;
  pool.run([&](unsigned tid) {
    for (std::size_t b = tid; b < nblocks; b += t) {
      std::sort(first + bounds[b], first + bounds[b + 1], comp);
    }
  });
  // Binary merge tree; each level merges adjacent block pairs in parallel.
  for (std::size_t width = 1; width < nblocks; width *= 2) {
    pool.run([&](unsigned tid) {
      for (std::size_t b = tid * 2 * width; b + width < nblocks;
           b += static_cast<std::size_t>(t) * 2 * width) {
        std::size_t lo  = bounds[b];
        std::size_t mid = bounds[b + width];
        std::size_t hi  = bounds[std::min(b + 2 * width, nblocks)];
        std::inplace_merge(first + lo, first + mid, first + hi, comp);
      }
    });
  }
}

}  // namespace nw::par
