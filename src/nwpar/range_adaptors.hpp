// nwpar/range_adaptors.hpp
//
// Custom range adaptors from Section III-D of the paper:
//
//  * cyclic_range          — partitions an index space [0, n) into
//                            `num_bins` strided bins; bin b visits
//                            {b, b + stride, b + 2*stride, ...}.
//  * cyclic_neighbor_range — same binning over an adjacency structure, but
//                            dereferencing yields a (vertex id, neighborhood)
//                            tuple, for algorithms that need the
//                            neighborhood alongside the id.
//
// Both adaptors expose their bins as subranges so a parallel driver can hand
// whole bins to threads (see for_each_cyclic_neighborhood below); they are
// also plain forward ranges for serial use in examples and tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <iterator>
#include <utility>

#include "nwpar/partitioners.hpp"
#include "nwpar/thread_pool.hpp"

namespace nw::par {

/// Strided view over [0, n): bin `b` of `num_bins` enumerates b, b+s, b+2s…
class cyclic_range {
public:
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type        = std::size_t;
    using difference_type   = std::ptrdiff_t;

    iterator() = default;
    iterator(std::size_t pos, std::size_t stride) : pos_(pos), stride_(stride) {}

    std::size_t operator*() const { return pos_; }
    iterator&   operator++() {
      pos_ += stride_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    // Bins end at the first index >= n; two iterators in the same bin compare
    // equal when both have run past the end.
    friend bool operator==(const iterator& a, const iterator& b) { return a.pos_ == b.pos_; }

  private:
    std::size_t pos_    = 0;
    std::size_t stride_ = 1;
  };

  /// One bin of the cyclic decomposition.
  class bin {
  public:
    bin(std::size_t first, std::size_t n, std::size_t stride)
        : first_(first), n_(n), stride_(stride) {}
    [[nodiscard]] iterator begin() const { return {first_ >= n_ ? end_pos() : first_, stride_}; }
    [[nodiscard]] iterator end() const { return {end_pos(), stride_}; }
    [[nodiscard]] std::size_t size() const {
      return first_ >= n_ ? 0 : (n_ - first_ + stride_ - 1) / stride_;
    }

  private:
    // Canonical one-past-the-end position for this bin: first_ plus
    // size()*stride_, so operator== on positions terminates the loop.
    [[nodiscard]] std::size_t end_pos() const { return first_ + size() * stride_; }
    std::size_t first_, n_, stride_;
  };

  cyclic_range(std::size_t n, std::size_t num_bins)
      : n_(n), num_bins_(num_bins == 0 ? 1 : num_bins) {}

  [[nodiscard]] std::size_t num_bins() const { return num_bins_; }
  [[nodiscard]] bin         operator[](std::size_t b) const { return {b, n_, num_bins_}; }

private:
  std::size_t n_;
  std::size_t num_bins_;
};

/// Cyclic bins over an adjacency structure where dereferencing a bin element
/// yields `std::pair<id, inner_range>` — the "tuple, which consists of one
/// hyperedge and the hypernodes ... that hyperedge is incident to".
template <class Graph>
class cyclic_neighbor_range {
public:
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using difference_type   = std::ptrdiff_t;

    iterator(Graph* g, std::size_t pos, std::size_t stride)
        : g_(g), pos_(pos), stride_(stride) {}

    auto operator*() const { return std::pair{pos_, (*g_)[pos_]}; }
    iterator& operator++() {
      pos_ += stride_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) { return a.pos_ == b.pos_; }

  private:
    Graph*      g_;
    std::size_t pos_;
    std::size_t stride_;
  };

  class bin {
  public:
    bin(Graph* g, std::size_t first, std::size_t n, std::size_t stride)
        : g_(g), first_(first), n_(n), stride_(stride) {}
    [[nodiscard]] iterator begin() const {
      return {g_, first_ >= n_ ? end_pos() : first_, stride_};
    }
    [[nodiscard]] iterator    end() const { return {g_, end_pos(), stride_}; }
    [[nodiscard]] std::size_t size() const {
      return first_ >= n_ ? 0 : (n_ - first_ + stride_ - 1) / stride_;
    }

  private:
    [[nodiscard]] std::size_t end_pos() const { return first_ + size() * stride_; }
    Graph*      g_;
    std::size_t first_, n_, stride_;
  };

  cyclic_neighbor_range(Graph& g, std::size_t num_bins)
      : g_(&g), n_(g.size()), num_bins_(num_bins == 0 ? 1 : num_bins) {}

  [[nodiscard]] std::size_t num_bins() const { return num_bins_; }
  [[nodiscard]] bin operator[](std::size_t b) const { return {g_, b, n_, num_bins_}; }

private:
  Graph*      g_;
  std::size_t n_;
  std::size_t num_bins_;
};

/// Parallel driver over a cyclic_neighbor_range: bins are claimed
/// dynamically; `body(tid, id, neighborhood)`.
template <class Graph, class Body>
void for_each_cyclic_neighborhood(Graph& g, std::size_t num_bins, Body body,
                                  thread_pool& pool = thread_pool::default_pool()) {
  cyclic_neighbor_range<Graph> range(g, num_bins == 0 ? pool.concurrency() : num_bins);
  if (pool.concurrency() == 1) {
    for (std::size_t b = 0; b < range.num_bins(); ++b) {
      for (auto&& [id, nbrs] : range[b]) body(0u, id, nbrs);
    }
    return;
  }
  std::atomic<std::size_t> next_bin{0};
  pool.run([&](unsigned tid) {
    for (;;) {
      std::size_t b = next_bin.fetch_add(1, std::memory_order_relaxed);
      if (b >= range.num_bins()) break;
      for (auto&& [id, nbrs] : range[b]) body(tid, id, nbrs);
    }
  });
}

}  // namespace nw::par
