// nwhy/nwhypergraph.hpp
//
// The NWHypergraph facade — the C++ twin of the Python-facing class in the
// paper's Listing 5, grown into the *dynamic hypergraph engine* of ROADMAP
// item 1.  The structure is layered:
//
//   generation  — an immutable biedgelist + CSR pair (possibly zero-copy
//                 mmap views of an NWHYCSR2 snapshot), held by shared_ptr
//                 so readers that pinned it survive compaction;
//   delta       — a mutable per-hyperedge overlay (nwhy/delta.hpp):
//                 replacement member lists and tombstones from the batched
//                 insert_edges / remove_edges / update_edge API;
//   compaction  — folds the overlay into a fresh generation through the
//                 parallel from_thread_buffers pipeline, automatically at
//                 NWHY_COMPACT_THRESHOLD overlay rows or explicitly via
//                 compact().
//
// Read paths compose base+delta transparently: degrees are maintained
// incrementally, point queries consult the overlay first, and the
// traversal/toplex queries run on a lazily-built composed incidence while
// a delta is pending (their results are bit-identical to a rebuild from
// scratch — hyperedge ids are stable, tombstones compact to empty rows).
// Accessors that would leak the stale base structures (edge_list(),
// hyperedges(), hypernodes(), save_csr_snapshot()) throw std::logic_error
// while a delta is pending; everything else recomputes.  Every mutation
// bumps a version counter shared with derived structures (the C API checks
// it to reject stale s-line-graph queries).
//
// A third, orthogonal layer is the degree-ordered *storage relabeling*
// (relabel_by_degree / nwhy/relabel.hpp): the internal generation may hold
// hyperedge rows in descending-degree order for locality while every public
// query keeps speaking original ("external") ids — queries translate in
// through `perm` and answers translate out through `inv` at the API
// boundary.  Relabeling is content-preserving (no version bump) and folds
// away automatically on the first mutation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "nwhy/adjoin.hpp"
#include "nwhy/algorithms/adjoin_algorithms.hpp"
#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/algorithms/motif.hpp"
#include "nwhy/algorithms/toplex.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/delta.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/relabel.hpp"
#include "nwgraph/relabel.hpp"
#include "nwhy/ref/incidence.hpp"
#include "nwhy/ref/serial_motif.hpp"
#include "nwhy/ref/serial_slinegraph.hpp"
#include "nwhy/ref/serial_traversal.hpp"
#include "nwhy/s_linegraph.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "nwhy/slinegraph/implicit.hpp"
#include "nwhy/slinegraph/weighted.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwpar/partitioners.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

/// One immutable CSR generation of a (possibly mutating) hypergraph.
/// Held by shared_ptr: a reader that pins the generation (a mid-flight
/// query, a snapshot writer, a serving thread) keeps it — including any
/// mmap'd snapshot bytes backing zero-copy CSR views — alive across a
/// concurrent compaction that swaps the owner to a newer generation.
struct hypergraph_generation {
  biedgelist<>                el;
  biadjacency<0>              hyperedges;
  biadjacency<1>              hypernodes;
  /// Owns the mmap'd snapshot bytes when the CSRs are zero-copy views.
  std::shared_ptr<const void> io_keepalive;
  /// Monotonic per-hypergraph generation counter (0 = initial build).
  std::uint64_t               id = 0;
};

/// One batched-mutation row: hyperedge `edge` gets the full member list
/// `members` (insert when new, replacement when it exists).
struct edge_update {
  vertex_id_t              edge;
  std::vector<vertex_id_t> members;
};

class NWHypergraph {
public:
  /// Construct from parallel (hyperedge id, hypernode id) arrays — the
  /// Listing 5 `NWHypergraph(row, col, weight)` signature, with weights
  /// optional and ignored for the structural metrics.
  NWHypergraph(std::span<const vertex_id_t> edge_ids, std::span<const vertex_id_t> node_ids) {
    NW_ASSERT(edge_ids.size() == node_ids.size(), "row/col arrays must have equal length");
    biedgelist<> el;
    el.reserve(edge_ids.size());
    for (std::size_t i = 0; i < edge_ids.size(); ++i) el.push_back(edge_ids[i], node_ids[i]);
    init(std::move(el));
  }

  /// Construct from an already-populated bipartite edge list.
  explicit NWHypergraph(biedgelist<> el) { init(std::move(el)); }

  /// Construct from a loaded NWHYCSR2 snapshot.  CANONICAL snapshots are
  /// adopted wholesale: the two CSRs (possibly zero-copy mmap views) become
  /// the live bi-adjacency structures, the edge list is re-expanded in
  /// parallel from the E2N rows, and a cached adjoin section is installed
  /// directly.  Non-canonical snapshots fall back to the full
  /// sort_and_unique + rebuild pipeline.
  explicit NWHypergraph(csr_snapshot snap) {
    // A stream-mode load of a compressed snapshot carries block-decoding
    // views instead of CSRs; NWHypergraph owns its structures, so fold them
    // into owned CSRs first (callers wanting bounded-memory traversal use
    // the views directly, not this class).
    if (snap.streaming()) snap.materialize_views();
    if (snap.canonical()) {
      auto gen          = std::make_shared<hypergraph_generation>();
      gen->el           = snap.to_biedgelist();
      gen->hyperedges   = std::move(snap.edges);
      gen->hypernodes   = std::move(snap.nodes);
      gen->io_keepalive = std::move(snap.storage);
      adopt_generation(std::move(gen));
      if (!snap.relabel_inv.empty()) {
        // The snapshot's rows are in relabeled (internal) order; install the
        // persisted maps so every query translates at the boundary.  An
        // embedded adjoin would be internal-space while the facade caches
        // external-space adjoins, so it is dropped and rebuilt lazily.
        relabel_maps maps;
        maps.inv = std::move(snap.relabel_inv);
        maps.perm.resize(maps.inv.size());
        for (std::size_t i = 0; i < maps.inv.size(); ++i) {
          maps.perm[maps.inv[i]] = static_cast<vertex_id_t>(i);
        }
        relabel_ = std::move(maps);
        refresh_relabel_degrees();
      } else if (snap.adjoin) {
        adjoin_ = std::make_unique<adjoin_graph>(std::move(*snap.adjoin));
      }
    } else {
      auto el = snap.to_biedgelist();
      if (!snap.relabel_inv.empty()) {
        // Non-canonical loads rebuild from scratch anyway — fold the
        // relabeling away up front instead of carrying the maps.
        std::vector<vertex_id_t> eids(el.edge_ids());
        std::vector<vertex_id_t> nids(el.node_ids());
        for (auto& e : eids) e = snap.relabel_inv[e];
        biedgelist<> plain(std::move(eids), std::move(nids), el.num_vertices(0),
                           el.num_vertices(1));
        el = std::move(plain);
      }
      init(std::move(el));
    }
  }

  /// Serialize this hypergraph as a CANONICAL NWHYCSR2 snapshot.
  /// `with_adjoin` additionally embeds the (lazily built) adjoin CSR so a
  /// later load skips that construction too.  Requires a compacted state
  /// (the snapshot serializes the base CSRs, which a pending delta would
  /// silently contradict).
  /// When the hypergraph is relabeled, the file's rows are written in
  /// internal (degree-ordered) order and a RELABEL_INV section is embedded
  /// so a later load reinstalls the maps — round-trips are id-invisible.
  void save_csr_snapshot(const std::string& path, bool with_adjoin = false) const {
    save_impl(path, nullptr, nullptr, with_adjoin);
  }

  /// Compressing overload: target sections are StreamVByte-encoded (and
  /// duplicate hyperedges dictionary-deduplicated) per `opt` — see
  /// docs/IO_FORMATS.md §4.
  void save_csr_snapshot(const std::string& path, const csr_compress_options& opt,
                         bool with_adjoin = false) const {
    save_impl(path, &opt, nullptr, with_adjoin);
  }

  /// Sharded overload: both CSRs sliced into contiguous hyperedge-range
  /// shards with independently mappable payloads (docs/IO_FORMATS.md §4.7);
  /// `shard.compress` selects SVB-coded shard slices.
  void save_csr_snapshot(const std::string& path, const csr_shard_options& shard,
                         bool with_adjoin = false) const {
    save_impl(path, nullptr, &shard, with_adjoin);
  }

  // --- representation accessors -------------------------------------------
  //
  // These three expose the *base generation's* structures, which do not see
  // the delta overlay — so they refuse (std::logic_error) while a delta is
  // pending rather than hand out pre-mutation data.  Call compact() first.

  [[nodiscard]] const biedgelist<>& edge_list() const {
    require_compacted("edge_list");
    return gen_->el;
  }
  [[nodiscard]] const biadjacency<0>& hyperedges() const {
    require_compacted("hyperedges");
    return gen_->hyperedges;
  }
  [[nodiscard]] const biadjacency<1>& hypernodes() const {
    require_compacted("hypernodes");
    return gen_->hypernodes;
  }

  [[nodiscard]] std::size_t num_hyperedges() const { return edge_degrees_.size(); }
  [[nodiscard]] std::size_t num_hypernodes() const { return node_degrees_.size(); }
  [[nodiscard]] std::size_t num_incidences() const { return num_incidences_; }

  /// Composed degrees, maintained incrementally under mutation.
  [[nodiscard]] const std::vector<std::size_t>& edge_sizes() const { return edge_degrees_; }
  [[nodiscard]] const std::vector<std::size_t>& node_degrees() const { return node_degrees_; }

  // --- composed point queries ---------------------------------------------

  /// The composed (base+delta) member list of hyperedge `e`; empty for
  /// out-of-range or tombstoned edges.  Sorted ascending.
  [[nodiscard]] std::vector<vertex_id_t> edge_members(vertex_id_t e) const {
    if (const delta_row* row = delta_.find(e)) return row->members;
    const vertex_id_t se = storage_edge_id(e);
    if (se < gen_->hyperedges.size()) {
      auto                     nbrs = gen_->hyperedges[se];
      std::vector<vertex_id_t> out;
      for (auto&& t : nbrs) out.push_back(target(t));
      return out;
    }
    return {};
  }

  /// The composed hyperedges incident on hypernode `v`: base edges without
  /// an overlay row, merged with overlay edges containing `v`.  Sorted.
  [[nodiscard]] std::vector<vertex_id_t> incident_edges(vertex_id_t v) const {
    std::vector<vertex_id_t> out;
    if (v < gen_->hypernodes.size()) {
      for (auto&& t : gen_->hypernodes[v]) {
        vertex_id_t e = target(t);
        if (relabel_) e = relabel_->inv[e];
        if (delta_.find(e) == nullptr) out.push_back(e);
      }
      // Internal-order rows come out in internal order; re-sort externally.
      if (relabel_) std::sort(out.begin(), out.end());
    }
    auto overlay = delta_.node_overlay(v);
    if (!overlay.empty()) {
      // Both inputs are sorted and disjoint (an edge is overlaid or not).
      std::vector<vertex_id_t> merged;
      merged.reserve(out.size() + overlay.size());
      std::merge(out.begin(), out.end(), overlay.begin(), overlay.end(),
                 std::back_inserter(merged));
      out = std::move(merged);
    }
    return out;
  }

  /// Composed incidence point query: is hyperedge `e` incident on `v`?
  [[nodiscard]] bool contains(vertex_id_t e, vertex_id_t v) const {
    if (const delta_row* row = delta_.find(e)) {
      return std::binary_search(row->members.begin(), row->members.end(), v);
    }
    const vertex_id_t se = storage_edge_id(e);
    return se < gen_->hyperedges.size() && gen_->hyperedges.contains(se, v);
  }

  // --- mutation (the dynamic engine) --------------------------------------

  /// Insert-or-replace a batch of hyperedge rows.  A row whose edge id is
  /// past num_hyperedges() grows the hypergraph (intermediate ids become
  /// empty hyperedges); member ids past num_hypernodes() grow the node
  /// space.  Duplicate edge ids within one batch: last row wins.
  void insert_edges(std::vector<edge_update> batch) {
    for (auto& u : batch) apply_row(u.edge, std::move(u.members), /*tombstone=*/false);
    maybe_autocompact();
  }

  /// Tombstone a batch of hyperedges: ids stay stable, the edges become
  /// empty (exactly what a rebuild without their incidences produces).
  /// Out-of-range ids are ignored.
  void remove_edges(std::span<const vertex_id_t> edge_ids) {
    for (vertex_id_t e : edge_ids) {
      if (e < edge_degrees_.size()) apply_row(e, {}, /*tombstone=*/true);
    }
    maybe_autocompact();
  }

  /// Replace the member list of one hyperedge.
  void update_edge(vertex_id_t e, std::vector<vertex_id_t> members) {
    apply_row(e, std::move(members), /*tombstone=*/false);
    maybe_autocompact();
  }

  /// Fold the pending delta into a fresh immutable generation through the
  /// parallel from_thread_buffers pipeline.  Readers holding the previous
  /// generation() shared_ptr keep it alive.  Content-preserving: the
  /// version counter does not change (mutations already bumped it).
  void compact() {
    if (delta_.empty()) return;
    NWOBS_SCOPE_TIMER("dynamic.compact");
    auto&             pool = par::thread_pool::default_pool();
    const std::size_t ne   = edge_degrees_.size();
    const std::size_t nv   = node_degrees_.size();
    const auto&       base = gen_->hyperedges;
    par::per_thread<std::vector<std::pair<vertex_id_t, vertex_id_t>>> buffers(pool);
    // static_blocked gives thread t a contiguous ascending block of edge
    // ids and from_thread_buffers merges the buffers in thread order, so
    // the compacted list comes out in canonical (edge, node) order without
    // a sort — bit-identical to init()'s sort_and_unique on the same rows.
    par::parallel_for(
        0, ne,
        [&](unsigned tid, std::size_t e) {
          auto& buf = buffers.local(tid);
          if (const delta_row* row = delta_.find(static_cast<vertex_id_t>(e))) {
            for (vertex_id_t v : row->members) {
              buf.push_back({static_cast<vertex_id_t>(e), v});
            }
          } else if (e < base.size()) {
            for (auto&& t : base[e]) buf.push_back({static_cast<vertex_id_t>(e), target(t)});
          }
        },
        par::static_blocked{}, pool);
    auto el = biedgelist<>::from_thread_buffers(buffers, ne, nv, par::merge_capacity::release,
                                                pool);
    const std::uint64_t next_id = gen_->id + 1;
    delta_.clear();
    auto gen = std::make_shared<hypergraph_generation>();
    gen->el  = std::move(el);
    gen->hyperedges = biadjacency<0>(gen->el);
    gen->hypernodes = biadjacency<1>(gen->el);
    gen->id         = next_id;
    adopt_generation(std::move(gen));
    composed_.reset();
    // adjoin_ (when still cached) describes the same composed content and
    // stays valid across a content-preserving compaction.
  }

  /// True while mutations are pending in the delta overlay.
  [[nodiscard]] bool has_pending_delta() const { return !delta_.empty(); }
  /// Number of pending overlay rows (tombstones included).
  [[nodiscard]] std::size_t delta_size() const { return delta_.size(); }
  /// The overlay itself (introspection / benches).
  [[nodiscard]] const hyperedge_delta& delta() const { return delta_; }

  /// The current base generation.  Pin the returned shared_ptr to keep its
  /// CSRs (and any mmap'd backing bytes) alive across compactions.
  [[nodiscard]] std::shared_ptr<const hypergraph_generation> generation() const { return gen_; }

  /// Content version: bumped by every mutating call (not by compact(),
  /// which preserves content).  Derived structures capture the token at
  /// build time and compare to detect staleness.
  [[nodiscard]] std::uint64_t version() const { return *version_; }
  [[nodiscard]] std::shared_ptr<const std::uint64_t> version_token() const { return version_; }

  /// The adjoin representation, built on first use and cached; mutation
  /// invalidates the cache and the next call rebuilds from the composed
  /// incidence.
  [[nodiscard]] const adjoin_graph& adjoin() const {
    if (!adjoin_) {
      // Cached adjoins always speak external ids (they survive a
      // content-preserving relabel), so a relabeled generation feeds the
      // externally-translated edge list.
      biedgelist<>        local;
      const biedgelist<>* src = &gen_->el;
      if (!delta_.empty()) {
        local = composed_edge_list();
        src   = &local;
      } else if (relabel_) {
        local = external_edge_list();
        src   = &local;
      }
      adjoin_ = build_adjoin(*src);
    }
    return *adjoin_;
  }

  /// The dual hypergraph H*: hyperedges and hypernodes swap roles
  /// (transpose of the incidence matrix).  Composes base+delta.
  [[nodiscard]] NWHypergraph dual() const {
    biedgelist<>        local;
    const biedgelist<>* src = &gen_->el;
    if (!delta_.empty()) {
      local = composed_edge_list();
      src   = &local;
    } else if (relabel_) {
      local = external_edge_list();  // dual's node ids are our edge ids
      src   = &local;
    }
    biedgelist<> el(num_hypernodes(), num_hyperedges());
    el.reserve(src->size());
    for (std::size_t i = 0; i < src->size(); ++i) {
      auto [e, v] = (*src)[i];
      el.push_back(v, e);
    }
    return NWHypergraph(std::move(el));
  }

  // --- lower-order approximations -----------------------------------------

  /// Listing 5 `s_linegraph(s, edges)`: the s-line graph over hyperedges
  /// (edges == true) or the s-clique graph over hypernodes (edges == false).
  /// Compacted state uses the direct per-thread-buffers -> CSR
  /// materialization pipeline; a pending delta composes base+delta through
  /// the serial overlap counter (same edge set as a rebuild).
  [[nodiscard]] s_linegraph make_s_linegraph(std::size_t s, bool edges = true) const {
    if (!delta_.empty()) {
      const auto& h = composed();
      if (edges) {
        return s_linegraph(serial_s_pairs(h.edges, h.nodes, s), num_hyperedges(),
                           edge_degrees_, s);
      }
      return s_linegraph(serial_s_pairs(h.nodes, h.edges, s), num_hypernodes(), node_degrees_,
                         s);
    }
    if (edges) {
      if (relabel_) {
        // Count overlaps over the internal (degree-ordered) rows — that is
        // the locality win — then translate pair endpoints back out.
        auto pairs = to_two_graph_hashmap(gen_->hyperedges, gen_->hypernodes,
                                          internal_edge_degrees_, s);
        nw::graph::edge_list<> ext(num_hyperedges());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          ext.push_back(relabel_->inv[pairs.source(i)], relabel_->inv[pairs.destination(i)]);
        }
        return s_linegraph(std::move(ext), num_hyperedges(), edge_degrees_, s);
      }
      return s_linegraph(
          to_two_graph_hashmap_csr(gen_->hyperedges, gen_->hypernodes, edge_degrees_, s),
          edge_degrees_, s);
    }
    // Node-side clique graph: edge ids only act as the transpose dimension,
    // so an edge relabeling cannot change the result.
    return s_linegraph(
        to_two_graph_hashmap_csr(gen_->hypernodes, gen_->hyperedges, node_degrees_, s),
        node_degrees_, s);
  }

  /// s-connected components / s-distance computed *without* materializing
  /// the line graph (implicit traversal — see slinegraph/implicit.hpp for
  /// the memory/work tradeoff).  A pending delta routes through the serial
  /// composed oracle (identical partition).
  [[nodiscard]] std::vector<vertex_id_t> s_connected_components_implicit(std::size_t s) const {
    if (!delta_.empty()) return ref::s_components(composed(), s);
    if (!relabel_) {
      return nw::hypergraph::s_connected_components_implicit(gen_->hyperedges, gen_->hypernodes,
                                                             edge_degrees_, s);
    }
    auto r = nw::hypergraph::s_connected_components_implicit(
        gen_->hyperedges, gen_->hypernodes, internal_edge_degrees_, s);
    // Internal labels are each component's minimum *active internal* id;
    // the unrelabeled convention is the minimum active external id.
    const auto&              perm = relabel_->perm;
    const std::size_t        ne   = perm.size();
    std::vector<vertex_id_t> minext(ne, null_vertex<>);
    for (std::size_t e = 0; e < ne; ++e) {
      const vertex_id_t k = r[perm[e]];
      if (k != null_vertex<> && static_cast<vertex_id_t>(e) < minext[k]) {
        minext[k] = static_cast<vertex_id_t>(e);
      }
    }
    std::vector<vertex_id_t> out(ne, null_vertex<>);
    for (std::size_t e = 0; e < ne; ++e) {
      const vertex_id_t k = r[perm[e]];
      if (k != null_vertex<>) out[e] = minext[k];
    }
    return out;
  }
  [[nodiscard]] std::optional<std::size_t> s_distance_implicit(std::size_t s, vertex_id_t src,
                                                               vertex_id_t dst) const {
    if (!delta_.empty()) return ref::s_distance(composed(), s, src, dst);
    if (!relabel_) {
      return nw::hypergraph::s_distance_implicit(gen_->hyperedges, gen_->hypernodes,
                                                 edge_degrees_, s, src, dst);
    }
    // Hop counts are label-invariant; only the endpoints translate in.
    return nw::hypergraph::s_distance_implicit(gen_->hyperedges, gen_->hypernodes,
                                               internal_edge_degrees_, s,
                                               storage_edge_id(src), storage_edge_id(dst));
  }

  /// Weighted 1-line edge list: every s-adjacent pair with its exact
  /// overlap |e_i ∩ e_j|; threshold_weighted() slices it into any L_s(H).
  [[nodiscard]] nw::graph::edge_list<std::uint32_t> weighted_linegraph_edges(
      std::size_t s = 1) const {
    if (!delta_.empty()) {
      return NWHypergraph(composed_edge_list()).weighted_linegraph_edges(s);
    }
    if (relabel_) {
      // Rare path: rebuild an external-order copy so the emission order
      // matches the unrelabeled run exactly.
      return NWHypergraph(external_edge_list()).weighted_linegraph_edges(s);
    }
    return to_two_graph_weighted(gen_->hyperedges, gen_->hypernodes, edge_degrees_, s);
  }

  /// A copy of this hypergraph with hyperedge ids relabeled by degree
  /// (Sec. III-B.2's optimization — legal on the bipartite representation,
  /// impossible on the adjoin one).  `perm_out`, if given, receives the
  /// old-id -> new-id permutation.
  [[nodiscard]] NWHypergraph relabel_edges_by_degree(
      nw::graph::degree_order order = nw::graph::degree_order::descending,
      std::vector<vertex_id_t>* perm_out = nullptr) const {
    auto                perm = nw::graph::degree_permutation(edge_degrees_, order);
    biedgelist<>        local;
    const biedgelist<>* src = &gen_->el;
    if (!delta_.empty()) {
      local = composed_edge_list();
      src   = &local;
    } else if (relabel_) {
      local = external_edge_list();  // perm is over external ids
      src   = &local;
    }
    biedgelist<> rel(num_hyperedges(), num_hypernodes());
    rel.reserve(src->size());
    for (std::size_t i = 0; i < src->size(); ++i) {
      auto [e, v] = (*src)[i];
      rel.push_back(perm[e], v);
    }
    if (perm_out) *perm_out = std::move(perm);
    return NWHypergraph(std::move(rel));
  }

  /// Clique-expansion graph (Sec. III-B.3): graph over hypernodes replacing
  /// every hyperedge by a clique.  Materialized through the direct
  /// per-thread-buffers -> CSR pipeline.
  [[nodiscard]] nw::graph::adjacency<> clique_expansion_graph() const {
    if (!delta_.empty()) return NWHypergraph(composed_edge_list()).clique_expansion_graph();
    return clique_expansion_csr(gen_->hypernodes, gen_->hyperedges, node_degrees_);
  }

  // --- exact algorithms -----------------------------------------------------

  /// HyperBFS from a hyperedge (direction-optimizing; a pending delta runs
  /// the composed serial engine, distances bit-identical).
  [[nodiscard]] hyper_bfs_result bfs(vertex_id_t source_edge) const {
    if (!delta_.empty()) return composed_bfs(source_edge);
    if (!relabel_) return hyper_bfs(gen_->hyperedges, gen_->hypernodes, source_edge);
    auto r = hyper_bfs(gen_->hyperedges, gen_->hypernodes, storage_edge_id(source_edge));
    return derelabel_bfs(std::move(r), source_edge);
  }

  /// HyperCC over the bipartite representation (min-label convention; the
  /// composed path reproduces it exactly).
  [[nodiscard]] hyper_cc_result connected_components() const {
    if (!delta_.empty()) {
      auto r = ref::cc_labels(composed());
      return hyper_cc_result{std::move(r.labels_edge), std::move(r.labels_node)};
    }
    if (!relabel_) return hyper_cc(gen_->hyperedges, gen_->hypernodes);
    return derelabel_cc(hyper_cc(gen_->hyperedges, gen_->hypernodes));
  }

  /// AdjoinBFS / AdjoinCC through the adjoin representation (which itself
  /// composes base+delta on rebuild).
  [[nodiscard]] adjoin_bfs_result bfs_adjoin(vertex_id_t source_edge) const {
    return adjoin_bfs(adjoin(), source_edge);
  }
  [[nodiscard]] adjoin_cc_result connected_components_adjoin(
      adjoin_cc_engine engine = adjoin_cc_engine::afforest) const {
    return adjoin_cc(adjoin(), engine);
  }

  /// Toplexes (Algorithm 3); a pending delta runs the composed serial
  /// dominance test (same tie-breaks, identical output).
  [[nodiscard]] std::vector<vertex_id_t> toplexes() const {
    if (!delta_.empty()) return composed_toplexes();
    auto internal = nw::hypergraph::toplexes(gen_->hyperedges, gen_->hypernodes);
    if (!relabel_) return internal;
    return derelabel_toplexes(internal);
  }

  /// Wedge/triad/butterfly census of the bipartite form
  /// (nwhy/algorithms/motif.hpp).  A pending delta runs the serial census on
  /// the composed incidence; the census is label-invariant, so the parallel
  /// path runs on the internal (possibly relabeled) CSRs unchanged.
  [[nodiscard]] motif_census motifs() const {
    if (!delta_.empty()) {
      auto r = ref::motif_counts(composed());
      return motif_census{r.wedges, r.triads, r.open_wedges, r.butterflies};
    }
    return count_motifs(gen_->hyperedges, gen_->hypernodes);
  }

  // --- degree-ordered storage relabeling (ROADMAP item 2 locality pass) ----

  /// Reorder the *internal* hyperedge storage by degree (descending by
  /// default, stable tie-break on prior external id) so the hot rows of
  /// both CSRs pack into the same pages.  Invisible to callers: every query
  /// keeps speaking the original external ids via the inverse map.
  /// Content-preserving (no version bump); requires a compacted state, and
  /// the next mutation folds the relabeling away automatically.
  void relabel_by_degree(nw::graph::degree_order order = nw::graph::degree_order::descending) {
    require_compacted("relabel_by_degree");
    auto& pool = par::thread_pool::default_pool();
    auto  maps = degree_relabel_maps(edge_degrees_, order, pool);
    std::vector<vertex_id_t> to_storage;
    if (relabel_) {
      // Compose: current storage id -> external id -> new storage id.
      to_storage.resize(maps.perm.size());
      for (std::size_t i = 0; i < to_storage.size(); ++i) {
        to_storage[i] = maps.perm[relabel_->inv[i]];
      }
    } else {
      to_storage = maps.perm;
    }
    rebuild_with_edge_map(to_storage, pool);
    relabel_ = std::move(maps);
    refresh_relabel_degrees();
    // adjoin_ (external-space) stays valid; content and version unchanged.
  }

  /// Undo relabel_by_degree: rebuild the storage in external-id order.
  void derelabel() {
    if (!relabel_) return;
    require_compacted("derelabel");
    auto& pool = par::thread_pool::default_pool();
    auto  inv  = std::move(relabel_->inv);
    relabel_.reset();
    internal_edge_degrees_.clear();
    rebuild_with_edge_map(inv, pool);
  }

  [[nodiscard]] bool is_relabeled() const { return relabel_.has_value(); }

  /// inv[storage_row] = external id — exactly the RELABEL_INV payload a
  /// relabeled save embeds.  Empty when not relabeled.
  [[nodiscard]] std::span<const vertex_id_t> relabel_inverse() const {
    return relabel_ ? std::span<const vertex_id_t>(relabel_->inv)
                    : std::span<const vertex_id_t>{};
  }

private:
  void init(biedgelist<> el) {
    el.sort_and_unique();  // canonical order: sorted incidence lists everywhere
    auto gen        = std::make_shared<hypergraph_generation>();
    gen->el         = std::move(el);
    gen->hyperedges = biadjacency<0>(gen->el);
    gen->hypernodes = biadjacency<1>(gen->el);
    adopt_generation(std::move(gen));
  }

  /// Install `gen` as the live generation and derive the maintained state.
  void adopt_generation(std::shared_ptr<hypergraph_generation> gen) {
    gen_            = std::move(gen);
    edge_degrees_   = gen_->hyperedges.degrees();
    node_degrees_   = gen_->hypernodes.degrees();
    num_incidences_ = gen_->el.size();
  }

  /// External query id -> internal storage row (identity when unrelabeled
  /// or out of range — out-of-range ids keep their unrelabeled behavior).
  [[nodiscard]] vertex_id_t storage_edge_id(vertex_id_t e) const {
    return relabel_ && e < relabel_->perm.size() ? relabel_->perm[e] : e;
  }

  /// Recompute both degree views after adopting a relabeled generation:
  /// internal for the CSR-order algorithms, external for the public API.
  void refresh_relabel_degrees() {
    internal_edge_degrees_ = gen_->hyperedges.degrees();
    std::vector<std::size_t> ext(internal_edge_degrees_.size());
    const auto&              inv = relabel_->inv;
    for (std::size_t i = 0; i < ext.size(); ++i) ext[inv[i]] = internal_edge_degrees_[i];
    edge_degrees_ = std::move(ext);
  }

  /// Rebuild the generation with every edge id mapped through `to_new`
  /// (content-preserving: same incidences under a bijection of edge ids).
  void rebuild_with_edge_map(const std::vector<vertex_id_t>& to_new, par::thread_pool& pool) {
    std::vector<vertex_id_t> edge_ids(gen_->el.edge_ids());
    std::vector<vertex_id_t> node_ids(gen_->el.node_ids());
    par::parallel_for(
        0, edge_ids.size(), [&](std::size_t i) { edge_ids[i] = to_new[edge_ids[i]]; },
        par::blocked{}, pool);
    biedgelist<> el(std::move(edge_ids), std::move(node_ids), num_hyperedges(),
                    num_hypernodes());
    el.sort_and_unique();
    const std::uint64_t next_id = gen_->id + 1;
    auto                gen     = std::make_shared<hypergraph_generation>();
    gen->el         = std::move(el);
    gen->hyperedges = biadjacency<0>(gen->el);
    gen->hypernodes = biadjacency<1>(gen->el);
    gen->id         = next_id;
    adopt_generation(std::move(gen));
  }

  /// The edge list translated back to external ids (relabeled state only).
  [[nodiscard]] biedgelist<> external_edge_list() const {
    auto&                    pool = par::thread_pool::default_pool();
    std::vector<vertex_id_t> edge_ids(gen_->el.edge_ids());
    std::vector<vertex_id_t> node_ids(gen_->el.node_ids());
    const auto&              inv = relabel_->inv;
    par::parallel_for(
        0, edge_ids.size(), [&](std::size_t i) { edge_ids[i] = inv[edge_ids[i]]; },
        par::blocked{}, pool);
    biedgelist<> el(std::move(edge_ids), std::move(node_ids), num_hyperedges(),
                    num_hypernodes());
    el.sort_and_unique();
    return el;
  }

  static std::unique_ptr<adjoin_graph> build_adjoin(const biedgelist<>& el) {
    std::size_t ne = 0, nv = 0;
    auto        flat = make_adjoin_edge_list(el, ne, nv);
    flat.sort_and_unique();
    return std::make_unique<adjoin_graph>(
        adjoin_graph{nw::graph::adjacency<>(flat, ne + nv), ne, nv});
  }

  void save_impl(const std::string& path, const csr_compress_options* compress,
                 const csr_shard_options* shard, bool with_adjoin) const {
    require_compacted("save_csr_snapshot");
    csr_write_options wopt;
    wopt.compress = compress;
    wopt.shard    = shard;
    if (relabel_) wopt.relabel_inv = std::span<const vertex_id_t>(relabel_->inv);
    std::unique_ptr<adjoin_graph> internal_adjoin;
    if (with_adjoin) {
      if (relabel_) {
        // The file's rows are internal-space, so its embedded adjoin must
        // be too — the cached external adjoin() would not match.
        internal_adjoin = build_adjoin(gen_->el);
        wopt.adjoin     = internal_adjoin.get();
      } else {
        wopt.adjoin = &adjoin();
      }
    }
    write_csr_snapshot(path, gen_->hyperedges, gen_->hypernodes, wopt);
  }

  /// Translate a BFS over the internal rows back to external edge ids.
  [[nodiscard]] hyper_bfs_result derelabel_bfs(hyper_bfs_result r, vertex_id_t source) const {
    const auto&      perm = relabel_->perm;
    const auto&      inv  = relabel_->inv;
    auto&            pool = par::thread_pool::default_pool();
    hyper_bfs_result out;
    out.dist_node = std::move(r.dist_node);  // node ids never move
    out.parents_node.resize(r.parents_node.size());
    out.dist_edge.resize(r.dist_edge.size());
    out.parents_edge.resize(r.parents_edge.size());
    par::parallel_for(
        0, out.dist_edge.size(),
        [&](std::size_t e) {
          out.dist_edge[e]    = r.dist_edge[perm[e]];
          out.parents_edge[e] = r.parents_edge[perm[e]];  // parent is a node id
        },
        par::blocked{}, pool);
    par::parallel_for(
        0, out.parents_node.size(),
        [&](std::size_t v) {
          const vertex_id_t p = r.parents_node[v];
          out.parents_node[v] = p == null_vertex<> ? p : inv[p];
        },
        par::blocked{}, pool);
    // The source-parents-itself convention stores an edge id in the edge
    // slot; the gather above copied the internal id.
    if (source < out.parents_edge.size() && out.parents_edge[source] != null_vertex<>) {
      out.parents_edge[source] = source;
    }
    return out;
  }

  /// Translate CC labels: internal labels are each component's minimum
  /// internal id; substitute the component's minimum external id.
  [[nodiscard]] hyper_cc_result derelabel_cc(hyper_cc_result r) const {
    const auto&              perm = relabel_->perm;
    const std::size_t        ne   = perm.size();
    std::vector<vertex_id_t> minext(ne, null_vertex<>);
    for (std::size_t e = 0; e < ne; ++e) {
      const vertex_id_t k = r.labels_edge[perm[e]];
      if (static_cast<vertex_id_t>(e) < minext[k]) minext[k] = static_cast<vertex_id_t>(e);
    }
    hyper_cc_result out;
    out.labels_edge.resize(ne);
    for (std::size_t e = 0; e < ne; ++e) out.labels_edge[e] = minext[r.labels_edge[perm[e]]];
    out.labels_node = std::move(r.labels_node);
    for (auto& l : out.labels_node) {
      if (l < ne) l = minext[l];  // >= ne: isolated-node label, id-stable
    }
    return out;
  }

  /// Translate toplexes: the set family is label-invariant, but the
  /// representative among duplicate rows is the *minimum id* — and the
  /// minimum-internal member of a duplicate group need not be the
  /// minimum-external one.  Rebucket rows by content and re-pick.
  [[nodiscard]] std::vector<vertex_id_t> derelabel_toplexes(
      const std::vector<vertex_id_t>& internal) const {
    const auto&       inv = relabel_->inv;
    const auto&       he  = gen_->hyperedges;
    const std::size_t ne  = he.size();
    auto              row_hash = [&](vertex_id_t e) {
      std::uint64_t h = 1469598103934665603ull;
      for (auto&& ev : he[e]) {
        h ^= static_cast<std::uint64_t>(target(ev)) + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      return h;
    };
    auto same_row = [&](vertex_id_t a, vertex_id_t b) {
      auto ra = he[a];
      auto rb = he[b];
      return std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
    };
    std::unordered_map<std::uint64_t, std::vector<vertex_id_t>> buckets;
    for (std::size_t e = 0; e < ne; ++e) {
      buckets[row_hash(static_cast<vertex_id_t>(e))].push_back(static_cast<vertex_id_t>(e));
    }
    std::vector<vertex_id_t> out;
    out.reserve(internal.size());
    for (vertex_id_t t : internal) {
      vertex_id_t best = null_vertex<>;
      for (vertex_id_t m : buckets[row_hash(t)]) {
        if (same_row(t, m) && inv[m] < best) best = inv[m];
      }
      out.push_back(best);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void require_compacted(const char* what) const {
    if (!delta_.empty()) {
      throw std::logic_error(std::string(what) +
                             ": hypergraph has a pending delta overlay (" +
                             std::to_string(delta_.size()) +
                             " rows); call compact() first");
    }
  }

  /// Apply one overlay row: canonicalize, maintain the incremental degree
  /// state, record in the delta, invalidate every cached derived structure.
  void apply_row(vertex_id_t e, std::vector<vertex_id_t> members, bool tombstone) {
    // The overlay speaks external ids against external-order storage; fold
    // any relabeling away first (relabel_ implies an empty delta, so this
    // cannot strand overlay rows).
    if (relabel_) derelabel();
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    auto old = edge_members(e);
    if (std::size_t{e} >= edge_degrees_.size()) edge_degrees_.resize(std::size_t{e} + 1, 0);
    for (vertex_id_t v : members) {
      if (std::size_t{v} >= node_degrees_.size()) node_degrees_.resize(std::size_t{v} + 1, 0);
    }
    for (vertex_id_t v : old) --node_degrees_[v];
    for (vertex_id_t v : members) ++node_degrees_[v];
    num_incidences_ += members.size();
    num_incidences_ -= old.size();
    edge_degrees_[e] = members.size();
    if (tombstone) {
      delta_.erase_edge(e);
    } else {
      delta_.set(e, std::move(members));
    }
    adjoin_.reset();
    composed_.reset();
    ++*version_;
  }

  void maybe_autocompact() {
    const std::size_t threshold = compact_threshold();
    if (threshold != 0 && delta_.size() >= threshold) compact();
  }

  /// The composed (base+delta) incidence, cached until the next mutation.
  const ref::incidence& composed() const {
    if (!composed_) {
      auto              inc = std::make_shared<ref::incidence>();
      const std::size_t ne  = edge_degrees_.size();
      const std::size_t nv  = node_degrees_.size();
      inc->edges.resize(ne);
      inc->nodes.resize(nv);
      for (std::size_t e = 0; e < ne; ++e) {
        inc->edges[e] = edge_members(static_cast<vertex_id_t>(e));
        for (vertex_id_t v : inc->edges[e]) {
          inc->nodes[v].push_back(static_cast<vertex_id_t>(e));  // ascending e: sorted
        }
      }
      composed_ = std::move(inc);
    }
    return *composed_;
  }

  /// The composed edge list in canonical (edge, node) order.
  [[nodiscard]] biedgelist<> composed_edge_list() const {
    biedgelist<> el(num_hyperedges(), num_hypernodes());
    el.reserve(num_incidences_);
    for (std::size_t e = 0; e < edge_degrees_.size(); ++e) {
      for (vertex_id_t v : edge_members(static_cast<vertex_id_t>(e))) {
        el.push_back(static_cast<vertex_id_t>(e), v);
      }
    }
    return el;
  }

  /// Serial composed HyperBFS, reproducing the parallel engine's
  /// conventions exactly: dist_edge[source] = 0, alternating bipartite
  /// levels, parents cross-class with the source parenting itself.
  [[nodiscard]] hyper_bfs_result composed_bfs(vertex_id_t source) const {
    const auto&      h = composed();
    hyper_bfs_result r;
    r.parents_edge.assign(h.num_edges(), null_vertex<>);
    r.parents_node.assign(h.num_nodes(), null_vertex<>);
    r.dist_edge.assign(h.num_edges(), null_vertex<>);
    r.dist_node.assign(h.num_nodes(), null_vertex<>);
    if (h.num_edges() == 0 || source >= h.num_edges()) return r;
    r.parents_edge[source] = source;
    r.dist_edge[source]    = 0;
    std::vector<vertex_id_t> frontier{source};
    std::vector<vertex_id_t> next;
    bool                     edge_side = true;
    vertex_id_t              level     = 0;
    while (!frontier.empty()) {
      ++level;
      next.clear();
      for (vertex_id_t u : frontier) {
        const auto& nbrs    = edge_side ? h.edges[u] : h.nodes[u];
        auto&       dist    = edge_side ? r.dist_node : r.dist_edge;
        auto&       parents = edge_side ? r.parents_node : r.parents_edge;
        for (vertex_id_t v : nbrs) {
          if (dist[v] == null_vertex<>) {
            dist[v]    = level;
            parents[v] = u;
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
      edge_side = !edge_side;
    }
    return r;
  }

  /// Serial composed toplexes with the parallel formulation's dominance
  /// rule: e dominated iff ∃f: e ⊆ f ∧ (|f| > |e| ∨ (|f| == |e| ∧ f < e));
  /// among empty hyperedges only the smallest id survives, and only when no
  /// non-empty hyperedge exists.
  [[nodiscard]] std::vector<vertex_id_t> composed_toplexes() const {
    const auto&       h  = composed();
    const std::size_t ne = h.num_edges();
    bool              any_nonempty   = false;
    vertex_id_t       first_empty_id = null_vertex<>;
    for (std::size_t i = 0; i < ne; ++i) {
      if (!h.edges[i].empty()) {
        any_nonempty = true;
      } else if (first_empty_id == null_vertex<>) {
        first_empty_id = static_cast<vertex_id_t>(i);
      }
    }
    std::vector<vertex_id_t> result;
    counting_hashmap<>       overlap;
    for (std::size_t i = 0; i < ne; ++i) {
      const vertex_id_t ei = static_cast<vertex_id_t>(i);
      const std::size_t di = h.edges[i].size();
      if (di == 0) {
        if (!any_nonempty && ei == first_empty_id) result.push_back(ei);
        continue;
      }
      overlap.clear();
      for (vertex_id_t v : h.edges[i]) {
        for (vertex_id_t ej : h.nodes[v]) {
          if (ej != ei) overlap.increment(ej);
        }
      }
      bool dom = false;
      overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
        if (dom || n < di) return;
        std::size_t dj = h.edges[ej].size();
        if (dj > di || (dj == di && ej < ei)) dom = true;
      });
      if (!dom) result.push_back(ei);
    }
    return result;
  }

  /// Serial composed s-line-graph pair set through overlap counting — the
  /// same edge set the parallel hashmap algorithm emits (pairs sharing at
  /// least one member, overlap >= s, both entities active).
  static nw::graph::edge_list<> serial_s_pairs(const ref::adjacency_list& entities,
                                               const ref::adjacency_list& transpose,
                                               std::size_t s) {
    nw::graph::edge_list<> out(entities.size());
    counting_hashmap<>     overlap;
    for (std::size_t i = 0; i < entities.size(); ++i) {
      if (entities[i].size() < s) continue;
      const vertex_id_t ei = static_cast<vertex_id_t>(i);
      overlap.clear();
      for (vertex_id_t v : entities[i]) {
        for (vertex_id_t ej : transpose[v]) {
          if (ej > ei && entities[ej].size() >= s) overlap.increment(ej);
        }
      }
      overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
        if (n >= s) out.push_back(ei, ej);
      });
    }
    return out;
  }

  std::shared_ptr<const hypergraph_generation> gen_;
  hyperedge_delta                              delta_;
  /// Engaged while the storage is degree-relabeled: perm[external] =
  /// storage row, inv[storage row] = external id.  Invariant: never engaged
  /// together with a non-empty delta_.
  std::optional<relabel_maps>                  relabel_;
  /// Degrees in storage-row order while relabeled (empty otherwise);
  /// edge_degrees_ always stays in external order.
  std::vector<std::size_t>                     internal_edge_degrees_;
  std::vector<std::size_t>                     edge_degrees_;
  std::vector<std::size_t>                     node_degrees_;
  std::size_t                                  num_incidences_ = 0;
  mutable std::unique_ptr<adjoin_graph>        adjoin_;
  mutable std::shared_ptr<const ref::incidence> composed_;
  std::shared_ptr<std::uint64_t> version_ = std::make_shared<std::uint64_t>(0);
};

}  // namespace nw::hypergraph
