// nwhy/nwhypergraph.hpp
//
// The NWHypergraph facade — the C++ twin of the Python-facing class in the
// paper's Listing 5.  Owns the canonical biedgelist plus the two mutually
// indexed biadjacency structures, lazily materializes the adjoin graph, and
// exposes the representation constructors (s-line graph, s-clique graph,
// clique expansion) and exact algorithms (BFS, CC, toplexes).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nwhy/adjoin.hpp"
#include "nwhy/algorithms/adjoin_algorithms.hpp"
#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/algorithms/toplex.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwgraph/relabel.hpp"
#include "nwhy/s_linegraph.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "nwhy/slinegraph/implicit.hpp"
#include "nwhy/slinegraph/weighted.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

class NWHypergraph {
public:
  /// Construct from parallel (hyperedge id, hypernode id) arrays — the
  /// Listing 5 `NWHypergraph(row, col, weight)` signature, with weights
  /// optional and ignored for the structural metrics.
  NWHypergraph(std::span<const vertex_id_t> edge_ids, std::span<const vertex_id_t> node_ids) {
    NW_ASSERT(edge_ids.size() == node_ids.size(), "row/col arrays must have equal length");
    biedgelist<> el;
    el.reserve(edge_ids.size());
    for (std::size_t i = 0; i < edge_ids.size(); ++i) el.push_back(edge_ids[i], node_ids[i]);
    init(std::move(el));
  }

  /// Construct from an already-populated bipartite edge list.
  explicit NWHypergraph(biedgelist<> el) { init(std::move(el)); }

  /// Construct from a loaded NWHYCSR2 snapshot.  CANONICAL snapshots are
  /// adopted wholesale: the two CSRs (possibly zero-copy mmap views) become
  /// the live bi-adjacency structures, the edge list is re-expanded in
  /// parallel from the E2N rows, and a cached adjoin section is installed
  /// directly.  Non-canonical snapshots fall back to the full
  /// sort_and_unique + rebuild pipeline.
  explicit NWHypergraph(csr_snapshot snap) {
    if (snap.canonical()) {
      el_           = snap.to_biedgelist();
      hyperedges_   = std::move(snap.edges);
      hypernodes_   = std::move(snap.nodes);
      edge_degrees_ = hyperedges_.degrees();
      node_degrees_ = hypernodes_.degrees();
      if (snap.adjoin) adjoin_ = std::make_unique<adjoin_graph>(std::move(*snap.adjoin));
      io_keepalive_ = std::move(snap.storage);
    } else {
      init(snap.to_biedgelist());
    }
  }

  /// Serialize this hypergraph as a CANONICAL NWHYCSR2 snapshot.
  /// `with_adjoin` additionally embeds the (lazily built) adjoin CSR so a
  /// later load skips that construction too.
  void save_csr_snapshot(const std::string& path, bool with_adjoin = false) const {
    write_csr_snapshot(path, hyperedges_, hypernodes_, with_adjoin ? &adjoin() : nullptr,
                       /*canonical=*/true);
  }

  // --- representation accessors -------------------------------------------

  [[nodiscard]] const biedgelist<>&     edge_list() const { return el_; }
  [[nodiscard]] const biadjacency<0>&   hyperedges() const { return hyperedges_; }
  [[nodiscard]] const biadjacency<1>&   hypernodes() const { return hypernodes_; }

  [[nodiscard]] std::size_t num_hyperedges() const { return hyperedges_.size(); }
  [[nodiscard]] std::size_t num_hypernodes() const { return hypernodes_.size(); }
  [[nodiscard]] std::size_t num_incidences() const { return el_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& edge_sizes() const { return edge_degrees_; }
  [[nodiscard]] const std::vector<std::size_t>& node_degrees() const { return node_degrees_; }

  /// The adjoin representation, built on first use and cached.
  [[nodiscard]] const adjoin_graph& adjoin() const {
    if (!adjoin_) {
      std::size_t ne = 0, nv = 0;
      auto        flat = make_adjoin_edge_list(el_, ne, nv);
      flat.sort_and_unique();
      adjoin_ = std::make_unique<adjoin_graph>(
          adjoin_graph{nw::graph::adjacency<>(flat, ne + nv), ne, nv});
    }
    return *adjoin_;
  }

  /// The dual hypergraph H*: hyperedges and hypernodes swap roles
  /// (transpose of the incidence matrix).
  [[nodiscard]] NWHypergraph dual() const {
    biedgelist<> el(hypernodes_.size(), hyperedges_.size());
    el.reserve(el_.size());
    for (std::size_t i = 0; i < el_.size(); ++i) {
      auto [e, v] = el_[i];
      el.push_back(v, e);
    }
    return NWHypergraph(std::move(el));
  }

  // --- lower-order approximations -----------------------------------------

  /// Listing 5 `s_linegraph(s, edges)`: the s-line graph over hyperedges
  /// (edges == true) or the s-clique graph over hypernodes (edges == false).
  /// Uses the direct per-thread-buffers -> CSR materialization pipeline:
  /// no intermediate edge_list, no symmetrize, no global sort.
  [[nodiscard]] s_linegraph make_s_linegraph(std::size_t s, bool edges = true) const {
    if (edges) {
      return s_linegraph(to_two_graph_hashmap_csr(hyperedges_, hypernodes_, edge_degrees_, s),
                         edge_degrees_, s);
    }
    return s_linegraph(to_two_graph_hashmap_csr(hypernodes_, hyperedges_, node_degrees_, s),
                       node_degrees_, s);
  }

  /// s-connected components / s-distance computed *without* materializing
  /// the line graph (implicit traversal — see slinegraph/implicit.hpp for
  /// the memory/work tradeoff).
  [[nodiscard]] std::vector<vertex_id_t> s_connected_components_implicit(std::size_t s) const {
    return nw::hypergraph::s_connected_components_implicit(hyperedges_, hypernodes_,
                                                           edge_degrees_, s);
  }
  [[nodiscard]] std::optional<std::size_t> s_distance_implicit(std::size_t s, vertex_id_t src,
                                                               vertex_id_t dst) const {
    return nw::hypergraph::s_distance_implicit(hyperedges_, hypernodes_, edge_degrees_, s, src,
                                               dst);
  }

  /// Weighted 1-line edge list: every s-adjacent pair with its exact
  /// overlap |e_i ∩ e_j|; threshold_weighted() slices it into any L_s(H).
  [[nodiscard]] nw::graph::edge_list<std::uint32_t> weighted_linegraph_edges(
      std::size_t s = 1) const {
    return to_two_graph_weighted(hyperedges_, hypernodes_, edge_degrees_, s);
  }

  /// A copy of this hypergraph with hyperedge ids relabeled by degree
  /// (Sec. III-B.2's optimization — legal on the bipartite representation,
  /// impossible on the adjoin one).  `perm_out`, if given, receives the
  /// old-id -> new-id permutation.
  [[nodiscard]] NWHypergraph relabel_edges_by_degree(
      nw::graph::degree_order order = nw::graph::degree_order::descending,
      std::vector<vertex_id_t>* perm_out = nullptr) const {
    auto perm = nw::graph::degree_permutation(edge_degrees_, order);
    biedgelist<> rel(el_.num_vertices(0), el_.num_vertices(1));
    rel.reserve(el_.size());
    for (std::size_t i = 0; i < el_.size(); ++i) {
      auto [e, v] = el_[i];
      rel.push_back(perm[e], v);
    }
    if (perm_out) *perm_out = std::move(perm);
    return NWHypergraph(std::move(rel));
  }

  /// Clique-expansion graph (Sec. III-B.3): graph over hypernodes replacing
  /// every hyperedge by a clique.  Materialized through the direct
  /// per-thread-buffers -> CSR pipeline.
  [[nodiscard]] nw::graph::adjacency<> clique_expansion_graph() const {
    return clique_expansion_csr(hypernodes_, hyperedges_, node_degrees_);
  }

  // --- exact algorithms -----------------------------------------------------

  /// HyperBFS from a hyperedge (direction-optimizing).
  [[nodiscard]] hyper_bfs_result bfs(vertex_id_t source_edge) const {
    return hyper_bfs(hyperedges_, hypernodes_, source_edge);
  }

  /// HyperCC over the bipartite representation.
  [[nodiscard]] hyper_cc_result connected_components() const {
    return hyper_cc(hyperedges_, hypernodes_);
  }

  /// AdjoinBFS / AdjoinCC through the adjoin representation.
  [[nodiscard]] adjoin_bfs_result bfs_adjoin(vertex_id_t source_edge) const {
    return adjoin_bfs(adjoin(), source_edge);
  }
  [[nodiscard]] adjoin_cc_result connected_components_adjoin(
      adjoin_cc_engine engine = adjoin_cc_engine::afforest) const {
    return adjoin_cc(adjoin(), engine);
  }

  /// Toplexes (Algorithm 3).
  [[nodiscard]] std::vector<vertex_id_t> toplexes() const {
    return nw::hypergraph::toplexes(hyperedges_, hypernodes_);
  }

private:
  void init(biedgelist<> el) {
    el.sort_and_unique();  // canonical order: sorted incidence lists everywhere
    el_           = std::move(el);
    hyperedges_   = biadjacency<0>(el_);
    hypernodes_   = biadjacency<1>(el_);
    edge_degrees_ = hyperedges_.degrees();
    node_degrees_ = hypernodes_.degrees();
  }

  biedgelist<>                          el_;
  biadjacency<0>                        hyperedges_;
  biadjacency<1>                        hypernodes_;
  std::vector<std::size_t>              edge_degrees_;
  std::vector<std::size_t>              node_degrees_;
  mutable std::unique_ptr<adjoin_graph> adjoin_;
  /// Owns the mmap'd snapshot bytes when the CSRs are zero-copy views.
  std::shared_ptr<const void>           io_keepalive_;
};

}  // namespace nw::hypergraph
