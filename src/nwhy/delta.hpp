// nwhy/delta.hpp
//
// The mutable delta overlay of the dynamic hypergraph engine (ROADMAP
// item 1; ESCHER-style evolution awareness).  The base representation —
// the canonical biedgelist + CSR pair, possibly a zero-copy mmap view of
// an NWHYCSR2 snapshot — stays immutable; every mutation lands in this
// overlay as a *full replacement row* per hyperedge:
//
//   edge e has an overlay row  ->  the row (tombstone or member list)
//                                  replaces e's base incidence list
//   edge e has no overlay row  ->  e's base incidence list is live
//
// A tombstone empties the edge without renumbering: hyperedge ids are
// stable across mutation and compaction, so a tombstoned edge compacts to
// an empty CSR row — exactly what rebuilding from scratch without that
// edge's incidences would produce, which is what makes the incremental
// paths differential-testable bit-for-bit against rebuilds.
//
// The overlay also maintains the transposed view (hypernode -> overlay
// edges containing it), so composed node queries are one sorted merge:
//
//   node_edges(v) = {base edges of v without an overlay row}
//                 ∪ {overlay edges whose member list contains v}
//
// The two sets are disjoint by construction (an edge is either overlaid or
// not), so the merge needs no dedup.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

namespace nw::hypergraph {

/// One overlay row: the full replacement member list of a hyperedge.
/// `tombstone` distinguishes "removed" (empties the edge) from "replaced by
/// an empty member list" only for bookkeeping/introspection — both compose
/// to an empty incidence list.
struct delta_row {
  bool                         tombstone = false;
  std::vector<nw::vertex_id_t> members;  ///< sorted, unique
};

/// Compaction threshold: number of overlay rows at which NWHypergraph folds
/// the delta into a fresh CSR generation automatically (0 disables
/// auto-compaction; explicit compact() always works).  Read once.
inline std::size_t compact_threshold() {
  static const std::size_t t =
      static_cast<std::size_t>(nw::util::env_u64_strict("NWHY_COMPACT_THRESHOLD", 4096));
  return t;
}

/// Initial bucket reservation of the overlay maps, for workloads that know
/// their typical delta size.  Read once.
inline std::size_t delta_reserve() {
  static const std::size_t r =
      static_cast<std::size_t>(nw::util::env_u64_strict("NWHY_DELTA_RESERVE", 256));
  return r;
}

/// The per-hyperedge delta overlay: replacement rows keyed by hyperedge id,
/// plus the maintained transpose (hypernode id -> sorted overlay edge ids
/// whose replacement list contains it).
class hyperedge_delta {
public:
  hyperedge_delta() {
    rows_.reserve(delta_reserve());
    node_rows_.reserve(delta_reserve());
  }

  [[nodiscard]] bool        empty() const { return rows_.empty(); }
  /// Number of overlay rows (tombstones included) — the auto-compaction
  /// trigger quantity.
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// The overlay row of hyperedge `e`, or nullptr when `e` is not overlaid
  /// (its base incidence list is live).
  [[nodiscard]] const delta_row* find(nw::vertex_id_t e) const {
    auto it = rows_.find(e);
    return it == rows_.end() ? nullptr : &it->second;
  }

  /// The sorted overlay edges whose replacement member list contains
  /// hypernode `v` (empty span for non-overlaid nodes).
  [[nodiscard]] std::span<const nw::vertex_id_t> node_overlay(nw::vertex_id_t v) const {
    auto it = node_rows_.find(v);
    if (it == node_rows_.end()) return {};
    return {it->second.data(), it->second.size()};
  }

  /// Install a replacement member list for hyperedge `e` (insert or
  /// update).  `members` is sorted and deduplicated here; the previous
  /// overlay row of `e`, if any, is superseded.
  void set(nw::vertex_id_t e, std::vector<nw::vertex_id_t> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    detach_from_nodes(e);
    for (nw::vertex_id_t v : members) attach_to_node(e, v);
    rows_[e] = delta_row{false, std::move(members)};
  }

  /// Tombstone hyperedge `e`: its composed incidence list becomes empty.
  void erase_edge(nw::vertex_id_t e) {
    detach_from_nodes(e);
    rows_[e] = delta_row{true, {}};
  }

  /// Visit every overlay row (iteration order unspecified).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [e, row] : rows_) fn(e, row);
  }

  /// Exclusive upper bounds of the ids this overlay references: the overlay
  /// can *grow* the hypergraph (a new edge id past the base hyperedge
  /// count, a member past the base hypernode count).
  [[nodiscard]] std::size_t max_edge_bound() const {
    std::size_t bound = 0;
    for (const auto& [e, row] : rows_) bound = std::max(bound, std::size_t{e} + 1);
    return bound;
  }
  [[nodiscard]] std::size_t max_node_bound() const {
    std::size_t bound = 0;
    for (const auto& [v, edges] : node_rows_) {
      if (!edges.empty()) bound = std::max(bound, std::size_t{v} + 1);
    }
    return bound;
  }

  void clear() {
    rows_.clear();
    node_rows_.clear();
  }

private:
  void attach_to_node(nw::vertex_id_t e, nw::vertex_id_t v) {
    auto& edges = node_rows_[v];
    auto  it    = std::lower_bound(edges.begin(), edges.end(), e);
    if (it == edges.end() || *it != e) edges.insert(it, e);
  }

  /// Remove `e` from every node list of its current overlay row (no-op when
  /// `e` is not overlaid).
  void detach_from_nodes(nw::vertex_id_t e) {
    auto it = rows_.find(e);
    if (it == rows_.end()) return;
    for (nw::vertex_id_t v : it->second.members) {
      auto nit = node_rows_.find(v);
      if (nit == node_rows_.end()) continue;
      auto& edges = nit->second;
      auto  pos   = std::lower_bound(edges.begin(), edges.end(), e);
      if (pos != edges.end() && *pos == e) edges.erase(pos);
      if (edges.empty()) node_rows_.erase(v);
    }
  }

  std::unordered_map<nw::vertex_id_t, delta_row>                    rows_;
  std::unordered_map<nw::vertex_id_t, std::vector<nw::vertex_id_t>> node_rows_;
};

}  // namespace nw::hypergraph
