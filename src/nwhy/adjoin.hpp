// nwhy/adjoin.hpp
//
// The adjoined-graph representation of a hypergraph (paper Sec. III-B.2):
// the two index spaces are consolidated into one shared index set —
// hyperedges keep ids [0, nE), hypernodes are shifted to [nE, nE + nV).
// The resulting general graph has the symmetric adjacency matrix
//
//        A_G = [ 0    Bᵗ ]
//              [ B    0  ]
//
// where B is the incidence matrix of H.  Any graph algorithm then computes
// hypergraph metrics, provided it is *range-aware*; afterwards the resultant
// array is split back into hyperedge and hypernode parts (split_results).
#pragma once

#include <utility>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// The adjoin graph together with the index-split bookkeeping the
/// range-aware algorithms need.
struct adjoin_graph {
  nw::graph::adjacency<> graph;       ///< symmetric CSR over the shared index set
  std::size_t            nrealedges;  ///< ids [0, nrealedges) are hyperedges
  std::size_t            nrealnodes;  ///< ids [nrealedges, nrealedges + nrealnodes) are hypernodes

  [[nodiscard]] std::size_t num_ids() const { return nrealedges + nrealnodes; }

  /// Shift a hypernode id into the shared index set.
  [[nodiscard]] nw::vertex_id_t node_to_adjoin(nw::vertex_id_t v) const {
    return v + static_cast<nw::vertex_id_t>(nrealedges);
  }
  /// Recover a hypernode id from a shared-index id.
  [[nodiscard]] nw::vertex_id_t adjoin_to_node(nw::vertex_id_t id) const {
    NW_DEBUG_ASSERT(id >= nrealedges, "adjoin id is a hyperedge, not a hypernode");
    return id - static_cast<nw::vertex_id_t>(nrealedges);
  }
  [[nodiscard]] bool is_edge_id(nw::vertex_id_t id) const { return id < nrealedges; }
};

/// Flatten a bipartite edge list into a symmetric single-index edge list
/// (the in-memory analog of the paper's graph_reader_adjoin).  Outputs the
/// partition sizes through nrealedges / nrealnodes like the Listing 2 API.
template <class... Attributes>
nw::graph::edge_list<> make_adjoin_edge_list(const biedgelist<Attributes...>& el,
                                             std::size_t& nrealedges, std::size_t& nrealnodes) {
  nrealedges = el.num_vertices(0);
  nrealnodes = el.num_vertices(1);
  nw::graph::edge_list<> out(nrealedges + nrealnodes);
  out.reserve(2 * el.size());
  const auto& e_ids = el.edge_ids();
  const auto& n_ids = el.node_ids();
  for (std::size_t i = 0; i < el.size(); ++i) {
    nw::vertex_id_t e = e_ids[i];
    nw::vertex_id_t v = n_ids[i] + static_cast<nw::vertex_id_t>(nrealedges);
    out.push_back(e, v);
    out.push_back(v, e);
  }
  return out;
}

/// Build the adjoin CSR directly from a bipartite edge list.
template <class... Attributes>
adjoin_graph make_adjoin_graph(const biedgelist<Attributes...>& el) {
  std::size_t ne = 0, nv = 0;
  auto        flat = make_adjoin_edge_list(el, ne, nv);
  return adjoin_graph{nw::graph::adjacency<>(flat, ne + nv), ne, nv};
}

/// Split a per-id result array computed on the adjoin graph back into the
/// hyperedge part and the hypernode part (paper Sec. III-B.2: "we split the
/// resultant array of the graph algorithms into the hyperedge resultant
/// array and the hypernodes resultant array").
template <class T>
std::pair<std::vector<T>, std::vector<T>> split_results(const std::vector<T>& combined,
                                                        std::size_t nrealedges) {
  NW_ASSERT(combined.size() >= nrealedges, "result array shorter than the hyperedge range");
  std::vector<T> edge_part(combined.begin(),
                           combined.begin() + static_cast<std::ptrdiff_t>(nrealedges));
  std::vector<T> node_part(combined.begin() + static_cast<std::ptrdiff_t>(nrealedges),
                           combined.end());
  return {std::move(edge_part), std::move(node_part)};
}

}  // namespace nw::hypergraph
