// nwhy/relabel.hpp
//
// Degree-ordered relabeling for one partition of the bi-adjacency: the
// locality pass behind `nwhy_tool convert --relabel=degree` and
// `NWHypergraph::relabel_by_degree`.  High-degree hyperedges get the low
// ids, so the hot rows of both CSRs (and of a sharded snapshot's first
// shards) pack into the same pages — the access-pattern half of the
// same heuristic family Liu et al. use to make the s-line-graph algorithms
// tractable on skewed inputs.
//
// `degree_relabel_maps` is a parallel stable counting sort producing
// bit-identical output to nw::graph::degree_permutation (stable_sort with
// old-id tie-break): each thread histograms a contiguous ascending block of
// old ids, a column-major (bucket, thread) prefix sum assigns each
// (bucket, thread) pair its disjoint output range, and every thread
// scatters its block in ascending old-id order — race-free and stable by
// construction.  Answers are translated back through the inverse map, so
// relabeling stays invisible to callers (verified by the differential
// ladder).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "nwgraph/relabel.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Both directions of a relabeling: `perm[old_id] = new_id` (apply) and
/// `inv[new_id] = old_id` (translate answers back / persist as kind 13).
struct relabel_maps {
  std::vector<nw::vertex_id_t> perm;
  std::vector<nw::vertex_id_t> inv;

  [[nodiscard]] std::size_t size() const { return perm.size(); }
  [[nodiscard]] bool        empty() const { return perm.empty(); }
};

/// Build the degree-ordered permutation pair.  Deterministic for any thread
/// count and bit-identical to `nw::graph::degree_permutation` +
/// `inverse_permutation`; the counting-sort fast path only runs when the
/// bucket table stays within a constant factor of the id space (a
/// pathological max degree falls back to the comparison sort).
inline relabel_maps degree_relabel_maps(const std::vector<std::size_t>& degrees,
                                        nw::graph::degree_order order =
                                            nw::graph::degree_order::descending,
                                        par::thread_pool& pool = par::thread_pool::default_pool()) {
  const std::size_t n = degrees.size();
  relabel_maps      maps;
  maps.perm.resize(n);
  maps.inv.resize(n);
  if (n == 0) return maps;

  std::size_t max_degree = par::parallel_reduce(
      std::size_t{0}, n, std::size_t{0},
      [&](std::size_t acc, std::size_t i) { return std::max(acc, degrees[i]); },
      [](std::size_t a, std::size_t b) { return std::max(a, b); }, pool);
  const std::size_t buckets = max_degree + 1;
  if (buckets > 4 * n + 1024) {
    // Degenerate degree range: the histogram would dwarf the input.
    maps.perm = nw::graph::degree_permutation(degrees, order);
    maps.inv  = nw::graph::inverse_permutation(maps.perm);
    return maps;
  }
  const bool descending = order == nw::graph::degree_order::descending;
  auto       bucket_of  = [&](std::size_t i) {
    return descending ? max_degree - degrees[i] : degrees[i];
  };

  // Phase 1: per-thread histograms over fixed contiguous blocks (the same
  // blocks the scatter uses, so "thread t, ascending position" is a total
  // order matching ascending old id within each bucket).
  const unsigned    nthreads = pool.concurrency();
  const std::size_t block    = (n + nthreads - 1) / nthreads;
  std::vector<std::size_t> hist(std::size_t{nthreads} * buckets, 0);
  pool.run([&](unsigned tid) {
    const std::size_t begin = std::min<std::size_t>(std::size_t{tid} * block, n);
    const std::size_t end   = std::min<std::size_t>(begin + block, n);
    std::size_t*      mine  = hist.data() + std::size_t{tid} * buckets;
    for (std::size_t i = begin; i < end; ++i) ++mine[bucket_of(i)];
  });

  // Phase 2: column-major prefix sum — bucket 0 of every thread precedes
  // bucket 1 of any thread; within a bucket, lower thread ids (= lower old
  // ids) come first.  Serial over nthreads * buckets counters.
  std::size_t running = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    for (unsigned t = 0; t < nthreads; ++t) {
      std::size_t& cell = hist[std::size_t{t} * buckets + b];
      std::size_t  cnt  = cell;
      cell              = running;
      running += cnt;
    }
  }

  // Phase 3: stable scatter — each thread walks its block in ascending old
  // id and claims consecutive slots of its (bucket, thread) range.
  pool.run([&](unsigned tid) {
    const std::size_t begin = std::min<std::size_t>(std::size_t{tid} * block, n);
    const std::size_t end   = std::min<std::size_t>(begin + block, n);
    std::size_t*      mine  = hist.data() + std::size_t{tid} * buckets;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t slot = mine[bucket_of(i)]++;
      maps.perm[i]           = static_cast<nw::vertex_id_t>(slot);
      maps.inv[slot]         = static_cast<nw::vertex_id_t>(i);
    }
  });
  return maps;
}

/// Translate a span of ids in place through a map (parallel).  Used for
/// answer translation (`inv`) and query translation (`perm`) alike.
inline void translate_ids(std::vector<nw::vertex_id_t>&       ids,
                          const std::vector<nw::vertex_id_t>& map,
                          par::thread_pool& pool = par::thread_pool::default_pool()) {
  par::parallel_for(
      0, ids.size(), [&](std::size_t i) { ids[i] = map[ids[i]]; }, par::blocked{}, pool);
}

/// Reorder a per-id vector from old-id indexing to new-id indexing:
/// out[perm[i]] = in[i].  Parallel scatter; sizes must match.
template <class T>
std::vector<T> reindex_by_permutation(const std::vector<T>&               in,
                                      const std::vector<nw::vertex_id_t>& perm,
                                      par::thread_pool& pool = par::thread_pool::default_pool()) {
  NW_ASSERT(in.size() == perm.size(), "reindex_by_permutation size mismatch");
  std::vector<T> out(in.size());
  par::parallel_for(
      0, in.size(), [&](std::size_t i) { out[perm[i]] = in[i]; }, par::blocked{}, pool);
  return out;
}

}  // namespace nw::hypergraph
