// nwhy/biedgelist.hpp
//
// Bipartite edge list: the (hyperedge id, hypernode id) incidence pairs a
// hypergraph is constructed from (paper Listing 1).  Column 0 ids live in
// the hyperedge index space, column 1 ids in the hypernode index space.
// Attributes... are per-incidence payload (e.g. weights from Listing 5).
#pragma once

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "nwhy/bipartite_graph_base.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

template <class... Attributes>
class biedgelist : public bipartite_graph_base {
public:
  explicit biedgelist(std::size_t n0 = 0, std::size_t n1 = 0) : bipartite_graph_base(n0, n1) {}

  /// Adopt pre-built parallel id columns (the CSR-snapshot row-expansion
  /// path): no per-element loop, no reallocation.  Precondition: the two
  /// columns have equal length and every id is < its declared cardinality.
  /// Only available for the unattributed list.
  biedgelist(std::vector<nw::vertex_id_t> edge_ids, std::vector<nw::vertex_id_t> node_ids,
             std::size_t n0, std::size_t n1)
    requires(sizeof...(Attributes) == 0)
      : bipartite_graph_base(n0, n1),
        edge_ids_(std::move(edge_ids)),
        node_ids_(std::move(node_ids)) {
    NW_ASSERT(edge_ids_.size() == node_ids_.size(),
              "biedgelist columns must have equal length");
  }

  /// Materialize per-thread parse buffers of (hyperedge, hypernode) pairs
  /// into one SoA edge list: per-buffer sizes -> parallel exclusive scan ->
  /// one parallel pass scattering every buffer block into the two columns.
  /// Buffer order is preserved (buffer 0 first), so a parser that fills
  /// buffer t with byte-range t of the input reproduces the serial parse
  /// order exactly.  `n0`/`n1` are the declared cardinalities (they still
  /// grow if an id exceeds them — mirroring push_back's growth rule).
  /// `cap` controls per-thread buffer reuse, as in merge_thread_vectors.
  static biedgelist from_thread_buffers(
      par::per_thread<std::vector<std::pair<nw::vertex_id_t, nw::vertex_id_t>>>& buffers,
      std::size_t n0, std::size_t n1, par::merge_capacity cap = par::merge_capacity::release,
      par::thread_pool& pool = par::thread_pool::default_pool())
    requires(sizeof...(Attributes) == 0)
  {
    std::vector<std::size_t> sizes(buffers.size());
    for (std::size_t b = 0; b < buffers.size(); ++b) sizes[b] = buffers.local(b).size();
    std::size_t total  = 0;
    auto        chunks = par::detail::plan_block_copies(sizes, 0, total, pool);
    std::vector<nw::vertex_id_t> edge_ids(total), node_ids(total);
    par::parallel_for(
        0, chunks.size(),
        [&](std::size_t c) {
          const auto& ck  = chunks[c];
          const auto& src = buffers.local(ck.buf);
          for (std::size_t i = 0; i < ck.len; ++i) {
            edge_ids[ck.dst_begin + i] = src[ck.src_begin + i].first;
            node_ids[ck.dst_begin + i] = src[ck.src_begin + i].second;
          }
        },
        par::blocked{}, pool);
    par::detail::reset_buffers(buffers, cap);
    // Cardinalities: declared sizes, grown to cover any larger id (parallel
    // max-reduction over the merged columns).
    auto max_id = [&](const std::vector<nw::vertex_id_t>& ids) {
      return par::parallel_reduce(
          std::size_t{0}, ids.size(), std::size_t{0},
          [&](std::size_t acc, std::size_t i) {
            return std::max(acc, static_cast<std::size_t>(ids[i]) + 1);
          },
          [](std::size_t a, std::size_t b) { return std::max(a, b); }, pool);
    };
    std::size_t grown0 = std::max(n0, max_id(edge_ids));
    std::size_t grown1 = std::max(n1, max_id(node_ids));
    return biedgelist(std::move(edge_ids), std::move(node_ids), grown0, grown1);
  }

  void reserve(std::size_t n) {
    edge_ids_.reserve(n);
    node_ids_.reserve(n);
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, attrs_);
  }

  /// Record that hyperedge `e` is incident on hypernode `v`.  Cardinalities
  /// grow automatically if the ids exceed the declared partition sizes.
  void push_back(nw::vertex_id_t e, nw::vertex_id_t v, Attributes... attrs) {
    edge_ids_.push_back(e);
    node_ids_.push_back(v);
    push_attrs(std::index_sequence_for<Attributes...>{}, attrs...);
    vertex_cardinality_[0] = std::max(vertex_cardinality_[0], static_cast<std::size_t>(e) + 1);
    vertex_cardinality_[1] = std::max(vertex_cardinality_[1], static_cast<std::size_t>(v) + 1);
  }

  [[nodiscard]] std::size_t num_edges() const { return edge_ids_.size(); }
  [[nodiscard]] std::size_t size() const { return edge_ids_.size(); }
  [[nodiscard]] bool        empty() const { return edge_ids_.empty(); }

  /// Incidence i as (hyperedge id, hypernode id, attributes...).
  [[nodiscard]] auto operator[](std::size_t i) const {
    return std::apply(
        [&](const auto&... col) { return std::tuple{edge_ids_[i], node_ids_[i], col[i]...}; },
        attrs_);
  }

  [[nodiscard]] const std::vector<nw::vertex_id_t>& edge_ids() const { return edge_ids_; }
  [[nodiscard]] const std::vector<nw::vertex_id_t>& node_ids() const { return node_ids_; }
  template <std::size_t I>
  [[nodiscard]] const auto& attribute_column() const {
    return std::get<I>(attrs_);
  }

  /// Drop exact duplicate incidences (keeps the first occurrence's
  /// attributes); sorts by (hyperedge, hypernode).
  void sort_and_unique() {
    std::vector<std::size_t> order(size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return edge_ids_[a] != edge_ids_[b] ? edge_ids_[a] < edge_ids_[b]
                                          : node_ids_[a] < node_ids_[b];
    });
    biedgelist out(vertex_cardinality_[0], vertex_cardinality_[1]);
    out.reserve(size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      std::size_t i = order[k];
      if (k > 0) {
        std::size_t p = order[k - 1];
        if (edge_ids_[p] == edge_ids_[i] && node_ids_[p] == node_ids_[i]) continue;
      }
      std::apply([&](const auto&... col) { out.push_back(edge_ids_[i], node_ids_[i], col[i]...); },
                 attrs_);
    }
    *this = std::move(out);
  }

private:
  template <std::size_t... Is>
  void push_attrs(std::index_sequence<Is...>, const Attributes&... attrs) {
    (std::get<Is>(attrs_).push_back(attrs), ...);
  }

  std::vector<nw::vertex_id_t>           edge_ids_;
  std::vector<nw::vertex_id_t>           node_ids_;
  std::tuple<std::vector<Attributes>...> attrs_;
};

}  // namespace nw::hypergraph
