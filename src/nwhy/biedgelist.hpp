// nwhy/biedgelist.hpp
//
// Bipartite edge list: the (hyperedge id, hypernode id) incidence pairs a
// hypergraph is constructed from (paper Listing 1).  Column 0 ids live in
// the hyperedge index space, column 1 ids in the hypernode index space.
// Attributes... are per-incidence payload (e.g. weights from Listing 5).
#pragma once

#include <algorithm>
#include <tuple>
#include <vector>

#include "nwhy/bipartite_graph_base.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

template <class... Attributes>
class biedgelist : public bipartite_graph_base {
public:
  explicit biedgelist(std::size_t n0 = 0, std::size_t n1 = 0) : bipartite_graph_base(n0, n1) {}

  void reserve(std::size_t n) {
    edge_ids_.reserve(n);
    node_ids_.reserve(n);
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, attrs_);
  }

  /// Record that hyperedge `e` is incident on hypernode `v`.  Cardinalities
  /// grow automatically if the ids exceed the declared partition sizes.
  void push_back(nw::vertex_id_t e, nw::vertex_id_t v, Attributes... attrs) {
    edge_ids_.push_back(e);
    node_ids_.push_back(v);
    push_attrs(std::index_sequence_for<Attributes...>{}, attrs...);
    vertex_cardinality_[0] = std::max(vertex_cardinality_[0], static_cast<std::size_t>(e) + 1);
    vertex_cardinality_[1] = std::max(vertex_cardinality_[1], static_cast<std::size_t>(v) + 1);
  }

  [[nodiscard]] std::size_t num_edges() const { return edge_ids_.size(); }
  [[nodiscard]] std::size_t size() const { return edge_ids_.size(); }
  [[nodiscard]] bool        empty() const { return edge_ids_.empty(); }

  /// Incidence i as (hyperedge id, hypernode id, attributes...).
  [[nodiscard]] auto operator[](std::size_t i) const {
    return std::apply(
        [&](const auto&... col) { return std::tuple{edge_ids_[i], node_ids_[i], col[i]...}; },
        attrs_);
  }

  [[nodiscard]] const std::vector<nw::vertex_id_t>& edge_ids() const { return edge_ids_; }
  [[nodiscard]] const std::vector<nw::vertex_id_t>& node_ids() const { return node_ids_; }
  template <std::size_t I>
  [[nodiscard]] const auto& attribute_column() const {
    return std::get<I>(attrs_);
  }

  /// Drop exact duplicate incidences (keeps the first occurrence's
  /// attributes); sorts by (hyperedge, hypernode).
  void sort_and_unique() {
    std::vector<std::size_t> order(size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return edge_ids_[a] != edge_ids_[b] ? edge_ids_[a] < edge_ids_[b]
                                          : node_ids_[a] < node_ids_[b];
    });
    biedgelist out(vertex_cardinality_[0], vertex_cardinality_[1]);
    out.reserve(size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      std::size_t i = order[k];
      if (k > 0) {
        std::size_t p = order[k - 1];
        if (edge_ids_[p] == edge_ids_[i] && node_ids_[p] == node_ids_[i]) continue;
      }
      std::apply([&](const auto&... col) { out.push_back(edge_ids_[i], node_ids_[i], col[i]...); },
                 attrs_);
    }
    *this = std::move(out);
  }

private:
  template <std::size_t... Is>
  void push_attrs(std::index_sequence<Is...>, const Attributes&... attrs) {
    (std::get<Is>(attrs_).push_back(attrs), ...);
  }

  std::vector<nw::vertex_id_t>           edge_ids_;
  std::vector<nw::vertex_id_t>           node_ids_;
  std::tuple<std::vector<Attributes>...> attrs_;
};

}  // namespace nw::hypergraph
