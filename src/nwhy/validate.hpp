// nwhy/validate.hpp
//
// Structural validation for externally loaded hypergraphs.  The I/O
// readers enforce format-level invariants; this checks the semantic ones a
// downstream pipeline cares about before handing data to the parallel
// kernels (which assume canonical form for, e.g., sorted-list
// intersections).
//
// Every defect class is reported as an *exact count*, not just a flag, so
// the differential harness can assert that the counts match what the
// adversarial generator planted (gen::adversarial_hypergraph) — a
// validator that merely says "something is wrong" cannot be
// differential-tested.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

struct validation_report {
  bool        ids_in_bounds     = true;  ///< every id < declared cardinality
  bool        canonical_order   = true;  ///< sorted by (edge, node)
  bool        no_duplicates     = true;  ///< no repeated incidence (any order)
  std::size_t out_of_bounds     = 0;     ///< incidences with an id out of range
  std::size_t duplicates        = 0;     ///< incidences repeating an earlier one
  std::size_t empty_hyperedges  = 0;     ///< declared edges with no incidence
  std::size_t isolated_nodes    = 0;     ///< declared nodes with no incidence

  [[nodiscard]] bool canonical() const {
    return ids_in_bounds && canonical_order && no_duplicates;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s;
    s += ids_in_bounds ? "ids in bounds; "
                       : std::to_string(out_of_bounds) + " IDS OUT OF BOUNDS; ";
    s += canonical_order ? "sorted; " : "NOT SORTED; ";
    s += no_duplicates ? "unique; " : std::to_string(duplicates) + " DUPLICATE INCIDENCES; ";
    s += std::to_string(empty_hyperedges) + " empty hyperedges, ";
    s += std::to_string(isolated_nodes) + " isolated hypernodes";
    return s;
  }
};

/// Inspect a bipartite edge list; never aborts (unlike the NW_ASSERT-based
/// reader checks), so callers can report problems to users.  Duplicates are
/// counted globally (an incidence equal to *any* earlier one), not just
/// adjacent repeats, so the count is order-independent.
inline validation_report validate(const biedgelist<>& el) {
  validation_report r;
  const auto&       edges = el.edge_ids();
  const auto&       nodes = el.node_ids();
  const std::size_t ne    = el.num_vertices(0);
  const std::size_t nv    = el.num_vertices(1);

  std::vector<char> edge_seen(ne, 0), node_seen(nv, 0);
  for (std::size_t i = 0; i < el.size(); ++i) {
    if (edges[i] >= ne || nodes[i] >= nv) {
      r.ids_in_bounds = false;
      ++r.out_of_bounds;
      continue;
    }
    edge_seen[edges[i]] = 1;
    node_seen[nodes[i]] = 1;
    if (i > 0) {
      if (edges[i - 1] > edges[i] ||
          (edges[i - 1] == edges[i] && nodes[i - 1] > nodes[i])) {
        r.canonical_order = false;
      }
    }
  }
  // Exact duplicate count: sort a copy of the pairs, count repeats beyond
  // the first occurrence.  O(m log m) and order-independent.
  {
    std::vector<std::pair<vertex_id_t, vertex_id_t>> pairs;
    pairs.reserve(el.size());
    for (std::size_t i = 0; i < el.size(); ++i) pairs.push_back({edges[i], nodes[i]});
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      if (pairs[i] == pairs[i - 1]) ++r.duplicates;
    }
    r.no_duplicates = r.duplicates == 0;
  }
  for (auto s : edge_seen) r.empty_hyperedges += s == 0;
  for (auto s : node_seen) r.isolated_nodes += s == 0;
  return r;
}

/// Cross-consistency report for a bi-adjacency pair (what `nwhy_tool
/// inspect` runs against a loaded NWHYCSR2 snapshot): the two CSRs must be
/// exact transposes of each other and each row sorted.  Exact defect
/// counts, same philosophy as validate() above.
struct csr_consistency_report {
  std::size_t incidences_e2n    = 0;  ///< |E2N| target count
  std::size_t incidences_n2e    = 0;  ///< |N2E| target count
  std::size_t out_of_bounds     = 0;  ///< targets outside the opposite partition
  std::size_t unsorted_rows     = 0;  ///< rows whose neighbor list is not ascending
  std::size_t transpose_misses  = 0;  ///< (e,v) in E2N without matching (v,e) in N2E

  [[nodiscard]] bool consistent() const {
    return incidences_e2n == incidences_n2e && out_of_bounds == 0 && unsorted_rows == 0 &&
           transpose_misses == 0;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s;
    if (incidences_e2n != incidences_n2e) {
      s += "INCIDENCE COUNTS DISAGREE (" + std::to_string(incidences_e2n) + " vs " +
           std::to_string(incidences_n2e) + "); ";
    } else {
      s += std::to_string(incidences_e2n) + " incidences agree; ";
    }
    s += out_of_bounds == 0 ? "targets in bounds; "
                            : std::to_string(out_of_bounds) + " TARGETS OUT OF BOUNDS; ";
    s += unsorted_rows == 0 ? "rows sorted; "
                            : std::to_string(unsorted_rows) + " UNSORTED ROWS; ";
    s += transpose_misses == 0 ? "transpose exact"
                               : std::to_string(transpose_misses) + " TRANSPOSE MISSES";
    return s;
  }
};

/// Check that `edges` (E2N) and `nodes` (N2E) describe the same incidence
/// set.  Binary-searches each (e, v) of E2N in N2E's row v — valid because
/// canonical rows are sorted; unsorted N2E rows are counted separately and
/// also probed linearly so the miss count stays exact.
inline csr_consistency_report validate_csr_pair(const biadjacency<0>& edges,
                                                const biadjacency<1>& nodes) {
  csr_consistency_report r;
  r.incidences_e2n = edges.num_edges();
  r.incidences_n2e = nodes.num_edges();
  const std::size_t ne = edges.num_sources();
  const std::size_t nv = nodes.num_sources();

  std::vector<char> n2e_sorted(nv, 1);
  for (std::size_t v = 0; v < nv; ++v) {
    auto row = nodes[v];
    if (!std::is_sorted(row.begin(), row.end())) {
      ++r.unsorted_rows;
      n2e_sorted[v] = 0;
    }
    for (auto e : row) {
      if (e >= ne) ++r.out_of_bounds;
    }
  }
  for (std::size_t e = 0; e < ne; ++e) {
    auto row = edges[e];
    if (!std::is_sorted(row.begin(), row.end())) ++r.unsorted_rows;
    for (auto v : row) {
      if (v >= nv) {
        ++r.out_of_bounds;
        continue;
      }
      auto back = nodes[v];
      bool hit  = n2e_sorted[v]
                      ? std::binary_search(back.begin(), back.end(),
                                           static_cast<vertex_id_t>(e))
                      : std::find(back.begin(), back.end(), static_cast<vertex_id_t>(e)) !=
                            back.end();
      if (!hit) ++r.transpose_misses;
    }
  }
  return r;
}

}  // namespace nw::hypergraph
