// nwhy/biadjacency.hpp
//
// The bipartite representation of a hypergraph (paper Sec. III-B.1): two
// *separate but mutually indexed* CSR structures built from one biedgelist.
//
//   biadjacency<0>  — outer range over hyperedges, inner range = the
//                     hypernodes each hyperedge is incident on
//   biadjacency<1>  — outer range over hypernodes, inner range = the
//                     hyperedges each hypernode joins
//
// The bi-adjacency matrix is generally rectangular (|E| x |V|); nothing here
// assumes the two cardinalities match.  Models the range-of-ranges contract:
// outer random_access_range, inner forward_range.
#pragma once

#include <algorithm>
#include <ranges>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/bipartite_graph_base.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

// Make the Listing-3 `target(e)` helper available throughout the hypergraph
// namespace (inner-range elements are plain ids, so ADL alone cannot find it).
using nw::graph::target;

template <int idx, class... Attributes>
class biadjacency : public bipartite_graph_base {
  static_assert(idx == 0 || idx == 1, "biadjacency is indexed by partition 0 or 1");

public:
  using inner_range = typename nw::graph::adjacency<Attributes...>::inner_range;
  using const_iterator = typename nw::graph::adjacency<Attributes...>::const_iterator;

  biadjacency() : bipartite_graph_base(0, 0) {}

  /// Build from a bipartite edge list.  For idx == 0 the outer index space
  /// is the hyperedges; for idx == 1 the roles are transposed (this is how
  /// the dual hypergraph H* is materialized: biadjacency<1> of H is
  /// biadjacency<0> of H*).
  explicit biadjacency(const biedgelist<Attributes...>& el)
      : bipartite_graph_base(el.num_vertices(0), el.num_vertices(1)) {
    nw::graph::edge_list<Attributes...> flat(num_sources());
    flat.reserve(el.size());
    const auto& e_ids = el.edge_ids();
    const auto& n_ids = el.node_ids();
    for (std::size_t i = 0; i < el.size(); ++i) {
      nw::vertex_id_t s = idx == 0 ? e_ids[i] : n_ids[i];
      nw::vertex_id_t t = idx == 0 ? n_ids[i] : e_ids[i];
      push_converted(flat, el, i, s, t, std::index_sequence_for<Attributes...>{});
    }
    csr_ = nw::graph::adjacency<Attributes...>(flat, num_sources(), num_targets());
  }

  /// Adopt a pre-built CSR (the NWHYCSR2 snapshot path, see
  /// nwhy/io/csr_snapshot.hpp): no biedgelist round-trip, no per-element
  /// loop.  `csr` must have `n_sources` rows and target ids < `n_targets`
  /// (partition `1 - idx`); it may be a zero-copy mmap-backed view, in which
  /// case the caller keeps the backing storage alive.
  static biadjacency from_csr(nw::graph::adjacency<Attributes...> csr, std::size_t n_sources,
                              std::size_t n_targets) {
    NW_ASSERT(csr.num_vertices() == n_sources,
              "from_csr: CSR row count must match the declared source cardinality");
    biadjacency g;
    g.vertex_cardinality_[idx]     = n_sources;
    g.vertex_cardinality_[1 - idx] = n_targets;
    g.csr_                         = std::move(csr);
    return g;
  }

  /// Cardinality of this structure's outer index space.
  [[nodiscard]] std::size_t num_sources() const { return vertex_cardinality_[idx]; }
  /// Cardinality of the opposite index space (the inner ids).
  [[nodiscard]] std::size_t num_targets() const { return vertex_cardinality_[1 - idx]; }

  [[nodiscard]] std::size_t size() const { return num_sources(); }
  [[nodiscard]] std::size_t num_edges() const { return csr_.num_edges(); }

  [[nodiscard]] std::size_t degree(std::size_t u) const { return csr_.degree(u); }
  [[nodiscard]] std::vector<std::size_t> degrees() const { return csr_.degrees(); }

  [[nodiscard]] inner_range operator[](std::size_t u) const { return csr_[u]; }

  /// Sorted-row point query: is `t` among the targets of source `u`?
  /// Relies on the canonical invariant (rows sorted ascending) that every
  /// construction path — sort_and_unique'd edge lists, canonical snapshots —
  /// maintains.
  [[nodiscard]] bool contains(std::size_t u, nw::vertex_id_t t) const {
    auto row = csr_[u];
    auto it  = std::lower_bound(row.begin(), row.end(), t,
                                [](auto&& entry, nw::vertex_id_t val) { return target(entry) < val; });
    return it != row.end() && target(*it) == t;
  }

  [[nodiscard]] const_iterator begin() const { return csr_.begin(); }
  [[nodiscard]] const_iterator end() const { return csr_.end(); }

  /// Underlying CSR (for kernels using raw offsets).
  [[nodiscard]] const nw::graph::adjacency<Attributes...>& csr() const { return csr_; }

private:
  template <std::size_t... Is>
  static void push_converted(nw::graph::edge_list<Attributes...>& flat,
                             [[maybe_unused]] const biedgelist<Attributes...>& el,
                             [[maybe_unused]] std::size_t i, nw::vertex_id_t s,
                             nw::vertex_id_t t, std::index_sequence<Is...>) {
    flat.push_back(s, t, el.template attribute_column<Is>()[i]...);
  }

  nw::graph::adjacency<Attributes...> csr_;
};

// Range-of-ranges conformance (Sec. III-A).
static_assert(std::ranges::random_access_range<biadjacency<0>>);
static_assert(std::ranges::forward_range<std::ranges::range_reference_t<biadjacency<0>>>);
static_assert(std::ranges::random_access_range<biadjacency<1>>);

/// Free-function facade matching the paper's Listing 3 call style:
/// `num_vertices(hyperedges, 0)`.
template <int idx, class... Attributes>
std::size_t num_vertices(const biadjacency<idx, Attributes...>& g, std::size_t partition) {
  return partition == static_cast<std::size_t>(idx) ? g.num_sources() : g.num_targets();
}

}  // namespace nw::hypergraph
