// nwhy/ref/serial_kcore.hpp
//
// Serial reference core decompositions.
//
//   * kcore_numbers — textbook O(n²) peel on a plain adjacency list: at
//     every step remove a vertex of minimum remaining degree; its core
//     number is the running maximum of the degrees seen at removal time.
//     Oracle for nw::graph::kcore_decomposition (the s-core metric).
//
//   * kl_core — hypergraph (k, l)-core fixpoint by whole-round
//     recomputation: each round recomputes every surviving hyperedge's
//     live size and every surviving hypernode's live degree from scratch
//     and peels everything below threshold at once.  The (k, l)-core is
//     the *greatest* fixpoint, which is unique and independent of peeling
//     order, so this must agree exactly with the incremental
//     alternating-peel implementation in nwhy/algorithms/hyper_kcore.hpp.
#pragma once

#include <algorithm>
#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

/// Core number of every vertex of a plain undirected adjacency list.
inline std::vector<std::size_t> kcore_numbers(const adjacency_list& g) {
  const std::size_t        n = g.size();
  std::vector<std::size_t> degree(n), core(n, 0);
  std::vector<char>        removed(n, 0);
  for (std::size_t v = 0; v < n; ++v) degree[v] = g[v].size();

  std::size_t running_max = 0;
  for (std::size_t step = 0; step < n; ++step) {
    // Minimum remaining degree (smallest id breaks ties — irrelevant to
    // the result, deterministic for debugging).
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v] && (best == n || degree[v] < degree[best])) best = v;
    }
    running_max = std::max(running_max, degree[best]);
    core[best]  = running_max;
    removed[best] = 1;
    for (vertex_id_t u : g[best]) {
      if (!removed[u]) --degree[u];
    }
  }
  return core;
}

/// Survivors of the (k, l)-core of a hypergraph: every surviving hypernode
/// belongs to >= k surviving hyperedges, every surviving hyperedge keeps
/// >= l surviving members.
struct kl_core_ref_result {
  std::vector<char> edge_alive;
  std::vector<char> node_alive;
};

inline kl_core_ref_result kl_core(const incidence& h, std::size_t k, std::size_t l) {
  kl_core_ref_result r;
  r.edge_alive.assign(h.num_edges(), 1);
  r.node_alive.assign(h.num_nodes(), 1);

  bool changed = true;
  while (changed) {
    changed = false;
    // Recompute every live hyperedge size from scratch, peel below l.
    for (std::size_t e = 0; e < h.num_edges(); ++e) {
      if (!r.edge_alive[e]) continue;
      std::size_t live = 0;
      for (vertex_id_t v : h.edges[e]) live += r.node_alive[v] != 0;
      if (live < l) {
        r.edge_alive[e] = 0;
        changed         = true;
      }
    }
    // Recompute every live hypernode degree from scratch, peel below k.
    for (std::size_t v = 0; v < h.num_nodes(); ++v) {
      if (!r.node_alive[v]) continue;
      std::size_t live = 0;
      for (vertex_id_t e : h.nodes[v]) live += r.edge_alive[e] != 0;
      if (live < k) {
        r.node_alive[v] = 0;
        changed         = true;
      }
    }
  }
  return r;
}

}  // namespace nw::hypergraph::ref
