// nwhy/ref/serial_motif.hpp
//
// Serial reference wedge/triad/butterfly census — the ground truth of the
// per-wedge parallel engine (nwhy/algorithms/motif.hpp).  Everything comes
// from the definitions on the plain incidence structure: wedges and triads
// from the center-major triple loop, butterflies from the *pair-major*
// formula Σ_{e<f} C(|e ∩ f|, 2) — deliberately a different decomposition
// than the engine's per-wedge excess sum, so the two sides cross-check the
// combinatorics, not just the loop transcription.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwhy/ref/serial_slinegraph.hpp"  // overlap_size
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

/// The serial census; field meanings match nwhy/algorithms/motif.hpp.
struct motif_census {
  std::uint64_t wedges      = 0;
  std::uint64_t triads      = 0;
  std::uint64_t open_wedges = 0;
  std::uint64_t butterflies = 0;
};

/// Census by definition.  Center-major loops for wedges/triads (a wedge
/// per shared hypernode, closed when the pair shares >= 2), pair-major
/// loop for butterflies.
inline motif_census motif_counts(const incidence& h) {
  motif_census out;
  for (const auto& incident : h.nodes) {
    for (std::size_t i = 0; i < incident.size(); ++i) {
      for (std::size_t j = i + 1; j < incident.size(); ++j) {
        ++out.wedges;
        if (overlap_size(h.edges[incident[i]], h.edges[incident[j]]) >= 2) ++out.triads;
      }
    }
  }
  out.open_wedges = out.wedges - out.triads;
  const std::size_t ne = h.num_edges();
  for (std::size_t e = 0; e < ne; ++e) {
    for (std::size_t f = e + 1; f < ne; ++f) {
      std::uint64_t c = overlap_size(h.edges[e], h.edges[f]);
      out.butterflies += c * (c - 1) / 2;
    }
  }
  return out;
}

}  // namespace nw::hypergraph::ref
