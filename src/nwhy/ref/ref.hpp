// nwhy/ref/ref.hpp — umbrella header of the serial reference oracles.
//
// Everything under nwhy/ref/ is intentionally slow and simple: plain
// vectors, explicit queues, all-pairs loops, zero atomics, zero thread-pool
// dependence.  The differential harness (tests/test_differential.cpp)
// pits every parallel algorithm family — at multiple pool sizes and across
// representations — against these oracles; a disagreement prints the
// generator seed for one-command replay (NWHY_TEST_SEED=<n>).
#pragma once

#include "nwhy/ref/incidence.hpp"
#include "nwhy/ref/serial_betweenness.hpp"
#include "nwhy/ref/serial_kcore.hpp"
#include "nwhy/ref/serial_motif.hpp"
#include "nwhy/ref/serial_slinegraph.hpp"
#include "nwhy/ref/serial_toplex.hpp"
#include "nwhy/ref/serial_traversal.hpp"
