// nwhy/ref/serial_slinegraph.hpp
//
// Serial reference s-line-graph construction and s-metrics.  The edge set
// comes from the *definition* — test every hyperedge pair with a sorted
// set intersection, no indirection heuristics, no hashmaps, no work queues
// — so all seven parallel construction algorithms plus the implicit
// traversals have a common, obviously-correct target.  The s-metric
// oracles (distance, components, closeness, harmonic closeness,
// eccentricity) mirror the aggregation order of the parallel
// implementations exactly: the BFS distance arrays are deterministic, and
// summing the same doubles in the same index order makes the differential
// comparison bit-exact, not within-epsilon.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwhy/ref/serial_traversal.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

using line_edge_set = std::vector<std::pair<vertex_id_t, vertex_id_t>>;

/// |a ∩ b| of two sorted unique ranges (full count, no early exit — the
/// oracle prefers the straightforward spelling over the optimized one).
inline std::size_t overlap_size(const std::vector<vertex_id_t>& a,
                                const std::vector<vertex_id_t>& b) {
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// The s-line-graph edge set by definition: {e_i, e_j} with i < j whenever
/// |e_i ∩ e_j| >= s.  Sorted ascending — the canonical comparison form of
/// the differential harness.
inline line_edge_set s_line_edges(const incidence& h, std::size_t s) {
  line_edge_set     out;
  const std::size_t ne = h.num_edges();
  for (std::size_t i = 0; i < ne; ++i) {
    if (h.edges[i].size() < s) continue;
    for (std::size_t j = i + 1; j < ne; ++j) {
      if (h.edges[j].size() < s) continue;
      if (overlap_size(h.edges[i], h.edges[j]) >= s) {
        out.push_back({static_cast<vertex_id_t>(i), static_cast<vertex_id_t>(j)});
      }
    }
  }
  // The double loop already emits in sorted order; keep the sort as a
  // belt-and-braces guarantee of the canonical form.
  std::sort(out.begin(), out.end());
  return out;
}

/// Expand a unique {lo, hi} pair set into a symmetric sorted adjacency list
/// over `n` vertices (isolated vertices keep empty lists).
inline adjacency_list pairs_to_adjacency(const line_edge_set& pairs, std::size_t n) {
  adjacency_list adj(n);
  for (auto [a, b] : pairs) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& l : adj) std::sort(l.begin(), l.end());
  return adj;
}

/// Convenience: the serial s-line graph of `h` as an adjacency list.
inline adjacency_list s_line_adjacency(const incidence& h, std::size_t s) {
  return pairs_to_adjacency(s_line_edges(h, s), h.num_edges());
}

/// s-connected-component labels: flood fill on the serial line graph, with
/// inactive hyperedges (|e| < s) mapped to null_vertex — matching
/// s_linegraph::s_connected_components and the implicit engine.
inline std::vector<vertex_id_t> s_components(const incidence& h, std::size_t s) {
  auto labels = graph_cc_labels(s_line_adjacency(h, s));
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    if (h.edges[e].size() < s) labels[e] = null_vertex<>;
  }
  return labels;
}

/// s-distance between two hyperedges; nullopt when unreachable or either
/// endpoint inactive (the s_distance_implicit convention; the materialized
/// s_linegraph::s_distance agrees because inactive vertices are isolated).
inline std::optional<std::size_t> s_distance(const incidence& h, std::size_t s, vertex_id_t src,
                                             vertex_id_t dst) {
  if (src >= h.num_edges() || dst >= h.num_edges()) return std::nullopt;
  if (h.edges[src].size() < s || h.edges[dst].size() < s) return std::nullopt;
  auto dist = graph_bfs_levels(s_line_adjacency(h, s), src);
  if (dist[dst] == null_vertex<>) return std::nullopt;
  return static_cast<std::size_t>(dist[dst]);
}

// --- distance-aggregate centralities on a plain adjacency list ------------
//
// These replicate nw::graph::{closeness,harmonic_closeness,eccentricity}
// serially: one BFS per source, then the identical aggregation expression
// over the distance array in ascending index order.  Because the distance
// arrays are integer-exact and the floating-point sums associate in the
// same order, the parallel results must match bit for bit.

inline std::vector<double> closeness(const adjacency_list& g) {
  std::vector<double> result(g.size(), 0.0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    auto        dist      = graph_bfs_levels(g, static_cast<vertex_id_t>(v));
    double      total     = 0.0;
    std::size_t reachable = 0;
    for (auto d : dist) {
      if (d != null_vertex<> && d != 0) {
        total += static_cast<double>(d);
        ++reachable;
      }
    }
    result[v] = total > 0 ? static_cast<double>(reachable) / total : 0.0;
  }
  return result;
}

inline std::vector<double> harmonic_closeness(const adjacency_list& g) {
  std::vector<double> result(g.size(), 0.0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    auto   dist  = graph_bfs_levels(g, static_cast<vertex_id_t>(v));
    double total = 0.0;
    for (auto d : dist) {
      if (d != null_vertex<> && d != 0) total += 1.0 / static_cast<double>(d);
    }
    result[v] = total;
  }
  return result;
}

inline std::vector<vertex_id_t> eccentricity(const adjacency_list& g) {
  std::vector<vertex_id_t> result(g.size(), 0);
  for (std::size_t v = 0; v < g.size(); ++v) {
    auto        dist = graph_bfs_levels(g, static_cast<vertex_id_t>(v));
    vertex_id_t ecc  = 0;
    for (auto d : dist) {
      if (d != null_vertex<>) ecc = std::max(ecc, d);
    }
    result[v] = ecc;
  }
  return result;
}

}  // namespace nw::hypergraph::ref
