// nwhy/ref/serial_toplex.hpp
//
// Serial reference toplex computation: an all-pairs subset test applying
// the dominance rule of the parallel implementation verbatim.  Hyperedge e
// is *dominated* iff there exists f != e with e ⊆ f and (|f| > |e|, or
// |f| == |e| and f has the smaller id) — the symmetric tie-break that
// keeps exactly one representative of each family of duplicate hyperedges.
// O(nE² · d): fine at oracle scale, obviously correct at any scale.
#pragma once

#include <algorithm>
#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

/// Ids of all toplexes (maximal hyperedges) of `h`, ascending.
inline std::vector<vertex_id_t> toplexes(const incidence& h) {
  const std::size_t        ne = h.num_edges();
  std::vector<vertex_id_t> result;
  for (std::size_t i = 0; i < ne; ++i) {
    const auto& ei        = h.edges[i];
    bool        dominated = false;
    for (std::size_t j = 0; j < ne && !dominated; ++j) {
      if (j == i) continue;
      const auto& ej = h.edges[j];
      const bool  wins_tie =
          ej.size() > ei.size() || (ej.size() == ei.size() && j < i);
      if (!wins_tie) continue;
      // e_i ⊆ e_j on sorted unique member lists (an empty e_i is a subset
      // of everything, including another empty hyperedge).
      if (std::includes(ej.begin(), ej.end(), ei.begin(), ei.end())) dominated = true;
    }
    if (!dominated) result.push_back(static_cast<vertex_id_t>(i));
  }
  return result;
}

}  // namespace nw::hypergraph::ref
