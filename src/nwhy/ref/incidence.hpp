// nwhy/ref/incidence.hpp
//
// The input format of the serial reference oracles (nwhy/ref/): a plain
// vector-of-sorted-vectors incidence structure with *no* dependence on the
// CSR containers or the parallel runtime.  The oracles are the ground truth
// of the differential test harness (tests/test_differential.cpp); keeping
// them on std-only data structures makes them auditable in isolation — a
// bug would have to be present in both a trivial serial loop *and* the
// parallel kernel, in exactly the same way, to slip through.
#pragma once

#include <algorithm>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

/// Bidirectional incidence of a hypergraph as plain nested vectors.
/// `edges[e]` holds the sorted unique hypernode ids of hyperedge e;
/// `nodes[v]` holds the sorted unique hyperedge ids incident on v.
struct incidence {
  std::vector<std::vector<vertex_id_t>> edges;
  std::vector<std::vector<vertex_id_t>> nodes;

  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes.size(); }

  /// Hyperedge sizes (|e| per edge) — the activity criterion of every
  /// s-metric (an edge with fewer than s members cannot be s-adjacent).
  [[nodiscard]] std::vector<std::size_t> edge_sizes() const {
    std::vector<std::size_t> d(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) d[e] = edges[e].size();
    return d;
  }
};

/// Build the plain incidence structure from a bipartite edge list.
/// Duplicate incidences collapse; out-of-order input is fine (each list is
/// sorted afterwards), so the oracle sees the same canonical form the
/// NWHypergraph facade builds.
inline incidence from_biedgelist(const biedgelist<>& el) {
  incidence inc;
  inc.edges.resize(el.num_vertices(0));
  inc.nodes.resize(el.num_vertices(1));
  const auto& e_ids = el.edge_ids();
  const auto& n_ids = el.node_ids();
  for (std::size_t i = 0; i < el.size(); ++i) {
    inc.edges[e_ids[i]].push_back(n_ids[i]);
    inc.nodes[n_ids[i]].push_back(e_ids[i]);
  }
  auto canonicalize = [](std::vector<std::vector<vertex_id_t>>& lists) {
    for (auto& l : lists) {
      std::sort(l.begin(), l.end());
      l.erase(std::unique(l.begin(), l.end()), l.end());
    }
  };
  canonicalize(inc.edges);
  canonicalize(inc.nodes);
  return inc;
}

/// Plain adjacency list (graph counterpart of `incidence`): used by the
/// oracles that operate on a line graph or any other ordinary graph.
using adjacency_list = std::vector<std::vector<vertex_id_t>>;

}  // namespace nw::hypergraph::ref
