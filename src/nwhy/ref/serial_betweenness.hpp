// nwhy/ref/serial_betweenness.hpp
//
// Serial reference Brandes betweenness on a plain adjacency list — the
// ground truth of the batched frontier engine
// (nwhy/algorithms/s_betweenness.hpp).  Textbook formulation: one BFS per
// source with `order` doubling as the queue, path counts pushed forward,
// dependencies pulled backward over the reversed order.  The differential
// comparison is bit-exact, not within-epsilon, because the two sides agree
// on every floating-point accumulation order: sigma values are integer
// path counts (exact in doubles), each delta[w] sums over w's neighbor
// list in ascending adjacency order, and the per-source dependencies fold
// into the scores in source order.
#pragma once

#include <cstdint>
#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

namespace detail {

/// One source's dependency accumulation into `scores` (textbook Brandes).
inline void brandes_source(const adjacency_list& g, vertex_id_t s, std::vector<double>& scores) {
  const std::size_t         n = g.size();
  std::vector<std::int64_t> dist(n, -1);
  std::vector<double>       sigma(n, 0.0);
  std::vector<double>       delta(n, 0.0);
  std::vector<vertex_id_t>  order;

  dist[s]  = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  for (std::size_t head = 0; head < order.size(); ++head) {
    vertex_id_t u = order[head];
    for (vertex_id_t v : g[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  for (std::size_t k = order.size(); k-- > 0;) {
    vertex_id_t w = order[k];
    for (vertex_id_t v : g[w]) {
      if (dist[v] == dist[w] + 1 && sigma[v] > 0) {
        delta[w] += sigma[w] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (w != s) scores[w] += delta[w];
  }
}

}  // namespace detail

/// Raw (unhalved, unnormalized) accumulation over an explicit source list,
/// folded in source order — the comparison target of the engine's
/// betweenness_over_sources.
inline std::vector<double> betweenness_over_sources(const adjacency_list& g,
                                                    const std::vector<vertex_id_t>& sources) {
  std::vector<double> scores(g.size(), 0.0);
  for (vertex_id_t s : sources) detail::brandes_source(g, s, scores);
  return scores;
}

/// Exact betweenness: every vertex a source, halved for the undirected
/// double count, optionally normalized by 2/((n-1)(n-2)) — mirroring the
/// engine's (and nw::graph's) conventions operation for operation.
inline std::vector<double> betweenness(const adjacency_list& g, bool normalized = true) {
  const std::size_t        n = g.size();
  std::vector<vertex_id_t> sources(n);
  for (std::size_t v = 0; v < n; ++v) sources[v] = static_cast<vertex_id_t>(v);
  auto scores = betweenness_over_sources(g, sources);
  for (auto& x : scores) x /= 2.0;
  if (normalized && n > 2) {
    double scale = 2.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
    for (auto& x : scores) x *= scale;
  }
  return scores;
}

/// Sampled estimator over a caller-provided source list (the test replays
/// the engine's seed-driven list), scaled by n / samples / 2.
inline std::vector<double> betweenness_sampled(const adjacency_list& g,
                                               const std::vector<vertex_id_t>& sources) {
  auto scores = betweenness_over_sources(g, sources);
  if (sources.empty()) return scores;
  double scale = static_cast<double>(g.size()) / static_cast<double>(sources.size()) / 2.0;
  for (auto& x : scores) x *= scale;
  return scores;
}

}  // namespace nw::hypergraph::ref
