// nwhy/ref/serial_traversal.hpp
//
// Serial reference BFS and connected components for the differential test
// harness.  No atomics, no thread pool, no frontier engine — one explicit
// FIFO queue each, written to be correct by inspection.  The parallel
// engines under test (hyper_bfs_* / adjoin_bfs / hyper_cc / adjoin_cc /
// the nwgraph BFS+CC family) must reproduce these results bit-exactly
// (distances) or up to label renaming (components).
#pragma once

#include <vector>

#include "nwhy/ref/incidence.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph::ref {

/// BFS level arrays on the bipartite representation: hyperedges at even
/// depths, hypernodes at odd depths, unreached entries null_vertex —
/// exactly the dist_edge / dist_node convention of hyper_bfs_result.
struct bfs_levels_result {
  std::vector<vertex_id_t> dist_edge;
  std::vector<vertex_id_t> dist_node;
};

inline bfs_levels_result bfs_levels(const incidence& h, vertex_id_t source_edge) {
  bfs_levels_result r;
  r.dist_edge.assign(h.num_edges(), null_vertex<>);
  r.dist_node.assign(h.num_nodes(), null_vertex<>);
  if (h.num_edges() == 0) return r;

  r.dist_edge[source_edge] = 0;
  std::vector<vertex_id_t> frontier{source_edge};
  std::vector<vertex_id_t> next;
  bool        edge_side = true;  // class of the ids currently in `frontier`
  vertex_id_t level     = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vertex_id_t u : frontier) {
      const auto& nbrs = edge_side ? h.edges[u] : h.nodes[u];
      auto&       dist = edge_side ? r.dist_node : r.dist_edge;
      for (vertex_id_t v : nbrs) {
        if (dist[v] == null_vertex<>) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    edge_side = !edge_side;
  }
  return r;
}

/// Connected-component labels on the bipartite representation: a hyperedge
/// and a hypernode share a label iff they are connected by an alternating
/// incidence walk.  Label values follow the hyper_cc convention (flood
/// label = seed hyperedge id; a hypernode in no hyperedge keeps the unique
/// label nE + v), but the differential harness only compares partitions.
struct cc_labels_result {
  std::vector<vertex_id_t> labels_edge;
  std::vector<vertex_id_t> labels_node;
};

inline cc_labels_result cc_labels(const incidence& h) {
  const std::size_t ne = h.num_edges();
  const std::size_t nv = h.num_nodes();
  cc_labels_result  r;
  r.labels_edge.assign(ne, null_vertex<>);
  r.labels_node.assign(nv, null_vertex<>);

  std::vector<vertex_id_t> stack;
  for (std::size_t seed = 0; seed < ne; ++seed) {
    if (r.labels_edge[seed] != null_vertex<>) continue;
    const vertex_id_t label = static_cast<vertex_id_t>(seed);
    r.labels_edge[seed]     = label;
    stack.assign(1, static_cast<vertex_id_t>(seed));
    // Shared id space for the flood: edge e is e, node v is ne + v.
    while (!stack.empty()) {
      vertex_id_t id = stack.back();
      stack.pop_back();
      if (id < ne) {
        for (vertex_id_t v : h.edges[id]) {
          if (r.labels_node[v] == null_vertex<>) {
            r.labels_node[v] = label;
            stack.push_back(static_cast<vertex_id_t>(ne + v));
          }
        }
      } else {
        for (vertex_id_t e : h.nodes[id - ne]) {
          if (r.labels_edge[e] == null_vertex<>) {
            r.labels_edge[e] = label;
            stack.push_back(e);
          }
        }
      }
    }
  }
  // Hypernodes in no hyperedge: unique labels above the hyperedge range.
  for (std::size_t v = 0; v < nv; ++v) {
    if (r.labels_node[v] == null_vertex<>) {
      r.labels_node[v] = static_cast<vertex_id_t>(ne + v);
    }
  }
  return r;
}

/// Serial BFS hop distances on a plain adjacency list (oracle for the
/// nwgraph BFS engines and the s-line-graph distance metrics).
inline std::vector<vertex_id_t> graph_bfs_levels(const adjacency_list& g, vertex_id_t source) {
  std::vector<vertex_id_t> dist(g.size(), null_vertex<>);
  if (source >= g.size()) return dist;
  std::vector<vertex_id_t> queue{source};
  dist[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    vertex_id_t u = queue[head];
    for (vertex_id_t v : g[u]) {
      if (dist[v] == null_vertex<>) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// Serial component labels on a plain adjacency list (label = smallest
/// vertex id in the component).
inline std::vector<vertex_id_t> graph_cc_labels(const adjacency_list& g) {
  std::vector<vertex_id_t> labels(g.size(), null_vertex<>);
  std::vector<vertex_id_t> stack;
  for (std::size_t s = 0; s < g.size(); ++s) {
    if (labels[s] != null_vertex<>) continue;
    labels[s] = static_cast<vertex_id_t>(s);
    stack.assign(1, static_cast<vertex_id_t>(s));
    while (!stack.empty()) {
      vertex_id_t u = stack.back();
      stack.pop_back();
      for (vertex_id_t v : g[u]) {
        if (labels[v] == null_vertex<>) {
          labels[v] = static_cast<vertex_id_t>(s);
          stack.push_back(v);
        }
      }
    }
  }
  return labels;
}

}  // namespace nw::hypergraph::ref
