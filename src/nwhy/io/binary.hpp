// nwhy/io/binary.hpp
//
// Binary snapshot format for bipartite edge lists, so the benchmark suite
// can cache generated datasets between runs.  Layout (little-endian):
//   magic "NWHYBIN1" | u64 n0 | u64 n1 | u64 m | m x u32 edge ids | m x u32 node ids
#pragma once

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

inline constexpr char binary_magic[8] = {'N', 'W', 'H', 'Y', 'B', 'I', 'N', '1'};

inline void write_binary(std::ostream& out, const biedgelist<>& el) {
  out.write(binary_magic, sizeof(binary_magic));
  std::uint64_t header[3] = {el.num_vertices(0), el.num_vertices(1), el.size()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(el.edge_ids().data()),
            static_cast<std::streamsize>(el.size() * sizeof(vertex_id_t)));
  out.write(reinterpret_cast<const char*>(el.node_ids().data()),
            static_cast<std::streamsize>(el.size() * sizeof(vertex_id_t)));
}

inline void write_binary(const std::string& path, const biedgelist<>& el) {
  std::ofstream out(path, std::ios::binary);
  NW_ASSERT(out.is_open(), "cannot open binary output file");
  write_binary(out, el);
}

inline biedgelist<> read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  NW_ASSERT(in.good() && std::memcmp(magic, binary_magic, sizeof(magic)) == 0,
            "not an NWHy binary snapshot");
  std::uint64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  NW_ASSERT(in.good(), "truncated binary snapshot header");
  const std::size_t        m = header[2];
  std::vector<vertex_id_t> edges(m), nodes(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(vertex_id_t)));
  in.read(reinterpret_cast<char*>(nodes.data()),
          static_cast<std::streamsize>(m * sizeof(vertex_id_t)));
  NW_ASSERT(in.good(), "truncated binary snapshot body");
  biedgelist<> el(header[0], header[1]);
  el.reserve(m);
  for (std::size_t i = 0; i < m; ++i) el.push_back(edges[i], nodes[i]);
  return el;
}

inline biedgelist<> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  NW_ASSERT(in.is_open(), "cannot open binary snapshot");
  return read_binary(in);
}

}  // namespace nw::hypergraph
