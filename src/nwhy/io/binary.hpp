// nwhy/io/binary.hpp
//
// Legacy binary snapshot format NWHYBIN1 for bipartite edge lists, so the
// benchmark suite can cache generated datasets between runs.  Layout
// (little-endian):
//   magic "NWHYBIN1" | u64 n0 | u64 n1 | u64 m | m x u32 edge ids | m x u32 node ids
//
// NWHYBIN1 stores only the raw edge list, so even a "binary" load pays the
// full parallel CSR construction afterwards.  New code should prefer the
// NWHYCSR2 snapshot format (nwhy/io/csr_snapshot.hpp), which serializes
// the built CSRs and loads zero-copy via mmap; see docs/IO_FORMATS.md for
// the migration note.  NWHYBIN1 stays readable/writable indefinitely.
//
// Malformed input throws nw::hypergraph::io_error (byte-offset context);
// nothing here aborts the process.
#pragma once

#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

inline constexpr char binary_magic[8] = {'N', 'W', 'H', 'Y', 'B', 'I', 'N', '1'};

/// Serialize to a stream.  Every write is checked: a failed write (ENOSPC,
/// closed pipe, ...) throws io_error instead of silently leaving a
/// truncated snapshot behind.  `origin` labels the error (file path for the
/// path overload, empty for in-memory streams).
inline void write_binary(std::ostream& out, const biedgelist<>& el,
                         const std::string& origin = {}) {
  auto checked_write = [&](const char* data, std::streamsize n) {
    out.write(data, n);
    if (!out.good()) {
      throw io_error("write failure while emitting NWHYBIN1 snapshot", origin);
    }
  };
  checked_write(binary_magic, sizeof(binary_magic));
  std::uint64_t header[3] = {el.num_vertices(0), el.num_vertices(1), el.size()};
  checked_write(reinterpret_cast<const char*>(header), sizeof(header));
  checked_write(reinterpret_cast<const char*>(el.edge_ids().data()),
                static_cast<std::streamsize>(el.size() * sizeof(vertex_id_t)));
  checked_write(reinterpret_cast<const char*>(el.node_ids().data()),
                static_cast<std::streamsize>(el.size() * sizeof(vertex_id_t)));
}

/// Path overload: on any write or flush failure, the partial output file is
/// removed (regular files only) and io_error propagates.
inline void write_binary(const std::string& path, const biedgelist<>& el) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) throw io_error("cannot open binary output file", path);
  try {
    write_binary(out, el, path);
    out.flush();
    if (!out.good()) throw io_error("flush failure while emitting NWHYBIN1 snapshot", path);
  } catch (...) {
    out.close();
    io_detail::remove_partial_output(path);
    throw;
  }
}

inline biedgelist<> read_binary(std::istream& in, const std::string& origin = {}) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, binary_magic, sizeof(magic)) != 0) {
    throw io_error("not an NWHYBIN1 snapshot (bad magic)", origin, 0, 0);
  }
  std::uint64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in.good()) throw io_error("truncated NWHYBIN1 header", origin, 0, sizeof(magic));
  const std::uint64_t n0 = header[0], n1 = header[1], m = header[2];
  const std::uint64_t id_limit = std::numeric_limits<vertex_id_t>::max();  // sentinel reserved
  if (n0 > id_limit || n1 > id_limit) {
    throw io_error("NWHYBIN1 cardinality overflows the 32-bit id space", origin, 0,
                   sizeof(magic));
  }
  std::vector<vertex_id_t> edges(m), nodes(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(vertex_id_t)));
  in.read(reinterpret_cast<char*>(nodes.data()),
          static_cast<std::streamsize>(m * sizeof(vertex_id_t)));
  if (!in.good()) {
    throw io_error("truncated NWHYBIN1 body (declares " + std::to_string(m) + " incidences)",
                   origin, 0, sizeof(magic) + sizeof(header));
  }
  biedgelist<> el(n0, n1);
  el.reserve(m);
  for (std::size_t i = 0; i < m; ++i) el.push_back(edges[i], nodes[i]);
  return el;
}

inline biedgelist<> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw io_error("cannot open binary snapshot", path);
  return read_binary(in, path);
}

}  // namespace nw::hypergraph
