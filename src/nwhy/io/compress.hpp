// nwhy/io/compress.hpp
//
// Compressed NWHYCSR2 target sections: a StreamVByte-style block codec for
// sorted CSR target rows, an optional duplicate-row dictionary, and the
// `compressed_adjacency` view that lets the traversal engines run directly
// on a compressed snapshot with bounded memory.
//
// Codec (one payload per compressed targets section):
//
//   * Values are delta-encoded against the previous value in *wrapping*
//     u32 arithmetic, then zigzag-mapped (`zz = (d << 1) ^ (s32(d) >> 31)`).
//     The wrapping delta is invertible mod 2^32, so any u32 sequence —
//     sorted or not — round-trips exactly in at most 4 bytes per value,
//     and sorted rows (the canonical invariant) produce small deltas.
//   * Values are grouped 4 per control byte: lane i's 2-bit code at bits
//     [2i, 2i+1] is its encoded byte count minus one (StreamVByte layout).
//     Control bytes and data bytes live in two separate streams so the
//     decoder can load 16 data bytes and shuffle them into 4 lanes with a
//     single table-driven pshufb/tbl — no per-byte branches.
//   * The value stream is cut into independent fixed-size blocks
//     (`block_size` values, default 4096): the delta predecessor resets to
//     0 at every block start, so any block decodes without its
//     predecessors.  Per block the payload stores {u64 data_offset,
//     u32 min, u32 max}: the offset gives random access, min/max let point
//     queries skip blocks that cannot contain the probe.
//
// Payload byte layout (offsets relative to the section payload start):
//
//   offset size            field
//   ------ ----            ---------------------------------------------
//        0    4            u32 block_size   (> 0, multiple of 4, <= 2^20)
//        4    4            u32 reserved (0)
//        8    8            u64 num_values
//       16    8            u64 data_bytes
//       24    8            u64 reserved (0)
//       32    16*nb        block metadata: {u64 data_offset, u32 min, u32 max}
//        +    ceil(nv/4)   control stream (block b's controls start at byte
//                          b * block_size / 4)
//        +    data_bytes   data stream
//        +    16           zero padding (SIMD decoders load 16 bytes at a
//                          time; the tail load of the last group must stay
//                          inside the payload)
//
// where nb = ceil(num_values / block_size).  The encoder is deterministic:
// the payload is a pure function of (values, block_size) — single-threaded,
// no iteration-order dependence — so identical inputs produce bit-identical
// sections (and section checksums).
//
// Every geometric property above is validated when a payload is adopted
// (`compressed_targets` constructor), including one control-stream scan
// proving each block's summed lane widths equal its data slice — after
// that, no decode can read outside the payload.  Decoded values are
// additionally bound-checked against the target partition at decode time.
// The per-block min/max steer `contains()` block skipping and must be
// exact: every block a point query decodes has its metadata verified
// against the decoded values (a widened forgery throws io_error), while
// a pair narrowed around a block that is then skipped is only caught by
// the section checksum (mandatory on the streamed reader, opt-in on the
// mmap path) — on a checksum-skipping load it can suppress a match, i.e.
// change a query result, but never memory safety.  A crafted payload
// therefore surfaces as io_error at load or decode (or, at worst, a
// suppressed `contains` match on an unverified mmap load), never as UB.
//
// SIMD: the 4-lane shuffle decoder compiles under SSSE3 (x86) or NEON
// (aarch64) when available; `-DNWHY_SIMD=0` (CMake option NWHY_SIMD=OFF)
// forces it out at compile time and the env knob `NWHY_SIMD=0` disables it
// at run time.  The scalar fallback is bit-identical by construction and
// both entry points stay callable so tests can compare them directly.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

// Compile-time SIMD selection: NWHY_SIMD may be forced to 0 (or 1) from the
// build system; otherwise it follows the target ISA.  NWHY_SIMD_SSSE3 /
// NWHY_SIMD_NEON are the internal "an actual kernel exists" macros — asking
// for NWHY_SIMD=1 on an ISA without a kernel quietly degrades to scalar.
#if !defined(NWHY_SIMD)
#define NWHY_SIMD 1
#endif
#if NWHY_SIMD && defined(__SSSE3__)
#define NWHY_SIMD_SSSE3 1
#include <tmmintrin.h>
#elif NWHY_SIMD && defined(__ARM_NEON) && defined(__aarch64__)
#define NWHY_SIMD_NEON 1
#include <arm_neon.h>
#endif
#if defined(NWHY_SIMD_SSSE3) || defined(NWHY_SIMD_NEON)
#define NWHY_SIMD_DECODE 1
#else
#define NWHY_SIMD_DECODE 0
#endif

namespace nw::hypergraph {

/// Options for the compressing `write_csr_snapshot` overload.
struct csr_compress_options {
  /// Emit the two bi-adjacency target sections in the StreamVByte block
  /// format (kinds 7/8) instead of raw u32 arrays (kinds 2/4).
  bool compress_targets = true;
  /// Store each distinct E2N row once: duplicate hyperedges (identical
  /// sorted rows) become dictionary references (kinds 9/10).  Only emitted
  /// when the input actually contains duplicates.
  bool dedup_rows = true;
  /// Values per codec block.  Must be a positive multiple of 4; bounded at
  /// 2^20 so per-block scratch stays cache-sized.
  std::uint32_t block_size = 4096;
};

namespace svb {

inline constexpr std::uint32_t default_block_size = 4096;
inline constexpr std::uint32_t max_block_size     = 1u << 20;
inline constexpr std::size_t   payload_header_bytes = 32;
inline constexpr std::size_t   block_meta_bytes     = 16;
inline constexpr std::size_t   payload_pad_bytes    = 16;

/// Runtime kill switch for the SIMD decoder (`NWHY_SIMD=0`), read once.
inline bool simd_runtime_enabled() {
  static const bool on = nw::util::env_u64_strict("NWHY_SIMD", 1, 0, 1) != 0;
  return on;
}

/// True when block decodes will actually use the SIMD kernel.
inline bool simd_active() {
#if NWHY_SIMD_DECODE
  return simd_runtime_enabled();
#else
  return false;
#endif
}

/// Wrapping-u32 zigzag of a delta: invertible mod 2^32, so even a
/// "backwards" delta (unsorted row, crafted input) fits 4 encoded bytes.
inline constexpr std::uint32_t zigzag(std::uint32_t delta) {
  return (delta << 1) ^ static_cast<std::uint32_t>(static_cast<std::int32_t>(delta) >> 31);
}
inline constexpr std::uint32_t unzigzag(std::uint32_t zz) {
  return (zz >> 1) ^ (0u - (zz & 1u));
}

/// Per-control-byte decode tables: total data bytes consumed by the 4
/// lanes, and the 16-entry byte shuffle that expands the packed lanes to
/// 4 u32 slots (index -1 = emit zero; both pshufb and tbl treat an
/// out-of-range index as zero).
struct decode_tables {
  std::array<std::uint8_t, 256>                    len{};
  alignas(64) std::array<std::array<std::int8_t, 16>, 256> shuffle{};
};

inline constexpr decode_tables make_decode_tables() {
  decode_tables t{};
  for (unsigned c = 0; c < 256; ++c) {
    unsigned pos = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      const unsigned n = ((c >> (2 * lane)) & 3u) + 1;
      for (unsigned b = 0; b < 4; ++b) {
        t.shuffle[c][lane * 4 + b] =
            b < n ? static_cast<std::int8_t>(pos + b) : static_cast<std::int8_t>(-1);
      }
      pos += n;
    }
    t.len[c] = static_cast<std::uint8_t>(pos);
  }
  return t;
}

inline constexpr decode_tables tables = make_decode_tables();

/// Encoded byte count of one zigzagged value (the 2-bit control code is
/// this minus one).
inline constexpr unsigned encoded_width(std::uint32_t zz) {
  return zz < 0x100u ? 1u : zz < 0x10000u ? 2u : zz < 0x1000000u ? 3u : 4u;
}

/// Decode up to 4 lanes of one group with the portable scalar kernel.
/// Returns the advanced data pointer.  `nvals` in [1, 4].
inline const unsigned char* decode_group_scalar(const unsigned char* data, unsigned ctrl,
                                                unsigned nvals, std::uint32_t& prev,
                                                nw::vertex_id_t* out) {
  for (unsigned lane = 0; lane < nvals; ++lane) {
    const unsigned n  = ((ctrl >> (2 * lane)) & 3u) + 1;
    std::uint32_t  zz = 0;
    for (unsigned b = 0; b < n; ++b) zz |= static_cast<std::uint32_t>(data[b]) << (8 * b);
    data += n;
    prev += unzigzag(zz);  // wrapping add — the inverse of the wrapping delta
    out[lane] = prev;
  }
  return data;
}

/// Encode `values` into the block payload format.  Deterministic; the
/// result is the exact section payload (including the trailing pad).
inline std::vector<unsigned char> encode(std::span<const nw::vertex_id_t> values,
                                         std::uint32_t block_size = default_block_size) {
  NW_ASSERT(block_size > 0 && block_size % 4 == 0 && block_size <= max_block_size,
            "svb::encode: block_size must be a positive multiple of 4, <= 2^20");
  const std::uint64_t nv = values.size();
  const std::uint64_t nb = (nv + block_size - 1) / block_size;
  const std::uint64_t ctrl_bytes = (nv + 3) / 4;

  // Pass 1: exact data-stream size.
  std::uint64_t data_bytes = 0;
  {
    std::uint32_t prev = 0;
    for (std::uint64_t i = 0; i < nv; ++i) {
      if (i % block_size == 0) prev = 0;
      data_bytes += encoded_width(zigzag(values[i] - prev));
      prev = values[i];
    }
  }

  const std::uint64_t meta_off = payload_header_bytes;
  const std::uint64_t ctrl_off = meta_off + nb * block_meta_bytes;
  const std::uint64_t data_off = ctrl_off + ctrl_bytes;
  std::vector<unsigned char> payload(data_off + data_bytes + payload_pad_bytes, 0);

  auto put_u32 = [&](std::uint64_t at, std::uint32_t v) { std::memcpy(&payload[at], &v, 4); };
  auto put_u64 = [&](std::uint64_t at, std::uint64_t v) { std::memcpy(&payload[at], &v, 8); };
  put_u32(0, block_size);
  put_u64(8, nv);
  put_u64(16, data_bytes);

  // Pass 2: emit per block.
  std::uint64_t dpos = 0;  // cursor into the data stream
  for (std::uint64_t b = 0; b < nb; ++b) {
    const std::uint64_t lo = b * block_size;
    const std::uint64_t hi = std::min<std::uint64_t>(lo + block_size, nv);
    std::uint32_t       mn = values[lo], mx = values[lo];
    put_u64(meta_off + b * block_meta_bytes, dpos);
    std::uint32_t prev = 0;
    std::uint64_t cpos = ctrl_off + b * (block_size / 4);  // block's control slice
    for (std::uint64_t i = lo; i < hi; i += 4) {
      unsigned      ctrl  = 0;
      const unsigned lanes = static_cast<unsigned>(std::min<std::uint64_t>(4, hi - i));
      for (unsigned lane = 0; lane < lanes; ++lane) {
        const std::uint32_t v  = values[i + lane];
        const std::uint32_t zz = zigzag(v - prev);
        const unsigned      n  = encoded_width(zz);
        ctrl |= (n - 1) << (2 * lane);
        for (unsigned byte = 0; byte < n; ++byte) {
          payload[data_off + dpos++] = static_cast<unsigned char>(zz >> (8 * byte));
        }
        prev = v;
        mn   = std::min(mn, v);
        mx   = std::max(mx, v);
      }
      payload[cpos++] = static_cast<unsigned char>(ctrl);
    }
    put_u32(meta_off + b * block_meta_bytes + 8, mn);
    put_u32(meta_off + b * block_meta_bytes + 12, mx);
  }
  NW_ASSERT(dpos == data_bytes, "svb::encode: width passes disagree");
  return payload;
}

}  // namespace svb

/// Read-only view over one validated compressed targets payload.  The
/// constructor proves every geometric invariant (including the
/// control-sum pass), after which block decodes cannot read outside the
/// payload span.  The view does not own the bytes — the snapshot's
/// keepalive does.
class compressed_targets {
public:
  compressed_targets() = default;

  /// Validate and adopt a payload.  `origin` / `base_offset` label
  /// io_errors with the section's position in the snapshot file.
  compressed_targets(std::span<const unsigned char> payload, const std::string& origin,
                     std::uint64_t base_offset) {
    namespace s = svb;
    auto fail = [&](const std::string& msg, std::uint64_t at) {
      throw io_error("NWHYCSR2 compressed section: " + msg, origin, 0,
                     static_cast<std::size_t>(base_offset + at));
    };
    if (payload.size() < s::payload_header_bytes + s::payload_pad_bytes) {
      fail("payload too small for the 32-byte sub-header", 0);
    }
    auto get_u32 = [&](std::uint64_t at) {
      std::uint32_t v;
      std::memcpy(&v, payload.data() + at, 4);
      return v;
    };
    auto get_u64 = [&](std::uint64_t at) {
      std::uint64_t v;
      std::memcpy(&v, payload.data() + at, 8);
      return v;
    };
    block_size_ = get_u32(0);
    num_values_ = get_u64(8);
    data_bytes_ = get_u64(16);
    if (block_size_ == 0 || block_size_ % 4 != 0 || block_size_ > s::max_block_size) {
      fail("block_size " + std::to_string(block_size_) +
               " out of range (positive multiple of 4, <= 2^20)",
           0);
    }
    // Each value costs at least 1 data byte and at most 4 — this bounds
    // num_values by the (already file-size-bounded) payload length before
    // any arithmetic that could overflow.
    if (num_values_ > data_bytes_ || data_bytes_ > payload.size()) {
      fail("num_values / data_bytes inconsistent with the payload size", 8);
    }
    num_blocks_ = num_values_ == 0 ? 0 : (num_values_ - 1) / block_size_ + 1;
    const std::uint64_t ctrl_bytes = (num_values_ + 3) / 4;
    const std::uint64_t expect = s::payload_header_bytes + num_blocks_ * s::block_meta_bytes +
                                 ctrl_bytes + data_bytes_ + s::payload_pad_bytes;
    if (payload.size() != expect) {
      fail("payload has " + std::to_string(payload.size()) + " bytes, geometry requires " +
               std::to_string(expect),
           0);
    }
    meta_ = payload.data() + s::payload_header_bytes;
    ctrl_ = meta_ + num_blocks_ * s::block_meta_bytes;
    data_ = ctrl_ + ctrl_bytes;

    // Block metadata: offsets must tile [0, data_bytes) in order, and every
    // block's control bytes must demand exactly its data slice — the pass
    // that makes "a varint overruns its block" a load error, not a decode
    // overrun.  Unused lanes of a final partial control byte must be 0
    // (determinism + no hidden bytes).
    std::uint64_t prev_off = 0;
    for (std::uint64_t b = 0; b < num_blocks_; ++b) {
      const std::uint64_t off = block_data_offset(b);
      if (b == 0 ? off != 0 : off < prev_off) {
        fail("block " + std::to_string(b) + " data offset out of order", 0);
      }
      if (off > data_bytes_) {
        fail("block " + std::to_string(b) + " data offset past the data stream", 0);
      }
      const std::uint64_t end  = b + 1 < num_blocks_ ? block_data_offset(b + 1) : data_bytes_;
      if (end < off || end > data_bytes_) {
        fail("block " + std::to_string(b) + " data slice out of bounds", 0);
      }
      const std::uint32_t vals = block_values(b);
      const unsigned char* c   = block_ctrl(b);
      std::uint64_t        need = 0;
      std::uint32_t        i    = 0;
      for (; i + 4 <= vals; i += 4) need += svb::tables.len[*c++];
      if (i < vals) {
        const unsigned ctrl = *c;
        const unsigned tail = vals - i;
        if ((ctrl >> (2 * tail)) != 0) {
          fail("block " + std::to_string(b) + " control byte sets unused lanes", 0);
        }
        for (unsigned lane = 0; lane < tail; ++lane) need += ((ctrl >> (2 * lane)) & 3u) + 1;
      }
      if (need != end - off) {
        fail("block " + std::to_string(b) + " control stream demands " + std::to_string(need) +
                 " data bytes, slice has " + std::to_string(end - off),
             0);
      }
      prev_off = off;
    }
  }

  [[nodiscard]] std::uint64_t num_values() const { return num_values_; }
  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }
  [[nodiscard]] std::uint64_t num_blocks() const { return num_blocks_; }
  [[nodiscard]] std::uint64_t data_bytes() const { return data_bytes_; }

  /// Values held by block `b` (only the last block may be partial).
  [[nodiscard]] std::uint32_t block_values(std::uint64_t b) const {
    return b + 1 < num_blocks_ || num_values_ % block_size_ == 0
               ? block_size_
               : static_cast<std::uint32_t>(num_values_ % block_size_);
  }

  /// Per-block skip metadata.  Not proven at load time (that would mean
  /// decoding everything); consumers that skip on it must verify it
  /// against the decoded values of every block they do decode (see
  /// compressed_adjacency::contains) — a forged pair can misdirect a
  /// skip, never an access.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> block_min_max(std::uint64_t b) const {
    std::uint32_t mn, mx;
    std::memcpy(&mn, meta_ + b * svb::block_meta_bytes + 8, 4);
    std::memcpy(&mx, meta_ + b * svb::block_meta_bytes + 12, 4);
    return {mn, mx};
  }

  /// Decode block `b` into `out` (must hold block_values(b) slots), with
  /// the active kernel (SIMD when compiled in and not disabled via env).
  void decode_block(std::uint64_t b, nw::vertex_id_t* out) const {
#if NWHY_SIMD_DECODE
    if (svb::simd_runtime_enabled()) {
      decode_block_simd(b, out);
      return;
    }
#endif
    decode_block_scalar(b, out);
  }

  /// Portable kernel; kept public so tests can pin scalar/SIMD identity.
  void decode_block_scalar(std::uint64_t b, nw::vertex_id_t* out) const {
    const std::uint32_t  vals = block_values(b);
    const unsigned char* c    = block_ctrl(b);
    const unsigned char* d    = data_ + block_data_offset(b);
    std::uint32_t        prev = 0;
    std::uint32_t        i    = 0;
    for (; i + 4 <= vals; i += 4) d = svb::decode_group_scalar(d, *c++, 4, prev, out + i);
    if (i < vals) svb::decode_group_scalar(d, *c, vals - i, prev, out + i);
  }

#if NWHY_SIMD_DECODE
  /// 4-lane shuffle kernel (SSSE3 pshufb / NEON tbl).  Full groups load 16
  /// data bytes each; the trailing pad bytes keep the last load inside the
  /// payload.  Bit-identical to the scalar kernel: both compute the same
  /// wrapping prefix sum of unzigzagged deltas.
  void decode_block_simd(std::uint64_t b, nw::vertex_id_t* out) const {
    const std::uint32_t  vals = block_values(b);
    const unsigned char* c    = block_ctrl(b);
    const unsigned char* d    = data_ + block_data_offset(b);
    std::uint32_t        i    = 0;
#if defined(NWHY_SIMD_SSSE3)
    __m128i prev = _mm_setzero_si128();  // lane 3 carries the running value
    const __m128i one = _mm_set1_epi32(1);
    for (; i + 4 <= vals; i += 4) {
      const unsigned ctrl = *c++;
      const __m128i  raw  = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d));
      const __m128i  shuf =
          _mm_load_si128(reinterpret_cast<const __m128i*>(svb::tables.shuffle[ctrl].data()));
      const __m128i zz = _mm_shuffle_epi8(raw, shuf);
      // unzigzag: (zz >> 1) ^ (0 - (zz & 1))
      __m128i delta = _mm_xor_si128(
          _mm_srli_epi32(zz, 1), _mm_sub_epi32(_mm_setzero_si128(), _mm_and_si128(zz, one)));
      // In-register inclusive prefix sum across the 4 lanes.
      delta = _mm_add_epi32(delta, _mm_slli_si128(delta, 4));
      delta = _mm_add_epi32(delta, _mm_slli_si128(delta, 8));
      const __m128i vout = _mm_add_epi32(delta, _mm_shuffle_epi32(prev, _MM_SHUFFLE(3, 3, 3, 3)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), vout);
      prev = vout;
      d += svb::tables.len[ctrl];
    }
    std::uint32_t carry =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_shuffle_epi32(prev, _MM_SHUFFLE(3, 3, 3, 3))));
#elif defined(NWHY_SIMD_NEON)
    std::uint32_t carry = 0;
    for (; i + 4 <= vals; i += 4) {
      const unsigned ctrl = *c++;
      const uint8x16_t raw = vld1q_u8(d);
      const uint8x16_t shuf =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(svb::tables.shuffle[ctrl].data()));
      const uint32x4_t zz = vreinterpretq_u32_u8(vqtbl1q_u8(raw, shuf));
      uint32x4_t delta = veorq_u32(
          vshrq_n_u32(zz, 1),
          vreinterpretq_u32_s32(vnegq_s32(vreinterpretq_s32_u32(vandq_u32(zz, vdupq_n_u32(1))))));
      const uint32x4_t zero = vdupq_n_u32(0);
      delta = vaddq_u32(delta, vextq_u32(zero, delta, 3));
      delta = vaddq_u32(delta, vextq_u32(zero, delta, 2));
      const uint32x4_t vout = vaddq_u32(delta, vdupq_n_u32(carry));
      vst1q_u32(out + i, vout);
      carry = vgetq_lane_u32(vout, 3);
      d += svb::tables.len[ctrl];
    }
#endif
    if (i < vals) svb::decode_group_scalar(d, *c, vals - i, carry, out + i);
  }
#endif  // NWHY_SIMD_DECODE

private:
  [[nodiscard]] std::uint64_t block_data_offset(std::uint64_t b) const {
    std::uint64_t v;
    std::memcpy(&v, meta_ + b * svb::block_meta_bytes, 8);
    return v;
  }
  [[nodiscard]] const unsigned char* block_ctrl(std::uint64_t b) const {
    return ctrl_ + b * (block_size_ / 4);
  }

  std::uint32_t        block_size_ = 0;
  std::uint64_t        num_values_ = 0;
  std::uint64_t        num_blocks_ = 0;
  std::uint64_t        data_bytes_ = 0;
  const unsigned char* meta_       = nullptr;
  const unsigned char* ctrl_       = nullptr;
  const unsigned char* data_       = nullptr;
};

/// Duplicate-row dictionary built by the compressing writer: identical E2N
/// rows are stored once in `stored` (concatenated, delimited by
/// `dict_indices`), and each of the n rows becomes a reference into the
/// unique-row space.
struct row_dictionary {
  std::vector<nw::vertex_id_t> refs;          ///< n entries, refs[u] < num_unique
  std::vector<nw::offset_t>    dict_indices;  ///< num_unique + 1 offsets into `stored`
  std::vector<nw::vertex_id_t> stored;        ///< unique rows, first-occurrence order
  [[nodiscard]] std::size_t num_unique() const { return dict_indices.size() - 1; }
};

/// Detect duplicate rows of a CSR.  Returns nullopt when every row is
/// distinct (a dictionary would only add overhead).  Deterministic: unique
/// rows are numbered in first-occurrence order.
inline std::optional<row_dictionary> build_row_dictionary(std::span<const nw::offset_t> idx,
                                                          std::span<const nw::vertex_id_t> tgt) {
  const std::size_t n = idx.empty() ? 0 : idx.size() - 1;
  if (n == 0) return std::nullopt;
  row_dictionary d;
  d.refs.resize(n);
  d.dict_indices.push_back(0);
  std::unordered_map<std::string_view, nw::vertex_id_t> seen;
  seen.reserve(n);
  bool any_dup = false;
  for (std::size_t u = 0; u < n; ++u) {
    const auto lo = idx[u], hi = idx[u + 1];
    std::string_view key(reinterpret_cast<const char*>(tgt.data() + lo),
                         (hi - lo) * sizeof(nw::vertex_id_t));
    auto [it, inserted] = seen.emplace(key, static_cast<nw::vertex_id_t>(seen.size()));
    if (inserted) {
      d.stored.insert(d.stored.end(), tgt.begin() + lo, tgt.begin() + hi);
      d.dict_indices.push_back(d.stored.size());
    } else {
      any_dup = true;
    }
    d.refs[u] = it->second;
  }
  if (!any_dup) return std::nullopt;
  return d;
}

/// CSR view over compressed target sections: raw (uncompressed) row
/// offsets plus a block-compressed target stream, optionally indirected
/// through a duplicate-row dictionary.  Presents the same read interface
/// the traversal engines consume from `biadjacency` — `size()`,
/// `num_edges()`, `degree(u)`, `operator[](u)` (a span of u32 ids),
/// `contains(u, t)` — decoding block-wise into per-thread keep-capacity
/// scratch, so algorithms run on a compressed snapshot with bounded
/// memory.
///
/// Row lifetime contract: `operator[]` spans live in a small per-thread,
/// per-instance LRU cache (`row_cache_ways` slots).  A returned span stays
/// valid until the same thread either fetches `row_cache_ways` *other*
/// rows of the same instance, or touches more than `max_cached_instances`
/// (8) distinct compressed_adjacency instances — whole-instance LRU
/// eviction then destroys the least-recently-used instance's slot
/// storage, invalidating any spans still pointing into it.  Within that
/// instance budget, fetches on a different compressed_adjacency never
/// invalidate a span.  Every engine this repo runs on compressed views
/// keeps at most 2 rows of one structure live and touches at most 2
/// instances per thread (pairwise intersection is the worst case);
/// kernels that hold one row while streaming many rows of the same
/// structure (the intersection s-line family), or that interleave more
/// than 8 views on one thread, must materialize first.
///
/// Decoded ids are bound-checked against `target_bound` at decode time —
/// a crafted payload throws io_error from the access, never indexes an
/// algorithm array out of bounds.
class compressed_adjacency {
public:
  static constexpr std::size_t row_cache_ways = 4;

  compressed_adjacency() = default;

  compressed_adjacency(std::span<const nw::offset_t> idx, compressed_targets targets,
                       std::uint64_t target_bound, std::string origin,
                       std::shared_ptr<const void> keepalive)
      : idx_(idx),
        targets_(targets),
        target_bound_(target_bound),
        origin_(std::move(origin)),
        keepalive_(std::move(keepalive)),
        instance_(next_instance_id()) {}

  compressed_adjacency(std::span<const nw::offset_t> idx, std::span<const nw::vertex_id_t> refs,
                       std::span<const nw::offset_t> dict_idx, compressed_targets targets,
                       std::uint64_t target_bound, std::string origin,
                       std::shared_ptr<const void> keepalive)
      : idx_(idx),
        refs_(refs),
        dict_idx_(dict_idx),
        targets_(targets),
        target_bound_(target_bound),
        origin_(std::move(origin)),
        keepalive_(std::move(keepalive)),
        instance_(next_instance_id()) {}

  [[nodiscard]] std::size_t size() const { return idx_.empty() ? 0 : idx_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const { return idx_.empty() ? 0 : idx_.back(); }
  [[nodiscard]] std::size_t degree(std::size_t u) const {
    return static_cast<std::size_t>(idx_[u + 1] - idx_[u]);
  }
  [[nodiscard]] bool has_dictionary() const { return !refs_.empty(); }
  [[nodiscard]] const compressed_targets& targets() const { return targets_; }

  /// Row `u`, decoded into the calling thread's cache.  See the lifetime
  /// contract above.
  [[nodiscard]] std::span<const nw::vertex_id_t> operator[](std::size_t u) const {
    auto& slot = cache_slot(u);
    return {slot.values.data(), slot.values.size()};
  }

  /// Sorted-row point query with block skipping: only blocks whose
  /// min/max admit `t` are decoded, so a `contains` probe on a long row
  /// touches one block, not the whole row.  Every decoded block's min/max
  /// is verified exact (io_error on mismatch); a forged pair on a block
  /// this probe *skips* can suppress a match on a checksum-unverified
  /// mmap load — the streamed reader's mandatory checksums close that —
  /// but can never cause an out-of-bounds access.
  [[nodiscard]] bool contains(std::size_t u, nw::vertex_id_t t) const {
    const auto [lo, hi] = stored_range(u);
    if (lo == hi) return false;
    const std::uint32_t bs = targets_.block_size();
    auto& scratch          = block_scratch();
    for (std::uint64_t b = lo / bs, b_end = (hi - 1) / bs; b <= b_end; ++b) {
      const auto [mn, mx] = targets_.block_min_max(b);
      if (t < mn || t > mx) continue;
      decode_block_checked(b, scratch);
      // Overlap of the row's stored range with this block, in block-local
      // coordinates.  Canonical rows are sorted, so binary search applies.
      const std::uint64_t s = std::max<std::uint64_t>(lo, b * bs) - b * bs;
      const std::uint64_t e = std::min<std::uint64_t>(hi, b * bs + targets_.block_values(b)) -
                              b * bs;
      if (std::binary_search(scratch.begin() + s, scratch.begin() + e, t)) return true;
    }
    return false;
  }

  /// Decode the whole structure into an owned adjacency (parallel over
  /// blocks; the GB/s path bench_io measures).  Dictionary-backed rows are
  /// expanded by a parallel scatter of the decoded unique stream.
  [[nodiscard]] nw::graph::adjacency<> materialize(
      par::thread_pool& pool = par::thread_pool::default_pool()) const {
    NWOBS_SCOPE_TIMER("io.decode");
    const std::uint64_t          nv = targets_.num_values();
    std::vector<nw::vertex_id_t> stored(nv);
    par::parallel_for(
        0, targets_.num_blocks(),
        [&]([[maybe_unused]] unsigned tid, std::size_t b) {
          targets_.decode_block(b, stored.data() + b * std::uint64_t{targets_.block_size()});
          NWOBS_COUNT("csr.decode_blocks", tid, 1);
        },
        par::blocked{}, pool);
    check_bound(stored);
    std::vector<nw::offset_t> idx(idx_.begin(), idx_.end());
    if (!has_dictionary()) {
      return nw::graph::adjacency<>::from_csr_vectors(std::move(idx), std::move(stored), size());
    }
    std::vector<nw::vertex_id_t> tgt(num_edges());
    par::parallel_for(
        0, size(),
        [&](std::size_t u) {
          const auto r = refs_[u];
          std::memcpy(tgt.data() + idx_[u], stored.data() + dict_idx_[r],
                      (dict_idx_[r + 1] - dict_idx_[r]) * sizeof(nw::vertex_id_t));
        },
        par::blocked{}, pool);
    return nw::graph::adjacency<>::from_csr_vectors(std::move(idx), std::move(tgt), size());
  }

private:
  /// Stored (possibly dictionary-shared) value range backing row `u`.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> stored_range(std::size_t u) const {
    if (!has_dictionary()) return {idx_[u], idx_[u + 1]};
    const auto r = refs_[u];
    return {dict_idx_[r], dict_idx_[r + 1]};
  }

  void check_bound(std::span<const nw::vertex_id_t> vals) const {
    for (auto v : vals) {
      if (v >= target_bound_) {
        throw io_error(
            "NWHYCSR2 compressed targets decode to ids outside the opposite partition", origin_,
            0, 0);
      }
    }
  }

  void decode_block_checked(std::uint64_t b, std::vector<nw::vertex_id_t>& out) const {
    out.resize(targets_.block_values(b));
    targets_.decode_block(b, out.data());
    NWOBS_COUNT("csr.decode_blocks", obs_slot(), 1);
    check_bound(out);
    // contains() steers on the per-block min/max, so any block it decodes
    // must have *exact* metadata: a forged pair that widened the range
    // (and so failed to divert the probe) dies here with io_error instead
    // of letting stream-mode queries silently diverge from a materialized
    // load.  (A pair narrowed around a skipped block is caught by the
    // section checksum — mandatory on the streamed reader, opt-in on
    // mmap — and can at worst suppress a match, never break safety.)
    if (!out.empty()) {
      const auto [mn, mx]       = targets_.block_min_max(b);
      const auto [lo_it, hi_it] = std::minmax_element(out.begin(), out.end());
      if (*lo_it != mn || *hi_it != mx) {
        throw io_error("NWHYCSR2 compressed targets block " + std::to_string(b) +
                           " min/max metadata disagrees with its decoded values",
                       origin_, 0, 0);
      }
    }
  }

  // ---- per-thread row cache ----------------------------------------------
  //
  // Keyed (instance, stored-row-range): threads never share decode scratch
  // (TSan-clean by construction), eviction on one structure cannot
  // invalidate rows of another, and dictionary-duplicate rows hit the same
  // cache entry.  The per-thread footprint is bounded: at most
  // `max_cached_instances` instances x `row_cache_ways` rows, all
  // keep-capacity.  That bound is part of the public lifetime contract
  // (see the class comment): touching a 9th instance on one thread evicts
  // an entire instance_cache, destroying the vectors any of its published
  // spans point into.
  struct row_slot {
    std::uint64_t                lo = 0, hi = 0;
    bool                         valid = false;
    std::uint64_t                stamp = 0;
    std::vector<nw::vertex_id_t> values;
    std::vector<nw::vertex_id_t> block_buf;
  };
  struct instance_cache {
    std::uint64_t                          instance = 0;
    std::uint64_t                          stamp    = 0;
    std::array<row_slot, row_cache_ways>   slots;
    std::vector<nw::vertex_id_t>           block_scratch;  // for contains()
  };
  static constexpr std::size_t max_cached_instances = 8;

  static std::uint64_t next_instance_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Distinct nwobs counter slot per thread.  operator[] / contains() run on
  /// whatever thread the traversal engine uses, with no pool worker id in
  /// scope, so a fixed slot would be written concurrently; ids here never
  /// repeat, and ids past counter::slot_capacity land on the atomic
  /// overflow slot inside add().
  [[maybe_unused]] static unsigned obs_slot() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned  slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  [[nodiscard]] instance_cache& my_cache() const {
    thread_local std::vector<instance_cache> caches;
    thread_local std::uint64_t               clock = 0;
    ++clock;
    for (auto& c : caches) {
      if (c.instance == instance_) {
        c.stamp = clock;
        return c;
      }
    }
    if (caches.size() < max_cached_instances) {
      caches.emplace_back();
    } else {
      // Evict the least-recently-used instance wholesale (stale instances
      // of destroyed views age out here too).
      std::size_t victim = 0;
      for (std::size_t i = 1; i < caches.size(); ++i) {
        if (caches[i].stamp < caches[victim].stamp) victim = i;
      }
      caches[victim] = instance_cache{};
      return init_cache(caches[victim], clock);
    }
    return init_cache(caches.back(), clock);
  }

  instance_cache& init_cache(instance_cache& c, std::uint64_t clock) const {
    c.instance = instance_;
    c.stamp    = clock;
    return c;
  }

  [[nodiscard]] std::vector<nw::vertex_id_t>& block_scratch() const {
    return my_cache().block_scratch;
  }

  [[nodiscard]] row_slot& cache_slot(std::size_t u) const {
    auto& cache          = my_cache();
    const auto [lo, hi]  = stored_range(u);
    row_slot* lru        = &cache.slots[0];
    for (auto& s : cache.slots) {
      if (s.valid && s.lo == lo && s.hi == hi) {
        s.stamp = ++cache.stamp;
        return s;
      }
      if (s.stamp < lru->stamp) lru = &s;
    }
    decode_range(lo, hi, *lru);
    lru->stamp = ++cache.stamp;
    return *lru;
  }

  /// Decode stored range [lo, hi) block-wise into the slot's keep-capacity
  /// buffers and bound-check the result.
  void decode_range(std::uint64_t lo, std::uint64_t hi, row_slot& slot) const {
    slot.valid = false;
    slot.values.resize(hi - lo);
    if (lo != hi) {
      const std::uint32_t bs  = targets_.block_size();
      std::uint64_t       out = 0;
      for (std::uint64_t b = lo / bs, b_end = (hi - 1) / bs; b <= b_end; ++b) {
        const std::uint64_t b_lo = b * bs;
        const std::uint64_t take_lo = std::max(lo, b_lo);
        const std::uint64_t take_hi = std::min<std::uint64_t>(hi, b_lo + targets_.block_values(b));
        if (take_lo == b_lo && take_hi == b_lo + targets_.block_values(b)) {
          // Row covers the whole block: decode straight into the row buffer.
          targets_.decode_block(b, slot.values.data() + out);
          NWOBS_COUNT("csr.decode_blocks", obs_slot(), 1);
        } else {
          slot.block_buf.resize(targets_.block_values(b));
          targets_.decode_block(b, slot.block_buf.data());
          NWOBS_COUNT("csr.decode_blocks", obs_slot(), 1);
          std::memcpy(slot.values.data() + out, slot.block_buf.data() + (take_lo - b_lo),
                      (take_hi - take_lo) * sizeof(nw::vertex_id_t));
        }
        out += take_hi - take_lo;
      }
      check_bound(slot.values);
    }
    slot.lo    = lo;
    slot.hi    = hi;
    slot.valid = true;
  }

  std::span<const nw::offset_t>    idx_;
  std::span<const nw::vertex_id_t> refs_;      ///< empty unless dictionary-backed
  std::span<const nw::offset_t>    dict_idx_;  ///< empty unless dictionary-backed
  compressed_targets               targets_;
  std::uint64_t                    target_bound_ = 0;
  std::string                      origin_;
  std::shared_ptr<const void>      keepalive_;
  std::uint64_t                    instance_ = 0;
};

}  // namespace nw::hypergraph
