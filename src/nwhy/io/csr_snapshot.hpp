// nwhy/io/csr_snapshot.hpp
//
// NWHYCSR2: the versioned binary snapshot of a hypergraph's *built* CSR
// structures.  Where NWHYBIN1 (nwhy/io/binary.hpp) caches the raw edge list
// and pays the full parallel CSR construction on every load, NWHYCSR2
// serializes both bi-adjacency CSRs (and optionally the adjoin CSR), so a
// load is just a validation pass plus — on the mmap path — zero copies:
// `map_csr_snapshot` hands file-backed `std::span`s straight into
// `biadjacency` / `adjoin_graph`, making load one streaming scan of the
// file with no parsing, hashing, or construction.
//
// Byte-level layout (little-endian throughout; docs/IO_FORMATS.md is the
// normative spec — keep the two in sync):
//
//   offset size  field
//   ------ ----  -----------------------------------------------------------
//        0    8  magic "NWHYCSR2"
//        8    4  u32 version (currently 1)
//       12    4  u32 flags: bit0 HAS_ADJOIN, bit1 CANONICAL
//       16    8  u64 n0   (hyperedge cardinality)
//       24    8  u64 n1   (hypernode cardinality)
//       32    8  u64 m    (incidence count)
//       40    4  u32 section_count
//       44    4  u32 reserved (0)
//       48    8  u64 file_size (end of last section payload)
//       56    8  u64 header_checksum: FNV-1a-64 over bytes [0,56) ++ the
//                 whole section table
//       64  32k  section table: section_count entries of 32 bytes each
//                   u32 kind | u32 elem_size | u64 offset | u64 length |
//                   u64 checksum (FNV-1a-64 over the payload bytes)
//
// Section kinds (elem_size in parentheses):
//   1 E2N_INDICES    (8)  (n0+1) x u64   hyperedge->hypernode row offsets
//   2 E2N_TARGETS    (4)  m x u32        hypernode ids
//   3 N2E_INDICES    (8)  (n1+1) x u64   hypernode->hyperedge row offsets
//   4 N2E_TARGETS    (4)  m x u32        hyperedge ids
//   5 ADJOIN_INDICES (8)  (n0+n1+1) x u64  [HAS_ADJOIN only]
//   6 ADJOIN_TARGETS (4)  adjoin edge count x u32  [HAS_ADJOIN only]
//
// Every payload starts at a 64-byte-aligned offset (zero padding between
// sections); table order equals file order (strictly increasing offsets).
// CANONICAL means the CSRs came from a sort_and_unique'd edge list with
// sorted neighbor rows — NWHypergraph adopts such snapshots wholesale and
// rebuilds from scratch otherwise.
//
// Validation policy: both readers reject bad magic, unsupported versions,
// truncation, out-of-bounds/misaligned sections, u32 id overflow and
// header-checksum mismatch with io_error (never abort).  Both readers also
// run a full structural pass over every adopted CSR — row offsets must be
// monotonically non-decreasing and every target id must index the opposite
// partition — because checksums are forgeable and a crafted snapshot must
// never be able to drive to_biedgelist or the algorithms out of bounds.
// That pass is O(n + m) parallel integer compares (memory-bandwidth bound,
// a tiny fraction of what re-parsing text would cost), so the mmap load is
// "one streaming read" rather than strictly O(page faults).  The streamed
// reader always verifies per-section checksums; the mmap loader verifies
// them only when asked (`verify_checksums`), since hashing is much slower
// than the structural compare pass.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <ostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NWHY_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define NWHY_HAS_MMAP 0
#endif

#include "nwhy/adjoin.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/io/compress.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

namespace nw::hypergraph {

static_assert(std::endian::native == std::endian::little,
              "NWHYCSR2 snapshots assume a little-endian host");
static_assert(sizeof(nw::offset_t) == 8 && sizeof(nw::vertex_id_t) == 4,
              "NWHYCSR2 section layout is fixed to u64 offsets / u32 ids");

inline constexpr char          csr_snapshot_magic[8] = {'N', 'W', 'H', 'Y', 'C', 'S', 'R', '2'};
inline constexpr std::uint32_t csr_snapshot_version  = 1;

/// Header flag bits.
inline constexpr std::uint32_t csr_flag_has_adjoin = 1u << 0;
inline constexpr std::uint32_t csr_flag_canonical  = 1u << 1;

/// Section kinds.
inline constexpr std::uint32_t csr_sec_e2n_indices    = 1;
inline constexpr std::uint32_t csr_sec_e2n_targets    = 2;
inline constexpr std::uint32_t csr_sec_n2e_indices    = 3;
inline constexpr std::uint32_t csr_sec_n2e_targets    = 4;
inline constexpr std::uint32_t csr_sec_adjoin_indices = 5;
inline constexpr std::uint32_t csr_sec_adjoin_targets = 6;

/// Compressed section kinds (docs/IO_FORMATS.md §4).  A compressing writer
/// emits kind 7 (and optionally 9+10) *instead of* kind 2, and kind 8
/// instead of kind 4; index sections stay raw — algorithms need the logical
/// per-row offsets for degrees regardless of how targets are stored.  An
/// old (pre-compression) reader treats 7–10 as unknown kinds — checksummed,
/// skipped — and then fails cleanly with "missing required section kind 2",
/// the intended forward-compat behavior.
inline constexpr std::uint32_t csr_sec_e2n_targets_svb  = 7;   ///< StreamVByte blocks (elem 1)
inline constexpr std::uint32_t csr_sec_n2e_targets_svb  = 8;   ///< StreamVByte blocks (elem 1)
inline constexpr std::uint32_t csr_sec_e2n_dict_refs    = 9;   ///< n0 x u32 unique-row refs
inline constexpr std::uint32_t csr_sec_e2n_dict_indices = 10;  ///< (n_unique+1) x u64

/// Locality section kinds (docs/IO_FORMATS.md §4.7).  A sharding writer
/// slices both target streams into K contiguous hyperedge-range shards and
/// emits kinds 11+12 *instead of* the target sections (2/4 or 7/8); the
/// index sections (1/3) stay raw and resident.  Old readers skip 11/12 as
/// unknown kinds and fail with "missing required section kind 2" — the same
/// forward-compat story as the compressed kinds.  Kind 13 records the
/// degree-relabel inverse permutation (old external id of each stored row)
/// so loaders can keep answers in the caller's original id space.
inline constexpr std::uint32_t csr_sec_shard_dir     = 11;  ///< K x 80-byte shard records (elem 8)
inline constexpr std::uint32_t csr_sec_shard_payload = 12;  ///< concatenated shard slices (elem 1)
inline constexpr std::uint32_t csr_sec_relabel_inv   = 13;  ///< n0 x u32 old-id-of-row map

/// Human-readable section kind name (`nwhy_tool inspect`).
inline const char* csr_section_kind_name(std::uint32_t kind) {
  switch (kind) {
    case csr_sec_e2n_indices: return "E2N_INDICES";
    case csr_sec_e2n_targets: return "E2N_TARGETS";
    case csr_sec_n2e_indices: return "N2E_INDICES";
    case csr_sec_n2e_targets: return "N2E_TARGETS";
    case csr_sec_adjoin_indices: return "ADJOIN_INDICES";
    case csr_sec_adjoin_targets: return "ADJOIN_TARGETS";
    case csr_sec_e2n_targets_svb: return "E2N_TARGETS_SVB";
    case csr_sec_n2e_targets_svb: return "N2E_TARGETS_SVB";
    case csr_sec_e2n_dict_refs: return "E2N_DICT_REFS";
    case csr_sec_e2n_dict_indices: return "E2N_DICT_INDICES";
    case csr_sec_shard_dir: return "SHARD_DIR";
    case csr_sec_shard_payload: return "SHARD_PAYLOAD";
    case csr_sec_relabel_inv: return "RELABEL_INV";
    default: return "UNKNOWN";
  }
}

/// How a reader should handle compressed target sections.
enum class snapshot_decode {
  materialize,  ///< decode into owned CSRs at load — downstream code sees
                ///< exactly what a raw snapshot would have produced
  stream,       ///< keep `compressed_adjacency` views; traversal decodes
                ///< block-wise on demand with bounded memory
};

namespace csr_detail {

inline constexpr std::size_t header_bytes        = 64;
inline constexpr std::size_t checksummed_header  = 56;  ///< header bytes under the checksum
inline constexpr std::size_t table_entry_bytes   = 32;
inline constexpr std::size_t section_alignment   = 64;
inline constexpr std::size_t max_section_count   = 16;  ///< sanity bound for v1 readers

inline constexpr std::uint64_t fnv_basis = 14695981039346656037ull;
inline constexpr std::uint64_t fnv_prime = 1099511628211ull;

/// FNV-1a-64 over a byte run, chainable via `h`.
inline std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t h = fnv_basis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= fnv_prime;
  }
  return h;
}

inline void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

struct section_entry {
  std::uint32_t kind      = 0;
  std::uint32_t elem_size = 0;
  std::uint64_t offset    = 0;
  std::uint64_t length    = 0;  ///< payload bytes (excludes alignment padding)
  std::uint64_t checksum  = 0;
};

/// Everything parsed and validated out of header + table (no payloads).
struct parsed_header {
  std::uint32_t              version = 0;
  std::uint32_t              flags   = 0;
  std::uint64_t              n0 = 0, n1 = 0, m = 0;
  std::uint64_t              file_size = 0;
  std::vector<section_entry> sections;

  [[nodiscard]] const section_entry* find(std::uint32_t kind) const {
    for (const auto& s : sections) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  }
};

/// Expected elem_size per kind (0 = unknown kind, tolerated for forward
/// compatibility as long as the bounds hold).
inline std::uint32_t expected_elem_size(std::uint32_t kind) {
  switch (kind) {
    case csr_sec_e2n_indices:
    case csr_sec_n2e_indices:
    case csr_sec_adjoin_indices:
    case csr_sec_e2n_dict_indices:
    case csr_sec_shard_dir: return 8;
    case csr_sec_e2n_targets:
    case csr_sec_n2e_targets:
    case csr_sec_adjoin_targets:
    case csr_sec_e2n_dict_refs:
    case csr_sec_relabel_inv: return 4;
    case csr_sec_e2n_targets_svb:
    case csr_sec_n2e_targets_svb:
    case csr_sec_shard_payload: return 1;
    default: return 0;
  }
}

/// Parse + structurally validate header and section table from a byte
/// buffer holding at least the header+table prefix.  `available` is how
/// many bytes of the file are actually present (mmap: the mapping size;
/// stream: claimed file_size once the prefix is read).  Throws io_error.
inline parsed_header parse_header(const unsigned char* data, std::uint64_t available,
                                  const std::string& origin) {
  if (available < header_bytes) {
    throw io_error("truncated NWHYCSR2 snapshot (no room for the 64-byte header)", origin, 0,
                   available);
  }
  if (std::memcmp(data, csr_snapshot_magic, sizeof(csr_snapshot_magic)) != 0) {
    throw io_error("not an NWHYCSR2 snapshot (bad magic)", origin, 0, 0);
  }
  parsed_header h;
  h.version = get_u32(data + 8);
  h.flags   = get_u32(data + 12);
  if (h.version != csr_snapshot_version) {
    throw io_error("unsupported NWHYCSR2 version " + std::to_string(h.version) +
                       " (this reader understands version 1)",
                   origin, 0, 8);
  }
  h.n0 = get_u64(data + 16);
  h.n1 = get_u64(data + 24);
  h.m  = get_u64(data + 32);
  const std::uint32_t count = get_u32(data + 40);
  h.file_size               = get_u64(data + 48);
  if (count == 0 || count > max_section_count) {
    throw io_error("NWHYCSR2 section count " + std::to_string(count) + " out of range [1, " +
                       std::to_string(max_section_count) + "]",
                   origin, 0, 40);
  }
  const std::uint64_t table_end = header_bytes + std::uint64_t{count} * table_entry_bytes;
  if (available < table_end || h.file_size < table_end) {
    throw io_error("truncated NWHYCSR2 snapshot (section table cut short)", origin, 0,
                   header_bytes);
  }
  if (h.file_size > available) {
    throw io_error("truncated NWHYCSR2 snapshot (header declares " +
                       std::to_string(h.file_size) + " bytes, file has " +
                       std::to_string(available) + ")",
                   origin, 0, 48);
  }
  const std::uint64_t stored = get_u64(data + 56);
  std::uint64_t       actual = fnv1a64(data, checksummed_header);
  actual = fnv1a64(data + header_bytes, table_end - header_bytes, actual);
  if (stored != actual) {
    throw io_error("NWHYCSR2 header checksum mismatch (file corrupt?)", origin, 0, 56);
  }

  // u32 id space: ids must fit vertex_id_t with the null sentinel reserved.
  const std::uint64_t id_limit = std::numeric_limits<nw::vertex_id_t>::max();
  if (h.n0 > id_limit || h.n1 > id_limit ||
      ((h.flags & csr_flag_has_adjoin) && h.n0 + h.n1 > id_limit)) {
    throw io_error("NWHYCSR2 cardinality overflows the 32-bit id space", origin, 0, 16);
  }

  h.sections.resize(count);
  std::uint64_t prev_end   = table_end;
  std::uint32_t seen_kinds = 0;  // known kinds are 1..13, so a u32 mask fits
  for (std::uint32_t i = 0; i < count; ++i) {
    const unsigned char* e  = data + header_bytes + std::size_t{i} * table_entry_bytes;
    auto&                s  = h.sections[i];
    s.kind      = get_u32(e + 0);
    s.elem_size = get_u32(e + 4);
    s.offset    = get_u64(e + 8);
    s.length    = get_u64(e + 16);
    s.checksum  = get_u64(e + 24);
    const std::size_t entry_off = header_bytes + std::size_t{i} * table_entry_bytes;
    if (s.offset % section_alignment != 0) {
      throw io_error("NWHYCSR2 section " + std::to_string(i) + " payload is not 64-byte aligned",
                     origin, 0, entry_off);
    }
    if (s.offset < prev_end || s.length > h.file_size || s.offset > h.file_size - s.length) {
      throw io_error("NWHYCSR2 section " + std::to_string(i) +
                         " out of bounds (offset " + std::to_string(s.offset) + ", length " +
                         std::to_string(s.length) + ", file size " +
                         std::to_string(h.file_size) + ")",
                     origin, 0, entry_off);
    }
    const std::uint32_t want = expected_elem_size(s.kind);
    // Known kinds may appear at most once: every consumer below resolves a
    // kind to ONE section (require_section, the staging loops of the
    // streamed reader), so a file listing a kind twice could have its two
    // copies validated and adopted inconsistently.  Unknown kinds may
    // repeat — they are dropped wholesale.
    if (want != 0) {
      if ((seen_kinds >> s.kind) & 1u) {
        throw io_error("NWHYCSR2 snapshot lists section kind " + std::to_string(s.kind) +
                           " more than once",
                       origin, 0, entry_off);
      }
      seen_kinds |= 1u << s.kind;
    }
    if (want != 0 && s.elem_size != want) {
      throw io_error("NWHYCSR2 section kind " + std::to_string(s.kind) +
                         " has elem_size " + std::to_string(s.elem_size) + ", expected " +
                         std::to_string(want),
                     origin, 0, entry_off);
    }
    if (s.elem_size != 0 && s.length % s.elem_size != 0) {
      throw io_error("NWHYCSR2 section " + std::to_string(i) +
                         " length is not a multiple of its element size",
                     origin, 0, entry_off);
    }
    prev_end = s.offset + s.length;
  }
  return h;
}

/// Locate a required section and check its exact payload length.
inline const section_entry& require_section(const parsed_header& h, std::uint32_t kind,
                                            std::uint64_t expect_bytes,
                                            const std::string& origin) {
  const section_entry* s = h.find(kind);
  if (s == nullptr) {
    throw io_error("NWHYCSR2 snapshot is missing required section kind " + std::to_string(kind),
                   origin, 0, header_bytes);
  }
  if (s->length != expect_bytes) {
    throw io_error("NWHYCSR2 section kind " + std::to_string(kind) + " has " +
                       std::to_string(s->length) + " bytes, expected " +
                       std::to_string(expect_bytes),
                   origin, 0, header_bytes);
  }
  return *s;
}

/// Cheap O(1)-page invariants on an index section: starts at 0, ends at the
/// declared element count of the paired targets section.
inline void check_index_extents(std::span<const nw::offset_t> idx, std::uint64_t want_end,
                                const char* what, const std::string& origin) {
  if (idx.empty() || idx.front() != 0 || idx.back() != want_end) {
    throw io_error(std::string("NWHYCSR2 ") + what +
                       " index section is inconsistent with its targets section",
                   origin, 0, header_bytes);
  }
}

/// Full structural validation of one CSR section pair before it is adopted:
/// row offsets must be monotonically non-decreasing (together with the
/// extents check this pins every offset into [0, tgt.size()]), and every
/// target id must index the opposite partition (`target_bound`
/// exclusive).  Checksums are forgeable — and the mmap path skips them by
/// default — so this pass is what stands between a corrupt or crafted
/// .nwcsr and out-of-bounds reads/writes in to_biedgelist and every
/// algorithm that walks the CSR.  O(n + m) parallel integer compares.
inline void check_index_structure(std::span<const nw::offset_t> idx, std::uint64_t want_end,
                                  const char* what, const std::string& origin,
                                  par::thread_pool& pool = par::thread_pool::default_pool()) {
  check_index_extents(idx, want_end, what, origin);
  std::atomic<bool> bad_idx{false};
  par::parallel_for(
      0, idx.size() - 1,
      [&](std::size_t i) {
        if (idx[i] > idx[i + 1]) bad_idx.store(true, std::memory_order_relaxed);
      },
      par::blocked{}, pool);
  if (bad_idx.load(std::memory_order_relaxed)) {
    throw io_error(std::string("NWHYCSR2 ") + what +
                       " index section is not monotonically non-decreasing",
                   origin, 0, header_bytes);
  }
}

inline void check_csr_structure(std::span<const nw::offset_t>    idx,
                                std::span<const nw::vertex_id_t> tgt,
                                std::uint64_t target_bound, const char* what,
                                const std::string& origin,
                                par::thread_pool& pool = par::thread_pool::default_pool()) {
  check_index_structure(idx, tgt.size(), what, origin, pool);
  std::atomic<bool> bad_tgt{false};
  par::parallel_for(
      0, tgt.size(),
      [&](std::size_t k) {
        if (tgt[k] >= target_bound) bad_tgt.store(true, std::memory_order_relaxed);
      },
      par::blocked{}, pool);
  if (bad_tgt.load(std::memory_order_relaxed)) {
    throw io_error(std::string("NWHYCSR2 ") + what +
                       " targets section holds ids outside the opposite partition",
                   origin, 0, header_bytes);
  }
}

// ---- Hyperedge-range shards (kinds 11/12) --------------------------------
//
// The shard directory is K consecutive 80-byte records of 10 u64 words:
//
//   w0 e_begin   w1 e_end     hyperedge range [e_begin, e_end)
//   w2 e2n_off   w3 e2n_len   E2N targets slice for rows in the range
//   w4 sub_off   w5 sub_len   per-shard N2E sub-index, (n1+1) x u64
//   w6 n2e_off   w7 n2e_len   N2E targets slice: incident edge ids in range
//   w8 count                  incidences in the range
//   w9 flags                  bit0: both target slices are SVB payloads
//
// Offsets are relative to the start of the SHARD_PAYLOAD section, 64-byte
// aligned, and the three segments of record i appear in that order after
// every segment of record i-1 (no overlap).  Ranges exactly partition
// [0, n0) in ascending order and counts sum to m.  The sub-index delimits,
// per hypernode, its incident edges *within the range*; because canonical
// N2E rows are sorted, the global row of a node is the concatenation of its
// shard slices in shard order — which is how `reassemble_from_shards`
// rebuilds the raw streams and how `sharded_snapshot` serves one shard at a
// time without touching the rest of the file.

inline constexpr std::size_t   shard_record_words = 10;
inline constexpr std::uint64_t shard_flag_svb     = 1;

struct shard_entry {
  std::uint64_t e_begin = 0, e_end = 0;
  std::uint64_t e2n_off = 0, e2n_len = 0;
  std::uint64_t sub_off = 0, sub_len = 0;
  std::uint64_t n2e_off = 0, n2e_len = 0;
  std::uint64_t count = 0, flags = 0;
};

/// Parse + geometry-validate the shard directory against the header
/// cardinalities and the SHARD_PAYLOAD section length.  Slice *contents*
/// (sub-index structure, target ranges, SVB payload geometry) are validated
/// when a slice is actually decoded.  Throws io_error on any inconsistency.
inline std::vector<shard_entry> parse_shard_directory(std::span<const nw::offset_t> words,
                                                      std::uint64_t n0, std::uint64_t n1,
                                                      std::uint64_t m, std::uint64_t payload_len,
                                                      const std::string& origin) {
  auto fail = [&](const std::string& msg) {
    throw io_error("NWHYCSR2 shard directory: " + msg, origin, 0, header_bytes);
  };
  if (words.empty() || words.size() % shard_record_words != 0) {
    fail("length is not a positive multiple of the 80-byte record size");
  }
  const std::size_t        k = words.size() / shard_record_words;
  std::vector<shard_entry> dir(k);
  std::uint64_t            cursor = 0;  // segments are laid out in record order
  std::uint64_t            total  = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const nw::offset_t* w = words.data() + i * shard_record_words;
    auto&               s = dir[i];
    s.e_begin = w[0]; s.e_end = w[1];
    s.e2n_off = w[2]; s.e2n_len = w[3];
    s.sub_off = w[4]; s.sub_len = w[5];
    s.n2e_off = w[6]; s.n2e_len = w[7];
    s.count   = w[8]; s.flags   = w[9];
    const std::uint64_t want_begin = i == 0 ? 0 : dir[i - 1].e_end;
    if (s.e_begin != want_begin || s.e_end <= s.e_begin || s.e_end > n0) {
      fail("shard " + std::to_string(i) + " range [" + std::to_string(s.e_begin) + ", " +
           std::to_string(s.e_end) + ") does not partition [0, " + std::to_string(n0) + ")");
    }
    if ((s.flags & ~shard_flag_svb) != 0) {
      fail("shard " + std::to_string(i) + " carries unknown flags");
    }
    if (s.count > m - total) {
      fail("shard incidence counts exceed the header's declared total");
    }
    total += s.count;
    if (s.sub_len != (n1 + 1) * sizeof(nw::offset_t)) {
      fail("shard " + std::to_string(i) + " sub-index has " + std::to_string(s.sub_len) +
           " bytes, expected " + std::to_string((n1 + 1) * sizeof(nw::offset_t)));
    }
    if ((s.flags & shard_flag_svb) == 0 &&
        (s.e2n_len != s.count * sizeof(nw::vertex_id_t) ||
         s.n2e_len != s.count * sizeof(nw::vertex_id_t))) {
      fail("shard " + std::to_string(i) + " raw slice lengths disagree with its incidence count");
    }
    const std::uint64_t offs[3] = {s.e2n_off, s.sub_off, s.n2e_off};
    const std::uint64_t lens[3] = {s.e2n_len, s.sub_len, s.n2e_len};
    for (int seg = 0; seg < 3; ++seg) {
      if (offs[seg] % section_alignment != 0 || offs[seg] < cursor || lens[seg] > payload_len ||
          offs[seg] > payload_len - lens[seg]) {
        fail("shard " + std::to_string(i) + " segment " + std::to_string(seg) +
             " is misaligned, overlapping, or out of bounds");
      }
      cursor = offs[seg] + lens[seg];
    }
  }
  if (dir.back().e_end != n0) {
    fail("shard ranges stop at " + std::to_string(dir.back().e_end) + ", expected " +
         std::to_string(n0));
  }
  if (total != m) {
    fail("shard incidence counts sum to " + std::to_string(total) + ", header declares " +
         std::to_string(m));
  }
  return dir;
}

/// Decode one shard target slice — raw little-endian u32s or a full SVB
/// payload — into `out`, which must hold exactly `count` values.  The SVB
/// path runs the compressed_targets constructor, so a truncated or lying
/// slice fails its geometry/control checks rather than overrunning.
inline void decode_shard_slice(std::span<const unsigned char> slice, std::uint64_t file_off,
                               bool svb_slice, std::uint64_t count, nw::vertex_id_t* out,
                               const std::string& origin) {
  if (!svb_slice) {
    std::memcpy(out, slice.data(), static_cast<std::size_t>(count) * sizeof(nw::vertex_id_t));
    return;
  }
  compressed_targets ct(slice, origin, file_off);
  if (ct.num_values() != count) {
    throw io_error("NWHYCSR2 shard slice holds " + std::to_string(ct.num_values()) +
                       " values, directory declares " + std::to_string(count),
                   origin, 0, static_cast<std::size_t>(file_off));
  }
  for (std::uint64_t b = 0; b < ct.num_blocks(); ++b) {
    ct.decode_block(b, out + b * std::uint64_t{ct.block_size()});
  }
}

/// Rebuild the two raw target streams from a sharded snapshot: decode every
/// shard's slices and scatter the N2E pieces back into global row order.
/// Validates the global index sections first (slice geometry is derived
/// from them), every per-shard sub-index, the shard-local target ranges,
/// and finally runs the same full structural pass a raw snapshot gets —
/// so adoption downstream is exactly as safe as kind 2/4 sections.
inline void reassemble_from_shards(const std::vector<shard_entry>& dir,
                                   std::span<const unsigned char> payload,
                                   std::uint64_t payload_file_off,
                                   std::span<const nw::offset_t> e2n_idx,
                                   std::span<const nw::offset_t> n2e_idx, std::uint64_t n0,
                                   std::uint64_t n1, std::uint64_t m,
                                   std::vector<nw::vertex_id_t>& e2n_out,
                                   std::vector<nw::vertex_id_t>& n2e_out,
                                   const std::string& origin) {
  auto fail = [&](const std::string& msg) {
    throw io_error("NWHYCSR2 shard payload: " + msg, origin, 0,
                   static_cast<std::size_t>(payload_file_off));
  };
  if (e2n_idx.size() != n0 + 1 || n2e_idx.size() != n1 + 1) {
    fail("global index sections disagree with the header cardinalities");
  }
  check_index_structure(e2n_idx, m, "E2N", origin);
  check_index_structure(n2e_idx, m, "N2E", origin);
  e2n_out.assign(static_cast<std::size_t>(m), 0);
  n2e_out.assign(static_cast<std::size_t>(m), 0);
  std::vector<nw::offset_t>    cursor(static_cast<std::size_t>(n1), 0);
  std::vector<nw::vertex_id_t> scratch;
  for (std::size_t i = 0; i < dir.size(); ++i) {
    const auto& s   = dir[i];
    const bool  svb = (s.flags & shard_flag_svb) != 0;
    if (s.count != e2n_idx[s.e_end] - e2n_idx[s.e_begin]) {
      fail("shard " + std::to_string(i) + " incidence count disagrees with the E2N index");
    }
    // The E2N slice is the range's rows verbatim: decode straight into place.
    decode_shard_slice(payload.subspan(s.e2n_off, s.e2n_len), payload_file_off + s.e2n_off, svb,
                       s.count, e2n_out.data() + e2n_idx[s.e_begin], origin);
    const auto* sub = reinterpret_cast<const nw::offset_t*>(payload.data() + s.sub_off);
    if (sub[0] != 0 || sub[n1] != s.count) {
      fail("shard " + std::to_string(i) + " sub-index extents disagree with its incidence count");
    }
    for (std::uint64_t v = 0; v < n1; ++v) {
      if (sub[v] > sub[v + 1]) {
        fail("shard " + std::to_string(i) + " sub-index is not monotonically non-decreasing");
      }
    }
    scratch.resize(static_cast<std::size_t>(s.count));
    decode_shard_slice(payload.subspan(s.n2e_off, s.n2e_len), payload_file_off + s.n2e_off, svb,
                       s.count, scratch.data(), origin);
    for (std::uint64_t k = 0; k < s.count; ++k) {
      if (scratch[k] < s.e_begin || scratch[k] >= s.e_end) {
        fail("shard " + std::to_string(i) + " N2E slice holds edge ids outside its range");
      }
    }
    // Scatter each node's slice behind what earlier shards contributed.
    // Per-node totals are forced to the global degrees: every cursor is
    // bounded by its row here, and the shard counts sum to m (directory
    // check), so a shortfall in one row would surface as an overrun in
    // another.
    for (std::uint64_t v = 0; v < n1; ++v) {
      const std::uint64_t len = sub[v + 1] - sub[v];
      if (len == 0) continue;
      if (cursor[v] + len > n2e_idx[v + 1] - n2e_idx[v]) {
        fail("shard " + std::to_string(i) + " sub-index disagrees with the global N2E index");
      }
      std::memcpy(n2e_out.data() + n2e_idx[v] + cursor[v], scratch.data() + sub[v],
                  static_cast<std::size_t>(len) * sizeof(nw::vertex_id_t));
      cursor[v] += len;
    }
  }
  check_csr_structure(e2n_idx, std::span<const nw::vertex_id_t>(e2n_out), n1, "E2N", origin);
  check_csr_structure(n2e_idx, std::span<const nw::vertex_id_t>(n2e_out), n0, "N2E", origin);
}

/// A kind-13 section must be a permutation of [0, n0): anything else would
/// let answer translation read out of bounds or silently alias rows.
inline void validate_relabel_inv(std::span<const nw::vertex_id_t> inv, std::uint64_t n0,
                                 const std::string& origin) {
  std::vector<unsigned char> seen(static_cast<std::size_t>(n0), 0);
  for (auto v : inv) {
    if (v >= n0 || seen[v] != 0) {
      throw io_error("NWHYCSR2 relabel section is not a permutation of the hyperedge ids",
                     origin, 0, header_bytes);
    }
    seen[v] = 1;
  }
}

/// Validate a compressed targets section (plus optional dictionary pair)
/// against its raw index section and assemble the `compressed_adjacency`
/// view.  On return every *structural* property is proven — index
/// monotonicity/extents, payload geometry (via the compressed_targets
/// constructor, including the control-sum pass), dictionary ref bounds and
/// per-row degree agreement; the decoded *values* are bound-checked lazily
/// at decode time.  `payload_offset` labels io_errors with the section's
/// file position.
inline compressed_adjacency make_compressed_view(
    std::span<const nw::offset_t> idx, std::span<const unsigned char> payload,
    std::uint64_t payload_offset, std::span<const nw::vertex_id_t> refs,
    std::span<const nw::offset_t> dict_idx, std::uint64_t n, std::uint64_t m,
    std::uint64_t target_bound, const char* what, const std::string& origin,
    std::shared_ptr<const void> keepalive,
    par::thread_pool& pool = par::thread_pool::default_pool()) {
  // Both callers resolve idx via require_section, which pins its byte
  // length to (n+1) offsets — but the dictionary pass below reads
  // idx[u+1] up to u = n-1, so re-verify here rather than trusting the
  // callers' staging stayed consistent with the validated table entry.
  if (idx.size() != n + 1) {
    throw io_error(std::string("NWHYCSR2 ") + what + " index section has " +
                       std::to_string(idx.size()) + " offsets, expected " + std::to_string(n + 1),
                   origin, 0, payload_offset);
  }
  check_index_structure(idx, m, what, origin, pool);
  compressed_targets targets(payload, origin, payload_offset);
  NWOBS_COUNT("csr.compressed_bytes", 0, payload.size());
  const bool have_refs = !refs.empty() || !dict_idx.empty();
  if (!have_refs) {
    if (targets.num_values() != m) {
      throw io_error(std::string("NWHYCSR2 ") + what + " compressed targets hold " +
                         std::to_string(targets.num_values()) + " values, header declares " +
                         std::to_string(m),
                     origin, 0, payload_offset);
    }
    return compressed_adjacency(idx, targets, target_bound, origin, std::move(keepalive));
  }
  // Dictionary-backed: refs has one entry per row, dict_idx delimits the
  // unique rows inside the compressed stream.
  if (refs.size() != n) {
    throw io_error(std::string("NWHYCSR2 ") + what + " dictionary refs section has " +
                       std::to_string(refs.size()) + " entries, expected " + std::to_string(n),
                   origin, 0, payload_offset);
  }
  if (dict_idx.size() < 2 || dict_idx.size() - 1 > n) {
    throw io_error(std::string("NWHYCSR2 ") + what + " dictionary index section has an invalid " +
                       "unique-row count",
                   origin, 0, payload_offset);
  }
  check_index_structure(dict_idx, targets.num_values(), "E2N dictionary", origin, pool);
  const std::uint64_t n_unique = dict_idx.size() - 1;
  std::atomic<bool>   bad{false};
  par::parallel_for(
      0, n,
      [&](std::size_t u) {
        const auto r = refs[u];
        if (r >= n_unique || dict_idx[r + 1] - dict_idx[r] != idx[u + 1] - idx[u]) {
          bad.store(true, std::memory_order_relaxed);
        }
      },
      par::blocked{}, pool);
  if (bad.load(std::memory_order_relaxed)) {
    throw io_error(std::string("NWHYCSR2 ") + what +
                       " dictionary refs are out of range or disagree with the row degrees",
                   origin, 0, payload_offset);
  }
  return compressed_adjacency(idx, refs, dict_idx, targets, target_bound, origin,
                              std::move(keepalive));
}

}  // namespace csr_detail

/// A loaded snapshot: the two bi-adjacency CSRs, the optional adjoin CSR,
/// and — on the mmap path — the keepalive owning the mapped bytes every
/// span points into.  Move `storage` along with the CSRs (NWHypergraph's
/// snapshot constructor does).
struct csr_snapshot {
  std::uint32_t version = csr_snapshot_version;
  std::uint32_t flags   = 0;
  std::uint64_t n0 = 0, n1 = 0, m = 0;

  biadjacency<0>              edges;   ///< hyperedge -> hypernodes CSR
  biadjacency<1>              nodes;   ///< hypernode -> hyperedges CSR
  std::optional<adjoin_graph> adjoin;  ///< present iff HAS_ADJOIN was set

  /// Populated instead of edges/nodes when a compressed snapshot is loaded
  /// with `snapshot_decode::stream`: block-decoding views over the still-
  /// compressed sections.  Traversal engines run on them directly;
  /// `materialize_views` folds them into owned CSRs when the raw form is
  /// needed (to_biedgelist, save, ...).
  std::optional<compressed_adjacency> edges_view;
  std::optional<compressed_adjacency> nodes_view;

  /// Degree-relabel inverse permutation (kind 13): `relabel_inv[i]` is the
  /// original external id of stored hyperedge row `i`.  Empty when the
  /// snapshot was written in input order.  Validated to be a permutation of
  /// [0, n0) at load; NWHypergraph's snapshot constructor installs it so
  /// every query keeps answering in the caller's original id space.
  std::vector<nw::vertex_id_t> relabel_inv;

  /// Owns the mmap'd file for zero-copy loads — or, for a streamed load of
  /// a compressed snapshot, the staged compressed buffers the views point
  /// into; null otherwise.
  std::shared_ptr<const void> storage;

  [[nodiscard]] bool canonical() const { return (flags & csr_flag_canonical) != 0; }
  [[nodiscard]] bool zero_copy() const { return storage != nullptr; }
  [[nodiscard]] bool streaming() const { return edges_view.has_value() || nodes_view.has_value(); }

  /// Decode any streaming views into owned CSRs (parallel block decode).
  /// After this the snapshot is indistinguishable from a materialize-mode
  /// load.
  void materialize_views(par::thread_pool& pool = par::thread_pool::default_pool()) {
    if (edges_view) {
      edges = biadjacency<0>::from_csr(edges_view->materialize(pool), n0, n1);
      edges_view.reset();
    }
    if (nodes_view) {
      nodes = biadjacency<1>::from_csr(nodes_view->materialize(pool), n1, n0);
      nodes_view.reset();
    }
  }

  /// Expand the E2N CSR back into the canonical incidence list (parallel
  /// over hyperedge rows; output order = row-major CSR order, which for a
  /// CANONICAL snapshot is exactly sort_and_unique order).  On a
  /// stream-mode snapshot `edges` is intentionally empty, so the
  /// compressed E2N view is decoded first (one-shot; the snapshot itself
  /// stays in stream mode).
  [[nodiscard]] biedgelist<> to_biedgelist(
      par::thread_pool& pool = par::thread_pool::default_pool()) const {
    auto expand = [&](std::span<const nw::offset_t>    idx,
                      std::span<const nw::vertex_id_t> tgt) {
      std::vector<nw::vertex_id_t> edge_ids(tgt.size()), node_ids(tgt.size());
      par::parallel_for(
          0, idx.empty() ? 0 : idx.size() - 1,
          [&](std::size_t e) {
            for (nw::offset_t k = idx[e]; k < idx[e + 1]; ++k) {
              edge_ids[k] = static_cast<nw::vertex_id_t>(e);
              node_ids[k] = tgt[k];
            }
          },
          par::blocked{}, pool);
      return biedgelist<>(std::move(edge_ids), std::move(node_ids), n0, n1);
    };
    if (edges_view) {
      auto csr = edges_view->materialize(pool);
      return expand(csr.indices(), csr.targets());
    }
    return expand(edges.csr().indices(), edges.csr().targets());
  }
};

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

/// Sharding parameters (docs/IO_FORMATS.md §4.7).  `shards` pins the shard
/// count exactly (clamped to n0); when 0 the writer cuts a new shard
/// whenever the accumulated raw slice bytes reach `target_bytes` (0 defers
/// to the NWHY_SHARD_TARGET_BYTES environment knob, default 1 MiB).
struct csr_shard_options {
  std::uint32_t shards       = 0;
  std::uint64_t target_bytes = 0;
  bool          compress     = false;  ///< SVB-encode every shard target slice
  std::uint32_t block_size   = 4096;
};

/// Aggregate writer options.  `compress` and `shard` are mutually
/// exclusive ways of storing the target streams: when `shard` is set the
/// target sections move into the shard payload (kinds 11/12) and
/// `shard->compress` governs slice encoding; `compress` then only matters
/// as a programming error guard.  `relabel_inv`, when non-empty, must be a
/// permutation of [0, n0) mapping stored row -> original external id; it is
/// embedded as a kind-13 section.
struct csr_write_options {
  const csr_compress_options*      compress = nullptr;
  const csr_shard_options*         shard    = nullptr;
  std::span<const nw::vertex_id_t> relabel_inv{};
  const adjoin_graph*              adjoin    = nullptr;
  bool                             canonical = true;
};

namespace csr_detail {

/// Resolve the shard byte budget: explicit option, else environment knob.
inline std::uint64_t shard_target_bytes(const csr_shard_options& opt) {
  if (opt.target_bytes != 0) return opt.target_bytes;
  return nw::util::env_u64_strict("NWHY_SHARD_TARGET_BYTES", std::uint64_t{1} << 20,
                                  std::uint64_t{4} << 10, std::uint64_t{1} << 40);
}

/// Build the shard payload blob + directory for a canonical bi-adjacency
/// pair.  Shard boundaries either balance incidences across an explicit
/// shard count or greedily accumulate rows until the raw slice footprint
/// (8 bytes per incidence: the E2N value and its N2E mirror) reaches the
/// byte budget.  Each shard's N2E slice is derived by transposing its E2N
/// slice, which for sorted rows reproduces exactly the global rows'
/// in-range subsequences.
struct shard_blob {
  std::vector<shard_entry>   dir;
  std::vector<nw::offset_t>  dir_words;  ///< serialized kind-11 payload
  std::vector<unsigned char> payload;    ///< serialized kind-12 payload
};

inline shard_blob build_shard_blob(const biadjacency<0>& edges, const csr_shard_options& opt,
                                   std::uint64_t n1) {
  auto                e2n_idx = edges.csr().indices();
  auto                e2n_tgt = edges.csr().targets();
  const std::uint64_t n0      = edges.num_sources();
  const std::uint64_t m       = e2n_tgt.size();

  std::vector<std::uint64_t> cuts{0};
  if (opt.shards > 0) {
    const std::uint64_t k = std::min<std::uint64_t>(opt.shards, n0);
    for (std::uint64_t i = 1; i < k; ++i) {
      auto          it = std::lower_bound(e2n_idx.begin(), e2n_idx.end(), i * m / k);
      std::uint64_t e  = static_cast<std::uint64_t>(it - e2n_idx.begin());
      cuts.push_back(std::clamp<std::uint64_t>(e, cuts.back() + 1, n0 - (k - i)));
    }
    cuts.push_back(n0);
  } else {
    const std::uint64_t target = shard_target_bytes(opt);
    std::uint64_t       e      = 0;
    while (e < n0) {
      std::uint64_t bytes = 0, end = e;
      while (end < n0 && (end == e || bytes < target)) {
        bytes += (e2n_idx[end + 1] - e2n_idx[end]) * 8;
        ++end;
      }
      cuts.push_back(end);
      e = end;
    }
  }

  shard_blob blob;
  auto       append_aligned = [&](const void* data, std::uint64_t len) {
    const std::uint64_t off = align_up(blob.payload.size(), section_alignment);
    blob.payload.resize(static_cast<std::size_t>(off + len), 0);
    std::memcpy(blob.payload.data() + off, data, static_cast<std::size_t>(len));
    return off;
  };
  std::vector<nw::offset_t>    sub(static_cast<std::size_t>(n1) + 1);
  std::vector<nw::offset_t>    fill(static_cast<std::size_t>(n1));
  std::vector<nw::vertex_id_t> n2e_slice;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const std::uint64_t eb = cuts[i], ee = cuts[i + 1];
    shard_entry         s;
    s.e_begin = eb;
    s.e_end   = ee;
    s.count   = e2n_idx[ee] - e2n_idx[eb];
    s.flags   = opt.compress ? shard_flag_svb : 0;
    auto slice = e2n_tgt.subspan(static_cast<std::size_t>(e2n_idx[eb]),
                                 static_cast<std::size_t>(s.count));
    // Transpose the slice: counting pass, prefix sum, stable scatter of the
    // edge ids — per-node output is e-ascending, matching canonical rows.
    std::fill(sub.begin(), sub.end(), 0);
    for (auto v : slice) ++sub[static_cast<std::size_t>(v) + 1];
    for (std::uint64_t v = 0; v < n1; ++v) sub[v + 1] += sub[v];
    std::copy(sub.begin(), sub.end() - 1, fill.begin());
    n2e_slice.resize(static_cast<std::size_t>(s.count));
    for (std::uint64_t e = eb; e < ee; ++e) {
      for (nw::offset_t k = e2n_idx[e]; k < e2n_idx[e + 1]; ++k) {
        n2e_slice[fill[e2n_tgt[k]]++] = static_cast<nw::vertex_id_t>(e);
      }
    }
    if (opt.compress) {
      auto enc  = svb::encode(slice, opt.block_size);
      s.e2n_off = append_aligned(enc.data(), enc.size());
      s.e2n_len = enc.size();
    } else {
      s.e2n_off = append_aligned(slice.data(), s.count * sizeof(nw::vertex_id_t));
      s.e2n_len = s.count * sizeof(nw::vertex_id_t);
    }
    s.sub_off = append_aligned(sub.data(), (n1 + 1) * sizeof(nw::offset_t));
    s.sub_len = (n1 + 1) * sizeof(nw::offset_t);
    if (opt.compress) {
      auto enc  = svb::encode(std::span<const nw::vertex_id_t>(n2e_slice), opt.block_size);
      s.n2e_off = append_aligned(enc.data(), enc.size());
      s.n2e_len = enc.size();
    } else {
      s.n2e_off = append_aligned(n2e_slice.data(), s.count * sizeof(nw::vertex_id_t));
      s.n2e_len = s.count * sizeof(nw::vertex_id_t);
    }
    blob.dir.push_back(s);
  }
  blob.dir_words.reserve(blob.dir.size() * shard_record_words);
  for (const auto& s : blob.dir) {
    const std::uint64_t w[shard_record_words] = {s.e_begin, s.e_end,   s.e2n_off, s.e2n_len,
                                                 s.sub_off, s.sub_len, s.n2e_off, s.n2e_len,
                                                 s.count,   s.flags};
    blob.dir_words.insert(blob.dir_words.end(), w, w + shard_record_words);
  }
  NWOBS_COUNT("io.shard_count", 0, blob.dir.size());
  return blob;
}

}  // namespace csr_detail

/// Serialize built CSRs as an NWHYCSR2 snapshot.  `wopt.canonical` asserts
/// the CSRs came from a sort_and_unique'd edge list (what NWHypergraph
/// guarantees); loaders only adopt the structures wholesale when it is set.
/// Every stream write is checked: a failure (ENOSPC, closed pipe, ...)
/// throws io_error immediately instead of silently emitting a truncated
/// snapshot.  `origin` labels the error.
inline void write_csr_snapshot_impl(std::ostream& out, const biadjacency<0>& edges,
                                    const biadjacency<1>& nodes, const std::string& origin,
                                    const csr_write_options& wopt) {
  namespace d = csr_detail;
  NWOBS_SCOPE_TIMER("io.snapshot_write");
  NW_ASSERT(edges.num_edges() == nodes.num_edges(),
            "bi-adjacency pair disagrees on the incidence count");
  NW_ASSERT(edges.num_sources() == nodes.num_targets() &&
                edges.num_targets() == nodes.num_sources(),
            "bi-adjacency pair disagrees on the partition cardinalities");
  const adjoin_graph*         adjoin    = wopt.adjoin;
  const bool                  canonical = wopt.canonical;
  const csr_compress_options* opt       = wopt.compress;
  const std::uint64_t         n0        = edges.num_sources();
  const std::uint64_t         n1        = nodes.num_sources();
  const std::uint64_t         m         = edges.num_edges();
  if (adjoin != nullptr) {
    NW_ASSERT(adjoin->nrealedges == n0 && adjoin->nrealnodes == n1,
              "adjoin partition sizes disagree with the bi-adjacency pair");
  }
  const bool sharding = wopt.shard != nullptr && n0 > 0;
  NW_ASSERT(!sharding || canonical,
            "sharded snapshots require canonical CSRs (sorted neighbor rows)");
  if (!wopt.relabel_inv.empty()) {
    NW_ASSERT(wopt.relabel_inv.size() == n0,
              "relabel_inv must map every stored hyperedge row");
  }

  struct raw_section {
    std::uint32_t kind;
    std::uint32_t elem_size;
    const void*   data;
    std::uint64_t length;
  };
  std::vector<raw_section> raws;
  // Owned buffers for encoded payloads + dictionary vectors; inner buffers
  // are pointer-stable across pushes, so raws may reference them directly.
  std::vector<std::vector<unsigned char>> encoded;
  std::optional<row_dictionary>           dict;
  d::shard_blob                           blob;

  auto add_indices = [&](const nw::graph::adjacency<>& csr, std::uint32_t idx_kind) {
    auto idx = csr.indices();
    raws.push_back({idx_kind, 8, idx.data(), idx.size() * sizeof(nw::offset_t)});
  };
  auto add_targets_raw = [&](const nw::graph::adjacency<>& csr, std::uint32_t tgt_kind) {
    auto tgt = csr.targets();
    raws.push_back({tgt_kind, 4, tgt.data(), tgt.size() * sizeof(nw::vertex_id_t)});
  };
  auto add_svb = [&](std::span<const nw::vertex_id_t> values, std::uint32_t svb_kind) {
    encoded.push_back(svb::encode(values, opt->block_size));
    raws.push_back({svb_kind, 1, encoded.back().data(), encoded.back().size()});
  };

  const bool compress = !sharding && opt != nullptr && opt->compress_targets;
  if (sharding) {
    // Target streams live inside the shard payload; only the global index
    // sections stay in their own (resident) sections.
    blob = d::build_shard_blob(edges, *wopt.shard, n1);
    add_indices(edges.csr(), csr_sec_e2n_indices);
    add_indices(nodes.csr(), csr_sec_n2e_indices);
    raws.push_back({csr_sec_shard_dir, 8, blob.dir_words.data(),
                    blob.dir_words.size() * sizeof(nw::offset_t)});
    raws.push_back({csr_sec_shard_payload, 1, blob.payload.data(), blob.payload.size()});
  } else {
    add_indices(edges.csr(), csr_sec_e2n_indices);
    if (!compress) {
      add_targets_raw(edges.csr(), csr_sec_e2n_targets);
    } else {
      if (opt->dedup_rows) {
        dict = build_row_dictionary(edges.csr().indices(), edges.csr().targets());
      }
      if (dict) {
        add_svb(dict->stored, csr_sec_e2n_targets_svb);
        raws.push_back({csr_sec_e2n_dict_refs, 4, dict->refs.data(),
                        dict->refs.size() * sizeof(nw::vertex_id_t)});
        raws.push_back({csr_sec_e2n_dict_indices, 8, dict->dict_indices.data(),
                        dict->dict_indices.size() * sizeof(nw::offset_t)});
      } else {
        add_svb(edges.csr().targets(), csr_sec_e2n_targets_svb);
      }
    }
    add_indices(nodes.csr(), csr_sec_n2e_indices);
    if (!compress) {
      add_targets_raw(nodes.csr(), csr_sec_n2e_targets);
    } else {
      add_svb(nodes.csr().targets(), csr_sec_n2e_targets_svb);
    }
  }
  std::uint32_t flags = canonical ? csr_flag_canonical : 0;
  if (adjoin != nullptr) {
    flags |= csr_flag_has_adjoin;
    add_indices(adjoin->graph, csr_sec_adjoin_indices);
    add_targets_raw(adjoin->graph, csr_sec_adjoin_targets);
  }
  if (!wopt.relabel_inv.empty()) {
    raws.push_back({csr_sec_relabel_inv, 4, wopt.relabel_inv.data(),
                    wopt.relabel_inv.size() * sizeof(nw::vertex_id_t)});
  }

  // Lay out payloads at 64-byte-aligned offsets past header + table.
  const std::uint32_t count     = static_cast<std::uint32_t>(raws.size());
  const std::uint64_t table_end = d::header_bytes + std::uint64_t{count} * d::table_entry_bytes;
  std::vector<d::section_entry> entries(count);
  std::uint64_t                 off = d::align_up(table_end, d::section_alignment);
  for (std::uint32_t i = 0; i < count; ++i) {
    entries[i].kind      = raws[i].kind;
    entries[i].elem_size = raws[i].elem_size;
    entries[i].offset    = off;
    entries[i].length    = raws[i].length;
    entries[i].checksum  = d::fnv1a64(raws[i].data, raws[i].length);
    off                  = d::align_up(off + raws[i].length, d::section_alignment);
  }
  const std::uint64_t file_size =
      count == 0 ? table_end : entries[count - 1].offset + entries[count - 1].length;

  // Serialize header + table, checksum them together, and emit.
  std::vector<unsigned char> prefix(table_end, 0);
  std::memcpy(prefix.data(), csr_snapshot_magic, sizeof(csr_snapshot_magic));
  d::put_u32(prefix.data() + 8, csr_snapshot_version);
  d::put_u32(prefix.data() + 12, flags);
  d::put_u64(prefix.data() + 16, n0);
  d::put_u64(prefix.data() + 24, n1);
  d::put_u64(prefix.data() + 32, m);
  d::put_u32(prefix.data() + 40, count);
  d::put_u32(prefix.data() + 44, 0);  // reserved
  d::put_u64(prefix.data() + 48, file_size);
  for (std::uint32_t i = 0; i < count; ++i) {
    unsigned char* e = prefix.data() + d::header_bytes + std::size_t{i} * d::table_entry_bytes;
    d::put_u32(e + 0, entries[i].kind);
    d::put_u32(e + 4, entries[i].elem_size);
    d::put_u64(e + 8, entries[i].offset);
    d::put_u64(e + 16, entries[i].length);
    d::put_u64(e + 24, entries[i].checksum);
  }
  std::uint64_t hsum = d::fnv1a64(prefix.data(), d::checksummed_header);
  hsum = d::fnv1a64(prefix.data() + d::header_bytes, table_end - d::header_bytes, hsum);
  d::put_u64(prefix.data() + 56, hsum);

  auto checked_write = [&](const char* data, std::streamsize n) {
    out.write(data, n);
    if (!out.good()) {
      throw io_error("write failure while emitting NWHYCSR2 snapshot", origin);
    }
  };
  checked_write(reinterpret_cast<const char*>(prefix.data()),
                static_cast<std::streamsize>(prefix.size()));
  std::uint64_t                    pos = table_end;
  static constexpr char            zeros[d::section_alignment] = {};
  for (std::uint32_t i = 0; i < count; ++i) {
    NW_ASSERT(entries[i].offset >= pos, "snapshot sections must be laid out in order");
    std::uint64_t pad = entries[i].offset - pos;
    while (pad > 0) {
      std::uint64_t chunk = std::min<std::uint64_t>(pad, sizeof(zeros));
      checked_write(zeros, static_cast<std::streamsize>(chunk));
      pad -= chunk;
    }
    checked_write(static_cast<const char*>(raws[i].data),
                  static_cast<std::streamsize>(raws[i].length));
    pos = entries[i].offset + entries[i].length;
  }
  NWOBS_COUNT("io.snapshot_bytes_written", 0, file_size);
}

/// Full-options ostream overload; the narrower overloads below forward
/// here.
inline void write_csr_snapshot(std::ostream& out, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes, const csr_write_options& wopt,
                               const std::string& origin = {}) {
  write_csr_snapshot_impl(out, edges, nodes, origin, wopt);
}

inline void write_csr_snapshot(std::ostream& out, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes,
                               const adjoin_graph* adjoin = nullptr, bool canonical = true,
                               const std::string& origin = {}) {
  csr_write_options wopt;
  wopt.adjoin    = adjoin;
  wopt.canonical = canonical;
  write_csr_snapshot_impl(out, edges, nodes, origin, wopt);
}

/// Compressing overload: emit the bi-adjacency target sections in the
/// StreamVByte block format (and, when duplicate hyperedges exist and
/// `opt.dedup_rows` is set, the E2N duplicate-row dictionary).  The adjoin
/// CSR — incidences stored twice, rarely the footprint problem — stays raw.
inline void write_csr_snapshot(std::ostream& out, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes, const csr_compress_options& opt,
                               const adjoin_graph* adjoin = nullptr, bool canonical = true,
                               const std::string& origin = {}) {
  csr_write_options wopt;
  wopt.compress  = &opt;
  wopt.adjoin    = adjoin;
  wopt.canonical = canonical;
  write_csr_snapshot_impl(out, edges, nodes, origin, wopt);
}

/// Full-options path overload: on any write or flush failure, the partial
/// output file is removed (regular files only) and io_error propagates, so
/// a failed `nwhy_tool convert` never leaves a truncated .nwcsr on disk.
inline void write_csr_snapshot(const std::string& path, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes, const csr_write_options& wopt) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) throw io_error("cannot open snapshot output file", path);
  try {
    write_csr_snapshot_impl(out, edges, nodes, path, wopt);
    out.flush();
    if (!out.good()) throw io_error("flush failure while emitting NWHYCSR2 snapshot", path);
  } catch (...) {
    out.close();
    io_detail::remove_partial_output(path);
    throw;
  }
}

inline void write_csr_snapshot(const std::string& path, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes,
                               const adjoin_graph* adjoin = nullptr, bool canonical = true) {
  csr_write_options wopt;
  wopt.adjoin    = adjoin;
  wopt.canonical = canonical;
  write_csr_snapshot(path, edges, nodes, wopt);
}

/// Compressing path overload (see the ostream overload above).
inline void write_csr_snapshot(const std::string& path, const biadjacency<0>& edges,
                               const biadjacency<1>& nodes, const csr_compress_options& opt,
                               const adjoin_graph* adjoin = nullptr, bool canonical = true) {
  csr_write_options wopt;
  wopt.compress  = &opt;
  wopt.adjoin    = adjoin;
  wopt.canonical = canonical;
  write_csr_snapshot(path, edges, nodes, wopt);
}

// --------------------------------------------------------------------------
// Readers
// --------------------------------------------------------------------------

namespace csr_detail {

/// Assemble a csr_snapshot from a validated header plus a base pointer to
/// the full file image (mmap'd or slurped).  Span-based: zero copies for
/// raw sections; compressed target sections are either decoded now
/// (`materialize`) or wrapped in block-decoding views (`stream`).
inline csr_snapshot snapshot_from_image(const parsed_header& h, const unsigned char* base,
                                        bool verify_checksums, const std::string& origin,
                                        std::shared_ptr<const void> storage,
                                        snapshot_decode mode = snapshot_decode::materialize) {
  auto section_span = [&](const section_entry& s, auto tag) {
    using elem_t = decltype(tag);
    if (verify_checksums && fnv1a64(base + s.offset, s.length) != s.checksum) {
      throw io_error("NWHYCSR2 section checksum mismatch (kind " + std::to_string(s.kind) + ")",
                     origin, 0, s.offset);
    }
    return std::span<const elem_t>(reinterpret_cast<const elem_t*>(base + s.offset),
                                   s.length / sizeof(elem_t));
  };
  auto load_csr = [&](std::uint32_t idx_kind, std::uint32_t tgt_kind, std::uint64_t n,
                      std::uint64_t expect_targets, bool exact_targets,
                      std::uint64_t target_bound, const char* what) {
    const auto& si = require_section(h, idx_kind, (n + 1) * sizeof(nw::offset_t), origin);
    const auto* st = h.find(tgt_kind);
    if (st == nullptr) {
      throw io_error("NWHYCSR2 snapshot is missing required section kind " +
                         std::to_string(tgt_kind),
                     origin, 0, header_bytes);
    }
    if (exact_targets && st->length != expect_targets * sizeof(nw::vertex_id_t)) {
      throw io_error("NWHYCSR2 section kind " + std::to_string(tgt_kind) + " has " +
                         std::to_string(st->length) + " bytes, expected " +
                         std::to_string(expect_targets * sizeof(nw::vertex_id_t)),
                     origin, 0, header_bytes);
    }
    auto idx = section_span(si, nw::offset_t{});
    auto tgt = section_span(*st, nw::vertex_id_t{});
    check_csr_structure(idx, tgt, target_bound, what, origin);
    return nw::graph::adjacency<>::from_csr_spans(idx, tgt, n);
  };
  // Assemble a block-decoding view over a compressed targets section (plus
  // the E2N dictionary pair when present).
  auto load_compressed = [&](std::uint32_t idx_kind, std::uint32_t svb_kind, bool allow_dict,
                             std::uint64_t n, std::uint64_t target_bound, const char* what) {
    const auto& si = require_section(h, idx_kind, (n + 1) * sizeof(nw::offset_t), origin);
    const auto* sc = h.find(svb_kind);
    NW_ASSERT(sc != nullptr, "load_compressed called without the compressed section");
    auto idx     = section_span(si, nw::offset_t{});
    auto payload = section_span(*sc, (unsigned char){});
    std::span<const nw::vertex_id_t> refs;
    std::span<const nw::offset_t>    dict_idx;
    const auto* sr = h.find(csr_sec_e2n_dict_refs);
    const auto* sd = h.find(csr_sec_e2n_dict_indices);
    if (allow_dict && (sr != nullptr || sd != nullptr)) {
      if (sr == nullptr || sd == nullptr) {
        throw io_error(
            "NWHYCSR2 dictionary sections must come as a refs + indices pair (one is missing)",
            origin, 0, header_bytes);
      }
      refs = section_span(
          require_section(h, csr_sec_e2n_dict_refs, n * sizeof(nw::vertex_id_t), origin),
          nw::vertex_id_t{});
      dict_idx = section_span(*sd, nw::offset_t{});
    }
    return make_compressed_view(idx, payload, sc->offset, refs, dict_idx, n, h.m, target_bound,
                                what, origin, storage);
  };

  csr_snapshot snap;
  snap.version = h.version;
  snap.flags   = h.flags;
  snap.n0      = h.n0;
  snap.n1      = h.n1;
  snap.m       = h.m;
  const auto* sdir = h.find(csr_sec_shard_dir);
  const auto* spay = h.find(csr_sec_shard_payload);
  if ((sdir == nullptr) != (spay == nullptr)) {
    throw io_error(
        "NWHYCSR2 shard sections must come as a directory + payload pair (one is missing)",
        origin, 0, header_bytes);
  }
  const bool e2n_svb = h.find(csr_sec_e2n_targets_svb) != nullptr;
  const bool n2e_svb = h.find(csr_sec_n2e_targets_svb) != nullptr;
  // Per-side resolution order: raw targets win over compressed, both win
  // over shard slices (mirrors the raw-over-compressed precedent); a side
  // with no copy at all still fails with "missing required section kind".
  const bool e2n_raw = h.find(csr_sec_e2n_targets) != nullptr || (!e2n_svb && sdir == nullptr);
  const bool n2e_raw = h.find(csr_sec_n2e_targets) != nullptr || (!n2e_svb && sdir == nullptr);
  if (e2n_raw &&
      (h.find(csr_sec_e2n_dict_refs) != nullptr || h.find(csr_sec_e2n_dict_indices) != nullptr)) {
    throw io_error("NWHYCSR2 dictionary sections are only valid with compressed E2N targets",
                   origin, 0, header_bytes);
  }
  std::vector<nw::vertex_id_t> shard_e2n, shard_n2e;
  if (sdir != nullptr && ((!e2n_raw && !e2n_svb) || (!n2e_raw && !n2e_svb))) {
    auto dwords = section_span(*sdir, nw::offset_t{});
    auto ppay   = section_span(*spay, (unsigned char){});
    auto dir    = parse_shard_directory(dwords, h.n0, h.n1, h.m, spay->length, origin);
    const auto& si0 =
        require_section(h, csr_sec_e2n_indices, (h.n0 + 1) * sizeof(nw::offset_t), origin);
    const auto& si1 =
        require_section(h, csr_sec_n2e_indices, (h.n1 + 1) * sizeof(nw::offset_t), origin);
    reassemble_from_shards(dir, ppay, spay->offset, section_span(si0, nw::offset_t{}),
                           section_span(si1, nw::offset_t{}), h.n0, h.n1, h.m, shard_e2n,
                           shard_n2e, origin);
  }
  auto adopt_shard_side = [&](std::uint32_t idx_kind, std::vector<nw::vertex_id_t>&& tgt,
                              std::uint64_t n) {
    const auto& si = require_section(h, idx_kind, (n + 1) * sizeof(nw::offset_t), origin);
    auto        sp = section_span(si, nw::offset_t{});
    std::vector<nw::offset_t> idx(sp.begin(), sp.end());
    return nw::graph::adjacency<>::from_csr_vectors(std::move(idx), std::move(tgt), n);
  };
  if (e2n_raw) {
    snap.edges = biadjacency<0>::from_csr(
        load_csr(csr_sec_e2n_indices, csr_sec_e2n_targets, h.n0, h.m, true, h.n1, "E2N"), h.n0,
        h.n1);
  } else if (e2n_svb) {
    auto view =
        load_compressed(csr_sec_e2n_indices, csr_sec_e2n_targets_svb, true, h.n0, h.n1, "E2N");
    if (mode == snapshot_decode::materialize) {
      snap.edges = biadjacency<0>::from_csr(view.materialize(), h.n0, h.n1);
    } else {
      snap.edges_view = std::move(view);
    }
  } else {
    snap.edges = biadjacency<0>::from_csr(
        adopt_shard_side(csr_sec_e2n_indices, std::move(shard_e2n), h.n0), h.n0, h.n1);
  }
  if (n2e_raw) {
    snap.nodes = biadjacency<1>::from_csr(
        load_csr(csr_sec_n2e_indices, csr_sec_n2e_targets, h.n1, h.m, true, h.n0, "N2E"), h.n1,
        h.n0);
  } else if (n2e_svb) {
    auto view =
        load_compressed(csr_sec_n2e_indices, csr_sec_n2e_targets_svb, false, h.n1, h.n0, "N2E");
    if (mode == snapshot_decode::materialize) {
      snap.nodes = biadjacency<1>::from_csr(view.materialize(), h.n1, h.n0);
    } else {
      snap.nodes_view = std::move(view);
    }
  } else {
    snap.nodes = biadjacency<1>::from_csr(
        adopt_shard_side(csr_sec_n2e_indices, std::move(shard_n2e), h.n1), h.n1, h.n0);
  }
  if ((h.flags & csr_flag_has_adjoin) != 0) {
    snap.adjoin = adjoin_graph{
        load_csr(csr_sec_adjoin_indices, csr_sec_adjoin_targets, h.n0 + h.n1, 0, false,
                 h.n0 + h.n1, "adjoin"),
        static_cast<std::size_t>(h.n0), static_cast<std::size_t>(h.n1)};
  }
  if (h.find(csr_sec_relabel_inv) != nullptr) {
    const auto& sre =
        require_section(h, csr_sec_relabel_inv, h.n0 * sizeof(nw::vertex_id_t), origin);
    auto inv = section_span(sre, nw::vertex_id_t{});
    validate_relabel_inv(inv, h.n0, origin);
    snap.relabel_inv.assign(inv.begin(), inv.end());
  }
  snap.storage = std::move(storage);
  return snap;
}

}  // namespace csr_detail

#if NWHY_HAS_MMAP
/// Zero-copy loader: mmap the file read-only and point the CSR spans
/// straight at the mapping.  Load cost is header/table validation plus one
/// streaming structural pass over the CSR sections (monotonic offsets,
/// in-range targets — see check_csr_structure); no bytes are copied or
/// hashed.  `verify_checksums` opts into additionally hashing every section
/// (use for integrity audits, not hot loads).  The returned snapshot's
/// `storage` member owns the mapping; keep it alive as long as any span is
/// in use.
inline csr_snapshot map_csr_snapshot(const std::string& path, bool verify_checksums = false,
                                     snapshot_decode mode = snapshot_decode::materialize) {
  namespace d = csr_detail;
  NWOBS_SCOPE_TIMER("io.mmap");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw io_error("cannot open snapshot", path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw io_error("cannot stat snapshot", path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw io_error("truncated NWHYCSR2 snapshot (empty file)", path, 0, 0);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) throw io_error("mmap failed on snapshot", path);
  std::shared_ptr<const void> storage(base, [size](const void* p) {
    ::munmap(const_cast<void*>(p), size);
  });
  NWOBS_COUNT("io.mapped_bytes", 0, size);

  const auto* bytes = static_cast<const unsigned char*>(base);
  auto        h     = d::parse_header(bytes, size, path);
  return d::snapshot_from_image(h, bytes, verify_checksums, path, std::move(storage), mode);
}
#endif  // NWHY_HAS_MMAP

/// Streamed reader (pipes, sockets, non-mmap platforms): reads the whole
/// snapshot through the istream into owned vectors.  Always verifies every
/// section checksum — a stream has no later chance to fault pages in.
inline csr_snapshot read_csr_snapshot(std::istream& in, const std::string& origin = {},
                                      snapshot_decode mode = snapshot_decode::materialize) {
  namespace d = csr_detail;
  NWOBS_SCOPE_TIMER("io.snapshot_read");
  unsigned char prefix[d::header_bytes];
  in.read(reinterpret_cast<char*>(prefix), sizeof(prefix));
  if (!in.good()) {
    throw io_error("truncated NWHYCSR2 snapshot (no room for the 64-byte header)", origin, 0,
                   static_cast<std::size_t>(in.gcount()));
  }
  // Peek the section count to size the table read, then let parse_header do
  // all validation on the assembled prefix.
  if (std::memcmp(prefix, csr_snapshot_magic, sizeof(csr_snapshot_magic)) != 0) {
    throw io_error("not an NWHYCSR2 snapshot (bad magic)", origin, 0, 0);
  }
  const std::uint32_t count = d::get_u32(prefix + 40);
  if (count == 0 || count > d::max_section_count) {
    throw io_error("NWHYCSR2 section count " + std::to_string(count) + " out of range [1, " +
                       std::to_string(d::max_section_count) + "]",
                   origin, 0, 40);
  }
  const std::uint64_t table_end = d::header_bytes + std::uint64_t{count} * d::table_entry_bytes;
  std::vector<unsigned char> head(table_end);
  std::memcpy(head.data(), prefix, sizeof(prefix));
  in.read(reinterpret_cast<char*>(head.data() + d::header_bytes),
          static_cast<std::streamsize>(table_end - d::header_bytes));
  if (!in.good()) {
    throw io_error("truncated NWHYCSR2 snapshot (section table cut short)", origin, 0,
                   d::header_bytes);
  }
  // A stream cannot be sized up front; trust file_size for bounds checking
  // and let the payload reads catch actual truncation.
  const std::uint64_t claimed = d::get_u64(head.data() + 48);
  auto                h       = d::parse_header(head.data(), claimed, origin);

  // Payloads arrive in table order (parse_header enforced increasing
  // offsets); skip alignment padding between them.
  std::uint64_t pos = table_end;
  auto skip_to = [&](const d::section_entry& s) {
    NW_ASSERT(s.offset >= pos, "sections must be read in file order");
    for (std::uint64_t skip = s.offset - pos; skip > 0;) {
      char          sink[64];
      std::uint64_t chunk = std::min<std::uint64_t>(skip, sizeof(sink));
      in.read(sink, static_cast<std::streamsize>(chunk));
      skip -= chunk;
    }
  };
  // Stage a known section into a typed owned vector *incrementally*: the
  // header's section lengths are only bounded by its own claimed
  // file_size, which a stream cannot verify, so a crafted header could
  // declare near-2^64 bytes.  Growing the buffer a bounded chunk at a time
  // means memory is only committed for bytes the stream actually delivers
  // — a lying length dies on honest truncation ("cut short") after one
  // chunk, never on a giant up-front allocation.  The checksum is chained
  // across chunks.
  auto read_section = [&](const d::section_entry& s, auto& vec) {
    using elem_t = typename std::remove_reference_t<decltype(vec)>::value_type;
    skip_to(s);
    const std::uint64_t     total_elems = s.length / sizeof(elem_t);
    constexpr std::uint64_t chunk_elems = (std::uint64_t{4} << 20) / sizeof(elem_t);  // 4 MiB
    std::uint64_t           got         = 0;
    std::uint64_t           sum         = d::fnv_basis;
    while (got < total_elems) {
      const std::uint64_t n = std::min(chunk_elems, total_elems - got);
      try {
        vec.resize(static_cast<std::size_t>(got + n));
      } catch (const std::bad_alloc&) {
        throw io_error("NWHYCSR2 section kind " + std::to_string(s.kind) + " declares " +
                           std::to_string(s.length) + " bytes, too large to stage in memory",
                       origin, 0, s.offset);
      }
      in.read(reinterpret_cast<char*>(vec.data() + got),
              static_cast<std::streamsize>(n * sizeof(elem_t)));
      if (!in.good()) {
        throw io_error("truncated NWHYCSR2 snapshot (section kind " + std::to_string(s.kind) +
                           " cut short)",
                       origin, 0, s.offset);
      }
      sum = d::fnv1a64(vec.data() + got, static_cast<std::size_t>(n * sizeof(elem_t)), sum);
      got += n;
    }
    if (sum != s.checksum) {
      throw io_error("NWHYCSR2 section checksum mismatch (kind " + std::to_string(s.kind) + ")",
                     origin, 0, s.offset);
    }
    pos = s.offset + s.length;
  };
  // Stream an unknown-kind section through a fixed sink without
  // materializing it: its elem_size is untrusted (v1 only pins elem_size
  // for known kinds), so no staging buffer may ever be sized from it.  The
  // checksum is still chained and verified along the way.
  auto skip_section = [&](const d::section_entry& s) {
    skip_to(s);
    std::uint64_t sum = d::fnv_basis;
    for (std::uint64_t left = s.length; left > 0;) {
      char          sink[4096];
      std::uint64_t chunk = std::min<std::uint64_t>(left, sizeof(sink));
      in.read(sink, static_cast<std::streamsize>(chunk));
      if (!in.good()) {
        throw io_error("truncated NWHYCSR2 snapshot (section kind " + std::to_string(s.kind) +
                           " cut short)",
                       origin, 0, s.offset);
      }
      sum = d::fnv1a64(sink, static_cast<std::size_t>(chunk), sum);
      left -= chunk;
    }
    if (sum != s.checksum) {
      throw io_error("NWHYCSR2 section checksum mismatch (kind " + std::to_string(s.kind) + ")",
                     origin, 0, s.offset);
    }
    pos = s.offset + s.length;
  };
  // Read every listed section in file order.  Known kinds stage into typed
  // owned vectors (their elem_size was pinned by parse_header, so length is
  // a multiple of the element width); unknown kinds — tolerated for
  // forward compatibility — are checksum-verified and dropped, and their
  // untrusted elem_size never sizes a buffer.
  std::vector<std::vector<nw::offset_t>>     idx_store(h.sections.size());
  std::vector<std::vector<nw::vertex_id_t>>  tgt_store(h.sections.size());
  std::vector<std::vector<unsigned char>>    byte_store(h.sections.size());
  for (std::size_t i = 0; i < h.sections.size(); ++i) {
    const auto& s = h.sections[i];
    switch (d::expected_elem_size(s.kind)) {
      case 8: read_section(s, idx_store[i]); break;
      case 4: read_section(s, tgt_store[i]); break;
      case 1: read_section(s, byte_store[i]); break;
      default: skip_section(s); break;
    }
  }
  auto take_csr = [&](std::uint32_t idx_kind, std::uint32_t tgt_kind, std::uint64_t n,
                      std::uint64_t expect_targets, bool exact_targets,
                      std::uint64_t target_bound, const char* what) {
    (void)require_section(h, idx_kind, (n + 1) * sizeof(nw::offset_t), origin);
    std::vector<nw::offset_t>    idx;
    std::vector<nw::vertex_id_t> tgt;
    bool                         have_tgt = false;
    for (std::size_t i = 0; i < h.sections.size(); ++i) {
      if (h.sections[i].kind == idx_kind) idx = std::move(idx_store[i]);
      if (h.sections[i].kind == tgt_kind) {
        tgt      = std::move(tgt_store[i]);
        have_tgt = true;
      }
    }
    if (!have_tgt) {
      throw io_error("NWHYCSR2 snapshot is missing required section kind " +
                         std::to_string(tgt_kind),
                     origin, 0, d::header_bytes);
    }
    if (exact_targets && tgt.size() != expect_targets) {
      throw io_error("NWHYCSR2 section kind " + std::to_string(tgt_kind) + " has " +
                         std::to_string(tgt.size() * sizeof(nw::vertex_id_t)) +
                         " bytes, expected " +
                         std::to_string(expect_targets * sizeof(nw::vertex_id_t)),
                     origin, 0, d::header_bytes);
    }
    d::check_csr_structure(std::span<const nw::offset_t>(idx),
                           std::span<const nw::vertex_id_t>(tgt), target_bound, what, origin);
    return nw::graph::adjacency<>::from_csr_vectors(std::move(idx), std::move(tgt), n);
  };

  // Compressed sections were staged into owned byte/typed vectors above;
  // bundle the ones a view needs into a shared holder so stream-mode views
  // stay valid after this function returns (the holder doubles as
  // snap.storage).
  struct staged_compressed {
    std::vector<nw::offset_t>    e2n_idx, n2e_idx, dict_idx;
    std::vector<nw::vertex_id_t> refs;
    std::vector<unsigned char>   e2n_payload, n2e_payload;
  };
  std::shared_ptr<staged_compressed> held;
  auto take_staged_idx = [&](std::uint32_t kind) {
    std::vector<nw::offset_t> v;
    for (std::size_t i = 0; i < h.sections.size(); ++i) {
      if (h.sections[i].kind == kind) v = std::move(idx_store[i]);
    }
    return v;
  };
  auto take_compressed = [&](std::uint32_t idx_kind, std::uint32_t svb_kind, bool allow_dict,
                             std::uint64_t n, std::uint64_t target_bound, const char* what) {
    if (!held) held = std::make_shared<staged_compressed>();
    (void)d::require_section(h, idx_kind, (n + 1) * sizeof(nw::offset_t), origin);
    const auto* sc = h.find(svb_kind);
    NW_ASSERT(sc != nullptr, "take_compressed called without the compressed section");
    auto& idx_vec = idx_kind == csr_sec_e2n_indices ? held->e2n_idx : held->n2e_idx;
    auto& pay_vec = idx_kind == csr_sec_e2n_indices ? held->e2n_payload : held->n2e_payload;
    idx_vec = take_staged_idx(idx_kind);
    for (std::size_t i = 0; i < h.sections.size(); ++i) {
      if (h.sections[i].kind == svb_kind) pay_vec = std::move(byte_store[i]);
    }
    std::span<const nw::vertex_id_t> refs;
    std::span<const nw::offset_t>    dict_idx;
    const auto* sr = h.find(csr_sec_e2n_dict_refs);
    const auto* sd = h.find(csr_sec_e2n_dict_indices);
    if (allow_dict && (sr != nullptr || sd != nullptr)) {
      if (sr == nullptr || sd == nullptr) {
        throw io_error(
            "NWHYCSR2 dictionary sections must come as a refs + indices pair (one is missing)",
            origin, 0, d::header_bytes);
      }
      (void)d::require_section(h, csr_sec_e2n_dict_refs, n * sizeof(nw::vertex_id_t), origin);
      for (std::size_t i = 0; i < h.sections.size(); ++i) {
        if (h.sections[i].kind == csr_sec_e2n_dict_refs) held->refs = std::move(tgt_store[i]);
      }
      held->dict_idx = take_staged_idx(csr_sec_e2n_dict_indices);
      refs           = std::span<const nw::vertex_id_t>(held->refs);
      dict_idx       = std::span<const nw::offset_t>(held->dict_idx);
    }
    return d::make_compressed_view(std::span<const nw::offset_t>(idx_vec),
                                   std::span<const unsigned char>(pay_vec), sc->offset, refs,
                                   dict_idx, n, h.m, target_bound, what, origin, held);
  };

  csr_snapshot snap;
  snap.version = h.version;
  snap.flags   = h.flags;
  snap.n0      = h.n0;
  snap.n1      = h.n1;
  snap.m       = h.m;
  const auto* sdir = h.find(csr_sec_shard_dir);
  const auto* spay = h.find(csr_sec_shard_payload);
  if ((sdir == nullptr) != (spay == nullptr)) {
    throw io_error(
        "NWHYCSR2 shard sections must come as a directory + payload pair (one is missing)",
        origin, 0, d::header_bytes);
  }
  const bool e2n_svb = h.find(csr_sec_e2n_targets_svb) != nullptr;
  const bool n2e_svb = h.find(csr_sec_n2e_targets_svb) != nullptr;
  const bool e2n_raw = h.find(csr_sec_e2n_targets) != nullptr || (!e2n_svb && sdir == nullptr);
  const bool n2e_raw = h.find(csr_sec_n2e_targets) != nullptr || (!n2e_svb && sdir == nullptr);
  if (e2n_raw &&
      (h.find(csr_sec_e2n_dict_refs) != nullptr || h.find(csr_sec_e2n_dict_indices) != nullptr)) {
    throw io_error("NWHYCSR2 dictionary sections are only valid with compressed E2N targets",
                   origin, 0, d::header_bytes);
  }
  // Shard reassembly reads the staged stores through spans, so it must run
  // before take_csr / take_compressed move any of them out.
  std::vector<nw::vertex_id_t> shard_e2n, shard_n2e;
  if (sdir != nullptr && ((!e2n_raw && !e2n_svb) || (!n2e_raw && !n2e_svb))) {
    (void)d::require_section(h, csr_sec_e2n_indices, (h.n0 + 1) * sizeof(nw::offset_t), origin);
    (void)d::require_section(h, csr_sec_n2e_indices, (h.n1 + 1) * sizeof(nw::offset_t), origin);
    std::span<const nw::offset_t>  dwords, e2n_idx, n2e_idx;
    std::span<const unsigned char> ppay;
    for (std::size_t i = 0; i < h.sections.size(); ++i) {
      if (h.sections[i].kind == csr_sec_shard_dir) dwords = idx_store[i];
      if (h.sections[i].kind == csr_sec_shard_payload) ppay = byte_store[i];
      if (h.sections[i].kind == csr_sec_e2n_indices) e2n_idx = idx_store[i];
      if (h.sections[i].kind == csr_sec_n2e_indices) n2e_idx = idx_store[i];
    }
    auto dir = d::parse_shard_directory(dwords, h.n0, h.n1, h.m, spay->length, origin);
    d::reassemble_from_shards(dir, ppay, spay->offset, e2n_idx, n2e_idx, h.n0, h.n1, h.m,
                              shard_e2n, shard_n2e, origin);
  }
  if (e2n_raw) {
    snap.edges = biadjacency<0>::from_csr(
        take_csr(csr_sec_e2n_indices, csr_sec_e2n_targets, h.n0, h.m, true, h.n1, "E2N"), h.n0,
        h.n1);
  } else if (e2n_svb) {
    auto view =
        take_compressed(csr_sec_e2n_indices, csr_sec_e2n_targets_svb, true, h.n0, h.n1, "E2N");
    if (mode == snapshot_decode::materialize) {
      snap.edges = biadjacency<0>::from_csr(view.materialize(), h.n0, h.n1);
    } else {
      snap.edges_view = std::move(view);
    }
  } else {
    snap.edges = biadjacency<0>::from_csr(
        nw::graph::adjacency<>::from_csr_vectors(take_staged_idx(csr_sec_e2n_indices),
                                                 std::move(shard_e2n), h.n0),
        h.n0, h.n1);
  }
  if (n2e_raw) {
    snap.nodes = biadjacency<1>::from_csr(
        take_csr(csr_sec_n2e_indices, csr_sec_n2e_targets, h.n1, h.m, true, h.n0, "N2E"), h.n1,
        h.n0);
  } else if (n2e_svb) {
    auto view =
        take_compressed(csr_sec_n2e_indices, csr_sec_n2e_targets_svb, false, h.n1, h.n0, "N2E");
    if (mode == snapshot_decode::materialize) {
      snap.nodes = biadjacency<1>::from_csr(view.materialize(), h.n1, h.n0);
    } else {
      snap.nodes_view = std::move(view);
    }
  } else {
    snap.nodes = biadjacency<1>::from_csr(
        nw::graph::adjacency<>::from_csr_vectors(take_staged_idx(csr_sec_n2e_indices),
                                                 std::move(shard_n2e), h.n1),
        h.n1, h.n0);
  }
  if (snap.streaming()) snap.storage = held;
  if ((h.flags & csr_flag_has_adjoin) != 0) {
    snap.adjoin = adjoin_graph{
        take_csr(csr_sec_adjoin_indices, csr_sec_adjoin_targets, h.n0 + h.n1, 0, false,
                 h.n0 + h.n1, "adjoin"),
        static_cast<std::size_t>(h.n0), static_cast<std::size_t>(h.n1)};
  }
  if (h.find(csr_sec_relabel_inv) != nullptr) {
    (void)d::require_section(h, csr_sec_relabel_inv, h.n0 * sizeof(nw::vertex_id_t), origin);
    for (std::size_t i = 0; i < h.sections.size(); ++i) {
      if (h.sections[i].kind == csr_sec_relabel_inv) snap.relabel_inv = std::move(tgt_store[i]);
    }
    d::validate_relabel_inv(snap.relabel_inv, h.n0, origin);
  }
  NWOBS_COUNT("io.snapshot_bytes_read", 0, h.file_size);
  return snap;
}

/// Path-based load: mmap zero-copy where the platform supports it,
/// streamed otherwise.
inline csr_snapshot load_csr_snapshot(const std::string& path, bool verify_checksums = false,
                                      snapshot_decode mode = snapshot_decode::materialize) {
#if NWHY_HAS_MMAP
  return map_csr_snapshot(path, verify_checksums, mode);
#else
  (void)verify_checksums;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw io_error("cannot open snapshot", path);
  return read_csr_snapshot(in, path, mode);
#endif
}

}  // namespace nw::hypergraph
