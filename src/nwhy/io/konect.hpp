// nwhy/io/konect.hpp
//
// Reader for KONECT-style bipartite TSV files (the format of orkut-groups,
// Web and LiveJournal in the paper's Table I): '%'- or '#'-prefixed comment
// lines, then one "<left> <right> [weight [timestamp]]" incidence per line,
// 1-based ids.  Left column = hyperedge (group / page), right column =
// hypernode (member / user).
//
// Like the MatrixMarket reader there are two engines over one grammar
// (docs/IO_FORMATS.md): a streaming serial reader for istreams, and a
// parallel byte-range engine (`parse_konect_bipartite`) behind the
// path-based entry point.  Rows that are not two integers are skipped (the
// real KONECT corpora carry stray metadata rows); ids < 1 — or ids past
// the 32-bit vertex_id_t space, which would otherwise truncate silently —
// are a hard defect and throw io_error with file/line/byte context.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/io/matrix_market.hpp"  // detail::parse_defect / throw_first_defect
#include "nwhy/io/text_input.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/line_split.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

namespace io_detail {
/// Largest acceptable 1-based KONECT id: after the -1 shift the id must fit
/// vertex_id_t, i.e. the implied partition cardinality (= max id) must stay
/// within the 32-bit id space — mirroring the NWHYCSR2 reader's check.
inline constexpr std::int64_t konect_id_limit =
    static_cast<std::int64_t>(std::numeric_limits<vertex_id_t>::max());
}  // namespace io_detail

/// Streaming serial engine (pipe-friendly fallback).
inline biedgelist<> read_konect_bipartite(std::istream& in, const std::string& origin = {}) {
  NWOBS_SCOPE_TIMER("io.parse");
  biedgelist<> el;
  std::string  line;
  std::size_t  lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto content = io_detail::line_content(line, 0, line.size());
    if (content.empty() || content[0] == '%' || content[0] == '#') continue;
    io_detail::field_cursor f{content.data(), content.data() + content.size()};
    std::int64_t            left = 0, right = 0;
    if (!f.parse_i64(left) || !f.parse_i64(right)) continue;  // tolerate stray metadata rows
    if (left < 1 || right < 1) throw io_error("KONECT ids are 1-based", origin, lineno);
    if (left > io_detail::konect_id_limit || right > io_detail::konect_id_limit) {
      throw io_error("KONECT id overflows the 32-bit id space", origin, lineno);
    }
    el.push_back(static_cast<vertex_id_t>(left - 1), static_cast<vertex_id_t>(right - 1));
  }
  return el;
}

/// Parallel KONECT parse of an in-memory text: line-aligned byte ranges,
/// one pool worker per range, thread-local pair buffers merged in file
/// order — bit-identical to the streaming reader at any thread count.
inline biedgelist<> parse_konect_bipartite(std::string_view text,
                                           const std::string& origin = "<memory>",
                                           par::thread_pool& pool = par::thread_pool::default_pool()) {
  NWOBS_SCOPE_TIMER("io.parse");
  auto ranges = par::split_line_ranges(text, 0, text.size(), pool.concurrency());

  par::per_thread<std::vector<std::pair<vertex_id_t, vertex_id_t>>> buffers(pool);
  par::per_thread<detail::parse_defect>                             defects(pool);
  pool.run([&](unsigned tid) {
    if (tid >= ranges.size()) return;
    auto&             out       = buffers.local(tid);
    auto&             bad       = defects.local(tid);
    std::size_t       pos       = ranges[tid].begin;
    const std::size_t range_end = ranges[tid].end;
    while (pos < range_end) {
      std::size_t line_begin = pos;
      std::size_t line_end   = text.find('\n', pos);
      if (line_end == std::string_view::npos || line_end > range_end) line_end = range_end;
      pos          = line_end == range_end ? range_end : line_end + 1;
      auto content = io_detail::line_content(text, line_begin, line_end);
      if (content.empty() || content[0] == '%' || content[0] == '#') continue;
      io_detail::field_cursor f{content.data(), content.data() + content.size()};
      std::int64_t            left = 0, right = 0;
      if (!f.parse_i64(left) || !f.parse_i64(right)) continue;  // stray metadata row
      if (left < 1 || right < 1) {
        bad.record(line_begin, "KONECT ids are 1-based");
        return;
      }
      if (left > io_detail::konect_id_limit || right > io_detail::konect_id_limit) {
        bad.record(line_begin, "KONECT id overflows the 32-bit id space");
        return;
      }
      out.push_back({static_cast<vertex_id_t>(left - 1), static_cast<vertex_id_t>(right - 1)});
    }
  });
  for (std::size_t t = 0; t < defects.size(); ++t) {
    if (defects.local(static_cast<unsigned>(t)).offset != io_error::npos) {
      detail::throw_first_defect(defects, text, origin);
    }
  }
  return biedgelist<>::from_thread_buffers(buffers, 0, 0, par::merge_capacity::release, pool);
}

/// Path-based entry point: slurps the file once, parses in parallel.
inline biedgelist<> read_konect_bipartite(const std::string& path) {
  auto text = io_detail::read_file_to_string(path);
  return parse_konect_bipartite(text, path);
}

}  // namespace nw::hypergraph
