// nwhy/io/konect.hpp
//
// Reader for KONECT-style bipartite TSV files (the format of orkut-groups,
// Web and LiveJournal in the paper's Table I): '%'-prefixed comment lines,
// then one "<left> <right> [weight [timestamp]]" incidence per line,
// 1-based ids.  Left column = hyperedge (group / page), right column =
// hypernode (member / user).
#pragma once

#include <fstream>
#include <sstream>
#include <string>

#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

inline biedgelist<> read_konect_bipartite(std::istream& in) {
  biedgelist<> el;
  std::string  line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream row(line);
    long long          left = 0, right = 0;
    if (!(row >> left >> right)) continue;  // tolerate stray blank/garbage rows
    NW_ASSERT(left >= 1 && right >= 1, "KONECT ids are 1-based");
    el.push_back(static_cast<vertex_id_t>(left - 1), static_cast<vertex_id_t>(right - 1));
  }
  return el;
}

inline biedgelist<> read_konect_bipartite(const std::string& path) {
  std::ifstream in(path);
  NW_ASSERT(in.is_open(), "cannot open KONECT file");
  return read_konect_bipartite(in);
}

}  // namespace nw::hypergraph
