// nwhy/io/matrix_market.hpp
//
// Matrix Market I/O for hypergraph incidence matrices.  A hypergraph's
// incidence matrix is generally *rectangular* — rows are hyperedges,
// columns are hypernodes — and the readers here mirror the paper's
// Listing 2 construction APIs:
//
//   graph_reader(path)                       -> biedgelist (two index sets)
//   graph_reader_adjoin(path, nE, nV)        -> single-index-set edge list
//                                               (hypernode ids shifted by nE)
//
// Only the "matrix coordinate {pattern|real|integer} general" dialect is
// supported, which covers the hypergraph corpora the paper uses; the exact
// accepted grammar (line-based, CRLF-tolerant, comments and blank lines
// anywhere) is specified in docs/IO_FORMATS.md.
//
// Two parse engines share that grammar:
//
//   * a serial, streaming engine (`graph_reader(std::istream&)`) for pipes
//     and in-memory strings;
//   * a parallel engine (`parse_matrix_market`) used by every path-based
//     entry point: the body is split into line-aligned byte ranges
//     (par::split_line_ranges), each pool worker parses its range into a
//     thread-local pair buffer with std::from_chars, and the buffers merge
//     through biedgelist::from_thread_buffers — so ingest scales with
//     cores and the result is bit-identical to the serial parse.
//
// All defects throw nw::hypergraph::io_error with file/line/byte context;
// nothing here aborts the process.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nwgraph/edge_list.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/io/text_input.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/line_split.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

namespace detail {

struct mm_header {
  std::size_t rows = 0, cols = 0, nnz = 0;
  bool        pattern = true;
};

/// Declared dimensions bound every entry id (entries are 1-based, so a
/// dimension is also the partition cardinality); they must fit the 32-bit
/// vertex_id_t space or every later static_cast would truncate silently.
/// Mirrors the NWHYCSR2 reader's cardinality check.
inline constexpr const char* mm_dim_overflow_msg =
    "MatrixMarket dimensions overflow the 32-bit id space";

[[nodiscard]] inline bool mm_dimensions_overflow(std::uint64_t rows, std::uint64_t cols) {
  constexpr std::uint64_t id_limit = std::numeric_limits<vertex_id_t>::max();
  return rows > id_limit || cols > id_limit;
}

inline void check_mm_banner(std::string_view banner, const std::string& origin,
                            mm_header& h) {
  if (banner.rfind("%%MatrixMarket", 0) != 0) {
    throw io_error("missing MatrixMarket banner", origin, 1, 0);
  }
  h.pattern = banner.find("pattern") != std::string_view::npos;
  if (banner.find("coordinate") == std::string_view::npos) {
    throw io_error("only coordinate MatrixMarket files are supported", origin, 1, 0);
  }
  if (banner.find("general") == std::string_view::npos && !h.pattern) {
    throw io_error("only 'general' symmetry is supported", origin, 1, 0);
  }
}

inline mm_header read_mm_header(std::istream& in, const std::string& origin = {}) {
  std::string line;
  if (!std::getline(in, line)) throw io_error("empty MatrixMarket stream", origin, 1, 0);
  mm_header h;
  check_mm_banner(line, origin, h);
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    auto content = io_detail::line_content(line, 0, line.size());
    if (content.empty() || content[0] == '%') continue;
    io_detail::field_cursor f{content.data(), content.data() + content.size()};
    std::uint64_t           r = 0, c = 0, nnz = 0;
    if (!f.parse_u64(r) || !f.parse_u64(c) || !f.parse_u64(nnz)) {
      throw io_error("malformed MatrixMarket size line", origin, lineno);
    }
    if (mm_dimensions_overflow(r, c)) throw io_error(mm_dim_overflow_msg, origin, lineno);
    h.rows = r;
    h.cols = c;
    h.nnz  = nnz;
    return h;
  }
  throw io_error("MatrixMarket stream ended before the size line", origin, lineno);
}

/// Parse the banner + size line out of an in-memory MatrixMarket text.
/// Returns the header and sets `body_begin` to the byte offset of the first
/// entry line.
inline mm_header parse_mm_header(std::string_view text, const std::string& origin,
                                 std::size_t& body_begin) {
  mm_header   h;
  std::size_t pos = 0;
  // Banner line.
  std::size_t nl = text.find('\n');
  if (text.empty()) throw io_error("empty MatrixMarket stream", origin, 1, 0);
  check_mm_banner(text.substr(0, nl == std::string_view::npos ? text.size() : nl), origin,
                  h);
  pos = nl == std::string_view::npos ? text.size() : nl + 1;
  // Comments, then the size line.
  while (pos < text.size()) {
    std::size_t line_begin = pos;
    std::size_t line_end   = text.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = text.size();
    pos          = line_end == text.size() ? line_end : line_end + 1;
    auto content = io_detail::line_content(text, line_begin, line_end);
    if (content.empty() || content[0] == '%') continue;
    io_detail::field_cursor f{content.data(), content.data() + content.size()};
    std::uint64_t           r = 0, c = 0, nnz = 0;
    if (!f.parse_u64(r) || !f.parse_u64(c) || !f.parse_u64(nnz)) {
      throw io_error("malformed MatrixMarket size line", origin,
                     io_detail::line_number_at(text, line_begin), line_begin);
    }
    if (mm_dimensions_overflow(r, c)) {
      throw io_error(mm_dim_overflow_msg, origin, io_detail::line_number_at(text, line_begin),
                     line_begin);
    }
    h.rows     = r;
    h.cols     = c;
    h.nnz      = nnz;
    body_begin = pos;
    return h;
  }
  throw io_error("MatrixMarket stream ended before the size line", origin,
                 io_detail::line_number_at(text, text.size()), text.size());
}

/// First-defect slot of one parse worker: the lowest byte offset wins when
/// workers race, so the reported error is deterministic (file order).
struct parse_defect {
  std::uint64_t offset = io_error::npos;
  const char*   msg    = nullptr;

  void record(std::uint64_t off, const char* m) {
    if (offset == io_error::npos) {
      offset = off;
      msg    = m;
    }
  }
};

[[noreturn]] inline void throw_first_defect(par::per_thread<parse_defect>& defects,
                                            std::string_view text, const std::string& origin) {
  parse_defect first;
  for (std::size_t t = 0; t < defects.size(); ++t) {
    const auto& d = defects.local(static_cast<unsigned>(t));
    if (d.offset < first.offset) first = d;
  }
  throw io_error(first.msg != nullptr ? first.msg : "parse error", origin,
                 io_detail::line_number_at(text, first.offset), first.offset);
}

}  // namespace detail

/// Parallel MatrixMarket parse of an in-memory text.  `origin` labels
/// errors (file path or "<memory>").  Bit-identical to the streaming
/// `graph_reader(std::istream&)` at any thread count.
inline biedgelist<> parse_matrix_market(std::string_view text,
                                        const std::string& origin = "<memory>",
                                        par::thread_pool& pool = par::thread_pool::default_pool()) {
  NWOBS_SCOPE_TIMER("io.parse");
  std::size_t body_begin = 0;
  auto        h          = detail::parse_mm_header(text, origin, body_begin);
  auto ranges = par::split_line_ranges(text, body_begin, text.size(), pool.concurrency());

  par::per_thread<std::vector<std::pair<vertex_id_t, vertex_id_t>>> buffers(pool);
  par::per_thread<detail::parse_defect>                             defects(pool);
  pool.run([&](unsigned tid) {
    if (tid >= ranges.size()) return;
    auto& out = buffers.local(tid);
    auto& bad = defects.local(tid);
    out.reserve(h.nnz / std::max<std::size_t>(ranges.size(), 1) + 16);
    std::size_t pos = ranges[tid].begin;
    const std::size_t range_end = ranges[tid].end;
    while (pos < range_end) {
      std::size_t line_begin = pos;
      std::size_t line_end   = text.find('\n', pos);
      if (line_end == std::string_view::npos || line_end > range_end) line_end = range_end;
      pos          = line_end == range_end ? range_end : line_end + 1;
      auto content = io_detail::line_content(text, line_begin, line_end);
      if (content.empty() || content[0] == '%') continue;
      io_detail::field_cursor f{content.data(), content.data() + content.size()};
      std::uint64_t           r = 0, c = 0;
      if (!f.parse_u64(r) || !f.parse_u64(c)) {
        bad.record(line_begin, "malformed MatrixMarket entry");
        return;
      }
      if (r < 1 || r > h.rows || c < 1 || c > h.cols) {
        bad.record(line_begin, "MatrixMarket entry out of declared bounds");
        return;
      }
      // Values (real/integer dialects) and any trailing fields are ignored;
      // the incidence structure is all the hypergraph needs.
      out.push_back({static_cast<vertex_id_t>(r - 1), static_cast<vertex_id_t>(c - 1)});
    }
  });
  for (std::size_t t = 0; t < defects.size(); ++t) {
    if (defects.local(static_cast<unsigned>(t)).offset != io_error::npos) {
      detail::throw_first_defect(defects, text, origin);
    }
  }
  std::size_t total = 0;
  for (std::size_t t = 0; t < buffers.size(); ++t) total += buffers.local(static_cast<unsigned>(t)).size();
  if (total != h.nnz) {
    throw io_error("MatrixMarket declares " + std::to_string(h.nnz) + " entries but file contains " +
                       std::to_string(total),
                   origin, io_detail::line_number_at(text, text.size()), text.size());
  }
  auto el = biedgelist<>::from_thread_buffers(buffers, h.rows, h.cols,
                                              par::merge_capacity::release, pool);
  return el;
}

/// Read an incidence matrix as a bipartite edge list: entry (r, c) means
/// hyperedge r-1 is incident on hypernode c-1 (MatrixMarket is 1-based).
/// Streaming serial engine — the pipe-friendly fallback.
inline biedgelist<> graph_reader(std::istream& in, const std::string& origin = {}) {
  NWOBS_SCOPE_TIMER("io.parse");
  auto         h = detail::read_mm_header(in, origin);
  biedgelist<> el(h.rows, h.cols);
  el.reserve(h.nnz);
  std::string line;
  std::size_t lineno = 0, parsed = 0;
  // The header reader consumed up to (and including) the size line; body
  // line numbers are best-effort for the stream API (exact for the
  // path-based parallel engine).
  while (std::getline(in, line)) {
    ++lineno;
    auto content = io_detail::line_content(line, 0, line.size());
    if (content.empty() || content[0] == '%') continue;
    io_detail::field_cursor f{content.data(), content.data() + content.size()};
    std::uint64_t           r = 0, c = 0;
    if (!f.parse_u64(r) || !f.parse_u64(c)) {
      throw io_error("malformed MatrixMarket entry", origin, lineno);
    }
    if (r < 1 || r > h.rows || c < 1 || c > h.cols) {
      throw io_error("MatrixMarket entry out of declared bounds", origin, lineno);
    }
    el.push_back(static_cast<vertex_id_t>(r - 1), static_cast<vertex_id_t>(c - 1));
    ++parsed;
  }
  if (parsed != h.nnz) {
    throw io_error("MatrixMarket declares " + std::to_string(h.nnz) +
                       " entries but stream contains " + std::to_string(parsed),
                   origin, lineno);
  }
  return el;
}

/// Path-based entry point: slurps the file once and parses it in parallel
/// on the default pool.
inline biedgelist<> graph_reader(const std::string& path) {
  auto text = io_detail::read_file_to_string(path);
  return parse_matrix_market(text, path);
}

/// Read directly into the adjoin (single index set) form: hyperedges keep
/// ids [0, nE), hypernodes are shifted to [nE, nE + nV); both incidence
/// directions are emitted so the result is symmetric.  Outputs the
/// partition sizes through the two reference parameters, matching the
/// paper's `graph_reader_adjoin(mm_file, nrealedges, nrealnodes)` call.
inline nw::graph::edge_list<> graph_reader_adjoin(std::istream& in, std::size_t& nrealedges,
                                                  std::size_t& nrealnodes,
                                                  const std::string& origin = {}) {
  auto el    = graph_reader(in, origin);
  nrealedges = el.num_vertices(0);
  nrealnodes = el.num_vertices(1);
  nw::graph::edge_list<> flat(nrealedges + nrealnodes);
  flat.reserve(2 * el.size());
  const auto& e_ids = el.edge_ids();
  const auto& n_ids = el.node_ids();
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto e = e_ids[i];
    auto v = static_cast<vertex_id_t>(n_ids[i] + nrealedges);
    flat.push_back(e, v);
    flat.push_back(v, e);
  }
  return flat;
}

inline nw::graph::edge_list<> graph_reader_adjoin(const std::string& path,
                                                  std::size_t&       nrealedges,
                                                  std::size_t&       nrealnodes) {
  auto el    = graph_reader(path);  // parallel parse
  nrealedges = el.num_vertices(0);
  nrealnodes = el.num_vertices(1);
  nw::graph::edge_list<> flat(nrealedges + nrealnodes);
  flat.reserve(2 * el.size());
  const auto& e_ids = el.edge_ids();
  const auto& n_ids = el.node_ids();
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto e = e_ids[i];
    auto v = static_cast<vertex_id_t>(n_ids[i] + nrealedges);
    flat.push_back(e, v);
    flat.push_back(v, e);
  }
  return flat;
}

/// Write a biedgelist as a pattern MatrixMarket incidence matrix.  The
/// stream state is checked so a failed write (ENOSPC, closed pipe) throws
/// io_error instead of silently truncating the output.
inline void write_matrix_market(std::ostream& out, const biedgelist<>& el,
                                const std::string& origin = {}) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% hypergraph incidence matrix written by NWHy\n";
  out << el.num_vertices(0) << ' ' << el.num_vertices(1) << ' ' << el.size() << '\n';
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    out << (e + 1) << ' ' << (v + 1) << '\n';
    if (!out.good()) {
      throw io_error("write failure while emitting MatrixMarket output", origin);
    }
  }
  if (!out.good()) throw io_error("write failure while emitting MatrixMarket output", origin);
}

/// Path overload: a failed write or flush removes the partial output file
/// (regular files only) before the io_error propagates.
inline void write_matrix_market(const std::string& path, const biedgelist<>& el) {
  std::ofstream out(path);
  if (!out.is_open()) throw io_error("cannot open output file", path);
  try {
    write_matrix_market(out, el, path);
    out.flush();
    if (!out.good()) throw io_error("flush failure while emitting MatrixMarket output", path);
  } catch (...) {
    out.close();
    io_detail::remove_partial_output(path);
    throw;
  }
}

}  // namespace nw::hypergraph
