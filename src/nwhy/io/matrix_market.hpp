// nwhy/io/matrix_market.hpp
//
// Matrix Market I/O for hypergraph incidence matrices.  A hypergraph's
// incidence matrix is generally *rectangular* — rows are hyperedges,
// columns are hypernodes — and the readers here mirror the paper's
// Listing 2 construction APIs:
//
//   graph_reader(path)                       -> biedgelist (two index sets)
//   graph_reader_adjoin(path, nE, nV)        -> single-index-set edge list
//                                               (hypernode ids shifted by nE)
//
// Only the "matrix coordinate {pattern|real|integer} general" dialect is
// supported, which covers the hypergraph corpora the paper uses.
#pragma once

#include <fstream>
#include <sstream>
#include <string>

#include "nwgraph/edge_list.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

namespace detail {

struct mm_header {
  std::size_t rows = 0, cols = 0, nnz = 0;
  bool        pattern = true;
};

inline mm_header read_mm_header(std::istream& in) {
  std::string line;
  NW_ASSERT(static_cast<bool>(std::getline(in, line)), "empty MatrixMarket stream");
  NW_ASSERT(line.rfind("%%MatrixMarket", 0) == 0, "missing MatrixMarket banner");
  mm_header h;
  h.pattern = line.find("pattern") != std::string::npos;
  NW_ASSERT(line.find("coordinate") != std::string::npos,
            "only coordinate MatrixMarket files are supported");
  NW_ASSERT(line.find("general") != std::string::npos || h.pattern,
            "only 'general' symmetry is supported");
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream dims(line);
    NW_ASSERT(static_cast<bool>(dims >> h.rows >> h.cols >> h.nnz),
              "malformed MatrixMarket size line");
    return h;
  }
  NW_ASSERT(false, "MatrixMarket stream ended before the size line");
  return h;
}

}  // namespace detail

/// Read an incidence matrix as a bipartite edge list: entry (r, c) means
/// hyperedge r-1 is incident on hypernode c-1 (MatrixMarket is 1-based).
inline biedgelist<> graph_reader(std::istream& in) {
  auto         h = detail::read_mm_header(in);
  biedgelist<> el(h.rows, h.cols);
  el.reserve(h.nnz);
  std::size_t r = 0, c = 0;
  double      val = 0;
  for (std::size_t i = 0; i < h.nnz; ++i) {
    NW_ASSERT(static_cast<bool>(in >> r >> c), "truncated MatrixMarket entries");
    if (!h.pattern) in >> val;
    NW_ASSERT(r >= 1 && r <= h.rows && c >= 1 && c <= h.cols,
              "MatrixMarket entry out of declared bounds");
    el.push_back(static_cast<vertex_id_t>(r - 1), static_cast<vertex_id_t>(c - 1));
  }
  return el;
}

inline biedgelist<> graph_reader(const std::string& path) {
  std::ifstream in(path);
  NW_ASSERT(in.is_open(), "cannot open MatrixMarket file");
  return graph_reader(in);
}

/// Read directly into the adjoin (single index set) form: hyperedges keep
/// ids [0, nE), hypernodes are shifted to [nE, nE + nV); both incidence
/// directions are emitted so the result is symmetric.  Outputs the
/// partition sizes through the two reference parameters, matching the
/// paper's `graph_reader_adjoin(mm_file, nrealedges, nrealnodes)` call.
inline nw::graph::edge_list<> graph_reader_adjoin(std::istream& in, std::size_t& nrealedges,
                                                  std::size_t& nrealnodes) {
  auto h     = detail::read_mm_header(in);
  nrealedges = h.rows;
  nrealnodes = h.cols;
  nw::graph::edge_list<> el(h.rows + h.cols);
  el.reserve(2 * h.nnz);
  std::size_t r = 0, c = 0;
  double      val = 0;
  for (std::size_t i = 0; i < h.nnz; ++i) {
    NW_ASSERT(static_cast<bool>(in >> r >> c), "truncated MatrixMarket entries");
    if (!h.pattern) in >> val;
    auto e = static_cast<vertex_id_t>(r - 1);
    auto v = static_cast<vertex_id_t>(h.rows + c - 1);
    el.push_back(e, v);
    el.push_back(v, e);
  }
  return el;
}

inline nw::graph::edge_list<> graph_reader_adjoin(const std::string& path,
                                                  std::size_t&       nrealedges,
                                                  std::size_t&       nrealnodes) {
  std::ifstream in(path);
  NW_ASSERT(in.is_open(), "cannot open MatrixMarket file");
  return graph_reader_adjoin(in, nrealedges, nrealnodes);
}

/// Write a biedgelist as a pattern MatrixMarket incidence matrix.
inline void write_matrix_market(std::ostream& out, const biedgelist<>& el) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% hypergraph incidence matrix written by NWHy\n";
  out << el.num_vertices(0) << ' ' << el.num_vertices(1) << ' ' << el.size() << '\n';
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto [e, v] = el[i];
    out << (e + 1) << ' ' << (v + 1) << '\n';
  }
}

inline void write_matrix_market(const std::string& path, const biedgelist<>& el) {
  std::ofstream out(path);
  NW_ASSERT(out.is_open(), "cannot open output file");
  write_matrix_market(out, el);
}

}  // namespace nw::hypergraph
