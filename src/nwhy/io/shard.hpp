// nwhy/io/shard.hpp
//
// Out-of-core access to sharded NWHYCSR2 snapshots (ROADMAP item 2).
// `sharded_snapshot` opens a snapshot whose target streams live in
// hyperedge-range shards (section kinds 11/12, docs/IO_FORMATS.md §4.7) and
// serves ONE shard at a time: the whole file is mapped (virtual address
// space only — nothing is faulted until touched), the directory and the two
// global index sections stay resident, and `load_shard` materializes just
// that shard's three segments.  On the mmap path a loaded shard's payload
// window gets `madvise(MADV_SEQUENTIAL)` and `release_shard` returns the
// pages with `MADV_DONTNEED`, so peak RSS tracks the largest shard plus the
// resident indices instead of the dataset — the property bench_io's >RAM
// gate measures.  The non-mmap fallback seeks and reads each window through
// the file stream into owned buffers, which bounds memory the same way.
//
// Validation split: directory geometry is proven at open
// (`parse_shard_directory`); slice contents (SVB payload geometry,
// sub-index structure, target ranges) are proven per shard at load time —
// a crafted shard throws io_error from `load_shard`, never UB, and never
// costs a full-file scan at open.
#pragma once

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"

namespace nw::hypergraph {

/// One mapped/loaded shard: hyperedge rows [e_begin, e_end) of the E2N CSR
/// plus the shard-local transpose.  Spans stay valid until the shard is
/// released, another shard is loaded, or the owning snapshot is destroyed.
struct shard_view {
  nw::vertex_id_t e_begin = 0;
  nw::vertex_id_t e_end   = 0;
  /// Global E2N index rows [e_begin, e_end] (e_end - e_begin + 1 entries);
  /// subtract `base` (= index[0]) to address `e2n_targets`.
  std::span<const nw::offset_t>    e2n_index;
  std::span<const nw::vertex_id_t> e2n_targets;
  /// Per-shard N2E sub-index: (n1 + 1) offsets delimiting, per hypernode,
  /// its incident edges *within the range* in `n2e_targets`.
  std::span<const nw::offset_t>    sub_index;
  std::span<const nw::vertex_id_t> n2e_targets;

  /// Members of hyperedge `e` (global id, must be in [e_begin, e_end)).
  [[nodiscard]] std::span<const nw::vertex_id_t> edge_row(nw::vertex_id_t e) const {
    const nw::offset_t base = e2n_index[0];
    const std::size_t  i    = e - e_begin;
    return e2n_targets.subspan(static_cast<std::size_t>(e2n_index[i] - base),
                               static_cast<std::size_t>(e2n_index[i + 1] - e2n_index[i]));
  }
  /// Hypernode `v`'s incident edges that fall inside this shard's range.
  [[nodiscard]] std::span<const nw::vertex_id_t> node_row(nw::vertex_id_t v) const {
    return n2e_targets.subspan(static_cast<std::size_t>(sub_index[v]),
                               static_cast<std::size_t>(sub_index[v + 1] - sub_index[v]));
  }
};

/// Shard-granular snapshot reader.  Open cost: header + table + directory
/// validation and one structural pass over the two resident index sections;
/// per-shard cost is paid by load_shard.
class sharded_snapshot {
public:
  explicit sharded_snapshot(const std::string& path) : origin_(path) {
    namespace d = csr_detail;
    NWOBS_SCOPE_TIMER("io.shard_open");
    open_storage(path);
    const auto* base = image();
    auto        h    = d::parse_header(base, file_size_, path);
    n0_ = h.n0;
    n1_ = h.n1;
    m_  = h.m;
    const auto* sdir = h.find(csr_sec_shard_dir);
    const auto* spay = h.find(csr_sec_shard_payload);
    if (sdir == nullptr || spay == nullptr) {
      throw io_error("NWHYCSR2 snapshot has no shard directory (write it with --shards)", path,
                     0, d::header_bytes);
    }
    auto dwords = load_section(*sdir, dir_store_);
    dir_ = d::parse_shard_directory(span_cast<nw::offset_t>(dwords), n0_, n1_, m_, spay->length,
                                    path);
    payload_offset_ = spay->offset;
    payload_length_ = spay->length;
    const auto& si0 = d::require_section(h, csr_sec_e2n_indices,
                                         (n0_ + 1) * sizeof(nw::offset_t), path);
    const auto& si1 = d::require_section(h, csr_sec_n2e_indices,
                                         (n1_ + 1) * sizeof(nw::offset_t), path);
    e2n_idx_ = span_cast<nw::offset_t>(load_section(si0, e2n_idx_store_));
    n2e_idx_ = span_cast<nw::offset_t>(load_section(si1, n2e_idx_store_));
    d::check_index_structure(e2n_idx_, m_, "E2N", path);
    d::check_index_structure(n2e_idx_, m_, "N2E", path);
    for (std::size_t i = 0; i < dir_.size(); ++i) {
      if (dir_[i].count != e2n_idx_[dir_[i].e_end] - e2n_idx_[dir_[i].e_begin]) {
        throw io_error("NWHYCSR2 shard directory: shard " + std::to_string(i) +
                           " incidence count disagrees with the E2N index",
                       path, 0, d::header_bytes);
      }
    }
    if (h.find(csr_sec_relabel_inv) != nullptr) {
      auto inv = span_cast<nw::vertex_id_t>(load_section(
          d::require_section(h, csr_sec_relabel_inv, n0_ * sizeof(nw::vertex_id_t), path),
          relabel_store_));
      d::validate_relabel_inv(inv, n0_, path);
      relabel_inv_ = inv;
    }
    madvise_enabled_ = nw::util::env_u64_strict("NWHY_MADVISE", 1, 0, 1) != 0;
  }

  sharded_snapshot(const sharded_snapshot&)            = delete;
  sharded_snapshot& operator=(const sharded_snapshot&) = delete;

  [[nodiscard]] std::uint64_t num_hyperedges() const { return n0_; }
  [[nodiscard]] std::uint64_t num_hypernodes() const { return n1_; }
  [[nodiscard]] std::uint64_t num_incidences() const { return m_; }
  [[nodiscard]] std::size_t   num_shards() const { return dir_.size(); }
  [[nodiscard]] const csr_detail::shard_entry& shard(std::size_t k) const { return dir_[k]; }
  [[nodiscard]] std::span<const nw::offset_t>  e2n_index() const { return e2n_idx_; }
  [[nodiscard]] std::span<const nw::offset_t>  n2e_index() const { return n2e_idx_; }
  /// kind-13 inverse permutation when the file was written relabeled
  /// (empty otherwise); callers translate traversal answers through it.
  [[nodiscard]] std::span<const nw::vertex_id_t> relabel_inv() const { return relabel_inv_; }

  /// Shard index owning hyperedge `e` (precondition: e < num_hyperedges()).
  [[nodiscard]] std::size_t shard_of(nw::vertex_id_t e) const {
    auto it = std::upper_bound(dir_.begin(), dir_.end(), std::uint64_t{e},
                               [](std::uint64_t v, const csr_detail::shard_entry& s) {
                                 return v < s.e_end;
                               });
    return static_cast<std::size_t>(it - dir_.begin());
  }

  /// Materialize shard `k`, releasing any previously loaded shard first.
  /// Content validation (SVB geometry, sub-index structure, target ranges)
  /// happens here; throws io_error on crafted input.
  [[nodiscard]] shard_view load_shard(std::size_t k) {
    namespace d = csr_detail;
    NW_ASSERT(k < dir_.size(), "shard index out of range");
    release_shard();
    const auto& s   = dir_[k];
    const bool  svb = (s.flags & d::shard_flag_svb) != 0;
    advise_window(s, /*loading=*/true);
    NWOBS_COUNT("shard.bytes_loaded", 0, s.e2n_len + s.sub_len + s.n2e_len);

    shard_view v;
    v.e_begin   = static_cast<nw::vertex_id_t>(s.e_begin);
    v.e_end     = static_cast<nw::vertex_id_t>(s.e_end);
    v.e2n_index = e2n_idx_.subspan(static_cast<std::size_t>(s.e_begin),
                                   static_cast<std::size_t>(s.e_end - s.e_begin) + 1);

    auto sub_bytes = load_payload(s.sub_off, s.sub_len, sub_store_);
    v.sub_index    = span_cast<nw::offset_t>(sub_bytes);
    if (v.sub_index[0] != 0 || v.sub_index[n1_] != s.count) {
      throw payload_error("shard " + std::to_string(k) +
                          " sub-index extents disagree with its incidence count");
    }
    for (std::uint64_t i = 0; i < n1_; ++i) {
      if (v.sub_index[i] > v.sub_index[i + 1]) {
        throw payload_error("shard " + std::to_string(k) +
                            " sub-index is not monotonically non-decreasing");
      }
    }

    if (svb) {
      e2n_scratch_.resize(static_cast<std::size_t>(s.count));
      n2e_scratch_.resize(static_cast<std::size_t>(s.count));
      auto e2n_bytes = load_payload(s.e2n_off, s.e2n_len, e2n_byte_store_);
      auto n2e_bytes = load_payload(s.n2e_off, s.n2e_len, n2e_byte_store_);
      d::decode_shard_slice(e2n_bytes, payload_offset_ + s.e2n_off, true, s.count,
                            e2n_scratch_.data(), origin_);
      d::decode_shard_slice(n2e_bytes, payload_offset_ + s.n2e_off, true, s.count,
                            n2e_scratch_.data(), origin_);
      v.e2n_targets = e2n_scratch_;
      v.n2e_targets = n2e_scratch_;
    } else {
      v.e2n_targets = span_cast<nw::vertex_id_t>(load_payload(s.e2n_off, s.e2n_len,
                                                              e2n_byte_store_));
      v.n2e_targets = span_cast<nw::vertex_id_t>(load_payload(s.n2e_off, s.n2e_len,
                                                              n2e_byte_store_));
    }
    for (auto t : v.e2n_targets) {
      if (t >= n1_) {
        throw payload_error("shard " + std::to_string(k) +
                            " E2N slice holds out-of-range hypernode ids");
      }
    }
    for (auto t : v.n2e_targets) {
      if (t < s.e_begin || t >= s.e_end) {
        throw payload_error("shard " + std::to_string(k) +
                            " N2E slice holds edge ids outside its range");
      }
    }
    loaded_ = static_cast<std::ptrdiff_t>(k);
    return v;
  }

  /// Return the loaded shard's pages to the OS (MADV_DONTNEED on the mmap
  /// path) and drop the fallback buffers.  Idempotent.
  void release_shard() {
    if (loaded_ < 0) return;
    advise_window(dir_[static_cast<std::size_t>(loaded_)], /*loading=*/false);
    e2n_byte_store_.clear();
    n2e_byte_store_.clear();
    sub_store_.clear();
    e2n_scratch_.clear();
    n2e_scratch_.clear();
    loaded_ = -1;
  }

private:
  [[nodiscard]] io_error payload_error(const std::string& msg) const {
    return io_error("NWHYCSR2 shard payload: " + msg, origin_, 0,
                    static_cast<std::size_t>(payload_offset_));
  }

  template <class T>
  static std::span<const T> span_cast(std::span<const unsigned char> bytes) {
    return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
  }

  [[nodiscard]] const unsigned char* image() const {
    return static_cast<const unsigned char*>(storage_.get());
  }

  void open_storage(const std::string& path) {
#if NWHY_HAS_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw io_error("cannot open snapshot", path);
    struct ::stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw io_error("cannot stat snapshot", path);
    }
    file_size_ = static_cast<std::uint64_t>(st.st_size);
    if (file_size_ == 0) {
      ::close(fd);
      throw io_error("truncated NWHYCSR2 snapshot (empty file)", path, 0, 0);
    }
    void* base = ::mmap(nullptr, static_cast<std::size_t>(file_size_), PROT_READ, MAP_PRIVATE,
                        fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) throw io_error("mmap failed on snapshot", path);
    const std::size_t size = static_cast<std::size_t>(file_size_);
    storage_ = std::shared_ptr<const void>(base, [size](const void* p) {
      ::munmap(const_cast<void*>(p), size);
    });
    // Random access by default: load_shard advises its own windows.
    ::madvise(const_cast<void*>(storage_.get()), size, MADV_RANDOM);
#else
    stream_.open(path, std::ios::binary);
    if (!stream_) throw io_error("cannot open snapshot", path);
    stream_.seekg(0, std::ios::end);
    file_size_ = static_cast<std::uint64_t>(stream_.tellg());
    stream_.seekg(0);
    // Only the header + table prefix is slurped; sections read on demand.
    const std::uint64_t prefix = std::min<std::uint64_t>(
        file_size_, csr_detail::header_bytes +
                        csr_detail::max_section_count * csr_detail::table_entry_bytes);
    auto buf = std::make_shared<std::vector<unsigned char>>(static_cast<std::size_t>(prefix));
    stream_.read(reinterpret_cast<char*>(buf->data()), static_cast<std::streamsize>(prefix));
    if (!stream_.good()) throw io_error("truncated NWHYCSR2 snapshot", path, 0, 0);
    prefix_ = buf;
    storage_ = std::shared_ptr<const void>(prefix_, prefix_->data());
#endif
  }

  /// Bytes of a table section: a zero-copy span on the mmap path, an owned
  /// read on the stream path.
  std::span<const unsigned char> load_section(const csr_detail::section_entry& s,
                                              std::vector<unsigned char>& store) {
#if NWHY_HAS_MMAP
    (void)store;
    return {image() + s.offset, static_cast<std::size_t>(s.length)};
#else
    return read_range(s.offset, s.length, store);
#endif
  }

  /// Bytes of one shard segment (offset relative to the payload section).
  std::span<const unsigned char> load_payload(std::uint64_t off, std::uint64_t len,
                                              std::vector<unsigned char>& store) {
#if NWHY_HAS_MMAP
    (void)store;
    return {image() + payload_offset_ + off, static_cast<std::size_t>(len)};
#else
    return read_range(payload_offset_ + off, len, store);
#endif
  }

#if !NWHY_HAS_MMAP
  std::span<const unsigned char> read_range(std::uint64_t off, std::uint64_t len,
                                            std::vector<unsigned char>& store) {
    store.resize(static_cast<std::size_t>(len));
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(off));
    stream_.read(reinterpret_cast<char*>(store.data()), static_cast<std::streamsize>(len));
    if (!stream_.good()) {
      throw io_error("truncated NWHYCSR2 snapshot (section cut short)", origin_, 0,
                     static_cast<std::size_t>(off));
    }
    return store;
  }
#endif

  /// madvise the shard's contiguous payload window: SEQUENTIAL + WILLNEED
  /// ahead of the pass, DONTNEED after it.  The release range is rounded
  /// out to 2 MiB boundaries (clamped to the payload section): sequential
  /// faults map large page-cache folios that spill past the page-rounded
  /// window, and a folio only partially covered by the zap survives it —
  /// left unrounded, every released shard leaks up to 2 MiB and the >RAM
  /// RSS bound erodes shard by shard.  No-op when disabled via
  /// NWHY_MADVISE=0 or on the stream path.
  void advise_window(const csr_detail::shard_entry& s, bool loading) {
#if NWHY_HAS_MMAP
    if (!madvise_enabled_) return;
    const std::uint64_t begin = payload_offset_ + std::min({s.e2n_off, s.sub_off, s.n2e_off});
    const std::uint64_t end   = payload_offset_ + std::max({s.e2n_off + s.e2n_len,
                                                            s.sub_off + s.sub_len,
                                                            s.n2e_off + s.n2e_len});
    const std::uint64_t page  = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    std::uint64_t       lo    = begin / page * page;
    std::uint64_t       hi    = std::min(file_size_, (end + page - 1) / page * page);
    if (!loading) {
      constexpr std::uint64_t folio = std::uint64_t{2} << 20;
      lo = std::max(begin / folio * folio, payload_offset_ / page * page);
      hi = std::min(file_size_, (end + folio - 1) / folio * folio);
    }
    if (hi <= lo) return;
    auto* p = const_cast<unsigned char*>(image() + lo);
    ::madvise(p, static_cast<std::size_t>(hi - lo), loading ? MADV_SEQUENTIAL : MADV_DONTNEED);
    if (loading) ::madvise(p, static_cast<std::size_t>(hi - lo), MADV_WILLNEED);
    NWOBS_COUNT("shard.madvise_windows", 0, 1);
#else
    (void)s;
    (void)loading;
#endif
  }

  std::string                     origin_;
  std::uint64_t                   file_size_ = 0;
  std::uint64_t                   n0_ = 0, n1_ = 0, m_ = 0;
  std::uint64_t                   payload_offset_ = 0, payload_length_ = 0;
  std::shared_ptr<const void>     storage_;
#if !NWHY_HAS_MMAP
  std::ifstream                              stream_;
  std::shared_ptr<std::vector<unsigned char>> prefix_;
#endif
  std::vector<csr_detail::shard_entry> dir_;
  std::span<const nw::offset_t>        e2n_idx_;
  std::span<const nw::offset_t>        n2e_idx_;
  std::span<const nw::vertex_id_t>     relabel_inv_;
  std::vector<unsigned char> dir_store_, e2n_idx_store_, n2e_idx_store_, relabel_store_;
  std::vector<unsigned char> e2n_byte_store_, n2e_byte_store_, sub_store_;
  std::vector<nw::vertex_id_t> e2n_scratch_, n2e_scratch_;
  std::ptrdiff_t               loaded_          = -1;
  bool                         madvise_enabled_ = true;
};

}  // namespace nw::hypergraph
