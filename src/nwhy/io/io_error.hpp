// nwhy/io/io_error.hpp
//
// Recoverable, context-carrying error type for the I/O subsystem.  The
// historical readers killed the process through NW_ASSERT on any malformed
// input; a production ingest path must instead surface *where* the input is
// broken (file, line, byte offset) and leave the process healthy, so the
// caller — nwhy_tool, a binding, a service loop — can report the defect and
// move on.  Every reader under nwhy/io/ throws io_error; nothing in this
// subsystem aborts on bad data (programming errors still NW_ASSERT).
//
// what() renders the full context in one line:
//
//   data.mtx:17: MatrixMarket entry out of declared bounds (byte 212)
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

namespace nw::hypergraph {

class io_error : public std::runtime_error {
public:
  /// `npos` marks "no byte offset" (e.g. a failed open carries no position).
  static constexpr std::uint64_t npos = static_cast<std::uint64_t>(-1);

  explicit io_error(std::string message, std::string file = {}, std::size_t line = 0,
                    std::uint64_t byte_offset = npos)
      : std::runtime_error(render(message, file, line, byte_offset)),
        message_(std::move(message)),
        file_(std::move(file)),
        line_(line),
        byte_offset_(byte_offset) {}

  /// The bare defect description, without location prefix.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  /// Originating file path, or empty for in-memory streams.
  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  /// 1-based line number in the source text; 0 when not line-addressable
  /// (binary formats report byte offsets only).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  /// Byte offset of the defect from the start of the input; npos if unknown.
  [[nodiscard]] std::uint64_t byte_offset() const noexcept { return byte_offset_; }

private:
  static std::string render(const std::string& message, const std::string& file,
                            std::size_t line, std::uint64_t byte_offset) {
    std::string out;
    if (!file.empty()) {
      out += file;
      out += ':';
    }
    if (line != 0) {
      out += std::to_string(line);
      out += ':';
    }
    if (!out.empty()) out += ' ';
    out += message;
    if (byte_offset != npos) {
      out += " (byte ";
      out += std::to_string(byte_offset);
      out += ')';
    }
    return out;
  }

  std::string   message_;
  std::string   file_;
  std::size_t   line_;
  std::uint64_t byte_offset_;
};

namespace io_detail {

/// 1-based line number of `offset` within `text` — computed lazily, only on
/// the error path, so the parsers never pay per-line bookkeeping.
inline std::size_t line_number_at(std::string_view text, std::uint64_t offset) {
  if (offset > text.size()) offset = text.size();
  std::size_t line = 1;
  for (std::uint64_t i = 0; i < offset; ++i) line += text[i] == '\n';
  return line;
}

/// Best-effort removal of a partially-written output file after a failed
/// write, so a truncated snapshot is never left behind masquerading as a
/// valid one.  Only *regular files* are removed: writers can legitimately
/// point at /dev/null, /dev/full (the ENOSPC test target) or a pipe, and
/// unlinking those — especially as root — would destroy something that is
/// not ours.  Failure to remove is swallowed: the caller is already
/// propagating the original io_error, which is the diagnosis that matters.
inline void remove_partial_output(const std::string& path) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) return;
#endif
  std::remove(path.c_str());
}

}  // namespace io_detail

}  // namespace nw::hypergraph
