// nwhy/io/text_input.hpp
//
// Shared low-level machinery of the text ingest paths: whole-file slurping
// (one read, one allocation — the input to the parallel parsers) and
// allocation-free field scanning over raw character ranges.  The scanners
// replace the istream/istringstream per-line round trips of the original
// readers: std::from_chars over a char window is ~20x cheaper than
// `std::istringstream >> x` and never touches locales.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "nwhy/io/io_error.hpp"
#include "nwobs/counters.hpp"

namespace nw::hypergraph::io_detail {

/// Slurp a whole file into a string (binary mode: offsets reported in
/// errors must match what `dd`/`xxd` show).  Throws io_error on open or
/// read failure.
inline std::string read_file_to_string(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw io_error("cannot open file", path);
  std::string text;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    std::size_t got = std::fread(text.data(), 1, text.size(), f);
    if (got != text.size()) {
      std::fclose(f);
      throw io_error("short read (file changed mid-read?)", path, 0, got);
    }
  }
  std::fclose(f);
  NWOBS_COUNT("io.parse_bytes", 0, text.size());
  return text;
}

/// A scanning cursor over one line (or any char window).  All methods are
/// bounds-checked against `end`; failures surface as `false` returns so the
/// caller can attach file/line/offset context.
struct field_cursor {
  const char* cur;
  const char* end;

  /// Skip spaces and tabs (not newlines — line structure is the caller's).
  void skip_blanks() {
    while (cur < end && (*cur == ' ' || *cur == '\t' || *cur == '\r')) ++cur;
  }

  [[nodiscard]] bool at_end() {
    skip_blanks();
    return cur >= end;
  }

  /// Parse one unsigned decimal field.  Returns false when the next
  /// non-blank run is not a number.
  [[nodiscard]] bool parse_u64(std::uint64_t& out) {
    skip_blanks();
    auto [ptr, ec] = std::from_chars(cur, end, out);
    if (ec != std::errc{} || ptr == cur) return false;
    cur = ptr;
    return true;
  }

  /// Parse one signed decimal field (KONECT ids may be written with signs).
  [[nodiscard]] bool parse_i64(std::int64_t& out) {
    skip_blanks();
    auto [ptr, ec] = std::from_chars(cur, end, out);
    if (ec != std::errc{} || ptr == cur) return false;
    cur = ptr;
    return true;
  }
};

/// Trim a single line to its content: drop a trailing '\r' (CRLF corpora)
/// and leading blanks; returns the content view.
inline std::string_view line_content(std::string_view text, std::size_t begin,
                                     std::size_t end) {
  while (end > begin && (text[end - 1] == '\r' || text[end - 1] == '\n')) --end;
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  return text.substr(begin, end - begin);
}

}  // namespace nw::hypergraph::io_detail
