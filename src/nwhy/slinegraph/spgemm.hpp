// nwhy/slinegraph/spgemm.hpp
//
// The algebraic construction route (paper Sec. III-B.1a): the s-line graph
// is the thresholded upper triangle of B·Bᵗ, and the clique expansion is
// the thresholded upper triangle of Bᵗ·B, where B is the (rectangular)
// incidence matrix.  Exists both as a correctness oracle for the
// combinatorial algorithms and to quantify the cost of the general matrix
// route against the specialized kernels (`bench_ablation_spgemm`).
#pragma once

#include <vector>

#include "nwgraph/edge_list.hpp"
#include "nwgraph/sparse/csr_matrix.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Extract {i, j} pairs (i < j) whose product entry is >= s.
inline nw::graph::edge_list<> threshold_upper_triangle(
    const nw::sparse::csr_matrix<std::uint32_t>& product, std::size_t s) {
  nw::graph::edge_list<> out(product.num_rows());
  for (std::size_t i = 0; i < product.num_rows(); ++i) {
    auto cols = product.row_columns(i);
    auto vals = product.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] > i && vals[k] >= s) {
        out.push_back(static_cast<vertex_id_t>(i), cols[k]);
      }
    }
  }
  return out;
}

/// s-line graph via SpGEMM: L_s(H) = upper(B·Bᵗ >= s).
inline nw::graph::edge_list<> to_two_graph_spgemm(const biedgelist<>& el, std::size_t s) {
  auto b  = nw::sparse::csr_matrix<std::uint32_t>::from_incidence(el);
  auto bt = b.transpose();
  return threshold_upper_triangle(b.multiply(bt), s);
}

/// Clique expansion via SpGEMM: upper(Bᵗ·B >= 1).
inline nw::graph::edge_list<> clique_expansion_spgemm(const biedgelist<>& el) {
  auto b  = nw::sparse::csr_matrix<std::uint32_t>::from_incidence(el);
  auto bt = b.transpose();
  return threshold_upper_triangle(bt.multiply(b), 1);
}

}  // namespace nw::hypergraph
