// nwhy/slinegraph/weighted.hpp
//
// Weighted s-line graph construction: like the hashmap algorithm, but each
// surviving line-graph edge carries its exact overlap size |e_i ∩ e_j|.
// The overlap is the "strength of the connection" the paper's Fig. 5
// renders as edge width; keeping it enables weighted s-walk analytics
// (weighted s-distance via SSSP) and thresholding a single weighted 1-line
// graph into every s-line graph without reconstruction.
#pragma once

#include <cstdint>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/algorithms/sssp.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

/// Edge list of {e_i, e_j, |e_i ∩ e_j|} for all pairs with overlap >= s.
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::edge_list<std::uint32_t> to_two_graph_weighted(
    const EGraph& edges, const NGraph& nodes, const std::vector<std::size_t>& edge_degrees,
    std::size_t s, Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.weighted");
  const std::size_t ne = edges.size();
  // entry == edge_list<uint32_t>::value_type: (e_i, e_j, |e_i ∩ e_j|).
  using entry = nw::graph::edge_list<std::uint32_t>::value_type;
  par::per_thread<std::vector<entry>>  out;
  par::per_thread<counting_hashmap<>>  maps;
  par::parallel_for(
      0, ne,
      [&](unsigned tid, std::size_t i) {
        vertex_id_t ei = static_cast<vertex_id_t>(i);
        if (edge_degrees[ei] < s) return;
        auto& overlap = maps.local(tid);
        overlap.clear();
        for (auto&& ev : edges[i]) {
          for (auto&& ve : nodes[target(ev)]) {
            vertex_id_t ej = target(ve);
            if (ej > ei && edge_degrees[ej] >= s) overlap.increment(ej);
          }
        }
        overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
          if (n >= s) out.local(tid).push_back({ei, ej, n});
        });
      },
      part);
  // Bulk SoA materialization (parallel scan + scatter; the weight column
  // rides along with the endpoints).
  {
    NWOBS_SCOPE_TIMER("slinegraph.merge");
    return nw::graph::edge_list<std::uint32_t>::from_thread_buffers(out, ne);
  }
}

/// Threshold a weighted 1-line edge list into the (unweighted) s-line edge
/// list for a larger s — no recomputation of overlaps.
inline nw::graph::edge_list<> threshold_weighted(
    const nw::graph::edge_list<std::uint32_t>& weighted, std::size_t s) {
  nw::graph::edge_list<> out(weighted.num_vertices());
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    auto [a, b, w] = weighted[i];
    if (w >= s) out.push_back(a, b);
  }
  return out;
}

/// Convert a weighted s-line edge list into a symmetric CSR whose edge
/// weights are *costs*: cost = 1 / overlap, so strongly-overlapping
/// hyperedges are "close".  Feeds the weighted s-distance below.
inline nw::graph::adjacency<float> weighted_linegraph_csr(
    const nw::graph::edge_list<std::uint32_t>& weighted, std::size_t num_entities) {
  nw::graph::edge_list<float> costs(num_entities);
  costs.reserve(2 * weighted.size());
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    auto [a, b, w] = weighted[i];
    float cost     = 1.0f / static_cast<float>(w);
    costs.push_back(a, b, cost);
    costs.push_back(b, a, cost);
  }
  return nw::graph::adjacency<float>(costs, num_entities);
}

/// Overlap-weighted s-distance between two hyperedges: the cheapest s-walk
/// where each step costs 1/|e_i ∩ e_j| (strong overlaps shorten the walk).
/// Computed with delta-stepping on the weighted line graph; infinity
/// (std::numeric_limits<float>::max()) when unreachable.
inline float weighted_s_distance(const nw::graph::adjacency<float>& weighted_csr,
                                 vertex_id_t src, vertex_id_t dst, float delta = 0.25f) {
  auto dist = nw::graph::sssp_delta_stepping(weighted_csr, src, delta);
  return dist[dst];
}

}  // namespace nw::hypergraph
