// nwhy/slinegraph/construction.hpp
//
// s-line graph construction (paper Sec. III-B.4 / III-C.3).  Given a
// hypergraph H, the s-line graph L_s(H) has one vertex per hyperedge and an
// edge {e_i, e_j} whenever |e_i ∩ e_j| >= s.  Six parallel construction
// algorithms are provided:
//
//   to_two_graph_naive             all-pairs set intersection (reference)
//   to_two_graph_intersection     indirection + per-edge dedup + early-exit
//                                  set intersection (HiPC'21 heuristic)
//   to_two_graph_hashmap          per-source overlap counting in a private
//                                  hashmap (IPDPS'22)
//   to_two_graph_ensemble         one counting pass emitting L_s for a whole
//                                  vector of s values (IPDPS'22 ensemble)
//   to_two_graph_queue_hashmap    *Algorithm 1*: the hashmap algorithm over
//                                  an explicit work queue of hyperedge ids
//   to_two_graph_queue_intersection  *Algorithm 2*: two-phase — enqueue
//                                  eligible pairs, then set-intersect each
//
// The queue-based algorithms accept any id set (original, permuted by
// degree, or adjoin single-index ids) — that versatility is their point.
// Every function is generic over two graph-like structures:
//   edges: hyperedge id -> incident hypernode ids
//   nodes: hypernode id -> incident hyperedge ids
// For the bipartite representation these are biadjacency<0>/<1>; for the
// adjoin representation, pass the same adjoin CSR as both (hypernode
// neighborhoods are hyperedge ids and vice versa by construction).
// Dually, swapping the roles of edges/nodes yields the s-clique graph, whose
// s = 1 case is the clique expansion.
//
// All functions return an edge list containing each line-graph edge once,
// as {min(e_i, e_j), max(e_i, e_j)} pairs in whatever id space the inputs
// use.  Neighbor lists must be sorted ascending (the intersection variants
// rely on it); biadjacency built from a sort_and_unique'd biedgelist
// satisfies this.
//
// Materialization pipeline (this header's tail): every algorithm fills
// per-thread pair buffers, which are drained by one of two parallel bulk
// paths — edge_list::from_thread_buffers (size scan + parallel SoA
// scatter) for the edge-list-returning entry points, or
// adjacency<>::from_unique_undirected_pairs (parallel degree histogram +
// scan + scatter + per-row sort) for the *_csr entry points that skip the
// edge_list round-trip entirely.  Both run under the `slinegraph.merge` /
// `slinegraph.csr_build` phase timers, and both leave the (process-wide,
// reused) per-thread buffers with their capacity intact so bench loops,
// the ensemble and implicit s-BFS do not re-fault pages every call.
#pragma once

#include <memory>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/concepts.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwpar/partitioners.hpp"
#include "nwpar/range_adaptors.hpp"
#include "nwpar/work_stealing.hpp"  // the stealing partitioner is also accepted
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

using nw::graph::target;
using nw::vertex_id_t;

/// |a ∩ b| for two sorted ranges, stopping once `cap` common elements are
/// found (pass s: the caller only needs to know whether the overlap
/// reaches s).
template <class R1, class R2>
std::size_t intersection_size(R1&& a, R2&& b, std::size_t cap = static_cast<std::size_t>(-1)) {
  std::size_t count = 0;
  auto        it1 = a.begin();
  auto        it2 = b.begin();
  while (it1 != a.end() && it2 != b.end()) {
    vertex_id_t x = target(*it1);
    vertex_id_t y = target(*it2);
    if (x < y) {
      ++it1;
    } else if (y < x) {
      ++it2;
    } else {
      if (++count >= cap) return count;
      ++it1;
      ++it2;
    }
  }
  return count;
}

namespace detail {

/// Default work list: all hyperedge ids [0, n).
inline std::vector<vertex_id_t> iota_queue(std::size_t n) {
  std::vector<vertex_id_t> q(n);
  std::iota(q.begin(), q.end(), vertex_id_t{0});
  return q;
}

/// Fill an externally-owned queue in place (no allocation, no copy):
/// callers that already hold storage — a bench harness's scratch array, a
/// pybind-provided buffer — pass a span instead of copying into a fresh
/// vector.  Ids start at `first`.
inline void iota_queue(std::span<vertex_id_t> q, vertex_id_t first = 0) {
  std::iota(q.begin(), q.end(), first);
}

using pair_t = std::pair<vertex_id_t, vertex_id_t>;

/// Process-wide reusable per-thread pair buffers for the construction
/// algorithms.  Construction calls are serial at the top level (the thread
/// pool's fork-join dispatch is not reentrant, so two constructions never
/// run concurrently) — which makes a per-process scratch safe and lets
/// repeated calls reuse the grown thread-local allocations instead of
/// re-faulting pages every benchmark iteration.  Slot 0 is the emit
/// buffer; slot 1 is Algorithm 2's phase-1 candidate queue (alive at the
/// same time as slot 0).  Rebuilt when the default pool is resized.
inline par::per_thread<std::vector<pair_t>>& pair_buffers(unsigned slot) {
  static std::unique_ptr<par::per_thread<std::vector<pair_t>>> scratch[2];
  auto& pool = par::thread_pool::default_pool();
  auto& s    = scratch[slot];
  if (!s || s->size() != pool.concurrency()) {
    s = std::make_unique<par::per_thread<std::vector<pair_t>>>(pool);
  }
  s->for_each([](std::vector<pair_t>& v) { v.clear(); });  // stay clear even after exceptions
  return *s;
}

/// Parallel bulk materialization of per-thread pair buffers into an
/// edge_list (no serial per-element loop; buffers keep their capacity).
inline nw::graph::edge_list<> materialize_edge_list(par::per_thread<std::vector<pair_t>>& out,
                                                    std::size_t id_bound) {
  NWOBS_SCOPE_TIMER("slinegraph.merge");
  return nw::graph::edge_list<>::from_thread_buffers(out, id_bound,
                                                     par::merge_capacity::keep);
}

/// Parallel direct CSR materialization: per-thread pair buffers ->
/// symmetric sorted adjacency, skipping the edge_list round-trip.
inline nw::graph::adjacency<> materialize_csr(par::per_thread<std::vector<pair_t>>& out,
                                              std::size_t id_bound) {
  NWOBS_SCOPE_TIMER("slinegraph.csr_build");
  return nw::graph::adjacency<>::from_unique_undirected_pairs(out, id_bound,
                                                              par::merge_capacity::keep);
}

}  // namespace detail

/// Reference algorithm: test every pair of hyperedges.  O(nE² · d); used by
/// the correctness tests as ground truth and by the Fig. 9 harness on the
/// smallest input only.
template <class EGraph, class NGraph>
nw::graph::edge_list<> to_two_graph_naive(const EGraph& edges, const NGraph& nodes,
                                          const std::vector<std::size_t>& edge_degrees,
                                          std::size_t s) {
  (void)nodes;
  NWOBS_SCOPE_TIMER("slinegraph.naive");
  const std::size_t ne  = edges.size();
  auto&             out = detail::pair_buffers(0);
  par::parallel_for(0, ne, [&](unsigned tid, std::size_t i) {
    if (edge_degrees[i] < s) return;
    std::size_t candidates = 0, emitted = 0;
    for (std::size_t j = i + 1; j < ne; ++j) {
      if (edge_degrees[j] < s) continue;
      ++candidates;
      if (intersection_size(edges[i], edges[j], s) >= s) {
        out.local(tid).push_back({static_cast<vertex_id_t>(i), static_cast<vertex_id_t>(j)});
        ++emitted;
      }
    }
    NWOBS_COUNT("slinegraph.candidate_pairs", tid, candidates);
    NWOBS_COUNT("slinegraph.pairs_emitted", tid, emitted);
  });
  return detail::materialize_edge_list(out, ne);
}

namespace detail {

/// Shared discovery kernel of the intersection-style algorithms: fill the
/// per-thread buffers with every candidate/verified pair of `ei` seen
/// through a shared hypernode.  `Verify` decides whether to run the
/// early-exit intersection before emitting.
template <bool Verify, class EGraph, class NGraph>
void intersect_process_edge(const EGraph& edges, const NGraph& nodes,
                            const std::vector<std::size_t>& edge_degrees, std::size_t s,
                            vertex_id_t ei, unsigned tid, std::vector<vertex_id_t>& seen,
                            std::vector<pair_t>& out) {
  if (edge_degrees[ei] < s) return;
  std::size_t candidates = 0, emitted = 0;
  for (auto&& ev : edges[ei]) {
    vertex_id_t v = target(ev);
    for (auto&& ve : nodes[v]) {
      vertex_id_t ej = target(ve);
      if (ej <= ei || edge_degrees[ej] < s) continue;
      if (seen[ej] == ei) continue;  // pair already handled via another shared node
      seen[ej] = ei;
      ++candidates;
      if constexpr (Verify) {
        if (intersection_size(edges[ei], edges[ej], s) >= s) {
          out.push_back({ei, ej});
          ++emitted;
        }
      } else {
        out.push_back({ei, ej});
      }
    }
  }
  NWOBS_COUNT("slinegraph.candidate_pairs", tid, candidates);
  if constexpr (Verify) NWOBS_COUNT("slinegraph.pairs_emitted", tid, emitted);
}

}  // namespace detail

/// HiPC'21 set-intersection heuristic with the indirection pattern
/// "for each e_i, for each v in e_i, for each e_j in v": candidate
/// neighbors are discovered through shared hypernodes (skipping the
/// quadratic pair scan), deduplicated with a per-thread last-seen stamp,
/// then verified by an early-exit set intersection.
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::edge_list<> to_two_graph_intersection(const EGraph& edges, const NGraph& nodes,
                                                 const std::vector<std::size_t>& edge_degrees,
                                                 std::size_t s, std::size_t id_bound = 0,
                                                 Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.intersection");
  const std::size_t ne    = edges.size();
  const std::size_t bound = id_bound != 0 ? id_bound : ne;
  auto&             out   = detail::pair_buffers(0);
  par::per_thread<std::vector<vertex_id_t>> stamps;
  stamps.for_each([&](std::vector<vertex_id_t>& v) { v.assign(bound, nw::null_vertex<>); });

  par::parallel_for(
      0, ne,
      [&](unsigned tid, std::size_t i) {
        detail::intersect_process_edge<true>(edges, nodes, edge_degrees, s,
                                             static_cast<vertex_id_t>(i), tid,
                                             stamps.local(tid), out.local(tid));
      },
      part);
  return detail::materialize_edge_list(out, bound);
}

namespace detail {

/// Shared kernel of the hashmap-counting algorithms: process one hyperedge
/// `ei`, counting overlaps with every larger-id hyperedge reachable through
/// a shared hypernode, then emit pairs whose count reaches s.
/// `tid` is the worker id, used only for the observability counters
/// (hashmap probes, candidate pairs = distinct keys counted, pairs emitted).
template <class EGraph, class NGraph>
void hashmap_process_edge(const EGraph& edges, const NGraph& nodes,
                          const std::vector<std::size_t>& edge_degrees, std::size_t s,
                          vertex_id_t ei, unsigned tid, counting_hashmap<>& overlap,
                          std::vector<std::pair<vertex_id_t, vertex_id_t>>& out) {
  (void)tid;
  if (edge_degrees[ei] < s) return;
  overlap.clear();
  std::size_t probes = 0;
  for (auto&& ev : edges[ei]) {
    vertex_id_t v = target(ev);
    for (auto&& ve : nodes[v]) {
      vertex_id_t ej = target(ve);
      if (ej > ei && edge_degrees[ej] >= s) {
        overlap.increment(ej);
        ++probes;
      }
    }
  }
  std::size_t emitted = 0;
  overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
    if (n >= s) {
      out.push_back({ei, ej});
      ++emitted;
    }
  });
  NWOBS_COUNT("slinegraph.hashmap_probes", tid, probes);
  NWOBS_COUNT("slinegraph.candidate_pairs", tid, overlap.size());
  NWOBS_COUNT("slinegraph.pairs_emitted", tid, emitted);
}

/// Counting phase of the hashmap algorithm: fills (and returns) the
/// process-wide per-thread pair buffers.  Shared by the edge-list and
/// direct-CSR entry points.
template <class EGraph, class NGraph, class Partition>
par::per_thread<std::vector<pair_t>>& hashmap_collect(
    const EGraph& edges, const NGraph& nodes, const std::vector<std::size_t>& edge_degrees,
    std::size_t s, Partition part) {
  const std::size_t ne  = edges.size();
  auto&             out = pair_buffers(0);
  par::per_thread<counting_hashmap<>> maps;
  par::parallel_for(
      0, ne,
      [&](unsigned tid, std::size_t i) {
        hashmap_process_edge(edges, nodes, edge_degrees, s, static_cast<vertex_id_t>(i), tid,
                             maps.local(tid), out.local(tid));
      },
      part);
  return out;
}

}  // namespace detail

/// IPDPS'22 hashmap-counting algorithm: iterates hyperedges [0, nE)
/// directly (contiguous-id assumption the queue variant removes).
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::edge_list<> to_two_graph_hashmap(const EGraph& edges, const NGraph& nodes,
                                            const std::vector<std::size_t>& edge_degrees,
                                            std::size_t s, Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.hashmap");
  auto& out = detail::hashmap_collect(edges, nodes, edge_degrees, s, part);
  return detail::materialize_edge_list(out, edges.size());
}

/// Hashmap algorithm materialized straight to the symmetric CSR the
/// s_linegraph object wants — no intermediate edge_list, no symmetrize, no
/// global sort.  Identical edge set to
/// adjacency<>(sort_and_unique(symmetrize(to_two_graph_hashmap(...)))).
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::adjacency<> to_two_graph_hashmap_csr(const EGraph& edges, const NGraph& nodes,
                                                const std::vector<std::size_t>& edge_degrees,
                                                std::size_t s, Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.hashmap");
  auto& out = detail::hashmap_collect(edges, nodes, edge_degrees, s, part);
  return detail::materialize_csr(out, edges.size());
}

/// **Algorithm 1** (paper): single-phase queue-based hashmap counting.  The
/// hyperedge ids to process arrive in an explicit work queue, so the ids
/// may be original, permuted by degree, or adjoin-graph ids — no
/// contiguous-[0, nE) assumption.  `id_bound` is an exclusive upper bound on
/// the ids (used to size the output's vertex count).
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::edge_list<> to_two_graph_queue_hashmap(std::span<const vertex_id_t> queue,
                                                  const EGraph& edges, const NGraph& nodes,
                                                  const std::vector<std::size_t>& edge_degrees,
                                                  std::size_t s, std::size_t id_bound,
                                                  Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.queue_hashmap");
  NWOBS_GAUGE_MAX("slinegraph.alg1_queue_occupancy", queue.size());
  auto& out = detail::pair_buffers(0);
  par::per_thread<counting_hashmap<>> maps;
  par::parallel_for(
      0, queue.size(),
      [&](unsigned tid, std::size_t qi) {
        detail::hashmap_process_edge(edges, nodes, edge_degrees, s, queue[qi], tid,
                                     maps.local(tid), out.local(tid));
      },
      part);
  return detail::materialize_edge_list(out, id_bound);
}

/// **Algorithm 2** (paper): two-phase queue-based set intersection.
/// Phase 1 discovers eligible pairs through shared hypernodes and enqueues
/// them (per-thread queues, merged).  Phase 2 is a flat parallel loop of
/// set intersections over the pair queue — one loop, fine-grained units,
/// hence the better load-balance potential the paper claims.
template <class EGraph, class NGraph, class Partition = par::blocked>
nw::graph::edge_list<> to_two_graph_queue_intersection(
    std::span<const vertex_id_t> queue, const EGraph& edges, const NGraph& nodes,
    const std::vector<std::size_t>& edge_degrees, std::size_t s, std::size_t id_bound,
    Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.queue_intersection");
  NWOBS_GAUGE_MAX("slinegraph.alg2_queue_occupancy", queue.size());
  // Phase 1: enqueue candidate pairs.  Candidate discovery is attributed to
  // the worker that found it (per-thread counts, merged on read) — the
  // intersect kernel's candidate counter covers this.
  auto& pair_queues = detail::pair_buffers(1);
  par::per_thread<std::vector<vertex_id_t>> stamps;
  stamps.for_each([&](std::vector<vertex_id_t>& v) { v.assign(id_bound, nw::null_vertex<>); });
  par::parallel_for(
      0, queue.size(),
      [&](unsigned tid, std::size_t qi) {
        detail::intersect_process_edge<false>(edges, nodes, edge_degrees, s, queue[qi], tid,
                                              stamps.local(tid), pair_queues.local(tid));
      },
      part);
  auto pairs = par::merge_thread_vectors(pair_queues, par::merge_capacity::keep);
  // Phase-2 work-queue occupancy (pairs that survived phase-1 discovery and
  // must now be verified).
  NWOBS_GAUGE_MAX("slinegraph.alg2_pair_queue_occupancy", pairs.size());

  // Phase 2: one flat loop of early-exit set intersections.
  auto& out = detail::pair_buffers(0);
  par::parallel_for(
      0, pairs.size(),
      [&](unsigned tid, std::size_t k) {
        auto [ei, ej] = pairs[k];
        if (intersection_size(edges[ei], edges[ej], s) >= s) {
          out.local(tid).push_back({ei, ej});
          NWOBS_COUNT("slinegraph.pairs_emitted", tid, 1);
        }
      },
      part);
  return detail::materialize_edge_list(out, id_bound);
}

/// IPDPS'22 ensemble algorithm: one counting pass over the hypergraph
/// produces L_s for *every* s in `s_values` (sorted ascending not required).
/// Returns one edge list per requested s, in the same order.
template <class EGraph, class NGraph, class Partition = par::blocked>
std::vector<nw::graph::edge_list<>> to_two_graph_ensemble(
    const EGraph& edges, const NGraph& nodes, const std::vector<std::size_t>& edge_degrees,
    const std::vector<std::size_t>& s_values, Partition part = {}) {
  NWOBS_SCOPE_TIMER("slinegraph.ensemble");
  const std::size_t ne    = edges.size();
  std::size_t       s_min = static_cast<std::size_t>(-1);
  for (auto s : s_values) s_min = std::min(s_min, s);
  const std::size_t k = s_values.size();

  using pair_t = std::pair<vertex_id_t, vertex_id_t>;
  par::per_thread<std::vector<std::vector<pair_t>>> out;
  out.for_each([&](std::vector<std::vector<pair_t>>& v) { v.resize(k); });
  par::per_thread<counting_hashmap<>> maps;

  par::parallel_for(
      0, ne,
      [&](unsigned tid, std::size_t i) {
        vertex_id_t ei = static_cast<vertex_id_t>(i);
        if (edge_degrees[ei] < s_min) return;
        auto& overlap = maps.local(tid);
        overlap.clear();
        for (auto&& ev : edges[ei]) {
          vertex_id_t v = target(ev);
          for (auto&& ve : nodes[v]) {
            vertex_id_t ej = target(ve);
            if (ej > ei && edge_degrees[ej] >= s_min) overlap.increment(ej);
          }
        }
        auto& locals = out.local(tid);
        overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
          for (std::size_t si = 0; si < k; ++si) {
            if (n >= s_values[si] && edge_degrees[ei] >= s_values[si] &&
                edge_degrees[ej] >= s_values[si]) {
              locals[si].push_back({ei, ej});
            }
          }
        });
      },
      part);

  // Materialize each requested s by buffer-granular bulk appends (each
  // append_bulk is itself a parallel SoA scatter — no per-element loop).
  std::vector<nw::graph::edge_list<>> results;
  results.reserve(k);
  {
    NWOBS_SCOPE_TIMER("slinegraph.merge");
    for (std::size_t si = 0; si < k; ++si) {
      std::size_t total = 0;
      out.for_each([&](const std::vector<std::vector<pair_t>>& v) { total += v[si].size(); });
      nw::graph::edge_list<> el(ne);
      el.reserve(total);
      out.for_each([&](std::vector<std::vector<pair_t>>& v) { el.append_bulk(v[si]); });
      results.push_back(std::move(el));
    }
  }
  return results;
}

/// Hashmap counting driven by the cyclic_neighbor_range adaptor (paper
/// Listing 4, third style): bins of (hyperedge, neighborhood) tuples are
/// handed to threads whole, so the kernel never re-indexes the outer
/// structure.  Produces the same edge set as to_two_graph_hashmap.
template <class EGraph, class NGraph>
nw::graph::edge_list<> to_two_graph_neighbor_range(const EGraph& edges, const NGraph& nodes,
                                                   const std::vector<std::size_t>& edge_degrees,
                                                   std::size_t s, std::size_t num_bins = 0) {
  NWOBS_SCOPE_TIMER("slinegraph.neighbor_range");
  const std::size_t ne  = edges.size();
  auto&             out = detail::pair_buffers(0);
  par::per_thread<counting_hashmap<>> maps;
  par::for_each_cyclic_neighborhood(
      edges, num_bins, [&](unsigned tid, std::size_t i, auto&& neighborhood) {
        vertex_id_t ei = static_cast<vertex_id_t>(i);
        if (edge_degrees[ei] < s) return;
        auto& overlap = maps.local(tid);
        overlap.clear();
        for (auto&& ev : neighborhood) {
          for (auto&& ve : nodes[target(ev)]) {
            vertex_id_t ej = target(ve);
            if (ej > ei && edge_degrees[ej] >= s) overlap.increment(ej);
          }
        }
        overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
          if (n >= s) out.local(tid).push_back({ei, ej});
        });
      });
  return detail::materialize_edge_list(out, ne);
}

/// Paper Listing 2 convenience spelling: the hashmap algorithm with the
/// cyclic partitioning strategy.  `num_threads` is accepted for interface
/// fidelity but the pool's configured concurrency governs execution.
template <class EGraph, class NGraph>
nw::graph::edge_list<> to_two_graph_hashmap_cyclic(const EGraph& edges, const NGraph& nodes,
                                                   const std::vector<std::size_t>& edge_degrees,
                                                   std::size_t s, std::size_t num_threads,
                                                   std::size_t num_bins) {
  (void)num_threads;
  return to_two_graph_hashmap(edges, nodes, edge_degrees, s, par::cyclic{num_bins});
}

/// Clique expansion (Sec. III-B.3) = the 1-line graph of the dual: vertices
/// are hypernodes, with an edge between every pair of hypernodes sharing a
/// hyperedge.  Known to blow up on large hyperedges — that cost is the
/// motivation for s-line graphs, and the Fig. 9 harness measures it.
template <class NGraph, class EGraph>
nw::graph::edge_list<> clique_expansion(const NGraph& nodes, const EGraph& edges,
                                        const std::vector<std::size_t>& node_degrees) {
  return to_two_graph_hashmap(nodes, edges, node_degrees, 1);
}

/// Clique expansion materialized straight to a symmetric CSR (the
/// representation every consumer wants) through the direct pipeline.
template <class NGraph, class EGraph>
nw::graph::adjacency<> clique_expansion_csr(const NGraph& nodes, const EGraph& edges,
                                            const std::vector<std::size_t>& node_degrees) {
  return to_two_graph_hashmap_csr(nodes, edges, node_degrees, 1);
}

}  // namespace nw::hypergraph
