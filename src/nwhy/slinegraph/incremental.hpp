// nwhy/slinegraph/incremental.hpp
//
// Incrementally-maintained derived structures for the dynamic hypergraph
// engine (ROADMAP item 1).  Rebuilding an s-line graph or the toplex set
// after every small mutation costs the full construction; these classes
// instead maintain the derived structure under per-hyperedge updates,
// recomputing only what the dirty set touches:
//
//   incremental_slinegraph — when hyperedge e's member list changes, only
//     line-graph pairs incident on e can appear or disappear (a pair {f, g}
//     with e ∉ {f, g} has an unchanged overlap), so the update drops e's
//     pairs and recounts overlaps against e alone.  s-connectivity is kept
//     as a union-find: insertions union eagerly; a deletion invalidates the
//     forest and the next component query rebuilds it from the maintained
//     adjacency (deletions can split components, which union-find cannot
//     express).
//
//   incremental_toplexes — a non-empty edge f's dominance status can only
//     flip through its relation to the updated edge e, and any such f
//     satisfies f ⊆ e_old or f ⊆ e_new, so recomputing e plus the edges
//     incident on the dirty nodes (old ∪ new members of e) is exhaustive.
//
// Both are differential-tested against full rebuilds (PR-4 serial oracles)
// in tests/test_dynamic.cpp; results are identical by construction, not
// approximately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/incidence.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

/// An s-line graph maintained under hyperedge updates.  Owns its own copy
/// of the composed incidence (so it stays coherent across compactions of
/// the source hypergraph) plus the line-graph adjacency and a lazily
/// repaired union-find over it.
class incremental_slinegraph {
public:
  incremental_slinegraph(const NWHypergraph& h, std::size_t s) : s_(s) {
    const std::size_t ne = h.num_hyperedges();
    const std::size_t nv = h.num_hypernodes();
    edge_members_.resize(ne);
    node_edges_.resize(nv);
    adj_.resize(ne);
    for (std::size_t e = 0; e < ne; ++e) {
      edge_members_[e] = h.edge_members(static_cast<vertex_id_t>(e));
      for (vertex_id_t v : edge_members_[e]) {
        node_edges_[v].push_back(static_cast<vertex_id_t>(e));
      }
    }
    counting_hashmap<> overlap;
    for (std::size_t i = 0; i < ne; ++i) {
      const vertex_id_t ei = static_cast<vertex_id_t>(i);
      if (!active(ei)) continue;
      overlap.clear();
      for (vertex_id_t v : edge_members_[i]) {
        for (vertex_id_t ej : node_edges_[v]) {
          if (ej > ei && active(ej)) overlap.increment(ej);
        }
      }
      overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
        if (n >= s_) {
          adj_[ei].push_back(ej);
          adj_[ej].push_back(ei);
        }
      });
    }
    for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
    rebuild_union_find();
  }

  [[nodiscard]] std::size_t s() const { return s_; }
  [[nodiscard]] std::size_t num_vertices() const { return adj_.size(); }
  [[nodiscard]] bool        active(vertex_id_t e) const {
    return e < edge_members_.size() && edge_members_[e].size() >= s_;
  }

  /// Replace hyperedge `e`'s member list (insert when new — intermediate
  /// ids become empty edges; ids past the node space grow it).
  void update_edge(vertex_id_t e, std::vector<vertex_id_t> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (std::size_t{e} >= edge_members_.size()) {
      edge_members_.resize(std::size_t{e} + 1);
      adj_.resize(std::size_t{e} + 1);
      parent_.reserve(std::size_t{e} + 1);
      for (std::size_t i = parent_.size(); i <= std::size_t{e}; ++i) {
        parent_.push_back(static_cast<vertex_id_t>(i));
      }
    }
    for (vertex_id_t v : members) {
      if (std::size_t{v} >= node_edges_.size()) node_edges_.resize(std::size_t{v} + 1);
    }
    // Drop every line-graph pair incident on e.  A deletion can split an
    // s-component, which the union-find cannot undo: mark it for rebuild.
    if (!adj_[e].empty()) {
      for (vertex_id_t f : adj_[e]) {
        auto& nbrs = adj_[f];
        auto  it   = std::lower_bound(nbrs.begin(), nbrs.end(), e);
        if (it != nbrs.end() && *it == e) nbrs.erase(it);
      }
      adj_[e].clear();
      cc_valid_ = false;
    }
    // Splice the incidence update into the maintained transpose.
    for (vertex_id_t v : edge_members_[e]) {
      auto& edges = node_edges_[v];
      auto  it    = std::lower_bound(edges.begin(), edges.end(), e);
      if (it != edges.end() && *it == e) edges.erase(it);
    }
    for (vertex_id_t v : members) {
      auto& edges = node_edges_[v];
      auto  it    = std::lower_bound(edges.begin(), edges.end(), e);
      if (it == edges.end() || *it != e) edges.insert(it, e);
    }
    edge_members_[e] = std::move(members);
    // Recount overlaps against e alone — the only dirty endpoint.
    if (active(e)) {
      counting_hashmap<> overlap;
      for (vertex_id_t v : edge_members_[e]) {
        for (vertex_id_t f : node_edges_[v]) {
          if (f != e && active(f)) overlap.increment(f);
        }
      }
      std::vector<vertex_id_t> nbrs;
      overlap.for_each([&](vertex_id_t f, std::uint32_t n) {
        if (n >= s_) nbrs.push_back(f);
      });
      std::sort(nbrs.begin(), nbrs.end());
      for (vertex_id_t f : nbrs) {
        auto& fn = adj_[f];
        fn.insert(std::lower_bound(fn.begin(), fn.end(), e), e);
        if (cc_valid_) unite(e, f);
      }
      adj_[e] = std::move(nbrs);
    }
  }

  /// Remove hyperedge `e` (its member list becomes empty; the id stays).
  void remove_edge(vertex_id_t e) { update_edge(e, {}); }

  [[nodiscard]] std::size_t s_degree(vertex_id_t e) const {
    return e < adj_.size() ? adj_[e].size() : 0;
  }
  [[nodiscard]] const std::vector<vertex_id_t>& s_neighbors(vertex_id_t e) const {
    return adj_[e];
  }

  /// Sorted unique {lo, hi} line-graph pairs (differential-test surface).
  [[nodiscard]] std::vector<std::pair<vertex_id_t, vertex_id_t>> pairs() const {
    std::vector<std::pair<vertex_id_t, vertex_id_t>> out;
    for (std::size_t u = 0; u < adj_.size(); ++u) {
      for (vertex_id_t v : adj_[u]) {
        if (v > static_cast<vertex_id_t>(u)) out.push_back({static_cast<vertex_id_t>(u), v});
      }
    }
    return out;
  }

  /// s-component labels: min active edge id per component, null_vertex<>
  /// for inactive edges — the ref::s_components convention.  Repairs the
  /// union-find first when a deletion invalidated it.
  [[nodiscard]] std::vector<vertex_id_t> s_connected_components() const {
    ensure_union_find();
    std::vector<vertex_id_t> label(adj_.size(), null_vertex<>);
    for (std::size_t e = 0; e < adj_.size(); ++e) {
      if (!active(static_cast<vertex_id_t>(e))) continue;
      vertex_id_t r = find(static_cast<vertex_id_t>(e));
      if (label[r] == null_vertex<>) label[r] = static_cast<vertex_id_t>(e);  // ascending: min
    }
    std::vector<vertex_id_t> out(adj_.size(), null_vertex<>);
    for (std::size_t e = 0; e < adj_.size(); ++e) {
      if (active(static_cast<vertex_id_t>(e))) out[e] = label[find(static_cast<vertex_id_t>(e))];
    }
    return out;
  }

  /// Hop distance in the line graph; nullopt when unreachable or either
  /// endpoint is inactive (the s_distance_implicit convention).
  [[nodiscard]] std::optional<std::size_t> s_distance(vertex_id_t src, vertex_id_t dst) const {
    if (!active(src) || !active(dst)) return std::nullopt;
    if (src == dst) return 0;
    std::vector<vertex_id_t> dist(adj_.size(), null_vertex<>);
    std::vector<vertex_id_t> frontier{src}, next;
    dist[src] = 0;
    while (!frontier.empty()) {
      next.clear();
      for (vertex_id_t u : frontier) {
        for (vertex_id_t v : adj_[u]) {
          if (dist[v] == null_vertex<>) {
            dist[v] = dist[u] + 1;
            if (v == dst) return dist[v];
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
    return std::nullopt;
  }

private:
  void rebuild_union_find() const {
    parent_.resize(adj_.size());
    for (std::size_t i = 0; i < parent_.size(); ++i) parent_[i] = static_cast<vertex_id_t>(i);
    for (std::size_t u = 0; u < adj_.size(); ++u) {
      for (vertex_id_t v : adj_[u]) unite(static_cast<vertex_id_t>(u), v);
    }
    cc_valid_ = true;
  }
  void ensure_union_find() const {
    if (!cc_valid_) rebuild_union_find();
  }
  vertex_id_t find(vertex_id_t x) const {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x          = parent_[x];
    }
    return x;
  }
  void unite(vertex_id_t a, vertex_id_t b) const {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;  // min-id roots keep label extraction trivial
    } else {
      parent_[a] = b;
    }
  }

  std::size_t                           s_;
  ref::adjacency_list                   edge_members_;  ///< per-edge sorted members
  ref::adjacency_list                   node_edges_;    ///< transpose, sorted
  std::vector<std::vector<vertex_id_t>> adj_;           ///< line-graph adjacency, sorted
  mutable std::vector<vertex_id_t>      parent_;        ///< union-find forest over adj_
  mutable bool                          cc_valid_ = false;
};

/// The toplex set maintained under hyperedge updates.  Keeps a dominance
/// flag per edge; an update recomputes the flags of the updated edge and of
/// every edge incident on a dirty node (old ∪ new members) — a superset of
/// every edge whose status can change.
class incremental_toplexes {
public:
  explicit incremental_toplexes(const NWHypergraph& h) {
    const std::size_t ne = h.num_hyperedges();
    const std::size_t nv = h.num_hypernodes();
    edge_members_.resize(ne);
    node_edges_.resize(nv);
    dominated_.assign(ne, 0);
    for (std::size_t e = 0; e < ne; ++e) {
      edge_members_[e] = h.edge_members(static_cast<vertex_id_t>(e));
      if (!edge_members_[e].empty()) ++nonempty_count_;
      for (vertex_id_t v : edge_members_[e]) {
        node_edges_[v].push_back(static_cast<vertex_id_t>(e));
      }
    }
    for (std::size_t e = 0; e < ne; ++e) {
      dominated_[e] = compute_dominated(static_cast<vertex_id_t>(e));
    }
  }

  [[nodiscard]] std::size_t num_hyperedges() const { return edge_members_.size(); }

  void update_edge(vertex_id_t e, std::vector<vertex_id_t> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (std::size_t{e} >= edge_members_.size()) {
      edge_members_.resize(std::size_t{e} + 1);
      dominated_.resize(std::size_t{e} + 1, 0);
    }
    for (vertex_id_t v : members) {
      if (std::size_t{v} >= node_edges_.size()) node_edges_.resize(std::size_t{v} + 1);
    }
    // Dirty set: every node the update touches, before splicing the lists.
    std::vector<vertex_id_t> dirty_nodes = edge_members_[e];
    dirty_nodes.insert(dirty_nodes.end(), members.begin(), members.end());
    std::sort(dirty_nodes.begin(), dirty_nodes.end());
    dirty_nodes.erase(std::unique(dirty_nodes.begin(), dirty_nodes.end()), dirty_nodes.end());
    if (!edge_members_[e].empty()) --nonempty_count_;
    if (!members.empty()) ++nonempty_count_;
    for (vertex_id_t v : edge_members_[e]) {
      auto& edges = node_edges_[v];
      auto  it    = std::lower_bound(edges.begin(), edges.end(), e);
      if (it != edges.end() && *it == e) edges.erase(it);
    }
    for (vertex_id_t v : members) {
      auto& edges = node_edges_[v];
      auto  it    = std::lower_bound(edges.begin(), edges.end(), e);
      if (it == edges.end() || *it != e) edges.insert(it, e);
    }
    edge_members_[e] = std::move(members);
    // Recompute the dirty set: e plus every edge incident on a dirty node.
    std::vector<vertex_id_t> dirty_edges{e};
    for (vertex_id_t v : dirty_nodes) {
      dirty_edges.insert(dirty_edges.end(), node_edges_[v].begin(), node_edges_[v].end());
    }
    std::sort(dirty_edges.begin(), dirty_edges.end());
    dirty_edges.erase(std::unique(dirty_edges.begin(), dirty_edges.end()), dirty_edges.end());
    for (vertex_id_t f : dirty_edges) dominated_[f] = compute_dominated(f);
  }

  void remove_edge(vertex_id_t e) { update_edge(e, {}); }

  /// The current toplex ids (ascending), with the algorithms/toplex.hpp
  /// empty-edge convention: empty edges survive only when the hypergraph
  /// has no non-empty edge, and then only the smallest empty id.
  [[nodiscard]] std::vector<vertex_id_t> toplexes() const {
    std::vector<vertex_id_t> out;
    bool                     emitted_empty = false;
    for (std::size_t e = 0; e < edge_members_.size(); ++e) {
      if (edge_members_[e].empty()) {
        if (nonempty_count_ == 0 && !emitted_empty) {
          out.push_back(static_cast<vertex_id_t>(e));
          emitted_empty = true;
        }
      } else if (!dominated_[e]) {
        out.push_back(static_cast<vertex_id_t>(e));
      }
    }
    return out;
  }

private:
  /// Non-empty edge i is dominated iff some j ≠ i has i ⊆ j and
  /// (|j| > |i| ∨ (|j| == |i| ∧ j < i)) — the Algorithm 3 tie-break.
  [[nodiscard]] bool compute_dominated(vertex_id_t i) const {
    const std::size_t di = edge_members_[i].size();
    if (di == 0) return false;  // empty edges are resolved at query time
    overlap_.clear();
    for (vertex_id_t v : edge_members_[i]) {
      for (vertex_id_t j : node_edges_[v]) {
        if (j != i) overlap_.increment(j);
      }
    }
    bool dom = false;
    overlap_.for_each([&](vertex_id_t j, std::uint32_t n) {
      if (dom || n < di) return;
      const std::size_t dj = edge_members_[j].size();
      if (dj > di || (dj == di && j < i)) dom = true;
    });
    return dom;
  }

  ref::adjacency_list        edge_members_;
  ref::adjacency_list        node_edges_;
  std::vector<char>          dominated_;
  std::size_t                nonempty_count_ = 0;
  mutable counting_hashmap<> overlap_;
};

}  // namespace nw::hypergraph
