// nwhy/slinegraph/implicit.hpp
//
// Implicit s-line-graph traversal: s-BFS and s-connected-components that
// never materialize L_s(H).  The s-neighborhood of a hyperedge is
// discovered on the fly by hashmap overlap counting — the same kernel the
// construction algorithms use, but the pairs are consumed immediately
// instead of stored.
//
// Why it exists: the clique-expansion/line-graph blow-up the paper
// discusses (Sec. III-B.3) applies to L_1 of dense hypergraphs too — on
// com-Orkut-sim, L_2(H) has 28M edges while the hypergraph has 300k
// incidences.  When only one traversal-shaped query is needed, the
// implicit route trades a constant-factor extra counting work (each
// adjacency is discovered from both endpoints) for zero line-graph memory.
// `bench_ablation_implicit` quantifies the crossover.
#pragma once

#include <optional>
#include <vector>

#include "nwhy/slinegraph/construction.hpp"
#include "nwpar/frontier.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

namespace detail {

/// Visit every s-neighbor of `ei` (all ej != ei with |ei ∩ ej| >= s).
template <class EGraph, class NGraph, class Fn>
void for_each_s_neighbor(const EGraph& edges, const NGraph& nodes,
                         const std::vector<std::size_t>& edge_degrees, std::size_t s,
                         vertex_id_t ei, counting_hashmap<>& overlap, Fn&& fn) {
  overlap.clear();
  for (auto&& ev : edges[ei]) {
    for (auto&& ve : nodes[target(ev)]) {
      vertex_id_t ej = target(ve);
      if (ej != ei && edge_degrees[ej] >= s) overlap.increment(ej);
    }
  }
  overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
    if (n >= s) fn(ej);
  });
}

}  // namespace detail

/// s-connected components without materializing the line graph: BFS floods
/// from every still-unlabeled active hyperedge; each flood's frontier
/// expansion is parallel (per-thread hashmaps, CAS label claims).
/// Inactive hyperedges (fewer than s hypernodes) get null_vertex, matching
/// s_linegraph::s_connected_components.
template <class EGraph, class NGraph>
std::vector<vertex_id_t> s_connected_components_implicit(
    const EGraph& edges, const NGraph& nodes, const std::vector<std::size_t>& edge_degrees,
    std::size_t s) {
  const std::size_t        ne = edges.size();
  std::vector<vertex_id_t> comp(ne, null_vertex<>);
  par::per_thread<counting_hashmap<>> maps;
  // One frontier pair for the whole flood: the par::frontier keeps its id
  // vector and per-thread emission buffers across levels *and* seeds, so
  // after the first flood reaches its high-water mark no level allocates.
  par::frontier frontier(ne), next(ne);

  for (std::size_t seed = 0; seed < ne; ++seed) {
    if (edge_degrees[seed] < s || comp[seed] != null_vertex<>) continue;
    comp[seed] = static_cast<vertex_id_t>(seed);
    frontier.assign_single(static_cast<vertex_id_t>(seed));
    while (!frontier.empty()) {
      const auto& ids = frontier.ids();
      par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
        detail::for_each_s_neighbor(edges, nodes, edge_degrees, s, ids[i], maps.local(tid),
                                    [&](vertex_id_t ej) {
                                      if (atomic_load(comp[ej]) == null_vertex<> &&
                                          compare_and_swap(comp[ej], null_vertex<>,
                                                           static_cast<vertex_id_t>(seed))) {
                                        next.emit(tid, ej);
                                      }
                                    });
      });
      next.commit_sparse();
      frontier.swap(next);
    }
  }
  return comp;
}

/// s-distance between two hyperedges without materializing the line graph;
/// nullopt when unreachable (or either endpoint inactive).
template <class EGraph, class NGraph>
std::optional<std::size_t> s_distance_implicit(const EGraph& edges, const NGraph& nodes,
                                               const std::vector<std::size_t>& edge_degrees,
                                               std::size_t s, vertex_id_t src,
                                               vertex_id_t dst) {
  if (edge_degrees[src] < s || edge_degrees[dst] < s) return std::nullopt;
  if (src == dst) return 0;
  const std::size_t        ne = edges.size();
  std::vector<vertex_id_t> dist(ne, null_vertex<>);
  dist[src] = 0;
  par::per_thread<counting_hashmap<>> maps;
  // Hoisted out of the level loop; the frontier's id vector and per-thread
  // emission buffers keep capacity across levels.
  par::frontier frontier(ne), next(ne);
  frontier.assign_single(src);
  vertex_id_t level = 0;
  while (!frontier.empty()) {
    ++level;
    std::atomic<bool> found{false};
    const auto&       ids = frontier.ids();
    par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
      detail::for_each_s_neighbor(edges, nodes, edge_degrees, s, ids[i], maps.local(tid),
                                  [&](vertex_id_t ej) {
                                    if (atomic_load(dist[ej]) == null_vertex<> &&
                                        compare_and_swap(dist[ej], null_vertex<>, level)) {
                                      if (ej == dst) found.store(true);
                                      next.emit(tid, ej);
                                    }
                                  });
    });
    if (found.load()) return static_cast<std::size_t>(level);
    next.commit_sparse();
    frontier.swap(next);
  }
  return std::nullopt;
}

/// Degree of a hyperedge in the (never-built) s-line graph.
template <class EGraph, class NGraph>
std::size_t s_degree_implicit(const EGraph& edges, const NGraph& nodes,
                              const std::vector<std::size_t>& edge_degrees, std::size_t s,
                              vertex_id_t ei) {
  if (edge_degrees[ei] < s) return 0;
  counting_hashmap<> overlap;
  std::size_t        degree = 0;
  detail::for_each_s_neighbor(edges, nodes, edge_degrees, s, ei, overlap,
                              [&](vertex_id_t) { ++degree; });
  return degree;
}

}  // namespace nw::hypergraph
