// nwhy/bipartite_graph_base.hpp
//
// Base class for the bipartite containers (paper Listing 1): holds the
// cardinalities of the two vertex partitions.  Partition 0 is the hyperedge
// index space, partition 1 the hypernode index space; because these are two
// *different entity types* (author vs. paper), their index spaces are kept
// separate and may have different sizes (rectangular incidence matrices).
#pragma once

#include <array>
#include <cstddef>

namespace nw::hypergraph {

class bipartite_graph_base {
public:
  bipartite_graph_base(std::size_t n0, std::size_t n1) : vertex_cardinality_{n0, n1} {}

  /// Cardinality of partition `idx` (0 = hyperedges, 1 = hypernodes).
  [[nodiscard]] std::size_t num_vertices(std::size_t idx) const {
    return vertex_cardinality_[idx];
  }

  /// Override a partition's declared cardinality.  Two legitimate uses:
  /// declaring trailing entities with no incidences (empty hyperedges /
  /// isolated hypernodes), and — in the adversarial generator —
  /// *shrinking* below the maximum stored id to plant out-of-bounds
  /// incidences for nwhy/validate.hpp to detect.  Building a CSR container
  /// from a shrunk edge list is undefined; validate() first.
  void set_num_vertices(std::size_t idx, std::size_t n) { vertex_cardinality_[idx] = n; }

protected:
  std::array<std::size_t, 2> vertex_cardinality_;
};

}  // namespace nw::hypergraph
