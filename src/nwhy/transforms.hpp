// nwhy/transforms.hpp
//
// Structural transforms on hypergraphs, in the spirit of HyperNetX's
// preprocessing utilities: collapsing duplicate hyperedges, degree
// filtering, and induced sub-hypergraphs.  All operate on the canonical
// biedgelist and return a new one (hypergraphs are immutable once built).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/relabel.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Result of collapsing duplicate hyperedges: the reduced hypergraph plus,
/// for each surviving hyperedge, the multiplicity (number of originals it
/// represents) and the representative's original id.
struct collapse_result {
  biedgelist<>             el;
  std::vector<vertex_id_t> representative;  ///< new edge id -> original edge id
  std::vector<std::size_t> multiplicity;    ///< new edge id -> duplicate count
};

/// Collapse hyperedges with identical hypernode sets (the representative is
/// the smallest original id).  Requires a sort_and_unique'd input.
inline collapse_result collapse_duplicate_edges(const biedgelist<>& el) {
  biadjacency<0> hyperedges(el);
  const std::size_t ne = hyperedges.size();

  // Group by a cheap content hash, verify exactly within buckets.
  auto content_hash = [&](std::size_t e) {
    std::uint64_t h = 1469598103934665603ull;
    for (auto&& ev : hyperedges[e]) {
      h ^= static_cast<std::uint64_t>(target(ev)) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  };
  auto same_content = [&](std::size_t a, std::size_t b) {
    auto ra = hyperedges[a];
    auto rb = hyperedges[b];
    return std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
  };

  std::unordered_map<std::uint64_t, std::vector<vertex_id_t>> buckets;
  for (std::size_t e = 0; e < ne; ++e) buckets[content_hash(e)].push_back(e);

  std::vector<vertex_id_t> owner(ne);  // original id -> representative original id
  std::vector<std::size_t> counts(ne, 0);
  for (auto& [hash, members] : buckets) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      vertex_id_t rep = members[i];
      for (std::size_t j = 0; j < i; ++j) {
        if (same_content(members[j], members[i])) {
          rep = owner[members[j]];
          break;
        }
      }
      owner[members[i]] = rep;
      ++counts[rep];
    }
  }

  collapse_result out;
  std::vector<vertex_id_t> new_id(ne, null_vertex<>);
  for (std::size_t e = 0; e < ne; ++e) {
    if (owner[e] != e) continue;
    new_id[e] = static_cast<vertex_id_t>(out.representative.size());
    out.representative.push_back(static_cast<vertex_id_t>(e));
    out.multiplicity.push_back(counts[e]);
  }
  out.el = biedgelist<>(out.representative.size(), el.num_vertices(1));
  for (std::size_t k = 0; k < out.representative.size(); ++k) {
    for (auto&& ev : hyperedges[out.representative[k]]) {
      out.el.push_back(static_cast<vertex_id_t>(k), target(ev));
    }
  }
  return out;
}

/// Keep only hyperedges with size in [min_size, max_size] (inclusive);
/// hyperedge ids are compacted, hypernode ids preserved.  Returns the kept
/// original ids through `kept`.
inline biedgelist<> filter_edges_by_size(const biedgelist<>& el, std::size_t min_size,
                                         std::size_t max_size,
                                         std::vector<vertex_id_t>* kept = nullptr) {
  biadjacency<0> hyperedges(el);
  biedgelist<>   out(0, el.num_vertices(1));
  std::vector<vertex_id_t> kept_local;
  vertex_id_t              next = 0;
  for (std::size_t e = 0; e < hyperedges.size(); ++e) {
    std::size_t d = hyperedges.degree(e);
    if (d < min_size || d > max_size) continue;
    for (auto&& ev : hyperedges[e]) out.push_back(next, target(ev));
    kept_local.push_back(static_cast<vertex_id_t>(e));
    ++next;
  }
  if (kept) *kept = std::move(kept_local);
  return out;
}

/// Restrict the hypergraph to a set of hypernodes: every hyperedge is
/// intersected with `nodes` (flag array, 1 = keep); empty intersections
/// drop the hyperedge.  Node ids are preserved, edge ids compacted.
inline biedgelist<> induced_subhypergraph(const biedgelist<>& el,
                                          const std::vector<char>& keep_node,
                                          std::vector<vertex_id_t>* kept_edges = nullptr) {
  NW_ASSERT(keep_node.size() >= el.num_vertices(1), "keep_node flag array too short");
  biadjacency<0> hyperedges(el);
  biedgelist<>   out(0, el.num_vertices(1));
  std::vector<vertex_id_t> kept_local;
  vertex_id_t              next = 0;
  for (std::size_t e = 0; e < hyperedges.size(); ++e) {
    bool any = false;
    for (auto&& ev : hyperedges[e]) {
      if (keep_node[target(ev)]) {
        out.push_back(next, target(ev));
        any = true;
      }
    }
    if (any) {
      kept_local.push_back(static_cast<vertex_id_t>(e));
      ++next;
    }
  }
  if (kept_edges) *kept_edges = std::move(kept_local);
  return out;
}

/// Remap hyperedge ids of a biedgelist through `perm` (parallel map over
/// the id column), then re-canonicalize.  Pair with `degree_relabel_maps`
/// for the degree-ordered locality pass; hypernode ids are untouched.
inline biedgelist<> relabel_hyperedges(const biedgelist<>& el,
                                       const std::vector<vertex_id_t>& perm,
                                       par::thread_pool& pool = par::thread_pool::default_pool()) {
  NW_ASSERT(perm.size() >= el.num_vertices(0),
            "relabel permutation must cover every hyperedge id");
  std::vector<vertex_id_t> edge_ids(el.edge_ids());
  std::vector<vertex_id_t> node_ids(el.node_ids());
  par::parallel_for(
      0, edge_ids.size(), [&](std::size_t i) { edge_ids[i] = perm[edge_ids[i]]; },
      par::blocked{}, pool);
  biedgelist<> out(std::move(edge_ids), std::move(node_ids), el.num_vertices(0),
                   el.num_vertices(1));
  out.sort_and_unique();
  return out;
}

/// Degree distribution histogram: result[d] = number of entities with
/// degree d (trailing zeros trimmed).
inline std::vector<std::size_t> degree_histogram(const std::vector<std::size_t>& degrees) {
  std::size_t max_degree = 0;
  for (auto d : degrees) max_degree = std::max(max_degree, d);
  std::vector<std::size_t> hist(max_degree + 1, 0);
  for (auto d : degrees) ++hist[d];
  return hist;
}

}  // namespace nw::hypergraph
