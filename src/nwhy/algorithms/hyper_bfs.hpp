// nwhy/algorithms/hyper_bfs.hpp
//
// HyperBFS (paper Sec. III-C.1): breadth-first search on the *bipartite*
// representation.  A hypergraph BFS alternates between the two index
// spaces: a hyperedge frontier expands to the hypernodes it contains, a
// hypernode frontier expands to the hyperedges it joins.  Because the two
// index spaces are separate, the algorithm maintains two of every
// algorithm-specific structure (frontier, parents) — the bookkeeping
// drawback of the bi-adjacency representation the paper calls out.
//
// Both a top-down and a bottom-up engine are provided, plus a
// direction-optimizing combination driven by the proper Beamer alpha/beta
// heuristics: each half-step's fused scout count (degree sum of the next
// frontier in the side it will expand through, accumulated per thread
// while emitting) feeds the alpha switch test, and bottom-up half-steps
// emit the next frontier's bitmap directly (atomic word OR) instead of
// re-setting a merged vector serially.  All frontiers are par::frontier
// objects — hybrid sparse/dense with parallel conversions and
// keep-capacity reuse across levels.
#pragma once

#include <algorithm>
#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/frontier.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Result of a hypergraph BFS: parent arrays for both entity classes.
/// parents_edge[e] is the hypernode through which hyperedge e was reached
/// (the source hyperedge holds its own id); parents_node[v] is the
/// hyperedge through which hypernode v was reached.  Unreached entries are
/// null_vertex.  Distances count bipartite hops: hyperedges sit at even
/// depths, hypernodes at odd depths.
struct hyper_bfs_result {
  std::vector<vertex_id_t> parents_edge;
  std::vector<vertex_id_t> parents_node;
  std::vector<vertex_id_t> dist_edge;
  std::vector<vertex_id_t> dist_node;
};

namespace detail {

/// What one half-step reports to the direction-optimizing loop.
struct expand_stats {
  std::size_t added   = 0;  ///< entities claimed into the next frontier
  std::size_t scanned = 0;  ///< incidences examined this half-step
  std::size_t scout   = 0;  ///< fused degree sum of the next frontier
};

/// Top-down expansion of the sparse `front` (ids in the source class)
/// through `graph` into the target class, emitting into `next`.
/// `next_graph` is the incidence the emitted entities will expand through
/// on the following half-step; its degrees feed the fused scout count.
template <class Graph, class NextGraph>
expand_stats expand_top_down(const Graph& graph, const NextGraph& next_graph,
                             par::frontier& front, par::frontier& next,
                             std::vector<vertex_id_t>& parents_target,
                             std::vector<vertex_id_t>& dist_target, vertex_id_t level) {
  const auto&                  ids = front.ids();
  par::per_thread<std::size_t> scanned;
  par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u     = ids[i];
    std::size_t local = 0;
    for (auto&& e : graph[u]) {
      vertex_id_t v = target(e);
      ++local;
      if (atomic_load(parents_target[v]) == null_vertex<> &&
          compare_and_swap(parents_target[v], null_vertex<>, u)) {
        dist_target[v] = level;
        next.emit(tid, v, next_graph.degree(v));
      }
    }
    scanned.local(tid) += local;
    NWOBS_COUNT("hyper_bfs.edges_relaxed", tid, local);
  });
  expand_stats st;
  st.added = next.commit_sparse();
  st.scout = next.take_scout();
  scanned.for_each([&](std::size_t& s) { st.scanned += s; });
  return st;
}

/// Bottom-up expansion: every unvisited entity of the target class scans
/// its own incidence list (`graph_target_side`) for a member of the dense
/// `front` bitmap.  Claimed entities are emitted straight into `next`'s
/// bitmap — no merged vector, no serial re-set.  `graph_target_side` is
/// also the incidence the claimed entities expand through next, so its
/// degrees feed the fused scout count.
template <class Graph>
expand_stats expand_bottom_up(const Graph& graph_target_side, par::frontier& front,
                              par::frontier& next, std::vector<vertex_id_t>& parents_target,
                              std::vector<vertex_id_t>& dist_target, vertex_id_t level) {
  const nw::bitmap& fb = front.bits();
  next.begin_dense();
  par::per_thread<std::size_t> scanned;
  par::parallel_for(0, graph_target_side.size(), [&](unsigned tid, std::size_t v) {
    if (parents_target[v] != null_vertex<>) return;
    std::size_t local = 0;
    for (auto&& e : graph_target_side[v]) {
      vertex_id_t u = target(e);
      ++local;
      if (fb.get(u)) {
        parents_target[v] = u;
        dist_target[v]    = level;
        next.emit_dense(tid, static_cast<vertex_id_t>(v), graph_target_side.degree(v));
        break;
      }
    }
    scanned.local(tid) += local;
    NWOBS_COUNT("hyper_bfs.edges_relaxed", tid, local);
  });
  expand_stats st;
  st.added = next.commit_dense();
  st.scout = next.take_scout();
  scanned.for_each([&](std::size_t& s) { st.scanned += s; });
  return st;
}

/// Record one BFS half-step (level) and its frontier size into the
/// observability registry.  No-op under -DNWHY_OBS=0.
inline void record_level(std::size_t frontier_size) {
  (void)frontier_size;
  NWOBS_COUNT("hyper_bfs.levels", 0, 1);
  NWOBS_COUNT("hyper_bfs.frontier_total", 0, frontier_size);
  NWOBS_GAUGE_MAX("hyper_bfs.frontier_peak", frontier_size);
}

}  // namespace detail

/// Top-down HyperBFS from hyperedge `source`.  Generic over the CSR-like
/// structures: `biadjacency<0>`/`biadjacency<1>` or block-decoding
/// `compressed_adjacency` views (size/num_edges/degree/operator[] is all
/// the engines consume).
template <class EGraph, class NGraph>
hyper_bfs_result hyper_bfs_top_down(const EGraph& hyperedges, const NGraph& hypernodes,
                                    vertex_id_t source) {
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs_top_down");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  par::frontier f_edge(hyperedges.size()), f_node(hypernodes.size());
  f_edge.assign_single(source);
  vertex_id_t level = 0;
  while (!f_edge.empty()) {
    detail::record_level(f_edge.size());
    auto to_nodes =
        detail::expand_top_down(hyperedges, hypernodes, f_edge, f_node, r.parents_node,
                                r.dist_node, ++level);
    if (to_nodes.added == 0) break;
    detail::record_level(f_node.size());
    detail::expand_top_down(hypernodes, hyperedges, f_node, f_edge, r.parents_edge, r.dist_edge,
                            ++level);
  }
  return r;
}

/// Bottom-up HyperBFS: each half-step sweeps the whole unvisited side.
template <class EGraph, class NGraph>
hyper_bfs_result hyper_bfs_bottom_up(const EGraph& hyperedges, const NGraph& hypernodes,
                                     vertex_id_t source) {
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs_bottom_up");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  par::frontier f_edge(hyperedges.size()), f_node(hypernodes.size());
  f_edge.assign_single(source);
  vertex_id_t level = 0;
  while (!f_edge.empty()) {
    detail::record_level(f_edge.size());
    // Hypernode side scans its incident hyperedges for frontier members;
    // the next bitmap is emitted directly, one atomic OR per claim.
    auto to_nodes = detail::expand_bottom_up(hypernodes, f_edge, f_node, r.parents_node,
                                             r.dist_node, ++level);
    if (to_nodes.added == 0) break;
    detail::record_level(to_nodes.added);
    auto to_edges = detail::expand_bottom_up(hyperedges, f_node, f_edge, r.parents_edge,
                                             r.dist_edge, ++level);
    if (to_edges.added == 0) break;
  }
  return r;
}

/// A hyperpath between two hyperedges: the alternating sequence
/// e_src, v, e, v, ..., e_dst extracted from a BFS forest (the hyperpath /
/// hypertree primitive of the Hygra/MESH algorithm suites).  Even positions
/// hold hyperedge ids, odd positions hypernode ids; empty if unreachable.
inline std::vector<vertex_id_t> extract_hyperpath(const hyper_bfs_result& bfs,
                                                  vertex_id_t source_edge,
                                                  vertex_id_t dest_edge) {
  if (bfs.parents_edge[dest_edge] == null_vertex<>) return {};
  std::vector<vertex_id_t> path;
  vertex_id_t              e = dest_edge;
  path.push_back(e);
  while (e != source_edge) {
    vertex_id_t v = bfs.parents_edge[e];  // the hypernode that discovered e
    path.push_back(v);
    e = bfs.parents_node[v];  // the hyperedge that discovered v
    path.push_back(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Direction-optimizing HyperBFS: per half-step, choose bottom-up when the
/// frontier's fused scout count (degree sum in the incidence it is about to
/// expand through) exceeds 1/alpha of the unexplored incidences, and switch
/// back to top-down once the frontier shrinks below |target side| / beta —
/// the same Beamer heuristics as the graph engine, replacing the old crude
/// |frontier| > |side|/20 rule.  alpha/beta of 0 take the process defaults
/// (NWHY_BFS_ALPHA / NWHY_BFS_BETA env overrides, else 15/18).
template <class EGraph, class NGraph>
hyper_bfs_result hyper_bfs(const EGraph& hyperedges, const NGraph& hypernodes,
                           vertex_id_t source, std::size_t alpha = 0, std::size_t beta = 0) {
  if (alpha == 0) alpha = par::bfs_alpha();
  if (beta == 0) beta = par::bfs_beta();
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  par::frontier f_edge(hyperedges.size()), f_node(hypernodes.size());
  f_edge.assign_single(source);
  par::frontier* cur = &f_edge;
  par::frontier* nxt = &f_node;

  // Unexplored incidences across both traversal directions; every
  // half-step (top-down *and* bottom-up) decrements by what it scanned.
  std::size_t edges_remaining = hyperedges.num_edges() + hypernodes.num_edges();
  std::size_t scout           = hyperedges.degree(source);
  bool        edge_side       = true;  // class of ids currently in `cur`
  bool        bottom_up       = false;
  vertex_id_t level           = 0;

  while (!cur->empty()) {
    detail::record_level(cur->size());
    NWOBS_COUNT("hyper_bfs.scout_count", 0, scout);
    NWOBS_GAUGE_MAX("hyper_bfs.frontier_density_permille", cur->density_permille());
    const std::size_t target_side = edge_side ? hypernodes.size() : hyperedges.size();
    if (!bottom_up && scout * alpha > edges_remaining) {
      bottom_up = true;
      NWOBS_COUNT("hyper_bfs.direction_switches", 0, 1);
    } else if (bottom_up && cur->size() < target_side / beta) {
      bottom_up = false;
      NWOBS_COUNT("hyper_bfs.direction_switches", 0, 1);
    }
    // Two call sites on purpose: NWOBS_COUNT caches its counter per site.
    if (bottom_up) {
      NWOBS_COUNT("hyper_bfs.steps_bottom_up", 0, 1);
    } else {
      NWOBS_COUNT("hyper_bfs.steps_top_down", 0, 1);
    }
    ++level;
    detail::expand_stats st;
    if (edge_side) {
      st = bottom_up ? detail::expand_bottom_up(hypernodes, *cur, *nxt, r.parents_node,
                                                r.dist_node, level)
                     : detail::expand_top_down(hyperedges, hypernodes, *cur, *nxt,
                                               r.parents_node, r.dist_node, level);
    } else {
      st = bottom_up ? detail::expand_bottom_up(hyperedges, *cur, *nxt, r.parents_edge,
                                                r.dist_edge, level)
                     : detail::expand_top_down(hypernodes, hyperedges, *cur, *nxt,
                                               r.parents_edge, r.dist_edge, level);
    }
    edges_remaining -= std::min(edges_remaining, st.scanned);
    scout = st.scout;
    std::swap(cur, nxt);
    edge_side = !edge_side;
  }
  return r;
}

}  // namespace nw::hypergraph
