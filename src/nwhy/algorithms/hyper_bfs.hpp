// nwhy/algorithms/hyper_bfs.hpp
//
// HyperBFS (paper Sec. III-C.1): breadth-first search on the *bipartite*
// representation.  A hypergraph BFS alternates between the two index
// spaces: a hyperedge frontier expands to the hypernodes it contains, a
// hypernode frontier expands to the hyperedges it joins.  Because the two
// index spaces are separate, the algorithm maintains two of every
// algorithm-specific structure (frontier, parents) — the bookkeeping
// drawback of the bi-adjacency representation the paper calls out.
//
// Both a top-down and a bottom-up engine are provided, plus a
// direction-optimizing combination.
#pragma once

#include <algorithm>
#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Result of a hypergraph BFS: parent arrays for both entity classes.
/// parents_edge[e] is the hypernode through which hyperedge e was reached
/// (the source hyperedge holds its own id); parents_node[v] is the
/// hyperedge through which hypernode v was reached.  Unreached entries are
/// null_vertex.  Distances count bipartite hops: hyperedges sit at even
/// depths, hypernodes at odd depths.
struct hyper_bfs_result {
  std::vector<vertex_id_t> parents_edge;
  std::vector<vertex_id_t> parents_node;
  std::vector<vertex_id_t> dist_edge;
  std::vector<vertex_id_t> dist_node;
};

namespace detail {

/// Top-down expansion of `frontier` (ids in the source class) through
/// `graph` into the target class.
template <class Graph>
std::vector<vertex_id_t> expand_top_down(const Graph& graph,
                                         const std::vector<vertex_id_t>& frontier,
                                         std::vector<vertex_id_t>& parents_target,
                                         std::vector<vertex_id_t>& dist_target,
                                         vertex_id_t level) {
  par::per_thread<std::vector<vertex_id_t>> next_local;
  par::parallel_for(0, frontier.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u       = frontier[i];
    std::size_t scanned = 0;
    for (auto&& e : graph[u]) {
      vertex_id_t v = target(e);
      ++scanned;
      if (atomic_load(parents_target[v]) == null_vertex<> &&
          compare_and_swap(parents_target[v], null_vertex<>, u)) {
        dist_target[v] = level;
        next_local.local(tid).push_back(v);
      }
    }
    NWOBS_COUNT("hyper_bfs.edges_relaxed", tid, scanned);
  });
  return par::merge_thread_vectors(next_local);
}

/// Bottom-up expansion: every unvisited entity of the target class scans its
/// own incidence list for a frontier member.
template <class Graph>
std::vector<vertex_id_t> expand_bottom_up(const Graph& graph_target_side, const bitmap& frontier,
                                          std::vector<vertex_id_t>& parents_target,
                                          std::vector<vertex_id_t>& dist_target,
                                          vertex_id_t level) {
  par::per_thread<std::vector<vertex_id_t>> next_local;
  par::parallel_for(0, graph_target_side.size(), [&](unsigned tid, std::size_t v) {
    if (parents_target[v] != null_vertex<>) return;
    std::size_t scanned = 0;
    for (auto&& e : graph_target_side[v]) {
      vertex_id_t u = target(e);
      ++scanned;
      if (frontier.get(u)) {
        parents_target[v] = u;
        dist_target[v]    = level;
        next_local.local(tid).push_back(static_cast<vertex_id_t>(v));
        break;
      }
    }
    NWOBS_COUNT("hyper_bfs.edges_relaxed", tid, scanned);
  });
  return par::merge_thread_vectors(next_local);
}

/// Record one BFS half-step (level) and its frontier size into the
/// observability registry.  No-op under -DNWHY_OBS=0.
inline void record_level(std::size_t frontier_size) {
  (void)frontier_size;
  NWOBS_COUNT("hyper_bfs.levels", 0, 1);
  NWOBS_COUNT("hyper_bfs.frontier_total", 0, frontier_size);
  NWOBS_GAUGE_MAX("hyper_bfs.frontier_peak", frontier_size);
}

}  // namespace detail

/// Top-down HyperBFS from hyperedge `source`.
template <class... Attributes>
hyper_bfs_result hyper_bfs_top_down(const biadjacency<0, Attributes...>& hyperedges,
                                    const biadjacency<1, Attributes...>& hypernodes,
                                    vertex_id_t source) {
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs_top_down");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  std::vector<vertex_id_t> edge_frontier{source};
  vertex_id_t              level = 0;
  while (!edge_frontier.empty()) {
    detail::record_level(edge_frontier.size());
    auto node_frontier =
        detail::expand_top_down(hyperedges, edge_frontier, r.parents_node, r.dist_node, ++level);
    if (node_frontier.empty()) break;
    detail::record_level(node_frontier.size());
    edge_frontier =
        detail::expand_top_down(hypernodes, node_frontier, r.parents_edge, r.dist_edge, ++level);
  }
  return r;
}

/// Bottom-up HyperBFS: each half-step sweeps the whole unvisited side.
template <class... Attributes>
hyper_bfs_result hyper_bfs_bottom_up(const biadjacency<0, Attributes...>& hyperedges,
                                     const biadjacency<1, Attributes...>& hypernodes,
                                     vertex_id_t source) {
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs_bottom_up");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  bitmap edge_bm(hyperedges.size()), node_bm(hypernodes.size());
  edge_bm.set(source);
  vertex_id_t level         = 0;
  std::size_t frontier_size = 1;
  while (frontier_size > 0) {
    detail::record_level(frontier_size);
    // Hypernode side scans its incident hyperedges for frontier members.
    auto nodes_added =
        detail::expand_bottom_up(hypernodes, edge_bm, r.parents_node, r.dist_node, ++level);
    node_bm.clear();
    for (auto v : nodes_added) node_bm.set(v);
    if (nodes_added.empty()) break;
    detail::record_level(nodes_added.size());
    auto edges_added =
        detail::expand_bottom_up(hyperedges, node_bm, r.parents_edge, r.dist_edge, ++level);
    edge_bm.clear();
    for (auto e : edges_added) edge_bm.set(e);
    frontier_size = edges_added.size();
  }
  return r;
}

/// A hyperpath between two hyperedges: the alternating sequence
/// e_src, v, e, v, ..., e_dst extracted from a BFS forest (the hyperpath /
/// hypertree primitive of the Hygra/MESH algorithm suites).  Even positions
/// hold hyperedge ids, odd positions hypernode ids; empty if unreachable.
inline std::vector<vertex_id_t> extract_hyperpath(const hyper_bfs_result& bfs,
                                                  vertex_id_t source_edge,
                                                  vertex_id_t dest_edge) {
  if (bfs.parents_edge[dest_edge] == null_vertex<>) return {};
  std::vector<vertex_id_t> path;
  vertex_id_t              e = dest_edge;
  path.push_back(e);
  while (e != source_edge) {
    vertex_id_t v = bfs.parents_edge[e];  // the hypernode that discovered e
    path.push_back(v);
    e = bfs.parents_node[v];  // the hyperedge that discovered v
    path.push_back(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Direction-optimizing HyperBFS: per half-step, choose top-down when the
/// frontier is small relative to the side being expanded, bottom-up when it
/// is large (threshold |frontier| > |side| / denominator).
template <class... Attributes>
hyper_bfs_result hyper_bfs(const biadjacency<0, Attributes...>& hyperedges,
                           const biadjacency<1, Attributes...>& hypernodes, vertex_id_t source,
                           std::size_t denominator = 20) {
  hyper_bfs_result r;
  r.parents_edge.assign(hyperedges.size(), null_vertex<>);
  r.parents_node.assign(hypernodes.size(), null_vertex<>);
  r.dist_edge.assign(hyperedges.size(), null_vertex<>);
  r.dist_node.assign(hypernodes.size(), null_vertex<>);
  if (hyperedges.size() == 0) return r;

  NWOBS_SCOPE_TIMER("hyper_bfs");
  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;
  std::vector<vertex_id_t> frontier{source};
  bitmap                   frontier_bm(std::max(hyperedges.size(), hypernodes.size()));
  bool                     edge_side = true;  // class of ids currently in `frontier`
  bool                     prev_bottom_up = false;
  vertex_id_t              level     = 0;

  while (!frontier.empty()) {
    std::size_t target_side = edge_side ? hypernodes.size() : hyperedges.size();
    bool        go_bottom_up = frontier.size() > target_side / denominator;
    detail::record_level(frontier.size());
    // Two call sites on purpose: NWOBS_COUNT caches its counter per site.
    if (go_bottom_up) {
      NWOBS_COUNT("hyper_bfs.steps_bottom_up", 0, 1);
    } else {
      NWOBS_COUNT("hyper_bfs.steps_top_down", 0, 1);
    }
    if (go_bottom_up != prev_bottom_up) {
      NWOBS_COUNT("hyper_bfs.direction_switches", 0, 1);
      prev_bottom_up = go_bottom_up;
    }
    ++level;
    std::vector<vertex_id_t> next;
    if (edge_side) {
      if (go_bottom_up) {
        frontier_bm.clear();
        for (auto u : frontier) frontier_bm.set(u);
        next = detail::expand_bottom_up(hypernodes, frontier_bm, r.parents_node, r.dist_node,
                                        level);
      } else {
        next = detail::expand_top_down(hyperedges, frontier, r.parents_node, r.dist_node, level);
      }
    } else {
      if (go_bottom_up) {
        frontier_bm.clear();
        for (auto u : frontier) frontier_bm.set(u);
        next = detail::expand_bottom_up(hyperedges, frontier_bm, r.parents_edge, r.dist_edge,
                                        level);
      } else {
        next = detail::expand_top_down(hypernodes, frontier, r.parents_edge, r.dist_edge, level);
      }
    }
    frontier  = std::move(next);
    edge_side = !edge_side;
  }
  return r;
}

}  // namespace nw::hypergraph
