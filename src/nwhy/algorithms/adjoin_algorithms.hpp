// nwhy/algorithms/adjoin_algorithms.hpp
//
// AdjoinBFS and AdjoinCC (paper Sec. III-C.2): hypergraph BFS / connected
// components computed by running *plain graph algorithms* on the adjoin
// representation, then splitting the resultant array back into the
// hyperedge and hypernode parts.  This is the payoff of the single shared
// index space: no hypergraph-specific algorithm required.
//
//   AdjoinBFS — direction-optimizing BFS (Beamer) on the adjoin CSR
//   AdjoinCC  — Afforest (Sutton et al.) or min-label propagation
#pragma once

#include <utility>
#include <vector>

#include "nwgraph/algorithms/bfs.hpp"
#include "nwgraph/algorithms/connected_components.hpp"
#include "nwhy/adjoin.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

struct adjoin_bfs_result {
  std::vector<vertex_id_t> parents_edge;  ///< parent ids are in the *shared* index set
  std::vector<vertex_id_t> parents_node;
};

/// BFS from hyperedge `source_edge` via direction-optimizing graph BFS.
inline adjoin_bfs_result adjoin_bfs(const adjoin_graph& g, vertex_id_t source_edge) {
  NW_ASSERT(source_edge < g.nrealedges, "adjoin_bfs source must be a hyperedge id");
  // The per-level counters (frontier sizes, direction switches, edges
  // relaxed) are emitted by the underlying engine under "graph_bfs.*";
  // this wrapper contributes the phase timer and run count so profiles can
  // attribute those engine counters to AdjoinBFS invocations.
  NWOBS_SCOPE_TIMER("adjoin_bfs");
  NWOBS_COUNT("adjoin_bfs.runs", 0, 1);
  auto parents = nw::graph::bfs_direction_optimizing(g.graph, source_edge);
  auto [pe, pn] = split_results(parents, g.nrealedges);
  return {std::move(pe), std::move(pn)};
}

/// BFS hop distances in the shared index set (hypernodes at odd depths).
inline std::pair<std::vector<vertex_id_t>, std::vector<vertex_id_t>> adjoin_bfs_distances(
    const adjoin_graph& g, vertex_id_t source_edge) {
  auto dist = nw::graph::bfs_distances(g.graph, source_edge);
  return split_results(dist, g.nrealedges);
}

struct adjoin_cc_result {
  std::vector<vertex_id_t> labels_edge;
  std::vector<vertex_id_t> labels_node;
};

enum class adjoin_cc_engine { afforest, label_propagation };

/// Connected components of the hypergraph through its adjoin graph.  Labels
/// are shared-index ids; a hyperedge and a hypernode in the same component
/// receive the same label.
inline adjoin_cc_result adjoin_cc(const adjoin_graph&           g,
                                  adjoin_cc_engine engine = adjoin_cc_engine::afforest) {
  NWOBS_SCOPE_TIMER("adjoin_cc");
  std::vector<vertex_id_t> labels = engine == adjoin_cc_engine::afforest
                                        ? nw::graph::cc_afforest(g.graph)
                                        : nw::graph::cc_label_propagation(g.graph);
  auto [le, ln] = split_results(labels, g.nrealedges);
  return {std::move(le), std::move(ln)};
}

}  // namespace nw::hypergraph
