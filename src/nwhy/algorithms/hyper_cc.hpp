// nwhy/algorithms/hyper_cc.hpp
//
// HyperCC (paper Sec. III-C.1): connected components of a hypergraph on the
// bipartite representation, via min-label propagation (Orzan / Pregel
// style).  Two label arrays are maintained — one per index space — and each
// round pulls the minimum label across the incidence in both directions
// until a fixed point.  Labels are drawn from the hyperedge id space (a
// hypernode belonging to no hyperedge keeps a unique label nE + v).
#pragma once

#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

struct hyper_cc_result {
  std::vector<vertex_id_t> labels_edge;
  std::vector<vertex_id_t> labels_node;
};

/// Generic over the CSR-like structures (`biadjacency` pairs or
/// block-decoding `compressed_adjacency` views).
template <class EGraph, class NGraph>
hyper_cc_result hyper_cc(const EGraph& hyperedges, const NGraph& hypernodes) {
  const std::size_t ne = hyperedges.size();
  const std::size_t nv = hypernodes.size();
  hyper_cc_result   r;
  r.labels_edge.resize(ne);
  r.labels_node.resize(nv);
  for (std::size_t e = 0; e < ne; ++e) r.labels_edge[e] = static_cast<vertex_id_t>(e);
  // Hypernodes start above the hyperedge label range so that any incident
  // hyperedge label immediately wins.
  for (std::size_t v = 0; v < nv; ++v) r.labels_node[v] = static_cast<vertex_id_t>(ne + v);

  bool changed = true;
  while (changed) {
    // Hypernodes pull the minimum over their incident hyperedges.
    bool node_changed = par::parallel_reduce(
        0, nv, false,
        [&](bool acc, std::size_t v) {
          vertex_id_t lv = atomic_load(r.labels_node[v]);
          for (auto&& e : hypernodes[v]) {
            vertex_id_t le = atomic_load(r.labels_edge[target(e)]);
            if (le < lv) {
              lv  = le;
              acc = true;
            }
          }
          if (acc) atomic_store(r.labels_node[v], lv);
          return acc;
        },
        [](bool a, bool b) { return a || b; });
    // Hyperedges pull the minimum over their incident hypernodes.
    bool edge_changed = par::parallel_reduce(
        0, ne, false,
        [&](bool acc, std::size_t e) {
          vertex_id_t le = atomic_load(r.labels_edge[e]);
          for (auto&& vv : hyperedges[e]) {
            vertex_id_t lv = atomic_load(r.labels_node[target(vv)]);
            if (lv < le) {
              le  = lv;
              acc = true;
            }
          }
          if (acc) atomic_store(r.labels_edge[e], le);
          return acc;
        },
        [](bool a, bool b) { return a || b; });
    changed = node_changed || edge_changed;
  }
  return r;
}

}  // namespace nw::hypergraph
