// nwhy/algorithms/motif.hpp
//
// Hypergraph triad/wedge counting over the bipartite form (ROADMAP item
// 3a): the first workload that consumes the bi-adjacency structure as a
// motif substrate rather than a traversal substrate.  The census follows
// the per-wedge decomposition: a *wedge* is an unordered pair of distinct
// hyperedges {e, f} seen through one shared hypernode v (the wedge
// center), so a pair overlapping in c hypernodes contributes c wedges —
// one per center.  Per wedge, a sorted-merge intersection of the two
// hyperedge member lists yields |e ∩ f|, from which the whole census
// follows:
//
//   wedges        Σ_v C(d(v), 2) — every center/pair combination
//   triads        wedges whose hyperedge pair overlaps in >= 2 hypernodes
//                 (the closed form: the pair stays adjacent without the
//                 center, i.e. the wedge participates in a 4-cycle of the
//                 bipartite graph)
//   open_wedges   wedges - triads
//   butterflies   2x2 bicliques {e, f} x {u, v}, each counted once:
//                 Σ_{e<f} C(|e ∩ f|, 2), accumulated per wedge as
//                 Σ (|e ∩ f| - 1) / 2 — each of the c centers of a pair
//                 sees the c-1 *other* shared nodes, so the per-wedge sum
//                 double-counts every butterfly exactly twice
//
// Parallel structure: parallel_for over wedge centers (hypernodes), the
// pair loop and intersections inline per center, counts in par::per_thread
// slots merged at the end.  All counters are integers, so the merge is
// order-independent and the census is deterministic at every thread count
// and schedule.
//
// Serial oracle: src/nwhy/ref/serial_motif.hpp — the same census from the
// definitional triple loop *and* an independent pair-major butterfly
// formula, differentially asserted by tests/test_motif.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// The hypergraph motif census (see header comment for definitions).
struct motif_census {
  std::uint64_t wedges      = 0;  ///< hyperedge pairs per shared hypernode
  std::uint64_t triads      = 0;  ///< closed wedges: pair shares >= 2 nodes
  std::uint64_t open_wedges = 0;  ///< wedges - triads
  std::uint64_t butterflies = 0;  ///< 2x2 bicliques, each counted once

  friend bool operator==(const motif_census&, const motif_census&) = default;
};

namespace detail {

/// |a ∩ b| of two sorted CSR rows (sorted-merge; rows of a canonical
/// bi-adjacency are sorted unique).  Returns the count plus the number of
/// comparison steps for the observability counter.
template <class RangeA, class RangeB>
std::pair<std::uint64_t, std::uint64_t> row_overlap(RangeA&& a, RangeB&& b) {
  std::uint64_t count = 0, steps = 0;
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    ++steps;
    vertex_id_t x = nw::graph::target(*i);
    vertex_id_t y = nw::graph::target(*j);
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return {count, steps};
}

}  // namespace detail

/// Count the wedge/triad/butterfly census of the bipartite form.  Generic
/// over the CSR-like incidence structures (biadjacency<0>/<1> or any view
/// with size()/operator[]): `hyperedges[e]` lists e's member hypernodes,
/// `hypernodes[v]` lists v's incident hyperedges; both rows sorted unique.
/// The census is label-invariant, so it may run on internally-relabeled
/// storage unchanged.
template <class EGraph, class NGraph>
motif_census count_motifs(const EGraph& hyperedges, const NGraph& hypernodes) {
  NWOBS_SCOPE_TIMER("motif");
  par::per_thread<std::uint64_t>           wedges, triads, shared_excess;
  par::per_thread<std::vector<vertex_id_t>> scratch;
  par::parallel_for(0, hypernodes.size(), [&](unsigned tid, std::size_t v) {
    auto& incident = scratch.local(tid);
    incident.clear();
    for (auto&& t : hypernodes[v]) incident.push_back(nw::graph::target(t));
    if (incident.size() < 2) return;
    NWOBS_COUNT("motif.centers", tid, 1);
    std::uint64_t local_wedges = 0, local_triads = 0, local_excess = 0, local_steps = 0;
    for (std::size_t i = 0; i < incident.size(); ++i) {
      for (std::size_t j = i + 1; j < incident.size(); ++j) {
        auto [c, steps] = detail::row_overlap(hyperedges[incident[i]], hyperedges[incident[j]]);
        ++local_wedges;
        if (c >= 2) ++local_triads;
        local_excess += c - 1;  // the c-1 shared nodes besides this center
        local_steps += steps;
      }
    }
    wedges.local(tid) += local_wedges;
    triads.local(tid) += local_triads;
    shared_excess.local(tid) += local_excess;
    NWOBS_COUNT("motif.wedges_scanned", tid, local_wedges);
    NWOBS_COUNT("motif.intersection_steps", tid, local_steps);
  });
  motif_census out;
  wedges.for_each([&](std::uint64_t& x) { out.wedges += x; });
  triads.for_each([&](std::uint64_t& x) { out.triads += x; });
  std::uint64_t excess = 0;
  shared_excess.for_each([&](std::uint64_t& x) { excess += x; });
  out.open_wedges = out.wedges - out.triads;
  // Each butterfly {e,f} x {u,v} is seen from both of its centers: center u
  // counts v in the excess and vice versa, so the excess sum is exactly
  // twice the butterfly count.
  out.butterflies = excess / 2;
  return out;
}

}  // namespace nw::hypergraph
