// nwhy/algorithms/toplex.hpp
//
// Toplex computation (paper Algorithm 3): a toplex is a maximal hyperedge —
// one contained in no other hyperedge.  Our parallel formulation avoids the
// shared mutable candidate set of the paper's pseudocode by making the
// dominance test symmetric and race-free: hyperedge e is *dominated* iff
// there exists f != e with e ⊆ f and (|f| > |e|, or |f| == |e| and f has the
// smaller id).  The tie-break keeps exactly one representative of each
// family of duplicate hyperedges, matching the sequential algorithm's
// output.  Each hyperedge is tested independently (embarrassingly
// parallel), using hashmap overlap counting through the hypernode lists:
// e ⊆ f  ⟺  |e ∩ f| == |e|.
#pragma once

#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph {

/// Ids of all toplexes of the hypergraph, ascending.  Generic over the
/// CSR-like structures (`biadjacency` pairs or block-decoding
/// `compressed_adjacency` views — the kernel keeps at most one live row
/// per structure, within the views' row-cache lifetime contract).
template <class EGraph, class NGraph>
std::vector<vertex_id_t> toplexes(const EGraph& hyperedges, const NGraph& hypernodes) {
  NWOBS_SCOPE_TIMER("toplex");
  const std::size_t ne = hyperedges.size();
  std::vector<char> dominated(ne, 0);

  // Empty hyperedges are contained in every non-empty one; among a family of
  // empty hyperedges only the smallest id can survive, and only if the
  // hypergraph has no non-empty hyperedge at all.
  bool        any_nonempty   = false;
  vertex_id_t first_empty_id = null_vertex<>;
  for (std::size_t i = 0; i < ne; ++i) {
    if (hyperedges.degree(i) > 0) {
      any_nonempty = true;
    } else if (first_empty_id == null_vertex<>) {
      first_empty_id = static_cast<vertex_id_t>(i);
    }
  }

  par::per_thread<counting_hashmap<>> maps;
  par::parallel_for(0, ne, [&](unsigned tid, std::size_t i) {
    vertex_id_t ei  = static_cast<vertex_id_t>(i);
    std::size_t di  = hyperedges.degree(i);
    if (di == 0) {
      dominated[i] = (any_nonempty || ei != first_empty_id) ? 1 : 0;
      return;
    }
    auto& overlap = maps.local(tid);
    overlap.clear();
    for (auto&& ev : hyperedges[i]) {
      for (auto&& ve : hypernodes[target(ev)]) {
        vertex_id_t ej = target(ve);
        if (ej != ei) overlap.increment(ej);
      }
    }
    bool        dom     = false;
    std::size_t checks  = 0;  // candidates whose containment test actually ran
    std::size_t skipped = 0;  // candidates skipped (dominator already found, or
                              // pruned because |e_i ∩ e_j| < |e_i|)
    overlap.for_each([&](vertex_id_t ej, std::uint32_t n) {
      if (dom || n < di) {  // |e_i ∩ e_j| == |e_i|  ⇒  e_i ⊆ e_j
        ++skipped;
        return;
      }
      ++checks;
      std::size_t dj = hyperedges.degree(ej);
      if (dj > di || (dj == di && ej < ei)) dom = true;
    });
    NWOBS_COUNT("toplex.dominance_checks", tid, checks);
    NWOBS_COUNT("toplex.dominance_checks_skipped", tid, skipped);
    dominated[i] = dom ? 1 : 0;
  });

  std::vector<vertex_id_t> result;
  for (std::size_t i = 0; i < ne; ++i) {
    if (!dominated[i]) result.push_back(static_cast<vertex_id_t>(i));
  }
  return result;
}

/// Serial reference implementation following the paper's Algorithm 3
/// shape (iterate hyperedges, maintain the candidate set Ě); used by the
/// property tests as ground truth.
template <class EGraph>
std::vector<vertex_id_t> toplexes_serial(const EGraph& hyperedges) {
  const std::size_t        ne = hyperedges.size();
  std::vector<vertex_id_t> candidates;

  auto subset_of = [&](vertex_id_t a, vertex_id_t b) {
    // a ⊆ b on sorted incidence lists.
    auto ra  = hyperedges[a];
    auto rb  = hyperedges[b];
    auto ita = ra.begin();
    auto itb = rb.begin();
    while (ita != ra.end() && itb != rb.end()) {
      if (target(*ita) == target(*itb)) {
        ++ita;
        ++itb;
      } else if (target(*ita) > target(*itb)) {
        ++itb;
      } else {
        return false;
      }
    }
    return ita == ra.end();
  };

  for (std::size_t i = 0; i < ne; ++i) {
    vertex_id_t ei   = static_cast<vertex_id_t>(i);
    bool        keep = true;
    for (std::size_t k = 0; k < candidates.size();) {
      vertex_id_t ej = candidates[k];
      if (subset_of(ei, ej)) {  // e_i ⊆ e_j: e_i is not maximal
        keep = false;
        break;
      }
      if (subset_of(ej, ei)) {  // e_j ⊂ e_i: evict the stale candidate
        candidates[k] = candidates.back();
        candidates.pop_back();
        continue;
      }
      ++k;
    }
    if (keep) candidates.push_back(ei);
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace nw::hypergraph
