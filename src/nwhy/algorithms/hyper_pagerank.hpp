// nwhy/algorithms/hyper_pagerank.hpp
//
// Exact hypergraph PageRank on the bipartite representation (the PageRank
// the related-work frameworks MESH/HyperX compute): rank flows
// hypernode -> hyperedge -> hypernode each iteration, i.e. a random surfer
// picks a uniformly random incident hyperedge, then a uniformly random
// member of it.  Equivalent to PageRank on the adjoin graph restricted to
// the hypernode class, but computed without materializing the adjoin
// structure, and yielding a hyperedge rank vector as a byproduct.
#pragma once

#include <cmath>
#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

struct hyper_pagerank_result {
  std::vector<double> rank_node;  ///< sums to ~1 over hypernodes
  std::vector<double> rank_edge;  ///< the intermediate hyperedge ranks
  std::size_t         iterations = 0;
};

/// `damping` and `tolerance` as in classic PageRank; dangling mass (nodes
/// in no hyperedge, hyperedges with no members) is redistributed uniformly
/// so rank_node stays a distribution.
template <class... Attributes>
hyper_pagerank_result hyper_pagerank(const biadjacency<0, Attributes...>& hyperedges,
                                     const biadjacency<1, Attributes...>& hypernodes,
                                     double damping = 0.85, double tolerance = 1e-10,
                                     std::size_t max_iterations = 200) {
  const std::size_t     ne = hyperedges.size();
  const std::size_t     nv = hypernodes.size();
  hyper_pagerank_result r;
  r.rank_edge.assign(ne, 0.0);
  if (nv == 0) return r;
  r.rank_node.assign(nv, 1.0 / static_cast<double>(nv));
  std::vector<double> contrib_node(nv, 0.0), contrib_edge(ne, 0.0);
  const double        teleport = (1.0 - damping) / static_cast<double>(nv);

  for (r.iterations = 0; r.iterations < max_iterations; ++r.iterations) {
    // Hypernodes split their rank across incident hyperedges.
    double dangling_nodes = par::parallel_reduce(
        0, nv, 0.0,
        [&](double acc, std::size_t v) {
          std::size_t d   = hypernodes.degree(v);
          contrib_node[v] = d > 0 ? r.rank_node[v] / static_cast<double>(d) : 0.0;
          return d == 0 ? acc + r.rank_node[v] : acc;
        },
        std::plus<>{});
    // Hyperedges gather and split across their members.
    double dangling_edges = par::parallel_reduce(
        0, ne, 0.0,
        [&](double acc, std::size_t e) {
          double gathered = 0.0;
          for (auto&& ev : hyperedges[e]) gathered += contrib_node[target(ev)];
          r.rank_edge[e] = gathered;
          std::size_t d  = hyperedges.degree(e);
          contrib_edge[e] = d > 0 ? gathered / static_cast<double>(d) : 0.0;
          return d == 0 ? acc + gathered : acc;
        },
        std::plus<>{});
    double base = teleport + damping * (dangling_nodes + dangling_edges) /
                                static_cast<double>(nv);
    // Hypernodes gather the two-hop flow.
    double change = par::parallel_reduce(
        0, nv, 0.0,
        [&](double acc, std::size_t v) {
          double gathered = 0.0;
          for (auto&& ve : hypernodes[v]) gathered += contrib_edge[target(ve)];
          double next = base + damping * gathered;
          acc += std::abs(next - r.rank_node[v]);
          r.rank_node[v] = next;
          return acc;
        },
        std::plus<>{});
    if (change < tolerance) break;
  }
  return r;
}

}  // namespace nw::hypergraph
