// nwhy/algorithms/s_betweenness.hpp
//
// Batched multi-source Brandes betweenness for the s-line graph (ROADMAP
// item 3c): the last Listing-5 metric that only existed as a
// parallel-over-sources kernel with thread-order score merging.  This
// engine restructures Brandes around the PR-3 hybrid frontier machinery so
// the result is *bit-deterministic* — the same doubles for every thread
// count — while every phase still runs parallel:
//
//   forward   level-synchronous BFS per source through par::frontier: the
//             frontier expands top-down in parallel (CAS level claims),
//             then the newly-claimed level pulls its shortest-path counts
//             sigma[v] from the parent level in CSR neighbor order.  Pulling
//             makes each sigma[v] the work of exactly one worker summing in
//             a fixed order, instead of racing atomic pushes.
//   backward  per-level dependency sweep, deepest level first: every vertex
//             of the level pulls delta[w] from its successors (neighbors one
//             level down) in CSR order — the same expression, in the same
//             order, as the textbook serial kernel.
//   merge     per-source dependency vectors are folded into the global
//             scores in source order, one batch at a time: scores[v]
//             accumulates delta over batch slots 0..B-1, batches in
//             submission order, so the floating-point addition order is the
//             source order — independent of worker count and schedule.
//
// Sources are processed in batches of NWHY_BETWEENNESS_BATCH (default 8):
// the batch bounds the extra memory (B dependency vectors of n doubles) and
// amortizes the merge into one sweep per batch.  Batch size never changes
// the result, only the memory/merge tradeoff.
//
// Exact mode runs every vertex as a source; sampled mode draws
// NWHY_BETWEENNESS_SAMPLES seed-driven sources (xoshiro256ss, duplicates
// allowed, matching nw::graph::betweenness_centrality_approx) and scales by
// n / samples — deterministic for a fixed seed at any thread count.
//
// Serial oracle: src/nwhy/ref/serial_betweenness.hpp (std-only textbook
// Brandes; bit-identical by construction, asserted across the differential
// thread ladder by tests/test_betweenness.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwpar/frontier.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::hypergraph {

/// Sources per batch: bounds scratch memory at batch x n doubles and sets
/// the merge cadence.  Strict parse, minimum 1; never affects results.
inline std::size_t betweenness_batch() {
  static const std::size_t b = par::detail::env_knob("NWHY_BETWEENNESS_BATCH", 8);
  return b;
}

/// Default source count of the sampled estimator when the caller passes 0.
inline std::size_t betweenness_samples() {
  static const std::size_t s = par::detail::env_knob("NWHY_BETWEENNESS_SAMPLES", 64);
  return s;
}

namespace detail {

/// Per-source scratch of the batched Brandes engine, reused across sources
/// (keep-capacity).  `order` holds the BFS vertices level by level;
/// `level_start[l]` is the offset of level l, with a final end sentinel.
struct brandes_scratch {
  std::vector<vertex_id_t> dist;
  std::vector<double>      sigma;
  std::vector<vertex_id_t> order;
  std::vector<std::size_t> level_start;
};

/// Level-synchronous forward pass from `s`: BFS levels via frontier
/// expansion (parallel CAS claims into `dist`), then sigma for each new
/// level pulled from the parent level in CSR neighbor order — one writer
/// per sigma[v], summing in a schedule-independent order.  (Sigma values
/// are integer path counts, exact in doubles below 2^53, so they would
/// agree with the push formulation regardless; the pull keeps the whole
/// pass atomics-free past the level claim.)
template <class Graph>
void brandes_forward(const Graph& g, vertex_id_t s, brandes_scratch& ws, par::frontier& f0,
                     par::frontier& f1) {
  const std::size_t n = g.size();
  ws.dist.assign(n, null_vertex<>);
  ws.sigma.assign(n, 0.0);
  ws.order.clear();
  ws.level_start.clear();
  ws.dist[s]  = 0;
  ws.sigma[s] = 1.0;
  ws.order.push_back(s);
  ws.level_start.push_back(0);
  ws.level_start.push_back(1);

  par::frontier* cur = &f0;
  par::frontier* nxt = &f1;
  cur->assign_single(s);
  vertex_id_t level = 0;
  while (!cur->empty()) {
    NWOBS_COUNT("betweenness.levels", 0, 1);
    NWOBS_COUNT("betweenness.frontier_total", 0, cur->size());
    const auto& ids = cur->ids();
    ++level;
    par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
      vertex_id_t u     = ids[i];
      std::size_t local = 0;
      for (auto&& e : g[u]) {
        vertex_id_t v = nw::graph::target(e);
        ++local;
        if (atomic_load(ws.dist[v]) == null_vertex<> &&
            compare_and_swap(ws.dist[v], null_vertex<>, level)) {
          nxt->emit(tid, v);
        }
      }
      NWOBS_COUNT("betweenness.edges_relaxed", tid, local);
    });
    if (nxt->commit_sparse() == 0) break;
    const auto& next_ids = nxt->ids();
    par::parallel_for(0, next_ids.size(), [&](std::size_t i) {
      vertex_id_t v   = next_ids[i];
      double      acc = 0.0;
      for (auto&& e : g[v]) {
        vertex_id_t u = nw::graph::target(e);
        if (ws.dist[u] == level - 1) acc += ws.sigma[u];
      }
      ws.sigma[v] = acc;
    });
    ws.order.insert(ws.order.end(), next_ids.begin(), next_ids.end());
    ws.level_start.push_back(ws.order.size());
    std::swap(cur, nxt);
  }
}

/// Backward dependency sweep: levels deepest-first, each level's vertices
/// in parallel, each pulling delta[w] from its one-level-down successors in
/// CSR order — the exact accumulation expression and order of the textbook
/// serial kernel, so the result is bit-identical to it.  The source's own
/// delta (level 0) is never written and stays 0, matching the `w != s`
/// exclusion of the serial form.
template <class Graph>
void brandes_backward(const Graph& g, const brandes_scratch& ws, std::vector<double>& delta) {
  const std::size_t levels = ws.level_start.size() - 1;
  for (std::size_t lev = levels; lev-- > 1;) {
    const std::size_t lo = ws.level_start[lev];
    const std::size_t hi = ws.level_start[lev + 1];
    par::parallel_for(lo, hi, [&](unsigned tid, std::size_t k) {
      vertex_id_t w   = ws.order[k];
      double      acc = 0.0;
      for (auto&& e : g[w]) {
        vertex_id_t v = nw::graph::target(e);
        if (ws.dist[v] == ws.dist[w] + 1 && ws.sigma[v] > 0) {
          acc += ws.sigma[w] / ws.sigma[v] * (1.0 + delta[v]);
        }
      }
      delta[w] = acc;
      NWOBS_COUNT("betweenness.dependencies", tid, 1);
    });
  }
}

}  // namespace detail

/// Deterministic seed-driven source list of the sampled estimator:
/// `num_samples` draws (with replacement, clamped to n) from xoshiro256ss —
/// the same stream as nw::graph::betweenness_centrality_approx, exposed so
/// oracles and tools can replay the exact source set.
inline std::vector<vertex_id_t> betweenness_sample_sources(std::size_t n,
                                                           std::size_t num_samples,
                                                           std::uint64_t seed) {
  num_samples = std::min(num_samples, n);
  xoshiro256ss             rng(seed);
  std::vector<vertex_id_t> sources(num_samples);
  for (auto& s : sources) s = static_cast<vertex_id_t>(rng.bounded(n));
  return sources;
}

/// Raw (unhalved, unnormalized) Brandes accumulation over an explicit
/// source list, in batches of `batch` (0 = NWHY_BETWEENNESS_BATCH).  The
/// scores are the sum of per-source dependencies *in source order* — the
/// property that makes every entry bit-identical across thread counts and
/// batch sizes.
template <nw::graph::adjacency_list_graph Graph>
std::vector<double> betweenness_over_sources(const Graph& g,
                                             const std::vector<vertex_id_t>& sources,
                                             std::size_t batch = 0) {
  const std::size_t   n = g.size();
  std::vector<double> scores(n, 0.0);
  if (n == 0 || sources.empty()) return scores;
  if (batch == 0) batch = std::max<std::size_t>(1, betweenness_batch());

  NWOBS_SCOPE_TIMER("betweenness");
  detail::brandes_scratch ws;
  par::frontier           f0(n), f1(n);
  std::vector<std::vector<double>> delta(std::min(batch, sources.size()));

  for (std::size_t base = 0; base < sources.size(); base += batch) {
    const std::size_t width = std::min(batch, sources.size() - base);
    NWOBS_COUNT("betweenness.batches", 0, 1);
    for (std::size_t b = 0; b < width; ++b) {
      delta[b].assign(n, 0.0);
      detail::brandes_forward(g, sources[base + b], ws, f0, f1);
      detail::brandes_backward(g, ws, delta[b]);
      NWOBS_COUNT("betweenness.sources", 0, 1);
    }
    // One merge sweep per batch: each vertex sums its batch-slot deltas in
    // slot order, batches arrive in submission order — so the global
    // addition order per vertex is exactly the source order.
    par::parallel_for(0, n, [&](std::size_t v) {
      double acc = scores[v];
      for (std::size_t b = 0; b < width; ++b) acc += delta[b][v];
      scores[v] = acc;
    });
  }
  return scores;
}

/// Exact batched betweenness: every vertex is a source.  Scores are halved
/// (undirected pairs are accumulated from both endpoints) and, when
/// `normalized`, scaled by 2/((n-1)(n-2)) — the same conventions as
/// nw::graph::betweenness_centrality, but bit-deterministic at any thread
/// count.
template <nw::graph::adjacency_list_graph Graph>
std::vector<double> betweenness_batched(const Graph& g, bool normalized = true,
                                        std::size_t batch = 0) {
  const std::size_t        n = g.size();
  std::vector<vertex_id_t> sources(n);
  std::iota(sources.begin(), sources.end(), vertex_id_t{0});
  auto scores = betweenness_over_sources(g, sources, batch);
  for (auto& x : scores) x /= 2.0;  // undirected double-count
  if (normalized && n > 2) {
    double scale = 2.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
    for (auto& x : scores) x *= scale;
  }
  return scores;
}

/// Sampled betweenness: `num_samples` seed-driven sources (0 =
/// NWHY_BETWEENNESS_SAMPLES), scaled by n / samples / 2 like
/// nw::graph::betweenness_centrality_approx.  Same seed => bit-identical
/// scores, at every thread count and batch size.
template <nw::graph::adjacency_list_graph Graph>
std::vector<double> betweenness_sampled(const Graph& g, std::size_t num_samples = 0,
                                        std::uint64_t seed = 42, std::size_t batch = 0) {
  const std::size_t n = g.size();
  if (n == 0) return {};
  if (num_samples == 0) num_samples = std::max<std::size_t>(1, betweenness_samples());
  auto sources = betweenness_sample_sources(n, num_samples, seed);
  auto scores  = betweenness_over_sources(g, sources, batch);
  double scale =
      static_cast<double>(n) / static_cast<double>(sources.size()) / 2.0;
  for (auto& x : scores) x *= scale;
  return scores;
}

}  // namespace nw::hypergraph
