// nwhy/algorithms/hyper_kcore.hpp
//
// (k, l)-core decomposition of a hypergraph: the maximal sub-hypergraph in
// which every surviving hypernode belongs to at least k surviving
// hyperedges and every surviving hyperedge retains at least l surviving
// members.  Computed by alternating peeling to a fixed point.  This is the
// hypergraph generalization of k-core that the related-work frameworks
// expose; the s-line-graph route (`s_core_numbers`) answers the
// hyperedge-overlap variant instead.
#pragma once

#include <vector>

#include "nwhy/biadjacency.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

struct kl_core_result {
  std::vector<char> edge_alive;  ///< 1 = hyperedge survives in the (k, l)-core
  std::vector<char> node_alive;  ///< 1 = hypernode survives
  std::size_t       rounds = 0;  ///< peeling rounds until the fixed point
};

template <class... Attributes>
kl_core_result kl_core(const biadjacency<0, Attributes...>& hyperedges,
                       const biadjacency<1, Attributes...>& hypernodes, std::size_t k,
                       std::size_t l) {
  const std::size_t ne = hyperedges.size();
  const std::size_t nv = hypernodes.size();
  kl_core_result    r;
  r.edge_alive.assign(ne, 1);
  r.node_alive.assign(nv, 1);
  std::vector<std::size_t> edge_size(ne), node_degree(nv);
  for (std::size_t e = 0; e < ne; ++e) edge_size[e] = hyperedges.degree(e);
  for (std::size_t v = 0; v < nv; ++v) node_degree[v] = hypernodes.degree(v);

  bool changed = true;
  while (changed) {
    changed = false;
    ++r.rounds;
    // Peel hyperedges that fell below l members.
    for (std::size_t e = 0; e < ne; ++e) {
      if (!r.edge_alive[e] || edge_size[e] >= l) continue;
      r.edge_alive[e] = 0;
      changed         = true;
      for (auto&& ev : hyperedges[e]) {
        vertex_id_t v = target(ev);
        if (r.node_alive[v]) --node_degree[v];
      }
    }
    // Peel hypernodes that fell below k memberships.
    for (std::size_t v = 0; v < nv; ++v) {
      if (!r.node_alive[v] || node_degree[v] >= k) continue;
      r.node_alive[v] = 0;
      changed         = true;
      for (auto&& ve : hypernodes[v]) {
        vertex_id_t e = target(ve);
        if (r.edge_alive[e]) --edge_size[e];
      }
    }
  }
  return r;
}

/// Convenience counters.
inline std::size_t count_alive(const std::vector<char>& alive) {
  std::size_t n = 0;
  for (auto a : alive) n += a != 0;
  return n;
}

}  // namespace nw::hypergraph
