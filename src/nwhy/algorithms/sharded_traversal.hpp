// nwhy/algorithms/sharded_traversal.hpp
//
// Out-of-core HyperBFS / HyperCC over a sharded NWHYCSR2 snapshot
// (nwhy/io/shard.hpp).  Both engines keep only the per-entity result
// arrays resident and touch the incidence one shard at a time, so peak RSS
// is bounded by the largest shard plus O(n0 + n1) bookkeeping — the model
// ROADMAP item 2 calls for on >RAM hypergraphs.
//
// HyperBFS is level-synchronous with a *per-shard bucketed* edge frontier:
// every edge-expansion pass walks only the shards holding frontier edges,
// in ascending order.  Node expansion has no such locality (a hypernode's
// incident edges spread across shards), so the node frontier is replayed
// against each shard's local sub-index; replays beyond the first shard are
// counted as spilled frontier entries.  Distances are bit-identical to the
// in-memory engine (level-synchronous order is label-invariant); parents
// are deterministic for a fixed shard count (serial shard order, first
// claim wins).
//
// HyperCC runs min-label relaxation sweeps shard by shard to a global
// fixpoint.  The fixpoint of min-label propagation is unique regardless of
// relaxation order, so the labels equal hyper_cc's exactly.
//
// nwobs counters: shard.passes (shard loads), shard.spilled (node-frontier
// replays), plus shard.bytes_loaded / shard.madvise_windows from the
// reader.
#pragma once

#include <cstdint>
#include <vector>

#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/io/shard.hpp"
#include "nwobs/counters.hpp"
#include "nwobs/scope_timer.hpp"
#include "nwutil/defs.hpp"

namespace nw::hypergraph {

/// Out-of-core HyperBFS from hyperedge `source`.  Same result conventions
/// as hyper_bfs: bipartite hop distances, cross-class parents, the source
/// parenting itself; unreached entries are null_vertex.
inline hyper_bfs_result hyper_bfs_sharded(sharded_snapshot& snap, vertex_id_t source) {
  NWOBS_SCOPE_TIMER("hyper_bfs_sharded");
  const std::size_t n0 = static_cast<std::size_t>(snap.num_hyperedges());
  const std::size_t n1 = static_cast<std::size_t>(snap.num_hypernodes());
  const std::size_t K  = snap.num_shards();

  hyper_bfs_result r;
  r.parents_edge.assign(n0, null_vertex<>);
  r.parents_node.assign(n1, null_vertex<>);
  r.dist_edge.assign(n0, null_vertex<>);
  r.dist_node.assign(n1, null_vertex<>);
  if (n0 == 0 || source >= n0) return r;

  r.parents_edge[source] = source;
  r.dist_edge[source]    = 0;

  // Edge frontier bucketed by owning shard; node frontier is global.
  std::vector<std::vector<vertex_id_t>> buckets(K);
  std::vector<vertex_id_t>              node_frontier;
  // Shards with no unvisited edges left are skipped in node expansion.
  std::vector<std::uint64_t> unseen(K);
  for (std::size_t k = 0; k < K; ++k) {
    const auto& s = snap.shard(k);
    unseen[k]     = s.e_end - s.e_begin;
  }
  const std::size_t src_shard = snap.shard_of(source);
  buckets[src_shard].push_back(source);
  --unseen[src_shard];

  vertex_id_t level     = 0;
  bool        edges_any = true;
  while (edges_any) {
    // Edge -> node half-step: only shards holding frontier edges.
    ++level;
    node_frontier.clear();
    for (std::size_t k = 0; k < K; ++k) {
      if (buckets[k].empty()) continue;
      auto view = snap.load_shard(k);
      NWOBS_COUNT("shard.passes", 0, 1);
      for (vertex_id_t e : buckets[k]) {
        for (vertex_id_t v : view.edge_row(e)) {
          if (r.dist_node[v] == null_vertex<>) {
            r.dist_node[v]    = level;
            r.parents_node[v] = e;
            node_frontier.push_back(v);
          }
        }
      }
      buckets[k].clear();
    }
    if (node_frontier.empty()) break;

    // Node -> edge half-step: replay the node frontier per shard (claimed
    // edges land in their own shard's bucket by construction).
    ++level;
    edges_any = false;
    std::size_t touched = 0;
    for (std::size_t k = 0; k < K; ++k) {
      if (unseen[k] == 0) continue;
      auto view = snap.load_shard(k);
      NWOBS_COUNT("shard.passes", 0, 1);
      ++touched;
      for (vertex_id_t v : node_frontier) {
        for (vertex_id_t e : view.node_row(v)) {
          if (r.dist_edge[e] == null_vertex<>) {
            r.dist_edge[e]    = level;
            r.parents_edge[e] = v;
            buckets[k].push_back(e);
            --unseen[k];
            edges_any = true;
          }
        }
      }
    }
    if (touched > 1) {
      NWOBS_COUNT("shard.spilled", 0, node_frontier.size() * (touched - 1));
    }
  }
  snap.release_shard();
  return r;
}

/// Out-of-core HyperCC: min-label relaxation swept shard by shard until a
/// full pass changes nothing.  Labels match hyper_cc exactly (per-component
/// minimum hyperedge id on both sides; isolated hypernodes keep ne + v).
inline hyper_cc_result hyper_cc_sharded(sharded_snapshot& snap) {
  NWOBS_SCOPE_TIMER("hyper_cc_sharded");
  const std::size_t n0 = static_cast<std::size_t>(snap.num_hyperedges());
  const std::size_t n1 = static_cast<std::size_t>(snap.num_hypernodes());
  const std::size_t K  = snap.num_shards();

  hyper_cc_result r;
  r.labels_edge.resize(n0);
  r.labels_node.resize(n1);
  for (std::size_t e = 0; e < n0; ++e) r.labels_edge[e] = static_cast<vertex_id_t>(e);
  for (std::size_t v = 0; v < n1; ++v) r.labels_node[v] = static_cast<vertex_id_t>(n0 + v);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t k = 0; k < K; ++k) {
      auto view = snap.load_shard(k);
      NWOBS_COUNT("shard.passes", 0, 1);
      // Relax within the shard to a local fixpoint before moving on — each
      // load then pays for as much propagation as the shard supports.
      bool local = true;
      while (local) {
        local = false;
        for (vertex_id_t e = view.e_begin; e < view.e_end; ++e) {
          vertex_id_t le = r.labels_edge[e];
          for (vertex_id_t v : view.edge_row(e)) {
            if (r.labels_node[v] < le) le = r.labels_node[v];
          }
          if (le < r.labels_edge[e]) {
            r.labels_edge[e] = le;
            local            = true;
          }
        }
        for (std::size_t v = 0; v < n1; ++v) {
          vertex_id_t lv = r.labels_node[v];
          for (vertex_id_t e : view.node_row(static_cast<vertex_id_t>(v))) {
            if (r.labels_edge[e] < lv) lv = r.labels_edge[e];
          }
          if (lv < r.labels_node[v]) {
            r.labels_node[v] = lv;
            local            = true;
          }
        }
        if (local) changed = true;
      }
    }
  }
  snap.release_shard();
  return r;
}

}  // namespace nw::hypergraph
