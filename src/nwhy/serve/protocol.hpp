// nwhy/serve/protocol.hpp
//
// The NWSERVE1 wire protocol: a length-prefixed binary request/reply
// framing for the `nwhy_serve` query daemon.  docs/PROTOCOL.md is the
// normative grammar; this header is its executable twin — every rule the
// document states (header layout, field domains, per-opcode payload
// shapes, size caps) is enforced here, and the crafted-frame suite in
// tests/test_serve.cpp holds the two in lockstep.
//
// Design constraints, in order:
//
//   1. A malformed frame must never be undefined behavior.  Every read out
//      of a payload goes through the bounds-checked `wire_reader`; every
//      length field is capped before any allocation; the fuzz suite runs
//      under asan/ubsan.
//   2. Replies are byte-deterministic.  The differential stress suite
//      compares server replies bit-exactly against replies synthesized
//      from direct library calls, so nothing time- or thread-dependent
//      (elapsed times, worker ids) may leak into reply bytes.
//   3. Fixed-size little-endian fields, explicitly serialized.  No struct
//      punning: encode/decode shift bytes, so the format is identical on
//      any host endianness and there are no alignment traps.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nwutil/defs.hpp"

namespace nw::hypergraph::serve {

/// Frame magic: the bytes "NWS1" on the wire (read as a little-endian u32).
inline constexpr std::uint32_t k_magic = 0x3153574Eu;

/// Fixed frame-header size, both directions.
inline constexpr std::size_t k_header_bytes = 32;

/// Hard cap on request payloads.  Every request opcode's payload is a small
/// fixed-size record, so anything near this limit is already hostile; the
/// reader rejects larger claims *before* allocating.
inline constexpr std::uint64_t k_max_request_payload = 4096;

/// Hard cap on reply payloads (bounds the neighbors list).  A reply that
/// would exceed it is answered with status::too_large instead.
inline constexpr std::uint64_t k_max_reply_payload = 1u << 20;

/// Hard cap on error-message payloads.
inline constexpr std::size_t k_max_error_message = 256;

/// Upper bound on the `s` parameter; larger values are certainly a crafted
/// frame (overlap cardinalities are bounded by hyperedge sizes).
inline constexpr std::uint32_t k_max_s = 1u << 20;

/// Request opcodes.  Replies echo the request's opcode.
enum class opcode : std::uint16_t {
  ping         = 0x01,  ///< no payload; replies ok with no payload
  stats        = 0x02,  ///< {u32 graph}
  neighbors    = 0x03,  ///< {u32 graph, u32 s, u64 edge}
  s_distance   = 0x04,  ///< {u32 graph, u32 s, u64 src, u64 dst}
  bfs          = 0x05,  ///< {u32 graph, u64 source_edge}
  s_components = 0x06,  ///< {u32 graph, u32 s}
  centrality   = 0x07,  ///< {u32 graph, u32 s, u32 kind, u64 edge}
  sleep_debug  = 0x7E,  ///< {u64 millis}; only when debug ops are enabled
  shutdown     = 0x7F,  ///< no payload; only when remote shutdown is enabled
};

/// Centrality kinds for opcode::centrality.
enum class centrality_kind : std::uint32_t {
  closeness    = 0,  ///< reply carries a double's bit pattern
  harmonic     = 1,  ///< reply carries a double's bit pattern
  eccentricity = 2,  ///< reply carries a plain u64
};

/// Reply status codes.  Requests must carry 0 here.
enum class status : std::uint16_t {
  ok                = 0,
  bad_frame         = 1,   ///< malformed header field or payload shape
  bad_opcode        = 2,   ///< unknown (or disabled) opcode
  no_graph          = 3,   ///< graph id names no published generation
  bad_entity        = 4,   ///< entity id out of range for the pinned graph
  bad_s             = 5,   ///< s == 0 or s > k_max_s
  busy              = 6,   ///< admission queue full — retry later
  deadline_exceeded = 7,   ///< deadline passed before or during execution
  too_large         = 8,   ///< reply would exceed k_max_reply_payload
  shutting_down     = 9,   ///< server is draining; no new work accepted
  internal_error    = 10,  ///< unexpected server-side failure
};

[[nodiscard]] inline const char* status_name(status s) {
  switch (s) {
    case status::ok: return "ok";
    case status::bad_frame: return "bad_frame";
    case status::bad_opcode: return "bad_opcode";
    case status::no_graph: return "no_graph";
    case status::bad_entity: return "bad_entity";
    case status::bad_s: return "bad_s";
    case status::busy: return "busy";
    case status::deadline_exceeded: return "deadline_exceeded";
    case status::too_large: return "too_large";
    case status::shutting_down: return "shutting_down";
    case status::internal_error: return "internal_error";
  }
  return "unknown";
}

[[nodiscard]] inline const char* opcode_name(opcode op) {
  switch (op) {
    case opcode::ping: return "ping";
    case opcode::stats: return "stats";
    case opcode::neighbors: return "neighbors";
    case opcode::s_distance: return "s_distance";
    case opcode::bfs: return "bfs";
    case opcode::s_components: return "s_components";
    case opcode::centrality: return "centrality";
    case opcode::sleep_debug: return "sleep_debug";
    case opcode::shutdown: return "shutdown";
  }
  return "unknown";
}

/// A malformed frame detected while *decoding* — the reader's recoverable
/// rejection path (the server turns it into a status::bad_frame reply).
struct protocol_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// --- little-endian primitives ------------------------------------------------

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}
[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounds-checked payload cursor.  Overruns throw protocol_error — the one
/// recoverable rejection path for short-for-their-opcode payloads.
class wire_reader {
public:
  explicit wire_reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = get_u32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = get_u64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Every decode ends here: trailing bytes are as malformed as missing ones.
  void expect_end(const char* what) const {
    if (remaining() != 0) {
      throw protocol_error(std::string(what) + ": " + std::to_string(remaining()) +
                           " trailing payload byte(s)");
    }
  }

private:
  void need(std::size_t n, const char* what) const {
    if (bytes_.size() - pos_ < n) {
      throw protocol_error(std::string("payload truncated reading ") + what);
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t                   pos_ = 0;
};

// --- frame header ------------------------------------------------------------

/// Both directions share one 32-byte header.  Requests: status == 0,
/// reserved == 0, deadline_ms == 0 means "server default".  Replies echo
/// opcode and request_id, carry the status, and zero the last two fields
/// (nothing time-dependent may enter reply bytes — see file comment).
struct frame_header {
  std::uint32_t magic       = k_magic;
  std::uint16_t op          = 0;
  std::uint16_t stat        = 0;
  std::uint64_t request_id  = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t reserved    = 0;
};

inline void encode_header(const frame_header& h, std::vector<std::uint8_t>& out) {
  put_u32(out, h.magic);
  put_u16(out, h.op);
  put_u16(out, h.stat);
  put_u64(out, h.request_id);
  put_u64(out, h.payload_len);
  put_u32(out, h.deadline_ms);
  put_u32(out, h.reserved);
}

[[nodiscard]] inline frame_header decode_header(const std::uint8_t (&raw)[k_header_bytes]) {
  frame_header h;
  h.magic       = get_u32(raw + 0);
  h.op          = get_u16(raw + 4);
  h.stat        = get_u16(raw + 6);
  h.request_id  = get_u64(raw + 8);
  h.payload_len = get_u64(raw + 16);
  h.deadline_ms = get_u32(raw + 24);
  h.reserved    = get_u32(raw + 28);
  return h;
}

/// One whole frame as contiguous bytes, ready to write to a socket.
[[nodiscard]] inline std::vector<std::uint8_t> encode_frame(
    opcode op, status st, std::uint64_t request_id, std::span<const std::uint8_t> payload,
    std::uint32_t deadline_ms = 0) {
  frame_header h;
  h.op          = static_cast<std::uint16_t>(op);
  h.stat        = static_cast<std::uint16_t>(st);
  h.request_id  = request_id;
  h.payload_len = payload.size();
  h.deadline_ms = deadline_ms;
  std::vector<std::uint8_t> out;
  out.reserve(k_header_bytes + payload.size());
  encode_header(h, out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// --- reply digests -----------------------------------------------------------

/// FNV-1a-64 over the little-endian bytes of a u32 array — how BFS distance
/// and component-label arrays travel in summary replies.  The differential
/// suite applies the same digest to arrays computed by direct library calls,
/// so a single flipped element anywhere fails the bit-exact comparison.
[[nodiscard]] inline std::uint64_t digest_u32(std::span<const std::uint32_t> values) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint32_t v : values) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// --- typed request payloads --------------------------------------------------

struct stats_request {
  std::uint32_t graph = 0;
};
struct neighbors_request {
  std::uint32_t graph = 0;
  std::uint32_t s     = 1;
  std::uint64_t edge  = 0;
};
struct s_distance_request {
  std::uint32_t graph = 0;
  std::uint32_t s     = 1;
  std::uint64_t src   = 0;
  std::uint64_t dst   = 0;
};
struct bfs_request {
  std::uint32_t graph  = 0;
  std::uint64_t source = 0;
};
struct s_components_request {
  std::uint32_t graph = 0;
  std::uint32_t s     = 1;
};
struct centrality_request {
  std::uint32_t graph = 0;
  std::uint32_t s     = 1;
  std::uint32_t kind  = 0;
  std::uint64_t edge  = 0;
};

[[nodiscard]] inline std::vector<std::uint8_t> encode(const stats_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const neighbors_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  put_u32(out, r.s);
  put_u64(out, r.edge);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const s_distance_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  put_u32(out, r.s);
  put_u64(out, r.src);
  put_u64(out, r.dst);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const bfs_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  put_u64(out, r.source);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const s_components_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  put_u32(out, r.s);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const centrality_request& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, r.graph);
  put_u32(out, r.s);
  put_u32(out, r.kind);
  put_u64(out, r.edge);
  return out;
}

[[nodiscard]] inline stats_request decode_stats(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  stats_request q;
  q.graph = r.u32();
  r.expect_end("stats");
  return q;
}
[[nodiscard]] inline neighbors_request decode_neighbors(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  neighbors_request q;
  q.graph = r.u32();
  q.s     = r.u32();
  q.edge  = r.u64();
  r.expect_end("neighbors");
  return q;
}
[[nodiscard]] inline s_distance_request decode_s_distance(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  s_distance_request q;
  q.graph = r.u32();
  q.s     = r.u32();
  q.src   = r.u64();
  q.dst   = r.u64();
  r.expect_end("s_distance");
  return q;
}
[[nodiscard]] inline bfs_request decode_bfs(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  bfs_request q;
  q.graph  = r.u32();
  q.source = r.u64();
  r.expect_end("bfs");
  return q;
}
[[nodiscard]] inline s_components_request decode_s_components(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  s_components_request q;
  q.graph = r.u32();
  q.s     = r.u32();
  r.expect_end("s_components");
  return q;
}
[[nodiscard]] inline centrality_request decode_centrality(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  centrality_request q;
  q.graph = r.u32();
  q.s     = r.u32();
  q.kind  = r.u32();
  q.edge  = r.u64();
  r.expect_end("centrality");
  return q;
}

// --- typed reply payloads ----------------------------------------------------

/// The sentinel carried by s_distance replies for "unreachable" (and the
/// only distance value outside [0, 2^32)).
inline constexpr std::uint64_t k_unreachable = ~std::uint64_t{0};

struct stats_reply {
  std::uint64_t num_hyperedges = 0;
  std::uint64_t num_hypernodes = 0;
  std::uint64_t num_incidences = 0;
  std::uint64_t epoch          = 0;

  bool operator==(const stats_reply&) const = default;
};
struct bfs_reply {
  std::uint64_t reached_edges = 0;
  std::uint64_t reached_nodes = 0;
  std::uint64_t max_depth     = 0;  ///< deepest reached *hyperedge* level
  std::uint64_t edge_digest   = 0;  ///< digest_u32 of the dist_edge array
  std::uint64_t node_digest   = 0;  ///< digest_u32 of the dist_node array

  bool operator==(const bfs_reply&) const = default;
};
struct s_components_reply {
  std::uint64_t num_components = 0;
  std::uint64_t labels_digest  = 0;  ///< digest_u32 of the per-edge label array

  bool operator==(const s_components_reply&) const = default;
};

[[nodiscard]] inline std::vector<std::uint8_t> encode(const stats_reply& r) {
  std::vector<std::uint8_t> out;
  put_u64(out, r.num_hyperedges);
  put_u64(out, r.num_hypernodes);
  put_u64(out, r.num_incidences);
  put_u64(out, r.epoch);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const bfs_reply& r) {
  std::vector<std::uint8_t> out;
  put_u64(out, r.reached_edges);
  put_u64(out, r.reached_nodes);
  put_u64(out, r.max_depth);
  put_u64(out, r.edge_digest);
  put_u64(out, r.node_digest);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode(const s_components_reply& r) {
  std::vector<std::uint8_t> out;
  put_u64(out, r.num_components);
  put_u64(out, r.labels_digest);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode_neighbors_reply(
    std::span<const nw::vertex_id_t> sorted_ids) {
  std::vector<std::uint8_t> out;
  put_u64(out, sorted_ids.size());
  for (nw::vertex_id_t v : sorted_ids) put_u64(out, v);
  return out;
}
[[nodiscard]] inline std::vector<std::uint8_t> encode_u64_reply(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  put_u64(out, v);
  return out;
}

[[nodiscard]] inline stats_reply decode_stats_reply(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  stats_reply q;
  q.num_hyperedges = r.u64();
  q.num_hypernodes = r.u64();
  q.num_incidences = r.u64();
  q.epoch          = r.u64();
  r.expect_end("stats reply");
  return q;
}
[[nodiscard]] inline bfs_reply decode_bfs_reply(std::span<const std::uint8_t> p) {
  wire_reader r(p);
  bfs_reply q;
  q.reached_edges = r.u64();
  q.reached_nodes = r.u64();
  q.max_depth     = r.u64();
  q.edge_digest   = r.u64();
  q.node_digest   = r.u64();
  r.expect_end("bfs reply");
  return q;
}
[[nodiscard]] inline s_components_reply decode_s_components_reply(
    std::span<const std::uint8_t> p) {
  wire_reader r(p);
  s_components_reply q;
  q.num_components = r.u64();
  q.labels_digest  = r.u64();
  r.expect_end("s_components reply");
  return q;
}
[[nodiscard]] inline std::vector<nw::vertex_id_t> decode_neighbors_reply(
    std::span<const std::uint8_t> p) {
  wire_reader   r(p);
  std::uint64_t n = r.u64();
  if (n > (k_max_reply_payload - 8) / 8) {
    throw protocol_error("neighbors reply claims " + std::to_string(n) + " ids");
  }
  if (r.remaining() != n * 8) {
    throw protocol_error("neighbors reply length does not match its count");
  }
  std::vector<nw::vertex_id_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(static_cast<nw::vertex_id_t>(r.u64()));
  }
  return out;
}
[[nodiscard]] inline std::uint64_t decode_u64_reply(std::span<const std::uint8_t> p) {
  wire_reader   r(p);
  std::uint64_t v = r.u64();
  r.expect_end("u64 reply");
  return v;
}

/// Double <-> wire bits for the centrality replies (bit pattern travels, so
/// the differential comparison is exact, not epsilon-based).
[[nodiscard]] inline std::uint64_t double_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}
[[nodiscard]] inline double bits_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

}  // namespace nw::hypergraph::serve
