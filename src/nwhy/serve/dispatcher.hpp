// nwhy/serve/dispatcher.hpp
//
// The server's execution engine: a fixed worker pool fed by a bounded
// admission queue, socket-agnostic (completion is a callback, so the same
// dispatcher serves TCP, Unix-socket, and in-process test traffic).
//
// Admission policy, in the order a request experiences it:
//
//   1. Bounded queue.  `submit()` refuses (returns false) when the queue is
//      at capacity — the caller replies status::busy immediately.  An
//      explicit early EBUSY beats silent unbounded queueing: under overload
//      clients see backpressure in microseconds instead of timeouts in
//      seconds, and memory stays bounded.
//   2. Deadline at dequeue.  Work whose deadline passed while queued is
//      answered deadline_exceeded without executing — a request that waited
//      too long is dead; running it anyway would only steal time from live
//      ones.  Mid-execution, kernels poll the same token at frontier
//      boundaries (see query.hpp).
//   3. Coalescing.  Identical pure queries (same opcode + payload bytes +
//      generation epoch) collapse: the first becomes the leader and
//      executes; duplicates arriving while it runs become followers that
//      wait on the leader's completion and share its reply bytes.  The
//      epoch in the key makes coalescing safe across generation swaps — a
//      query pinned to the old generation can never be answered with the
//      new one's result.  Followers are only ever joined to a *running*
//      leader, so the wait cannot deadlock: the leader occupies a different
//      worker and always completes.
//
// Metrics flow through nwobs (per-opcode request counters, busy/deadline/
// coalesce counters, peak queue depth) plus an in-dispatcher latency ring
// from which `snapshot()` derives p50/p99 and QPS.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nwhy/serve/query.hpp"
#include "nwobs/counters.hpp"
#include "nwutil/env.hpp"

namespace nw::hypergraph::serve {

/// Point-in-time dispatcher statistics (micros for latencies; QPS measured
/// over the dispatcher's lifetime).
struct dispatch_metrics {
  std::uint64_t completed         = 0;
  std::uint64_t rejected_busy     = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t coalesced         = 0;
  std::uint64_t queue_depth_peak  = 0;
  double        qps               = 0.0;
  double        p50_us            = 0.0;
  double        p99_us            = 0.0;
};

class dispatcher {
public:
  using completion_fn = std::function<void(reply_data)>;

  struct options {
    /// Worker count; 0 = NWHY_SERVE_THREADS, else hardware_concurrency.
    unsigned threads = 0;
    /// Admission-queue capacity; 0 = NWHY_SERVE_QUEUE, else 1024.
    std::size_t queue_capacity = 0;
  };

  dispatcher() : dispatcher(options{}) {}

  explicit dispatcher(options opt) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads_ = opt.threads != 0
                   ? opt.threads
                   : static_cast<unsigned>(nw::util::env_u64_strict("NWHY_SERVE_THREADS", hw,
                                                                    1, 4096));
    capacity_ = opt.queue_capacity != 0
                    ? opt.queue_capacity
                    : static_cast<std::size_t>(nw::util::env_u64_strict("NWHY_SERVE_QUEUE",
                                                                        1024, 1, 1u << 20));
#if NWHY_OBS
    // Resolve every per-opcode counter up front: worker threads then only
    // touch their own padded slot (no lazy-init race, no registry lock on
    // the request path).
    for (std::size_t i = 0; i < k_num_op_counters; ++i) {
      counters_[i] = &nw::obs::registry::get().get_counter(k_op_counter_names[i]);
    }
#endif
    for (unsigned t = 0; t < threads_; ++t) {
      workers_.emplace_back([this, t] { worker_loop(t); });
    }
  }

  dispatcher(const dispatcher&)            = delete;
  dispatcher& operator=(const dispatcher&) = delete;
  ~dispatcher() { stop(); }

  [[nodiscard]] unsigned    num_threads() const { return threads_; }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }

  /// Enqueue one request.  `graph` may be null for non-graph ops
  /// (sleep_debug).  Returns false when the queue is full or the dispatcher
  /// is stopping — the caller must send the busy / shutting_down reply
  /// itself (submit never invokes `done` on refusal, keeping the
  /// completion path single-threaded per connection).
  [[nodiscard]] bool submit(std::shared_ptr<const serve_graph> graph, opcode op,
                            std::vector<std::uint8_t> payload, deadline_token dl,
                            completion_fn done) {
    work_item item;
    item.graph    = std::move(graph);
    item.op       = op;
    item.payload  = std::move(payload);
    item.deadline = dl;
    item.done     = std::move(done);
    item.enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard lock(queue_mu_);
      if (stopping_ || queue_.size() >= capacity_) {
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        NWOBS_COUNT("serve.rejected_busy", nw::obs::counter::slot_capacity, 1);
        return false;
      }
      queue_.push_back(std::move(item));
      NWOBS_GAUGE_MAX("serve.queue_depth_peak", queue_.size());
      std::uint64_t depth = queue_.size();
      std::uint64_t peak  = queue_peak_.load(std::memory_order_relaxed);
      while (depth > peak &&
             !queue_peak_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
      }
    }
    queue_cv_.notify_one();
    return true;
  }

  /// Stop accepting work, answer everything still queued with
  /// shutting_down, finish in-flight work, join the pool.  Idempotent.
  void stop() {
    {
      std::lock_guard lock(queue_mu_);
      if (stopping_) {
        // Second caller: workers are already draining; fall through to join.
      }
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    // Anything still queued (workers exited before draining it) gets a
    // structured refusal rather than silence.
    std::deque<work_item> leftovers;
    {
      std::lock_guard lock(queue_mu_);
      leftovers.swap(queue_);
    }
    for (auto& item : leftovers) {
      item.done(error_reply(status::shutting_down, "server stopping"));
    }
  }

  /// Current metrics; also mirrors the derived latency gauges into nwobs so
  /// profile exports carry them.
  [[nodiscard]] dispatch_metrics snapshot() const {
    dispatch_metrics m;
    m.completed         = completed_.load(std::memory_order_relaxed);
    m.rejected_busy     = rejected_busy_.load(std::memory_order_relaxed);
    m.deadline_exceeded = deadlines_.load(std::memory_order_relaxed);
    m.coalesced         = coalesced_.load(std::memory_order_relaxed);
    m.queue_depth_peak  = queue_peak_.load(std::memory_order_relaxed);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
    if (elapsed_s > 0) m.qps = static_cast<double>(m.completed) / elapsed_s;

    std::vector<std::uint32_t> lat;
    {
      std::lock_guard lock(ring_mu_);
      lat.assign(ring_.begin(), ring_.end());
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      m.p50_us = lat[lat.size() / 2];
      m.p99_us = lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
    }
    NWOBS_GAUGE_SET("serve.latency_p50_us", static_cast<std::uint64_t>(m.p50_us));
    NWOBS_GAUGE_SET("serve.latency_p99_us", static_cast<std::uint64_t>(m.p99_us));
    return m;
  }

private:
  struct work_item {
    std::shared_ptr<const serve_graph>    graph;
    opcode                                op = opcode::ping;
    std::vector<std::uint8_t>             payload;
    deadline_token                        deadline;
    completion_fn                         done;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Shared completion state for one coalesced leader + its followers.
  struct inflight {
    std::mutex              mu;
    std::condition_variable cv;
    bool                    finished = false;
    reply_data              reply;
  };

  /// Only deterministic graph reads coalesce; debug/control ops never do.
  [[nodiscard]] static bool coalescable(opcode op) {
    switch (op) {
      case opcode::stats:
      case opcode::neighbors:
      case opcode::s_distance:
      case opcode::bfs:
      case opcode::s_components:
      case opcode::centrality:
        return true;
      default:
        return false;
    }
  }

  /// Identical queries hash to the same key only within one generation —
  /// the epoch prefix is what makes a swap-concurrent duplicate miss.
  [[nodiscard]] static std::string coalesce_key(const work_item& item) {
    std::string key;
    key.reserve(2 + 8 + item.payload.size());
    key.push_back(static_cast<char>(static_cast<std::uint16_t>(item.op)));
    key.push_back(static_cast<char>(static_cast<std::uint16_t>(item.op) >> 8));
    const std::uint64_t epoch = item.graph ? item.graph->epoch : 0;
    for (int i = 0; i < 8; ++i) key.push_back(static_cast<char>(epoch >> (8 * i)));
    key.append(item.payload.begin(), item.payload.end());
    return key;
  }

  static constexpr std::size_t      k_num_op_counters = 9;
  static constexpr std::string_view k_op_counter_names[k_num_op_counters] = {
      "serve.req.ping",       "serve.req.stats",       "serve.req.neighbors",
      "serve.req.s_distance", "serve.req.bfs",         "serve.req.s_components",
      "serve.req.centrality", "serve.req.sleep_debug", "serve.req.other",
  };

  void count_request(unsigned tid, opcode op) {
    std::size_t idx;
    switch (op) {
      case opcode::ping: idx = 0; break;
      case opcode::stats: idx = 1; break;
      case opcode::neighbors: idx = 2; break;
      case opcode::s_distance: idx = 3; break;
      case opcode::bfs: idx = 4; break;
      case opcode::s_components: idx = 5; break;
      case opcode::centrality: idx = 6; break;
      case opcode::sleep_debug: idx = 7; break;
      default: idx = 8; break;
    }
#if NWHY_OBS
    counters_[idx]->add(tid, 1);
#else
    (void)tid;
    (void)idx;
#endif
  }

  void worker_loop(unsigned tid) {
    for (;;) {
      work_item item;
      {
        std::unique_lock lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ && drained
        item = std::move(queue_.front());
        queue_.pop_front();
        if (stopping_) {
          // Draining: refuse instead of executing, so stop() is prompt even
          // with a deep queue of slow queries.
          lock.unlock();
          item.done(error_reply(status::shutting_down, "server stopping"));
          continue;
        }
      }
      count_request(tid, item.op);
      if (item.deadline.expired()) {
        finish(item, error_reply(status::deadline_exceeded, "deadline passed in queue"));
        continue;
      }
      run(tid, std::move(item));
    }
  }

  void run(unsigned tid, work_item item) {
    if (!coalescable(item.op)) {
      finish(item, execute(item));
      return;
    }
    const std::string key = coalesce_key(item);
    std::shared_ptr<inflight> state;
    bool                      leader = false;
    {
      std::lock_guard lock(inflight_mu_);
      auto            it = inflight_.find(key);
      if (it != inflight_.end()) {
        state = it->second;
      } else {
        state  = std::make_shared<inflight>();
        leader = true;
        inflight_.emplace(key, state);
      }
    }
    if (leader) {
      reply_data reply = execute(item);
      {
        std::lock_guard lock(inflight_mu_);
        inflight_.erase(key);
      }
      {
        std::lock_guard lock(state->mu);
        state->reply    = reply;  // copy: followers still need it
        state->finished = true;
      }
      state->cv.notify_all();
      finish(item, std::move(reply));
    } else {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      NWOBS_COUNT("serve.coalesced", tid, 1);
      std::unique_lock lock(state->mu);
      if (auto when = item.deadline.when()) {
        if (!state->cv.wait_until(lock, *when, [&] { return state->finished; })) {
          lock.unlock();
          finish(item, error_reply(status::deadline_exceeded,
                                   "deadline passed awaiting coalesced leader"));
          return;
        }
      } else {
        state->cv.wait(lock, [&] { return state->finished; });
      }
      reply_data reply = state->reply;
      lock.unlock();
      finish(item, std::move(reply));
    }
  }

  [[nodiscard]] reply_data execute(const work_item& item) {
    if (item.op == opcode::sleep_debug) return run_sleep(item);
    if (!item.graph) return error_reply(status::no_graph, "no generation published");
    return execute_query(*item.graph, item.op, item.payload, item.deadline);
  }

  /// Debug-only busy worker: sleeps in short slices so a deadline still
  /// cancels promptly (the test-suite's stand-in for a pathologically slow
  /// query).
  [[nodiscard]] reply_data run_sleep(const work_item& item) {
    wire_reader   r(item.payload);
    std::uint64_t millis = 0;
    try {
      millis = r.u64();
      r.expect_end("sleep_debug");
    } catch (const protocol_error& e) {
      return error_reply(status::bad_frame, e.what());
    }
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
    while (std::chrono::steady_clock::now() < until) {
      if (item.deadline.expired()) {
        return error_reply(status::deadline_exceeded, "deadline exceeded mid-sleep");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return {status::ok, {}};
  }

  void finish(const work_item& item, reply_data reply) {
    if (reply.st == status::deadline_exceeded) {
      deadlines_.fetch_add(1, std::memory_order_relaxed);
      NWOBS_COUNT("serve.deadline_exceeded", nw::obs::counter::slot_capacity, 1);
    }
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - item.enqueued)
                            .count();
    {
      std::lock_guard lock(ring_mu_);
      if (ring_.size() < k_ring_capacity) {
        ring_.push_back(static_cast<std::uint32_t>(std::min<long long>(micros, UINT32_MAX)));
      } else {
        ring_[ring_next_++ % k_ring_capacity] =
            static_cast<std::uint32_t>(std::min<long long>(micros, UINT32_MAX));
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    item.done(std::move(reply));
  }

  static constexpr std::size_t k_ring_capacity = 4096;

  unsigned                 threads_  = 1;
  std::size_t              capacity_ = 1024;
  std::vector<std::thread> workers_;

  std::mutex              queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<work_item>   queue_;
  bool                    stopping_ = false;

  std::mutex                                                inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<inflight>> inflight_;

  mutable std::mutex         ring_mu_;
  std::vector<std::uint32_t> ring_;
  std::size_t                ring_next_ = 0;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> deadlines_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> queue_peak_{0};

#if NWHY_OBS
  nw::obs::counter* counters_[k_num_op_counters] = {};
#endif

  const std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
};

}  // namespace nw::hypergraph::serve
