// nwhy/serve/query.hpp
//
// The server's read-only view of one published hypergraph, and the query
// kernels that answer requests from it.
//
// Two properties drive everything here:
//
//   * Immutability is the concurrency story.  A `serve_graph` pins one
//     `hypergraph_generation` (CSRs + any mmap'd snapshot bytes behind the
//     io_keepalive) and precomputed degree vectors; nothing in it mutates
//     after construction, so any number of worker threads may execute
//     kernels against it with no locks.  `NWHypergraph`'s own query methods
//     are deliberately NOT used at serve time — its lazily-built caches
//     (adjoin/composed) make const calls thread-unsafe.
//
//   * Replies are differentially checkable.  Every kernel reproduces the
//     library algorithm it mirrors *bit-exactly* — same traversal
//     conventions, same sentinels, and for the centralities the same
//     floating-point accumulation order — so tests/test_serve.cpp can
//     compare server reply bytes against replies synthesized from direct
//     library calls.  The kernels are serial per request; server
//     parallelism comes from running many requests across the worker pool,
//     not from intra-query threading (which would cost determinism for
//     nothing at interactive sizes).
//
// Deadlines: kernels poll a `deadline_token` at frontier/level boundaries
// and bail by throwing `deadline_error`, which `execute_query` maps to
// status::deadline_exceeded.  Boundary-granularity cancellation keeps the
// hot inner loops branch-free.
#pragma once

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/serve/protocol.hpp"
#include "nwhy/slinegraph/implicit.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::hypergraph::serve {

/// A per-request cancellation point.  Default-constructed = no deadline.
class deadline_token {
public:
  using clock = std::chrono::steady_clock;

  deadline_token() = default;
  explicit deadline_token(clock::time_point when) : when_(when) {}

  [[nodiscard]] bool expired() const { return when_ && clock::now() >= *when_; }

  /// Called at frontier/level boundaries inside the kernels.
  void check() const {
    if (expired()) throw deadline_error{};
  }

  [[nodiscard]] std::optional<clock::time_point> when() const { return when_; }

  struct deadline_error {};

private:
  std::optional<clock::time_point> when_;
};

/// One published, immutable, epoch-stamped hypergraph.  Everything a query
/// needs, with no shared mutable state.
struct serve_graph {
  std::shared_ptr<const hypergraph_generation> gen;
  std::vector<std::size_t>                     edge_degrees;
  std::vector<std::size_t>                     node_degrees;
  /// Registry-assigned publication epoch (monotonic across all publishes).
  std::uint64_t epoch = 0;

  [[nodiscard]] std::size_t num_hyperedges() const { return edge_degrees.size(); }
  [[nodiscard]] std::size_t num_hypernodes() const { return node_degrees.size(); }
  [[nodiscard]] std::size_t num_incidences() const { return gen->el.size(); }
};

/// Snapshot a hypergraph into a serveable view.  The source must be
/// compacted (no pending delta) and in external-id storage order — the
/// generation CSRs are then exactly the composed structure, and every
/// kernel below answers in external ids.  Throws std::logic_error
/// otherwise, mirroring require_compacted.
[[nodiscard]] inline serve_graph make_serve_graph(const NWHypergraph& h) {
  if (h.has_pending_delta()) {
    throw std::logic_error("make_serve_graph: compact() the hypergraph first");
  }
  if (h.is_relabeled()) {
    throw std::logic_error("make_serve_graph: derelabel() the hypergraph first");
  }
  serve_graph g;
  g.gen          = h.generation();
  g.edge_degrees = h.edge_sizes();
  g.node_degrees = h.node_degrees();
  return g;
}

// --- kernels -----------------------------------------------------------------

/// s-neighbors of `edge`, ascending — the same id set and order the
/// materialized `s_linegraph::s_neighbors` returns (its CSR rows are built
/// sorted).  Serial twin of detail::for_each_s_neighbor's expansion.
[[nodiscard]] inline std::vector<vertex_id_t> serve_s_neighbors(const serve_graph& g,
                                                                std::size_t s,
                                                                vertex_id_t edge) {
  std::vector<vertex_id_t> out;
  counting_hashmap<>       overlap;
  detail::for_each_s_neighbor(g.gen->hyperedges, g.gen->hypernodes, g.edge_degrees, s, edge,
                              overlap, [&](vertex_id_t ej) { out.push_back(ej); });
  std::sort(out.begin(), out.end());
  return out;
}

/// Serial twin of s_distance_implicit: nullopt when unreachable *or either
/// endpoint inactive* (degree < s — even when src == dst, matching the
/// implicit kernel's early-out order).
[[nodiscard]] inline std::optional<std::size_t> serve_s_distance(const serve_graph& g,
                                                                 std::size_t s, vertex_id_t src,
                                                                 vertex_id_t dst,
                                                                 const deadline_token& dl) {
  if (g.edge_degrees[src] < s || g.edge_degrees[dst] < s) return std::nullopt;
  if (src == dst) return 0;
  const std::size_t        ne = g.num_hyperedges();
  std::vector<vertex_id_t> dist(ne, null_vertex<>);
  dist[src] = 0;
  counting_hashmap<>       overlap;
  std::vector<vertex_id_t> frontier{src};
  std::vector<vertex_id_t> next;
  vertex_id_t              level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vertex_id_t u : frontier) {
      // Deadline poll per frontier vertex, not per level: one vertex's
      // overlap expansion is already heavy, and a whole level of a large
      // graph can run for seconds — far past any useful deadline.
      dl.check();
      detail::for_each_s_neighbor(g.gen->hyperedges, g.gen->hypernodes, g.edge_degrees, s, u,
                                  overlap, [&](vertex_id_t ej) {
                                    if (dist[ej] == null_vertex<>) {
                                      dist[ej] = level;
                                      if (ej == dst) return;
                                      next.push_back(ej);
                                    }
                                  });
      if (dist[dst] != null_vertex<>) return static_cast<std::size_t>(level);
    }
    frontier.swap(next);
  }
  return std::nullopt;
}

/// Distances from `src` in the (never materialized) s-line graph — the
/// exact array `nw::graph::bfs_distances(linegraph, src)` would produce:
/// dist[src] = 0 unconditionally, null_vertex for unreached.  Shared by the
/// three centrality kernels.
[[nodiscard]] inline std::vector<vertex_id_t> serve_s_bfs_distances(const serve_graph& g,
                                                                    std::size_t s,
                                                                    vertex_id_t src,
                                                                    const deadline_token& dl) {
  const std::size_t        ne = g.num_hyperedges();
  std::vector<vertex_id_t> dist(ne, null_vertex<>);
  dist[src] = 0;
  counting_hashmap<>       overlap;
  std::vector<vertex_id_t> frontier{src};
  std::vector<vertex_id_t> next;
  vertex_id_t              level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vertex_id_t u : frontier) {
      dl.check();  // per-vertex: see serve_s_distance
      detail::for_each_s_neighbor(g.gen->hyperedges, g.gen->hypernodes, g.edge_degrees, s, u,
                                  overlap, [&](vertex_id_t ej) {
                                    if (dist[ej] == null_vertex<>) {
                                      dist[ej] = level;
                                      next.push_back(ej);
                                    }
                                  });
    }
    frontier.swap(next);
  }
  return dist;
}

/// Single-source s-closeness, aggregated in vertex-index order exactly as
/// s_linegraph::s_closeness_centrality(v) does — identical doubles, not
/// just approximately equal ones.
[[nodiscard]] inline double serve_s_closeness(const serve_graph& g, std::size_t s,
                                              vertex_id_t v, const deadline_token& dl) {
  auto        dist      = serve_s_bfs_distances(g, s, v, dl);
  double      total     = 0.0;
  std::size_t reachable = 0;
  for (auto d : dist) {
    if (d != null_vertex<> && d != 0) {
      total += static_cast<double>(d);
      ++reachable;
    }
  }
  return total > 0 ? static_cast<double>(reachable) / total : 0.0;
}

/// Single-source s-harmonic-closeness, same accumulation order as the
/// library overload.
[[nodiscard]] inline double serve_s_harmonic(const serve_graph& g, std::size_t s, vertex_id_t v,
                                             const deadline_token& dl) {
  auto   dist  = serve_s_bfs_distances(g, s, v, dl);
  double total = 0.0;
  for (auto d : dist) {
    if (d != null_vertex<> && d != 0) total += 1.0 / static_cast<double>(d);
  }
  return total;
}

/// Single-source s-eccentricity (max finite distance; 0 for isolated).
[[nodiscard]] inline vertex_id_t serve_s_eccentricity(const serve_graph& g, std::size_t s,
                                                      vertex_id_t v, const deadline_token& dl) {
  auto        dist = serve_s_bfs_distances(g, s, v, dl);
  vertex_id_t ecc  = 0;
  for (auto d : dist) {
    if (d != null_vertex<>) ecc = std::max(ecc, d);
  }
  return ecc;
}

/// Serial twin of s_connected_components_implicit: ascending-seed floods,
/// label = seed (the minimum active id in the component, by scan order),
/// inactive hyperedges labeled null_vertex.
[[nodiscard]] inline std::vector<vertex_id_t> serve_s_components(const serve_graph& g,
                                                                 std::size_t s,
                                                                 const deadline_token& dl) {
  const std::size_t        ne = g.num_hyperedges();
  std::vector<vertex_id_t> comp(ne, null_vertex<>);
  counting_hashmap<>       overlap;
  std::vector<vertex_id_t> frontier;
  std::vector<vertex_id_t> next;
  for (std::size_t seed = 0; seed < ne; ++seed) {
    if (g.edge_degrees[seed] < s || comp[seed] != null_vertex<>) continue;
    dl.check();
    comp[seed] = static_cast<vertex_id_t>(seed);
    frontier.assign(1, static_cast<vertex_id_t>(seed));
    while (!frontier.empty()) {
      next.clear();
      for (vertex_id_t u : frontier) {
        dl.check();  // per-vertex: see serve_s_distance
        detail::for_each_s_neighbor(g.gen->hyperedges, g.gen->hypernodes, g.edge_degrees, s, u,
                                    overlap, [&](vertex_id_t ej) {
                                      if (comp[ej] == null_vertex<>) {
                                        comp[ej] = static_cast<vertex_id_t>(seed);
                                        next.push_back(ej);
                                      }
                                    });
      }
      frontier.swap(next);
    }
  }
  return comp;
}

/// Serial twin of NWHypergraph::composed_bfs on the generation CSRs:
/// alternating bipartite levels, dist_edge[source] = 0, level incremented
/// per half-step.  Summarized into the fixed-size bfs_reply (counts, max
/// hyperedge depth, digests of both distance arrays).
[[nodiscard]] inline bfs_reply serve_bfs(const serve_graph& g, vertex_id_t source,
                                         const deadline_token& dl) {
  const std::size_t        ne = g.num_hyperedges();
  const std::size_t        nn = g.num_hypernodes();
  std::vector<vertex_id_t> dist_edge(ne, null_vertex<>);
  std::vector<vertex_id_t> dist_node(nn, null_vertex<>);
  dist_edge[source] = 0;
  std::vector<vertex_id_t> frontier{source};
  std::vector<vertex_id_t> next;
  bool                     edge_side = true;
  vertex_id_t              level     = 0;
  while (!frontier.empty()) {
    dl.check();
    ++level;
    next.clear();
    for (vertex_id_t u : frontier) {
      auto& dist = edge_side ? dist_node : dist_edge;
      if (edge_side) {
        for (auto&& ev : g.gen->hyperedges[u]) {
          vertex_id_t v = target(ev);
          if (dist[v] == null_vertex<>) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      } else {
        for (auto&& ve : g.gen->hypernodes[u]) {
          vertex_id_t v = target(ve);
          if (dist[v] == null_vertex<>) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
    edge_side = !edge_side;
  }

  bfs_reply r;
  for (vertex_id_t d : dist_edge) {
    if (d != null_vertex<>) {
      ++r.reached_edges;
      r.max_depth = std::max<std::uint64_t>(r.max_depth, d);
    }
  }
  for (vertex_id_t d : dist_node) {
    if (d != null_vertex<>) ++r.reached_nodes;
  }
  r.edge_digest = digest_u32(dist_edge);
  r.node_digest = digest_u32(dist_node);
  return r;
}

// --- request execution -------------------------------------------------------

/// A finished reply, socket-agnostic.
struct reply_data {
  status                    st = status::internal_error;
  std::vector<std::uint8_t> payload;
};

[[nodiscard]] inline reply_data error_reply(status st, std::string_view message) {
  reply_data r;
  r.st = st;
  message = message.substr(0, k_max_error_message);
  r.payload.assign(message.begin(), message.end());
  return r;
}

/// Execute one already-framed request against one pinned graph.  All
/// payload decoding happens here, inside the try — a payload that is the
/// wrong shape for its (known) opcode answers bad_frame, never throws out.
/// Graph resolution (status::no_graph) and admission (busy/shutting_down)
/// are the caller's concern; this function assumes `g` is valid.
[[nodiscard]] inline reply_data execute_query(const serve_graph& g, opcode op,
                                              std::span<const std::uint8_t> payload,
                                              const deadline_token& dl) {
  try {
    switch (op) {
      case opcode::stats: {
        (void)decode_stats(payload);
        stats_reply out;
        out.num_hyperedges = g.num_hyperedges();
        out.num_hypernodes = g.num_hypernodes();
        out.num_incidences = g.num_incidences();
        out.epoch          = g.epoch;
        return {status::ok, encode(out)};
      }
      case opcode::neighbors: {
        auto q = decode_neighbors(payload);
        if (q.s == 0 || q.s > k_max_s) return error_reply(status::bad_s, "invalid s");
        if (q.edge >= g.num_hyperedges()) {
          return error_reply(status::bad_entity, "hyperedge id out of range");
        }
        auto ids = serve_s_neighbors(g, q.s, static_cast<vertex_id_t>(q.edge));
        if (8 + 8 * ids.size() > k_max_reply_payload) {
          return error_reply(status::too_large, "neighbor list exceeds reply cap");
        }
        return {status::ok, encode_neighbors_reply(ids)};
      }
      case opcode::s_distance: {
        auto q = decode_s_distance(payload);
        if (q.s == 0 || q.s > k_max_s) return error_reply(status::bad_s, "invalid s");
        if (q.src >= g.num_hyperedges() || q.dst >= g.num_hyperedges()) {
          return error_reply(status::bad_entity, "hyperedge id out of range");
        }
        auto d = serve_s_distance(g, q.s, static_cast<vertex_id_t>(q.src),
                                  static_cast<vertex_id_t>(q.dst), dl);
        return {status::ok, encode_u64_reply(d ? static_cast<std::uint64_t>(*d)
                                               : k_unreachable)};
      }
      case opcode::bfs: {
        auto q = decode_bfs(payload);
        if (q.source >= g.num_hyperedges()) {
          return error_reply(status::bad_entity, "source hyperedge out of range");
        }
        return {status::ok, encode(serve_bfs(g, static_cast<vertex_id_t>(q.source), dl))};
      }
      case opcode::s_components: {
        auto q = decode_s_components(payload);
        if (q.s == 0 || q.s > k_max_s) return error_reply(status::bad_s, "invalid s");
        auto labels = serve_s_components(g, q.s, dl);
        s_components_reply out;
        for (std::size_t i = 0; i < labels.size(); ++i) {
          if (labels[i] == static_cast<vertex_id_t>(i)) ++out.num_components;
        }
        out.labels_digest = digest_u32(labels);
        return {status::ok, encode(out)};
      }
      case opcode::centrality: {
        auto q = decode_centrality(payload);
        if (q.s == 0 || q.s > k_max_s) return error_reply(status::bad_s, "invalid s");
        if (q.edge >= g.num_hyperedges()) {
          return error_reply(status::bad_entity, "hyperedge id out of range");
        }
        const auto v = static_cast<vertex_id_t>(q.edge);
        switch (static_cast<centrality_kind>(q.kind)) {
          case centrality_kind::closeness:
            return {status::ok, encode_u64_reply(double_bits(serve_s_closeness(g, q.s, v, dl)))};
          case centrality_kind::harmonic:
            return {status::ok, encode_u64_reply(double_bits(serve_s_harmonic(g, q.s, v, dl)))};
          case centrality_kind::eccentricity:
            return {status::ok, encode_u64_reply(serve_s_eccentricity(g, q.s, v, dl))};
        }
        return error_reply(status::bad_frame, "unknown centrality kind");
      }
      default:
        return error_reply(status::bad_opcode, "opcode not executable against a graph");
    }
  } catch (const protocol_error& e) {
    return error_reply(status::bad_frame, e.what());
  } catch (const deadline_token::deadline_error&) {
    return error_reply(status::deadline_exceeded, "deadline exceeded mid-query");
  } catch (const std::exception& e) {
    return error_reply(status::internal_error, e.what());
  }
}

}  // namespace nw::hypergraph::serve
