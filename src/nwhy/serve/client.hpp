// nwhy/serve/client.hpp
//
// Blocking nwhy_serve client: one connection, synchronous request/reply.
// Used by the `nwhy_serve load`/`ask` modes, bench_serve's load generator,
// and the differential stress suite.  The typed helpers return the decoded
// reply plus its status; `send_raw`/`recv_raw` expose the byte layer so the
// crafted-frame tests can speak deliberately malformed protocol.
//
// A receive timeout (default 60 s) is set on the socket so a server bug
// fails a test with a clear error instead of hanging it; the window is
// deliberately generous because the suites also run under TSan at ~10x
// slowdown.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nwhy/serve/protocol.hpp"
#include "nwhy/serve/server.hpp"

namespace nw::hypergraph::serve {

/// One decoded reply frame.
struct client_reply {
  opcode                    op = opcode::ping;
  status                    st = status::internal_error;
  std::uint64_t             request_id = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool ok() const { return st == status::ok; }
  /// Error replies carry a bounded human-readable message.
  [[nodiscard]] std::string message() const {
    return {payload.begin(), payload.end()};
  }
};

class client {
public:
  client() = default;
  ~client() { close(); }
  client(const client&)            = delete;
  client& operator=(const client&) = delete;
  client(client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  client& operator=(client&& o) noexcept {
    if (this != &o) {
      close();
      fd_   = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  /// Connect to "unix:<path>" or "tcp:<host>:<port>" (host must be an IPv4
  /// literal — the daemon only ever binds loopback).  Throws on failure.
  void connect(const std::string& address, std::uint32_t recv_timeout_s = 60) {
    close();
    if (address.rfind("unix:", 0) == 0) {
      const std::string path = address.substr(5);
      sockaddr_un       addr{};
      addr.sun_family = AF_UNIX;
      if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("client: bad unix socket path: " + path);
      }
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) throw std::runtime_error("client: socket() failed");
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        int err = errno;
        close();
        throw std::runtime_error("client: connect(" + path + ") failed: " +
                                 std::strerror(err));
      }
    } else if (address.rfind("tcp:", 0) == 0) {
      const std::string rest  = address.substr(4);
      const std::size_t colon = rest.rfind(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("client: tcp address needs host:port: " + address);
      }
      const std::string host = rest.substr(0, colon);
      const int         port = std::stoi(rest.substr(colon + 1));
      if (port <= 0 || port > 65535) {
        throw std::runtime_error("client: bad tcp port in: " + address);
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port   = htons(static_cast<std::uint16_t>(port));
      if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error("client: bad IPv4 host in: " + address);
      }
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) throw std::runtime_error("client: socket() failed");
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        int err = errno;
        close();
        throw std::runtime_error("client: connect(" + rest + ") failed: " +
                                 std::strerror(err));
      }
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } else {
      throw std::runtime_error("client: address must start with unix: or tcp:, got " +
                               address);
    }
    if (recv_timeout_s > 0) {
      timeval tv{};
      tv.tv_sec = recv_timeout_s;
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  // --- byte layer (fuzz tests speak this directly) -------------------------

  /// Write arbitrary bytes; throws if the connection drops mid-write.
  void send_raw(std::span<const std::uint8_t> bytes) {
    if (!net::send_full(fd_, bytes.data(), bytes.size())) {
      throw std::runtime_error("client: send failed (connection closed?)");
    }
  }

  /// Read one reply frame; nullopt on clean EOF (how the server answers
  /// frames it cannot reply to).  Throws on timeout or a frame that is
  /// itself malformed — a server must never produce one.
  [[nodiscard]] std::optional<client_reply> recv_reply() {
    std::uint8_t raw[k_header_bytes];
    if (!read_or_eof(raw, sizeof raw)) return std::nullopt;
    const frame_header h = decode_header(raw);
    if (h.magic != k_magic) throw std::runtime_error("client: reply with bad magic");
    if (h.payload_len > k_max_reply_payload) {
      throw std::runtime_error("client: reply payload over cap");
    }
    client_reply r;
    r.op         = static_cast<opcode>(h.op);
    r.st         = static_cast<status>(h.stat);
    r.request_id = h.request_id;
    r.payload.resize(static_cast<std::size_t>(h.payload_len));
    if (h.payload_len > 0 && !read_or_eof(r.payload.data(), r.payload.size())) {
      throw std::runtime_error("client: reply truncated");
    }
    return r;
  }

  // --- framed request/reply ------------------------------------------------

  /// Send one well-formed request and wait for its reply.  nullopt on clean
  /// disconnect before a reply arrives.
  [[nodiscard]] std::optional<client_reply> call(opcode op,
                                                 std::span<const std::uint8_t> payload,
                                                 std::uint32_t deadline_ms = 0) {
    const std::uint64_t id = next_id_++;
    send_raw(encode_frame(op, status::ok, id, payload, deadline_ms));
    auto r = recv_reply();
    if (r && r->request_id != id) {
      throw std::runtime_error("client: reply id mismatch (pipelining bug?)");
    }
    return r;
  }

  // --- typed helpers -------------------------------------------------------

  [[nodiscard]] std::optional<client_reply> ping() { return call(opcode::ping, {}); }
  [[nodiscard]] std::optional<client_reply> stats(std::uint32_t graph,
                                                  std::uint32_t deadline_ms = 0) {
    return call(opcode::stats, encode(stats_request{graph}), deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> neighbors(std::uint32_t graph, std::uint32_t s,
                                                      std::uint64_t edge,
                                                      std::uint32_t deadline_ms = 0) {
    return call(opcode::neighbors, encode(neighbors_request{graph, s, edge}), deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> s_distance(std::uint32_t graph, std::uint32_t s,
                                                       std::uint64_t src, std::uint64_t dst,
                                                       std::uint32_t deadline_ms = 0) {
    return call(opcode::s_distance, encode(s_distance_request{graph, s, src, dst}),
                deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> bfs(std::uint32_t graph, std::uint64_t source,
                                                std::uint32_t deadline_ms = 0) {
    return call(opcode::bfs, encode(bfs_request{graph, source}), deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> s_components(std::uint32_t graph, std::uint32_t s,
                                                         std::uint32_t deadline_ms = 0) {
    return call(opcode::s_components, encode(s_components_request{graph, s}), deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> centrality(std::uint32_t graph, std::uint32_t s,
                                                       centrality_kind kind,
                                                       std::uint64_t   edge,
                                                       std::uint32_t   deadline_ms = 0) {
    return call(opcode::centrality,
                encode(centrality_request{graph, s, static_cast<std::uint32_t>(kind), edge}),
                deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> sleep_debug(std::uint64_t millis,
                                                        std::uint32_t deadline_ms = 0) {
    return call(opcode::sleep_debug, encode_u64_reply(millis), deadline_ms);
  }
  [[nodiscard]] std::optional<client_reply> shutdown() { return call(opcode::shutdown, {}); }

private:
  /// read_full, but distinguishing first-byte EOF (clean close → false)
  /// from mid-read truncation and timeouts (throw).
  [[nodiscard]] bool read_or_eof(void* buf, std::size_t len) {
    auto*       p    = static_cast<std::uint8_t*>(buf);
    std::size_t got  = 0;
    while (got < len) {
      ssize_t n = ::recv(fd_, p + got, len - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
      } else if (n == 0) {
        if (got == 0) return false;
        throw std::runtime_error("client: connection closed mid-frame");
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("client: receive timeout waiting for reply");
      } else {
        throw std::runtime_error(std::string("client: recv failed: ") + std::strerror(errno));
      }
    }
    return true;
  }

  int           fd_      = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace nw::hypergraph::serve
