// nwhy/serve/server.hpp
//
// The socket front-end of nwhy_serve: accepts connections on a Unix or TCP
// loopback listener, frames requests off each connection (one reader
// thread per connection), and hands them to the dispatcher.  Replies are
// written by whichever worker finishes the request — out of order relative
// to arrival — under a per-connection write mutex, matched to requests by
// the echoed request_id.
//
// Malformed-input policy (normative in docs/PROTOCOL.md, enforced here and
// in the decode layer, proven by the crafted-frame suite):
//
//   * not our protocol (bad magic)            → close, no reply
//   * unframeable (bad header fields,
//     payload_len over the request cap)       → bad_frame reply, then close
//     — after a length lie the byte stream cannot be re-synchronized
//   * truncated stream (EOF mid-frame)        → clean close
//   * unknown opcode, sane framing           → bad_opcode reply, connection
//     stays usable
//   * known opcode, wrong payload shape      → bad_frame reply, connection
//     stays usable (the frame boundary was still trustworthy)
//
// Generation lifecycle: the server owns a generation_registry; `publish()`
// installs a new epoch atomically while connection threads pin the current
// one per request.  A pin taken before a swap answers from the old
// generation; one taken after answers from the new — never a mixture,
// because a request resolves its pin exactly once.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nwhy/serve/dispatcher.hpp"
#include "nwhy/serve/registry.hpp"
#include "nwutil/env.hpp"

namespace nw::hypergraph::serve {

namespace net {

/// recv() exactly `len` bytes; false on EOF or error (EINTR retried).
inline bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
    } else if (n == 0) {
      return false;
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

/// send() all of `len` bytes; false on error (EINTR retried, SIGPIPE
/// suppressed — a vanished client must not kill the daemon).
inline bool send_full(int fd, const void* buf, std::size_t len) {
  auto* p = static_cast<const std::uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace net

class server {
public:
  struct options {
    /// Exactly one of these selects the listener: a Unix-socket path, or a
    /// TCP loopback port (0 = ephemeral; read the result from bound_port()).
    std::string   unix_path;
    bool          use_tcp  = false;
    std::uint16_t tcp_port = 0;

    unsigned    threads        = 0;  ///< dispatcher workers (0 = env/hw default)
    std::size_t queue_capacity = 0;  ///< admission queue (0 = env default)
    /// Default per-request deadline when the frame carries 0; 0 = consult
    /// NWHY_SERVE_DEADLINE_MS, whose own default (0) means "no deadline".
    std::uint32_t default_deadline_ms = 0;
    std::size_t   num_slots           = 4;     ///< graph slots in the registry
    std::size_t   max_connections     = 256;   ///< concurrent connection cap
    bool          enable_debug_ops    = false; ///< accept opcode::sleep_debug
    bool          allow_shutdown      = false; ///< accept opcode::shutdown
  };

  explicit server(options opt)
      : opt_(std::move(opt)),
        registry_(opt_.num_slots),
        dispatcher_({opt_.threads, opt_.queue_capacity}) {
    if (opt_.default_deadline_ms == 0) {
      opt_.default_deadline_ms = static_cast<std::uint32_t>(
          nw::util::env_u64_strict("NWHY_SERVE_DEADLINE_MS", 0, 0, 3'600'000));
    }
    listen_fd_ = opt_.use_tcp ? listen_tcp() : listen_unix();
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  server(const server&)            = delete;
  server& operator=(const server&) = delete;
  ~server() { stop(); }

  /// Publish a graph into a slot (epoch assigned by the registry).
  std::uint64_t publish(std::uint32_t slot, serve_graph graph) {
    return registry_.publish(slot, std::move(graph));
  }

  [[nodiscard]] const generation_registry& registry() const { return registry_; }
  [[nodiscard]] dispatch_metrics           metrics() const { return dispatcher_.snapshot(); }
  [[nodiscard]] unsigned                   num_workers() const { return dispatcher_.num_threads(); }
  [[nodiscard]] std::uint16_t              bound_port() const { return bound_port_; }

  /// "unix:<path>" or "tcp:127.0.0.1:<port>" — what clients connect() to.
  [[nodiscard]] std::string address() const {
    if (opt_.use_tcp) return "tcp:127.0.0.1:" + std::to_string(bound_port_);
    return "unix:" + opt_.unix_path;
  }

  /// Block until a shutdown request arrives (opcode::shutdown, or stop()
  /// from another thread).  The daemon's main thread parks here.
  void wait() {
    std::unique_lock lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
  }

  /// Tear down: close the listener, shut down every live connection, join
  /// all threads, drain the dispatcher.  Must not be called from a
  /// connection thread (it joins them); the shutdown opcode therefore only
  /// *signals* wait() and lets the owning thread call stop().  Idempotent.
  void stop() {
    {
      std::lock_guard lock(shutdown_mu_);
      if (stopped_) return;
      stopped_            = true;
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    std::unordered_map<std::thread::id, std::thread> threads;
    {
      std::lock_guard lock(conns_mu_);
      for (auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
      threads.swap(conn_threads_);
      finished_.clear();
    }
    for (auto& [id, t] : threads) {
      if (t.joinable()) t.join();
    }
    dispatcher_.stop();
    {
      std::lock_guard lock(conns_mu_);
      conns_.clear();
    }
    if (!opt_.use_tcp && !opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  }

private:
  /// Shared between the connection's reader thread and every in-flight
  /// completion callback; the fd closes only when the last holder drops,
  /// so a late reply can never write to a recycled descriptor.
  struct conn_state {
    explicit conn_state(int f) : fd(f) {}
    ~conn_state() {
      if (fd >= 0) ::close(fd);
    }
    conn_state(const conn_state&)            = delete;
    conn_state& operator=(const conn_state&) = delete;

    int        fd;
    std::mutex write_mu;  ///< workers reply out of order; frames must not interleave
  };

  [[nodiscard]] int listen_unix() {
    if (opt_.unix_path.empty()) {
      throw std::runtime_error("server: unix_path required without use_tcp");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("server: unix socket path too long: " + opt_.unix_path);
    }
    std::memcpy(addr.sun_path, opt_.unix_path.c_str(), opt_.unix_path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("server: socket() failed");
    ::unlink(opt_.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      int err = errno;
      ::close(fd);
      throw std::runtime_error("server: bind(" + opt_.unix_path +
                               ") failed: " + std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
      int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("server: listen() failed: ") + std::strerror(err));
    }
    return fd;
  }

  [[nodiscard]] int listen_tcp() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("server: socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family      = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port        = htons(opt_.tcp_port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("server: bind(127.0.0.1:") +
                               std::to_string(opt_.tcp_port) +
                               ") failed: " + std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound_port_ = ntohs(addr.sin_port);
    }
    if (::listen(fd, 64) != 0) {
      int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("server: listen() failed: ") + std::strerror(err));
    }
    return fd;
  }

  void accept_loop() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      {
        std::lock_guard lock(shutdown_mu_);
        if (stopped_) {
          ::close(fd);
          return;
        }
      }
      auto conn = std::make_shared<conn_state>(fd);
      {
        std::lock_guard lock(conns_mu_);
        reap_finished();
        if (conns_.size() >= opt_.max_connections) {
          // Over the cap: refuse by immediate close (conn dtor closes fd).
          continue;
        }
        conns_.push_back(conn);
      }
      std::thread t([this, conn] {
        connection_loop(conn);
        finish_connection(conn);
      });
      std::lock_guard lock(conns_mu_);
      conn_threads_.emplace(t.get_id(), std::move(t));
    }
  }

  /// Runs on the connection's own thread once its reader loop exits, for
  /// any reason (client EOF, bad magic, length lie).  The shutdown() makes
  /// the close visible to the peer immediately — a protocol-violating
  /// client must observe EOF now, not when the whole server stops — while
  /// the fd itself closes when the last completion callback drops `conn`.
  /// Dropping the conns_ entry also frees its max_connections slot.
  void finish_connection(const std::shared_ptr<conn_state>& conn) {
    ::shutdown(conn->fd, SHUT_RDWR);
    std::lock_guard lock(conns_mu_);
    std::erase(conns_, conn);
    finished_.push_back(std::this_thread::get_id());
  }

  /// Join connection threads that announced completion (called under
  /// conns_mu_).  An id not yet registered in conn_threads_ — the thread
  /// outran accept_loop's emplace — stays queued for the next pass.
  void reap_finished() {
    std::vector<std::thread::id> keep;
    for (auto id : finished_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) {
        keep.push_back(id);
        continue;
      }
      it->second.join();
      conn_threads_.erase(it);
    }
    finished_ = std::move(keep);
  }

  void send_reply(const std::shared_ptr<conn_state>& conn, opcode op, status st,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload) {
    auto            frame = encode_frame(op, st, request_id, payload);
    std::lock_guard lock(conn->write_mu);
    // A failed send means the client vanished; its reader thread will see
    // the close and exit — nothing to do here.
    (void)net::send_full(conn->fd, frame.data(), frame.size());
  }

  [[nodiscard]] deadline_token resolve_deadline(std::uint32_t frame_ms) const {
    const std::uint32_t ms = frame_ms != 0 ? frame_ms : opt_.default_deadline_ms;
    if (ms == 0) return deadline_token{};
    return deadline_token(deadline_token::clock::now() + std::chrono::milliseconds(ms));
  }

  [[nodiscard]] static bool known_opcode(std::uint16_t op) {
    switch (static_cast<opcode>(op)) {
      case opcode::ping:
      case opcode::stats:
      case opcode::neighbors:
      case opcode::s_distance:
      case opcode::bfs:
      case opcode::s_components:
      case opcode::centrality:
      case opcode::sleep_debug:
      case opcode::shutdown:
        return true;
    }
    return false;
  }

  void connection_loop(std::shared_ptr<conn_state> conn) {
    std::vector<std::uint8_t> payload;
    for (;;) {
      std::uint8_t raw[k_header_bytes];
      if (!net::read_full(conn->fd, raw, sizeof raw)) return;  // EOF / torn header
      const frame_header h  = decode_header(raw);
      const auto         op = static_cast<opcode>(h.op);

      if (h.magic != k_magic) return;  // not our protocol: close silently
      if (h.stat != 0 || h.reserved != 0) {
        send_reply(conn, op, status::bad_frame, h.request_id,
                   as_bytes("request header carries nonzero status/reserved"));
        return;
      }
      if (h.payload_len > k_max_request_payload) {
        // The claimed length may be a lie (up to ~2^64); the stream cannot
        // be re-synchronized past it, so reply and drop the connection.
        send_reply(conn, op, status::bad_frame, h.request_id,
                   as_bytes("request payload length exceeds cap"));
        return;
      }
      payload.resize(static_cast<std::size_t>(h.payload_len));
      if (h.payload_len > 0 && !net::read_full(conn->fd, payload.data(), payload.size())) {
        return;  // truncated payload: clean close
      }

      if (!known_opcode(h.op)) {
        send_reply(conn, op, status::bad_opcode, h.request_id, as_bytes("unknown opcode"));
        continue;  // framing was sound; connection stays usable
      }

      switch (op) {
        case opcode::ping: {
          send_reply(conn, op,
                     payload.empty() ? status::ok : status::bad_frame, h.request_id,
                     payload.empty() ? std::span<const std::uint8_t>{}
                                     : as_bytes("ping carries no payload"));
          continue;
        }
        case opcode::shutdown: {
          if (!opt_.allow_shutdown) {
            send_reply(conn, op, status::bad_opcode, h.request_id,
                       as_bytes("shutdown disabled"));
            continue;
          }
          if (!payload.empty()) {
            send_reply(conn, op, status::bad_frame, h.request_id,
                       as_bytes("shutdown carries no payload"));
            continue;
          }
          send_reply(conn, op, status::ok, h.request_id, {});
          {
            std::lock_guard lock(shutdown_mu_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          continue;
        }
        case opcode::sleep_debug: {
          if (!opt_.enable_debug_ops) {
            send_reply(conn, op, status::bad_opcode, h.request_id,
                       as_bytes("debug ops disabled"));
            continue;
          }
          dispatch(conn, op, h, nullptr, std::move(payload));
          continue;
        }
        default: {
          // Every graph opcode's payload starts with the u32 slot id; the
          // pin must resolve here, pre-queue, so the coalescing key (and
          // the reply) bind to exactly one epoch.
          if (payload.size() < 4) {
            send_reply(conn, op, status::bad_frame, h.request_id,
                       as_bytes("payload too short for a graph request"));
            continue;
          }
          auto graph = registry_.pin(get_u32(payload.data()));
          if (!graph) {
            send_reply(conn, op, status::no_graph, h.request_id,
                       as_bytes("no generation published for graph id"));
            continue;
          }
          dispatch(conn, op, h, std::move(graph), std::move(payload));
          continue;
        }
      }
    }
  }

  void dispatch(const std::shared_ptr<conn_state>& conn, opcode op, const frame_header& h,
                std::shared_ptr<const serve_graph> graph,
                std::vector<std::uint8_t>          payload) {
    const std::uint64_t request_id = h.request_id;
    const bool accepted = dispatcher_.submit(
        std::move(graph), op, std::move(payload), resolve_deadline(h.deadline_ms),
        [this, conn, op, request_id](reply_data reply) {
          send_reply(conn, op, reply.st, request_id, reply.payload);
        });
    if (!accepted) {
      send_reply(conn, op, status::busy, request_id, as_bytes("admission queue full"));
    }
  }

  [[nodiscard]] static std::span<const std::uint8_t> as_bytes(std::string_view s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
  }

  options              opt_;
  generation_registry  registry_;
  dispatcher           dispatcher_;
  int                  listen_fd_  = -1;
  std::uint16_t        bound_port_ = 0;
  std::thread          accept_thread_;

  std::mutex                                       conns_mu_;
  std::vector<std::shared_ptr<conn_state>>         conns_;
  std::unordered_map<std::thread::id, std::thread> conn_threads_;
  std::vector<std::thread::id>                     finished_;

  std::mutex              shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool                    shutdown_requested_ = false;
  bool                    stopped_            = false;
};

}  // namespace nw::hypergraph::serve
