// nwhy/serve/registry.hpp
//
// Epoch-pinned generation publication — the server's only writer/reader
// rendezvous.  Readers `pin()` a slot and get a shared_ptr to an immutable
// serve_graph; publishers `publish()` a replacement, which becomes visible
// atomically (one mutex-guarded pointer swap — no reader ever observes a
// half-installed graph, so no reply can mix two generations).  The
// displaced generation is *retired*, not destroyed: in-flight pins keep it
// (and its mmap'd snapshot bytes, via the generation's io_keepalive) alive,
// and it is reclaimed by plain shared_ptr accounting when the last pin
// drops.  `retired_live()` exposes that accounting so tests can prove
// reclamation actually happens instead of trusting it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nwhy/serve/query.hpp"

namespace nw::hypergraph::serve {

class generation_registry {
public:
  explicit generation_registry(std::size_t num_slots = 1) : slots_(num_slots) {}

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

  /// Pin the current generation of `slot`.  nullptr when the slot id is out
  /// of range or nothing has been published there yet (→ status::no_graph).
  /// The returned shared_ptr IS the pin: the generation cannot be reclaimed
  /// while the caller holds it.
  [[nodiscard]] std::shared_ptr<const serve_graph> pin(std::uint32_t slot) const {
    if (slot >= slots_.size()) return nullptr;
    std::lock_guard lock(slots_[slot].mu);
    return slots_[slot].current;
  }

  /// Publish `graph` into `slot`, stamping it with the next epoch.  The old
  /// generation (if any) moves to the retired list as a weak_ptr; expired
  /// entries are pruned on the way.  Returns the assigned epoch.
  std::uint64_t publish(std::uint32_t slot, serve_graph graph) {
    if (slot >= slots_.size()) throw std::out_of_range("generation_registry: bad slot");
    graph.epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto fresh  = std::make_shared<const serve_graph>(std::move(graph));
    std::lock_guard lock(slots_[slot].mu);
    if (slots_[slot].current) {
      prune_retired(slots_[slot]);
      slots_[slot].retired.emplace_back(slots_[slot].current);
    }
    slots_[slot].current = std::move(fresh);
    return slots_[slot].current->epoch;
  }

  /// Number of displaced generations of `slot` still kept alive by reader
  /// pins.  Drops to 0 once every in-flight query against the old
  /// generation has finished — the observable form of epoch reclamation.
  [[nodiscard]] std::size_t retired_live(std::uint32_t slot) const {
    if (slot >= slots_.size()) return 0;
    std::lock_guard lock(slots_[slot].mu);
    std::size_t     live = 0;
    for (const auto& w : slots_[slot].retired) {
      if (!w.expired()) ++live;
    }
    return live;
  }

private:
  struct slot_state {
    mutable std::mutex                                mu;
    std::shared_ptr<const serve_graph>                current;
    std::vector<std::weak_ptr<const serve_graph>>     retired;
  };

  static void prune_retired(slot_state& s) {
    std::erase_if(s.retired, [](const auto& w) { return w.expired(); });
  }

  std::vector<slot_state>    slots_;
  std::atomic<std::uint64_t> next_epoch_{0};
};

}  // namespace nw::hypergraph::serve
