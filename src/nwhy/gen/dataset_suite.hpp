// nwhy/gen/dataset_suite.hpp
//
// The benchmark dataset suite: laptop-scale synthetic analogs of the six
// hypergraphs in the paper's Table I.  Sizes are scaled down ~100-300x
// (documented in EXPERIMENTS.md) while preserving each input's qualitative
// shape — skew, edge/node ratio, and component structure — which is what
// the evaluation's conclusions rest on:
//
//   com-Orkut-sim    social, skewed, |V| > |E| per original ratios
//   Friendster-sim   social, skewed, many more hypernodes than hyperedges
//   Orkut-group-sim  community-style, many components, extreme max degree
//   LiveJournal-sim  community-style, moderate skew
//   Web-sim          web, extreme skew (Δ_e ~ |V|), many components
//   Rand1-sim        uniform random (Hygra generator), one giant component
#pragma once

#include <string>
#include <vector>

#include "nwhy/gen/generators.hpp"

namespace nw::hypergraph::gen {

struct dataset_spec {
  std::string name;
  std::string type;  ///< Social / Web / Synthetic, as in Table I
  biedgelist<> (*build)(std::size_t scale);
};

/// `scale` multiplies the base sizes; scale = 1 targets ~1-2 s total bench
/// runtime per dataset on one core.
inline biedgelist<> build_com_orkut_sim(std::size_t scale) {
  // Original: |V| = 2.3M, |E| = 15.3M, dv̄ = 46, dē = 7, skewed.
  // Analog: |E| ~ 6.7x |V|, small mean edge size, Zipf node popularity.
  return powerlaw_hypergraph(/*num_edges=*/60000 * scale, /*num_nodes=*/9000 * scale,
                             /*max_edge_size=*/64, /*size_alpha=*/1.6,
                             /*degree_alpha=*/0.9, /*seed=*/0x0C0FFEE1);
}

inline biedgelist<> build_friendster_sim(std::size_t scale) {
  // Original: |V| = 7.9M >> |E| = 1.6M, dv̄ = 3, dē = 14.
  return powerlaw_hypergraph(/*num_edges=*/8000 * scale, /*num_nodes=*/40000 * scale,
                             /*max_edge_size=*/128, /*size_alpha=*/1.2,
                             /*degree_alpha=*/0.8, /*seed=*/0x0C0FFEE2);
}

inline biedgelist<> build_orkut_group_sim(std::size_t scale) {
  // Original: community hypergraph with extreme max degrees (Δ_e = 318k)
  // and many connected components.
  return planted_community_hypergraph(/*num_edges=*/35000 * scale, /*num_nodes=*/11000 * scale,
                                      /*max_community=*/150, /*size_alpha=*/1.5,
                                      /*crosslink_prob=*/0.0005, /*seed=*/0x0C0FFEE3);
}

inline biedgelist<> build_livejournal_sim(std::size_t scale) {
  // Original: moderate skew, Δ_e = 1.1M on |E| = 7.5M.
  return planted_community_hypergraph(/*num_edges=*/30000 * scale, /*num_nodes=*/13000 * scale,
                                      /*max_community=*/650, /*size_alpha=*/1.8,
                                      /*crosslink_prob=*/0.3, /*seed=*/0x0C0FFEE4);
}

inline biedgelist<> build_web_sim(std::size_t scale) {
  // Original: |V| = 27.7M, |E| = 12.8M, Δ_v = 1.1M, Δ_e = 11.6M — the most
  // extreme skew in the suite; hub pages touch a huge fraction of nodes.
  return powerlaw_hypergraph(/*num_edges=*/50000 * scale, /*num_nodes=*/110000 * scale,
                             /*max_edge_size=*/8000, /*size_alpha=*/2.0,
                             /*degree_alpha=*/1.1, /*seed=*/0x0C0FFEE5);
}

inline biedgelist<> build_rand1_sim(std::size_t scale) {
  // Original: 100M x 100M uniform random, d = 10, single giant component.
  return uniform_random_hypergraph(/*num_edges=*/100000 * scale, /*num_nodes=*/100000 * scale,
                                   /*edge_size=*/10, /*seed=*/0x0C0FFEE6);
}

/// The full Table-I suite in the paper's row order.
inline std::vector<dataset_spec> dataset_suite() {
  return {
      {"com-Orkut-sim", "Social", &build_com_orkut_sim},
      {"Friendster-sim", "Social", &build_friendster_sim},
      {"Orkut-group-sim", "Social", &build_orkut_group_sim},
      {"LiveJournal-sim", "Social", &build_livejournal_sim},
      {"Web-sim", "Web", &build_web_sim},
      {"Rand1-sim", "Synthetic", &build_rand1_sim},
  };
}

}  // namespace nw::hypergraph::gen
