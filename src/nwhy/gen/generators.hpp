// nwhy/gen/generators.hpp
//
// Synthetic hypergraph generators.  These stand in for the datasets of the
// paper's Table I (SNAP community hypergraphs, KONECT bipartite graphs,
// Hygra's Rand1), reproducing the *distributional shape* that drives the
// evaluation's qualitative results:
//
//   uniform_random_hypergraph  — Hygra Rand1 style: every hyperedge picks
//                                its members uniformly at random; uniform
//                                degree distribution, one giant component
//   powerlaw_hypergraph        — skewed hyperedge sizes and hypernode
//                                degrees (Zipf), like the social/web inputs
//   planted_community_hypergraph — hyperedges are planted communities with
//                                overlap, like the SNAP-derived datasets;
//                                yields many connected components
//   nested_hypergraph          — chains of nested hyperedges, exercising
//                                toplex computation worst cases
//   star_hypergraph            — one giant hyperedge plus satellites; the
//                                clique-expansion blow-up scenario
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::hypergraph::gen {

/// Hygra-style random hypergraph: `num_edges` hyperedges, each of exactly
/// `edge_size` hypernodes chosen uniformly at random from `num_nodes`
/// (duplicates within a hyperedge removed by downstream canonicalization).
inline biedgelist<> uniform_random_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                              std::size_t edge_size, std::uint64_t seed) {
  NW_ASSERT(num_nodes > 0, "uniform_random_hypergraph requires hypernodes");
  xoshiro256ss rng(seed);
  biedgelist<> el(num_edges, num_nodes);
  el.reserve(num_edges * edge_size);
  for (std::size_t e = 0; e < num_edges; ++e) {
    for (std::size_t k = 0; k < edge_size; ++k) {
      el.push_back(static_cast<vertex_id_t>(e),
                   static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    }
  }
  return el;
}

namespace detail {

/// Sampler over {0, ..., n-1} with Zipf(alpha) weights, O(log n) per draw
/// via binary search on the cumulative weights.
class zipf_sampler {
public:
  zipf_sampler(std::size_t n, double alpha) : cumulative_(n) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cumulative_[i] = total;
    }
    for (auto& c : cumulative_) c /= total;
  }

  std::size_t operator()(xoshiro256ss& rng) const {
    double u = rng.uniform();
    auto   it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

private:
  std::vector<double> cumulative_;
};

}  // namespace detail

/// Skewed hypergraph: hyperedge sizes follow Zipf(`size_alpha`) scaled to
/// [1, max_edge_size], and members are drawn from a Zipf(`degree_alpha`)
/// popularity distribution over hypernodes — a few hub hypernodes join very
/// many hyperedges, matching the social-network shape of Table I where all
/// real-world inputs "have a skewed hyperedge degree distribution".
inline biedgelist<> powerlaw_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                        std::size_t max_edge_size, double size_alpha,
                                        double degree_alpha, std::uint64_t seed) {
  NW_ASSERT(num_nodes > 0 && max_edge_size > 0, "degenerate powerlaw parameters");
  xoshiro256ss          rng(seed);
  detail::zipf_sampler  node_sampler(num_nodes, degree_alpha);
  detail::zipf_sampler  size_sampler(max_edge_size, size_alpha);
  // A fixed pseudo-random permutation decouples a node's popularity from its
  // id, so degree is not correlated with index order.
  std::vector<vertex_id_t> node_map(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) node_map[i] = static_cast<vertex_id_t>(i);
  for (std::size_t i = num_nodes; i > 1; --i) {
    std::swap(node_map[i - 1], node_map[rng.bounded(i)]);
  }
  biedgelist<> el(num_edges, num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    std::size_t size = size_sampler(rng) + 1;
    for (std::size_t k = 0; k < size; ++k) {
      el.push_back(static_cast<vertex_id_t>(e), node_map[node_sampler(rng)]);
    }
  }
  return el;
}

/// Community-style hypergraph (the SNAP-derived shape): the hypernode space
/// is partitioned into blocks of `max_community` nodes; each of the
/// `num_edges` communities lives inside one block, with a Zipf(size_alpha)
/// size capped by the block, and — with probability `crosslink_prob` —
/// one extra member from a foreign block.  Small crosslink_prob yields
/// *many* connected components (one per block, roughly), the property that
/// makes BFS on Orkut-group/Web fast in the paper's Fig. 8 discussion.
inline biedgelist<> planted_community_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                                 std::size_t max_community, double size_alpha,
                                                 double crosslink_prob, std::uint64_t seed) {
  NW_ASSERT(num_edges > 0 && num_nodes > 0 && max_community > 0,
            "degenerate community parameters");
  max_community = std::min(max_community, num_nodes);
  xoshiro256ss         rng(seed);
  detail::zipf_sampler size_sampler(max_community, size_alpha);
  const std::size_t    num_blocks = (num_nodes + max_community - 1) / max_community;
  biedgelist<>         el(num_edges, num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    std::size_t block       = rng.bounded(num_blocks);
    std::size_t block_begin = block * max_community;
    std::size_t block_size  = std::min(max_community, num_nodes - block_begin);
    std::size_t size        = std::min(size_sampler(rng) + 1, block_size);
    for (std::size_t k = 0; k < size; ++k) {
      vertex_id_t v = static_cast<vertex_id_t>(block_begin + rng.bounded(block_size));
      el.push_back(static_cast<vertex_id_t>(e), v);
    }
    if (rng.uniform() < crosslink_prob) {
      el.push_back(static_cast<vertex_id_t>(e),
                   static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    }
  }
  return el;
}

/// Configuration-model hypergraph: realizes prescribed hyperedge sizes and
/// hypernode degrees exactly (before duplicate-incidence collapse) by the
/// bipartite stub-matching construction — edge e contributes sizes[e]
/// stubs, node v contributes degrees[v] stubs, and a random permutation
/// pairs them.  The two sequences must have equal sums.
inline biedgelist<> configuration_model_hypergraph(const std::vector<std::size_t>& edge_sizes,
                                                   const std::vector<std::size_t>& node_degrees,
                                                   std::uint64_t seed) {
  std::size_t edge_stub_count = 0, node_stub_count = 0;
  for (auto s : edge_sizes) edge_stub_count += s;
  for (auto d : node_degrees) node_stub_count += d;
  NW_ASSERT(edge_stub_count == node_stub_count,
            "configuration model requires equal stub sums");

  std::vector<vertex_id_t> node_stubs;
  node_stubs.reserve(node_stub_count);
  for (std::size_t v = 0; v < node_degrees.size(); ++v) {
    for (std::size_t k = 0; k < node_degrees[v]; ++k) {
      node_stubs.push_back(static_cast<vertex_id_t>(v));
    }
  }
  xoshiro256ss rng(seed);
  for (std::size_t i = node_stubs.size(); i > 1; --i) {
    std::swap(node_stubs[i - 1], node_stubs[rng.bounded(i)]);
  }

  biedgelist<> el(edge_sizes.size(), node_degrees.size());
  el.reserve(edge_stub_count);
  std::size_t cursor = 0;
  for (std::size_t e = 0; e < edge_sizes.size(); ++e) {
    for (std::size_t k = 0; k < edge_sizes[e]; ++k) {
      el.push_back(static_cast<vertex_id_t>(e), node_stubs[cursor++]);
    }
  }
  return el;
}

/// Chains of nested hyperedges: chain c contributes `depth` hyperedges
/// {v0}, {v0,v1}, ..., {v0..v_{depth-1}} over its private vertex block.
/// Exactly one toplex per chain (the full block).
inline biedgelist<> nested_hypergraph(std::size_t num_chains, std::size_t depth) {
  biedgelist<> el(num_chains * depth, num_chains * depth);
  for (std::size_t c = 0; c < num_chains; ++c) {
    vertex_id_t base = static_cast<vertex_id_t>(c * depth);
    for (std::size_t d = 0; d < depth; ++d) {
      vertex_id_t e = base + static_cast<vertex_id_t>(d);
      for (std::size_t k = 0; k <= d; ++k) {
        el.push_back(e, base + static_cast<vertex_id_t>(k));
      }
    }
  }
  return el;
}

/// One giant hyperedge containing every hypernode plus `num_small` pairwise
/// hyperedges; its clique expansion is the complete graph — the
/// representation-size blow-up scenario of Sec. III-B.3.
inline biedgelist<> star_hypergraph(std::size_t num_nodes, std::size_t num_small,
                                    std::uint64_t seed) {
  xoshiro256ss rng(seed);
  biedgelist<> el(1 + num_small, num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    el.push_back(0, static_cast<vertex_id_t>(v));
  }
  for (std::size_t e = 0; e < num_small; ++e) {
    el.push_back(static_cast<vertex_id_t>(1 + e), static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    el.push_back(static_cast<vertex_id_t>(1 + e), static_cast<vertex_id_t>(rng.bounded(num_nodes)));
  }
  return el;
}

}  // namespace nw::hypergraph::gen
