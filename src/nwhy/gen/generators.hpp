// nwhy/gen/generators.hpp
//
// Synthetic hypergraph generators.  These stand in for the datasets of the
// paper's Table I (SNAP community hypergraphs, KONECT bipartite graphs,
// Hygra's Rand1), reproducing the *distributional shape* that drives the
// evaluation's qualitative results:
//
//   uniform_random_hypergraph  — Hygra Rand1 style: every hyperedge picks
//                                its members uniformly at random; uniform
//                                degree distribution, one giant component
//   powerlaw_hypergraph        — skewed hyperedge sizes and hypernode
//                                degrees (Zipf), like the social/web inputs
//   planted_community_hypergraph — hyperedges are planted communities with
//                                overlap, like the SNAP-derived datasets;
//                                yields many connected components
//   nested_hypergraph          — chains of nested hyperedges, exercising
//                                toplex computation worst cases
//   star_hypergraph            — one giant hyperedge plus satellites; the
//                                clique-expansion blow-up scenario
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::hypergraph::gen {

/// Hygra-style random hypergraph: `num_edges` hyperedges, each of exactly
/// `edge_size` hypernodes chosen uniformly at random from `num_nodes`
/// (duplicates within a hyperedge removed by downstream canonicalization).
inline biedgelist<> uniform_random_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                              std::size_t edge_size, std::uint64_t seed) {
  NW_ASSERT(num_nodes > 0, "uniform_random_hypergraph requires hypernodes");
  xoshiro256ss rng(seed);
  biedgelist<> el(num_edges, num_nodes);
  el.reserve(num_edges * edge_size);
  for (std::size_t e = 0; e < num_edges; ++e) {
    for (std::size_t k = 0; k < edge_size; ++k) {
      el.push_back(static_cast<vertex_id_t>(e),
                   static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    }
  }
  return el;
}

namespace detail {

/// Sampler over {0, ..., n-1} with Zipf(alpha) weights, O(log n) per draw
/// via binary search on the cumulative weights.
class zipf_sampler {
public:
  zipf_sampler(std::size_t n, double alpha) : cumulative_(n) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cumulative_[i] = total;
    }
    for (auto& c : cumulative_) c /= total;
  }

  std::size_t operator()(xoshiro256ss& rng) const {
    double u = rng.uniform();
    auto   it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

private:
  std::vector<double> cumulative_;
};

}  // namespace detail

/// Skewed hypergraph: hyperedge sizes follow Zipf(`size_alpha`) scaled to
/// [1, max_edge_size], and members are drawn from a Zipf(`degree_alpha`)
/// popularity distribution over hypernodes — a few hub hypernodes join very
/// many hyperedges, matching the social-network shape of Table I where all
/// real-world inputs "have a skewed hyperedge degree distribution".
inline biedgelist<> powerlaw_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                        std::size_t max_edge_size, double size_alpha,
                                        double degree_alpha, std::uint64_t seed) {
  NW_ASSERT(num_nodes > 0 && max_edge_size > 0, "degenerate powerlaw parameters");
  xoshiro256ss          rng(seed);
  detail::zipf_sampler  node_sampler(num_nodes, degree_alpha);
  detail::zipf_sampler  size_sampler(max_edge_size, size_alpha);
  // A fixed pseudo-random permutation decouples a node's popularity from its
  // id, so degree is not correlated with index order.
  std::vector<vertex_id_t> node_map(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) node_map[i] = static_cast<vertex_id_t>(i);
  for (std::size_t i = num_nodes; i > 1; --i) {
    std::swap(node_map[i - 1], node_map[rng.bounded(i)]);
  }
  biedgelist<> el(num_edges, num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    std::size_t size = size_sampler(rng) + 1;
    for (std::size_t k = 0; k < size; ++k) {
      el.push_back(static_cast<vertex_id_t>(e), node_map[node_sampler(rng)]);
    }
  }
  return el;
}

/// Community-style hypergraph (the SNAP-derived shape): the hypernode space
/// is partitioned into blocks of `max_community` nodes; each of the
/// `num_edges` communities lives inside one block, with a Zipf(size_alpha)
/// size capped by the block, and — with probability `crosslink_prob` —
/// one extra member from a foreign block.  Small crosslink_prob yields
/// *many* connected components (one per block, roughly), the property that
/// makes BFS on Orkut-group/Web fast in the paper's Fig. 8 discussion.
inline biedgelist<> planted_community_hypergraph(std::size_t num_edges, std::size_t num_nodes,
                                                 std::size_t max_community, double size_alpha,
                                                 double crosslink_prob, std::uint64_t seed) {
  NW_ASSERT(num_edges > 0 && num_nodes > 0 && max_community > 0,
            "degenerate community parameters");
  max_community = std::min(max_community, num_nodes);
  xoshiro256ss         rng(seed);
  detail::zipf_sampler size_sampler(max_community, size_alpha);
  const std::size_t    num_blocks = (num_nodes + max_community - 1) / max_community;
  biedgelist<>         el(num_edges, num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    std::size_t block       = rng.bounded(num_blocks);
    std::size_t block_begin = block * max_community;
    std::size_t block_size  = std::min(max_community, num_nodes - block_begin);
    std::size_t size        = std::min(size_sampler(rng) + 1, block_size);
    for (std::size_t k = 0; k < size; ++k) {
      vertex_id_t v = static_cast<vertex_id_t>(block_begin + rng.bounded(block_size));
      el.push_back(static_cast<vertex_id_t>(e), v);
    }
    if (rng.uniform() < crosslink_prob) {
      el.push_back(static_cast<vertex_id_t>(e),
                   static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    }
  }
  return el;
}

/// Configuration-model hypergraph: realizes prescribed hyperedge sizes and
/// hypernode degrees exactly (before duplicate-incidence collapse) by the
/// bipartite stub-matching construction — edge e contributes sizes[e]
/// stubs, node v contributes degrees[v] stubs, and a random permutation
/// pairs them.  The two sequences must have equal sums.
inline biedgelist<> configuration_model_hypergraph(const std::vector<std::size_t>& edge_sizes,
                                                   const std::vector<std::size_t>& node_degrees,
                                                   std::uint64_t seed) {
  std::size_t edge_stub_count = 0, node_stub_count = 0;
  for (auto s : edge_sizes) edge_stub_count += s;
  for (auto d : node_degrees) node_stub_count += d;
  NW_ASSERT(edge_stub_count == node_stub_count,
            "configuration model requires equal stub sums");

  std::vector<vertex_id_t> node_stubs;
  node_stubs.reserve(node_stub_count);
  for (std::size_t v = 0; v < node_degrees.size(); ++v) {
    for (std::size_t k = 0; k < node_degrees[v]; ++k) {
      node_stubs.push_back(static_cast<vertex_id_t>(v));
    }
  }
  xoshiro256ss rng(seed);
  for (std::size_t i = node_stubs.size(); i > 1; --i) {
    std::swap(node_stubs[i - 1], node_stubs[rng.bounded(i)]);
  }

  biedgelist<> el(edge_sizes.size(), node_degrees.size());
  el.reserve(edge_stub_count);
  std::size_t cursor = 0;
  for (std::size_t e = 0; e < edge_sizes.size(); ++e) {
    for (std::size_t k = 0; k < edge_sizes[e]; ++k) {
      el.push_back(static_cast<vertex_id_t>(e), node_stubs[cursor++]);
    }
  }
  return el;
}

/// Chains of nested hyperedges: chain c contributes `depth` hyperedges
/// {v0}, {v0,v1}, ..., {v0..v_{depth-1}} over its private vertex block.
/// Exactly one toplex per chain (the full block).
inline biedgelist<> nested_hypergraph(std::size_t num_chains, std::size_t depth) {
  biedgelist<> el(num_chains * depth, num_chains * depth);
  for (std::size_t c = 0; c < num_chains; ++c) {
    vertex_id_t base = static_cast<vertex_id_t>(c * depth);
    for (std::size_t d = 0; d < depth; ++d) {
      vertex_id_t e = base + static_cast<vertex_id_t>(d);
      for (std::size_t k = 0; k <= d; ++k) {
        el.push_back(e, base + static_cast<vertex_id_t>(k));
      }
    }
  }
  return el;
}

/// One giant hyperedge containing every hypernode plus `num_small` pairwise
/// hyperedges; its clique expansion is the complete graph — the
/// representation-size blow-up scenario of Sec. III-B.3.
inline biedgelist<> star_hypergraph(std::size_t num_nodes, std::size_t num_small,
                                    std::uint64_t seed) {
  xoshiro256ss rng(seed);
  biedgelist<> el(1 + num_small, num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    el.push_back(0, static_cast<vertex_id_t>(v));
  }
  for (std::size_t e = 0; e < num_small; ++e) {
    el.push_back(static_cast<vertex_id_t>(1 + e), static_cast<vertex_id_t>(rng.bounded(num_nodes)));
    el.push_back(static_cast<vertex_id_t>(1 + e), static_cast<vertex_id_t>(rng.bounded(num_nodes)));
  }
  return el;
}

// ---------------------------------------------------------------------------
// Planted-structure generators (differential-harness ground truth).
//
// Each generator below *plants* an invariant with a known exact value —
// component counts, diameters, toplex sets, defect counts — so the
// property tests can assert against mathematics instead of against another
// implementation.  All randomness flows from one uint64_t seed.
// ---------------------------------------------------------------------------

namespace detail {

/// Seed-driven Fisher–Yates permutation of [0, n).
inline std::vector<vertex_id_t> random_permutation(std::size_t n, xoshiro256ss& rng) {
  std::vector<vertex_id_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<vertex_id_t>(i);
  for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.bounded(i)]);
  return perm;
}

}  // namespace detail

/// Output of planted_component_chains: the edge list plus the planted truth.
struct planted_components_t {
  biedgelist<> el;
  std::size_t  num_components = 0;  ///< exact number of s-connected components
  std::size_t  chain_length   = 0;  ///< hyperedges per component
  std::size_t  s              = 0;  ///< the s the structure was planted for
  /// Edge ids of each component in chain order (after id scrambling):
  /// component c's s-line graph is exactly the path
  /// component_edges[c][0] — component_edges[c][1] — ... so the s-distance
  /// between the endpoints is chain_length - 1 (the planted s-diameter).
  std::vector<std::vector<vertex_id_t>> component_edges;
};

/// Planted s-connected components: `num_components` chains of
/// `edges_per_component` hyperedges over pairwise-disjoint hypernode
/// blocks.  Within a chain, consecutive hyperedges share *exactly* s
/// hypernodes (edge j covers the s+1 consecutive block nodes [j, j+s]),
/// and hyperedges two or more steps apart share at most s-1 — so the
/// s-line graph of each chain is a simple path.  Ground truth:
///   * exactly num_components s-connected components (all edges active),
///   * s-diameter of each component = edges_per_component - 1,
///   * the (s+1)-line graph is empty (no pair overlaps in s+1 nodes).
/// Edge and node ids are scrambled by a seed-driven permutation so planted
/// structure never aligns with id order (and never favors the sequential
/// id-based heuristics of the construction algorithms).
inline planted_components_t planted_component_chains(std::size_t num_components,
                                                     std::size_t edges_per_component,
                                                     std::size_t s, std::uint64_t seed) {
  NW_ASSERT(num_components > 0 && edges_per_component > 0 && s > 0,
            "degenerate planted-component parameters");
  const std::size_t ne = num_components * edges_per_component;
  const std::size_t nodes_per_block = s + edges_per_component;  // edge j spans [j, j+s]
  const std::size_t nv = num_components * nodes_per_block;

  xoshiro256ss rng(seed);
  auto         edge_perm = detail::random_permutation(ne, rng);
  auto         node_perm = detail::random_permutation(nv, rng);

  planted_components_t out;
  out.num_components = num_components;
  out.chain_length   = edges_per_component;
  out.s              = s;
  out.el             = biedgelist<>(ne, nv);
  out.el.reserve(ne * (s + 1));
  out.component_edges.resize(num_components);
  for (std::size_t c = 0; c < num_components; ++c) {
    const std::size_t node_base = c * nodes_per_block;
    for (std::size_t j = 0; j < edges_per_component; ++j) {
      vertex_id_t e = edge_perm[c * edges_per_component + j];
      out.component_edges[c].push_back(e);
      for (std::size_t k = 0; k <= s; ++k) {
        out.el.push_back(e, node_perm[node_base + j + k]);
      }
    }
  }
  return out;
}

/// Output of planted_toplex_hypergraph: the edge list plus the exact
/// (sorted) toplex id set.
struct planted_toplexes_t {
  biedgelist<>             el;
  std::vector<vertex_id_t> toplex_ids;  ///< ascending ids of the maximal hyperedges
};

/// Planted toplexes: `num_toplexes` maximal hyperedges over disjoint
/// hypernode blocks of `toplex_size` nodes each, plus
/// `subsets_per_toplex` strict non-empty random subsets of each.  Every
/// subset is dominated by its (strictly larger) block toplex; blocks are
/// disjoint, so no cross-block domination — the toplex set is exactly the
/// planted maximal edges, regardless of duplicate subsets.
inline planted_toplexes_t planted_toplex_hypergraph(std::size_t num_toplexes,
                                                    std::size_t subsets_per_toplex,
                                                    std::size_t toplex_size,
                                                    std::uint64_t seed) {
  NW_ASSERT(num_toplexes > 0 && toplex_size >= 2, "degenerate planted-toplex parameters");
  const std::size_t ne = num_toplexes * (1 + subsets_per_toplex);
  const std::size_t nv = num_toplexes * toplex_size;

  xoshiro256ss rng(seed);
  auto         edge_perm = detail::random_permutation(ne, rng);

  planted_toplexes_t out;
  out.el = biedgelist<>(ne, nv);
  std::vector<vertex_id_t> block(toplex_size);
  std::size_t              next_edge = 0;
  for (std::size_t t = 0; t < num_toplexes; ++t) {
    const vertex_id_t base = static_cast<vertex_id_t>(t * toplex_size);
    for (std::size_t k = 0; k < toplex_size; ++k) block[k] = base + static_cast<vertex_id_t>(k);
    // The maximal edge: the whole block.
    vertex_id_t top = edge_perm[next_edge++];
    out.toplex_ids.push_back(top);
    for (vertex_id_t v : block) out.el.push_back(top, v);
    // Strict subsets: size in [1, toplex_size - 1], members sampled without
    // replacement via a partial shuffle of the block.
    for (std::size_t j = 0; j < subsets_per_toplex; ++j) {
      vertex_id_t e  = edge_perm[next_edge++];
      std::size_t sz = 1 + rng.bounded(toplex_size - 1);
      for (std::size_t k = 0; k < sz; ++k) {
        std::swap(block[k], block[k + rng.bounded(toplex_size - k)]);
        out.el.push_back(e, block[k]);
      }
    }
  }
  std::sort(out.toplex_ids.begin(), out.toplex_ids.end());
  return out;
}

/// Output of the planted-betweenness generators: the edge list plus the
/// exact betweenness of every hyperedge in the s=1 line graph, under the
/// engine's halved (undirected) unnormalized convention.  All truth values
/// are exact small integers, so EXPECT_EQ on doubles is sound.
struct planted_betweenness_t {
  biedgelist<>        el;
  std::size_t         s = 1;   ///< the s the structure was planted for
  std::vector<double> scores;  ///< exact halved betweenness per hyperedge id
};

/// Planted path betweenness: `num_edges` hyperedges chained so consecutive
/// hyperedges share exactly one link hypernode and each owns one private
/// hypernode — the 1-line graph is exactly a path in chain order, and no
/// pair overlaps twice (the 2-line graph is empty).  Closed form for a
/// path of n vertices: BC(position i) = i * (n - 1 - i), the number of
/// vertex pairs separated by position i.  Edge/node ids are scrambled so
/// planted order never aligns with id order.
inline planted_betweenness_t planted_path_hypergraph(std::size_t num_edges,
                                                     std::uint64_t seed) {
  NW_ASSERT(num_edges >= 2, "a planted path needs at least two hyperedges");
  const std::size_t nv = 2 * num_edges - 1;  // num_edges-1 links + num_edges privates

  xoshiro256ss rng(seed);
  auto         edge_perm = detail::random_permutation(num_edges, rng);
  auto         node_perm = detail::random_permutation(nv, rng);
  auto link    = [&](std::size_t j) { return node_perm[j]; };
  auto priv    = [&](std::size_t j) { return node_perm[num_edges - 1 + j]; };

  planted_betweenness_t out;
  out.el = biedgelist<>(num_edges, nv);
  out.scores.assign(num_edges, 0.0);
  for (std::size_t j = 0; j < num_edges; ++j) {
    vertex_id_t e = edge_perm[j];
    if (j > 0) out.el.push_back(e, link(j - 1));
    if (j + 1 < num_edges) out.el.push_back(e, link(j));
    out.el.push_back(e, priv(j));
    out.scores[e] = static_cast<double>(j) * static_cast<double>(num_edges - 1 - j);
  }
  return out;
}

/// Planted star betweenness: one center hyperedge sharing a distinct
/// hypernode with each of `num_leaves` pairwise-disjoint leaf hyperedges —
/// the 1-line graph is a star, so the center's halved betweenness is
/// C(num_leaves, 2) and every leaf's is 0.
inline planted_betweenness_t planted_star_hypergraph(std::size_t num_leaves,
                                                     std::uint64_t seed) {
  NW_ASSERT(num_leaves >= 2, "a planted star needs at least two leaves");
  const std::size_t ne = num_leaves + 1;
  const std::size_t nv = 2 * num_leaves;  // one spoke + one private node per leaf

  xoshiro256ss rng(seed);
  auto         edge_perm = detail::random_permutation(ne, rng);
  auto         node_perm = detail::random_permutation(nv, rng);

  planted_betweenness_t out;
  out.el = biedgelist<>(ne, nv);
  out.scores.assign(ne, 0.0);
  vertex_id_t center = edge_perm[0];
  for (std::size_t j = 0; j < num_leaves; ++j) {
    vertex_id_t leaf  = edge_perm[1 + j];
    vertex_id_t spoke = node_perm[j];
    out.el.push_back(center, spoke);
    out.el.push_back(leaf, spoke);
    out.el.push_back(leaf, node_perm[num_leaves + j]);
  }
  out.scores[center] =
      static_cast<double>(num_leaves) * static_cast<double>(num_leaves - 1) / 2.0;
  return out;
}

/// Output of planted_clique_hypergraph: the edge list plus the exact motif
/// census (open_wedges = wedges - triads is left to the caller).
struct planted_motifs_t {
  biedgelist<>  el;
  std::uint64_t wedges      = 0;
  std::uint64_t triads      = 0;
  std::uint64_t butterflies = 0;
};

/// Planted motif census: `num_blocks` clique blocks over disjoint hypernode
/// ranges.  Block b has k_b hyperedges (2..5, seed-driven) all containing
/// the same m_b-node core (1..4) plus one private node each, so every
/// hyperedge pair of the block overlaps in exactly m_b nodes and the census
/// has closed form per block:
///   wedges       m * C(k, 2)   (one wedge per core node per pair)
///   triads       all of them when m >= 2, none when m == 1
///   butterflies  C(k, 2) * C(m, 2)
/// Blocks are node-disjoint, so the totals are the block sums.  Edge and
/// node ids are scrambled by seed-driven permutations.
inline planted_motifs_t planted_clique_hypergraph(std::size_t num_blocks,
                                                  std::uint64_t seed) {
  NW_ASSERT(num_blocks > 0, "a planted census needs at least one block");
  xoshiro256ss             rng(seed);
  std::vector<std::size_t> edges_of(num_blocks), core_of(num_blocks);
  std::size_t              ne = 0, nv = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    edges_of[b] = 2 + rng.bounded(4);  // k in [2, 5]
    core_of[b]  = 1 + rng.bounded(4);  // m in [1, 4]
    ne += edges_of[b];
    nv += core_of[b] + edges_of[b];  // core + one private node per edge
  }
  auto edge_perm = detail::random_permutation(ne, rng);
  auto node_perm = detail::random_permutation(nv, rng);

  planted_motifs_t out;
  out.el = biedgelist<>(ne, nv);
  std::size_t next_edge = 0, next_node = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t k = edges_of[b], m = core_of[b];
    const std::size_t core_base = next_node;
    next_node += m;
    for (std::size_t j = 0; j < k; ++j) {
      vertex_id_t e = edge_perm[next_edge++];
      for (std::size_t c = 0; c < m; ++c) out.el.push_back(e, node_perm[core_base + c]);
      out.el.push_back(e, node_perm[next_node++]);
    }
    const std::uint64_t pairs = static_cast<std::uint64_t>(k) * (k - 1) / 2;
    out.wedges += m * pairs;
    if (m >= 2) out.triads += m * pairs;
    out.butterflies += pairs * (static_cast<std::uint64_t>(m) * (m - 1) / 2);
  }
  return out;
}

/// Output of adversarial_hypergraph: a deliberately *non-canonical* edge
/// list plus the exact planted defect counts (what nwhy/validate.hpp must
/// report, number for number).
struct adversarial_hypergraph_t {
  biedgelist<> el;                   ///< raw: unsorted, with duplicates / OOB ids
  std::size_t  empty_hyperedges = 0; ///< declared edges with zero incidences
  std::size_t  isolated_nodes   = 0; ///< declared nodes with zero incidences
  std::size_t  duplicates       = 0; ///< incidences repeating an earlier one
  std::size_t  out_of_bounds    = 0; ///< incidences with an id >= cardinality
};

/// Adversarial shapes for the validator and (canonicalized) for the
/// algorithm fuzzers: a word-boundary-sized hypernode universe (63/64/65,
/// 127/128/129 — the bitmap edge cases), singleton hyperedges, one giant
/// hyperedge spanning the whole universe, trailing empty hyperedges and
/// isolated hypernodes, planted duplicate incidences, and (optionally)
/// planted out-of-bounds ids.  Pass plant_out_of_bounds = false when the
/// output will be fed to the algorithms rather than the validator — OOB
/// ids are only meaningful to validate(), and are planted by shrinking the
/// declared cardinalities *after* the pushes, so the CSR builders must
/// never see such a list.
inline adversarial_hypergraph_t adversarial_hypergraph(std::uint64_t seed,
                                                       bool plant_out_of_bounds = true) {
  xoshiro256ss rng(seed);

  static constexpr std::size_t kUniverse[] = {63, 64, 65, 127, 128, 129};
  const std::size_t nv_used = kUniverse[rng.bounded(6)];
  const std::size_t ne_used = 8 + rng.bounded(24);

  adversarial_hypergraph_t out;
  // Declared cardinalities include trailing never-used entities.
  const std::size_t extra_edges = rng.bounded(4);
  const std::size_t extra_nodes = rng.bounded(6);
  const std::size_t ne_decl     = ne_used + extra_edges;
  const std::size_t nv_decl     = nv_used + extra_nodes;
  out.el = biedgelist<>(ne_decl, nv_decl);

  std::vector<char>                                node_used(nv_decl, 0);
  std::vector<std::pair<vertex_id_t, vertex_id_t>> base;  // unique incidences
  auto push_unique = [&](vertex_id_t e, vertex_id_t v) {
    for (auto [be, bv] : base) {
      if (be == e && bv == v) return;  // keep `base` duplicate-free
    }
    base.push_back({e, v});
    out.el.push_back(e, v);
    node_used[v] = 1;
  };

  // Edge 0: the giant hyperedge over the whole used universe.
  for (std::size_t v = 0; v < nv_used; ++v) {
    push_unique(0, static_cast<vertex_id_t>(v));
  }
  // Remaining used edges: a mix of singletons and small random edges
  // (members clustered near word boundaries half of the time).
  for (std::size_t e = 1; e < ne_used; ++e) {
    std::size_t sz = 1 + rng.bounded(5);  // 1..5 (1 == singleton edge)
    for (std::size_t k = 0; k < sz; ++k) {
      std::size_t v = rng.bounded(2) == 0
                          ? rng.bounded(nv_used)
                          : (nv_used >= 4 ? nv_used - 1 - rng.bounded(4) : rng.bounded(nv_used));
      push_unique(static_cast<vertex_id_t>(e), static_cast<vertex_id_t>(v));
    }
  }

  // Planted duplicates: re-push existing incidences (each re-push is one
  // duplicate, even if the same pair is re-pushed twice).
  out.duplicates = 1 + rng.bounded(6);
  for (std::size_t d = 0; d < out.duplicates; ++d) {
    auto [e, v] = base[rng.bounded(base.size())];
    out.el.push_back(e, v);
  }

  // Planted out-of-bounds ids: pushed with ids beyond the declared
  // cardinalities, which push_back temporarily grows; shrinking the
  // declared sizes back afterwards turns them into OOB rows.  OOB rows use
  // an in-bounds *partner* id that is already used elsewhere, so they
  // perturb neither the empty-edge nor the isolated-node count.
  if (plant_out_of_bounds) {
    out.out_of_bounds = 1 + rng.bounded(4);
    for (std::size_t i = 0; i < out.out_of_bounds; ++i) {
      // The offset `i` keeps the planted OOB rows pairwise distinct, so they
      // can never inflate the duplicate count.
      if (rng.bounded(2) == 0) {
        // Node id out of range; edge 0 (the giant edge) is certainly used.
        out.el.push_back(0, static_cast<vertex_id_t>(nv_decl + i));
      } else {
        // Edge id out of range; node 0 is covered by the giant edge.
        out.el.push_back(static_cast<vertex_id_t>(ne_decl + i), 0);
      }
    }
    out.el.set_num_vertices(0, ne_decl);
    out.el.set_num_vertices(1, nv_decl);
  }

  out.empty_hyperedges = extra_edges;
  out.isolated_nodes   = extra_nodes;
  for (std::size_t v = 0; v < nv_used; ++v) out.isolated_nodes += node_used[v] == 0;
  return out;
}

/// Seed-dispatched "arbitrary" hypergraph for the differential fuzzer: the
/// seed picks a generator family *and* its parameters, covering the
/// distributional shapes (uniform / power-law / community), the planted
/// structures (chains, nested, toplex blocks, star), and the adversarial
/// canonicalizable shapes (duplicates, empty edges, singleton and giant
/// edges, word-boundary universes).  Always safe to canonicalize and feed
/// to the algorithms (no out-of-bounds ids).
inline biedgelist<> arbitrary_hypergraph(std::uint64_t seed) {
  std::uint64_t state  = seed;
  std::uint64_t s0     = splitmix64(state);  // family selector
  std::uint64_t s1     = splitmix64(state);  // parameter stream
  std::uint64_t sub    = splitmix64(state);  // sub-generator seed
  xoshiro256ss  rng(s1);
  switch (s0 % 8) {
    case 0:
      return uniform_random_hypergraph(20 + rng.bounded(60), 30 + rng.bounded(90),
                                       1 + rng.bounded(6), sub);
    case 1:
      return powerlaw_hypergraph(20 + rng.bounded(60), 30 + rng.bounded(90),
                                 2 + rng.bounded(10), 1.0 + rng.uniform(),
                                 1.0 + rng.uniform(), sub);
    case 2:
      return planted_community_hypergraph(20 + rng.bounded(60), 40 + rng.bounded(80),
                                          5 + rng.bounded(20), 1.0 + rng.uniform(),
                                          0.3 * rng.uniform(), sub);
    case 3:
      return nested_hypergraph(1 + rng.bounded(6), 2 + rng.bounded(6));
    case 4:
      return star_hypergraph(10 + rng.bounded(40), rng.bounded(20), sub);
    case 5:
      return planted_component_chains(1 + rng.bounded(5), 2 + rng.bounded(8),
                                      1 + rng.bounded(3), sub)
          .el;
    case 6:
      return planted_toplex_hypergraph(1 + rng.bounded(5), rng.bounded(5),
                                       2 + rng.bounded(6), sub)
          .el;
    default:
      return adversarial_hypergraph(sub, /*plant_out_of_bounds=*/false).el;
  }
}

}  // namespace nw::hypergraph::gen
