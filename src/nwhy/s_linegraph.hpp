// nwhy/s_linegraph.hpp
//
// The s-line graph object with the full metric suite of the paper's
// Listing 5 (the Python API surface): s-connectivity, s-components,
// s-distance / s-path, s-betweenness / s-closeness / s-harmonic-closeness
// centrality, s-eccentricity, s-degree and s-neighbors.  All metrics are
// plain graph algorithms from the NWGraph substrate applied to the line
// graph — that delegation is exactly the "approximate hypergraph analytics"
// workflow of Sec. III-C.3.
//
// Vertices of the line graph are hyperedge ids of the original hypergraph
// (or hypernode ids, for an s-clique graph built on the dual).  A hyperedge
// is *active* when it has at least s incident hypernodes; inactive
// hyperedges are isolated vertices here and are excluded from
// connectivity-style queries, matching HyperNetX semantics.
#pragma once

#include <algorithm>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/algorithms/betweenness.hpp"
#include "nwgraph/algorithms/bfs.hpp"
#include "nwgraph/algorithms/closeness.hpp"
#include "nwgraph/algorithms/connected_components.hpp"
#include "nwgraph/algorithms/kcore.hpp"
#include "nwgraph/algorithms/mis.hpp"
#include "nwgraph/algorithms/pagerank.hpp"
#include "nwgraph/algorithms/triangle_count.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwhy/algorithms/s_betweenness.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::hypergraph {

class s_linegraph {
public:
  /// Build from a construction algorithm's output (unique {lo, hi} pairs).
  /// `num_entities` is the cardinality of the underlying id space (nE for a
  /// line graph, nV for a clique graph); `entity_sizes` are the hyperedge
  /// sizes used to determine activity.
  s_linegraph(nw::graph::edge_list<> pairs, std::size_t num_entities,
              const std::vector<std::size_t>& entity_sizes, std::size_t s)
      : s_(s), active_(num_entities, false) {
    pairs.set_num_vertices(num_entities);
    pairs.symmetrize();
    pairs.sort_and_unique();
    graph_ = nw::graph::adjacency<>(pairs, num_entities);
    for (std::size_t e = 0; e < num_entities; ++e) {
      active_[e] = entity_sizes.size() > e && entity_sizes[e] >= s_;
    }
  }

  /// Direct-CSR path: adopt an already-symmetric, sorted adjacency (the
  /// output of to_two_graph_*_csr / adjacency<>::from_unique_undirected_pairs)
  /// without any edge_list round-trip.  The entity count is the adjacency's
  /// vertex count.
  s_linegraph(nw::graph::adjacency<> graph, const std::vector<std::size_t>& entity_sizes,
              std::size_t s)
      : s_(s), active_(graph.size(), false), graph_(std::move(graph)) {
    for (std::size_t e = 0; e < active_.size(); ++e) {
      active_[e] = entity_sizes.size() > e && entity_sizes[e] >= s_;
    }
  }

  [[nodiscard]] std::size_t s() const { return s_; }
  [[nodiscard]] std::size_t num_vertices() const { return graph_.size(); }
  /// Number of s-line-graph edges (each counted once).
  [[nodiscard]] std::size_t num_edges() const { return graph_.num_edges() / 2; }
  [[nodiscard]] const nw::graph::adjacency<>& graph() const { return graph_; }
  [[nodiscard]] bool is_active(vertex_id_t v) const { return active_[v]; }

  /// Listing 5 `s_degree(v)`: number of s-adjacent hyperedges.
  /// Throws std::out_of_range for ids outside [0, num_vertices()).
  [[nodiscard]] std::size_t s_degree(vertex_id_t v) const {
    check_vertex(v, "s_degree");
    return graph_.degree(v);
  }

  /// Listing 5 `s_neighbors(v)`: the s-adjacent hyperedge ids.
  [[nodiscard]] std::vector<vertex_id_t> s_neighbors(vertex_id_t v) const {
    check_vertex(v, "s_neighbors");
    auto                     nbrs = graph_[v];
    std::vector<vertex_id_t> out(nbrs.begin(), nbrs.end());
    return out;
  }

  /// Listing 5 `s_connected_components()`: component label per entity.
  /// Inactive entities receive null_vertex.
  [[nodiscard]] std::vector<vertex_id_t> s_connected_components() const {
    auto labels = nw::graph::cc_afforest(graph_);
    for (std::size_t v = 0; v < labels.size(); ++v) {
      if (!active_[v]) labels[v] = null_vertex<>;
    }
    return labels;
  }

  /// Listing 5 `is_s_connected()`: true when every active entity lies in a
  /// single component (and there is at least one active entity).
  [[nodiscard]] bool is_s_connected() const {
    auto        labels = nw::graph::cc_afforest(graph_);
    vertex_id_t first  = null_vertex<>;
    for (std::size_t v = 0; v < labels.size(); ++v) {
      if (!active_[v]) continue;
      if (first == null_vertex<>) {
        first = labels[v];
      } else if (labels[v] != first) {
        return false;
      }
    }
    return first != null_vertex<>;
  }

  /// Listing 5 `s_distance(src, dest)`: hop distance in the s-line graph;
  /// nullopt when unreachable.  Throws std::out_of_range on invalid ids
  /// (mirroring the adjoin_bfs "hyperedge id" guard — BFS arrays would
  /// otherwise be indexed out of bounds).
  [[nodiscard]] std::optional<std::size_t> s_distance(vertex_id_t src, vertex_id_t dest) const {
    check_vertex(src, "s_distance");
    check_vertex(dest, "s_distance");
    auto dist = nw::graph::bfs_distances(graph_, src);
    if (dist[dest] == null_vertex<>) return std::nullopt;
    return static_cast<std::size_t>(dist[dest]);
  }

  /// Listing 5 `s_path(src, dest)`: one shortest s-walk between two
  /// hyperedges (sequence of hyperedge ids); empty when unreachable.
  [[nodiscard]] std::vector<vertex_id_t> s_path(vertex_id_t src, vertex_id_t dest) const {
    check_vertex(src, "s_path");
    check_vertex(dest, "s_path");
    auto parents = nw::graph::bfs_top_down(graph_, src);
    if (parents[dest] == null_vertex<>) return {};
    std::vector<vertex_id_t> path{dest};
    vertex_id_t              cur = dest;
    while (cur != src) {
      cur = parents[cur];
      path.push_back(cur);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// Listing 5 `s_betweenness_centrality(normalized)`.
  [[nodiscard]] std::vector<double> s_betweenness_centrality(bool normalized = true) const {
    return nw::graph::betweenness_centrality(graph_, normalized);
  }

  /// Exact s-betweenness via the batched frontier Brandes engine
  /// (nwhy/algorithms/s_betweenness.hpp): same conventions as
  /// s_betweenness_centrality, but bit-deterministic at every thread count.
  /// `batch` bounds scratch memory (0 = NWHY_BETWEENNESS_BATCH).
  [[nodiscard]] std::vector<double> s_betweenness_centrality_batched(
      bool normalized = true, std::size_t batch = 0) const {
    return betweenness_batched(graph_, normalized, batch);
  }

  /// Sampled s-betweenness over `num_samples` seed-driven sources (0 =
  /// NWHY_BETWEENNESS_SAMPLES).  Same seed => bit-identical scores, at every
  /// thread count and batch size.
  [[nodiscard]] std::vector<double> s_betweenness_centrality_sampled(
      std::size_t num_samples = 0, std::uint64_t seed = 42, std::size_t batch = 0) const {
    return betweenness_sampled(graph_, num_samples, seed, batch);
  }

  /// Listing 5 `s_closeness_centrality(v)`: all entities, or one.
  [[nodiscard]] std::vector<double> s_closeness_centrality() const {
    return nw::graph::closeness_centrality(graph_);
  }
  /// Single-vertex overload: one BFS from `v` (O(n + m)), not the
  /// all-sources sweep (O(n·(n + m))) indexed at one element.  The
  /// aggregation mirrors nw::graph::closeness_centrality exactly, so the
  /// two spellings agree (asserted by tests/test_smetrics.cpp).
  [[nodiscard]] double s_closeness_centrality(vertex_id_t v) const {
    check_vertex(v, "s_closeness_centrality");
    auto        dist      = nw::graph::bfs_distances(graph_, v);
    double      total     = 0.0;
    std::size_t reachable = 0;
    for (auto d : dist) {
      if (d != null_vertex<> && d != 0) {
        total += static_cast<double>(d);
        ++reachable;
      }
    }
    return total > 0 ? static_cast<double>(reachable) / total : 0.0;
  }

  /// Listing 5 `s_harmonic_closeness_centrality(v)`.
  [[nodiscard]] std::vector<double> s_harmonic_closeness_centrality() const {
    return nw::graph::harmonic_closeness_centrality(graph_);
  }
  /// Single-vertex overload: one BFS from `v` instead of n of them.
  [[nodiscard]] double s_harmonic_closeness_centrality(vertex_id_t v) const {
    check_vertex(v, "s_harmonic_closeness_centrality");
    auto   dist  = nw::graph::bfs_distances(graph_, v);
    double total = 0.0;
    for (auto d : dist) {
      if (d != null_vertex<> && d != 0) total += 1.0 / static_cast<double>(d);
    }
    return total;
  }

  /// Listing 5 `s_eccentricity(v)`.
  [[nodiscard]] std::vector<vertex_id_t> s_eccentricity() const {
    return nw::graph::eccentricity(graph_);
  }
  /// Single-vertex overload: one BFS from `v` instead of n of them.
  [[nodiscard]] vertex_id_t s_eccentricity(vertex_id_t v) const {
    check_vertex(v, "s_eccentricity");
    auto        dist = nw::graph::bfs_distances(graph_, v);
    vertex_id_t ecc  = 0;
    for (auto d : dist) {
      if (d != null_vertex<>) ecc = std::max(ecc, d);
    }
    return ecc;
  }

  /// s-diameter: the largest eccentricity among active entities (the
  /// longest shortest s-walk); 0 for an edgeless line graph.
  [[nodiscard]] std::size_t s_diameter() const {
    auto        ecc  = nw::graph::eccentricity(graph_);
    vertex_id_t best = 0;
    for (std::size_t v = 0; v < ecc.size(); ++v) {
      if (active_[v]) best = std::max(best, ecc[v]);
    }
    return best;
  }

  /// s-PageRank over the line graph (the PageRank-on-projection workflow of
  /// MESH / HyperX, here at arbitrary s).
  [[nodiscard]] std::vector<double> s_pagerank(double damping = 0.85) const {
    return nw::graph::pagerank(graph_, damping);
  }

  /// s-core numbers: k-core decomposition of the line graph.
  [[nodiscard]] std::vector<std::size_t> s_core_numbers() const {
    return nw::graph::kcore_decomposition(graph_);
  }

  /// Number of s-triangles: triples of mutually s-adjacent hyperedges.
  [[nodiscard]] std::size_t s_triangle_count() const {
    return nw::graph::triangle_count(graph_);
  }

  /// Global clustering coefficient of the line graph
  /// (3 * triangles / open-or-closed wedges).
  [[nodiscard]] double s_clustering_coefficient() const {
    std::size_t wedges = 0;
    for (std::size_t v = 0; v < graph_.size(); ++v) {
      std::size_t d = graph_.degree(v);
      wedges += d * (d - 1) / 2;
    }
    if (wedges == 0) return 0.0;
    return 3.0 * static_cast<double>(nw::graph::triangle_count(graph_)) /
           static_cast<double>(wedges);
  }

  /// A random s-walk (Aksoy et al.: "an s-walk is a random walk on the
  /// s-line graph"): starting from `start`, take up to `length` uniform
  /// steps across s-adjacencies.  The walk stops early at a vertex with no
  /// s-neighbors.  Returns the visited sequence, starting with `start`.
  [[nodiscard]] std::vector<vertex_id_t> random_s_walk(vertex_id_t start, std::size_t length,
                                                       std::uint64_t seed = 0x5A17) const {
    std::vector<vertex_id_t> walk{start};
    xoshiro256ss             rng(seed);
    vertex_id_t              cur = start;
    for (std::size_t step = 0; step < length; ++step) {
      std::size_t d = graph_.degree(cur);
      if (d == 0) break;
      auto nbrs = graph_[cur];
      auto it   = nbrs.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.bounded(d)));
      cur = nw::graph::target(*it);
      walk.push_back(cur);
    }
    return walk;
  }

  /// A maximal set of pairwise non-s-adjacent hyperedges (an s-matching of
  /// the hypergraph), via parallel MIS on the line graph.  Inactive
  /// entities are excluded from the result.
  [[nodiscard]] std::vector<vertex_id_t> s_independent_edges(std::uint64_t seed = 0x315D) const {
    auto                     mis = nw::graph::maximal_independent_set(graph_, seed);
    std::vector<vertex_id_t> out;
    for (std::size_t v = 0; v < mis.size(); ++v) {
      if (mis[v] && active_[v]) out.push_back(static_cast<vertex_id_t>(v));
    }
    return out;
  }

private:
  /// Point queries index graph_/BFS arrays directly; an out-of-range id is
  /// UB there, so every public (vertex_id_t) entry point validates first.
  void check_vertex(vertex_id_t v, const char* what) const {
    if (v >= graph_.size()) {
      throw std::out_of_range(std::string(what) + ": vertex id " + std::to_string(v) +
                              " out of range (line graph has " +
                              std::to_string(graph_.size()) + " vertices)");
    }
  }

  std::size_t            s_;
  std::vector<char>      active_;
  nw::graph::adjacency<> graph_;
};

}  // namespace nw::hypergraph
