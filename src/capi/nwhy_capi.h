/* capi/nwhy_capi.h
 *
 * C ABI for the NWHy framework, mirroring the Python API of the paper's
 * Listing 5 one-to-one.  pybind11 is not available in this environment, so
 * this header is the binding surface a Python (ctypes / cffi) or any other
 * FFI layer would wrap; examples/pyapi_emulation.cpp drives it exactly like
 * the Listing 5 session.
 *
 * Conventions:
 *  - handles are opaque pointers; destroy with the matching *_destroy
 *  - array outputs are written into caller-provided buffers whose length is
 *    queried first (…_size functions) or fixed by the entity counts
 *  - all ids are uint32_t, -1 (NWHY_NULL_ID) means "none"/unreachable
 */
#ifndef NWHY_CAPI_H
#define NWHY_CAPI_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define NWHY_NULL_ID ((uint32_t)-1)

typedef struct nwhy_hypergraph nwhy_hypergraph;
typedef struct nwhy_slinegraph nwhy_slinegraph;

/* --- hypergraph lifecycle (Listing 5: nwhy.NWHypergraph(row, col, weight)) */

/* Build from parallel incidence arrays: edge_ids[i] is incident on
 * node_ids[i].  weights are accepted for API fidelity and ignored by the
 * structural metrics, as in the paper.  Returns NULL on invalid input. */
nwhy_hypergraph* nwhy_hypergraph_create(const uint32_t* edge_ids, const uint32_t* node_ids,
                                        const double* weights, size_t n);
void             nwhy_hypergraph_destroy(nwhy_hypergraph* hg);

size_t nwhy_num_hyperedges(const nwhy_hypergraph* hg);
size_t nwhy_num_hypernodes(const nwhy_hypergraph* hg);
size_t nwhy_num_incidences(const nwhy_hypergraph* hg);

/* degrees[0..num_hyperedges) / [0..num_hypernodes) */
void nwhy_edge_sizes(const nwhy_hypergraph* hg, size_t* out);
void nwhy_node_degrees(const nwhy_hypergraph* hg, size_t* out);

/* Toplexes: returns the count; if out != NULL it must have room for the
 * count obtained from a first call with out == NULL. */
size_t nwhy_toplexes(const nwhy_hypergraph* hg, uint32_t* out);

/* Wedge/triad/butterfly census of the bipartite form.  Each non-NULL output
 * receives its count; returns 0, or -1 on a NULL hypergraph. */
int nwhy_motif_counts(const nwhy_hypergraph* hg, uint64_t* wedges, uint64_t* triads,
                      uint64_t* open_wedges, uint64_t* butterflies);

/* --- mutation (the dynamic delta-overlay engine) --------------------------- */

/* Insert-or-replace hyperedge `edge` with the given member list (ids past
 * the current cardinalities grow the hypergraph).  Returns 0 on success,
 * -1 on invalid input.  Existing nwhy_slinegraph handles become stale (see
 * nwhy_slg_is_stale). */
int nwhy_insert_edge(nwhy_hypergraph* hg, uint32_t edge, const uint32_t* nodes, size_t n);

/* Remove (tombstone) hyperedge `edge`: the id stays valid and becomes an
 * empty hyperedge.  Out-of-range ids are a no-op.  Returns 0 on success. */
int nwhy_remove_edge(nwhy_hypergraph* hg, uint32_t edge);

/* Fold pending mutations into a fresh immutable CSR generation.  Queries
 * work with or without a pending delta; compaction only affects speed. */
int nwhy_compact(nwhy_hypergraph* hg);

/* Reorder the internal hyperedge storage by descending degree (a locality
 * optimization).  Invisible to every query — ids keep their original
 * meaning; the next mutation undoes it automatically.  Requires a
 * compacted state: returns -1 while a delta is pending, 0 on success. */
int nwhy_relabel_by_degree(nwhy_hypergraph* hg);

/* 1 while the internal storage is degree-relabeled, else 0. */
int nwhy_is_relabeled(const nwhy_hypergraph* hg);

/* Number of pending (uncompacted) mutation rows. */
size_t nwhy_delta_size(const nwhy_hypergraph* hg);

/* Content version: bumped by every successful mutation.  An
 * nwhy_slinegraph captured at version V is stale once this differs. */
uint64_t nwhy_version(const nwhy_hypergraph* hg);

/* Composed member list of hyperedge `edge`: returns the member count and
 * fills `out` (room for nwhy_edge_sizes[edge] entries) if non-NULL.
 * Out-of-range / removed edges return 0. */
size_t nwhy_edge_members(const nwhy_hypergraph* hg, uint32_t edge, uint32_t* out);

/* --- s-line graph (Listing 5: hg.s_linegraph(s, edges)) ------------------- */

nwhy_slinegraph* nwhy_s_linegraph(const nwhy_hypergraph* hg, size_t s, int edges);
void             nwhy_slinegraph_destroy(nwhy_slinegraph* lg);

/* 1 when the source hypergraph has been mutated since this line graph was
 * built (the handle then answers every query with its sentinel value:
 * counts/degrees 0, ids NWHY_NULL_ID, centralities 0.0); 0 while fresh.
 * Rebuild with nwhy_s_linegraph after mutating. */
int nwhy_slg_is_stale(const nwhy_slinegraph* lg);

size_t nwhy_slg_num_vertices(const nwhy_slinegraph* lg);
size_t nwhy_slg_num_edges(const nwhy_slinegraph* lg);

/* Listing 5: s2lg.is_s_connected() */
int nwhy_slg_is_s_connected(const nwhy_slinegraph* lg);

/* Listing 5: s2lg.s_neighbors(v); returns neighbor count, fills out if
 * non-NULL (room for nwhy_slg_s_degree(lg, v) entries). */
size_t nwhy_slg_s_degree(const nwhy_slinegraph* lg, uint32_t v);
size_t nwhy_slg_s_neighbors(const nwhy_slinegraph* lg, uint32_t v, uint32_t* out);

/* Listing 5: s2lg.s_connected_components(); out has num_vertices entries,
 * NWHY_NULL_ID for inactive hyperedges. */
void nwhy_slg_s_connected_components(const nwhy_slinegraph* lg, uint32_t* out);

/* Listing 5: s2lg.s_distance(src, dest); NWHY_NULL_ID when unreachable. */
uint32_t nwhy_slg_s_distance(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest);

/* Listing 5: s2lg.s_path(src, dest); returns path length in vertices (0 if
 * unreachable); fills out (room for num_vertices entries) if non-NULL. */
size_t nwhy_slg_s_path(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest, uint32_t* out);

/* Listing 5 centralities; out has num_vertices entries. */
void nwhy_slg_s_betweenness_centrality(const nwhy_slinegraph* lg, int normalized, double* out);
/* Batched frontier Brandes: same conventions, bit-deterministic at every
 * thread count.  Sampled: num_samples seed-driven sources (0 = the
 * NWHY_BETWEENNESS_SAMPLES default), scaled by n / samples. */
void nwhy_slg_s_betweenness_batched(const nwhy_slinegraph* lg, int normalized, double* out);
void nwhy_slg_s_betweenness_sampled(const nwhy_slinegraph* lg, size_t num_samples, uint64_t seed,
                                    double* out);
void nwhy_slg_s_closeness_centrality(const nwhy_slinegraph* lg, double* out);
void nwhy_slg_s_harmonic_closeness_centrality(const nwhy_slinegraph* lg, double* out);
void nwhy_slg_s_eccentricity(const nwhy_slinegraph* lg, uint32_t* out);

#ifdef __cplusplus
}
#endif

#endif /* NWHY_CAPI_H */
