// capi/nwhy_capi.cpp — implementation of the C binding surface.
#include "capi/nwhy_capi.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/s_linegraph.hpp"

using nw::hypergraph::NWHypergraph;
using nw::hypergraph::s_linegraph;

struct nwhy_hypergraph {
  NWHypergraph impl;
};

struct nwhy_slinegraph {
  s_linegraph impl;
};

extern "C" {

nwhy_hypergraph* nwhy_hypergraph_create(const uint32_t* edge_ids, const uint32_t* node_ids,
                                        const double* weights, size_t n) {
  if ((edge_ids == nullptr || node_ids == nullptr) && n > 0) return nullptr;
  (void)weights;  // accepted for Listing-5 fidelity; structural metrics ignore them
  return new nwhy_hypergraph{
      NWHypergraph(std::span<const uint32_t>(edge_ids, n), std::span<const uint32_t>(node_ids, n))};
}

void nwhy_hypergraph_destroy(nwhy_hypergraph* hg) { delete hg; }

size_t nwhy_num_hyperedges(const nwhy_hypergraph* hg) { return hg->impl.num_hyperedges(); }
size_t nwhy_num_hypernodes(const nwhy_hypergraph* hg) { return hg->impl.num_hypernodes(); }
size_t nwhy_num_incidences(const nwhy_hypergraph* hg) { return hg->impl.num_incidences(); }

void nwhy_edge_sizes(const nwhy_hypergraph* hg, size_t* out) {
  const auto& d = hg->impl.edge_sizes();
  std::copy(d.begin(), d.end(), out);
}

void nwhy_node_degrees(const nwhy_hypergraph* hg, size_t* out) {
  const auto& d = hg->impl.node_degrees();
  std::copy(d.begin(), d.end(), out);
}

size_t nwhy_toplexes(const nwhy_hypergraph* hg, uint32_t* out) {
  auto t = hg->impl.toplexes();
  if (out != nullptr) std::copy(t.begin(), t.end(), out);
  return t.size();
}

nwhy_slinegraph* nwhy_s_linegraph(const nwhy_hypergraph* hg, size_t s, int edges) {
  return new nwhy_slinegraph{hg->impl.make_s_linegraph(s, edges != 0)};
}

void nwhy_slinegraph_destroy(nwhy_slinegraph* lg) { delete lg; }

size_t nwhy_slg_num_vertices(const nwhy_slinegraph* lg) { return lg->impl.num_vertices(); }
size_t nwhy_slg_num_edges(const nwhy_slinegraph* lg) { return lg->impl.num_edges(); }

int nwhy_slg_is_s_connected(const nwhy_slinegraph* lg) {
  return lg->impl.is_s_connected() ? 1 : 0;
}

// The C++ point queries throw std::out_of_range on invalid ids; the C ABI
// maps that to its existing sentinels (0 / NWHY_NULL_ID) instead of letting
// an exception cross the language boundary.
size_t nwhy_slg_s_degree(const nwhy_slinegraph* lg, uint32_t v) {
  if (v >= lg->impl.num_vertices()) return 0;
  return lg->impl.s_degree(v);
}

size_t nwhy_slg_s_neighbors(const nwhy_slinegraph* lg, uint32_t v, uint32_t* out) {
  if (v >= lg->impl.num_vertices()) return 0;
  auto nbrs = lg->impl.s_neighbors(v);
  if (out != nullptr) std::copy(nbrs.begin(), nbrs.end(), out);
  return nbrs.size();
}

void nwhy_slg_s_connected_components(const nwhy_slinegraph* lg, uint32_t* out) {
  auto labels = lg->impl.s_connected_components();
  std::copy(labels.begin(), labels.end(), out);
}

uint32_t nwhy_slg_s_distance(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest) {
  if (src >= lg->impl.num_vertices() || dest >= lg->impl.num_vertices()) return NWHY_NULL_ID;
  auto d = lg->impl.s_distance(src, dest);
  return d ? static_cast<uint32_t>(*d) : NWHY_NULL_ID;
}

size_t nwhy_slg_s_path(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest, uint32_t* out) {
  if (src >= lg->impl.num_vertices() || dest >= lg->impl.num_vertices()) return 0;
  auto path = lg->impl.s_path(src, dest);
  if (out != nullptr) std::copy(path.begin(), path.end(), out);
  return path.size();
}

void nwhy_slg_s_betweenness_centrality(const nwhy_slinegraph* lg, int normalized, double* out) {
  auto bc = lg->impl.s_betweenness_centrality(normalized != 0);
  std::copy(bc.begin(), bc.end(), out);
}

void nwhy_slg_s_closeness_centrality(const nwhy_slinegraph* lg, double* out) {
  auto c = lg->impl.s_closeness_centrality();
  std::copy(c.begin(), c.end(), out);
}

void nwhy_slg_s_harmonic_closeness_centrality(const nwhy_slinegraph* lg, double* out) {
  auto c = lg->impl.s_harmonic_closeness_centrality();
  std::copy(c.begin(), c.end(), out);
}

void nwhy_slg_s_eccentricity(const nwhy_slinegraph* lg, uint32_t* out) {
  auto e = lg->impl.s_eccentricity();
  std::copy(e.begin(), e.end(), out);
}

}  // extern "C"
