// capi/nwhy_capi.cpp — implementation of the C binding surface.
#include "capi/nwhy_capi.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/s_linegraph.hpp"

using nw::hypergraph::NWHypergraph;
using nw::hypergraph::s_linegraph;

struct nwhy_hypergraph {
  NWHypergraph impl;
};

// The line-graph handle captures the source hypergraph's version at build
// time; the token shared_ptr stays valid even after the hypergraph handle is
// destroyed.  Mutation bumps the counter, which flips every query on this
// handle to its sentinel value (stale results must not look fresh).
struct nwhy_slinegraph {
  s_linegraph                           impl;
  std::shared_ptr<const std::uint64_t>  version_token;
  std::uint64_t                         created_at = 0;

  [[nodiscard]] bool stale() const {
    return version_token != nullptr && *version_token != created_at;
  }
};

extern "C" {

nwhy_hypergraph* nwhy_hypergraph_create(const uint32_t* edge_ids, const uint32_t* node_ids,
                                        const double* weights, size_t n) {
  if ((edge_ids == nullptr || node_ids == nullptr) && n > 0) return nullptr;
  (void)weights;  // accepted for Listing-5 fidelity; structural metrics ignore them
  return new nwhy_hypergraph{
      NWHypergraph(std::span<const uint32_t>(edge_ids, n), std::span<const uint32_t>(node_ids, n))};
}

void nwhy_hypergraph_destroy(nwhy_hypergraph* hg) { delete hg; }

size_t nwhy_num_hyperedges(const nwhy_hypergraph* hg) { return hg->impl.num_hyperedges(); }
size_t nwhy_num_hypernodes(const nwhy_hypergraph* hg) { return hg->impl.num_hypernodes(); }
size_t nwhy_num_incidences(const nwhy_hypergraph* hg) { return hg->impl.num_incidences(); }

void nwhy_edge_sizes(const nwhy_hypergraph* hg, size_t* out) {
  const auto& d = hg->impl.edge_sizes();
  std::copy(d.begin(), d.end(), out);
}

void nwhy_node_degrees(const nwhy_hypergraph* hg, size_t* out) {
  const auto& d = hg->impl.node_degrees();
  std::copy(d.begin(), d.end(), out);
}

size_t nwhy_toplexes(const nwhy_hypergraph* hg, uint32_t* out) {
  auto t = hg->impl.toplexes();
  if (out != nullptr) std::copy(t.begin(), t.end(), out);
  return t.size();
}

int nwhy_motif_counts(const nwhy_hypergraph* hg, uint64_t* wedges, uint64_t* triads,
                      uint64_t* open_wedges, uint64_t* butterflies) {
  if (hg == nullptr) return -1;
  auto census = hg->impl.motifs();
  if (wedges != nullptr) *wedges = census.wedges;
  if (triads != nullptr) *triads = census.triads;
  if (open_wedges != nullptr) *open_wedges = census.open_wedges;
  if (butterflies != nullptr) *butterflies = census.butterflies;
  return 0;
}

int nwhy_insert_edge(nwhy_hypergraph* hg, uint32_t edge, const uint32_t* nodes, size_t n) {
  if (hg == nullptr || edge == NWHY_NULL_ID || (nodes == nullptr && n > 0)) return -1;
  hg->impl.update_edge(edge, std::vector<uint32_t>(nodes, nodes + n));
  return 0;
}

int nwhy_remove_edge(nwhy_hypergraph* hg, uint32_t edge) {
  if (hg == nullptr) return -1;
  hg->impl.remove_edges(std::span<const uint32_t>(&edge, 1));
  return 0;
}

int nwhy_compact(nwhy_hypergraph* hg) {
  if (hg == nullptr) return -1;
  hg->impl.compact();
  return 0;
}

int nwhy_relabel_by_degree(nwhy_hypergraph* hg) {
  if (hg == nullptr || hg->impl.has_pending_delta()) return -1;
  hg->impl.relabel_by_degree();
  return 0;
}

int nwhy_is_relabeled(const nwhy_hypergraph* hg) {
  return hg != nullptr && hg->impl.is_relabeled() ? 1 : 0;
}

size_t nwhy_delta_size(const nwhy_hypergraph* hg) { return hg->impl.delta_size(); }

uint64_t nwhy_version(const nwhy_hypergraph* hg) { return hg->impl.version(); }

size_t nwhy_edge_members(const nwhy_hypergraph* hg, uint32_t edge, uint32_t* out) {
  if (hg == nullptr || edge >= hg->impl.num_hyperedges()) return 0;
  auto members = hg->impl.edge_members(edge);
  if (out != nullptr) std::copy(members.begin(), members.end(), out);
  return members.size();
}

nwhy_slinegraph* nwhy_s_linegraph(const nwhy_hypergraph* hg, size_t s, int edges) {
  return new nwhy_slinegraph{hg->impl.make_s_linegraph(s, edges != 0),
                             hg->impl.version_token(), hg->impl.version()};
}

void nwhy_slinegraph_destroy(nwhy_slinegraph* lg) { delete lg; }

int nwhy_slg_is_stale(const nwhy_slinegraph* lg) { return lg->stale() ? 1 : 0; }

size_t nwhy_slg_num_vertices(const nwhy_slinegraph* lg) {
  if (lg->stale()) return 0;
  return lg->impl.num_vertices();
}
size_t nwhy_slg_num_edges(const nwhy_slinegraph* lg) {
  if (lg->stale()) return 0;
  return lg->impl.num_edges();
}

int nwhy_slg_is_s_connected(const nwhy_slinegraph* lg) {
  if (lg->stale()) return 0;
  return lg->impl.is_s_connected() ? 1 : 0;
}

// The C++ point queries throw std::out_of_range on invalid ids; the C ABI
// maps that to its existing sentinels (0 / NWHY_NULL_ID) instead of letting
// an exception cross the language boundary.  Stale handles (source mutated
// since construction) take the same sentinel paths.
size_t nwhy_slg_s_degree(const nwhy_slinegraph* lg, uint32_t v) {
  if (lg->stale() || v >= lg->impl.num_vertices()) return 0;
  return lg->impl.s_degree(v);
}

size_t nwhy_slg_s_neighbors(const nwhy_slinegraph* lg, uint32_t v, uint32_t* out) {
  if (lg->stale() || v >= lg->impl.num_vertices()) return 0;
  auto nbrs = lg->impl.s_neighbors(v);
  if (out != nullptr) std::copy(nbrs.begin(), nbrs.end(), out);
  return nbrs.size();
}

void nwhy_slg_s_connected_components(const nwhy_slinegraph* lg, uint32_t* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), NWHY_NULL_ID);
    return;
  }
  auto labels = lg->impl.s_connected_components();
  std::copy(labels.begin(), labels.end(), out);
}

uint32_t nwhy_slg_s_distance(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest) {
  if (lg->stale() || src >= lg->impl.num_vertices() || dest >= lg->impl.num_vertices()) {
    return NWHY_NULL_ID;
  }
  auto d = lg->impl.s_distance(src, dest);
  return d ? static_cast<uint32_t>(*d) : NWHY_NULL_ID;
}

size_t nwhy_slg_s_path(const nwhy_slinegraph* lg, uint32_t src, uint32_t dest, uint32_t* out) {
  if (lg->stale() || src >= lg->impl.num_vertices() || dest >= lg->impl.num_vertices()) return 0;
  auto path = lg->impl.s_path(src, dest);
  if (out != nullptr) std::copy(path.begin(), path.end(), out);
  return path.size();
}

void nwhy_slg_s_betweenness_centrality(const nwhy_slinegraph* lg, int normalized, double* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), 0.0);
    return;
  }
  auto bc = lg->impl.s_betweenness_centrality(normalized != 0);
  std::copy(bc.begin(), bc.end(), out);
}

void nwhy_slg_s_betweenness_batched(const nwhy_slinegraph* lg, int normalized, double* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), 0.0);
    return;
  }
  auto bc = lg->impl.s_betweenness_centrality_batched(normalized != 0);
  std::copy(bc.begin(), bc.end(), out);
}

void nwhy_slg_s_betweenness_sampled(const nwhy_slinegraph* lg, size_t num_samples, uint64_t seed,
                                    double* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), 0.0);
    return;
  }
  auto bc = lg->impl.s_betweenness_centrality_sampled(num_samples, seed);
  std::copy(bc.begin(), bc.end(), out);
}

void nwhy_slg_s_closeness_centrality(const nwhy_slinegraph* lg, double* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), 0.0);
    return;
  }
  auto c = lg->impl.s_closeness_centrality();
  std::copy(c.begin(), c.end(), out);
}

void nwhy_slg_s_harmonic_closeness_centrality(const nwhy_slinegraph* lg, double* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), 0.0);
    return;
  }
  auto c = lg->impl.s_harmonic_closeness_centrality();
  std::copy(c.begin(), c.end(), out);
}

void nwhy_slg_s_eccentricity(const nwhy_slinegraph* lg, uint32_t* out) {
  if (lg->stale()) {
    std::fill(out, out + lg->impl.num_vertices(), NWHY_NULL_ID);
    return;
  }
  auto e = lg->impl.s_eccentricity();
  std::copy(e.begin(), e.end(), out);
}

}  // extern "C"
