// nwhy.hpp — umbrella header: the full public API of the NWHy framework.
#pragma once

// Utilities
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/env.hpp"
#include "nwutil/flat_hashmap.hpp"
#include "nwutil/rng.hpp"
#include "nwutil/stats.hpp"
#include "nwutil/timer.hpp"

// Observability (counters, phase timers, JSON profiles)
#include "nwobs/counters.hpp"
#include "nwobs/profile.hpp"
#include "nwobs/scope_timer.hpp"

// Parallel runtime (oneTBB substitute)
#include "nwpar/frontier.hpp"
#include "nwpar/line_split.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwpar/parallel_sort.hpp"
#include "nwpar/partitioners.hpp"
#include "nwpar/range_adaptors.hpp"
#include "nwpar/thread_pool.hpp"
#include "nwpar/work_stealing.hpp"

// Graph substrate (NWGraph)
#include "nwgraph/adjacency.hpp"
#include "nwgraph/algorithms/betweenness.hpp"
#include "nwgraph/algorithms/bfs.hpp"
#include "nwgraph/algorithms/closeness.hpp"
#include "nwgraph/algorithms/connected_components.hpp"
#include "nwgraph/algorithms/kcore.hpp"
#include "nwgraph/algorithms/mis.hpp"
#include "nwgraph/algorithms/pagerank.hpp"
#include "nwgraph/algorithms/sssp.hpp"
#include "nwgraph/algorithms/triangle_count.hpp"
#include "nwgraph/concepts.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwgraph/io.hpp"
#include "nwgraph/relabel.hpp"

// Hypergraph core
#include "nwhy/adjoin.hpp"
#include "nwhy/algorithms/adjoin_algorithms.hpp"
#include "nwhy/algorithms/hyper_bfs.hpp"
#include "nwhy/algorithms/hyper_cc.hpp"
#include "nwhy/algorithms/hyper_kcore.hpp"
#include "nwhy/algorithms/hyper_pagerank.hpp"
#include "nwhy/algorithms/sharded_traversal.hpp"
#include "nwhy/algorithms/toplex.hpp"
#include "nwhy/biadjacency.hpp"
#include "nwhy/biedgelist.hpp"
#include "nwhy/bipartite_graph_base.hpp"
#include "nwhy/delta.hpp"
#include "nwhy/gen/dataset_suite.hpp"
#include "nwhy/gen/generators.hpp"
#include "nwhy/io/binary.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/io_error.hpp"
#include "nwhy/io/konect.hpp"
#include "nwhy/io/matrix_market.hpp"
#include "nwhy/io/shard.hpp"
#include "nwhy/io/text_input.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/ref.hpp"
#include "nwhy/relabel.hpp"
#include "nwhy/s_linegraph.hpp"
#include "nwhy/slinegraph/construction.hpp"
#include "nwhy/slinegraph/implicit.hpp"
#include "nwhy/slinegraph/incremental.hpp"
#include "nwhy/slinegraph/spgemm.hpp"
#include "nwhy/slinegraph/weighted.hpp"

// Query server (epoch-pinned generations over a binary protocol)
#include "nwhy/serve/client.hpp"
#include "nwhy/serve/dispatcher.hpp"
#include "nwhy/serve/protocol.hpp"
#include "nwhy/serve/query.hpp"
#include "nwhy/serve/registry.hpp"
#include "nwhy/serve/server.hpp"

// Sparse-matrix substrate (rectangular incidence-matrix operations)
#include "nwgraph/sparse/csr_matrix.hpp"
#include "nwgraph/sparse/graphblas.hpp"
#include "nwhy/transforms.hpp"
#include "nwhy/validate.hpp"

// Comparator baseline (Hygra substitute)
#include "hygra/algorithms.hpp"
