// nwgraph/relabel.hpp
//
// Relabel-by-degree ("permute-by-row/column", Sec. III-B.2): renumber
// vertices so that ids are assigned in descending (or ascending) degree
// order.  Improves load balance and locality for skewed inputs — and, as
// the paper points out, is *inapplicable* to adjoin graphs because it would
// intermingle hyperedge and hypernode ids; the queue-based algorithms
// (Alg. 1 / Alg. 2) exist to lift that restriction.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "nwgraph/edge_list.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

enum class degree_order { ascending, descending };

/// Compute a permutation `perm` with perm[old_id] = new_id, ordering ids by
/// degree.  Ties broken by old id for determinism.
inline std::vector<vertex_id_t> degree_permutation(const std::vector<std::size_t>& degrees,
                                                   degree_order order) {
  std::vector<vertex_id_t> by_degree(degrees.size());
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](vertex_id_t a, vertex_id_t b) {
    return order == degree_order::descending ? degrees[a] > degrees[b] : degrees[a] < degrees[b];
  });
  std::vector<vertex_id_t> perm(degrees.size());
  for (std::size_t new_id = 0; new_id < by_degree.size(); ++new_id) {
    perm[by_degree[new_id]] = static_cast<vertex_id_t>(new_id);
  }
  return perm;
}

/// Inverse of a permutation (new_id -> old_id).
inline std::vector<vertex_id_t> inverse_permutation(const std::vector<vertex_id_t>& perm) {
  std::vector<vertex_id_t> inv(perm.size());
  for (std::size_t old_id = 0; old_id < perm.size(); ++old_id) inv[perm[old_id]] = old_id;
  return inv;
}

/// Apply a source-side and a target-side permutation to an edge list.  For a
/// square graph pass the same permutation twice; for a bipartite edge list
/// the two sides have independent permutations.
template <class... Attributes>
edge_list<Attributes...> relabel_edge_list(const edge_list<Attributes...>&  el,
                                           const std::vector<vertex_id_t>& src_perm,
                                           const std::vector<vertex_id_t>& dst_perm) {
  edge_list<Attributes...> out(el.num_vertices());
  out.reserve(el.size());
  for (std::size_t i = 0; i < el.size(); ++i) {
    auto e = el[i];
    std::apply(
        [&](vertex_id_t u, vertex_id_t v, const auto&... attrs) {
          out.push_back(src_perm[u], dst_perm[v], attrs...);
        },
        e);
  }
  return out;
}

}  // namespace nw::graph
