// nwgraph/io.hpp
//
// Plain-graph I/O for the NWGraph substrate, so it is usable standalone
// (the paper positions NWGraph as an independent library NWHy leverages):
// square MatrixMarket adjacency matrices and whitespace edge lists
// (GAPBS-style .el).  For hypergraph incidence matrices use nwhy/io/.
#pragma once

#include <fstream>
#include <sstream>
#include <string>

#include "nwgraph/edge_list.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// Read a square MatrixMarket "coordinate pattern|real general|symmetric"
/// file as a directed edge list (symmetric inputs emit both directions).
inline edge_list<> read_mm_graph(std::istream& in) {
  std::string line;
  NW_ASSERT(static_cast<bool>(std::getline(in, line)), "empty MatrixMarket stream");
  NW_ASSERT(line.rfind("%%MatrixMarket", 0) == 0, "missing MatrixMarket banner");
  const bool pattern   = line.find("pattern") != std::string::npos;
  const bool symmetric = line.find("symmetric") != std::string::npos;
  NW_ASSERT(line.find("coordinate") != std::string::npos, "only coordinate format supported");

  std::size_t rows = 0, cols = 0, nnz = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream dims(line);
    NW_ASSERT(static_cast<bool>(dims >> rows >> cols >> nnz), "malformed size line");
    break;
  }
  NW_ASSERT(rows == cols, "read_mm_graph expects a square adjacency matrix");

  edge_list<> el(rows);
  el.reserve(symmetric ? 2 * nnz : nnz);
  std::size_t r = 0, c = 0;
  double      val = 0;
  for (std::size_t i = 0; i < nnz; ++i) {
    NW_ASSERT(static_cast<bool>(in >> r >> c), "truncated MatrixMarket entries");
    if (!pattern) in >> val;
    NW_ASSERT(r >= 1 && r <= rows && c >= 1 && c <= cols, "entry out of bounds");
    auto u = static_cast<vertex_id_t>(r - 1);
    auto v = static_cast<vertex_id_t>(c - 1);
    el.push_back(u, v);
    if (symmetric && u != v) el.push_back(v, u);
  }
  return el;
}

inline edge_list<> read_mm_graph(const std::string& path) {
  std::ifstream in(path);
  NW_ASSERT(in.is_open(), "cannot open MatrixMarket graph file");
  return read_mm_graph(in);
}

/// Read a GAPBS-style edge list: one "u v" pair per line, 0-based, '#' or
/// '%' comments.  Does not symmetrize.
inline edge_list<> read_edge_list(std::istream& in) {
  edge_list<> el;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream row(line);
    long long          u = 0, v = 0;
    if (!(row >> u >> v)) continue;
    NW_ASSERT(u >= 0 && v >= 0, "edge-list ids must be non-negative");
    el.push_back(static_cast<vertex_id_t>(u), static_cast<vertex_id_t>(v));
  }
  return el;
}

inline edge_list<> read_edge_list(const std::string& path) {
  std::ifstream in(path);
  NW_ASSERT(in.is_open(), "cannot open edge-list file");
  return read_edge_list(in);
}

/// Write a graph edge list as square MatrixMarket (pattern general).
inline void write_mm_graph(std::ostream& out, const edge_list<>& el) {
  std::size_t n = el.num_vertices();
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << n << ' ' << n << ' ' << el.size() << '\n';
  for (std::size_t i = 0; i < el.size(); ++i) {
    out << (el.source(i) + 1) << ' ' << (el.destination(i) + 1) << '\n';
  }
}

}  // namespace nw::graph
