// nwgraph/concepts.hpp
//
// Graph concepts in the "graphs as ranges of ranges" style of Section III-A:
// the outer range (over vertices / hyperedges) must be a
// std::ranges::random_access_range and each inner range (a neighborhood) a
// std::ranges::forward_range.  Containers in this library statically assert
// conformance, and generic algorithms constrain on these concepts.
#pragma once

#include <concepts>
#include <ranges>

#include "nwutil/defs.hpp"

namespace nw::graph {

/// Extract the neighbor id from an inner-range element.  For unweighted
/// adjacency the element *is* the id; for attributed adjacency it is a
/// tuple whose first member is the id.  This is the `target(e)` helper the
/// paper's Listing 3 iterates with.
template <class E>
  requires std::convertible_to<E, std::size_t>
constexpr vertex_id_t target(const E& e) {
  return static_cast<vertex_id_t>(e);
}

template <class E>
  requires requires(const E& e) { std::get<0>(e); }
constexpr vertex_id_t target(const E& e) {
  return static_cast<vertex_id_t>(std::get<0>(e));
}

/// A graph whose outer range is random-access and whose inner ranges are
/// forward ranges of things `target` accepts.
template <class G>
concept adjacency_list_graph =
    std::ranges::random_access_range<G> &&
    std::ranges::forward_range<std::ranges::range_reference_t<G>> &&
    requires(const G& g, std::size_t u) {
      { g.size() } -> std::convertible_to<std::size_t>;
      { g[u] };
    };

/// A graph that can report per-vertex degrees in O(1).
template <class G>
concept degree_enumerable_graph = adjacency_list_graph<G> && requires(const G& g, std::size_t u) {
  { g.degree(u) } -> std::convertible_to<std::size_t>;
};

}  // namespace nw::graph
