// nwgraph/adjacency.hpp
//
// Compressed Sparse Row adjacency structure — the workhorse container of
// both the graph substrate and the hypergraph bi-adjacency (Section III-B.1
// stores a hypergraph as *two* mutually indexed instances of this).
//
// Models the paper's "range of ranges": the outer range over vertices is a
// std::ranges::random_access_range; each inner neighborhood is a
// forward_range (contiguous, in fact).  Checked by static_asserts at the
// bottom of this header.
//
// Storage is span-backed: all readers go through `std::span<const ...>`
// views (`indices_` / `targets_`) that normally point at the owned vectors
// (`indices_store_` / `targets_store_`), but can instead alias external
// read-only memory — the NWHYCSR2 mmap loader (nwhy/io/csr_snapshot.hpp)
// hands file-backed spans straight in via `from_csr_spans`, making snapshot
// load a zero-copy validation scan.  Lifetime of external memory is the
// caller's contract (the snapshot loader parks a keepalive next to the
// graph).  Copying an adjacency always deep-copies into owned storage, so a
// copy of a view is a plain owning CSR.
#pragma once

#include <algorithm>
#include <iterator>
#include <numeric>
#include <ranges>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwpar/parallel_scan.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

namespace detail {

/// Inner range for attributed adjacency: iterating yields
/// std::tuple<vertex_id_t, Attributes...> by value.
template <class... Attributes>
class attributed_span {
public:
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type        = std::tuple<vertex_id_t, Attributes...>;
    using difference_type   = std::ptrdiff_t;

    iterator() = default;
    iterator(const vertex_id_t* tgt, std::tuple<const Attributes*...> attrs)
        : tgt_(tgt), attrs_(attrs) {}

    value_type operator*() const {
      return std::apply([&](const auto*... a) { return value_type{*tgt_, *a...}; }, attrs_);
    }
    iterator& operator++() {
      ++tgt_;
      std::apply([](const auto*&... a) { ((++a), ...); }, attrs_);
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) { return a.tgt_ == b.tgt_; }

  private:
    const vertex_id_t*               tgt_ = nullptr;
    std::tuple<const Attributes*...> attrs_;
  };

  attributed_span() = default;
  attributed_span(const vertex_id_t* tgt, std::tuple<const Attributes*...> attrs, std::size_t n)
      : tgt_(tgt), attrs_(attrs), n_(n) {}

  [[nodiscard]] iterator begin() const { return {tgt_, attrs_}; }
  [[nodiscard]] iterator end() const {
    auto shifted = std::apply(
        [&](const auto*... a) { return std::tuple<const Attributes*...>{(a + n_)...}; }, attrs_);
    return {tgt_ + n_, shifted};
  }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool        empty() const { return n_ == 0; }

private:
  const vertex_id_t*               tgt_ = nullptr;
  std::tuple<const Attributes*...> attrs_;
  std::size_t                      n_ = 0;
};

}  // namespace detail

template <class... Attributes>
class adjacency {
public:
  using inner_range = std::conditional_t<sizeof...(Attributes) == 0, std::span<const vertex_id_t>,
                                         detail::attributed_span<Attributes...>>;

  adjacency() : indices_store_(1, 0) { rebind(); }

  /// Build CSR from an edge list.  Edges are grouped by source; the order
  /// of neighbors within a group follows the edge-list order.  `n` overrides
  /// the vertex count (0 = take from the edge list).  `check_targets`
  /// is disabled for rectangular (bipartite) builds where target ids live in
  /// a different index space than the sources.
  explicit adjacency(const edge_list<Attributes...>& el, std::size_t n = 0)
      : adjacency(el, n, check_targets_tag{true}) {}

  /// Build a CSR whose target ids live in a different index space of size
  /// `n_targets` (bipartite / rectangular case: targets are not checked
  /// against the source cardinality).
  adjacency(const edge_list<Attributes...>& el, std::size_t n_sources, std::size_t n_targets)
      : adjacency(el, n_sources, check_targets_tag{false}) {
    (void)n_targets;
  }

  /// Copying always materializes owned storage: a copy of an mmap-backed
  /// view is a plain in-memory CSR (deep copy of whatever the spans see).
  adjacency(const adjacency& other)
      : n_(other.n_),
        indices_store_(other.indices_.begin(), other.indices_.end()),
        targets_store_(other.targets_.begin(), other.targets_.end()),
        attrs_(other.attrs_) {
    rebind();
  }

  adjacency& operator=(const adjacency& other) {
    if (this != &other) {
      n_ = other.n_;
      indices_store_.assign(other.indices_.begin(), other.indices_.end());
      targets_store_.assign(other.targets_.begin(), other.targets_.end());
      attrs_ = other.attrs_;
      rebind();
    }
    return *this;
  }

  /// Moves transfer the owned heap buffers (spans into them stay valid) or,
  /// for external views, just the span handles.  The source is reset to the
  /// empty owning state.
  adjacency(adjacency&& other) noexcept
      : n_(other.n_),
        indices_store_(std::move(other.indices_store_)),
        targets_store_(std::move(other.targets_store_)),
        external_(other.external_),
        attrs_(std::move(other.attrs_)) {
    if (external_) {
      indices_ = other.indices_;
      targets_ = other.targets_;
    } else {
      rebind();
    }
    other.reset_to_empty();
  }

  adjacency& operator=(adjacency&& other) noexcept {
    if (this != &other) {
      n_             = other.n_;
      indices_store_ = std::move(other.indices_store_);
      targets_store_ = std::move(other.targets_store_);
      external_      = other.external_;
      attrs_         = std::move(other.attrs_);
      if (external_) {
        indices_ = other.indices_;
        targets_ = other.targets_;
      } else {
        rebind();
      }
      other.reset_to_empty();
    }
    return *this;
  }

  ~adjacency() = default;

  /// Zero-copy view over externally owned CSR arrays (the NWHYCSR2 mmap
  /// path).  Preconditions: `indices.size() == n + 1`, `indices[n] ==
  /// targets.size()`, offsets non-decreasing.  The caller owns the backing
  /// memory and must keep it alive for the view's lifetime.  Only available
  /// for the unattributed CSR.
  static adjacency from_csr_spans(std::span<const offset_t>    indices,
                                  std::span<const vertex_id_t> targets, std::size_t n)
    requires(sizeof...(Attributes) == 0)
  {
    NW_ASSERT(indices.size() == n + 1, "from_csr_spans: indices must have n+1 entries");
    adjacency g;
    g.n_        = n;
    g.external_ = true;
    g.indices_store_.clear();
    g.targets_store_.clear();
    g.indices_ = indices;
    g.targets_ = targets;
    return g;
  }

  /// Adopt pre-built CSR vectors without a per-element pass (the streamed
  /// snapshot reader path).  Same preconditions as from_csr_spans.
  static adjacency from_csr_vectors(std::vector<offset_t>    indices,
                                    std::vector<vertex_id_t> targets, std::size_t n)
    requires(sizeof...(Attributes) == 0)
  {
    NW_ASSERT(indices.size() == n + 1, "from_csr_vectors: indices must have n+1 entries");
    adjacency g;
    g.n_             = n;
    g.indices_store_ = std::move(indices);
    g.targets_store_ = std::move(targets);
    g.rebind();
    return g;
  }

  /// True when the spans alias external (e.g. mmap'd) memory instead of the
  /// owned vectors.
  [[nodiscard]] bool is_external() const { return external_; }

  /// Direct materialization of a *symmetric* CSR from per-thread buffers of
  /// unique undirected {lo, hi} pairs — the s-line-graph fast path.  Skips
  /// the edge_list round-trip (append + symmetrize + sort_and_unique +
  /// counting-sort rebuild) entirely:
  ///
  ///   1. parallel degree histogram over the pair buffers (atomic
  ///      fetch_add, both endpoints)
  ///   2. parallel exclusive scan of the degrees -> row offsets
  ///   3. parallel scatter of both directions of every pair
  ///   4. parallel per-row sort (ascending neighbor ids, the order
  ///      sort_and_unique used to establish)
  ///
  /// Precondition: each unordered pair appears in the buffers exactly once
  /// (what every construction algorithm in slinegraph/construction.hpp
  /// guarantees); self-loops are allowed but counted twice like the legacy
  /// symmetrize path would.  Only available for the unattributed CSR.
  /// `cap` controls per-thread buffer reuse, as in merge_thread_vectors.
  static adjacency from_unique_undirected_pairs(
      par::per_thread<std::vector<std::pair<vertex_id_t, vertex_id_t>>>& buffers,
      std::size_t n, par::merge_capacity cap = par::merge_capacity::release,
      par::thread_pool& pool = par::thread_pool::default_pool())
    requires(sizeof...(Attributes) == 0)
  {
    adjacency g;
    g.n_ = n;
    std::vector<std::size_t> sizes(buffers.size());
    for (std::size_t b = 0; b < buffers.size(); ++b) sizes[b] = buffers.local(b).size();
    std::size_t total  = 0;
    auto        chunks = par::detail::plan_block_copies(sizes, 0, total, pool);
    const std::size_t m = 2 * total;

    // 1. degree histogram (both endpoints of every pair).
    std::vector<offset_t> cursor(n, 0);
    par::parallel_for(
        0, chunks.size(),
        [&](std::size_t c) {
          const auto& ck  = chunks[c];
          const auto& src = buffers.local(ck.buf);
          for (std::size_t i = ck.src_begin; i < ck.src_begin + ck.len; ++i) {
            auto [a, b] = src[i];
            NW_ASSERT(a < n && b < n, "pair endpoint out of declared vertex range");
            nw::fetch_add(cursor[a], offset_t{1});
            nw::fetch_add(cursor[b], offset_t{1});
          }
        },
        par::blocked{}, pool);

    // 2. offsets; cursor then doubles as the per-row write cursor.
    par::parallel_exclusive_scan(cursor, pool);
    g.indices_store_.resize(n + 1);
    par::parallel_for(0, n, [&](std::size_t v) { g.indices_store_[v] = cursor[v]; },
                      par::blocked{}, pool);
    g.indices_store_[n] = m;

    // 3. scatter both directions.
    g.targets_store_.resize(m);
    par::parallel_for(
        0, chunks.size(),
        [&](std::size_t c) {
          const auto& ck  = chunks[c];
          const auto& src = buffers.local(ck.buf);
          for (std::size_t i = ck.src_begin; i < ck.src_begin + ck.len; ++i) {
            auto [a, b] = src[i];
            g.targets_store_[nw::fetch_add(cursor[a], offset_t{1})] = b;
            g.targets_store_[nw::fetch_add(cursor[b], offset_t{1})] = a;
          }
        },
        par::blocked{}, pool);

    // 4. sorted neighbor lists (intersection/triangle kernels rely on it).
    par::parallel_for(
        0, n,
        [&](std::size_t v) {
          std::sort(g.targets_store_.begin() + static_cast<std::ptrdiff_t>(g.indices_store_[v]),
                    g.targets_store_.begin() +
                        static_cast<std::ptrdiff_t>(g.indices_store_[v + 1]));
        },
        par::blocked{}, pool);

    par::detail::reset_buffers(buffers, cap);
    g.rebind();
    return g;
  }

private:
  struct check_targets_tag {
    bool value;
  };

  adjacency(const edge_list<Attributes...>& el, std::size_t n, check_targets_tag tag) {
    const bool check_targets = tag.value;
    n_ = n != 0 ? n : el.num_vertices();
    const auto&       src = el.sources();
    const auto&       dst = el.destinations();
    const std::size_t m   = el.size();
    for (std::size_t i = 0; i < m; ++i) {
      NW_ASSERT(src[i] < n_, "edge source out of declared vertex range");
      NW_ASSERT(dst[i] < n_ || !check_targets, "edge target out of declared vertex range");
    }
    targets_store_.resize(m);
    resize_attrs(m);

    auto&          pool    = par::thread_pool::default_pool();
    const unsigned threads = pool.concurrency();
    if (threads == 1 || m < (1u << 16)) {
      build_serial(el, m);
    } else {
      build_parallel(el, m, pool, threads);
    }
    rebind();
  }

  /// Serial stable counting sort into CSR.
  void build_serial(const edge_list<Attributes...>& el, std::size_t m) {
    const auto&           src = el.sources();
    const auto&           dst = el.destinations();
    std::vector<offset_t> counts(n_ + 1, 0);
    for (std::size_t i = 0; i < m; ++i) ++counts[src[i] + 1];
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    indices_store_ = counts;  // counts becomes the write cursor below
    for (std::size_t i = 0; i < m; ++i) {
      offset_t slot        = counts[src[i]]++;
      targets_store_[slot] = dst[i];
      scatter_attrs(el, i, slot, std::index_sequence_for<Attributes...>{});
    }
  }

  /// Parallel stable counting sort: per-(source, thread) histograms give
  /// each thread an exclusive, order-preserving slice of every row, so the
  /// result is bit-identical to build_serial (neighbor order = edge-list
  /// order) regardless of thread count.
  void build_parallel(const edge_list<Attributes...>& el, std::size_t m,
                      par::thread_pool& pool, unsigned threads) {
    const auto&       src   = el.sources();
    const auto&       dst   = el.destinations();
    const std::size_t chunk = (m + threads - 1) / threads;

    // cursors[v * threads + t]: first the per-chunk counts, then (after the
    // scan) the running write cursor for (source v, thread t).
    std::vector<offset_t> cursors(n_ * static_cast<std::size_t>(threads), 0);
    pool.run([&](unsigned tid) {
      std::size_t lo = tid * chunk, hi = std::min(lo + chunk, m);
      for (std::size_t i = lo; i < hi; ++i) {
        ++cursors[static_cast<std::size_t>(src[i]) * threads + tid];
      }
    });
    par::parallel_exclusive_scan(cursors, pool);
    indices_store_.resize(n_ + 1);
    par::parallel_for(0, n_, [&](std::size_t v) { indices_store_[v] = cursors[v * threads]; },
                      par::blocked{}, pool);
    indices_store_[n_] = m;
    pool.run([&](unsigned tid) {
      std::size_t lo = tid * chunk, hi = std::min(lo + chunk, m);
      for (std::size_t i = lo; i < hi; ++i) {
        offset_t slot        = cursors[static_cast<std::size_t>(src[i]) * threads + tid]++;
        targets_store_[slot] = dst[i];
        scatter_attrs(el, i, slot, std::index_sequence_for<Attributes...>{});
      }
    });
  }

public:
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return targets_.size(); }

  [[nodiscard]] std::size_t degree(std::size_t u) const {
    NW_DEBUG_ASSERT(u < n_, "degree: vertex out of range");
    return static_cast<std::size_t>(indices_[u + 1] - indices_[u]);
  }

  [[nodiscard]] std::vector<std::size_t> degrees() const {
    std::vector<std::size_t> d(n_);
    for (std::size_t u = 0; u < n_; ++u) d[u] = degree(u);
    return d;
  }

  [[nodiscard]] inner_range operator[](std::size_t u) const {
    NW_DEBUG_ASSERT(u < n_, "operator[]: vertex out of range");
    offset_t    b = indices_[u], e = indices_[u + 1];
    std::size_t len = static_cast<std::size_t>(e - b);
    if constexpr (sizeof...(Attributes) == 0) {
      return inner_range(targets_.data() + b, len);
    } else {
      auto ptrs = std::apply(
          [&](const auto&... col) { return std::tuple{(col.data() + b)...}; }, attrs_);
      return inner_range(targets_.data() + b, ptrs, len);
    }
  }

  /// Outer iterator: random access over vertices, dereferencing to the
  /// vertex's neighborhood (an inner_range prvalue, like views::iota).
  class const_iterator {
  public:
    using iterator_concept  = std::random_access_iterator_tag;
    using iterator_category = std::random_access_iterator_tag;
    using value_type        = inner_range;
    using difference_type   = std::ptrdiff_t;
    using reference         = inner_range;

    const_iterator() = default;
    const_iterator(const adjacency* g, std::size_t u) : g_(g), u_(u) {}

    inner_range operator*() const { return (*g_)[u_]; }
    inner_range operator[](difference_type k) const { return (*g_)[u_ + k]; }

    const_iterator& operator++() { ++u_; return *this; }
    const_iterator  operator++(int) { auto t = *this; ++u_; return t; }
    const_iterator& operator--() { --u_; return *this; }
    const_iterator  operator--(int) { auto t = *this; --u_; return t; }
    const_iterator& operator+=(difference_type k) { u_ += k; return *this; }
    const_iterator& operator-=(difference_type k) { u_ -= k; return *this; }

    friend const_iterator operator+(const_iterator it, difference_type k) { return it += k; }
    friend const_iterator operator+(difference_type k, const_iterator it) { return it += k; }
    friend const_iterator operator-(const_iterator it, difference_type k) { return it -= k; }
    friend difference_type operator-(const const_iterator& a, const const_iterator& b) {
      return static_cast<difference_type>(a.u_) - static_cast<difference_type>(b.u_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.u_ == b.u_;
    }
    friend auto operator<=>(const const_iterator& a, const const_iterator& b) {
      return a.u_ <=> b.u_;
    }

  private:
    const adjacency* g_ = nullptr;
    std::size_t      u_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, n_}; }

  /// Raw CSR access for kernels that want pointer arithmetic.  These are
  /// views: they alias either the owned vectors or, for snapshot-backed
  /// graphs, external mmap'd memory.
  [[nodiscard]] std::span<const offset_t>    indices() const { return indices_; }
  [[nodiscard]] std::span<const vertex_id_t> targets() const { return targets_; }

private:
  /// Point the read spans at the owned vectors.
  void rebind() {
    external_ = false;
    indices_  = std::span<const offset_t>(indices_store_.data(), indices_store_.size());
    targets_  = std::span<const vertex_id_t>(targets_store_.data(), targets_store_.size());
  }

  /// Reset to the canonical empty CSR *without allocating*, so the noexcept
  /// moves really are noexcept: the indices span aliases a static zero
  /// offset (infinite lifetime) instead of a freshly allocated {0} vector,
  /// preserving the `indices().size() == size() + 1` contract for
  /// moved-from objects at zero cost.  The object behaves like an external
  /// view of that sentinel; copying or assigning into it materializes owned
  /// storage as usual.
  void reset_to_empty() noexcept {
    n_ = 0;
    indices_store_.clear();
    targets_store_.clear();
    external_ = true;
    indices_  = std::span<const offset_t>(&empty_indices_sentinel_, 1);
    targets_  = {};
  }

  /// The one row offset of an empty CSR (`indices() == {0}`).
  static constexpr offset_t empty_indices_sentinel_ = 0;

  template <std::size_t... Is>
  void scatter_attrs([[maybe_unused]] const edge_list<Attributes...>& el,
                     [[maybe_unused]] std::size_t i, [[maybe_unused]] offset_t slot,
                     std::index_sequence<Is...>) {
    ((std::get<Is>(attrs_)[slot] = el.template attribute_column<Is>()[i]), ...);
  }
  void resize_attrs(std::size_t m) {
    std::apply([m](auto&... col) { (col.resize(m), ...); }, attrs_);
  }

  std::size_t                            n_ = 0;
  std::vector<offset_t>                  indices_store_;
  std::vector<vertex_id_t>               targets_store_;
  std::span<const offset_t>              indices_;
  std::span<const vertex_id_t>           targets_;
  bool                                   external_ = false;
  std::tuple<std::vector<Attributes>...> attrs_;
};

// The containers must model the paper's range-of-ranges contract.
static_assert(std::ranges::random_access_range<adjacency<>>);
static_assert(std::ranges::forward_range<std::ranges::range_reference_t<adjacency<>>>);
static_assert(adjacency_list_graph<adjacency<>>);
static_assert(degree_enumerable_graph<adjacency<>>);
static_assert(std::ranges::random_access_range<adjacency<float>>);
static_assert(std::ranges::forward_range<std::ranges::range_reference_t<adjacency<float>>>);

}  // namespace nw::graph
