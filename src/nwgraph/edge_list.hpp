// nwgraph/edge_list.hpp
//
// Struct-of-arrays edge list, the construction format every adjacency
// structure in the framework is built from (mirrors NWGraph's edge_list /
// the paper's biedgelist base_).  Attributes... are per-edge payload
// columns (e.g. float weights); the common case is none.
#pragma once

#include <algorithm>
#include <tuple>
#include <vector>

#include "nwpar/parallel_sort.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

template <class... Attributes>
class edge_list {
public:
  edge_list() = default;

  /// Pre-declare the vertex count (ids must then be < n); if 0, the count
  /// is discovered from the data as max id + 1.
  explicit edge_list(std::size_t n) : declared_vertices_(n) {}

  void reserve(std::size_t n) {
    src_.reserve(n);
    dst_.reserve(n);
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, attrs_);
  }

  void push_back(vertex_id_t u, vertex_id_t v, Attributes... attrs) {
    src_.push_back(u);
    dst_.push_back(v);
    push_attrs(std::index_sequence_for<Attributes...>{}, attrs...);
  }

  [[nodiscard]] std::size_t size() const { return src_.size(); }
  [[nodiscard]] bool        empty() const { return src_.empty(); }

  [[nodiscard]] vertex_id_t source(std::size_t i) const { return src_[i]; }
  [[nodiscard]] vertex_id_t destination(std::size_t i) const { return dst_[i]; }

  template <std::size_t I>
  [[nodiscard]] const auto& attribute(std::size_t i) const {
    return std::get<I>(attrs_)[i];
  }

  /// (source, destination, attributes...) of edge i, by value.
  [[nodiscard]] auto operator[](std::size_t i) const {
    return std::apply(
        [&](const auto&... col) { return std::tuple{src_[i], dst_[i], col[i]...}; }, attrs_);
  }

  /// Number of vertices: declared, or discovered as max id + 1.
  [[nodiscard]] std::size_t num_vertices() const {
    if (declared_vertices_ != 0) return declared_vertices_;
    vertex_id_t mx = 0;
    bool        any = false;
    for (std::size_t i = 0; i < src_.size(); ++i) {
      mx  = std::max({mx, src_[i], dst_[i]});
      any = true;
    }
    return any ? static_cast<std::size_t>(mx) + 1 : 0;
  }

  void set_num_vertices(std::size_t n) { declared_vertices_ = n; }

  /// Append the reverse of every edge (attributes copied), making the list
  /// represent an undirected graph for CSR construction.
  void symmetrize() {
    std::size_t n = size();
    reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      std::apply([&](const auto&... col) { push_back(dst_[i], src_[i], col[i]...); }, attrs_);
    }
  }

  /// Canonicalize: sort lexicographically by (source, destination) and drop
  /// exact duplicate (source, destination) pairs (first attribute wins).
  void sort_and_unique() {
    std::vector<std::size_t> order(size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    par::parallel_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return src_[a] != src_[b] ? src_[a] < src_[b] : dst_[a] < dst_[b];
    });
    edge_list out(declared_vertices_);
    out.reserve(size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      std::size_t i = order[k];
      if (k > 0) {
        std::size_t p = order[k - 1];
        if (src_[p] == src_[i] && dst_[p] == dst_[i]) continue;
      }
      std::apply([&](const auto&... col) { out.push_back(src_[i], dst_[i], col[i]...); }, attrs_);
    }
    *this = std::move(out);
  }

  /// Direct column access for bulk construction (CSR builders).
  [[nodiscard]] const std::vector<vertex_id_t>& sources() const { return src_; }
  [[nodiscard]] const std::vector<vertex_id_t>& destinations() const { return dst_; }
  template <std::size_t I>
  [[nodiscard]] const auto& attribute_column() const {
    return std::get<I>(attrs_);
  }

private:
  template <std::size_t... Is>
  void push_attrs(std::index_sequence<Is...>, const Attributes&... attrs) {
    (std::get<Is>(attrs_).push_back(attrs), ...);
  }

  std::vector<vertex_id_t>               src_;
  std::vector<vertex_id_t>               dst_;
  std::tuple<std::vector<Attributes>...> attrs_;
  std::size_t                            declared_vertices_ = 0;
};

}  // namespace nw::graph
