// nwgraph/edge_list.hpp
//
// Struct-of-arrays edge list, the construction format every adjacency
// structure in the framework is built from (mirrors NWGraph's edge_list /
// the paper's biedgelist base_).  Attributes... are per-edge payload
// columns (e.g. float weights); the common case is none.
#pragma once

#include <algorithm>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "nwpar/parallel_for.hpp"
#include "nwpar/parallel_scan.hpp"
#include "nwpar/parallel_sort.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

template <class... Attributes>
class edge_list {
public:
  /// The element type bulk appends consume: a bare (source, destination)
  /// pair when there are no attribute columns, otherwise a tuple carrying
  /// the payload — exactly what the s-line-graph construction kernels
  /// accumulate in their per-thread buffers.
  using value_type =
      std::conditional_t<sizeof...(Attributes) == 0, std::pair<vertex_id_t, vertex_id_t>,
                         std::tuple<vertex_id_t, vertex_id_t, Attributes...>>;

  edge_list() = default;

  /// Pre-declare the vertex count (ids must then be < n); if 0, the count
  /// is discovered from the data as max id + 1.
  explicit edge_list(std::size_t n) : declared_vertices_(n) {}

  void reserve(std::size_t n) {
    src_.reserve(n);
    dst_.reserve(n);
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, attrs_);
  }

  void push_back(vertex_id_t u, vertex_id_t v, Attributes... attrs) {
    src_.push_back(u);
    dst_.push_back(v);
    push_attrs(std::index_sequence_for<Attributes...>{}, attrs...);
  }

  /// Bulk SoA append: splice a contiguous block of AoS edges into the
  /// struct-of-arrays columns with one resize plus a parallel transform.
  /// Replaces the element-at-a-time `for (auto [a, b] : pairs) push_back`
  /// loops on the s-line-graph materialization tail.
  void append_bulk(std::span<const value_type> items,
                   par::thread_pool& pool = par::thread_pool::default_pool()) {
    const std::size_t old = src_.size();
    resize_columns(old + items.size());
    par::parallel_for(
        0, items.size(), [&](std::size_t i) { scatter_value(old + i, items[i]); },
        par::blocked{}, pool);
  }

  /// Zero-copy-style materialization of per-thread construction buffers:
  /// per-buffer sizes -> parallel exclusive scan -> one parallel pass that
  /// scatters every buffer block straight into the SoA columns.  There is
  /// no intermediate merged vector and no serial per-element loop.  `cap`
  /// decides whether the drained buffers keep their capacity for the next
  /// construction call (bench loops, ensemble, implicit s-BFS).
  static edge_list from_thread_buffers(par::per_thread<std::vector<value_type>>& buffers,
                                       std::size_t        num_vertices,
                                       par::merge_capacity cap = par::merge_capacity::release,
                                       par::thread_pool&   pool = par::thread_pool::default_pool()) {
    edge_list out(num_vertices);
    std::vector<std::size_t> sizes(buffers.size());
    for (std::size_t b = 0; b < buffers.size(); ++b) sizes[b] = buffers.local(b).size();
    std::size_t total  = 0;
    auto        chunks = par::detail::plan_block_copies(sizes, 0, total, pool);
    out.resize_columns(total);
    par::parallel_for(
        0, chunks.size(),
        [&](std::size_t c) {
          const auto& ck  = chunks[c];
          const auto& src = buffers.local(ck.buf);
          for (std::size_t i = 0; i < ck.len; ++i) {
            out.scatter_value(ck.dst_begin + i, src[ck.src_begin + i]);
          }
        },
        par::blocked{}, pool);
    par::detail::reset_buffers(buffers, cap);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return src_.size(); }
  [[nodiscard]] bool        empty() const { return src_.empty(); }

  [[nodiscard]] vertex_id_t source(std::size_t i) const { return src_[i]; }
  [[nodiscard]] vertex_id_t destination(std::size_t i) const { return dst_[i]; }

  template <std::size_t I>
  [[nodiscard]] const auto& attribute(std::size_t i) const {
    return std::get<I>(attrs_)[i];
  }

  /// (source, destination, attributes...) of edge i, by value.
  [[nodiscard]] auto operator[](std::size_t i) const {
    return std::apply(
        [&](const auto&... col) { return std::tuple{src_[i], dst_[i], col[i]...}; }, attrs_);
  }

  /// Number of vertices: declared, or discovered as max id + 1.
  [[nodiscard]] std::size_t num_vertices() const {
    if (declared_vertices_ != 0) return declared_vertices_;
    vertex_id_t mx = 0;
    bool        any = false;
    for (std::size_t i = 0; i < src_.size(); ++i) {
      mx  = std::max({mx, src_[i], dst_[i]});
      any = true;
    }
    return any ? static_cast<std::size_t>(mx) + 1 : 0;
  }

  void set_num_vertices(std::size_t n) { declared_vertices_ = n; }

  /// Append the reverse of every edge (attributes copied), making the list
  /// represent an undirected graph for CSR construction.
  void symmetrize() {
    std::size_t n = size();
    reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      std::apply([&](const auto&... col) { push_back(dst_[i], src_[i], col[i]...); }, attrs_);
    }
  }

  /// Canonicalize: sort lexicographically by (source, destination) and drop
  /// exact duplicate (source, destination) pairs (first attribute wins,
  /// "first" meaning first in the sorted permutation — the historical
  /// semantics).  The output gather is parallel: survivor flags -> parallel
  /// exclusive scan of destination slots -> parallel scatter into the new
  /// columns; no serial per-element loop over the output.
  void sort_and_unique() {
    const std::size_t n = size();
    std::vector<std::size_t> order(n);
    par::parallel_for(0, n, [&](std::size_t i) { order[i] = i; });
    par::parallel_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return src_[a] != src_[b] ? src_[a] < src_[b] : dst_[a] < dst_[b];
    });
    // slot[k] = 1 when order[k] starts a new (source, destination) value;
    // after the scan, slot[k] is the destination index of that survivor.
    auto differs = [&](std::size_t a, std::size_t b) {
      return src_[a] != src_[b] || dst_[a] != dst_[b];
    };
    std::vector<std::size_t> slot(n);
    par::parallel_for(0, n, [&](std::size_t k) {
      slot[k] = (k == 0 || differs(order[k], order[k - 1])) ? 1 : 0;
    });
    const std::size_t kept = par::parallel_exclusive_scan(slot);
    edge_list out(declared_vertices_);
    out.resize_columns(kept);
    par::parallel_for(0, n, [&](std::size_t k) {
      if (k != 0 && !differs(order[k], order[k - 1])) return;  // duplicate: dropped
      std::size_t i = order[k], d = slot[k];
      out.src_[d] = src_[i];
      out.dst_[d] = dst_[i];
      std::apply([&](auto&... ocol) {
        std::apply([&](const auto&... icol) { ((ocol[d] = icol[i]), ...); }, attrs_);
      }, out.attrs_);
    });
    *this = std::move(out);
  }

  /// Direct column access for bulk construction (CSR builders).
  [[nodiscard]] const std::vector<vertex_id_t>& sources() const { return src_; }
  [[nodiscard]] const std::vector<vertex_id_t>& destinations() const { return dst_; }
  template <std::size_t I>
  [[nodiscard]] const auto& attribute_column() const {
    return std::get<I>(attrs_);
  }

private:
  template <std::size_t... Is>
  void push_attrs(std::index_sequence<Is...>, const Attributes&... attrs) {
    (std::get<Is>(attrs_).push_back(attrs), ...);
  }

  void resize_columns(std::size_t n) {
    src_.resize(n);
    dst_.resize(n);
    std::apply([n](auto&... col) { (col.resize(n), ...); }, attrs_);
  }

  /// Write one AoS element into row `k` of the SoA columns.
  void scatter_value(std::size_t k, const value_type& item) {
    if constexpr (sizeof...(Attributes) == 0) {
      src_[k] = item.first;
      dst_[k] = item.second;
    } else {
      src_[k] = std::get<0>(item);
      dst_[k] = std::get<1>(item);
      scatter_value_attrs(k, item, std::index_sequence_for<Attributes...>{});
    }
  }
  template <std::size_t... Is>
  void scatter_value_attrs(std::size_t k, const value_type& item, std::index_sequence<Is...>) {
    ((std::get<Is>(attrs_)[k] = std::get<Is + 2>(item)), ...);
  }

  std::vector<vertex_id_t>               src_;
  std::vector<vertex_id_t>               dst_;
  std::tuple<std::vector<Attributes>...> attrs_;
  std::size_t                            declared_vertices_ = 0;
};

}  // namespace nw::graph
