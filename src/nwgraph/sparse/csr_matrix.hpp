// nwgraph/sparse/csr_matrix.hpp
//
// Rectangular sparse matrices in CSR form — the "rectangular matrix
// operation support" of paper Sec. III-B.1a: a hypergraph's incidence
// matrix B is nE x nV with independent row/column index spaces, and the
// algebraic route to the lower-order approximations runs through products
// of B with its transpose:
//
//   B · Bᵗ  (nE x nE)  off-diagonal entry (i, j) = |e_i ∩ e_j|
//                       -> threshold at s  =>  the s-line graph
//   Bᵗ · B  (nV x nV)  off-diagonal entry (u, v) = #hyperedges containing both
//                       -> threshold at 1  =>  the clique expansion
//
// Provided operations: construction from triplets or a bipartite edge
// list, transpose, SpMV, and a parallel row-wise Gustavson SpGEMM whose
// per-row accumulator is the same epoch-clearing hashmap the counting
// s-line algorithms use.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "nwhy/biedgelist.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"

namespace nw::sparse {

template <class T = std::uint32_t>
class csr_matrix {
public:
  struct triplet {
    vertex_id_t row;
    vertex_id_t col;
    T           value;
  };

  csr_matrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  /// Build from (row, col, value) triplets; duplicates are summed.
  csr_matrix(std::size_t rows, std::size_t cols, std::vector<triplet> entries)
      : rows_(rows), cols_(cols) {
    for (const auto& e : entries) {
      NW_ASSERT(e.row < rows_ && e.col < cols_, "triplet out of matrix bounds");
    }
    // Counting sort rows, then in-row column sort + duplicate summing.
    std::vector<offset_t> counts(rows_ + 1, 0);
    for (const auto& e : entries) ++counts[e.row + 1];
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    std::vector<triplet> sorted(entries.size());
    {
      auto cursor = counts;
      for (const auto& e : entries) sorted[cursor[e.row]++] = e;
    }
    row_ptr_.assign(rows_ + 1, 0);
    col_idx_.reserve(sorted.size());
    values_.reserve(sorted.size());
    for (std::size_t r = 0; r < rows_; ++r) {
      auto begin = sorted.begin() + static_cast<std::ptrdiff_t>(counts[r]);
      auto end   = sorted.begin() + static_cast<std::ptrdiff_t>(counts[r + 1]);
      std::sort(begin, end, [](const triplet& a, const triplet& b) { return a.col < b.col; });
      for (auto it = begin; it != end; ++it) {
        if (!col_idx_.empty() && row_ptr_[r] != col_idx_.size() &&
            col_idx_.back() == it->col) {
          values_.back() += it->value;  // duplicate within the row: sum
        } else {
          col_idx_.push_back(it->col);
          values_.push_back(it->value);
        }
      }
      row_ptr_[r + 1] = col_idx_.size();
    }
  }

  /// The incidence matrix of a hypergraph: rows = hyperedges, columns =
  /// hypernodes, all stored entries 1.
  static csr_matrix from_incidence(const nw::hypergraph::biedgelist<>& el) {
    std::vector<triplet> entries;
    entries.reserve(el.size());
    for (std::size_t i = 0; i < el.size(); ++i) {
      auto [e, v] = el[i];
      entries.push_back({e, v, T{1}});
    }
    return csr_matrix(el.num_vertices(0), el.num_vertices(1), std::move(entries));
  }

  [[nodiscard]] std::size_t num_rows() const { return rows_; }
  [[nodiscard]] std::size_t num_cols() const { return cols_; }
  [[nodiscard]] std::size_t num_nonzeros() const { return col_idx_.size(); }

  /// Entries of row r as parallel spans.
  [[nodiscard]] std::span<const vertex_id_t> row_columns(std::size_t r) const {
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }
  [[nodiscard]] std::span<const T> row_values(std::size_t r) const {
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Value at (r, c); 0 if not stored.  O(log nnz(row)).
  [[nodiscard]] T at(std::size_t r, std::size_t c) const {
    auto cols = row_columns(r);
    auto it   = std::lower_bound(cols.begin(), cols.end(), static_cast<vertex_id_t>(c));
    if (it == cols.end() || *it != c) return T{};
    return row_values(r)[static_cast<std::size_t>(it - cols.begin())];
  }

  /// Transpose (cols x rows), by stable counting sort over columns.
  [[nodiscard]] csr_matrix transpose() const {
    csr_matrix t;
    t.rows_ = cols_;
    t.cols_ = rows_;
    t.row_ptr_.assign(cols_ + 1, 0);
    for (auto c : col_idx_) ++t.row_ptr_[c + 1];
    std::partial_sum(t.row_ptr_.begin(), t.row_ptr_.end(), t.row_ptr_.begin());
    t.col_idx_.resize(col_idx_.size());
    t.values_.resize(values_.size());
    auto cursor = t.row_ptr_;
    for (std::size_t r = 0; r < rows_; ++r) {
      for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        offset_t slot     = cursor[col_idx_[k]]++;
        t.col_idx_[slot]  = static_cast<vertex_id_t>(r);
        t.values_[slot]   = values_[k];
      }
    }
    return t;
  }

  /// y = A x (parallel over rows).
  template <class U>
  [[nodiscard]] std::vector<U> spmv(std::span<const U> x) const {
    NW_ASSERT(x.size() == cols_, "spmv dimension mismatch");
    std::vector<U> y(rows_, U{});
    par::parallel_for(0, rows_, [&](std::size_t r) {
      U acc{};
      for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += static_cast<U>(values_[k]) * x[col_idx_[k]];
      }
      y[r] = acc;
    });
    return y;
  }

  /// C = A · B, parallel row-wise Gustavson with hashmap accumulation.
  [[nodiscard]] csr_matrix multiply(const csr_matrix& other) const {
    NW_ASSERT(cols_ == other.rows_, "spgemm dimension mismatch");
    csr_matrix c;
    c.rows_ = rows_;
    c.cols_ = other.cols_;

    // Accumulate each result row in a private hashmap, buffer rows
    // per-thread, then stitch the CSR together in row order.
    struct row_entries {
      std::vector<vertex_id_t> cols;
      std::vector<T>           vals;
    };
    std::vector<row_entries>                       result_rows(rows_);
    par::per_thread<counting_hashmap<vertex_id_t, T>> maps;
    par::parallel_for(0, rows_, [&](unsigned tid, std::size_t r) {
      auto& acc = maps.local(tid);
      acc.clear();
      for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        vertex_id_t inner = col_idx_[k];
        T           a     = values_[k];
        auto        bc    = other.row_columns(inner);
        auto        bv    = other.row_values(inner);
        for (std::size_t j = 0; j < bc.size(); ++j) acc.increment(bc[j], a * bv[j]);
      }
      auto& out = result_rows[r];
      out.cols.reserve(acc.size());
      acc.for_each([&](vertex_id_t col, T val) {
        out.cols.push_back(col);
        out.vals.push_back(val);
      });
      // Hashmap iteration order is arbitrary: restore sorted columns.
      std::vector<std::size_t> order(out.cols.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a2, std::size_t b2) { return out.cols[a2] < out.cols[b2]; });
      row_entries sorted;
      sorted.cols.reserve(order.size());
      sorted.vals.reserve(order.size());
      for (auto i : order) {
        sorted.cols.push_back(out.cols[i]);
        sorted.vals.push_back(out.vals[i]);
      }
      out = std::move(sorted);
    });

    c.row_ptr_.assign(rows_ + 1, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
      c.row_ptr_[r + 1] = c.row_ptr_[r] + result_rows[r].cols.size();
    }
    c.col_idx_.resize(c.row_ptr_[rows_]);
    c.values_.resize(c.row_ptr_[rows_]);
    par::parallel_for(0, rows_, [&](std::size_t r) {
      std::copy(result_rows[r].cols.begin(), result_rows[r].cols.end(),
                c.col_idx_.begin() + static_cast<std::ptrdiff_t>(c.row_ptr_[r]));
      std::copy(result_rows[r].vals.begin(), result_rows[r].vals.end(),
                c.values_.begin() + static_cast<std::ptrdiff_t>(c.row_ptr_[r]));
    });
    return c;
  }

private:
  std::size_t              rows_, cols_;
  std::vector<offset_t>    row_ptr_;
  std::vector<vertex_id_t> col_idx_;
  std::vector<T>           values_;
};

}  // namespace nw::sparse
