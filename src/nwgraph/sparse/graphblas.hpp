// nwgraph/sparse/graphblas.hpp
//
// GraphBLAS-flavored exact algorithms over the adjoin adjacency matrix:
// level-synchronous BFS as masked boolean SpMV (y = A x ∧ ¬visited) and
// connected components as label-minimizing SpMV iteration.  These are the
// "any graph algorithm runs on the adjoin representation" claim expressed
// in the matrix abstraction instead of the adjacency-list one — useful as
// an independent oracle and as the bridge to GraphBLAS-style backends.
//
// Each step sweeps all stored entries (no frontier sparsity), so these are
// asymptotically lazier than the adjacency-list engines; the tests use
// them for cross-validation, not speed.
#pragma once

#include <atomic>
#include <vector>

#include "nwgraph/sparse/csr_matrix.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::sparse {

/// BFS hop distances from `source` on a square (symmetric) matrix, by
/// repeated masked boolean SpMV.  Unreached = null_vertex.
template <class T>
std::vector<vertex_id_t> bfs_levels_spmv(const csr_matrix<T>& a, vertex_id_t source) {
  NW_ASSERT(a.num_rows() == a.num_cols(), "bfs_levels_spmv expects a square matrix");
  const std::size_t        n = a.num_rows();
  std::vector<vertex_id_t> level(n, null_vertex<>);
  if (n == 0) return level;
  std::vector<char> x(n, 0), y(n, 0);
  x[source]     = 1;
  level[source] = 0;
  for (vertex_id_t depth = 1;; ++depth) {
    // y = (A x) ∧ ¬visited, boolean semiring.
    std::atomic<bool> any{false};
    par::parallel_for(0, n, [&](std::size_t r) {
      if (level[r] != null_vertex<>) {
        y[r] = 0;
        return;
      }
      char hit = 0;
      for (auto c : a.row_columns(r)) {
        if (x[c]) {
          hit = 1;
          break;
        }
      }
      y[r] = hit;
      if (hit) {
        level[r] = depth;
        any.store(true, std::memory_order_relaxed);
      }
    });
    if (!any.load()) break;
    x.swap(y);
  }
  return level;
}

/// Connected components by min-label SpMV iteration (min-plus-free: each
/// sweep takes the minimum label over the closed neighborhood) on a square
/// symmetric matrix.
template <class T>
std::vector<vertex_id_t> cc_spmv(const csr_matrix<T>& a) {
  NW_ASSERT(a.num_rows() == a.num_cols(), "cc_spmv expects a square matrix");
  const std::size_t        n = a.num_rows();
  std::vector<vertex_id_t> label(n), next(n);
  for (std::size_t v = 0; v < n; ++v) label[v] = static_cast<vertex_id_t>(v);
  for (;;) {
    std::atomic<bool> changed{false};
    par::parallel_for(0, n, [&](std::size_t r) {
      vertex_id_t best = label[r];
      for (auto c : a.row_columns(r)) best = std::min(best, label[c]);
      next[r] = best;
      if (best != label[r]) changed.store(true, std::memory_order_relaxed);
    });
    label.swap(next);
    if (!changed.load()) break;
  }
  return label;
}

/// The adjoin adjacency matrix A = [[0, Bᵗ], [B, 0]] assembled from an
/// incidence matrix (paper Fig. 4 as an actual sparse matrix).
template <class T>
csr_matrix<T> adjoin_matrix(const csr_matrix<T>& b) {
  const std::size_t              ne = b.num_rows(), nv = b.num_cols();
  std::vector<typename csr_matrix<T>::triplet> entries;
  entries.reserve(2 * b.num_nonzeros());
  for (std::size_t e = 0; e < ne; ++e) {
    auto cols = b.row_columns(e);
    auto vals = b.row_values(e);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      auto shifted = static_cast<vertex_id_t>(ne + cols[k]);
      entries.push_back({static_cast<vertex_id_t>(e), shifted, vals[k]});
      entries.push_back({shifted, static_cast<vertex_id_t>(e), vals[k]});
    }
  }
  return csr_matrix<T>(ne + nv, ne + nv, std::move(entries));
}

}  // namespace nw::sparse
