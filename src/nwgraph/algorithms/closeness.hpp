// nwgraph/algorithms/closeness.hpp
//
// BFS-based distance aggregates on unweighted graphs, parallel over
// sources: closeness centrality, harmonic closeness centrality, and
// eccentricity.  These back the s_closeness_centrality /
// s_harmonic_closeness_centrality / s_eccentricity metrics of Listing 5.
//
// Conventions (matching HyperNetX / networkx):
//  * closeness(v)  = (r - 1) / sum of distances to the r vertices reachable
//                    from v (0 if v is isolated); the "Wasserman & Faust"
//                    component-local definition.
//  * harmonic(v)   = sum over u != v of 1 / d(v, u), unreachable terms 0.
//  * eccentricity(v) = max distance to any reachable vertex.
#pragma once

#include <vector>

#include "nwgraph/algorithms/bfs.hpp"
#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

namespace detail {

/// Serial BFS distances into a caller-provided buffer (reused across sources).
template <adjacency_list_graph Graph>
void bfs_distances_into(const Graph& g, vertex_id_t s, std::vector<vertex_id_t>& dist,
                        std::vector<vertex_id_t>& queue) {
  dist.assign(g.size(), null_vertex<>);
  queue.clear();
  dist[s] = 0;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    vertex_id_t u = queue[head];
    for (auto&& e : g[u]) {
      vertex_id_t v = target(e);
      if (dist[v] == null_vertex<>) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
}

}  // namespace detail

/// Closeness centrality of every vertex (component-local normalization).
template <adjacency_list_graph Graph>
std::vector<double> closeness_centrality(const Graph& g) {
  const std::size_t   n = g.size();
  std::vector<double> result(n, 0.0);
  struct ws {
    std::vector<vertex_id_t> dist, queue;
  };
  par::per_thread<ws> scratch;
  par::parallel_for(0, n, [&](unsigned tid, std::size_t s) {
    auto& w = scratch.local(tid);
    detail::bfs_distances_into(g, static_cast<vertex_id_t>(s), w.dist, w.queue);
    double      total     = 0.0;
    std::size_t reachable = 0;
    for (auto d : w.dist) {
      if (d != null_vertex<> && d != 0) {
        total += static_cast<double>(d);
        ++reachable;
      }
    }
    result[s] = total > 0 ? static_cast<double>(reachable) / total : 0.0;
  });
  return result;
}

/// Harmonic closeness centrality of every vertex.
template <adjacency_list_graph Graph>
std::vector<double> harmonic_closeness_centrality(const Graph& g) {
  const std::size_t   n = g.size();
  std::vector<double> result(n, 0.0);
  struct ws {
    std::vector<vertex_id_t> dist, queue;
  };
  par::per_thread<ws> scratch;
  par::parallel_for(0, n, [&](unsigned tid, std::size_t s) {
    auto& w = scratch.local(tid);
    detail::bfs_distances_into(g, static_cast<vertex_id_t>(s), w.dist, w.queue);
    double total = 0.0;
    for (auto d : w.dist) {
      if (d != null_vertex<> && d != 0) total += 1.0 / static_cast<double>(d);
    }
    result[s] = total;
  });
  return result;
}

/// Eccentricity of every vertex (max hop distance within its component).
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> eccentricity(const Graph& g) {
  const std::size_t        n = g.size();
  std::vector<vertex_id_t> result(n, 0);
  struct ws {
    std::vector<vertex_id_t> dist, queue;
  };
  par::per_thread<ws> scratch;
  par::parallel_for(0, n, [&](unsigned tid, std::size_t s) {
    auto& w = scratch.local(tid);
    detail::bfs_distances_into(g, static_cast<vertex_id_t>(s), w.dist, w.queue);
    vertex_id_t ecc = 0;
    for (auto d : w.dist) {
      if (d != null_vertex<>) ecc = std::max(ecc, d);
    }
    result[s] = ecc;
  });
  return result;
}

}  // namespace nw::graph
