// nwgraph/algorithms/betweenness.hpp
//
// Brandes betweenness centrality on unweighted graphs.  The per-source
// dependency accumulation is the textbook serial kernel; exact_bc
// parallelizes *across sources* with per-thread score buffers (the shape of
// the parallel Brandes used for the s-betweenness-centrality metric), and
// approx_bc samples a subset of sources.
#pragma once

#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::graph {

namespace detail {

/// Accumulate the dependency contributions of one source into `scores`.
template <adjacency_list_graph Graph>
void brandes_accumulate(const Graph& g, vertex_id_t s, std::vector<double>& scores,
                        std::vector<vertex_id_t>& order, std::vector<std::int64_t>& dist,
                        std::vector<double>& sigma, std::vector<double>& delta) {
  const std::size_t n = g.size();
  order.clear();
  dist.assign(n, -1);
  sigma.assign(n, 0.0);
  delta.assign(n, 0.0);

  dist[s]  = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  // order doubles as the BFS queue: it ends holding vertices in
  // non-decreasing distance, which reversed is the dependency order.
  for (std::size_t head = 0; head < order.size(); ++head) {
    vertex_id_t u = order[head];
    for (auto&& e : g[u]) {
      vertex_id_t v = target(e);
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }
  // Accumulation: walk vertices farthest-first; each vertex w collects
  // dependency from its shortest-path successors (neighbors one level down).
  for (std::size_t k = order.size(); k-- > 0;) {
    vertex_id_t w = order[k];
    for (auto&& e : g[w]) {
      vertex_id_t v = target(e);
      if (dist[v] == dist[w] + 1 && sigma[v] > 0) {
        delta[w] += sigma[w] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (w != s) scores[w] += delta[w];
  }
}

}  // namespace detail

/// Exact betweenness centrality, parallel over sources.  For undirected
/// graphs each pair is counted twice, so scores are halved; `normalized`
/// additionally divides by (n-1)(n-2)/2.
template <adjacency_list_graph Graph>
std::vector<double> betweenness_centrality(const Graph& g, bool normalized = true) {
  const std::size_t               n = g.size();
  par::per_thread<std::vector<double>> partial;
  partial.for_each([n](std::vector<double>& v) { v.assign(n, 0.0); });

  struct workspace {
    std::vector<vertex_id_t>  order;
    std::vector<std::int64_t> dist;
    std::vector<double>       sigma;
    std::vector<double>       delta;
  };
  par::per_thread<workspace> scratch;

  par::parallel_for(0, n, [&](unsigned tid, std::size_t s) {
    auto& ws = scratch.local(tid);
    detail::brandes_accumulate(g, static_cast<vertex_id_t>(s), partial.local(tid), ws.order,
                               ws.dist, ws.sigma, ws.delta);
  });

  std::vector<double> scores(n, 0.0);
  partial.for_each([&](const std::vector<double>& p) {
    for (std::size_t v = 0; v < n; ++v) scores[v] += p[v];
  });
  for (auto& x : scores) x /= 2.0;  // undirected double-count
  if (normalized && n > 2) {
    double scale = 2.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
    for (auto& x : scores) x *= scale;
  }
  return scores;
}

/// Sampled (approximate) betweenness: accumulate from `num_samples` random
/// sources and scale by n / num_samples.
template <adjacency_list_graph Graph>
std::vector<double> betweenness_centrality_approx(const Graph& g, std::size_t num_samples,
                                                  std::uint64_t seed = 42) {
  const std::size_t n = g.size();
  if (n == 0) return {};
  num_samples = std::min(num_samples, n);
  xoshiro256ss             rng(seed);
  std::vector<vertex_id_t> sources(num_samples);
  for (auto& s : sources) s = static_cast<vertex_id_t>(rng.bounded(n));

  par::per_thread<std::vector<double>> partial;
  partial.for_each([n](std::vector<double>& v) { v.assign(n, 0.0); });
  struct workspace {
    std::vector<vertex_id_t>  order;
    std::vector<std::int64_t> dist;
    std::vector<double>       sigma;
    std::vector<double>       delta;
  };
  par::per_thread<workspace> scratch;
  par::parallel_for(0, sources.size(), [&](unsigned tid, std::size_t i) {
    auto& ws = scratch.local(tid);
    detail::brandes_accumulate(g, sources[i], partial.local(tid), ws.order, ws.dist, ws.sigma,
                               ws.delta);
  });
  std::vector<double> scores(n, 0.0);
  partial.for_each([&](const std::vector<double>& p) {
    for (std::size_t v = 0; v < n; ++v) scores[v] += p[v];
  });
  double scale = static_cast<double>(n) / static_cast<double>(num_samples) / 2.0;
  for (auto& x : scores) x *= scale;
  return scores;
}

}  // namespace nw::graph
