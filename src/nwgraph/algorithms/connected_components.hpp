// nwgraph/algorithms/connected_components.hpp
//
// Parallel connected-components algorithms on undirected CSR graphs:
//
//   * label propagation  — min-label flooding until a fixed point
//                          (Orzan / Pregel-style; the HygraCC comparator and
//                          one of the AdjoinCC engines)
//   * Shiloach–Vishkin   — classic hook-and-shortcut PRAM algorithm
//   * Afforest           — Sutton et al.: link a few neighbors per vertex,
//                          sample to find the largest intermediate component,
//                          then finish everything else, skipping the giant
//                          component's edges (the main AdjoinCC engine)
//
// All return a component-label array where two vertices share a label iff
// they are connected.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::graph {

/// Min-label propagation.  Each round, every vertex adopts the minimum label
/// in its closed neighborhood; rounds repeat until no label changes.
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> cc_label_propagation(const Graph& g) {
  std::vector<vertex_id_t> labels(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) labels[v] = static_cast<vertex_id_t>(v);

  bool changed = true;
  while (changed) {
    changed = par::parallel_reduce(
        0, g.size(), false,
        [&](bool acc, std::size_t u) {
          vertex_id_t lu = atomic_load(labels[u]);
          for (auto&& e : g[u]) {
            vertex_id_t v  = target(e);
            vertex_id_t lv = atomic_load(labels[v]);
            if (lv < lu) {
              write_min(labels[u], lv);
              lu  = lv;
              acc = true;
            } else if (lu < lv) {
              // Push our smaller label to the neighbor as well; this halves
              // the number of rounds on path-like structures.
              if (write_min(labels[v], lu)) acc = true;
            }
          }
          return acc;
        },
        [](bool a, bool b) { return a || b; });
  }
  return labels;
}

namespace detail {

/// Pointer-jumping find with path compression (benign races: labels only
/// ever decrease toward the root).
inline vertex_id_t find_root(std::vector<vertex_id_t>& comp, vertex_id_t v) {
  vertex_id_t root = v;
  while (atomic_load(comp[root]) != root) root = atomic_load(comp[root]);
  // Compress the path we walked.
  while (v != root) {
    vertex_id_t next = atomic_load(comp[v]);
    atomic_store(comp[v], root);
    v = next;
  }
  return root;
}

/// Union by minimum root id, lock-free (Afforest's "link" operation).
inline void link_roots(std::vector<vertex_id_t>& comp, vertex_id_t u, vertex_id_t v) {
  vertex_id_t ru = find_root(comp, u);
  vertex_id_t rv = find_root(comp, v);
  while (ru != rv) {
    if (ru > rv) std::swap(ru, rv);
    // Try to hang the larger root under the smaller one.
    if (compare_and_swap(comp[rv], rv, ru)) return;
    rv = find_root(comp, rv);
    ru = find_root(comp, ru);
  }
}

/// Flatten so every vertex points directly at its root.
inline void compress_all(std::vector<vertex_id_t>& comp) {
  par::parallel_for(0, comp.size(), [&](std::size_t v) {
    while (comp[v] != comp[comp[v]]) comp[v] = comp[comp[v]];
  });
}

}  // namespace detail

/// Shiloach–Vishkin style hook-and-shortcut over all edges.
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> cc_shiloach_vishkin(const Graph& g) {
  std::vector<vertex_id_t> comp(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) comp[v] = static_cast<vertex_id_t>(v);
  par::parallel_for(0, g.size(), [&](std::size_t u) {
    for (auto&& e : g[u]) {
      detail::link_roots(comp, static_cast<vertex_id_t>(u), target(e));
    }
  });
  detail::compress_all(comp);
  return comp;
}

/// Afforest (Sutton, Ben-Nun, Barak 2018).  `neighbor_rounds` controls how
/// many leading neighbors each vertex links in the cheap first phase.
template <degree_enumerable_graph Graph>
std::vector<vertex_id_t> cc_afforest(const Graph& g, std::size_t neighbor_rounds = 2) {
  std::vector<vertex_id_t> comp(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) comp[v] = static_cast<vertex_id_t>(v);
  if (g.size() == 0) return comp;

  // Phase 1: subgraph sampling — link only the first `neighbor_rounds`
  // neighbors of every vertex.  This already coalesces the giant component.
  for (std::size_t round = 0; round < neighbor_rounds; ++round) {
    par::parallel_for(0, g.size(), [&](std::size_t u) {
      std::size_t skip = round;
      for (auto&& e : g[u]) {
        if (skip-- == 0) {
          detail::link_roots(comp, static_cast<vertex_id_t>(u), target(e));
          break;
        }
      }
    });
  }
  detail::compress_all(comp);

  // Identify the most frequent intermediate component by sampling.
  vertex_id_t giant = [&] {
    xoshiro256ss                                 rng(0xAFF03357u);
    std::unordered_map<vertex_id_t, std::size_t> freq;
    const std::size_t samples = std::min<std::size_t>(1024, g.size());
    for (std::size_t i = 0; i < samples; ++i) {
      freq[comp[rng.bounded(g.size())]]++;
    }
    vertex_id_t best  = comp[0];
    std::size_t count = 0;
    for (auto& [label, c] : freq) {
      if (c > count) {
        count = c;
        best  = label;
      }
    }
    return best;
  }();

  // Phase 2: finish every vertex not already in the giant component,
  // linking its remaining neighbors.
  par::parallel_for(0, g.size(), [&](std::size_t u) {
    if (detail::find_root(comp, static_cast<vertex_id_t>(u)) == giant) return;
    std::size_t skip = neighbor_rounds;
    for (auto&& e : g[u]) {
      if (skip > 0) {
        --skip;
        continue;
      }
      detail::link_roots(comp, static_cast<vertex_id_t>(u), target(e));
    }
  });
  detail::compress_all(comp);
  return comp;
}

/// Number of distinct component labels.
inline std::size_t count_components(const std::vector<vertex_id_t>& labels) {
  std::vector<vertex_id_t> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  return static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

/// Size of the largest component.
inline std::size_t largest_component_size(const std::vector<vertex_id_t>& labels) {
  std::unordered_map<vertex_id_t, std::size_t> sizes;
  for (auto l : labels) sizes[l]++;
  std::size_t best = 0;
  for (auto& [l, s] : sizes) best = std::max(best, s);
  return best;
}

}  // namespace nw::graph
