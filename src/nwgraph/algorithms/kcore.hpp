// nwgraph/algorithms/kcore.hpp
//
// k-core decomposition by iterative peeling (Matula–Beck bucket ordering,
// serial peel with parallel degree initialization).  Exposed on s-line
// graphs as the s-core metric.
#pragma once

#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// Core number of every vertex: the largest k such that the vertex belongs
/// to a subgraph where every vertex has degree >= k.
template <degree_enumerable_graph Graph>
std::vector<std::size_t> kcore_decomposition(const Graph& g) {
  const std::size_t        n = g.size();
  std::vector<std::size_t> degree(n);
  std::size_t              max_degree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v]  = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by current degree (Matula–Beck).
  std::vector<std::size_t>  bucket_start(max_degree + 2, 0);
  std::vector<vertex_id_t>  order(n);
  std::vector<std::size_t>  position(n);
  for (std::size_t v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) bucket_start[d] += bucket_start[d - 1];
  {
    std::vector<std::size_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      position[v]        = cursor[degree[v]]++;
      order[position[v]] = static_cast<vertex_id_t>(v);
    }
  }

  std::vector<std::size_t> core(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    vertex_id_t v = order[i];
    core[v]       = degree[v];
    for (auto&& e : g[v]) {
      vertex_id_t u = target(e);
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap it with the first element of its
        // bucket, then shrink the bucket boundary.
        std::size_t du        = degree[u];
        std::size_t pu        = position[u];
        std::size_t pw        = bucket_start[du];
        vertex_id_t w         = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bucket_start[du];
        --degree[u];
      }
    }
  }
  return core;
}

}  // namespace nw::graph
