// nwgraph/algorithms/bfs.hpp
//
// Parallel breadth-first search on CSR graphs:
//   * top-down   — frontier expands via outgoing edges; parents claimed by CAS
//   * bottom-up  — every unvisited vertex scans its neighbors for a frontier
//                  member (Beamer et al.'s idea); wins on huge frontiers
//   * direction-optimizing — switches between the two using the standard
//                  alpha/beta heuristics (the AdjoinBFS engine of Sec. III-C.2)
//
// All variants return the parent array; parents[source] == source and
// unreached vertices hold null_vertex.
#pragma once

#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwobs/counters.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// One top-down step: expand `frontier` into `next`, claiming parents.
/// Returns the number of edges examined (for the direction heuristic).
template <adjacency_list_graph Graph>
std::size_t bfs_top_down_step(const Graph& g, const std::vector<vertex_id_t>& frontier,
                              std::vector<vertex_id_t>& next, std::vector<vertex_id_t>& parents) {
  par::per_thread<std::vector<vertex_id_t>> next_local;
  par::per_thread<std::size_t>              scanned;
  par::parallel_for(0, frontier.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u = frontier[i];
    for (auto&& e : g[u]) {
      vertex_id_t v = target(e);
      ++scanned.local(tid);
      if (atomic_load(parents[v]) == null_vertex<> &&
          compare_and_swap(parents[v], null_vertex<>, u)) {
        next_local.local(tid).push_back(v);
      }
    }
  });
  next = par::merge_thread_vectors(next_local);
  std::size_t total = 0;
  scanned.for_each([&](std::size_t s) { total += s; });
  return total;
}

/// One bottom-up step: every unvisited vertex looks for any neighbor in the
/// current frontier bitmap.  Returns the number of vertices added.
template <adjacency_list_graph Graph>
std::size_t bfs_bottom_up_step(const Graph& g, const bitmap& frontier, bitmap& next,
                               std::vector<vertex_id_t>& parents) {
  next.clear();
  par::per_thread<std::size_t> added;
  par::parallel_for(0, g.size(), [&](unsigned tid, std::size_t v) {
    if (parents[v] != null_vertex<>) return;
    for (auto&& e : g[v]) {
      vertex_id_t u = target(e);
      if (frontier.get(u)) {
        parents[v] = u;
        next.set_atomic(v);
        ++added.local(tid);
        break;
      }
    }
  });
  std::size_t total = 0;
  added.for_each([&](std::size_t a) { total += a; });
  return total;
}

/// Pure top-down BFS (the HygraBFS-style engine).
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_top_down(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;
  std::vector<vertex_id_t> frontier{source}, next;
  while (!frontier.empty()) {
    bfs_top_down_step(g, frontier, next, parents);
    frontier.swap(next);
  }
  return parents;
}

/// Pure bottom-up BFS (every level sweeps all vertices).
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_bottom_up(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;
  bitmap frontier(g.size()), next(g.size());
  frontier.set(source);
  while (bfs_bottom_up_step(g, frontier, next, parents) > 0) {
    frontier.swap(next);
  }
  return parents;
}

/// Direction-optimizing BFS (Beamer et al.): start top-down, switch to
/// bottom-up when the frontier's edge work exceeds 1/alpha of the remaining
/// edges, and back when the frontier shrinks below |V|/beta.
template <degree_enumerable_graph Graph>
std::vector<vertex_id_t> bfs_direction_optimizing(const Graph& g, vertex_id_t source,
                                                  std::size_t alpha = 15, std::size_t beta = 18) {
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;

  std::vector<vertex_id_t> frontier{source}, next;
  bitmap                   front_bm(g.size()), next_bm(g.size());
  std::size_t              edges_remaining = g.num_edges();
  bool                     bottom_up       = false;
  std::size_t              frontier_size   = 1;

  while (frontier_size > 0) {
    NWOBS_COUNT("graph_bfs.levels", 0, 1);
    NWOBS_COUNT("graph_bfs.frontier_total", 0, frontier_size);
    NWOBS_GAUGE_MAX("graph_bfs.frontier_peak", frontier_size);
    if (!bottom_up) {
      // Estimate the frontier's outgoing work to decide on a switch.
      std::size_t frontier_edges = 0;
      for (auto u : frontier) frontier_edges += g.degree(u);
      if (frontier_edges * alpha > edges_remaining) {
        front_bm.clear();
        for (auto u : frontier) front_bm.set(u);
        bottom_up = true;
        NWOBS_COUNT("graph_bfs.direction_switches", 0, 1);
      } else {
        NWOBS_COUNT("graph_bfs.steps_top_down", 0, 1);
        std::size_t scanned = bfs_top_down_step(g, frontier, next, parents);
        NWOBS_COUNT("graph_bfs.edges_relaxed", 0, scanned);
        edges_remaining -= std::min(edges_remaining, scanned);
        frontier.swap(next);
        frontier_size = frontier.size();
        continue;
      }
    }
    NWOBS_COUNT("graph_bfs.steps_bottom_up", 0, 1);
    std::size_t added = bfs_bottom_up_step(g, front_bm, next_bm, parents);
    front_bm.swap(next_bm);
    frontier_size = added;
    if (frontier_size > 0 && frontier_size < g.size() / beta) {
      // Shrinking frontier: convert the bitmap back to a sparse list.
      frontier.clear();
      for (std::size_t v = 0; v < g.size(); ++v) {
        if (front_bm.get(v)) frontier.push_back(static_cast<vertex_id_t>(v));
      }
      bottom_up = false;
      NWOBS_COUNT("graph_bfs.direction_switches", 0, 1);
    }
  }
  return parents;
}

/// Hop distances from `source` derived by a level-synchronous sweep; used by
/// the s-distance / s-eccentricity metrics.  Unreachable = null_vertex.
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_distances(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> dist(g.size(), null_vertex<>);
  if (g.size() == 0) return dist;
  dist[source] = 0;
  std::vector<vertex_id_t> frontier{source}, next;
  vertex_id_t              level = 0;
  // Hoisted out of the level loop; the keep-capacity merge recycles the
  // per-thread frontier buffers across levels.
  par::per_thread<std::vector<vertex_id_t>> next_local;
  while (!frontier.empty()) {
    ++level;
    par::parallel_for(0, frontier.size(), [&](unsigned tid, std::size_t i) {
      for (auto&& e : g[frontier[i]]) {
        vertex_id_t v = target(e);
        if (atomic_load(dist[v]) == null_vertex<> &&
            compare_and_swap(dist[v], null_vertex<>, level)) {
          next_local.local(tid).push_back(v);
        }
      }
    });
    next = par::merge_thread_vectors(next_local, par::merge_capacity::keep);
    frontier.swap(next);
  }
  return dist;
}

}  // namespace nw::graph
