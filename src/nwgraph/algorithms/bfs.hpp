// nwgraph/algorithms/bfs.hpp
//
// Parallel breadth-first search on CSR graphs:
//   * top-down   — frontier expands via outgoing edges; parents claimed by CAS
//   * bottom-up  — every unvisited vertex scans its neighbors for a frontier
//                  member (Beamer et al.'s idea); wins on huge frontiers
//   * direction-optimizing — switches between the two using the standard
//                  alpha/beta heuristics (the AdjoinBFS engine of Sec. III-C.2)
//
// All engines sit on the par::frontier substrate (nwpar/frontier.hpp):
// hybrid sparse/dense frontiers with parallel conversions, keep-capacity
// buffer reuse across levels, and the fused scout count — top-down steps
// accumulate the next frontier's degree sum per thread while emitting it,
// so the alpha switch test never runs a separate serial degree pass.
//
// All variants return the parent array; parents[source] == source and
// unreached vertices hold null_vertex.
#pragma once

#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwobs/counters.hpp"
#include "nwpar/frontier.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// What one BFS step reports back to the direction-optimizing loop.
struct bfs_step_stats {
  std::size_t added   = 0;  ///< vertices claimed into the next frontier
  std::size_t scanned = 0;  ///< edges examined (edges_remaining bookkeeping)
  std::size_t scout   = 0;  ///< fused degree sum of the next frontier
};

/// One top-down step: expand `front` (sparse) into `next` (sparse), claiming
/// parents via CAS.  When the graph enumerates degrees, the next frontier's
/// degree sum is fused into the emission (scout count).
template <adjacency_list_graph Graph>
bfs_step_stats bfs_top_down_step(const Graph& g, par::frontier& front, par::frontier& next,
                                 std::vector<vertex_id_t>& parents) {
  const auto&                  ids = front.ids();
  par::per_thread<std::size_t> scanned;
  par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
    vertex_id_t u     = ids[i];
    std::size_t local = 0;
    for (auto&& e : g[u]) {
      vertex_id_t v = target(e);
      ++local;
      if (atomic_load(parents[v]) == null_vertex<> &&
          compare_and_swap(parents[v], null_vertex<>, u)) {
        if constexpr (degree_enumerable_graph<Graph>) {
          next.emit(tid, v, g.degree(v));
        } else {
          next.emit(tid, v);
        }
      }
    }
    scanned.local(tid) += local;
  });
  bfs_step_stats st;
  st.added = next.commit_sparse();
  st.scout = next.take_scout();
  scanned.for_each([&](std::size_t& s) { st.scanned += s; });
  return st;
}

/// One bottom-up step: every unvisited vertex probes the dense `front`
/// bitmap through its own adjacency; claimed vertices are emitted straight
/// into `next`'s bitmap (atomic per-word OR), with the scout count fused.
template <adjacency_list_graph Graph>
bfs_step_stats bfs_bottom_up_step(const Graph& g, par::frontier& front, par::frontier& next,
                                  std::vector<vertex_id_t>& parents) {
  const nw::bitmap& fb = front.bits();
  next.begin_dense();
  par::per_thread<std::size_t> scanned;
  par::parallel_for(0, g.size(), [&](unsigned tid, std::size_t v) {
    if (parents[v] != null_vertex<>) return;
    std::size_t local = 0;
    for (auto&& e : g[v]) {
      vertex_id_t u = target(e);
      ++local;
      if (fb.get(u)) {
        parents[v] = u;
        if constexpr (degree_enumerable_graph<Graph>) {
          next.emit_dense(tid, static_cast<vertex_id_t>(v), g.degree(v));
        } else {
          next.emit_dense(tid, static_cast<vertex_id_t>(v));
        }
        break;
      }
    }
    scanned.local(tid) += local;
  });
  bfs_step_stats st;
  st.added = next.commit_dense();
  st.scout = next.take_scout();
  scanned.for_each([&](std::size_t& s) { st.scanned += s; });
  return st;
}

/// Pure top-down BFS (the HygraBFS-style engine).
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_top_down(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;
  par::frontier front(g.size()), next(g.size());
  front.assign_single(source);
  while (!front.empty()) {
    bfs_top_down_step(g, front, next, parents);
    front.swap(next);
  }
  return parents;
}

/// Pure bottom-up BFS (every level sweeps all vertices).
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_bottom_up(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;
  par::frontier front(g.size()), next(g.size());
  front.assign_single(source);
  while (bfs_bottom_up_step(g, front, next, parents).added > 0) {
    front.swap(next);
  }
  return parents;
}

/// Direction-optimizing BFS (Beamer et al.): start top-down, switch to
/// bottom-up when the frontier's fused scout count exceeds 1/alpha of the
/// remaining edges, and back when the frontier shrinks below |V|/beta.
/// alpha/beta of 0 take the process defaults (NWHY_BFS_ALPHA/NWHY_BFS_BETA
/// env overrides, else 15/18).  Both step kinds decrement edges_remaining,
/// so a later top-down re-switch never sees a stale edge estimate.
template <degree_enumerable_graph Graph>
std::vector<vertex_id_t> bfs_direction_optimizing(const Graph& g, vertex_id_t source,
                                                  std::size_t alpha = 0, std::size_t beta = 0) {
  if (alpha == 0) alpha = par::bfs_alpha();
  if (beta == 0) beta = par::bfs_beta();
  std::vector<vertex_id_t> parents(g.size(), null_vertex<>);
  if (g.size() == 0) return parents;
  parents[source] = source;

  par::frontier front(g.size()), next(g.size());
  front.assign_single(source);
  std::size_t edges_remaining = g.num_edges();
  std::size_t scout           = g.degree(source);
  bool        bottom_up       = false;

  while (!front.empty()) {
    NWOBS_COUNT("graph_bfs.levels", 0, 1);
    NWOBS_COUNT("graph_bfs.frontier_total", 0, front.size());
    NWOBS_COUNT("graph_bfs.scout_count", 0, scout);
    NWOBS_GAUGE_MAX("graph_bfs.frontier_peak", front.size());
    NWOBS_GAUGE_MAX("graph_bfs.frontier_density_permille", front.density_permille());
    if (!bottom_up && scout * alpha > edges_remaining) {
      bottom_up = true;
      NWOBS_COUNT("graph_bfs.direction_switches", 0, 1);
    } else if (bottom_up && front.size() < g.size() / beta) {
      bottom_up = false;
      NWOBS_COUNT("graph_bfs.direction_switches", 0, 1);
    }
    bfs_step_stats st;
    if (bottom_up) {
      NWOBS_COUNT("graph_bfs.steps_bottom_up", 0, 1);
      st = bfs_bottom_up_step(g, front, next, parents);
    } else {
      NWOBS_COUNT("graph_bfs.steps_top_down", 0, 1);
      st = bfs_top_down_step(g, front, next, parents);
    }
    NWOBS_COUNT("graph_bfs.edges_relaxed", 0, st.scanned);
    edges_remaining -= std::min(edges_remaining, st.scanned);
    scout = st.scout;
    front.swap(next);
  }
  return parents;
}

/// Hop distances from `source` derived by a level-synchronous sweep; used by
/// the s-distance / s-eccentricity metrics.  Unreachable = null_vertex.
template <adjacency_list_graph Graph>
std::vector<vertex_id_t> bfs_distances(const Graph& g, vertex_id_t source) {
  std::vector<vertex_id_t> dist(g.size(), null_vertex<>);
  if (g.size() == 0) return dist;
  dist[source] = 0;
  // Two frontier objects whose id vectors and per-thread emission buffers
  // all keep capacity across levels.
  par::frontier front(g.size()), next(g.size());
  front.assign_single(source);
  vertex_id_t level = 0;
  while (!front.empty()) {
    ++level;
    const auto& ids = front.ids();
    par::parallel_for(0, ids.size(), [&](unsigned tid, std::size_t i) {
      for (auto&& e : g[ids[i]]) {
        vertex_id_t v = target(e);
        if (atomic_load(dist[v]) == null_vertex<> &&
            compare_and_swap(dist[v], null_vertex<>, level)) {
          next.emit(tid, v);
        }
      }
    });
    next.commit_sparse();
    front.swap(next);
  }
  return dist;
}

}  // namespace nw::graph
