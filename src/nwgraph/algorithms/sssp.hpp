// nwgraph/algorithms/sssp.hpp
//
// Single-source shortest paths on weighted CSR graphs:
//   * Dijkstra (binary heap)            — the serial reference
//   * delta-stepping (Meyer & Sanders)  — the parallel engine behind the
//                                         s-single-source-shortest-path metric
#pragma once

#include <limits>
#include <queue>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/atomics.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

template <class W>
inline constexpr W infinite_distance = std::numeric_limits<W>::max();

/// Dijkstra with a lazy-deletion binary heap.  O((n + m) log m).
template <class W>
std::vector<W> sssp_dijkstra(const adjacency<W>& g, vertex_id_t source) {
  std::vector<W> dist(g.size(), infinite_distance<W>);
  if (g.size() == 0) return dist;
  using entry = std::pair<W, vertex_id_t>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  dist[source] = W{0};
  heap.push({W{0}, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (auto&& [v, w] : g[u]) {
      W nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  return dist;
}

/// Delta-stepping.  Vertices are kept in distance buckets of width `delta`;
/// each bucket is settled with parallel relaxations (light edges may
/// re-enter the current bucket, heavy edges always move forward).
template <class W>
std::vector<W> sssp_delta_stepping(const adjacency<W>& g, vertex_id_t source, W delta) {
  std::vector<W> dist(g.size(), infinite_distance<W>);
  if (g.size() == 0) return dist;
  NW_ASSERT(delta > W{0}, "delta must be positive");
  dist[source] = W{0};

  std::vector<std::vector<vertex_id_t>> buckets(1);
  buckets[0].push_back(source);

  auto bucket_of = [&](W d) { return static_cast<std::size_t>(d / delta); };

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // A vertex can be re-relaxed into bucket b while we drain it.
    while (!buckets[b].empty()) {
      std::vector<vertex_id_t> current;
      current.swap(buckets[b]);
      par::per_thread<std::vector<std::pair<vertex_id_t, W>>> requests;
      par::parallel_for(0, current.size(), [&](unsigned tid, std::size_t i) {
        vertex_id_t u  = current[i];
        W           du = atomic_load(dist[u]);
        if (bucket_of(du) != b) return;  // settled into an earlier bucket already
        for (auto&& [v, w] : g[u]) {
          requests.local(tid).push_back({v, du + w});
        }
      });
      auto all = par::merge_thread_vectors(requests);
      for (auto& [v, nd] : all) {
        if (nd < dist[v]) {
          dist[v]          = nd;
          std::size_t dest = bucket_of(nd);
          if (dest >= buckets.size()) buckets.resize(dest + 1);
          buckets[dest].push_back(v);
        }
      }
    }
  }
  return dist;
}

}  // namespace nw::graph
