// nwgraph/algorithms/triangle_count.hpp
//
// Parallel triangle counting by ordered neighborhood intersection.  Assumes
// each neighborhood is sorted ascending (adjacency built from a
// sort_and_unique'd edge list satisfies this).
#pragma once

#include <algorithm>
#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// Number of triangles in an undirected graph (each counted once).
template <adjacency_list_graph Graph>
std::size_t triangle_count(const Graph& g) {
  return par::parallel_reduce(
      0, g.size(), std::size_t{0},
      [&](std::size_t acc, std::size_t u) {
        auto nu = g[u];
        for (auto&& e : nu) {
          vertex_id_t v = target(e);
          if (v <= u) continue;  // orient edges low -> high
          // Count common neighbors w with w > v (fully ordered triple).
          auto nv  = g[v];
          auto it1 = nu.begin();
          auto it2 = nv.begin();
          while (it1 != nu.end() && it2 != nv.end()) {
            vertex_id_t a = target(*it1);
            vertex_id_t b = target(*it2);
            if (a <= v) {
              ++it1;
            } else if (b <= v) {
              ++it2;
            } else if (a < b) {
              ++it1;
            } else if (b < a) {
              ++it2;
            } else {
              ++acc;
              ++it1;
              ++it2;
            }
          }
        }
        return acc;
      },
      std::plus<>{});
}

}  // namespace nw::graph
