// nwgraph/algorithms/pagerank.hpp
//
// Pull-based parallel PageRank with uniform teleport.  Included because the
// related-work frameworks (MESH, HyperX) expose PageRank on hypergraph
// projections; NWHy applies it to clique-expansion and s-line graphs.
#pragma once

#include <cmath>
#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"

namespace nw::graph {

/// Returns the PageRank vector (sums to ~1).  Iterates until the L1 change
/// drops below `tolerance` or `max_iterations` is reached.
template <degree_enumerable_graph Graph>
std::vector<double> pagerank(const Graph& g, double damping = 0.85, double tolerance = 1e-9,
                             std::size_t max_iterations = 100) {
  const std::size_t n = g.size();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(n, 0.0);
  const double        teleport = (1.0 - damping) / static_cast<double>(n);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Dangling mass is shared uniformly so the ranks stay a distribution.
    double dangling = par::parallel_reduce(
        0, n, 0.0,
        [&](double acc, std::size_t v) {
          std::size_t d = g.degree(v);
          contrib[v]    = d > 0 ? rank[v] / static_cast<double>(d) : 0.0;
          return d == 0 ? acc + rank[v] : acc;
        },
        std::plus<>{});
    double base = teleport + damping * dangling / static_cast<double>(n);

    double change = par::parallel_reduce(
        0, n, 0.0,
        [&](double acc, std::size_t v) {
          double sum = 0.0;
          for (auto&& e : g[v]) sum += contrib[target(e)];
          double next  = base + damping * sum;
          double delta = std::abs(next - rank[v]);
          rank[v]      = next;  // safe: each v written once; readers use contrib[]
          return acc + delta;
        },
        std::plus<>{});
    if (change < tolerance) break;
  }
  return rank;
}

}  // namespace nw::graph
