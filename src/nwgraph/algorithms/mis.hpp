// nwgraph/algorithms/mis.hpp
//
// Parallel maximal independent set (Luby-style): each round, a vertex joins
// the MIS if its random priority beats every undecided neighbor's; its
// neighbors are then knocked out.  MIS is in the algorithm suite the
// related-work frameworks (MESH, HyperX) advertise; applied to a
// clique-expansion or s-line graph it yields a set of pairwise
// non-overlapping hyperedges (an s-matching of the hypergraph).
#pragma once

#include <vector>

#include "nwgraph/concepts.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/rng.hpp"

namespace nw::graph {

/// Returns a flag per vertex: 1 = in the MIS.  Deterministic for a given
/// seed regardless of thread count (priorities are pure functions of id).
template <adjacency_list_graph Graph>
std::vector<char> maximal_independent_set(const Graph& g, std::uint64_t seed = 0x315D) {
  const std::size_t n = g.size();
  enum : char { undecided = 0, in_set = 1, knocked_out = 2 };
  std::vector<char> state(n, undecided);

  // Fixed random priority per vertex.
  std::vector<std::uint64_t> priority(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t x = seed ^ (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull);
    priority[v]     = splitmix64(x);
  }

  bool progress = true;
  while (progress) {
    // Round: select local priority winners among undecided vertices.
    std::vector<char> joins(n, 0);
    par::parallel_for(0, n, [&](std::size_t v) {
      if (state[v] != undecided) return;
      for (auto&& e : g[v]) {
        vertex_id_t u = target(e);
        if (u == v || state[u] == knocked_out) continue;
        if (state[u] == in_set) return;  // already dominated (stale state)
        if (priority[u] > priority[v] || (priority[u] == priority[v] && u > v)) return;
      }
      joins[v] = 1;
    });
    progress = false;
    // Commit winners and knock out their neighborhoods (two-phase: no races).
    for (std::size_t v = 0; v < n; ++v) {
      if (!joins[v] || state[v] != undecided) continue;
      state[v] = in_set;
      progress = true;
      for (auto&& e : g[v]) {
        vertex_id_t u = target(e);
        if (u != v && state[u] == undecided) state[u] = knocked_out;
      }
    }
  }

  std::vector<char> result(n);
  for (std::size_t v = 0; v < n; ++v) result[v] = state[v] == in_set ? 1 : 0;
  return result;
}

/// Check the MIS invariants: independence (no two members adjacent) and
/// maximality (every non-member has a member neighbor).  For tests.
template <adjacency_list_graph Graph>
bool is_maximal_independent_set(const Graph& g, const std::vector<char>& mis) {
  for (std::size_t v = 0; v < g.size(); ++v) {
    bool member   = mis[v] != 0;
    bool dominated = false;
    for (auto&& e : g[v]) {
      vertex_id_t u = target(e);
      if (u == v) continue;
      if (member && mis[u]) return false;  // independence violated
      if (mis[u]) dominated = true;
    }
    if (!member && !dominated) return false;  // maximality violated
  }
  return true;
}

}  // namespace nw::graph
