// nwobs/counters.hpp
//
// Lightweight, always-compiled observability counters for the algorithm
// families the paper benchmarks (HyperBFS/AdjoinBFS, s-line-graph
// construction, toplexes).  Design goals, in order:
//
//   1. No atomics on the hot path.  A `counter` owns one cache-line-padded
//      slot per worker id — the same padded-slot idiom as
//      nw::par::per_thread — and workers bump their own slot with a plain
//      add.  Slots are merged only on read.
//   2. Survive thread-pool resizing.  The benchmark harness calls
//      thread_pool::set_default_concurrency() mid-process, so unlike
//      per_thread (sized from the pool at construction) a counter carries a
//      fixed slot capacity; worker ids beyond it (never seen in practice —
//      the sweep tops out at the machine's hardware concurrency) fall back
//      to one relaxed atomic.
//   3. Compile-time no-op.  Building with -DNWHY_OBS=0 turns every NWOBS_*
//      macro into `((void)0)`: no registry lookups, no slot traffic, no
//      static-init guards — the acceptance bar is < 2% timing delta against
//      the uninstrumented tree.
//
// Naming convention: `family.metric`, e.g. "hyper_bfs.edges_relaxed",
// "slinegraph.candidate_pairs", "toplex.dominance_checks".  The full schema
// is documented in DESIGN.md and pinned by tests/test_nwobs.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "nwutil/defs.hpp"

#ifndef NWHY_OBS
#define NWHY_OBS 1
#endif

namespace nw::obs {

/// Monotonic counter: per-worker padded slots, merged on read.
/// `add(tid, n)` is wait-free and atomic-free for tid < slot_capacity.
class counter {
public:
  static constexpr unsigned slot_capacity = 128;

  void add(unsigned tid, std::uint64_t n = 1) noexcept {
    if (tid < slot_capacity) {
      slots_[tid].v += n;
    } else {
      overflow_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Merged value.  Intended for use outside parallel regions; concurrent
  /// reads see a possibly-stale but tear-free per-slot snapshot on the
  /// platforms we target (aligned 64-bit loads).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = overflow_.load(std::memory_order_relaxed);
    for (const auto& s : slots_) total += s.v;
    return total;
  }

  /// Zero every slot.  Only call when no parallel region is running.
  void reset() noexcept {
    for (auto& s : slots_) s.v = 0;
    overflow_.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) padded {
    std::uint64_t v = 0;
  };
  padded                     slots_[slot_capacity];
  std::atomic<std::uint64_t> overflow_{0};
};

/// Gauge: a single observable value.  `set` overwrites; `observe_max` keeps
/// the running maximum (used for peak frontier / queue occupancy).  Gauges
/// are updated from coordinating code (once per BFS level, once per
/// construction call), so one relaxed atomic is fine.
class gauge {
public:
  void set(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void observe_max(std::uint64_t v) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// Aggregate of one named phase timer (fed by scope_timer).
struct timer_stat {
  std::uint64_t count    = 0;
  double        total_ms = 0.0;
  double        max_ms   = 0.0;
};

/// Process-wide registry of counters, gauges and timers.  Lookup-by-name
/// takes a mutex, but hot call sites cache the returned reference in a
/// function-local static (see NWOBS_COUNT), so the lock is paid once per
/// call site, not per increment.  Counter/gauge objects are never
/// deallocated while the process lives — reset() zeroes them in place so
/// cached references stay valid.
class registry {
public:
  static registry& get() {
    static registry instance;
    return instance;
  }

  counter& get_counter(std::string_view name) {
    std::lock_guard lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), std::make_unique<counter>()).first;
    }
    return *it->second;
  }

  gauge& get_gauge(std::string_view name) {
    std::lock_guard lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
    }
    return *it->second;
  }

  void record_timer(std::string_view name, double elapsed_ms) {
    std::lock_guard lock(mu_);
    auto            it = timers_.find(name);
    if (it == timers_.end()) it = timers_.emplace(std::string(name), timer_stat{}).first;
    timer_stat& t = it->second;
    ++t.count;
    t.total_ms += elapsed_ms;
    if (elapsed_ms > t.max_ms) t.max_ms = elapsed_ms;
  }

  /// Merged snapshot of every counter and gauge (gauges appear alongside
  /// counters: both are scalar metrics, and the profile schema keeps one
  /// `counters` section).  Zero-valued entries are included — a zero is
  /// information ("no direction switch happened").
  [[nodiscard]] std::map<std::string, std::uint64_t> counters_snapshot() const {
    std::lock_guard lock(mu_);
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, c] : counters_) out[name] = c->value();
    for (const auto& [name, g] : gauges_) out[name] = g->value();
    return out;
  }

  [[nodiscard]] std::map<std::string, timer_stat> timers_snapshot() const {
    std::lock_guard lock(mu_);
    return {timers_.begin(), timers_.end()};
  }

  /// Zero all counters/gauges in place and drop timer aggregates.  Cached
  /// counter references remain valid.  Only call outside parallel regions.
  void reset() {
    std::lock_guard lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    timers_.clear();
  }

private:
  registry() = default;

  mutable std::mutex                                               mu_;
  std::map<std::string, std::unique_ptr<counter>, std::less<>>     counters_;
  std::map<std::string, std::unique_ptr<gauge>, std::less<>>       gauges_;
  std::map<std::string, timer_stat, std::less<>>                   timers_;
};

}  // namespace nw::obs

// ---------------------------------------------------------------------------
// Instrumentation macros.  All hot-path call sites go through these so that
// -DNWHY_OBS=0 removes instrumentation entirely at compile time.
// ---------------------------------------------------------------------------
#if NWHY_OBS

/// Add `n` to counter `name` from worker `tid`.  The registry lookup happens
/// once per call site (function-local static); the increment itself is a
/// plain add into a per-worker padded slot.
#define NWOBS_COUNT(name, tid, n)                                                      \
  do {                                                                                 \
    static ::nw::obs::counter& nwobs_counter_ =                                        \
        ::nw::obs::registry::get().get_counter(name);                                  \
    nwobs_counter_.add((tid), static_cast<std::uint64_t>(n));                          \
  } while (0)

/// Overwrite gauge `name` with `v` (coordinating-thread call sites only).
#define NWOBS_GAUGE_SET(name, v)                                                       \
  do {                                                                                 \
    static ::nw::obs::gauge& nwobs_gauge_ = ::nw::obs::registry::get().get_gauge(name); \
    nwobs_gauge_.set(static_cast<std::uint64_t>(v));                                   \
  } while (0)

/// Raise gauge `name` to at least `v`.
#define NWOBS_GAUGE_MAX(name, v)                                                       \
  do {                                                                                 \
    static ::nw::obs::gauge& nwobs_gauge_ = ::nw::obs::registry::get().get_gauge(name); \
    nwobs_gauge_.observe_max(static_cast<std::uint64_t>(v));                           \
  } while (0)

#else  // NWHY_OBS == 0: every instrumentation site compiles to nothing.

#define NWOBS_COUNT(name, tid, n) ((void)0)
#define NWOBS_GAUGE_SET(name, v) ((void)0)
#define NWOBS_GAUGE_MAX(name, v) ((void)0)

#endif  // NWHY_OBS
