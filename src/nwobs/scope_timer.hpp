// nwobs/scope_timer.hpp
//
// RAII phase timer feeding the process-wide nw::obs::registry.  Wrap a
// whole algorithm phase (one BFS run, one line-graph construction) — the
// record path takes the registry mutex, so this is for coarse scopes, not
// inner loops.  Use the NWOBS_SCOPE_TIMER macro so -DNWHY_OBS=0 removes the
// timer entirely.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "nwobs/counters.hpp"

namespace nw::obs {

class scope_timer {
  using clock = std::chrono::steady_clock;

public:
  explicit scope_timer(std::string_view name) : name_(name), start_(clock::now()) {}

  scope_timer(const scope_timer&)            = delete;
  scope_timer& operator=(const scope_timer&) = delete;

  ~scope_timer() {
    double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start_).count();
    registry::get().record_timer(name_, ms);
  }

private:
  std::string       name_;
  clock::time_point start_;
};

}  // namespace nw::obs

#if NWHY_OBS
/// Time the rest of the enclosing scope under timer `name`.
#define NWOBS_SCOPE_TIMER(name) \
  ::nw::obs::scope_timer nwobs_scope_timer_ { name }
#else
#define NWOBS_SCOPE_TIMER(name) ((void)0)
#endif
