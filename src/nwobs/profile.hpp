// nwobs/profile.hpp
//
// JSON serialization of the observability registry.  Schema (pinned by
// tests/test_nwobs.cpp and documented in DESIGN.md):
//
//   {
//     "counters": { "<family>.<metric>": <uint>, ... },   // counters + gauges
//     "timers":   { "<phase>": {"count": n, "total_ms": x, "max_ms": y}, ... },
//     "env":      { "NWHY_NUM_THREADS": "8" | null, ... },
//     "threads":  <default pool concurrency>
//   }
//
// The profile is what makes a perf regression diagnosable from counter
// deltas instead of wall-clock alone: two runs of the same binary on the
// same input should produce identical counters, so a timing change with
// unchanged counters is a machine/codegen effect, while changed counters
// point at the algorithmic phase that diverged.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "nwobs/counters.hpp"
#include "nwpar/thread_pool.hpp"
#include "nwutil/env.hpp"

namespace nw::obs {

/// Escape a string for embedding in a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace detail {

inline void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

/// Environment knobs recorded in every profile: the ones that change what
/// the process measured.
inline constexpr const char* recorded_env[] = {
    "NWHY_NUM_THREADS",  "NWHY_OBS",           "NWHY_BENCH_SCALE",
    "NWHY_BENCH_REPS",   "NWHY_BENCH_THREADS", "NWHY_BENCH_PROFILE",
    "NWHY_BFS_ALPHA",    "NWHY_BFS_BETA",      "NWHY_COMPACT_THRESHOLD",
    "NWHY_DELTA_RESERVE",
};

}  // namespace detail

/// Serialize the full registry (counters+gauges, timers, env, threads).
inline std::string profile_json() {
  const registry& reg = registry::get();
  std::string     out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : reg.counters_snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, t] : reg.timers_snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " + std::to_string(t.count) +
           ", \"total_ms\": ";
    detail::append_number(out, t.total_ms);
    out += ", \"max_ms\": ";
    detail::append_number(out, t.max_ms);
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"env\": {";
  first = true;
  for (const char* name : detail::recorded_env) {
    out += first ? "\n" : ",\n";
    first = false;
    const char* v = std::getenv(name);
    out += "    \"" + std::string(name) + "\": ";
    out += v ? "\"" + json_escape(v) + "\"" : std::string("null");
  }
  out += "\n  },\n";
  out += "  \"threads\": " +
         std::to_string(nw::par::thread_pool::default_pool().concurrency()) + "\n}\n";
  return out;
}

/// Write the profile to `path`.  Returns false (and prints to stderr) on
/// I/O failure; never throws — callers are CLI tools and atexit hooks.
inline bool write_profile(const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "nwobs: cannot open profile output '%s'\n", path.c_str());
    return false;
  }
  f << profile_json();
  return f.good();
}

/// Zero every counter/gauge and drop timer aggregates.
inline void reset_profile() { registry::get().reset(); }

/// Runtime enable check for *export* sites (the instrumentation itself is
/// compile-time gated): NWHY_OBS=0 in the environment suppresses profile
/// dumping without a rebuild.  Strict parse: a garbage value warns once and
/// keeps profiles enabled (the default), instead of being read as "on"
/// silently.
inline bool runtime_enabled() { return nw::util::env_u64_strict("NWHY_OBS", 1) != 0; }

}  // namespace nw::obs
