// examples/pyapi_emulation.cpp
//
// The paper's Listing 5 Python session, line for line, through the C ABI
// (our pybind11 substitute — see DESIGN.md).  Each block is prefixed with
// the Python statement it mirrors.
#include <cstdio>
#include <vector>

#include "capi/nwhy_capi.h"

int main() {
  // col = np.array([0, 0, 0, 1, 1, 1])
  // row = np.array([0, 1, 2, 0, 1, 2])
  // weight = np.array([1, 1, 1, 1, 1, 1])
  std::vector<uint32_t> col{0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> row{0, 1, 2, 0, 1, 2};
  std::vector<double>   weight{1, 1, 1, 1, 1, 1};

  // hg = nwhy.NWHypergraph(row, col, weight)
  nwhy_hypergraph* hg = nwhy_hypergraph_create(col.data(), row.data(), weight.data(), col.size());
  std::printf("hg: %zu hyperedges, %zu hypernodes\n", nwhy_num_hyperedges(hg),
              nwhy_num_hypernodes(hg));

  // s2lg = hg.s_linegraph(s=2, edges=True)
  nwhy_slinegraph* s2lg = nwhy_s_linegraph(hg, 2, /*edges=*/1);

  // tmp = s2lg.is_s_connected()
  std::printf("is_s_connected: %s\n", nwhy_slg_is_s_connected(s2lg) ? "True" : "False");

  // sn = s2lg.s_neighbors(v=0)
  std::vector<uint32_t> sn(nwhy_slg_s_degree(s2lg, 0));
  nwhy_slg_s_neighbors(s2lg, 0, sn.data());
  std::printf("s_neighbors(0): [");
  for (std::size_t i = 0; i < sn.size(); ++i) std::printf("%s%u", i ? ", " : "", sn[i]);
  std::printf("]\n");

  // sd = s2lg.s_degree(v=0)
  std::printf("s_degree(0): %zu\n", nwhy_slg_s_degree(s2lg, 0));

  // scc = s2lg.s_connected_components()
  std::vector<uint32_t> scc(nwhy_slg_num_vertices(s2lg));
  nwhy_slg_s_connected_components(s2lg, scc.data());
  std::printf("s_connected_components: [");
  for (std::size_t i = 0; i < scc.size(); ++i) std::printf("%s%u", i ? ", " : "", scc[i]);
  std::printf("]\n");

  // sdist = s2lg.s_distance(src=0, dest=1)
  std::printf("s_distance(0, 1): %u\n", nwhy_slg_s_distance(s2lg, 0, 1));

  // sp = s2lg.s_path(src=0, dest=1)
  std::vector<uint32_t> sp(nwhy_slg_num_vertices(s2lg));
  std::size_t           len = nwhy_slg_s_path(s2lg, 0, 1, sp.data());
  std::printf("s_path(0, 1): [");
  for (std::size_t i = 0; i < len; ++i) std::printf("%s%u", i ? ", " : "", sp[i]);
  std::printf("]\n");

  // sbc = s2lg.s_betweenness_centrality(normalized=True)
  std::vector<double> sbc(nwhy_slg_num_vertices(s2lg));
  nwhy_slg_s_betweenness_centrality(s2lg, /*normalized=*/1, sbc.data());
  std::printf("s_betweenness_centrality: [%g, %g]\n", sbc[0], sbc[1]);

  // sc = s2lg.s_closeness_centrality(v=None)
  std::vector<double> sc(nwhy_slg_num_vertices(s2lg));
  nwhy_slg_s_closeness_centrality(s2lg, sc.data());
  std::printf("s_closeness_centrality: [%g, %g]\n", sc[0], sc[1]);

  // shc = s2lg.s_harmonic_closeness_centrality(v=None)
  std::vector<double> shc(nwhy_slg_num_vertices(s2lg));
  nwhy_slg_s_harmonic_closeness_centrality(s2lg, shc.data());
  std::printf("s_harmonic_closeness_centrality: [%g, %g]\n", shc[0], shc[1]);

  // se = s2lg.s_eccentricity(v=None)
  std::vector<uint32_t> se(nwhy_slg_num_vertices(s2lg));
  nwhy_slg_s_eccentricity(s2lg, se.data());
  std::printf("s_eccentricity: [%u, %u]\n", se[0], se[1]);

  nwhy_slinegraph_destroy(s2lg);
  nwhy_hypergraph_destroy(hg);
  return 0;
}
