// examples/toplex_mining.cpp
//
// Toplex mining (paper Algorithm 3): in set-system data full of redundant
// subsets — shopping baskets, gene sets, access-control groups — the
// *toplexes* (maximal hyperedges) are the irredundant summary: every other
// hyperedge is contained in some toplex.  This example builds a basket-like
// hypergraph with deliberate nesting, extracts the toplexes, and verifies
// the cover property.
#include <cstdio>

#include "nwhy.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

int main() {
  // 120 "full baskets" over 500 items, plus for each full basket a chain of
  // partial sub-baskets (prefixes), mimicking datasets where observations
  // are recorded at several granularities.
  nw::xoshiro256ss rng(99);
  biedgelist<>     el;
  vertex_id_t      next_edge = 0;
  for (int b = 0; b < 120; ++b) {
    std::vector<vertex_id_t> items;
    std::size_t              size = 4 + rng.bounded(12);
    for (std::size_t k = 0; k < size; ++k) {
      items.push_back(static_cast<vertex_id_t>(rng.bounded(500)));
    }
    // The full basket...
    for (auto v : items) el.push_back(next_edge, v);
    ++next_edge;
    // ...and two nested prefixes of it.
    for (std::size_t cut : {items.size() / 2, items.size() / 3}) {
      if (cut == 0) continue;
      for (std::size_t k = 0; k < cut; ++k) el.push_back(next_edge, items[k]);
      ++next_edge;
    }
  }

  NWHypergraph hg(std::move(el));
  std::printf("basket hypergraph: %zu baskets, %zu items, %zu entries\n", hg.num_hyperedges(),
              hg.num_hypernodes(), hg.num_incidences());

  nw::timer t;
  auto      tops = hg.toplexes();
  std::printf("toplexes: %zu of %zu hyperedges are maximal (%.2f ms)\n", tops.size(),
              hg.num_hyperedges(), t.elapsed_ms());
  std::printf("compression: the toplex family is %.1f%% of the original\n",
              100.0 * static_cast<double>(tops.size()) / hg.num_hyperedges());

  // Verify the cover property: every non-toplex is contained in a toplex.
  const auto&       he = hg.hyperedges();
  std::vector<char> is_toplex(hg.num_hyperedges(), 0);
  for (auto e : tops) is_toplex[e] = 1;
  auto contains = [&](vertex_id_t big, vertex_id_t small) {
    auto rb = he[big];
    auto rs = he[small];
    return std::includes(rb.begin(), rb.end(), rs.begin(), rs.end());
  };
  std::size_t covered = 0, non_toplexes = 0;
  for (vertex_id_t e = 0; e < hg.num_hyperedges(); ++e) {
    if (is_toplex[e]) continue;
    ++non_toplexes;
    for (auto f : tops) {
      if (contains(f, e)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("cover check: %zu / %zu non-toplexes contained in a toplex %s\n", covered,
              non_toplexes, covered == non_toplexes ? "(all — correct)" : "(MISSING — bug!)");

  // The toplex family is itself a hypergraph; project it at s = 2 to find
  // baskets sharing at least two items.
  biedgelist<> toplex_el;
  for (std::size_t k = 0; k < tops.size(); ++k) {
    for (auto&& iv : he[tops[k]]) {
      toplex_el.push_back(static_cast<vertex_id_t>(k), target(iv));
    }
  }
  NWHypergraph toplex_hg(std::move(toplex_el));
  auto         lg = toplex_hg.make_s_linegraph(2);
  std::printf("\n2-line graph of the toplex family: %zu edges among %zu maximal baskets\n",
              lg.num_edges(), toplex_hg.num_hyperedges());
  return 0;
}
