// examples/community_components.cpp
//
// The Table-I workload shape end-to-end: a community-membership hypergraph
// (communities = hyperedges, members = hypernodes, like the SNAP-derived
// datasets), analyzed with *both* exact engines the paper provides —
// HyperCC on the bipartite representation and AdjoinCC on the adjoin
// representation — demonstrating that the adjoin technique lets a plain
// graph algorithm (Afforest) answer a hypergraph question, and that the
// two answers agree.
#include <cstdio>
#include <map>

#include "nwhy.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

int main() {
  auto         el = gen::planted_community_hypergraph(/*communities=*/3000, /*members=*/9000,
                                                      /*max_community=*/120, /*size_alpha=*/1.5,
                                                      /*crosslink_prob=*/0.002, /*seed=*/7);
  NWHypergraph hg(std::move(el));
  std::printf("community hypergraph: %zu communities, %zu members, %zu memberships\n",
              hg.num_hyperedges(), hg.num_hypernodes(), hg.num_incidences());

  // Engine 1: exact CC on the bipartite representation (two index spaces,
  // two frontier structures — Sec. III-C.1).
  nw::timer t1;
  auto      exact = hg.connected_components();
  double    ms1   = t1.elapsed_ms();

  // Engine 2: the adjoin graph — one shared index space, any graph CC
  // algorithm applies (Sec. III-C.2); results are split back per class.
  nw::timer t2;
  auto      adjoin = hg.connected_components_adjoin(adjoin_cc_engine::afforest);
  double    ms2    = t2.elapsed_ms();

  auto count_groups = [](const std::vector<vertex_id_t>& edge_labels,
                         const std::vector<vertex_id_t>& node_labels) {
    std::vector<vertex_id_t> all(edge_labels);
    all.insert(all.end(), node_labels.begin(), node_labels.end());
    return nw::graph::count_components(all);
  };
  std::size_t n_exact  = count_groups(exact.labels_edge, exact.labels_node);
  std::size_t n_adjoin = count_groups(adjoin.labels_edge, adjoin.labels_node);

  std::printf("HyperCC  (bipartite, label propagation): %5zu components in %7.2f ms\n", n_exact,
              ms1);
  std::printf("AdjoinCC (adjoin graph, Afforest):       %5zu components in %7.2f ms\n", n_adjoin,
              ms2);
  std::printf("engines agree: %s\n", n_exact == n_adjoin ? "yes" : "NO — bug!");

  // Component size distribution (communities per component).
  std::map<vertex_id_t, std::size_t> sizes;
  for (auto l : adjoin.labels_edge) sizes[l]++;
  std::map<std::size_t, std::size_t> histogram;
  for (auto& [label, size] : sizes) histogram[size]++;
  std::printf("\ncomponent size histogram (communities per component):\n");
  std::size_t shown = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && shown < 8; ++it, ++shown) {
    std::printf("  %6zu communities : %zu component(s)\n", it->first, it->second);
  }

  // BFS coverage from the largest community: how much of the structure is
  // reachable through shared members?
  vertex_id_t largest = 0;
  for (std::size_t e = 1; e < hg.num_hyperedges(); ++e) {
    if (hg.edge_sizes()[e] > hg.edge_sizes()[largest]) largest = static_cast<vertex_id_t>(e);
  }
  auto        bfs     = hg.bfs_adjoin(largest);
  std::size_t reached = 0;
  for (auto p : bfs.parents_edge) reached += p != nw::null_vertex<>;
  std::printf("\nBFS from the largest community (%zu members) reaches %zu of %zu communities\n",
              hg.edge_sizes()[largest], reached, hg.num_hyperedges());
  std::printf("(fragmented coverage is exactly why BFS is fast on Orkut-group/Web in Fig. 8)\n");
  return 0;
}
