// examples/coauthorship.cpp
//
// The paper's motivating scenario (Sec. I): author-paper relationships are
// inherently multi-way — a three-author paper is one hyperedge, not three
// pairwise edges.  This example builds a synthetic collaboration hypergraph
// (papers = hyperedges, authors = hypernodes), then uses s-line graphs to
// answer questions clique expansion cannot:
//
//   * which paper pairs share >= s authors (strong intellectual overlap)?
//   * which papers are most central to the strongly-connected literature?
//   * how does the collaboration structure fragment as s grows?
#include <algorithm>
#include <cstdio>

#include "nwhy.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

int main() {
  // A corpus of 400 papers by 250 authors; productive authors (low Zipf
  // ranks) appear on many papers, like real bibliometric data.
  auto corpus =
      gen::powerlaw_hypergraph(/*papers=*/400, /*authors=*/250, /*max_authors_per_paper=*/12,
                               /*size_alpha=*/1.3, /*degree_alpha=*/0.9, /*seed=*/2022);
  NWHypergraph hg(std::move(corpus));
  std::printf("corpus: %zu papers, %zu authors, %zu authorships\n", hg.num_hyperedges(),
              hg.num_hypernodes(), hg.num_incidences());

  // How multi-way is the data?  Papers with three or more authors are the
  // cases pairwise graphs mis-model.
  std::size_t multiway = 0;
  for (auto sz : hg.edge_sizes()) multiway += sz >= 3;
  std::printf("%zu papers (%.0f%%) have >= 3 authors — the graph abstraction loses these\n",
              multiway, 100.0 * static_cast<double>(multiway) / hg.num_hyperedges());

  // Fragmentation as the collaboration-strength threshold s rises.
  std::printf("\n%4s %14s %12s %16s\n", "s", "s-line edges", "components", "largest comp");
  for (std::size_t s = 1; s <= 4; ++s) {
    auto lg     = hg.make_s_linegraph(s);
    auto labels = lg.s_connected_components();
    // Count components over active papers only.
    std::vector<vertex_id_t> active;
    for (auto l : labels) {
      if (l != nw::null_vertex<>) active.push_back(l);
    }
    std::size_t comps   = nw::graph::count_components(active);
    std::size_t largest = active.empty() ? 0 : nw::graph::largest_component_size(active);
    std::printf("%4zu %14zu %12zu %16zu\n", s, lg.num_edges(), comps, largest);
  }

  // Centrality at s = 2: papers bridging strongly-overlapping author groups.
  auto lg = hg.make_s_linegraph(2);
  auto bc = lg.s_betweenness_centrality();
  std::vector<vertex_id_t> ranking(hg.num_hyperedges());
  for (std::size_t i = 0; i < ranking.size(); ++i) ranking[i] = static_cast<vertex_id_t>(i);
  std::sort(ranking.begin(), ranking.end(),
            [&](vertex_id_t a, vertex_id_t b) { return bc[a] > bc[b]; });
  std::printf("\nmost central papers in the 2-line graph (bridging strong collaborations):\n");
  for (std::size_t k = 0; k < 5; ++k) {
    vertex_id_t p = ranking[k];
    std::printf("  paper %4u  betweenness %.4f  authors %zu  2-degree %zu\n", p, bc[p],
                hg.edge_sizes()[p], lg.s_degree(p));
  }

  // Distance between the two most central papers.
  if (auto d = lg.s_distance(ranking[0], ranking[1])) {
    std::printf("\n2-walk distance between the top two papers: %zu\n", *d);
  } else {
    std::printf("\nthe top two papers are 2-disconnected\n");
  }
  return 0;
}
