// examples/quickstart.cpp
//
// Quickstart: build the paper's running-example hypergraph (Fig. 1), look
// at all four representations, and compute a few exact and approximate
// metrics.  Mirrors the flow of the paper's Listing 2 + Listing 5.
#include <cstdio>

#include "nwhy.hpp"

using namespace nw::hypergraph;

int main() {
  // The Fig. 1 hypergraph: 4 hyperedges over 9 hypernodes.
  //   e0 = {v0, v1, v2}   e1 = {v1, v2, v3, v4}
  //   e2 = {v4, v5, v6}   e3 = {v6, v7, v8}
  biedgelist<> el;
  for (nw::vertex_id_t v : {0, 1, 2}) el.push_back(0, v);
  for (nw::vertex_id_t v : {1, 2, 3, 4}) el.push_back(1, v);
  for (nw::vertex_id_t v : {4, 5, 6}) el.push_back(2, v);
  for (nw::vertex_id_t v : {6, 7, 8}) el.push_back(3, v);

  NWHypergraph hg(std::move(el));
  std::printf("hypergraph: %zu hyperedges, %zu hypernodes, %zu incidences\n",
              hg.num_hyperedges(), hg.num_hypernodes(), hg.num_incidences());

  // Representation 1: bipartite (two mutually indexed CSRs) — iterate as a
  // range of ranges, exactly like the paper's Listing 3.
  std::printf("\nbipartite representation (hyperedge -> hypernodes):\n");
  std::size_t edge_id = 0;
  for (auto&& neighbors : hg.hyperedges()) {
    std::printf("  e%zu:", edge_id++);
    for (auto&& e : neighbors) std::printf(" v%u", target(e));
    std::printf("\n");
  }

  // Representation 2: adjoin graph — one shared index set.
  const auto& adjoin = hg.adjoin();
  std::printf("\nadjoin graph: %zu ids (%zu hyperedge ids + %zu hypernode ids)\n",
              adjoin.num_ids(), adjoin.nrealedges, adjoin.nrealnodes);

  // Exact analytics on both representations.
  auto cc  = hg.connected_components();
  auto acc = hg.connected_components_adjoin();
  std::printf("\nHyperCC labels (hyperedges):  ");
  for (auto l : cc.labels_edge) std::printf("%u ", l);
  std::printf("\nAdjoinCC labels (hyperedges): ");
  for (auto l : acc.labels_edge) std::printf("%u ", l);

  auto bfs = hg.bfs(0);
  std::printf("\n\nHyperBFS from e0: hyperedge depths:");
  for (auto d : bfs.dist_edge) std::printf(" %u", d);

  // Representation 3 + 4: clique expansion and s-line graphs.
  auto clique = hg.clique_expansion_graph();
  std::printf("\n\nclique expansion: %zu vertices, %zu undirected edges\n", clique.size(),
              clique.num_edges() / 2);

  for (std::size_t s = 1; s <= 3; ++s) {
    auto lg = hg.make_s_linegraph(s);
    std::printf("%zu-line graph: %zu edges, %s\n", s, lg.num_edges(),
                lg.is_s_connected() ? "s-connected" : "not s-connected");
  }

  // Listing 5 style s-metric queries on the 1-line graph.
  auto lg = hg.make_s_linegraph(1);
  auto d  = lg.s_distance(0, 3);
  std::printf("\ns-distance(e0, e3) in the 1-line graph: %zu\n", d ? *d : 0);
  auto path = lg.s_path(0, 3);
  std::printf("s-path(e0, e3):");
  for (auto e : path) std::printf(" e%u", e);
  std::printf("\n");

  auto toplex = hg.toplexes();
  std::printf("toplexes:");
  for (auto t : toplex) std::printf(" e%u", t);
  std::printf("\n");
  return 0;
}
