// examples/matrix_route.cpp
//
// The algebraic view of hypergraph analytics (paper Sec. II / III-B.1a):
// everything this repository computes combinatorially can be phrased as
// operations on the rectangular incidence matrix B —
//
//   B  · 1     = hyperedge sizes          Bᵗ · 1 = hypernode degrees
//   B  · Bᵗ    = hyperedge overlaps        -> threshold = s-line graph
//   Bᵗ · B     = hypernode co-memberships  -> threshold = clique expansion
//   [[0,Bᵗ],[B,0]]                         = the adjoin adjacency matrix,
//                                            on which plain (Graph)BLAS
//                                            BFS/CC compute exact metrics
//
// This example walks the Fig. 1 hypergraph through each identity and
// cross-checks the matrix route against the combinatorial engines.
#include <cstdio>

#include "nwhy.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;

int main() {
  biedgelist<> el;
  for (vertex_id_t v : {0, 1, 2}) el.push_back(0, v);
  for (vertex_id_t v : {1, 2, 3, 4}) el.push_back(1, v);
  for (vertex_id_t v : {4, 5, 6}) el.push_back(2, v);
  for (vertex_id_t v : {6, 7, 8}) el.push_back(3, v);
  el.sort_and_unique();
  NWHypergraph hg(el);

  auto b  = nw::sparse::csr_matrix<std::uint32_t>::from_incidence(el);
  auto bt = b.transpose();
  std::printf("incidence matrix B: %zu x %zu, %zu nonzeros\n", b.num_rows(), b.num_cols(),
              b.num_nonzeros());

  // Degree identities via SpMV.
  std::vector<std::uint64_t> ones_v(b.num_cols(), 1), ones_e(b.num_rows(), 1);
  auto sizes   = b.spmv(std::span<const std::uint64_t>(ones_v));
  auto degrees = bt.spmv(std::span<const std::uint64_t>(ones_e));
  std::printf("B*1  (hyperedge sizes):   ");
  for (auto s : sizes) std::printf("%llu ", static_cast<unsigned long long>(s));
  std::printf("\nBt*1 (hypernode degrees): ");
  for (auto d : degrees) std::printf("%llu ", static_cast<unsigned long long>(d));
  std::printf("\n");

  // Overlap matrix and the s-line graphs it induces.
  auto bbt = b.multiply(bt);
  std::printf("\nB*Bt overlap matrix (diagonal = sizes, off-diagonal = intersections):\n");
  for (std::size_t i = 0; i < bbt.num_rows(); ++i) {
    std::printf("  ");
    for (std::size_t j = 0; j < bbt.num_cols(); ++j) std::printf("%2u ", bbt.at(i, j));
    std::printf("\n");
  }
  for (std::size_t s = 1; s <= 3; ++s) {
    auto algebraic = to_two_graph_spgemm(el, s);
    auto lg        = hg.make_s_linegraph(s);
    std::printf("threshold >= %zu: %zu line edges (combinatorial route: %zu) %s\n", s,
                algebraic.size(), lg.num_edges(),
                algebraic.size() == lg.num_edges() ? "- agree" : "- MISMATCH!");
  }

  // The adjoin matrix and matrix-route exact algorithms.
  auto a = nw::sparse::adjoin_matrix(b);
  std::printf("\nadjoin matrix [[0,Bt],[B,0]]: %zu x %zu, %zu nonzeros\n", a.num_rows(),
              a.num_cols(), a.num_nonzeros());
  auto levels = nw::sparse::bfs_levels_spmv(a, 0);
  std::printf("masked-SpMV BFS levels from e0: ");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : " ", levels[i]);
  }
  auto cc_labels = nw::sparse::cc_spmv(a);
  std::size_t comps = nw::graph::count_components(cc_labels);
  std::printf("\nmin-label SpMV CC: %zu component(s) — exact engines agree: %s\n", comps,
              comps == 1 ? "yes" : "no");
  return 0;
}
