// tests/test_nwutil.cpp — unit tests for the utility layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nwutil/atomics.hpp"
#include "nwutil/bitmap.hpp"
#include "nwutil/defs.hpp"
#include "nwutil/flat_hashmap.hpp"
#include "nwutil/rng.hpp"
#include "nwutil/stats.hpp"
#include "nwutil/timer.hpp"

using namespace nw;

// --- rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256ss a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256ss a(1), b(2);
  int          same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  xoshiro256ss rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  xoshiro256ss rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversSmallRange) {
  xoshiro256ss   rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.bounded(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval) {
  xoshiro256ss rng(5);
  double       sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  auto          a = splitmix64(s);
  auto          b = splitmix64(s);
  EXPECT_NE(a, b);
}

// --- bitmap ------------------------------------------------------------

TEST(Bitmap, SetAndGet) {
  bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  for (std::size_t i = 0; i < 130; i += 7) bm.set(i);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(bm.get(i), i % 7 == 0);
}

TEST(Bitmap, CountMatchesSets) {
  bitmap bm(1000);
  for (std::size_t i = 0; i < 1000; i += 3) bm.set(i);
  EXPECT_EQ(bm.count(), 334u);
}

TEST(Bitmap, AtomicSetReportsFirstWin) {
  bitmap bm(64);
  EXPECT_TRUE(bm.set_atomic(5));
  EXPECT_FALSE(bm.set_atomic(5));
  EXPECT_TRUE(bm.get(5));
}

TEST(Bitmap, ClearResetsEverything) {
  bitmap bm(100);
  bm.set(3);
  bm.set(99);
  bm.clear();
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, SwapExchangesContents) {
  bitmap a(10), b(20);
  a.set(1);
  b.set(15);
  a.swap(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_TRUE(a.get(15));
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.get(1));
}

TEST(Bitmap, ConcurrentAtomicSetsAllLand) {
  bitmap                   bm(10000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bm, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < 10000; i += 4) bm.set_atomic(i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bm.count(), 10000u);
}

// --- atomics helpers -----------------------------------------------------

TEST(Atomics, WriteMinUpdatesOnlyDownward) {
  int x = 10;
  EXPECT_TRUE(write_min(x, 5));
  EXPECT_EQ(x, 5);
  EXPECT_FALSE(write_min(x, 7));
  EXPECT_EQ(x, 5);
  EXPECT_FALSE(write_min(x, 5));
}

TEST(Atomics, WriteMaxUpdatesOnlyUpward) {
  int x = 10;
  EXPECT_TRUE(write_max(x, 15));
  EXPECT_EQ(x, 15);
  EXPECT_FALSE(write_max(x, 3));
}

TEST(Atomics, CompareAndSwapSingleWinner) {
  vertex_id_t x = null_vertex<>;
  EXPECT_TRUE(compare_and_swap(x, null_vertex<>, 3u));
  EXPECT_FALSE(compare_and_swap(x, null_vertex<>, 4u));
  EXPECT_EQ(x, 3u);
}

TEST(Atomics, ConcurrentWriteMinConverges) {
  std::uint32_t            x = 1u << 30;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&x, t] {
      for (std::uint32_t i = 1000; i > 0; --i) write_min(x, i + static_cast<std::uint32_t>(t));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(x, 1u);
}

TEST(Atomics, FetchAddAccumulates) {
  std::uint64_t            x = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&x] {
      for (int i = 0; i < 1000; ++i) fetch_add(x, std::uint64_t{1});
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(x, 4000u);
}

// --- counting_hashmap -----------------------------------------------------

TEST(CountingHashmap, IncrementAndGet) {
  counting_hashmap<> map;
  map.increment(10);
  map.increment(10);
  map.increment(20, 5);
  EXPECT_EQ(map.get(10), 2u);
  EXPECT_EQ(map.get(20), 5u);
  EXPECT_EQ(map.get(30), 0u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(CountingHashmap, ClearIsComplete) {
  counting_hashmap<> map;
  for (vertex_id_t k = 0; k < 100; ++k) map.increment(k);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (vertex_id_t k = 0; k < 100; ++k) EXPECT_EQ(map.get(k), 0u);
}

TEST(CountingHashmap, GrowsPastInitialCapacity) {
  counting_hashmap<> map(4);
  for (vertex_id_t k = 0; k < 10000; ++k) map.increment(k, k + 1);
  EXPECT_EQ(map.size(), 10000u);
  for (vertex_id_t k = 0; k < 10000; k += 997) EXPECT_EQ(map.get(k), k + 1);
}

TEST(CountingHashmap, ForEachVisitsAllOnce) {
  counting_hashmap<> map;
  for (vertex_id_t k = 0; k < 500; ++k) map.increment(k * 3, 2);
  std::unordered_map<vertex_id_t, std::uint32_t> seen;
  map.for_each([&](vertex_id_t k, std::uint32_t c) { seen[k] += c; });
  EXPECT_EQ(seen.size(), 500u);
  for (auto& [k, c] : seen) {
    EXPECT_EQ(k % 3, 0u);
    EXPECT_EQ(c, 2u);
  }
}

TEST(CountingHashmap, ReuseAcrossManyEpochs) {
  counting_hashmap<> map;
  for (int round = 0; round < 1000; ++round) {
    map.clear();
    map.increment(static_cast<vertex_id_t>(round));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.get(static_cast<vertex_id_t>(round)), 1u);
  }
}

TEST(CountingHashmap, MatchesUnorderedMapOnRandomWorkload) {
  counting_hashmap<>                             map;
  std::unordered_map<vertex_id_t, std::uint32_t> ref;
  xoshiro256ss                                   rng(99);
  for (int i = 0; i < 20000; ++i) {
    auto k = static_cast<vertex_id_t>(rng.bounded(512));
    map.increment(k);
    ref[k]++;
  }
  for (auto& [k, c] : ref) EXPECT_EQ(map.get(k), c);
  EXPECT_EQ(map.size(), ref.size());
}

// --- stats -----------------------------------------------------------------

TEST(Stats, DegreeStatsBasics) {
  std::vector<std::size_t> degrees{1, 2, 3, 4, 10};
  auto s = compute_degree_stats(std::span<const std::size_t>(degrees));
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_EQ(s.max, 10u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_NEAR(s.stddev, 3.1623, 1e-3);
}

TEST(Stats, EmptyInput) {
  std::vector<std::size_t> empty;
  auto s = compute_degree_stats(std::span<const std::size_t>(empty));
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, FormatCompact) {
  EXPECT_EQ(format_compact(15300000), "15.3M");
  EXPECT_EQ(format_compact(3100), "3.1k");
  EXPECT_EQ(format_compact(42), "42");
}

// --- timer -------------------------------------------------------------------

TEST(Timer, MonotoneNonNegative) {
  timer t;
  double a = t.elapsed_ms();
  double b = t.elapsed_ms();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, LapResets) {
  timer t;
  (void)t.lap_ms();
  double lap = t.lap_ms();
  EXPECT_GE(lap, 0.0);
  EXPECT_LE(lap, t.elapsed_ms() + 1.0);
}
