// tests/test_dynamic.cpp — the dynamic hypergraph engine, differentially.
//
// Every incremental path — delta-overlay queries, incremental degrees,
// incremental s-line-graph / s-CC / toplex maintenance, compaction — is
// replayed against a rebuild-from-scratch oracle over the same mutation
// stream: generate a base hypergraph (gen::arbitrary_hypergraph), apply a
// seed-derived stream of inserts / removals / replacements to both the
// mutable NWHypergraph and a plain ground-truth incidence, then demand the
// composed results match a fresh NWHypergraph built from the ground truth —
// bit-exactly for degrees, BFS distances, CC labels, line-graph edge sets
// and toplex sets, across thread counts {1, 2, 4, hardware}.
//
// Also here: the regression tests for this PR's bugfix sweep — strict
// env-var parsing (nwutil/env.hpp) and checked snapshot write paths that
// surface stream failures as io_error and never unlink non-regular files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "capi/nwhy_capi.h"
#include "nwhy/delta.hpp"
#include "nwhy/io/binary.hpp"
#include "nwhy/io/csr_snapshot.hpp"
#include "nwhy/io/matrix_market.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/ref/ref.hpp"
#include "nwhy/slinegraph/incremental.hpp"
#include "nwutil/env.hpp"
#include "prop_harness.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;
namespace ref = nw::hypergraph::ref;

namespace {

/// Ground truth the mutation stream is replayed against: plain per-edge
/// member lists (sorted unique) plus the node-space cardinality.
struct truth_state {
  std::vector<std::vector<vertex_id_t>> edges;
  std::size_t                           num_nodes = 0;

  void apply(vertex_id_t e, std::vector<vertex_id_t> members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (e >= edges.size()) edges.resize(std::size_t{e} + 1);
    for (vertex_id_t v : members) num_nodes = std::max(num_nodes, std::size_t{v} + 1);
    edges[e] = std::move(members);
  }

  [[nodiscard]] biedgelist<> to_biedgelist() const {
    biedgelist<> el(edges.size(), num_nodes);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      for (vertex_id_t v : edges[e]) el.push_back(static_cast<vertex_id_t>(e), v);
    }
    return el;
  }

  [[nodiscard]] ref::incidence to_incidence() const {
    ref::incidence h;
    h.edges = edges;
    h.nodes.resize(num_nodes);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      for (vertex_id_t v : edges[e]) h.nodes[v].push_back(static_cast<vertex_id_t>(e));
    }
    return h;
  }
};

/// Snapshot the composed state of a freshly-built hypergraph as ground truth.
truth_state truth_of(const NWHypergraph& h) {
  truth_state t;
  t.edges.resize(h.num_hyperedges());
  t.num_nodes = h.num_hypernodes();
  for (std::size_t e = 0; e < t.edges.size(); ++e) {
    t.edges[e] = h.edge_members(static_cast<vertex_id_t>(e));
  }
  return t;
}

/// One seed-derived mutation, applied identically to the engine under test
/// and to the ground truth.
struct mutation {
  enum class kind { update, remove, insert_new } op;
  vertex_id_t              edge;
  std::vector<vertex_id_t> members;
};

/// A replayable mutation stream: replacements of existing edges, removals,
/// and inserts of brand-new edge ids (including ids that grow the node
/// space), in seed-determined order.
std::vector<mutation> mutation_stream(nw::xoshiro256ss& rng, const truth_state& base,
                                      std::size_t count) {
  std::vector<mutation> out;
  std::size_t           ne = base.edges.size();
  const std::size_t     nv = std::max<std::size_t>(base.num_nodes, 4);
  for (std::size_t i = 0; i < count; ++i) {
    auto members_of = [&](std::size_t max_size) {
      std::vector<vertex_id_t> m;
      const std::size_t        sz = rng.bounded(max_size + 1);
      for (std::size_t k = 0; k < sz; ++k) {
        // +2 headroom exercises node-space growth through the overlay.
        m.push_back(static_cast<vertex_id_t>(rng.bounded(nv + 2)));
      }
      return m;
    };
    switch (rng.bounded(3)) {
      case 0:
        if (ne > 0) {
          out.push_back({mutation::kind::update,
                         static_cast<vertex_id_t>(rng.bounded(ne)), members_of(6)});
          break;
        }
        [[fallthrough]];
      case 1:
        out.push_back(
            {mutation::kind::insert_new, static_cast<vertex_id_t>(ne), members_of(6)});
        ++ne;
        break;
      default:
        if (ne > 0) {
          out.push_back(
              {mutation::kind::remove, static_cast<vertex_id_t>(rng.bounded(ne)), {}});
        }
        break;
    }
  }
  return out;
}

void apply_to_engine(NWHypergraph& h, const mutation& m) {
  switch (m.op) {
    case mutation::kind::update: h.update_edge(m.edge, m.members); break;
    case mutation::kind::remove: {
      h.remove_edges(std::span<const vertex_id_t>(&m.edge, 1));
      break;
    }
    case mutation::kind::insert_new: h.insert_edges({{m.edge, m.members}}); break;
  }
}

void apply_to_truth(truth_state& t, const mutation& m) {
  t.apply(m.edge, m.op == mutation::kind::remove ? std::vector<vertex_id_t>{} : m.members);
}

std::vector<vertex_id_t> concat_labels(const std::vector<vertex_id_t>& edge,
                                       const std::vector<vertex_id_t>& node) {
  std::vector<vertex_id_t> all = edge;
  all.insert(all.end(), node.begin(), node.end());
  return all;
}

/// A streambuf whose every write fails — the in-memory stand-in for ENOSPC.
struct failing_streambuf : std::streambuf {
  int_type overflow(int_type) override { return traits_type::eof(); }
  std::streamsize xsputn(const char*, std::streamsize) override { return 0; }
};

}  // namespace

// --- composed queries vs rebuild-from-scratch ---------------------------------------

TEST(Dynamic, ComposedQueriesMatchRebuildAcrossThreads) {
  nwtest::concurrency_guard guard;
  for (unsigned threads : nwtest::differential_thread_counts()) {
    nw::par::thread_pool::set_default_concurrency(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    for (auto seed : nwtest::differential_seeds(0xD15C'0000)) {
      NWHY_SEED_TRACE(seed);
      NWHypergraph     dyn(gen::arbitrary_hypergraph(seed));
      truth_state      truth = truth_of(dyn);
      nw::xoshiro256ss rng(seed ^ 0x9E3779B97F4A7C15ull);
      auto             stream = mutation_stream(rng, truth, 10);
      for (const auto& m : stream) {
        apply_to_engine(dyn, m);
        apply_to_truth(truth, m);
        // Degrees are maintained incrementally — check them at every step.
        NWHypergraph rebuilt(truth.to_biedgelist());
        ASSERT_EQ(dyn.edge_sizes(), rebuilt.edge_sizes());
        ASSERT_EQ(dyn.node_degrees(), rebuilt.node_degrees());
        ASSERT_EQ(dyn.num_incidences(), rebuilt.num_incidences());
      }
      NWHypergraph rebuilt(truth.to_biedgelist());
      ASSERT_EQ(dyn.num_hyperedges(), rebuilt.num_hyperedges());
      ASSERT_EQ(dyn.num_hypernodes(), rebuilt.num_hypernodes());

      // Point queries compose base + overlay.
      for (std::size_t e = 0; e < dyn.num_hyperedges(); ++e) {
        ASSERT_EQ(dyn.edge_members(static_cast<vertex_id_t>(e)), truth.edges[e]);
      }
      auto inc = truth.to_incidence();
      for (std::size_t v = 0; v < dyn.num_hypernodes(); ++v) {
        ASSERT_EQ(dyn.incident_edges(static_cast<vertex_id_t>(v)), inc.nodes[v]);
      }

      // Traversals: distances bit-exact, labels bit-exact (min-label
      // convention on both sides).
      if (dyn.num_hyperedges() > 0) {
        const vertex_id_t src = static_cast<vertex_id_t>(dyn.num_hyperedges() / 2);
        auto              a   = dyn.bfs(src);
        auto              b   = rebuilt.bfs(src);
        EXPECT_EQ(a.dist_edge, b.dist_edge);
        EXPECT_EQ(a.dist_node, b.dist_node);
      }
      auto ca = dyn.connected_components();
      auto cb = rebuilt.connected_components();
      EXPECT_EQ(ca.labels_edge, cb.labels_edge);
      EXPECT_EQ(ca.labels_node, cb.labels_node);

      EXPECT_EQ(dyn.toplexes(), rebuilt.toplexes());

      for (std::size_t s : {std::size_t{1}, std::size_t{2}}) {
        SCOPED_TRACE("s=" + std::to_string(s));
        EXPECT_EQ(nwtest::csr_pairs(dyn.make_s_linegraph(s).graph()),
                  nwtest::csr_pairs(rebuilt.make_s_linegraph(s).graph()));
        EXPECT_TRUE(same_partition(dyn.s_connected_components_implicit(s),
                                   rebuilt.s_connected_components_implicit(s)));
      }

      // Compaction folds the overlay into a new generation with the exact
      // edge list a from-scratch build produces.
      const std::uint64_t v_before = dyn.version();
      dyn.compact();
      EXPECT_FALSE(dyn.has_pending_delta());
      EXPECT_EQ(dyn.version(), v_before) << "compact() must preserve content";
      auto want = rebuilt.edge_list();
      auto got  = dyn.edge_list();
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(got.edge_ids(), want.edge_ids());
      EXPECT_EQ(got.node_ids(), want.node_ids());
      EXPECT_EQ(dyn.edge_sizes(), rebuilt.edge_sizes());
      EXPECT_EQ(dyn.node_degrees(), rebuilt.node_degrees());
      EXPECT_EQ(dyn.toplexes(), rebuilt.toplexes());
    }
  }
}

TEST(Dynamic, AdjoinAndDerivedGraphsComposeTheOverlay) {
  nwtest::concurrency_guard guard;
  for (auto seed : nwtest::differential_seeds(0xD15C'1000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph     dyn(gen::arbitrary_hypergraph(seed));
    truth_state      truth = truth_of(dyn);
    nw::xoshiro256ss rng(seed * 2654435761u + 1);
    for (const auto& m : mutation_stream(rng, truth, 6)) {
      apply_to_engine(dyn, m);
      apply_to_truth(truth, m);
    }
    NWHypergraph rebuilt(truth.to_biedgelist());

    auto la = dyn.connected_components_adjoin();
    auto lb = rebuilt.connected_components_adjoin();
    EXPECT_TRUE(same_partition(concat_labels(la.labels_edge, la.labels_node),
                               concat_labels(lb.labels_edge, lb.labels_node)));

    EXPECT_EQ(nwtest::csr_pairs(dyn.clique_expansion_graph()),
              nwtest::csr_pairs(rebuilt.clique_expansion_graph()));

    auto da = dyn.dual();
    auto db = rebuilt.dual();
    EXPECT_EQ(da.edge_list().edge_ids(), db.edge_list().edge_ids());
    EXPECT_EQ(da.edge_list().node_ids(), db.edge_list().node_ids());

    auto wa = dyn.weighted_linegraph_edges();
    auto wb = rebuilt.weighted_linegraph_edges();
    EXPECT_EQ(wa.size(), wb.size());
  }
}

// --- edge cases ----------------------------------------------------------------------

TEST(Dynamic, DeleteThenReinsertRestoresTheOriginal) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  auto         original = truth_of(h);
  const auto   members1 = h.edge_members(1);
  ASSERT_FALSE(members1.empty());

  h.remove_edges(std::vector<vertex_id_t>{1});
  EXPECT_TRUE(h.edge_members(1).empty());
  EXPECT_EQ(h.edge_sizes()[1], 0u);
  EXPECT_TRUE(h.has_pending_delta());

  h.update_edge(1, members1);
  for (std::size_t e = 0; e < h.num_hyperedges(); ++e) {
    EXPECT_EQ(h.edge_members(static_cast<vertex_id_t>(e)), original.edges[e]);
  }
  h.compact();
  NWHypergraph fresh(nwtest::figure1_hypergraph());
  EXPECT_EQ(h.edge_list().edge_ids(), fresh.edge_list().edge_ids());
  EXPECT_EQ(h.edge_list().node_ids(), fresh.edge_list().node_ids());
}

TEST(Dynamic, TombstoneOnlyGraphIsFullyEmpty) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  std::vector<vertex_id_t> all(h.num_hyperedges());
  for (std::size_t e = 0; e < all.size(); ++e) all[e] = static_cast<vertex_id_t>(e);
  h.remove_edges(all);

  EXPECT_EQ(h.num_incidences(), 0u);
  for (std::size_t v = 0; v < h.num_hypernodes(); ++v) {
    EXPECT_EQ(h.node_degrees()[v], 0u);
    EXPECT_TRUE(h.incident_edges(static_cast<vertex_id_t>(v)).empty());
  }
  // All-empty hypergraph: the toplex convention keeps exactly edge 0.
  EXPECT_EQ(h.toplexes(), (std::vector<vertex_id_t>{0}));
  auto cc = h.connected_components();
  for (std::size_t e = 0; e < cc.labels_edge.size(); ++e) {
    EXPECT_EQ(cc.labels_edge[e], static_cast<vertex_id_t>(e)) << "singleton components";
  }
  h.compact();
  EXPECT_EQ(h.num_incidences(), 0u);
  EXPECT_EQ(h.num_hyperedges(), 4u) << "ids stay stable through tombstone compaction";
}

TEST(Dynamic, PendingDeltaBlocksBaseAccessors) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  h.update_edge(0, {0, 5});
  EXPECT_THROW((void)h.edge_list(), std::logic_error);
  EXPECT_THROW((void)h.hyperedges(), std::logic_error);
  EXPECT_THROW((void)h.hypernodes(), std::logic_error);
  EXPECT_THROW(h.save_csr_snapshot("/tmp/nwhy_should_not_exist.nwcsr"), std::logic_error);
  h.compact();
  EXPECT_NO_THROW((void)h.edge_list());
}

TEST(Dynamic, PinnedGenerationSurvivesCompaction) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  auto         pinned   = h.generation();
  const auto   pinned_id = pinned->id;
  const auto   want_row  = h.edge_members(1);

  h.update_edge(0, {7, 8});
  h.remove_edges(std::vector<vertex_id_t>{2});
  h.compact();

  // The live generation moved on...
  EXPECT_GT(h.generation()->id, pinned_id);
  // ...but the pinned one still answers queries with pre-mutation content.
  std::vector<vertex_id_t> row;
  for (auto&& t : pinned->hyperedges[1]) row.push_back(target(t));
  EXPECT_EQ(row, want_row);
  EXPECT_EQ(pinned->el.size(), nwtest::figure1_hypergraph().size());
}

TEST(Dynamic, VersionBumpsOnMutationOnly) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  auto         token = h.version_token();
  EXPECT_EQ(*token, 0u);
  h.update_edge(1, {2, 3});
  EXPECT_EQ(*token, 1u);
  h.remove_edges(std::vector<vertex_id_t>{0});
  EXPECT_EQ(*token, 2u);
  h.compact();
  EXPECT_EQ(*token, 2u) << "compaction preserves content";
  EXPECT_EQ(h.version(), 2u);
}

TEST(Dynamic, AutoCompactionHonorsThreshold) {
  // The threshold is a read-once env knob; exercise the mechanics directly:
  // grow a delta past the default threshold's reach and compact explicitly.
  NWHypergraph h(nwtest::figure1_hypergraph());
  for (vertex_id_t e = 0; e < 64; ++e) {
    h.update_edge(4 + e, {static_cast<vertex_id_t>(e % 9), static_cast<vertex_id_t>((e + 1) % 9)});
  }
  EXPECT_EQ(h.delta_size(), 64u);
  EXPECT_EQ(h.num_hyperedges(), 68u);
  h.compact();
  EXPECT_EQ(h.delta_size(), 0u);
  EXPECT_EQ(h.num_hyperedges(), 68u);
  EXPECT_EQ(compact_threshold(), 4096u) << "default threshold";
  EXPECT_EQ(delta_reserve(), 256u) << "default reserve";
}

// --- incremental s-line graph --------------------------------------------------------

TEST(Dynamic, IncrementalSlinegraphMatchesOracleUnderMutation) {
  for (auto seed : nwtest::differential_seeds(0xD15C'2000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph base(gen::arbitrary_hypergraph(seed));
    truth_state  truth = truth_of(base);
    for (std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      SCOPED_TRACE("s=" + std::to_string(s));
      incremental_slinegraph inc(base, s);
      truth_state            t = truth;
      nw::xoshiro256ss       rng(seed + s);
      for (const auto& m : mutation_stream(rng, t, 8)) {
        if (m.op == mutation::kind::remove) {
          inc.remove_edge(m.edge);
        } else {
          inc.update_edge(m.edge, m.members);
        }
        apply_to_truth(t, m);
        auto h      = t.to_incidence();
        auto oracle = ref::s_line_edges(h, s);
        auto got    = inc.pairs();
        std::sort(oracle.begin(), oracle.end());
        ASSERT_EQ(got, oracle);
        ASSERT_EQ(inc.s_connected_components(), ref::s_components(h, s));
      }
      // Spot-check distances on the final state.
      auto h = t.to_incidence();
      for (vertex_id_t src = 0; src < std::min<std::size_t>(h.num_edges(), 3); ++src) {
        for (vertex_id_t dst = 0; dst < std::min<std::size_t>(h.num_edges(), 3); ++dst) {
          EXPECT_EQ(inc.s_distance(src, dst), ref::s_distance(h, s, src, dst));
        }
      }
    }
  }
}

TEST(Dynamic, IncrementalToplexesMatchOracleUnderMutation) {
  for (auto seed : nwtest::differential_seeds(0xD15C'3000)) {
    NWHY_SEED_TRACE(seed);
    NWHypergraph base(gen::arbitrary_hypergraph(seed));
    truth_state  truth = truth_of(base);
    incremental_toplexes inc(base);
    EXPECT_EQ(inc.toplexes(), base.toplexes());
    nw::xoshiro256ss rng(~seed);
    for (const auto& m : mutation_stream(rng, truth, 10)) {
      if (m.op == mutation::kind::remove) {
        inc.remove_edge(m.edge);
      } else {
        inc.update_edge(m.edge, m.members);
      }
      apply_to_truth(truth, m);
      NWHypergraph rebuilt(truth.to_biedgelist());
      ASSERT_EQ(inc.toplexes(), rebuilt.toplexes());
    }
  }
}

// --- C API staleness -----------------------------------------------------------------

TEST(Dynamic, CapiMutationInvalidatesLinegraphHandles) {
  const uint32_t  edges[] = {0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  const uint32_t  nodes[] = {0, 1, 2, 1, 2, 3, 4, 4, 5, 6, 6, 7, 8};
  nwhy_hypergraph* hg     = nwhy_hypergraph_create(edges, nodes, nullptr, 13);
  ASSERT_NE(hg, nullptr);
  EXPECT_EQ(nwhy_version(hg), 0u);

  nwhy_slinegraph* lg = nwhy_s_linegraph(hg, 1, 1);
  ASSERT_NE(lg, nullptr);
  EXPECT_EQ(nwhy_slg_is_stale(lg), 0);
  EXPECT_EQ(nwhy_slg_num_vertices(lg), 4u);
  EXPECT_GT(nwhy_slg_s_degree(lg, 1), 0u);

  const uint32_t grown[] = {0, 5};
  ASSERT_EQ(nwhy_insert_edge(hg, 4, grown, 2), 0);
  EXPECT_EQ(nwhy_version(hg), 1u);
  EXPECT_EQ(nwhy_delta_size(hg), 1u);
  EXPECT_EQ(nwhy_num_hyperedges(hg), 5u);

  // The pre-mutation handle answers only with sentinels now.
  EXPECT_EQ(nwhy_slg_is_stale(lg), 1);
  EXPECT_EQ(nwhy_slg_num_vertices(lg), 0u);
  EXPECT_EQ(nwhy_slg_num_edges(lg), 0u);
  EXPECT_EQ(nwhy_slg_s_degree(lg, 1), 0u);
  EXPECT_EQ(nwhy_slg_s_neighbors(lg, 1, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_s_distance(lg, 0, 1), NWHY_NULL_ID);
  std::vector<uint32_t> labels(4, 7);
  nwhy_slg_s_connected_components(lg, labels.data());
  for (auto l : labels) EXPECT_EQ(l, NWHY_NULL_ID);
  std::vector<double> cent(4, 1.0);
  nwhy_slg_s_closeness_centrality(lg, cent.data());
  for (auto c : cent) EXPECT_EQ(c, 0.0);

  // A fresh handle sees the mutated hypergraph; compaction keeps it fresh.
  nwhy_slinegraph* lg2 = nwhy_s_linegraph(hg, 1, 1);
  EXPECT_EQ(nwhy_slg_is_stale(lg2), 0);
  EXPECT_EQ(nwhy_slg_num_vertices(lg2), 5u);
  ASSERT_EQ(nwhy_compact(hg), 0);
  EXPECT_EQ(nwhy_delta_size(hg), 0u);
  EXPECT_EQ(nwhy_slg_is_stale(lg2), 0) << "compaction preserves content";

  std::vector<uint32_t> members(8);
  EXPECT_EQ(nwhy_edge_members(hg, 4, members.data()), 2u);
  EXPECT_EQ(members[0], 0u);
  EXPECT_EQ(members[1], 5u);
  EXPECT_EQ(nwhy_remove_edge(hg, 4), 0);
  EXPECT_EQ(nwhy_edge_members(hg, 4, nullptr), 0u);
  EXPECT_EQ(nwhy_slg_is_stale(lg2), 1);

  nwhy_slinegraph_destroy(lg);
  nwhy_slinegraph_destroy(lg2);
  nwhy_hypergraph_destroy(hg);
}

TEST(Dynamic, CapiSlinegraphTokenOutlivesTheHypergraph) {
  const uint32_t   edges[] = {0, 0, 1, 1};
  const uint32_t   nodes[] = {0, 1, 1, 2};
  nwhy_hypergraph* hg      = nwhy_hypergraph_create(edges, nodes, nullptr, 4);
  nwhy_slinegraph* lg      = nwhy_s_linegraph(hg, 1, 1);
  nwhy_hypergraph_destroy(hg);
  // The version token is shared ownership: no dangling read here.
  EXPECT_EQ(nwhy_slg_is_stale(lg), 0);
  EXPECT_EQ(nwhy_slg_num_vertices(lg), 2u);
  nwhy_slinegraph_destroy(lg);
}

// --- bugfix regressions: strict env parsing ------------------------------------------

TEST(StrictEnv, ParseAcceptsExactUnsignedIntegersOnly) {
  std::uint64_t v = 0;
  EXPECT_TRUE(nw::util::parse_u64_strict("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(nw::util::parse_u64_strict("18446744073709551615", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());

  EXPECT_FALSE(nw::util::parse_u64_strict("", v));
  EXPECT_FALSE(nw::util::parse_u64_strict("12abc", v)) << "trailing junk";
  EXPECT_FALSE(nw::util::parse_u64_strict("abc", v));
  EXPECT_FALSE(nw::util::parse_u64_strict("-3", v)) << "negative";
  EXPECT_FALSE(nw::util::parse_u64_strict("+5", v)) << "explicit sign";
  EXPECT_FALSE(nw::util::parse_u64_strict(" 12", v)) << "leading space";
  EXPECT_FALSE(nw::util::parse_u64_strict("12 ", v)) << "trailing space";
  EXPECT_FALSE(nw::util::parse_u64_strict("0x10", v)) << "hex";
  EXPECT_FALSE(nw::util::parse_u64_strict("18446744073709551616", v)) << "overflow";
  EXPECT_FALSE(nw::util::parse_u64_strict("3.5", v)) << "float";
}

TEST(StrictEnv, EnvKnobFallsBackOnGarbageAndRange) {
  setenv("NWHY_TEST_STRICT_KNOB", "48", 1);
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7), 48u);

  setenv("NWHY_TEST_STRICT_KNOB", "48garbage", 1);
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7), 7u);

  setenv("NWHY_TEST_STRICT_KNOB", "-1", 1);
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7), 7u);

  // Out of the declared [min, max] window -> fallback, not clamp.
  setenv("NWHY_TEST_STRICT_KNOB", "100000", 1);
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7, 1, 65536), 7u);
  setenv("NWHY_TEST_STRICT_KNOB", "0", 1);
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7, 1, 65536), 7u);

  unsetenv("NWHY_TEST_STRICT_KNOB");
  EXPECT_EQ(nw::util::env_u64_strict("NWHY_TEST_STRICT_KNOB", 7), 7u) << "unset -> quiet default";
}

// --- bugfix regressions: checked snapshot write paths --------------------------------

TEST(WriteHardening, StreamWriteFailuresThrowIoError) {
  NWHypergraph h(nwtest::figure1_hypergraph());
  failing_streambuf buf;
  {
    std::ostream out(&buf);
    EXPECT_THROW(write_binary(out, h.edge_list()), io_error);
  }
  {
    std::ostream out(&buf);
    EXPECT_THROW(write_matrix_market(out, h.edge_list()), io_error);
  }
  {
    std::ostream out(&buf);
    EXPECT_THROW(
        write_csr_snapshot(out, h.hyperedges(), h.hypernodes(), nullptr, /*canonical=*/true),
        io_error);
  }
}

TEST(WriteHardening, PathOverloadRemovesThePartialFile) {
  const std::string dir  = ::testing::TempDir();
  const std::string path = dir + "/nwhy_partial_out.bin";
  // A directory at the target path makes the ofstream open fail cleanly...
  NWHypergraph h(nwtest::figure1_hypergraph());
  EXPECT_THROW(write_binary(dir, h.edge_list()), io_error);
  // ...while a successful write round-trips, proving the checked path does
  // not disturb the happy case.
  write_binary(path, h.edge_list());
  auto el = read_binary(path);
  EXPECT_EQ(el.size(), h.num_incidences());
  std::remove(path.c_str());
}

TEST(WriteHardening, DeviceTargetsAreNeverUnlinked) {
  struct stat st{};
  if (::stat("/dev/full", &st) != 0 || !S_ISCHR(st.st_mode)) {
    GTEST_SKIP() << "/dev/full not available";
  }
  NWHypergraph h(nwtest::figure1_hypergraph());
  // Writes to /dev/full fail with ENOSPC at flush at the latest; the
  // failure must surface as io_error and the device node must survive the
  // partial-output cleanup (the S_ISREG guard).
  EXPECT_THROW(write_binary(std::string("/dev/full"), h.edge_list()), io_error);
  EXPECT_EQ(::stat("/dev/full", &st), 0) << "/dev/full must not be unlinked";
  EXPECT_TRUE(S_ISCHR(st.st_mode));
}
