// tests/test_nwpar.cpp — unit and property tests for the parallel runtime
// (the oneTBB substitute): pool dispatch, the three partitioning
// strategies, reductions, per-thread buffers, parallel sort and the cyclic
// range adaptors of Sec. III-D.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "nwgraph/adjacency.hpp"
#include "nwgraph/edge_list.hpp"
#include "nwpar/parallel_for.hpp"
#include "nwpar/parallel_sort.hpp"
#include "nwpar/range_adaptors.hpp"
#include "nwpar/thread_pool.hpp"
#include "nwutil/rng.hpp"

using namespace nw::par;

TEST(ThreadPool, RunsJobOnEveryContext) {
  thread_pool       pool(4);
  std::atomic<int>  count{0};
  std::vector<char> seen(4, 0);
  pool.run([&](unsigned tid) {
    seen[tid] = 1;
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
  for (auto s : seen) EXPECT_EQ(s, 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  thread_pool pool(1);
  int         runs = 0;
  pool.run([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ZeroRequestClampsToOne) {
  thread_pool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
}

TEST(ThreadPool, ReusableAcrossDispatches) {
  thread_pool      pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    pool.run([&](unsigned) { ++total; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, DefaultConcurrencyResize) {
  thread_pool::set_default_concurrency(2);
  EXPECT_EQ(num_threads(), 2u);
  thread_pool::set_default_concurrency(4);
  EXPECT_EQ(num_threads(), 4u);
}

// --- parallel_for across strategies and pool sizes ------------------------

class ParallelForParam : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(ParallelForParam, BlockedCoversEachIndexOnce) {
  auto [threads, n] = GetParam();
  thread_pool           pool(threads);
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, blocked{}, pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(ParallelForParam, CyclicCoversEachIndexOnce) {
  auto [threads, n] = GetParam();
  thread_pool                   pool(threads);
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, cyclic{}, pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_P(ParallelForParam, StaticBlockedCoversEachIndexOnce) {
  auto [threads, n] = GetParam();
  thread_pool                   pool(threads);
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, static_blocked{}, pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_P(ParallelForParam, SumMatchesSerial) {
  auto [threads, n] = GetParam();
  thread_pool                pool(threads);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(0, n, [&](std::size_t i) { sum.fetch_add(i); }, blocked{}, pool);
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(PoolAndSize, ParallelForParam,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                                            ::testing::Values(std::size_t{1}, std::size_t{13},
                                                              std::size_t{1000},
                                                              std::size_t{4096})));

TEST(ParallelFor, EmptyRangeIsNoOp) {
  thread_pool pool(4);
  int         count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; }, blocked{}, pool);
  parallel_for(7, 3, [&](std::size_t) { ++count; }, cyclic{}, pool);
  EXPECT_EQ(count, 0);
}

TEST(ParallelFor, NonZeroBeginRespected) {
  thread_pool      pool(4);
  std::atomic<int> count{0};
  std::atomic<int> bad{0};
  parallel_for(
      100, 200,
      [&](std::size_t i) {
        if (i < 100 || i >= 200) ++bad;
        ++count;
      },
      blocked{}, pool);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelFor, TidBodyVariantGetsValidIds) {
  thread_pool       pool(4);
  std::atomic<int>  bad{0};
  parallel_for(
      0, 1000,
      [&](unsigned tid, std::size_t) {
        if (tid >= 4) ++bad;
      },
      blocked{}, pool);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelFor, CyclicWithExplicitBins) {
  thread_pool                   pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, cyclic{17}, pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, BlockedWithExplicitGrain) {
  thread_pool                   pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); }, blocked{7}, pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- parallel_reduce ---------------------------------------------------------

TEST(ParallelReduce, SumOfSquares) {
  thread_pool pool(4);
  auto        result = parallel_reduce(
      0, 1000, std::uint64_t{0},
      [](std::uint64_t acc, std::size_t i) { return acc + static_cast<std::uint64_t>(i) * i; },
      std::plus<>{}, pool);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) expected += i * i;
  EXPECT_EQ(result, expected);
}

TEST(ParallelReduce, BoolOrSemantics) {
  thread_pool pool(4);
  auto any = parallel_reduce(
      0, 10000, false, [](bool acc, std::size_t i) { return acc || i == 7777; },
      [](bool a, bool b) { return a || b; }, pool);
  EXPECT_TRUE(any);
  auto none = parallel_reduce(
      0, 10000, false, [](bool acc, std::size_t) { return acc; },
      [](bool a, bool b) { return a || b; }, pool);
  EXPECT_FALSE(none);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  thread_pool pool(4);
  auto        r = parallel_reduce(
      3, 3, 42, [](int acc, std::size_t) { return acc + 1; }, std::plus<>{}, pool);
  EXPECT_EQ(r, 42);
}

// --- per_thread / merge ------------------------------------------------------

TEST(PerThread, MergePreservesAllElements) {
  thread_pool                           pool(4);
  per_thread<std::vector<std::size_t>> buffers(pool);
  parallel_for(
      0, 10000, [&](unsigned tid, std::size_t i) { buffers.local(tid).push_back(i); }, blocked{},
      pool);
  auto merged = merge_thread_vectors(buffers);
  EXPECT_EQ(merged.size(), 10000u);
  std::sort(merged.begin(), merged.end());
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], i);
}

TEST(PerThread, SlotsAreIndependent) {
  thread_pool      pool(3);
  per_thread<int> slots(pool);
  EXPECT_EQ(slots.size(), 3u);
  slots.local(0) = 1;
  slots.local(2) = 5;
  EXPECT_EQ(slots.local(0), 1);
  EXPECT_EQ(slots.local(1), 0);
  EXPECT_EQ(slots.local(2), 5);
}

// --- parallel_sort --------------------------------------------------------------

class ParallelSortParam : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(ParallelSortParam, MatchesStdSort) {
  auto [threads, n] = GetParam();
  thread_pool  pool(threads);
  nw::xoshiro256ss rng(n * 31 + threads);
  std::vector<std::uint64_t> data(n);
  for (auto& x : data) x = rng.bounded(1000);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(data.begin(), data.end(), std::less<>{}, pool);
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(PoolAndSize, ParallelSortParam,
                         ::testing::Combine(::testing::Values(1u, 3u, 4u),
                                            ::testing::Values(std::size_t{0}, std::size_t{1},
                                                              std::size_t{100},
                                                              std::size_t{100000})));

TEST(ParallelSort, CustomComparator) {
  thread_pool               pool(4);
  std::vector<int>          data(50000);
  nw::xoshiro256ss          rng(17);
  for (auto& x : data) x = static_cast<int>(rng.bounded(1000));
  parallel_sort(data.begin(), data.end(), std::greater<>{}, pool);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<>{}));
}

// --- range adaptors (Sec. III-D) ----------------------------------------------

TEST(CyclicRange, BinsPartitionTheIndexSpace) {
  cyclic_range          range(103, 7);
  std::vector<int>      hits(103, 0);
  std::size_t           total = 0;
  for (std::size_t b = 0; b < range.num_bins(); ++b) {
    auto        bin      = range[b];
    std::size_t iterated = 0;
    for (auto i : bin) {
      ASSERT_LT(i, 103u);
      EXPECT_EQ(i % 7, b);
      ++hits[i];
      ++iterated;
    }
    EXPECT_EQ(iterated, bin.size());
    total += iterated;
  }
  EXPECT_EQ(total, 103u);
  for (auto h : hits) EXPECT_EQ(h, 1);
}

TEST(CyclicRange, MoreBinsThanElements) {
  cyclic_range range(3, 10);
  std::size_t  total = 0;
  for (std::size_t b = 0; b < range.num_bins(); ++b) {
    for (auto i : range[b]) {
      ASSERT_LT(i, 3u);
      ++total;
    }
  }
  EXPECT_EQ(total, 3u);
}

TEST(CyclicNeighborRange, YieldsIdAndNeighborhood) {
  // Path graph 0-1-2-3.
  nw::graph::edge_list<> el(4);
  el.push_back(0, 1);
  el.push_back(1, 0);
  el.push_back(1, 2);
  el.push_back(2, 1);
  el.push_back(2, 3);
  el.push_back(3, 2);
  nw::graph::adjacency<> g(el);

  cyclic_neighbor_range<const nw::graph::adjacency<>> range(g, 3);
  std::vector<int>                                    seen(4, 0);
  for (std::size_t b = 0; b < range.num_bins(); ++b) {
    for (auto&& [id, nbrs] : range[b]) {
      ++seen[id];
      std::size_t deg = 0;
      for (auto&& e : nbrs) {
        (void)e;
        ++deg;
      }
      EXPECT_EQ(deg, g.degree(id));
    }
  }
  for (auto s : seen) EXPECT_EQ(s, 1);
}

TEST(CyclicNeighborRange, ParallelDriverCoversAll) {
  nw::graph::edge_list<> el(50);
  for (nw::vertex_id_t v = 1; v < 50; ++v) {
    el.push_back(0, v);
    el.push_back(v, 0);
  }
  nw::graph::adjacency<>        g(el);
  thread_pool                   pool(4);
  std::vector<std::atomic<int>> hits(50);
  for_each_cyclic_neighborhood(
      g, 8,
      [&](unsigned, std::size_t id, auto&& nbrs) {
        hits[id].fetch_add(1);
        std::size_t deg = 0;
        for (auto&& e : nbrs) {
          (void)e;
          ++deg;
        }
        EXPECT_EQ(deg, g.degree(id));
      },
      pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}
