// tests/test_cross_representation.cpp — properties that must hold *across*
// the four representations (the paper's central design claim: exact and
// approximate engines answer the same questions), plus thread-count
// robustness of every parallel hypergraph algorithm.
#include <gtest/gtest.h>

#include "nwhy/nwhypergraph.hpp"
#include "nwhy/transforms.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::same_partition;

namespace {

NWHypergraph make_hg(std::uint64_t seed) {
  return NWHypergraph(gen::planted_community_hypergraph(80, 200, 25, 1.4, 0.15, seed));
}

}  // namespace

// --- exact vs approximate consistency --------------------------------------------

class CrossRepParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossRepParam, CliqueExpansionComponentsMatchExactNodePartition) {
  // Connected components of the clique expansion must partition the
  // *non-isolated* hypernodes exactly like exact HyperCC does: 1-walks
  // between nodes exist iff they share a hyperedge chain.
  auto hg = make_hg(GetParam());
  auto exact = hg.connected_components();
  auto ce    = hg.clique_expansion_graph();
  auto approx = nw::graph::cc_afforest(ce);
  std::vector<vertex_id_t> a, b;
  for (std::size_t v = 0; v < hg.num_hypernodes(); ++v) {
    if (hg.node_degrees()[v] == 0) continue;  // isolated nodes: exact keeps own label
    a.push_back(exact.labels_node[v]);
    b.push_back(approx[v]);
  }
  EXPECT_TRUE(same_partition(a, b));
}

TEST_P(CrossRepParam, OneLineGraphComponentsMatchExactEdgePartition) {
  // s = 1: hyperedges are 1-adjacent iff they share a node, so components
  // of L_1(H) equal the hyperedge side of the exact partition (restricted
  // to non-empty hyperedges).
  auto hg     = make_hg(GetParam() + 40);
  auto exact  = hg.connected_components();
  auto lg     = hg.make_s_linegraph(1);
  auto approx = lg.s_connected_components();
  std::vector<vertex_id_t> a, b;
  for (std::size_t e = 0; e < hg.num_hyperedges(); ++e) {
    if (hg.edge_sizes()[e] == 0) continue;
    a.push_back(exact.labels_edge[e]);
    b.push_back(approx[e]);
  }
  EXPECT_TRUE(same_partition(a, b));
}

TEST_P(CrossRepParam, SDistanceIsHalfTheExactBipartiteDistance) {
  // An s=1 walk step between hyperedges equals two bipartite hops, so
  // s_distance(e, f) == dist_edge(f) / 2 under BFS from e.
  auto hg  = make_hg(GetParam() + 80);
  auto lg  = hg.make_s_linegraph(1);
  auto bfs = hg.bfs(0);
  for (vertex_id_t f : {1u, 5u, 17u, 33u}) {
    auto sd = lg.s_distance(0, f);
    if (bfs.dist_edge[f] == nw::null_vertex<>) {
      EXPECT_FALSE(sd.has_value());
    } else {
      ASSERT_TRUE(sd.has_value()) << "f=" << f;
      EXPECT_EQ(*sd * 2, bfs.dist_edge[f]) << "f=" << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossRepParam, ::testing::Values(1, 2, 3, 4));

// --- hyperpath extraction ------------------------------------------------------------

TEST(Hyperpath, Figure1PathAlternatesAndConnects) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         bfs  = hg.bfs(0);
  auto         path = extract_hyperpath(bfs, 0, 3);
  ASSERT_EQ(path.size(), 7u);  // e, v, e, v, e, v, e
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  const auto& he = hg.hyperedges();
  for (std::size_t k = 0; k + 1 < path.size(); k += 2) {
    // Hyperedge at k contains the hypernode at k+1; hyperedge at k+2 too.
    auto r1 = he[path[k]];
    EXPECT_NE(std::find(r1.begin(), r1.end(), path[k + 1]), r1.end());
    auto r2 = he[path[k + 2]];
    EXPECT_NE(std::find(r2.begin(), r2.end(), path[k + 1]), r2.end());
  }
}

TEST(Hyperpath, UnreachableGivesEmpty) {
  biedgelist<> el;
  el.push_back(0, 0);
  el.push_back(1, 1);
  NWHypergraph hg(std::move(el));
  auto         bfs = hg.bfs(0);
  EXPECT_TRUE(extract_hyperpath(bfs, 0, 1).empty());
}

TEST(Hyperpath, SourceToSourceIsSingleton) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         bfs = hg.bfs(2);
  EXPECT_EQ(extract_hyperpath(bfs, 2, 2), (std::vector<vertex_id_t>{2}));
}

TEST(Hyperpath, LengthMatchesBfsDepth) {
  NWHypergraph hg(gen::uniform_random_hypergraph(60, 80, 3, 0x123));
  auto         bfs = hg.bfs(0);
  for (vertex_id_t f = 0; f < hg.num_hyperedges(); ++f) {
    if (bfs.dist_edge[f] == nw::null_vertex<>) continue;
    auto path = extract_hyperpath(bfs, 0, f);
    EXPECT_EQ(path.size(), static_cast<std::size_t>(bfs.dist_edge[f]) + 1);
  }
}

// --- thread-count robustness ----------------------------------------------------------
//
// Every parallel engine must produce equivalent results for any pool size.

TEST(ThreadCount, AllEnginesStableUnderPoolSize) {
  auto hg = make_hg(999);

  // Single-thread ground truth for every engine.
  nw::par::thread_pool::set_default_concurrency(1);
  auto ref_cc = hg.connected_components_adjoin();
  std::vector<vertex_id_t> ref_labels(ref_cc.labels_edge);
  ref_labels.insert(ref_labels.end(), ref_cc.labels_node.begin(), ref_cc.labels_node.end());
  auto [ref_de, ref_dn]   = adjoin_bfs_distances(hg.adjoin(), 0);
  std::size_t ref_edges   = hg.make_s_linegraph(2).num_edges();
  auto        ref_toplex  = hg.toplexes();

  for (unsigned threads : {2u, 3u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    nw::par::thread_pool::set_default_concurrency(threads);

    auto cc = hg.connected_components();
    std::vector<vertex_id_t> labels(cc.labels_edge);
    labels.insert(labels.end(), cc.labels_node.begin(), cc.labels_node.end());
    EXPECT_TRUE(same_partition(labels, ref_labels));

    auto bfs = hg.bfs(0);
    EXPECT_EQ(bfs.dist_edge, ref_de);
    EXPECT_EQ(bfs.dist_node, ref_dn);

    EXPECT_EQ(hg.make_s_linegraph(2).num_edges(), ref_edges);
    EXPECT_EQ(hg.toplexes(), ref_toplex);
  }
  nw::par::thread_pool::set_default_concurrency(
      std::max(1u, std::thread::hardware_concurrency()));
}
