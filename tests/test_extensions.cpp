// tests/test_extensions.cpp — weighted s-line graphs, MIS / s-independent
// edges, the extended s-metrics (s-PageRank, s-core, s-triangles,
// s-diameter), hypergraph transforms, and the relabel facade.
#include <gtest/gtest.h>

#include <set>

#include "nwgraph/algorithms/mis.hpp"
#include "nwhy/nwhypergraph.hpp"
#include "nwhy/slinegraph/weighted.hpp"
#include "nwhy/transforms.hpp"
#include "test_util.hpp"

using namespace nw::hypergraph;
using nw::vertex_id_t;
using nwtest::canonical_pairs;

// --- weighted s-line graph ---------------------------------------------------

TEST(WeightedLineGraph, WeightsAreExactOverlaps) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         w = hg.weighted_linegraph_edges(1);
  ASSERT_EQ(w.size(), 3u);
  // Pairs (sorted by construction): {0,1} overlap 2, {1,2} overlap 1,
  // {2,3} overlap 1.
  std::map<std::pair<vertex_id_t, vertex_id_t>, std::uint32_t> weights;
  for (std::size_t i = 0; i < w.size(); ++i) {
    auto [a, b, ov] = w[i];
    weights[{std::min(a, b), std::max(a, b)}] = ov;
  }
  EXPECT_EQ((weights[{0, 1}]), 2u);
  EXPECT_EQ((weights[{1, 2}]), 1u);
  EXPECT_EQ((weights[{2, 3}]), 1u);
}

class WeightedParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedParam, WeightsMatchBruteForceIntersections) {
  auto el = gen::powerlaw_hypergraph(60, 40, 15, 1.4, 1.0, GetParam());
  NWHypergraph hg(std::move(el));
  const auto&  he = hg.hyperedges();
  auto         w  = hg.weighted_linegraph_edges(1);
  for (std::size_t i = 0; i < w.size(); ++i) {
    auto [a, b, ov] = w[i];
    EXPECT_EQ(ov, intersection_size(he[a], he[b])) << a << "," << b;
  }
}

TEST_P(WeightedParam, ThresholdingReproducesEverySLineGraph) {
  auto         el = gen::uniform_random_hypergraph(70, 50, 6, GetParam() + 50);
  NWHypergraph hg(std::move(el));
  auto         weighted = hg.weighted_linegraph_edges(1);
  for (std::size_t s : {1, 2, 3, 4}) {
    auto sliced = canonical_pairs(threshold_weighted(weighted, s));
    auto direct = canonical_pairs(
        to_two_graph_hashmap(hg.hyperedges(), hg.hypernodes(), hg.edge_sizes(), s));
    // Thresholding ignores the per-s degree filter; apply it for comparison.
    // (A pair in L_s requires both endpoints to have >= s hypernodes, which
    // overlap >= s already implies — so the sets must be identical.)
    EXPECT_EQ(sliced, direct) << "s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedParam, ::testing::Values(1, 2, 3));

TEST(WeightedLineGraph, CsrCostsAreInverseOverlaps) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         w   = hg.weighted_linegraph_edges(1);
  auto         csr = weighted_linegraph_csr(w, hg.num_hyperedges());
  ASSERT_EQ(csr.size(), 4u);
  // e0-e1 share 2 hypernodes: cost 0.5 in both directions.
  bool found = false;
  for (auto&& [v, cost] : csr[0]) {
    if (v == 1) {
      EXPECT_FLOAT_EQ(cost, 0.5f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WeightedLineGraph, WeightedSDistancePrefersStrongOverlaps) {
  // Triangle of hyperedges: e0-e1 overlap 4 (cost .25), e0-e2 overlap 1
  // (cost 1), e1-e2 overlap 1 (cost 1).  Cheapest e0 -> e2 walk is the
  // direct hop (1.0) vs e0-e1-e2 (1.25).
  biedgelist<> el;
  for (vertex_id_t v : {0, 1, 2, 3, 8}) el.push_back(0, v);
  for (vertex_id_t v : {0, 1, 2, 3, 9}) el.push_back(1, v);
  for (vertex_id_t v : {8, 9}) el.push_back(2, v);
  NWHypergraph hg(std::move(el));
  auto         w   = hg.weighted_linegraph_edges(1);
  auto         csr = weighted_linegraph_csr(w, hg.num_hyperedges());
  EXPECT_FLOAT_EQ(weighted_s_distance(csr, 0, 1), 0.25f);
  EXPECT_FLOAT_EQ(weighted_s_distance(csr, 0, 2), 1.0f);
  // Unreachable: a hypergraph with an isolated hyperedge.
  biedgelist<> el2;
  el2.push_back(0, 0);
  el2.push_back(1, 1);
  NWHypergraph hg2(std::move(el2));
  auto         w2   = hg2.weighted_linegraph_edges(1);
  auto         csr2 = weighted_linegraph_csr(w2, hg2.num_hyperedges());
  EXPECT_EQ(weighted_s_distance(csr2, 0, 1), nw::graph::infinite_distance<float>);
}

TEST(WeightedLineGraph, WeightedDistanceLowerBoundsHopDistance) {
  // Each step costs 1/overlap <= 1, so weighted distance <= hop distance.
  NWHypergraph hg(gen::uniform_random_hypergraph(50, 40, 5, 0xFEED));
  auto         w   = hg.weighted_linegraph_edges(1);
  auto         csr = weighted_linegraph_csr(w, hg.num_hyperedges());
  auto         lg  = hg.make_s_linegraph(1);
  for (vertex_id_t dst : {5u, 13u, 31u}) {
    auto hop = lg.s_distance(0, dst);
    auto wd  = weighted_s_distance(csr, 0, dst);
    if (hop) {
      EXPECT_LE(wd, static_cast<float>(*hop) + 1e-5f);
    } else {
      EXPECT_EQ(wd, nw::graph::infinite_distance<float>);
    }
  }
}

// --- MIS -----------------------------------------------------------------------

class MisParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisParam, InvariantsHoldOnRandomGraphs) {
  auto                   el = nwtest::random_graph(200, 600, GetParam());
  nw::graph::adjacency<> g(el);
  auto                   mis = nw::graph::maximal_independent_set(g);
  EXPECT_TRUE(nw::graph::is_maximal_independent_set(g, mis));
}

TEST_P(MisParam, DeterministicPerSeed) {
  auto                   el = nwtest::random_graph(100, 300, GetParam() + 10);
  nw::graph::adjacency<> g(el);
  EXPECT_EQ(nw::graph::maximal_independent_set(g, 7), nw::graph::maximal_independent_set(g, 7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisParam, ::testing::Values(11, 12, 13, 14));

TEST(Mis, EdgelessGraphIsAllIn) {
  nw::graph::edge_list<> el(5);
  nw::graph::adjacency<> g(el, 5);
  auto                   mis = nw::graph::maximal_independent_set(g);
  for (auto m : mis) EXPECT_EQ(m, 1);
}

TEST(Mis, CompleteGraphHasExactlyOne) {
  nw::graph::edge_list<> el(6);
  for (vertex_id_t u = 0; u < 6; ++u) {
    for (vertex_id_t v = 0; v < 6; ++v) {
      if (u != v) el.push_back(u, v);
    }
  }
  nw::graph::adjacency<> g(el);
  auto                   mis   = nw::graph::maximal_independent_set(g);
  int                    count = 0;
  for (auto m : mis) count += m;
  EXPECT_EQ(count, 1);
}

TEST(Mis, SIndependentEdgesArePairwiseNonAdjacent) {
  NWHypergraph hg(gen::powerlaw_hypergraph(60, 40, 12, 1.4, 1.0, 0xCAFE));
  auto         lg  = hg.make_s_linegraph(2);
  auto         set = lg.s_independent_edges();
  std::set<vertex_id_t> members(set.begin(), set.end());
  for (auto e : set) {
    for (auto n : lg.s_neighbors(e)) {
      EXPECT_EQ(members.count(n), 0u) << e << " and " << n << " both in the s-matching";
    }
  }
}

// --- extended s-metrics ------------------------------------------------------------

TEST(ExtendedSMetrics, DiameterOfFigure1LinePath) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  EXPECT_EQ(hg.make_s_linegraph(1).s_diameter(), 3u);  // path of 4
  EXPECT_EQ(hg.make_s_linegraph(2).s_diameter(), 1u);  // single edge
}

TEST(ExtendedSMetrics, PagerankSumsToOne) {
  NWHypergraph hg(gen::uniform_random_hypergraph(80, 60, 5, 0xFACE));
  auto         pr  = hg.make_s_linegraph(1).s_pagerank();
  double       sum = 0;
  for (auto r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(ExtendedSMetrics, TrianglesAndClustering) {
  // Three mutually overlapping hyperedges: a triangle in the line graph.
  biedgelist<> el;
  el.push_back(0, 0);
  el.push_back(0, 1);
  el.push_back(1, 1);
  el.push_back(1, 2);
  el.push_back(2, 2);
  el.push_back(2, 0);
  NWHypergraph hg(std::move(el));
  auto         lg = hg.make_s_linegraph(1);
  EXPECT_EQ(lg.s_triangle_count(), 1u);
  EXPECT_DOUBLE_EQ(lg.s_clustering_coefficient(), 1.0);
}

TEST(ExtendedSMetrics, CoreNumbersOfLinePath) {
  NWHypergraph hg(nwtest::figure1_hypergraph());
  auto         core = hg.make_s_linegraph(1).s_core_numbers();
  for (auto c : core) EXPECT_EQ(c, 1u);  // a path is a 1-core
}

// --- transforms ----------------------------------------------------------------------

TEST(Transforms, CollapseMergesDuplicates) {
  biedgelist<> el;
  for (vertex_id_t v : {0, 1, 2}) el.push_back(0, v);
  for (vertex_id_t v : {0, 1, 2}) el.push_back(1, v);  // duplicate of e0
  for (vertex_id_t v : {3, 4}) el.push_back(2, v);
  el.sort_and_unique();
  auto r = collapse_duplicate_edges(el);
  ASSERT_EQ(r.representative.size(), 2u);
  EXPECT_EQ(r.representative[0], 0u);
  EXPECT_EQ(r.multiplicity[0], 2u);
  EXPECT_EQ(r.representative[1], 2u);
  EXPECT_EQ(r.multiplicity[1], 1u);
  EXPECT_EQ(r.el.num_vertices(0), 2u);
}

TEST(Transforms, CollapseIsIdempotent) {
  auto el = gen::uniform_random_hypergraph(80, 20, 3, 0xAAA);
  el.sort_and_unique();
  auto once  = collapse_duplicate_edges(el);
  auto el2   = once.el;
  el2.sort_and_unique();
  auto twice = collapse_duplicate_edges(el2);
  EXPECT_EQ(once.el.num_vertices(0), twice.el.num_vertices(0));
  for (auto m : twice.multiplicity) EXPECT_EQ(m, 1u);
}

TEST(Transforms, FilterEdgesBySize) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  std::vector<vertex_id_t> kept;
  auto filtered = filter_edges_by_size(el, 4, 100, &kept);
  EXPECT_EQ(kept, (std::vector<vertex_id_t>{1}));  // only e1 has 4 hypernodes
  EXPECT_EQ(filtered.num_vertices(0), 1u);
  EXPECT_EQ(filtered.size(), 4u);
  // Hypernode space preserved.
  EXPECT_EQ(filtered.num_vertices(1), el.num_vertices(1));
}

TEST(Transforms, FilterEverythingYieldsEmpty) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  auto filtered = filter_edges_by_size(el, 100, 200);
  EXPECT_EQ(filtered.size(), 0u);
}

TEST(Transforms, InducedSubhypergraph) {
  auto el = nwtest::figure1_hypergraph();
  el.sort_and_unique();
  // Keep only hypernodes {0..4}: e2 shrinks to {4}, e3 disappears.
  std::vector<char> keep(9, 0);
  for (int v = 0; v <= 4; ++v) keep[v] = 1;
  std::vector<vertex_id_t> kept_edges;
  auto sub = induced_subhypergraph(el, keep, &kept_edges);
  EXPECT_EQ(kept_edges, (std::vector<vertex_id_t>{0, 1, 2}));
  NWHypergraph hg(std::move(sub));
  EXPECT_EQ(hg.edge_sizes(), (std::vector<std::size_t>{3, 4, 1}));
}

TEST(Transforms, DegreeHistogram) {
  std::vector<std::size_t> degrees{0, 1, 1, 3, 3, 3};
  auto                     h = degree_histogram(degrees);
  EXPECT_EQ(h, (std::vector<std::size_t>{1, 2, 0, 3}));
}

// --- relabel facade -----------------------------------------------------------------

TEST(RelabelFacade, PermutationMapsDegreesCorrectly) {
  NWHypergraph hg(gen::powerlaw_hypergraph(50, 40, 12, 1.5, 1.0, 0xBBB));
  std::vector<vertex_id_t> perm;
  auto rel = hg.relabel_edges_by_degree(nw::graph::degree_order::descending, &perm);
  ASSERT_EQ(rel.num_hyperedges(), hg.num_hyperedges());
  for (std::size_t e = 0; e < hg.num_hyperedges(); ++e) {
    EXPECT_EQ(rel.edge_sizes()[perm[e]], hg.edge_sizes()[e]);
  }
  // Descending: new ids have weakly decreasing size.
  EXPECT_TRUE(std::is_sorted(rel.edge_sizes().begin(), rel.edge_sizes().end(),
                             std::greater<>{}));
}

TEST(RelabelFacade, SLineGraphIsIsomorphic) {
  NWHypergraph hg(gen::uniform_random_hypergraph(40, 30, 4, 0xCCC));
  std::vector<vertex_id_t> perm;
  auto rel = hg.relabel_edges_by_degree(nw::graph::degree_order::ascending, &perm);
  for (std::size_t s : {1, 2}) {
    auto orig = hg.make_s_linegraph(s);
    auto relg = rel.make_s_linegraph(s);
    EXPECT_EQ(orig.num_edges(), relg.num_edges()) << "s=" << s;
    for (vertex_id_t e = 0; e < hg.num_hyperedges(); ++e) {
      EXPECT_EQ(orig.s_degree(e), relg.s_degree(perm[e]));
    }
  }
}
